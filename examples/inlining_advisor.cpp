//===-- examples/inlining_advisor.cpp - k-limited CFA + called-once -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inlining/specialisation use case that motivates Section 9: a call
/// site can be inlined when exactly one function reaches it, and the
/// function body can be *moved* into the site when, additionally, that
/// function is called nowhere else (called-once).  Both facts come out of
/// linear-time passes over the subtransitive graph — no label sets.
///
//===----------------------------------------------------------------------===//

#include "apps/KLimitedCFA.h"
#include "ast/Printer.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include <cstdio>

using namespace stcfa;

int main() {
  const char *Source =
      "let helperOnce = fn a => a * 3 in\n"
      "let helperShared = fn b => b + 1 in\n"
      "let table = (helperShared, helperOnce) in\n"
      "let dispatch = fn n => if n < 0 then #1 table else #1 table in\n"
      "let r1 = helperOnce 10 in\n"
      "let r2 = helperShared 20 in\n"
      "let r3 = (dispatch 5) 30 in\n"
      "let r4 = helperShared 40 in\n"
      "r1 + r2 + r3 + r4\n";

  std::printf("--- program ---\n%s\n", Source);

  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
    return 1;
  }
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "type error:\n%s", InferDiags.render().c_str());
    return 1;
  }

  SubtransitiveGraph G(*M);
  G.build();
  G.close();

  // k = 1: we only care whether a call site is monomorphic.
  KLimitedCFA KL(G, /*K=*/1);
  KL.run();
  CalledOnceAnalysis CO(G);
  CO.run();

  auto lamName = [&](LabelId L) {
    const auto *Lam = cast<LamExpr>(M->expr(M->lamOfLabel(L)));
    return std::string(M->text(M->var(Lam->param()).Name));
  };

  int Inlinable = 0, Movable = 0;
  std::printf("--- advice per call site ---\n");
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    const auto *App = dyn_cast<AppExpr>(M->expr(ExprId(I)));
    if (!App)
      continue;
    const LimitedSet &Callees = KL.ofCallSite(ExprId(I));
    std::string Where = describeExpr(*M, ExprId(I));
    if (Callees.isMany() || Callees.size() != 1) {
      std::printf("  %-12s keep indirect (%s callees)\n", Where.c_str(),
                  Callees.isMany() ? "many" : "no");
      continue;
    }
    LabelId L(Callees.ids()[0]);
    ++Inlinable;
    bool Once = CO.countOf(L) == CalledOnceAnalysis::CallCount::Once;
    Movable += Once;
    std::printf("  %-12s inline fn(%s)%s\n", Where.c_str(),
                lamName(L).c_str(),
                Once ? " and delete the definition (called once)" : "");
  }
  std::printf("\n%d call sites inlinable, %d of those are the function's "
              "only call\n",
              Inlinable, Movable);

  // Sanity for the example's narrative.
  return (Inlinable >= 3 && Movable >= 1) ? 0 : 1;
}
