//===-- examples/dead_code_reporter.cpp - Dead code and call graphs -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program dead-code report built from two CFA consumers:
///
///   * the call graph derived from the subtransitive graph tells us which
///     functions are transitively callable from top level, and
///   * the dead-code-aware 0-CFA (the "treatment of dead-code" variation
///     from the paper's introduction) prunes flows inside never-called
///     bodies and counts unreachable occurrences.
///
/// The reference interpreter then runs the program: everything it touches
/// must have been classified live.
///
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeAwareCFA.h"
#include "apps/CallGraph.h"
#include "ast/Printer.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include <cstdio>

using namespace stcfa;

int main() {
  const char *Source =
      "let util = fn a => a + 1 in\n"
      "let helper = fn b => util b in\n"          // only used by legacy
      "let legacy = fn c => helper (c * 2) in\n"  // never called
      "let active = fn d => util d in\n"
      "letrec loop = fn n => if n == 0 then 0 else loop (n - 1) in\n"
      "active 10 + loop 3\n";

  std::printf("--- program ---\n%s\n", Source);

  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
    return 1;
  }
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "type error:\n%s", InferDiags.render().c_str());
    return 1;
  }

  auto name = [&](LabelId L) {
    const auto *Lam = cast<LamExpr>(M->expr(M->lamOfLabel(L)));
    return std::string(M->text(M->var(Lam->param()).Name));
  };

  // Call graph from the subtransitive graph.
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  CallGraph CG(G);
  CG.run();

  std::printf("--- call graph ---\n");
  for (uint32_t Caller = 0; Caller != CG.numCallers(); ++Caller) {
    if (CG.calleesOf(Caller).empty())
      continue;
    std::printf("  %-12s ->",
                Caller == CG.rootIndex() ? "<top-level>"
                                         : ("fn(" + name(LabelId(Caller)) +
                                            ")")
                                               .c_str());
    CG.calleesOf(Caller).forEach(
        [&](uint32_t L) { std::printf(" fn(%s)", name(LabelId(L)).c_str()); });
    std::printf("\n");
  }

  std::printf("\n--- dead functions (call graph) ---\n");
  for (LabelId L : CG.deadFunctions())
    std::printf("  fn(%s) is unreachable from top level\n", name(L).c_str());

  // Liveness-refined CFA for occurrence-level dead code.
  DeadCodeAwareCFA Dc(*M);
  Dc.run();
  uint32_t DeadOccurrences = 0;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    DeadOccurrences += !Dc.isLive(ExprId(I));
  std::printf("\n%u of %u occurrences are dead code\n", DeadOccurrences,
              M->numExprs());

  // Dynamic cross-check: nothing the interpreter touches may be dead.
  InterpreterResult Run = interpret(*M);
  int Violations = 0;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    if ((Run.LabelsAt[I].count() || Run.DidEffect[I]) &&
        !Dc.isLive(ExprId(I)))
      ++Violations;
  std::printf("dynamically executed occurrences misclassified as dead: %d "
              "(must be 0)\n",
              Violations);

  // Narrative checks: legacy and helper are dead, util/active/loop are
  // live.
  bool LegacyDead = false, ActiveLive = false;
  for (LabelId L : CG.deadFunctions()) {
    LegacyDead |= name(L) == "c";
    if (name(L) == "d")
      ActiveLive = false;
  }
  DenseBitset Reached = CG.reachableFunctions();
  for (uint32_t L = 0; L != M->numLabels(); ++L)
    if (name(LabelId(L)) == "d")
      ActiveLive = Reached.contains(L);
  return (Violations == 0 && LegacyDead && ActiveLive) ? 0 : 1;
}
