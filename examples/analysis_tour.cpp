//===-- examples/analysis_tour.cpp - Comparing the four analyses ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs all four analyses of the repository on the paper's cubic family
/// and prints a precision/cost comparison:
///
///   * standard (cubic) inclusion-based CFA — the exact monovariant result,
///   * the subtransitive graph — same answers, near-linear construction,
///   * unification-based CFA — almost-linear but coarser,
///   * polyvariant — finer than monovariant on reused functions.
///
//===----------------------------------------------------------------------===//

#include "analysis/StandardCFA.h"
#include "core/Reachability.h"
#include "gen/Generators.h"
#include "parser/Parser.h"
#include "poly/Polyvariant.h"
#include "sema/Infer.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "unify/UnificationCFA.h"

#include <cstdio>

using namespace stcfa;

int main() {
  std::string Source = makeCubicFamily(24);
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
    return 1;
  }
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "type error:\n%s", InferDiags.render().c_str());
    return 1;
  }
  std::printf("workload: the paper's cubic family at size 24 "
              "(%u exprs, %u functions)\n\n",
              M->numExprs(), M->numLabels());

  // Total label-set mass = sum of |L(e)| over all occurrences; a smaller
  // mass with the same soundness means a more precise analysis.
  auto mass = [&](auto LabelsOf) {
    uint64_t Total = 0;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      Total += LabelsOf(ExprId(I)).count();
    return Total;
  };

  TablePrinter Table({"analysis", "time(ms)", "set mass", "note"});

  Timer T;
  StandardCFA Std(*M);
  Std.run();
  double StdMs = T.millis();
  uint64_t StdMass = mass([&](ExprId E) { return Std.labelSet(E); });
  Table.addRow({"standard (cubic)", TablePrinter::num(StdMs),
                TablePrinter::num(StdMass), "exact monovariant"});

  T.reset();
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  double GraphMs = T.millis();
  Reachability R(G);
  uint64_t GraphMass = mass([&](ExprId E) { return R.labelsOf(E); });
  Table.addRow({"subtransitive", TablePrinter::num(GraphMs),
                TablePrinter::num(GraphMass),
                GraphMass == StdMass ? "identical answers (Prop. 1/2)"
                                     : "MISMATCH!"});

  T.reset();
  UnificationCFA U(*M);
  U.run();
  double UniMs = T.millis();
  uint64_t UniMass = mass([&](ExprId E) { return U.labelSet(E); });
  Table.addRow({"unification", TablePrinter::num(UniMs),
                TablePrinter::num(UniMass),
                UniMass > StdMass ? "coarser (equality-based)" : "?"});

  T.reset();
  PolyvariantCFA Poly(*M);
  Poly.run();
  double PolyMs = T.millis();
  Reachability PR(Poly.graph());
  uint64_t PolyMass = mass([&](ExprId E) { return PR.labelsOf(E); });
  Table.addRow({"polyvariant", TablePrinter::num(PolyMs),
                TablePrinter::num(PolyMass),
                PolyMass < StdMass ? "finer (per-use summaries)"
                                   : "no win on this shape"});

  std::printf("%s", Table.render().c_str());
  return GraphMass == StdMass && UniMass >= StdMass ? 0 : 1;
}
