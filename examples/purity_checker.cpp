//===-- examples/purity_checker.cpp - Effects analysis in practice --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiler-ish consumer of Section 8's linear-time effects analysis: a
/// "purity report" over a logging-heavy program.  For each `let`-bound
/// definition we report whether *using* it can perform side effects —
/// exactly the question a code-motion or memoisation pass asks.  The
/// answer is computed without ever materialising label sets.
///
/// The program is also executed with the reference interpreter to show
/// that the static report over-approximates the dynamic behaviour.
///
//===----------------------------------------------------------------------===//

#include "apps/EffectsAnalysis.h"
#include "interp/Interpreter.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include <cstdio>

using namespace stcfa;

int main() {
  const char *Source =
      "let log = fn msg => print msg in\n"
      "let traced = fn f => fn x => #2 (log \"call\", f x) in\n"
      "let square = fn n => n * n in\n"
      "let tracedSquare = traced square in\n"
      "let pureTwice = fn g => fn y => g (g y) in\n"
      "let a = tracedSquare 5 in\n"
      "let b = pureTwice square 6 in\n"
      "a + b\n";

  std::printf("--- program ---\n%s\n", Source);

  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
    return 1;
  }
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "type error:\n%s", InferDiags.render().c_str());
    return 1;
  }

  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  EffectsAnalysis Effects(G);
  Effects.run();

  // Purity report: a definition is "impure to use" when its initializer
  // evaluation — or, for functions, the body of any function that can be
  // invoked through it — is side-effecting.  The per-binding question is
  // answered by looking at the `let`'s init and the call sites below it.
  std::printf("--- purity report (static) ---\n");
  forEachExprPreorder(*M, M->root(), [&](ExprId, const Expr *E) {
    const auto *Let = dyn_cast<LetExpr>(E);
    if (!Let)
      return;
    // Is there any side-effecting occurrence inside the definition?
    bool Impure = false;
    forEachExprPreorder(*M, Let->init(), [&](ExprId Sub, const Expr *) {
      Impure |= Effects.isEffectful(Sub);
    });
    std::printf("  %-14s %s\n",
                std::string(M->text(M->var(Let->var()).Name)).c_str(),
                Impure ? "impure (may print/assign)" : "pure");
  });

  std::printf("\n%u of %u occurrences may cause effects\n",
              Effects.numEffectful(), M->numExprs());

  // Dynamic check: the static verdict covers what actually happened.
  InterpreterResult Run = interpret(*M);
  std::printf("\n--- dynamic run ---\n");
  for (const std::string &Line : Run.Output)
    std::printf("  printed: %s\n", Line.c_str());
  std::printf("  result: %s\n", Run.FinalValue.c_str());
  int MissedEffects = 0;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    if (Run.DidEffect[I] && !Effects.isEffectful(ExprId(I)))
      ++MissedEffects;
  std::printf("  dynamically-effectful occurrences missed by the static "
              "analysis: %d (must be 0)\n",
              MissedEffects);
  return MissedEffects == 0 ? 0 : 1;
}
