//===-- examples/quickstart.cpp - First steps with the library ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the public API:
///
///   1. parse a program,
///   2. type-check it,
///   3. build + close the subtransitive control-flow graph,
///   4. answer control-flow queries by plain graph reachability.
///
/// Everything here runs in time linear in the program (for the build and
/// the close) plus linear per query — the paper's headline result.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"
#include "core/Reachability.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include <cstdio>

using namespace stcfa;

int main() {
  // A higher-order program: `twice` applies its argument two times; which
  // functions can each call site invoke?
  const char *Source =
      "let twice = fn f => fn x => f (f x) in\n"
      "let inc = fn a => a + 1 in\n"
      "let dbl = fn b => b * 2 in\n"
      "let pick = fn n => if n < 10 then inc else dbl in\n"
      "twice (pick 7) 100\n";

  std::printf("--- program ---\n%s\n", Source);

  // 1. Parse.
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
    return 1;
  }

  // 2. Type inference (the analysis itself never reads the types; they
  //    certify termination and enable the datatype congruences).
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "type error:\n%s", InferDiags.render().c_str());
    return 1;
  }

  // 3. The subtransitive graph: one linear build pass, one demand-driven
  //    close pass.
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  std::printf("graph: %llu nodes, %llu edges (build+close)\n\n",
              (unsigned long long)G.stats().totalNodes(),
              (unsigned long long)G.stats().totalEdges());

  // 4. Queries are graph reachability.
  Reachability R(G);
  std::printf("--- callable functions per call site ---\n");
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    const auto *App = dyn_cast<AppExpr>(M->expr(ExprId(I)));
    if (!App)
      continue;
    DenseBitset Callees = R.labelsOf(App->fn());
    std::printf("%-12s ->", describeExpr(*M, ExprId(I)).c_str());
    Callees.forEach([&](uint32_t L) {
      const auto *Lam = cast<LamExpr>(M->expr(M->lamOfLabel(LabelId(L))));
      std::printf(" fn(%s)", std::string(M->text(M->var(Lam->param()).Name))
                                 .c_str());
    });
    std::printf("\n");
  }

  // Point queries, Algorithm 1 style.
  std::printf("\n--- point queries ---\n");
  VarId F = VarId::invalid();
  for (uint32_t V = 0; V != M->numVars(); ++V)
    if (M->text(M->var(VarId(V)).Name) == "f")
      F = VarId(V);
  DenseBitset FSet = R.labelsOfVar(F);
  std::printf("the parameter `f` of twice may be %u function(s): inc, dbl\n",
              FSet.count());
  return FSet.count() == 2 ? 0 : 1;
}
