#!/usr/bin/env bash
#===-- scripts/ci.sh - Full CI sweep ---------------------------------------===#
#
# Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
#
# Builds and tests three presets:
#
#   1. default   - RelWithDebInfo, the tier-1 gate (all labels)
#   2. asan      - AddressSanitizer + UBSan, unit + fuzz labels
#   3. tsan      - ThreadSanitizer, unit label (the parallel query/kernel
#                  paths are what TSan is here for; the fuzz sweep under
#                  TSan is slow and adds no thread coverage)
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer presets (tier-1 only)
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 2)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_preset() {
  local dir=$1; shift
  local cmake_args=$1; shift
  local label_args=("$@")
  echo "=== preset ${dir} (${cmake_args:-default}) ==="
  # shellcheck disable=SC2086
  cmake -B "${dir}" -S . ${cmake_args} >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" "${label_args[@]}")
}

# Tier 1: the default build runs every registered test (unit, fuzz,
# bench-smoke, lint-smoke, snapshot-smoke, gen-smoke, examples).
run_preset build ""

# The SIMD seam: the kernel/bitset/generator tests rerun with the row-OR
# dispatch pinned to the scalar path (STCFA_FORCE_SCALAR=1), so a vector
# kernel bug shows up as a native-vs-scalar split instead of green CI on
# machines that happen to lack AVX.  The differential fuzzes ride along —
# the shape fuzz crosses the kernel against StandardCFA, and the delta
# edit-sequence fuzz crosses incremental views against from-scratch
# rebuilds (with its batch steps forced through the kernel) — so this is
# the bit-exactness proof for whichever path the hardware dispatched.
echo "=== forced-scalar rerun (STCFA_FORCE_SCALAR=1) ==="
STCFA_FORCE_SCALAR=1 ./build/tests/stcfa_tests \
  --gtest_filter='SimdOps.*:LabelSetKernel.*:QueryEngineKernel.*:ShapeGen.*' \
  --gtest_brief=1
STCFA_FORCE_SCALAR=1 ./build/tests/stcfa_fuzz_tests \
  --gtest_filter='*DifferentialFuzzShapes*:DeltaFuzz*' --gtest_brief=1

# Snapshot round trip across *processes*: one driver invocation writes a
# snapshot, a second serves the same query from the mapped file, and the
# outputs must be byte-identical (docs/SNAPSHOT.md).  The in-process
# equivalence tests cannot catch a format field that only one process
# interprets; this stage can.  The unit-tier snapshot tests also rerun
# under the ASan/UBSan and TSan presets below.
echo "=== snapshot cross-process round trip ==="
SNAP_DIR=$(mktemp -d)
trap 'rm -rf "${SNAP_DIR}"' EXIT
./build/src/driver/stcfa --corpus=cubic:50 \
  --save-snapshot="${SNAP_DIR}/cubic50.snap" --query=all-labels \
  > "${SNAP_DIR}/write.out"
./build/src/driver/stcfa --load-snapshot="${SNAP_DIR}/cubic50.snap" \
  --query=all-labels > "${SNAP_DIR}/load.out"
diff "${SNAP_DIR}/write.out" "${SNAP_DIR}/load.out"
echo "snapshot round trip: outputs byte-identical across processes"

# Daemon smoke: the real binary in --serve mode, driven through a pipe
# (load -> query -> lint -> metrics -> shutdown, plus one garbage line
# that must produce a structured error, not a crash).  docs/SERVE.md has
# the protocol; the sanitizer presets below rerun this under ASan/UBSan
# via the serve-smoke ctest label.
echo "=== serve smoke (load -> query -> lint -> shutdown over a pipe) ==="
scripts/serve_smoke.sh ./build/src/driver/stcfa

# Static analysis: clang-tidy over the lint subsystem and its driver
# wiring (.clang-tidy at the repo root picks the check families).  Scoped
# to the newest code so the stage stays fast; gated on the tool being
# installed so the sweep still runs on minimal containers.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy (bugprone, performance, concurrency) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p build --quiet src/lint/*.cpp src/driver/Main.cpp
else
  echo "=== clang-tidy not installed; skipping static-analysis stage ==="
fi

if [[ "${FAST}" == 0 ]]; then
  # serve-smoke rides along under ASan/UBSan so the daemon's line reader,
  # fault fallbacks, and epoch teardown get leak/overflow coverage; the
  # unit tier already includes the in-process serve tests, which is what
  # gives TSan its epoch-swap coverage.
  run_preset build-asan "-DSTCFA_SANITIZE=address,undefined" \
    -L 'unit|fuzz|serve-smoke'
  run_preset build-tsan "-DSTCFA_SANITIZE=thread" -L unit
fi

echo "=== ci.sh: all presets green ==="
