#!/usr/bin/env bash
#===-- scripts/serve_smoke.sh - Daemon end-to-end smoke --------------------===#
#
# Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
#
# Drives the real driver binary in `--serve` mode through a pipe:
# load -> query -> lint -> metrics -> shutdown, one JSON request per line
# (docs/SERVE.md).  Asserts a clean exit, one reply line per request, and
# the expected ok/result shape for every verb.  Registered as the
# `serve_smoke` ctest (label `serve-smoke`) so it also runs under the
# ASan/UBSan preset in scripts/ci.sh.
#
# Usage: scripts/serve_smoke.sh <path-to-stcfa>
#
#===------------------------------------------------------------------------===#

set -euo pipefail
bin="${1:?usage: serve_smoke.sh <path-to-stcfa>}"

set +e
out=$(printf '%s\n' \
  '{"id":1,"verb":"load","params":{"source":"let compose = fn f => fn g => fn x => f (g x) in let inc = fn a => a + 1 in compose inc inc 0"}}' \
  '{"id":2,"verb":"query","params":{"kind":"labels"}}' \
  '{"id":3,"verb":"query","params":{"kind":"all-labels"}}' \
  '{"id":4,"verb":"lint"}' \
  'this line is not JSON' \
  '{"id":5,"verb":"metrics"}' \
  '{"id":6,"verb":"shutdown"}' \
  | "$bin" --serve)
status=$?
set -e

echo "$out"
[ "$status" -eq 0 ] || { echo "serve-smoke: daemon exited $status" >&2; exit 1; }

# One reply line per request (the garbage line gets a structured error).
lines=$(printf '%s\n' "$out" | wc -l)
[ "$lines" -eq 7 ] || { echo "serve-smoke: expected 7 replies, got $lines" >&2; exit 1; }

check() { printf '%s\n' "$out" | grep -q -- "$1" \
  || { echo "serve-smoke: missing $1" >&2; exit 1; }; }

check '"id":1,"ok":true'          # load accepted
check '"epoch":1'                 # first epoch installed
check '"id":2,"ok":true'          # labels query answered
check '"id":3,"ok":true'          # all-labels answered
check '"id":4,"ok":true'          # lint ran
check '"id":null,"ok":false'      # garbage -> structured error, not a crash
check '"code":"invalid-argument"'
check '"id":5,"ok":true'          # metrics still served after the error
check '"serve.requests"'
check '"id":6,"ok":true'          # clean shutdown reply
check '"shutdown":true'

echo "serve-smoke: ok"
