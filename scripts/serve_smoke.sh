#!/usr/bin/env bash
#===-- scripts/serve_smoke.sh - Daemon end-to-end smoke --------------------===#
#
# Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
#
# Drives the real driver binary in `--serve` mode through a pipe:
# load -> query -> lint -> edit -> query -> metrics -> shutdown, one JSON
# request per line (docs/SERVE.md).  Asserts a clean exit, one reply line
# per request, and the expected ok/result shape for every verb — the edit
# must install epoch 2 and the follow-up query must answer from it.
# Registered as the `serve_smoke` ctest (label `serve-smoke`) so it also
# runs under the ASan/UBSan preset in scripts/ci.sh.
#
# Usage: scripts/serve_smoke.sh <path-to-stcfa>
#
#===------------------------------------------------------------------------===#

set -euo pipefail
bin="${1:?usage: serve_smoke.sh <path-to-stcfa>}"

set +e
# Top-level `let ...;` items so the edit verb has definitions to target.
out=$(printf '%s\n' \
  '{"id":1,"verb":"load","params":{"source":"let compose = fn f => fn g => fn x => f (g x); let inc = fn a => a + 1; compose inc inc 0"}}' \
  '{"id":2,"verb":"query","params":{"kind":"labels"}}' \
  '{"id":3,"verb":"query","params":{"kind":"all-labels"}}' \
  '{"id":4,"verb":"lint"}' \
  'this line is not JSON' \
  '{"id":5,"verb":"edit","params":{"op":"replace","name":"inc","text":"let inc = fn a => a + 2;"}}' \
  '{"id":6,"verb":"query","params":{"kind":"labels"}}' \
  '{"id":7,"verb":"metrics"}' \
  '{"id":8,"verb":"shutdown"}' \
  | "$bin" --serve)
status=$?
set -e

echo "$out"
[ "$status" -eq 0 ] || { echo "serve-smoke: daemon exited $status" >&2; exit 1; }

# One reply line per request (the garbage line gets a structured error).
lines=$(printf '%s\n' "$out" | wc -l)
[ "$lines" -eq 9 ] || { echo "serve-smoke: expected 9 replies, got $lines" >&2; exit 1; }

check() { printf '%s\n' "$out" | grep -q -- "$1" \
  || { echo "serve-smoke: missing $1" >&2; exit 1; }; }

check '"id":1,"ok":true'          # load accepted
check '"epoch":1'                 # first epoch installed
check '"id":2,"ok":true'          # labels query answered
check '"id":3,"ok":true'          # all-labels answered
check '"id":4,"ok":true'          # lint ran
check '"id":null,"ok":false'      # garbage -> structured error, not a crash
check '"code":"invalid-argument"'
check '"id":5,"ok":true'          # edit accepted after the error
check '"epoch":2'                 # edit installed a fresh epoch
check '"mode":"delta"'            # ...via the incremental path
check '"id":6,"ok":true'          # query answers from the edited epoch
check '"id":7,"ok":true'          # metrics still served
check '"serve.requests"'
check '"serve.edits"'             # the edit counter is exported
check '"id":8,"ok":true'          # clean shutdown reply
check '"shutdown":true'

echo "serve-smoke: ok"
