#!/usr/bin/env bash
#===-- scripts/coverage.sh - Line-coverage summary -------------------------===#
#
# Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
#
# Builds with -DSTCFA_COVERAGE=ON (gcov instrumentation, -O0), runs the
# unit + fuzz suites, and prints a per-file and aggregate line-coverage
# summary for src/ using plain gcov — no gcovr/lcov dependency.
#
# Usage: scripts/coverage.sh
#
# The headline number lands in docs/OBSERVABILITY.md ("Coverage").
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT=$(pwd)
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B build-cov -S . -DSTCFA_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-cov -j "${JOBS}"
(cd build-cov && ctest -j "${JOBS}" -L 'unit|fuzz' --output-on-failure)

# gcov each .gcda next to its object file; collect the per-source
# "Lines executed" stdout summaries and aggregate them.
SCRATCH=$(mktemp -d)
trap 'rm -rf "${SCRATCH}"' EXIT
find "${ROOT}/build-cov" -name '*.gcda' | while read -r gcda; do
  (cd "${SCRATCH}" && gcov -r -s "${ROOT}" -o "$(dirname "${gcda}")" \
      "${gcda}" 2>/dev/null) || true
done > "${SCRATCH}/raw.txt"

awk '
  /^File / {
    file = $0
    sub(/^File .(\.\.\/)*/, "", file); sub(/.$/, "", file)
    next
  }
  /^Lines executed:/ && file != "" {
    split($0, a, /[:% ]+/)  # Lines executed:PP.PP% of N
    pct = a[3]; n = a[5]
    # A file can appear once per object that includes it; keep the best
    # run (gcda sets differ only in which template bodies were emitted).
    if (file ~ /^src\// && n + 0 > 0) {
      cov = pct / 100 * n
      if (!(file in lines) || cov > covd[file]) {
        lines[file] = n; covd[file] = cov
      }
    }
    file = ""
  }
  END {
    for (f in lines)
      printf "%s %d %.1f\n", f, lines[f], covd[f] / lines[f] * 100
  }
' "${SCRATCH}/raw.txt" | sort | awk '
  BEGIN { printf "%-52s %9s %8s\n", "file", "lines", "cover" }
  {
    printf "%-52s %9d %7.1f%%\n", $1, $2, $3
    total += $2; covered += $3 / 100 * $2
  }
  END {
    printf "%-52s %9d %7.1f%%\n", "TOTAL (src/)", total,
           total ? covered / total * 100 : 0
  }
'
