#!/usr/bin/env bash
#===-- scripts/lint_snapshot_smoke.sh - Lint-over-snapshot smoke -----------===#
#
# Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
#
# `--load-snapshot` + `--lint` used to be rejected with the usage exit
# code; the checker passes only need the AST (reparsed from the named
# source) plus the frozen graph, which the snapshot serves as-is.  This
# smoke saves a snapshot of a lint-corpus program, lints over the mapped
# file, and requires the findings to be byte-identical to a live-pipeline
# lint of the same source.
#
# Usage: scripts/lint_snapshot_smoke.sh <path-to-stcfa> <source.stml>
#
#===------------------------------------------------------------------------===#

set -euo pipefail
bin="${1:?usage: lint_snapshot_smoke.sh <path-to-stcfa> <source.stml>}"
src="${2:?usage: lint_snapshot_smoke.sh <path-to-stcfa> <source.stml>}"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$bin" "$src" --save-snapshot="$tmp/lint.snap" >/dev/null
"$bin" "$src" --load-snapshot="$tmp/lint.snap" --lint >"$tmp/snap.out"
"$bin" "$src" --lint >"$tmp/live.out"
diff "$tmp/live.out" "$tmp/snap.out"

echo "lint-snapshot-smoke: ok"
