//===-- tests/serve_test.cpp - Analysis daemon tests ----------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon suite runs a real `serve::Server` in-process over pipe()
/// pairs on its own thread — the same byte-level protocol the driver
/// speaks over stdin/stdout, but with the test on the client end.  This
/// also puts the whole accept/dispatch/epoch-swap machinery under the
/// TSan preset, which reruns the unit label.
///
//===----------------------------------------------------------------------===//

#include "analysis/HybridCFA.h"
#include "gen/Generators.h"
#include "parser/Parser.h"
#include "sema/Infer.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stcfa;
using namespace stcfa::serve;

namespace {

/// A small higher-order program with several lambdas, used throughout.
const char *kProgram = "let compose = fn f => fn g => fn x => f (g x) in\n"
                       "let inc = fn a => a + 1 in\n"
                       "let twice = compose inc inc in\n"
                       "twice 0";

/// Client end of an in-process daemon: owns the pipes and the server
/// thread, sends request lines, reads reply lines.
class ServeHarness {
public:
  explicit ServeHarness(ServeOptions O) {
    EXPECT_EQ(::pipe(Req), 0);
    EXPECT_EQ(::pipe(Rep), 0);
    Daemon = std::make_unique<Server>(Req[0], Rep[1], std::move(O));
    T = std::thread([this] { Exit = Daemon->run(); });
  }

  ~ServeHarness() {
    if (T.joinable()) {
      ::close(Req[1]); // EOF ends the accept loop
      T.join();
    }
    Daemon.reset();
    ::close(Req[0]);
    ::close(Rep[0]);
    ::close(Rep[1]);
  }

  void sendRaw(const std::string &Bytes) {
    size_t Off = 0;
    while (Off != Bytes.size()) {
      ssize_t N = ::write(Req[1], Bytes.data() + Off, Bytes.size() - Off);
      ASSERT_GT(N, 0);
      Off += static_cast<size_t>(N);
    }
  }

  void send(const std::string &Line) { sendRaw(Line + "\n"); }

  /// Blocking read of the next reply line (newline stripped).
  std::string recvLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Chunk[4096];
      ssize_t N = ::read(Rep[0], Chunk, sizeof(Chunk));
      if (N <= 0)
        return Buf; // EOF: surface whatever remains
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// recvLine + parse; fails the test on a malformed reply.
  JsonValue recv() {
    std::string Line = recvLine();
    JsonValue V;
    Status S = parseJson(Line, V);
    EXPECT_TRUE(S.isOk()) << "unparseable reply: " << Line;
    return V;
  }

  /// Sends `shutdown`, checks its reply, and joins the server thread.
  void shutdown() {
    send(R"({"id":"bye","verb":"shutdown"})");
    JsonValue R = recv();
    EXPECT_TRUE(okOf(R));
    ::close(Req[1]);
    T.join();
    EXPECT_EQ(Exit, 0);
  }

  int exitCode() const { return Exit; }

  static bool okOf(const JsonValue &R) {
    const JsonValue *Ok = R.field("ok");
    return Ok && Ok->isBool() && Ok->asBool();
  }
  static std::string errorCodeOf(const JsonValue &R) {
    const JsonValue *E = R.field("error");
    if (!E || !E->isObject())
      return "";
    const JsonValue *C = E->field("code");
    return C && C->isString() ? C->asString() : "";
  }
  static const JsonValue *resultOf(const JsonValue &R) {
    return R.field("result");
  }

private:
  int Req[2] = {-1, -1}, Rep[2] = {-1, -1};
  std::unique_ptr<Server> Daemon;
  std::thread T;
  int Exit = -1;
  std::string Buf;
};

std::string loadRequest(int Id, const std::string &Source) {
  JsonValue Req = JsonValue::object();
  Req.set("id", JsonValue::number(int64_t(Id)));
  Req.set("verb", JsonValue::string("load"));
  JsonValue P = JsonValue::object();
  P.set("source", JsonValue::string(Source));
  Req.set("params", std::move(P));
  return renderJson(Req);
}

std::vector<uint32_t> labelIdsOf(const JsonValue &Reply) {
  std::vector<uint32_t> Ids;
  const JsonValue *Result = ServeHarness::resultOf(Reply);
  if (!Result)
    return Ids;
  const JsonValue *Labels = Result->field("labels");
  if (!Labels || !Labels->isArray())
    return Ids;
  for (const JsonValue &L : Labels->items())
    Ids.push_back(static_cast<uint32_t>(L.asInt()));
  return Ids;
}

/// The batch-mode reference: the same hybrid pipeline the daemon runs.
struct Reference {
  std::unique_ptr<Module> M;
  std::unique_ptr<HybridCFA> Hybrid;

  explicit Reference(const std::string &Source) {
    DiagnosticEngine Diags;
    M = parseProgram(Source, Diags);
    EXPECT_NE(M, nullptr);
    DiagnosticEngine InferDiags;
    (void)inferTypes(*M, InferDiags);
    Hybrid = std::make_unique<HybridCFA>(*M, HybridOptions{});
    EXPECT_TRUE(Hybrid->solve().isOk());
  }

  std::vector<uint32_t> labelsOf(ExprId E) {
    std::vector<uint32_t> Ids;
    Hybrid->labelSet(E).forEach([&](uint32_t L) { Ids.push_back(L); });
    return Ids;
  }
};

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(ServeJson, RoundTripsScalarsAndContainers) {
  JsonValue V;
  ASSERT_TRUE(
      parseJson(R"({"a":[1,-2,3.5],"b":"x\ny","c":true,"d":null})", V)
          .isOk());
  EXPECT_EQ(renderJson(V), R"({"a":[1,-2,3.5],"b":"x\ny","c":true,"d":null})");
  const JsonValue *A = V.field("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->items().size(), 3u);
  EXPECT_TRUE(A->items()[0].isInt());
  EXPECT_EQ(A->items()[1].asInt(), -2);
  EXPECT_FALSE(A->items()[2].isInt());
}

TEST(ServeJson, RejectsHostileShapes) {
  JsonValue V;
  // Truncated document.
  EXPECT_FALSE(parseJson(R"({"id":1)", V).isOk());
  // Trailing garbage.
  EXPECT_FALSE(parseJson(R"({"id":1} extra)", V).isOk());
  // Raw control byte (an embedded NUL) inside a string.
  std::string Nul = "{\"s\":\"a";
  Nul.push_back('\0');
  Nul += "b\"}";
  EXPECT_FALSE(parseJson(Nul, V).isOk());
  // Unknown escape and a lone surrogate-free escape check.
  EXPECT_FALSE(parseJson(R"("\q")", V).isOk());
  // Depth bomb: nesting beyond the configured limit.
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  JsonLimits Limits;
  Limits.MaxDepth = 64;
  EXPECT_FALSE(parseJson(Deep, V, Limits).isOk());
  // The same shape passes under a higher limit.
  Limits.MaxDepth = 200;
  EXPECT_TRUE(parseJson(Deep, V, Limits).isOk());
}

TEST(ServeJson, EscapesControlBytesOnRender) {
  JsonValue V = JsonValue::object();
  std::string S = "a";
  S.push_back('\0');
  S += "\tb";
  V.set("s", JsonValue::string(S));
  std::string Out = renderJson(V);
  EXPECT_EQ(Out.find('\0'), std::string::npos);
  EXPECT_EQ(Out.find('\t'), std::string::npos);
  EXPECT_NE(Out.find("\\u0000"), std::string::npos);
  EXPECT_NE(Out.find("\\t"), std::string::npos);
  // And the escaped form round-trips.
  JsonValue Back;
  ASSERT_TRUE(parseJson(Out, Back).isOk());
  EXPECT_EQ(Back.field("s")->asString(), S);
}

//===----------------------------------------------------------------------===//
// Basic sessions
//===----------------------------------------------------------------------===//

TEST(Serve, LoadQueryLintMetricsShutdown) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kProgram));
  JsonValue Load = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Load)) << renderJson(Load);
  const JsonValue *LR = ServeHarness::resultOf(Load);
  EXPECT_EQ(LR->field("epoch")->asInt(), 1);
  EXPECT_STREQ(LR->field("engine")->asString().c_str(), "subtransitive");
  EXPECT_STREQ(LR->field("cache")->asString().c_str(), "off");
  EXPECT_GT(LR->field("nodes")->asInt(), 0);

  Reference Ref(kProgram);

  // Root label set, bit-exact against the batch pipeline.
  H.send(R"({"id":2,"verb":"query","params":{"kind":"labels"}})");
  JsonValue Q = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Q));
  EXPECT_EQ(labelIdsOf(Q), Ref.labelsOf(Ref.M->root()));

  // An explicit expr index.
  H.send(R"({"id":3,"verb":"query","params":{"kind":"labels","expr":0}})");
  JsonValue Q0 = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Q0));
  EXPECT_EQ(labelIdsOf(Q0), Ref.labelsOf(ExprId(0)));

  // Membership and occurrences agree with the label set.
  H.send(
      R"({"id":4,"verb":"query","params":{"kind":"is-label-in","label":0}})");
  JsonValue Mem = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Mem));
  std::vector<uint32_t> RootIds = Ref.labelsOf(Ref.M->root());
  bool Expect0 =
      std::find(RootIds.begin(), RootIds.end(), 0u) != RootIds.end();
  EXPECT_EQ(ServeHarness::resultOf(Mem)->field("value")->asBool(), Expect0);

  H.send(
      R"({"id":5,"verb":"query","params":{"kind":"occurrences","label":0}})");
  JsonValue Occ = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Occ));
  EXPECT_FALSE(ServeHarness::resultOf(Occ)->field("exprs")->items().empty());

  // all-labels: every non-empty set matches the reference.
  H.send(R"({"id":6,"verb":"query","params":{"kind":"all-labels"}})");
  JsonValue All = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(All));
  for (const JsonValue &Row :
       ServeHarness::resultOf(All)->field("sets")->items()) {
    auto E = static_cast<uint32_t>(Row.field("expr")->asInt());
    std::vector<uint32_t> Ids;
    for (const JsonValue &L : Row.field("labels")->items())
      Ids.push_back(static_cast<uint32_t>(L.asInt()));
    EXPECT_EQ(Ids, Ref.labelsOf(ExprId(E))) << "expr " << E;
  }

  // Lint over the same epoch.
  H.send(R"({"id":7,"verb":"lint"})");
  JsonValue Lint = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Lint)) << renderJson(Lint);
  EXPECT_TRUE(ServeHarness::resultOf(Lint)->field("findings")->isArray());
  EXPECT_FALSE(
      ServeHarness::resultOf(Lint)->field("partial")->asBool());

  // Metrics arrive as one parseable line.
  H.send(R"({"id":8,"verb":"metrics"})");
  JsonValue Met = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Met));
  EXPECT_NE(ServeHarness::resultOf(Met)->field("counters"), nullptr);

  H.shutdown();
}

TEST(Serve, QueryBeforeLoadFailsCleanly) {
  ServeHarness H{ServeOptions{}};
  H.send(R"({"id":1,"verb":"query"})");
  JsonValue R = H.recv();
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "failed-precondition");
  H.send(R"({"id":2,"verb":"lint"})");
  JsonValue L = H.recv();
  EXPECT_EQ(ServeHarness::errorCodeOf(L), "failed-precondition");
  H.shutdown();
}

TEST(Serve, EofWithoutShutdownExitsCleanly) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, "fn x => x"));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  // Destructor closes the request pipe: EOF must end run() with 0.
}

TEST(Serve, DeadlineZeroYieldsDeadlineExceeded) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kProgram));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.send(
      R"({"id":2,"verb":"query","params":{"kind":"labels","deadline_ms":0}})");
  JsonValue R = H.recv();
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "deadline-exceeded");
  // The session survives and answers the next request.
  H.send(R"({"id":3,"verb":"query"})");
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.shutdown();
}

TEST(Serve, InvalidIndicesAreRejected) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kProgram));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.send(
      R"({"id":2,"verb":"query","params":{"kind":"labels","expr":100000}})");
  EXPECT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
  H.send(
      R"({"id":3,"verb":"query","params":{"kind":"is-label-in","label":99}})");
  EXPECT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
  H.send(R"({"id":4,"verb":"query","params":{"kind":"nonsense"}})");
  EXPECT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
  H.send(R"({"id":5,"verb":"lint","params":{"passes":["no-such-pass"]}})");
  EXPECT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
  H.shutdown();
}

//===----------------------------------------------------------------------===//
// Hostile input
//===----------------------------------------------------------------------===//

TEST(Serve, HostileInputsYieldStructuredErrors) {
  ServeOptions O;
  O.MaxRequestBytes = 4096; // keep the oversized case cheap
  ServeHarness H{O};

  auto ExpectError = [&](const std::string &Code) {
    JsonValue R = H.recv();
    EXPECT_FALSE(ServeHarness::okOf(R)) << renderJson(R);
    EXPECT_EQ(ServeHarness::errorCodeOf(R), Code) << renderJson(R);
  };

  H.send(R"({"id":1,"verb":"load")"); // truncated JSON
  ExpectError("invalid-argument");

  std::string Nul = R"({"id":2,"verb":"que)";
  Nul.push_back('\0');
  Nul += R"(ry"})";
  H.send(Nul); // embedded NUL
  ExpectError("invalid-argument");

  H.send(std::string(8192, 'x')); // oversized line, drained not stored
  ExpectError("invalid-argument");

  H.send("\x01\x02garbage\xff\xfe"); // interleaved binary garbage
  ExpectError("invalid-argument");

  H.send(R"([1,2,3])"); // a request must be an object
  ExpectError("invalid-argument");

  H.send(R"({"id":3,"verb":"frobnicate"})"); // unknown verb
  ExpectError("invalid-argument");

  H.send(R"({"id":{},"verb":"query"})"); // structured id
  ExpectError("invalid-argument");

  H.send(R"({"id":4,"verb":"query","params":"labels"})"); // params non-object
  ExpectError("invalid-argument");

  // After all of that, a well-formed session still works.
  H.send(loadRequest(5, kProgram));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.send(R"({"id":6,"verb":"query"})");
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.shutdown();
}

#if STCFA_FAULT_INJECTION
TEST(Serve, FaultSitesDegradeIntoErrorReplies) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kProgram));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));

  // serve.request-parse: the JSON parser's container allocation fails.
  // (Read the raw line before disarming: the harness's own reply parse
  // polls the same process-global site.)
  ASSERT_TRUE(armFault(fault::ServeRequestParse));
  H.send(R"({"id":2,"verb":"query"})");
  std::string RawReply = H.recvLine();
  disarmFaults();
  JsonValue R;
  ASSERT_TRUE(parseJson(RawReply, R).isOk()) << RawReply;
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "out-of-memory");

  // serve.accept-alloc: the line buffer's growth fails; the request is
  // drained, not stored.
  ASSERT_TRUE(armFault(fault::ServeAcceptAlloc));
  H.send(R"({"id":3,"verb":"query"})");
  RawReply = H.recvLine();
  disarmFaults();
  ASSERT_TRUE(parseJson(RawReply, R).isOk()) << RawReply;
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "out-of-memory");

  // serve.reply-write: serialization fails after the work; the static
  // fallback line goes out instead, still valid JSON.
  ASSERT_TRUE(armFault(fault::ServeReplyWrite));
  H.send(R"({"id":4,"verb":"query"})");
  std::string Raw = H.recvLine();
  disarmFaults();
  JsonValue Fallback;
  ASSERT_TRUE(parseJson(Raw, Fallback).isOk()) << Raw;
  EXPECT_FALSE(ServeHarness::okOf(Fallback));
  EXPECT_EQ(ServeHarness::errorCodeOf(Fallback), "internal");

  // Recovery: the same session keeps serving.
  H.send(R"({"id":5,"verb":"query"})");
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.shutdown();
}
#endif

//===----------------------------------------------------------------------===//
// Epochs
//===----------------------------------------------------------------------===//

TEST(Serve, EpochSwapKeepsInFlightAnswersAndRetiresOld) {
  resetMetrics();
  {
    ServeOptions O;
    O.Threads = 2;
    ServeHarness H{O};

    // Epoch 1, then a query against it, then epoch 2 — all written in
    // one burst so the query's worker job overlaps the second load.
    std::string Burst = loadRequest(1, kProgram);
    Burst += "\n";
    Burst += R"({"id":2,"verb":"query","params":{"kind":"labels"}})";
    Burst += "\n";
    Burst += loadRequest(3, "let y = fn f => fn x => f x in y (fn a => a)");
    Burst += "\n";
    Burst += R"({"id":4,"verb":"query","params":{"kind":"labels"}})";
    Burst += "\n";
    H.sendRaw(Burst);

    // Replies may interleave (workers race the reader); match by id.
    std::vector<JsonValue> Replies;
    for (int I = 0; I != 4; ++I)
      Replies.push_back(H.recv());
    auto ById = [&](int64_t Id) -> const JsonValue * {
      for (const JsonValue &R : Replies)
        if (const JsonValue *I = R.field("id"); I && I->isInt() &&
                                                I->asInt() == Id)
          return &R;
      return nullptr;
    };
    const JsonValue *Q1 = ById(2), *Q2 = ById(4), *L2 = ById(3);
    ASSERT_NE(Q1, nullptr);
    ASSERT_NE(Q2, nullptr);
    ASSERT_NE(L2, nullptr);
    ASSERT_TRUE(ServeHarness::okOf(*Q1)) << renderJson(*Q1);
    // The first query was admitted against epoch 1 and must answer for
    // it, regardless of when epoch 2's install lands.
    EXPECT_EQ(ServeHarness::resultOf(*Q1)->field("epoch")->asInt(), 1);
    EXPECT_EQ(labelIdsOf(*Q1), Reference(kProgram).labelsOf(
                                   Reference(kProgram).M->root()));
    // The second query (sent after load 3) answers for epoch 2.
    EXPECT_EQ(ServeHarness::resultOf(*Q2)->field("epoch")->asInt(), 2);

    H.shutdown();
    // After shutdown every worker drained: exactly the current epoch is
    // alive — the superseded mapping has been released.
    EXPECT_EQ(gauge("serve.epochs_live").value(), 1);
    EXPECT_GE(counter("serve.epoch_retirements").value(), 1u);
  }
  // Harness gone: the last epoch reference drained with it.
  EXPECT_EQ(gauge("serve.epochs_live").value(), 0);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(Serve, AdmissionShedsBeyondHardBudget) {
  ServeOptions O;
  O.MaxInflightCost = 1; // any real epoch costs more than 2x this
  ServeHarness H{O};
  H.send(loadRequest(1, kProgram));
  JsonValue Load = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Load));
  ASSERT_GT(ServeHarness::resultOf(Load)->field("nodes")->asInt(), 2);

  H.send(R"({"id":2,"verb":"query"})");
  JsonValue R = H.recv();
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "resource-exhausted");
  H.shutdown();
}

TEST(Serve, AdmissionDegradesBetweenSoftAndHardBudget) {
  // Learn the epoch's cost from a default server first.
  int64_t Nodes = 0;
  {
    ServeHarness Probe{ServeOptions{}};
    Probe.send(loadRequest(1, kProgram));
    JsonValue Load = Probe.recv();
    ASSERT_TRUE(ServeHarness::okOf(Load));
    Nodes = ServeHarness::resultOf(Load)->field("nodes")->asInt();
    Probe.shutdown();
  }
  ASSERT_GE(Nodes, 3);

  // Soft = cost-1: one query lands in (soft, 2*soft] — the degraded band.
  ServeOptions O;
  O.MaxInflightCost = static_cast<uint64_t>(Nodes - 1);
  ServeHarness H{O};
  H.send(loadRequest(1, kProgram));
  ASSERT_TRUE(ServeHarness::okOf(H.recv()));

  H.send(R"({"id":2,"verb":"query","params":{"kind":"labels"}})");
  JsonValue R = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(R)) << renderJson(R);
  const JsonValue *Result = ServeHarness::resultOf(R);
  ASSERT_NE(Result->field("degraded"), nullptr);
  EXPECT_TRUE(Result->field("degraded")->asBool());
  EXPECT_STREQ(Result->field("engine")->asString().c_str(), "partial");
  // The universal answer covers every label.
  Reference Ref(kProgram);
  EXPECT_EQ(labelIdsOf(R).size(), Ref.M->numLabels());

  // Lint cannot degrade: it sheds in the same band.
  H.send(R"({"id":3,"verb":"lint"})");
  EXPECT_EQ(ServeHarness::errorCodeOf(H.recv()), "resource-exhausted");
  H.shutdown();
}

//===----------------------------------------------------------------------===//
// The 500-request mixed session (acceptance gate)
//===----------------------------------------------------------------------===//

TEST(Serve, MixedSession500RequestsNoCrashBitExact) {
  ServeOptions O;
  O.Threads = 2;
  O.MaxRequestBytes = 4096;
  ServeHarness H{O};

  const std::string Source = makeCubicFamily(4);
  H.send(loadRequest(0, Source));
  ASSERT_TRUE(ServeHarness::okOf(H.recv()));
  Reference Ref(Source);
  const uint32_t NumExprs = Ref.M->numExprs();

  uint64_t Rng = 0x5eed;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(Rng >> 33);
  };

  for (int I = 1; I <= 500; ++I) {
    const uint32_t Pick = Next() % 8;
    const std::string Id = std::to_string(I);
    switch (Pick) {
    case 0:
    case 1:
    case 2: { // valid labels query — bit-exact check
      uint32_t E = Next() % NumExprs;
      H.send(R"({"id":)" + Id +
             R"(,"verb":"query","params":{"kind":"labels","expr":)" +
             std::to_string(E) + "}}");
      JsonValue R = H.recv();
      ASSERT_TRUE(ServeHarness::okOf(R)) << renderJson(R);
      ASSERT_EQ(labelIdsOf(R), Ref.labelsOf(ExprId(E)))
          << "request " << I << " expr " << E;
      break;
    }
    case 3: { // malformed JSON
      H.send(R"({"id":)" + Id + R"(,"verb")");
      ASSERT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
      break;
    }
    case 4: { // oversized line
      H.send(std::string(6000, 'z'));
      ASSERT_EQ(ServeHarness::errorCodeOf(H.recv()), "invalid-argument");
      break;
    }
    case 5: { // deadline already expired
      H.send(R"({"id":)" + Id +
             R"(,"verb":"query","params":{"deadline_ms":0}})");
      ASSERT_EQ(ServeHarness::errorCodeOf(H.recv()), "deadline-exceeded");
      break;
    }
    case 6: { // membership query — checked against the reference
      uint32_t E = Next() % NumExprs;
      uint32_t L = Next() % Ref.M->numLabels();
      H.send(R"({"id":)" + Id +
             R"(,"verb":"query","params":{"kind":"is-label-in","expr":)" +
             std::to_string(E) + R"(,"label":)" + std::to_string(L) + "}}");
      JsonValue R = H.recv();
      ASSERT_TRUE(ServeHarness::okOf(R));
      std::vector<uint32_t> Ids = Ref.labelsOf(ExprId(E));
      bool Expect =
          std::find(Ids.begin(), Ids.end(), L) != Ids.end();
      ASSERT_EQ(ServeHarness::resultOf(R)->field("value")->asBool(), Expect);
      break;
    }
    case 7: { // a mid-request fault, when compiled in
#if STCFA_FAULT_INJECTION
      ASSERT_TRUE(armFault(fault::ServeRequestParse));
      H.send(R"({"id":)" + Id + R"(,"verb":"metrics"})");
      std::string Raw = H.recvLine(); // raw first: arming is process-global
      disarmFaults();
      JsonValue R;
      ASSERT_TRUE(parseJson(Raw, R).isOk()) << Raw;
      ASSERT_EQ(ServeHarness::errorCodeOf(R), "out-of-memory");
#else
      H.send(R"({"id":)" + Id + R"(,"verb":"metrics"})");
      ASSERT_TRUE(ServeHarness::okOf(H.recv()));
#endif
      break;
    }
    }
  }
  H.shutdown();
}

//===----------------------------------------------------------------------===//
// Concurrency stress (TSan food)
//===----------------------------------------------------------------------===//

TEST(Serve, ConcurrentLoadsAndQueriesStayRaceFree) {
  ServeOptions O;
  O.Threads = 4;
  ServeHarness H{O};

  // Fire loads and queries without waiting: epochs swap while workers
  // answer against the versions they captured.
  std::string Burst;
  int Requests = 0;
  for (int Round = 0; Round != 10; ++Round) {
    Burst += loadRequest(++Requests,
                         Round % 2 ? kProgram : "let i = fn x => x in i i");
    Burst += "\n";
    for (int Q = 0; Q != 4; ++Q) {
      Burst += R"({"id":)" + std::to_string(++Requests) +
               R"(,"verb":"query","params":{"kind":"labels"}})";
      Burst += "\n";
    }
  }
  H.sendRaw(Burst);
  int OkCount = 0;
  for (int I = 0; I != Requests; ++I) {
    JsonValue R = H.recv();
    // Every reply is structured; queries admitted before the first load
    // completes are impossible here (loads are handled inline first).
    EXPECT_TRUE(ServeHarness::okOf(R)) << renderJson(R);
    OkCount += ServeHarness::okOf(R);
  }
  EXPECT_EQ(OkCount, Requests);
  H.shutdown();
}

//===----------------------------------------------------------------------===//
// Incremental edits (the `edit` verb)
//===----------------------------------------------------------------------===//

/// Edits need top-level `let ...;` items (docs/SERVE.md); `let ... in`
/// is one opaque body expression with no named definitions to target.
const char *kItems = "let f0 = fn x => x;\n"
                     "let f1 = fn x => f0 (x);\n"
                     "let f2 = fn x => f1 (x);\n"
                     "f2 (fn y => y)";

/// kItems after `replace f1` with a doubled wrapper — the expected
/// semantics of the spliced source (canonical expr/label numbering
/// depends only on item order and content, not on splice whitespace).
const char *kItemsEdited = "let f0 = fn x => x;\n"
                           "let f1 = fn x => f0 (f0 (x));\n"
                           "let f2 = fn x => f1 (x);\n"
                           "f2 (fn y => y)";

std::string editRequest(int Id, const std::string &ParamsJson) {
  return R"({"id":)" + std::to_string(Id) + R"(,"verb":"edit","params":)" +
         ParamsJson + "}";
}

const char *kReplaceF1Params =
    R"({"op":"replace","name":"f1","text":"let f1 = fn x => f0 (f0 (x));"})";

TEST(ServeEdit, EditBeforeLoadFailsCleanly) {
  ServeHarness H{ServeOptions{}};
  H.send(editRequest(1, kReplaceF1Params));
  JsonValue R = H.recv();
  EXPECT_FALSE(ServeHarness::okOf(R));
  EXPECT_EQ(ServeHarness::errorCodeOf(R), "failed-precondition");
  // The session is untouched: a load still works afterwards.
  H.send(loadRequest(2, kItems));
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.shutdown();
}

TEST(ServeEdit, MalformedEditsYieldStructuredErrors) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kItems));
  ASSERT_TRUE(ServeHarness::okOf(H.recv()));

  auto ExpectInvalid = [&](const std::string &Line) {
    H.send(Line);
    JsonValue R = H.recv();
    EXPECT_FALSE(ServeHarness::okOf(R)) << renderJson(R);
    EXPECT_EQ(ServeHarness::errorCodeOf(R), "invalid-argument")
        << renderJson(R);
  };

  // Missing params.op entirely.
  ExpectInvalid(R"({"id":2,"verb":"edit"})");
  // Unknown op.
  ExpectInvalid(editRequest(3, R"({"op":"frobnicate"})"));
  // Insert without the required text.
  ExpectInvalid(editRequest(4, R"({"op":"insert"})"));
  // Rename without the required new_name.
  ExpectInvalid(editRequest(5, R"({"op":"rename","name":"f1"})"));
  // Non-string text.
  ExpectInvalid(editRequest(6, R"({"op":"replace","name":"f1","text":7})"));
  // Non-positive line.
  ExpectInvalid(editRequest(
      7, R"({"op":"replace","name":"f1","line":0,)"
         R"("text":"let f1 = fn x => f0 (x);"})"));
  // Structurally valid, semantically rejected: unknown definition...
  ExpectInvalid(editRequest(
      8, R"({"op":"replace","name":"nope","text":"let nope = fn x => x;"})"));
  // ...and deleting a still-referenced definition.
  ExpectInvalid(editRequest(9, R"({"op":"delete","name":"f0"})"));

  // None of the rejections changed the session: the next valid edit
  // installs epoch 2 (the load was epoch 1), and a query answers from it.
  H.send(editRequest(10, kReplaceF1Params));
  JsonValue E = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(E)) << renderJson(E);
  EXPECT_EQ(ServeHarness::resultOf(E)->field("epoch")->asInt(), 2);
  H.send(R"({"id":11,"verb":"query","params":{"kind":"labels"}})");
  EXPECT_TRUE(ServeHarness::okOf(H.recv()));
  H.shutdown();
}

TEST(ServeEdit, DeltaEditInstallsNewEpochBitExact) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kItems));
  ASSERT_TRUE(ServeHarness::okOf(H.recv()));

  H.send(editRequest(2, kReplaceF1Params));
  JsonValue E = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(E)) << renderJson(E);
  const JsonValue *R = ServeHarness::resultOf(E);
  EXPECT_EQ(R->field("epoch")->asInt(), 2);
  EXPECT_STREQ(R->field("engine")->asString().c_str(), "delta");
  EXPECT_STREQ(R->field("mode")->asString().c_str(), "delta");
  // A real replace dirties the replaced definition's cone and re-closes
  // at least one consequence edge; the instrumentation must say so.
  EXPECT_GE(R->field("dirty_nodes")->asInt(), 1);
  EXPECT_GE(R->field("reclose_edges")->asInt(), 0);

  Reference Ref(kItemsEdited);
  EXPECT_EQ(R->field("exprs")->asInt(), int64_t(Ref.M->numExprs()));
  EXPECT_EQ(R->field("labels")->asInt(), int64_t(Ref.M->numLabels()));

  // Every label set served from the delta epoch is bit-exact against a
  // batch pipeline over the edited source.
  H.send(R"({"id":3,"verb":"query","params":{"kind":"all-labels"}})");
  JsonValue All = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(All)) << renderJson(All);
  for (const JsonValue &Row :
       ServeHarness::resultOf(All)->field("sets")->items()) {
    auto Ex = static_cast<uint32_t>(Row.field("expr")->asInt());
    std::vector<uint32_t> Ids;
    for (const JsonValue &L : Row.field("labels")->items())
      Ids.push_back(static_cast<uint32_t>(L.asInt()));
    EXPECT_EQ(Ids, Ref.labelsOf(ExprId(Ex))) << "expr " << Ex;
  }

  // Lint is documented as unavailable on a delta epoch (it has no
  // module): a structured error, not a crash or a stale answer.
  H.send(R"({"id":4,"verb":"lint"})");
  JsonValue Lint = H.recv();
  EXPECT_FALSE(ServeHarness::okOf(Lint)) << renderJson(Lint);
  EXPECT_EQ(ServeHarness::errorCodeOf(Lint), "failed-precondition");
  H.shutdown();
}

TEST(ServeEdit, EditDuringQueryBurstKeepsBoundEpochAnswers) {
  ServeOptions O;
  O.Threads = 2;
  ServeHarness H{O};

  // Load, a query against epoch 1, the edit, a query against epoch 2 —
  // one burst, so the first query's worker job overlaps the edit's
  // inline handling on the reader thread.
  std::string Burst = loadRequest(1, kItems);
  Burst += "\n";
  Burst += R"({"id":2,"verb":"query","params":{"kind":"labels"}})";
  Burst += "\n";
  Burst += editRequest(3, kReplaceF1Params);
  Burst += "\n";
  Burst += R"({"id":4,"verb":"query","params":{"kind":"labels"}})";
  Burst += "\n";
  H.sendRaw(Burst);

  std::vector<JsonValue> Replies;
  for (int I = 0; I != 4; ++I)
    Replies.push_back(H.recv());
  auto ById = [&](int64_t Id) -> const JsonValue * {
    for (const JsonValue &R : Replies)
      if (const JsonValue *I = R.field("id"); I && I->isInt() &&
                                              I->asInt() == Id)
        return &R;
    return nullptr;
  };
  const JsonValue *Q1 = ById(2), *Ed = ById(3), *Q2 = ById(4);
  ASSERT_NE(Q1, nullptr);
  ASSERT_NE(Ed, nullptr);
  ASSERT_NE(Q2, nullptr);

  // The first query was admitted against epoch 1 and answers for the
  // pre-edit program no matter when the delta epoch's install lands.
  ASSERT_TRUE(ServeHarness::okOf(*Q1)) << renderJson(*Q1);
  EXPECT_EQ(ServeHarness::resultOf(*Q1)->field("epoch")->asInt(), 1);
  EXPECT_EQ(labelIdsOf(*Q1),
            Reference(kItems).labelsOf(Reference(kItems).M->root()));

  ASSERT_TRUE(ServeHarness::okOf(*Ed)) << renderJson(*Ed);
  EXPECT_EQ(ServeHarness::resultOf(*Ed)->field("epoch")->asInt(), 2);

  // The second query (sent after the edit) answers for epoch 2 with the
  // edited program's label sets.
  ASSERT_TRUE(ServeHarness::okOf(*Q2)) << renderJson(*Q2);
  EXPECT_EQ(ServeHarness::resultOf(*Q2)->field("epoch")->asInt(), 2);
  EXPECT_EQ(labelIdsOf(*Q2),
            Reference(kItemsEdited).labelsOf(Reference(kItemsEdited).M->root()));
  H.shutdown();
}

#if STCFA_FAULT_INJECTION
TEST(ServeEdit, InstallRaceFallsBackToFullEpochThenRecovers) {
  ServeHarness H{ServeOptions{}};
  H.send(loadRequest(1, kItems));
  ASSERT_TRUE(ServeHarness::okOf(H.recv()));

  // The injected race makes the delta's bound epoch look superseded at
  // install time: the computed delta must be discarded for a full
  // pipeline over the session's (edited) source — never published.
  const uint64_t FallbacksBefore = counter("delta.fallback_full").value();
  ASSERT_TRUE(armFault(fault::DeltaInstallRace));
  H.send(editRequest(2, kReplaceF1Params));
  JsonValue E = H.recv();
  disarmFaults();
  ASSERT_TRUE(ServeHarness::okOf(E)) << renderJson(E);
  const JsonValue *R = ServeHarness::resultOf(E);
  EXPECT_STREQ(R->field("mode")->asString().c_str(), "install-race");
  EXPECT_STREQ(R->field("engine")->asString().c_str(), "subtransitive");
  EXPECT_EQ(R->field("epoch")->asInt(), 2);
  EXPECT_EQ(counter("delta.fallback_full").value(), FallbacksBefore + 1);

  // The fallback epoch serves the edited program exactly.
  H.send(R"({"id":3,"verb":"query","params":{"kind":"labels"}})");
  JsonValue Q = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Q));
  EXPECT_EQ(labelIdsOf(Q),
            Reference(kItemsEdited).labelsOf(Reference(kItemsEdited).M->root()));

  // Disarmed, the next edit rides the delta path again.
  H.send(editRequest(
      4, R"({"op":"replace","name":"f1","text":"let f1 = fn x => f0 (x);"})"));
  JsonValue E2 = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(E2)) << renderJson(E2);
  EXPECT_STREQ(
      ServeHarness::resultOf(E2)->field("mode")->asString().c_str(), "delta");
  EXPECT_STREQ(ServeHarness::resultOf(E2)->field("engine")->asString().c_str(),
               "delta");
  EXPECT_EQ(ServeHarness::resultOf(E2)->field("epoch")->asInt(), 3);
  H.send(R"({"id":5,"verb":"query","params":{"kind":"labels"}})");
  JsonValue Q2 = H.recv();
  ASSERT_TRUE(ServeHarness::okOf(Q2));
  EXPECT_EQ(labelIdsOf(Q2),
            Reference(kItems).labelsOf(Reference(kItems).M->root()));
  H.shutdown();
}
#endif

} // namespace
