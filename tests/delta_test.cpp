//===-- tests/delta_test.cpp - Incremental edit-delta unit tests ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Oracle tests for `DeltaSession`: every edit's published view must
/// answer bit-identically to a from-scratch rebuild of the session's
/// current source.  The shapes are chosen to exercise the dirty-cone
/// machinery where it can go wrong — a diamond (retraction reconverges
/// through a join), a deep chain (the cone is a long path), a skewed
/// join-then-chain, a deleted SCC (`letrec` self-loop), and the empty
/// delta (replacing a definition with its own text).
///
//===----------------------------------------------------------------------===//

#include "delta/DeltaSession.h"
#include "testgen/ShapeGen.h"

#include "DeltaTestUtil.h"
#include "TestUtil.h"

#include <string>
#include <vector>

using namespace stcfa;

namespace {

std::unique_ptr<DeltaSession> makeSession(const std::string &Src) {
  DeltaSession::Options O;
  Status S = Status::ok();
  std::unique_ptr<DeltaSession> Sess = DeltaSession::create(Src, O, S);
  EXPECT_TRUE(Sess != nullptr) << S.toString();
  return Sess;
}

std::string compareToFreshRebuild(DeltaSession &Sess, const std::string &Tag) {
  return compareDeltaToFreshRebuild(Sess, Tag);
}

EditRequest replaceEdit(const std::string &Name, const std::string &Text) {
  EditRequest R;
  R.Kind = EditRequest::Op::Replace;
  R.Name = Name;
  R.Text = Text;
  return R;
}

std::string shapeProgram(const char *Spec) {
  ShapeSpec S;
  EXPECT_TRUE(parseShapeSpec(Spec, S)) << Spec;
  return makeShapeProgram(S);
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

TEST(DeltaSession, CreateMatchesFreshParse) {
  const std::string Src = shapeProgram("deep:6");
  auto Sess = makeSession(Src);
  ASSERT_TRUE(Sess);
  EXPECT_TRUE(Sess->incremental());
  EXPECT_EQ(Sess->numDefs(), 7u); // the wrapper chain f0..f6

  std::unique_ptr<Module> M = parseOrDie(Src);
  ASSERT_TRUE(M);
  EXPECT_EQ(Sess->numExprs(), M->numExprs());
  EXPECT_EQ(Sess->numLabels(), M->numLabels());

  EXPECT_EQ(compareToFreshRebuild(*Sess, "create(deep:6)"), "");
}

TEST(DeltaSession, PureBodyProgramHasNoDefs) {
  // `let ... in ...` is one body expression, not a `;` item.
  auto Sess = makeSession("let f = fn x => x in f (fn y => y)");
  ASSERT_TRUE(Sess);
  EXPECT_TRUE(Sess->incremental());
  EXPECT_EQ(Sess->numDefs(), 0u);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "pure-body"), "");
}

TEST(DeltaSession, ViewMapsAreConsistentInverses) {
  auto Sess = makeSession(shapeProgram("diamond:3"));
  ASSERT_TRUE(Sess);
  DeltaView V;
  ASSERT_TRUE(Sess->freezeView(V).isOk());
  ASSERT_EQ(V.ExprToShadow.size(), V.NumExprs);
  ASSERT_EQ(V.LabelToShadow.size(), V.NumLabels);
  for (uint32_t C = 0; C != V.NumExprs; ++C)
    EXPECT_EQ(V.ExprFromShadow[V.ExprToShadow[C]], C);
  for (uint32_t C = 0; C != V.NumLabels; ++C)
    EXPECT_EQ(V.LabelFromShadow[V.LabelToShadow[C]], C);
  // The canonical root is the last expression a fresh parse creates.
  std::unique_ptr<Module> M = parseOrDie(Sess->currentSource());
  ASSERT_TRUE(M);
  EXPECT_EQ(M->root().index(), V.NumExprs - 1);
}

//===----------------------------------------------------------------------===//
// Replace
//===----------------------------------------------------------------------===//

TEST(DeltaSession, ReplaceInDiamondIsExact) {
  auto Sess = makeSession(shapeProgram("diamond:3"));
  ASSERT_TRUE(Sess);
  // Reroute one diamond branch: l2 now skips its block's entry.
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("l2", "let l2 = fn x => m0 x;"), Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_FALSE(Res.NeedsFullPipeline);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "replace(diamond:3,l2)"), "");
}

TEST(DeltaSession, ReplaceInDeepChainIsExact) {
  auto Sess = makeSession(shapeProgram("deep:8"));
  ASSERT_TRUE(Sess);
  // Snip the middle of the chain: f4 short-circuits to f0.
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("f4", "let f4 = fn x => f0 x;"), Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "replace(deep:8,f4)"), "");
}

TEST(DeltaSession, ReplaceInSkewedShapeIsExact) {
  auto Sess = makeSession(shapeProgram("skewed:4"));
  ASSERT_TRUE(Sess);
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("d2", "let d2 = fn x => d0 (d1 x);"),
                         Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(compareToFreshRebuild(*Sess, "replace(skewed:4,d2)"), "");
}

TEST(DeltaSession, EmptyDeltaKeepsAnswers) {
  auto Sess = makeSession(shapeProgram("deep:5"));
  ASSERT_TRUE(Sess);
  // Replacing a definition with its own text re-parses the subtree but
  // must not change a single answer.
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("f2", "let f2 = fn x => f1 x;"), Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "empty-delta(deep:5,f2)"), "");
}

TEST(DeltaSession, ReplaceCannotChangeTheName) {
  auto Sess = makeSession(shapeProgram("deep:3"));
  ASSERT_TRUE(Sess);
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("f1", "let other = fn x => f0 x;"), Res);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  // The rejection left the session untouched.
  EXPECT_EQ(compareToFreshRebuild(*Sess, "bad-replace(deep:3)"), "");
}

TEST(DeltaSession, ReplaceUnknownNameIsRejected) {
  auto Sess = makeSession(shapeProgram("deep:3"));
  ASSERT_TRUE(Sess);
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("nope", "let nope = fn x => x;"), Res);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Insert / delete
//===----------------------------------------------------------------------===//

TEST(DeltaSession, InsertAppendAndReplaceBody) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Ins;
  Ins.Kind = EditRequest::Op::Insert;
  Ins.Text = "let extra = fn x => f3 (f1 x);";
  ApplyResult Res;
  ASSERT_TRUE(Sess->apply(Ins, Res).isOk());
  EXPECT_EQ(compareToFreshRebuild(*Sess, "insert(deep:4)"), "");

  EditRequest Body;
  Body.Kind = EditRequest::Op::ReplaceBody;
  Body.Text = "extra 0";
  ASSERT_TRUE(Sess->apply(Body, Res).isOk());
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "replace-body(deep:4)"), "");
}

TEST(DeltaSession, InsertBeforeIsExact) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Ins;
  Ins.Kind = EditRequest::Op::Insert;
  Ins.Before = "f2"; // may only reference definitions before f2
  Ins.Text = "let mid = fn x => f1 (f0 x);";
  ApplyResult Res;
  Status S = Sess->apply(Ins, Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Sess->defName(2), "mid");
  EXPECT_EQ(compareToFreshRebuild(*Sess, "insert-before(deep:4)"), "");
}

TEST(DeltaSession, DeleteStillReferencedIsRejected) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Del;
  Del.Kind = EditRequest::Op::Delete;
  Del.Name = "f1"; // f2 references it
  ApplyResult Res;
  Status S = Sess->apply(Del, Res);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  EXPECT_NE(S.message().find("referenced"), std::string::npos) << S.message();
  EXPECT_EQ(compareToFreshRebuild(*Sess, "delete-referenced(deep:4)"), "");
}

TEST(DeltaSession, DeleteUnreferencedIsExact) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Ins;
  Ins.Kind = EditRequest::Op::Insert;
  Ins.Text = "let spare = fn x => f2 x;";
  ApplyResult Res;
  ASSERT_TRUE(Sess->apply(Ins, Res).isOk());

  EditRequest Del;
  Del.Kind = EditRequest::Op::Delete;
  Del.Name = "spare";
  Status S = Sess->apply(Del, Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "delete(deep:4,spare)"), "");
}

TEST(DeltaSession, DeleteDisconnectsAnScc) {
  // The deleted definition is a `letrec` self-loop — an SCC of its own
  // in the value-flow graph.  Retraction must unhook the whole cycle.
  auto Sess = makeSession("let base = fn x => x;\n"
                          "letrec loop = fn x => loop (base x);\n"
                          "base 0");
  ASSERT_TRUE(Sess);
  ASSERT_TRUE(Sess->incremental());
  EditRequest Del;
  Del.Kind = EditRequest::Op::Delete;
  Del.Name = "loop";
  ApplyResult Res;
  Status S = Sess->apply(Del, Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_GT(Res.DirtyNodes, 0u);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "delete-scc"), "");
}

TEST(DeltaSession, ShadowingInsertFallsBackToRebuild) {
  auto Sess = makeSession(shapeProgram("deep:3"));
  ASSERT_TRUE(Sess);
  // A second `f1` re-binds the name for everything after it; the session
  // must rebuild from source so later references re-resolve lexically.
  EditRequest Ins;
  Ins.Kind = EditRequest::Op::Insert;
  Ins.Text = "let f1 = fn x => f0 x;";
  ApplyResult Res;
  Status S = Sess->apply(Ins, Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::FullRebuild);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "shadowing-insert(deep:3)"), "");
}

//===----------------------------------------------------------------------===//
// Rename
//===----------------------------------------------------------------------===//

TEST(DeltaSession, RenameIsMetadataOnly) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Ren;
  Ren.Kind = EditRequest::Op::Rename;
  Ren.Name = "f1";
  Ren.NewName = "zz9";
  ApplyResult Res;
  Status S = Sess->apply(Ren, Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::Metadata);
  EXPECT_EQ(Res.DirtyNodes, 0u);
  EXPECT_NE(Sess->currentSource().find("zz9"), std::string::npos);
  EXPECT_EQ(Sess->currentSource().find("f1"), std::string::npos);
  EXPECT_EQ(compareToFreshRebuild(*Sess, "rename(deep:4)"), "");
}

TEST(DeltaSession, RenameToExistingNameIsRejected) {
  auto Sess = makeSession(shapeProgram("deep:4"));
  ASSERT_TRUE(Sess);
  EditRequest Ren;
  Ren.Kind = EditRequest::Op::Rename;
  Ren.Name = "f1";
  Ren.NewName = "f2";
  ApplyResult Res;
  EXPECT_EQ(Sess->apply(Ren, Res).code(), StatusCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Envelope fallbacks
//===----------------------------------------------------------------------===//

TEST(DeltaSession, DataProgramsSpliceTextOnly) {
  auto Sess = makeSession("data D = A | B;\n"
                          "let pick = fn x => A;\n"
                          "pick B");
  ASSERT_TRUE(Sess);
  EXPECT_FALSE(Sess->incremental());
  ApplyResult Res;
  Status S = Sess->apply(replaceEdit("pick", "let pick = fn x => B;"), Res);
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_TRUE(Res.NeedsFullPipeline);
  EXPECT_EQ(Res.M, ApplyResult::Mode::FullPipeline);
  EXPECT_NE(Sess->currentSource().find("fn x => B"), std::string::npos);
  // The spliced source is a valid program for the full pipeline.
  DiagnosticEngine Diags;
  EXPECT_TRUE(parseProgram(Sess->currentSource(), Diags) != nullptr)
      << Diags.render();
}

TEST(DeltaSession, TextOnlyRejectsBrokenEdits) {
  auto Sess = makeSession("data D = A;\nlet f = fn x => x;\nf A");
  ASSERT_TRUE(Sess);
  ApplyResult Res;
  Status S =
      Sess->apply(replaceEdit("f", "let f = fn x => undefined_name;"), Res);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  // Unchanged: the original text still parses and serves.
  EXPECT_NE(Sess->currentSource().find("fn x => x"), std::string::npos);
}

TEST(DeltaSession, SequencedEditsStayExact) {
  auto Sess = makeSession(shapeProgram("diamond:4"));
  ASSERT_TRUE(Sess);
  ApplyResult Res;
  ASSERT_TRUE(
      Sess->apply(replaceEdit("r2", "let r2 = fn x => m1 (m0 x);"), Res)
          .isOk());
  EditRequest Ins;
  Ins.Kind = EditRequest::Op::Insert;
  Ins.Text = "let tap = fn x => m3 x;";
  ASSERT_TRUE(Sess->apply(Ins, Res).isOk());
  EditRequest Body;
  Body.Kind = EditRequest::Op::ReplaceBody;
  Body.Text = "tap 0";
  ASSERT_TRUE(Sess->apply(Body, Res).isOk());
  EditRequest Ren;
  Ren.Kind = EditRequest::Op::Rename;
  Ren.Name = "l1";
  Ren.NewName = "leftone";
  ASSERT_TRUE(Sess->apply(Ren, Res).isOk());
  EXPECT_EQ(compareToFreshRebuild(*Sess, "sequence(diamond:4)"), "");
}

} // namespace
