//===-- tests/label_set_kernel_test.cpp - Word-parallel kernel tests ------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The label-set kernel's contracts:
///
///   * bit-identical to per-query BFS (`Reachability`) on every program,
///     and to `StandardCFA` on pure programs under exact congruence, over
///     the whole generator corpus;
///   * lane-count independence (1 lane == 4 lanes, word for word);
///   * governed aborts: a kernel stopped at level k reports `Status`,
///     says exactly which label sets are complete, serves those
///     bit-identically to a full closure, and resumes from level k;
///   * `QueryEngine` dispatch: batches at/above the threshold ride the
///     kernel, point queries and sub-threshold batches do not, and an
///     aborted kernel degrades to the BFS path transparently.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/HybridCFA.h"
#include "analysis/StandardCFA.h"
#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/FaultInjection.h"

#include <memory>
#include <string>
#include <vector>

using namespace stcfa;

namespace {

struct Workload {
  std::string Name;
  std::string Source;
  bool Pure; // exact vs StandardCFA under CongruenceMode::None
  // Mode for the main equivalence run.  The realistic corpus programs
  // recurse through datatypes and only close tractably with congruence
  // summaries (the same mode every other suite closes them under);
  // everything else runs summary-free.
  CongruenceMode Mode = CongruenceMode::None;
};

/// The full generator corpus (all program families) plus the realistic
/// corpus programs.
std::vector<Workload> corpus() {
  std::vector<Workload> W;
  for (int N : {1, 4, 12})
    W.push_back({"cubic:" + std::to_string(N), makeCubicFamily(N), true});
  W.push_back({"joinpoint:10", makeJoinPointFamily(10), true});
  W.push_back({"calledonce:8", makeCalledOnceFamily(8), true});
  W.push_back({"dispatch:8", makeDispatchFamily(8), true});
  // The effects family prints but neither refs nor widening: still exact.
  W.push_back({"effects:6", makeEffectsFamily(6), true});
  for (uint64_t Seed : {11ull, 12ull}) {
    RandomProgramOptions O;
    O.Seed = Seed;
    O.NumBindings = 60;
    W.push_back({"random-pure:" + std::to_string(Seed), makeRandomProgram(O),
                 true});
  }
  {
    // Refs make the graph a sound superset of StandardCFA, but the
    // kernel must still match the BFS bit for bit.
    RandomProgramOptions O;
    O.Seed = 21;
    O.NumBindings = 60;
    O.UseRefs = true;
    O.UseEffects = true;
    W.push_back({"random-refs:21", makeRandomProgram(O), false});
  }
  W.push_back({"life", lifeProgram(), false, CongruenceMode::ByType});
  W.push_back({"lexgen:10", makeLexgenLike(10), false, CongruenceMode::ByType});
  W.push_back({"minieval", miniEvalProgram(), false, CongruenceMode::ByType});
  W.push_back(
      {"parsercombo", parserComboProgram(), false, CongruenceMode::ByType});
  return W;
}

struct Built {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  std::unique_ptr<FrozenGraph> F;
};

Built build(const Workload &W, CongruenceMode Mode) {
  Built B;
  B.M = parseMaybeInfer(W.Source);
  if (!B.M)
    return B;
  SubtransitiveConfig C;
  C.Congruence = Mode;
  B.G = std::make_unique<SubtransitiveGraph>(*B.M, C);
  B.G->build();
  B.G->close();
  EXPECT_FALSE(B.G->aborted()) << W.Name;
  B.F = std::make_unique<FrozenGraph>(*B.G);
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Equivalence: kernel vs BFS vs StandardCFA over the corpus
//===----------------------------------------------------------------------===//

TEST(LabelSetKernel, MatchesBfsAndStandardCFAOverCorpus) {
  for (const Workload &W : corpus()) {
    Built B = build(W, W.Mode);
    ASSERT_TRUE(B.M) << W.Name;

    LabelSetKernel K(*B.F);
    ASSERT_TRUE(K.run().isOk()) << W.Name;
    ASSERT_TRUE(K.complete()) << W.Name;

    Reachability R(*B.G);
    StandardCFA Std(*B.M);
    Std.run();

    for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
      ExprId Ex(I);
      DenseBitset Kernel = K.labelsOf(Ex);
      DenseBitset Bfs = R.labelsOf(Ex);
      ASSERT_TRUE(Kernel == Bfs)
          << W.Name << ": kernel != BFS at expr " << I;
      if (W.Pure) {
        ASSERT_TRUE(Kernel == Std.labelSet(Ex))
            << W.Name << ": kernel != StandardCFA at expr " << I;
      } else {
        ASSERT_TRUE(Kernel.containsAll(Std.labelSet(Ex)))
            << W.Name << ": kernel unsound vs StandardCFA at expr " << I;
      }
    }
  }
}

TEST(LabelSetKernel, MatchesBfsUnderCongruence) {
  // Congruence summaries stress nodeOfExpr aliasing: many occurrences
  // share one canonical node and one kernel row.
  for (const Workload &W : corpus()) {
    Built B = build(W, CongruenceMode::ByType);
    ASSERT_TRUE(B.M) << W.Name;
    LabelSetKernel K(*B.F);
    ASSERT_TRUE(K.run().isOk()) << W.Name;
    Reachability R(*B.G);
    for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
      ASSERT_TRUE(K.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))
          << W.Name << " expr " << I;
  }
}

TEST(LabelSetKernel, LaneCountDoesNotChangeResults) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K1(*B.F, 1u);
  LabelSetKernel K4(*B.F, 4u);
  ASSERT_TRUE(K1.run().isOk());
  ASSERT_TRUE(K4.run().isOk());
  EXPECT_GT(K1.numLevels(), 1u);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(K1.labelsOf(ExprId(I)) == K4.labelsOf(ExprId(I)))
        << "expr " << I;
}

//===----------------------------------------------------------------------===//
// Level-compressed (chunked) scheduling
//===----------------------------------------------------------------------===//

TEST(LabelSetKernel, ChunkRowsDoesNotChangeResults) {
  // The chunk size is pure scheduling: per-level (1), default, and
  // everything-in-one-chunk must produce word-identical label sets.
  for (const Workload &W : corpus()) {
    Built B = build(W, W.Mode);
    ASSERT_TRUE(B.M) << W.Name;
    LabelSetKernel PerLevel(*B.F);
    PerLevel.setChunkRows(1);
    LabelSetKernel Default(*B.F);
    LabelSetKernel OneChunk(*B.F);
    OneChunk.setChunkRows(UINT32_MAX);
    ASSERT_TRUE(PerLevel.run().isOk()) << W.Name;
    ASSERT_TRUE(Default.run().isOk()) << W.Name;
    ASSERT_TRUE(OneChunk.run().isOk()) << W.Name;
    for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
      ExprId Ex(I);
      ASSERT_TRUE(PerLevel.labelsOf(Ex) == Default.labelsOf(Ex))
          << W.Name << " expr " << I;
      ASSERT_TRUE(OneChunk.labelsOf(Ex) == Default.labelsOf(Ex))
          << W.Name << " expr " << I;
    }
  }
}

TEST(LabelSetKernel, ChunkGeometryInvariants) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);

  // Per-level chunking: exactly one chunk per level.
  LabelSetKernel PerLevel(*B.F);
  PerLevel.setChunkRows(1);
  ASSERT_TRUE(PerLevel.run().isOk());
  EXPECT_EQ(PerLevel.numChunks(), PerLevel.numLevels());

  // An unbounded chunk budget collapses the whole schedule to one chunk.
  LabelSetKernel OneChunk(*B.F);
  OneChunk.setChunkRows(UINT32_MAX);
  ASSERT_TRUE(OneChunk.run().isOk());
  EXPECT_EQ(OneChunk.numChunks(), 1u);
  EXPECT_GT(OneChunk.numLevels(), 1u);

  // The default sits in between and never exceeds the level count; on
  // completion the chunk cursor matches the chunk count.
  LabelSetKernel Default(*B.F);
  ASSERT_TRUE(Default.run().isOk());
  EXPECT_LE(Default.numChunks(), Default.numLevels());
  EXPECT_GE(Default.numChunks(), 1u);
  EXPECT_EQ(Default.chunksCompleted(), Default.numChunks());
  EXPECT_EQ(Default.levelsCompleted(), Default.numLevels());
  // cubic:12 has many small levels — the default budget must actually
  // compress barriers, not degenerate to per-level.
  EXPECT_LT(Default.numChunks(), Default.numLevels());
}

TEST(LabelSetKernel, ChunkRowsIsStickyAcrossResume) {
  // setChunkRows applies before the first run; the schedule is built
  // once and survives resume (deadline abort at the very start).
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  K.setChunkRows(1);
  LabelSetKernel::Controls C;
  C.D = Deadline::afterMillis(-1);
  EXPECT_EQ(K.run(C).code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(K.chunksCompleted(), 0u);
  ASSERT_TRUE(K.run().isOk());
  EXPECT_EQ(K.numChunks(), K.numLevels());
  EXPECT_EQ(K.chunksCompleted(), K.numChunks());
}

#if STCFA_FAULT_INJECTION

TEST(LabelSetKernel, AbortAndResumeAtChunkGranularity) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);

  LabelSetKernel Full(*B.F);
  ASSERT_TRUE(Full.run().isOk());

  // Force a multi-chunk schedule, then cancel after the first chunk's
  // barrier: the governor polls once per chunk, so `LevelsDone` must
  // land exactly on the first chunk boundary — whole chunks are either
  // fully complete or untouched.
  LabelSetKernel Part(*B.F);
  Part.setChunkRows(4);
  ASSERT_TRUE(armFault(fault::KernelLevelCancel, 1));
  Status S = Part.run();
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::Cancelled);
  ASSERT_GE(Part.numChunks(), 3u) << "cubic:12 unexpectedly few chunks";
  EXPECT_EQ(Part.chunksCompleted(), 1u);
  EXPECT_GT(Part.levelsCompleted(), 0u);
  EXPECT_LT(Part.levelsCompleted(), Part.numLevels());

  // Every expr whose component sits below the completed chunk boundary
  // is flagged complete and answers identically to the full closure.
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    ExprId Ex(I);
    if (Part.exprComplete(Ex))
      ASSERT_TRUE(Part.labelsOf(Ex) == Full.labelsOf(Ex)) << "expr " << I;
    else
      EXPECT_TRUE(Part.labelsOf(Ex).empty()) << "expr " << I;
  }

  // Resume picks up at the chunk cursor and finishes.
  ASSERT_TRUE(Part.run().isOk());
  EXPECT_TRUE(Part.complete());
  EXPECT_EQ(Part.chunksCompleted(), Part.numChunks());
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(Part.labelsOf(ExprId(I)) == Full.labelsOf(ExprId(I)));
}

#endif // STCFA_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// Governed aborts: Status + exact partial-result reporting
//===----------------------------------------------------------------------===//

TEST(LabelSetKernel, ExpiredDeadlineAbortsBeforeAnyLevel) {
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  LabelSetKernel::Controls C;
  C.D = Deadline::afterMillis(-1);
  Status S = K.run(C);
  EXPECT_EQ(S.code(), StatusCode::DeadlineExceeded);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 0u);
  // Nothing is servable except no-node occurrences (trivially empty).
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    ExprId Ex(I);
    if (B.F->nodeOfExpr(Ex) != FrozenGraph::None) {
      EXPECT_FALSE(K.exprComplete(Ex)) << "expr " << I;
    }
    EXPECT_TRUE(K.labelsOf(Ex).empty()) << "expr " << I;
  }
  // The partial kernel resumes to a complete, correct closure.
  ASSERT_TRUE(K.run().isOk());
  EXPECT_TRUE(K.complete());
  Reachability R(*B.G);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(K.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)));
}

TEST(LabelSetKernel, PreCancelledTokenAborts) {
  Built B = build({"cubic:4", makeCubicFamily(4), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  LabelSetKernel::Controls C;
  C.Token = CancellationToken::create();
  C.Token.requestCancel();
  Status S = K.run(C);
  EXPECT_EQ(S.code(), StatusCode::Cancelled);
  EXPECT_EQ(K.levelsCompleted(), 0u);
  EXPECT_FALSE(K.complete());
}

#if STCFA_FAULT_INJECTION

TEST(LabelSetKernel, MidLevelAbortReportsExactlyWhatIsComplete) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);

  // A reference closure to learn the level structure and the answers.
  LabelSetKernel Full(*B.F);
  ASSERT_TRUE(Full.run().isOk());
  const uint32_t Levels = Full.numLevels();
  ASSERT_GE(Levels, 3u) << "cubic:12 condensation unexpectedly shallow";
  const uint32_t K = Levels / 2;

  // Abort a fresh kernel at level K.  Chunk merging is pinned off so the
  // governor polls once per level — the site passes K polls, then fires
  // (under the default chunking cubic:12 collapses to one chunk and the
  // only abort point would be the very start).
  LabelSetKernel Part(*B.F);
  Part.setChunkRows(1);
  ASSERT_TRUE(armFault(fault::KernelLevelCancel, K));
  Status S = Part.run();
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::Cancelled);
  EXPECT_FALSE(Part.complete());
  EXPECT_EQ(Part.levelsCompleted(), K);
  EXPECT_EQ(Part.numLevels(), Levels);

  // The partial-result contract: complete answers are bit-identical to
  // the full closure, incomplete ones are flagged and empty.  At a
  // mid-DAG abort both kinds must exist.
  uint32_t NumComplete = 0, NumIncomplete = 0;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    ExprId Ex(I);
    if (Part.exprComplete(Ex)) {
      ++NumComplete;
      ASSERT_TRUE(Part.labelsOf(Ex) == Full.labelsOf(Ex))
          << "complete expr " << I << " differs from the full closure";
    } else {
      ++NumIncomplete;
      EXPECT_TRUE(Part.labelsOf(Ex).empty()) << "expr " << I;
    }
  }
  EXPECT_GT(NumComplete, 0u);
  EXPECT_GT(NumIncomplete, 0u);

  // Component-level reporting is consistent with itself across resumes:
  // a second run picks up at level K and finishes everything.
  ASSERT_TRUE(Part.run().isOk());
  EXPECT_TRUE(Part.complete());
  EXPECT_EQ(Part.levelsCompleted(), Levels);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(Part.labelsOf(ExprId(I)) == Full.labelsOf(ExprId(I)));
}

TEST(LabelSetKernel, InjectedAllocFailureIsOutOfMemory) {
  Built B = build({"cubic:4", makeCubicFamily(4), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  ASSERT_TRUE(armFault(fault::KernelAlloc));
  Status S = K.run();
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::OutOfMemory);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 0u);
  // The failed schedule build is retried on resume.
  ASSERT_TRUE(K.run().isOk());
  EXPECT_TRUE(K.complete());
}

#endif // STCFA_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// QueryEngine dispatch
//===----------------------------------------------------------------------===//

TEST(QueryEngineKernel, BatchAboveThresholdUsesKernelAndMatchesBfs) {
  Built B = build({"cubic:10", makeCubicFamily(10), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    Es.push_back(ExprId(I));

  QueryEngine Kern(*B.F, 2);
  Kern.setKernelThreshold(1);
  QueryEngine Bfs(*B.F, 2);
  Bfs.setKernelThreshold(0); // kernel disabled: pure BFS engine

  std::vector<DenseBitset> A = Kern.labelsOfBatch(Es);
  std::vector<DenseBitset> Want = Bfs.labelsOfBatch(Es);
  ASSERT_NE(Kern.kernel(), nullptr);
  EXPECT_TRUE(Kern.kernel()->complete());
  EXPECT_EQ(Bfs.kernel(), nullptr);
  for (size_t I = 0; I != Es.size(); ++I)
    ASSERT_TRUE(A[I] == Want[I]) << "expr " << I;

  // Point queries agree too (they never touch the kernel).
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(Kern.labelsOf(ExprId(I)) == Want[I]) << "expr " << I;
}

TEST(QueryEngineKernel, SubThresholdBatchSkipsKernel) {
  Built B = build({"cubic:6", makeCubicFamily(6), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 1);
  E.setKernelThreshold(1000000);
  std::vector<ExprId> Small{B.M->root()};
  (void)E.labelsOfBatch(Small);
  EXPECT_EQ(E.kernel(), nullptr);
}

TEST(QueryEngineKernel, OccurrencesBatchMatchesReverseBfs) {
  for (const Workload &W : corpus()) {
    Built B = build(W, CongruenceMode::ByType);
    ASSERT_TRUE(B.M) << W.Name;
    std::vector<LabelId> Ls;
    for (uint32_t L = 0, E = B.M->numLabels(); L != E; ++L)
      Ls.push_back(LabelId(L));
    if (Ls.empty())
      continue;

    QueryEngine Kern(*B.F, 2);
    Kern.setKernelThreshold(1);
    QueryEngine Bfs(*B.F, 2);
    Bfs.setKernelThreshold(0);
    std::vector<std::vector<ExprId>> A = Kern.occurrencesOfBatch(Ls);
    std::vector<std::vector<ExprId>> Want = Bfs.occurrencesOfBatch(Ls);
    ASSERT_NE(Kern.kernel(), nullptr) << W.Name;
    for (size_t I = 0; I != Ls.size(); ++I) {
      ASSERT_EQ(A[I].size(), Want[I].size()) << W.Name << " label " << I;
      for (size_t J = 0; J != A[I].size(); ++J)
        ASSERT_TRUE(A[I][J] == Want[I][J]) << W.Name << " label " << I;
    }
  }
}

TEST(QueryEngineKernel, MembershipBatchReusesCompletedKernel) {
  Built B = build({"dispatch:8", makeDispatchFamily(8), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine Kern(*B.F, 1);
  Kern.setKernelThreshold(1);
  QueryEngine Bfs(*B.F, 1);
  Bfs.setKernelThreshold(0);

  // Prime the kernel through a big labels batch, then compare every
  // (expr, label) membership probe against the BFS engine.
  std::vector<ExprId> Es;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    Es.push_back(ExprId(I));
  (void)Kern.labelsOfBatch(Es);
  ASSERT_NE(Kern.kernel(), nullptr);

  std::vector<std::pair<ExprId, LabelId>> Qs;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    for (uint32_t L = 0, LE = B.M->numLabels(); L != LE; ++L)
      Qs.push_back({ExprId(I), LabelId(L)});
  EXPECT_EQ(Kern.isLabelInBatch(Qs), Bfs.isLabelInBatch(Qs));
}

TEST(QueryEngineKernel, GovernedBatchOnKernelPathReportsAllDone) {
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 2);
  E.setKernelThreshold(1);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  BatchControl C;
  BatchOutcome Out;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, C, Out);
  EXPECT_TRUE(Out.S.isOk());
  EXPECT_EQ(Out.Completed, Es.size());
  ASSERT_NE(E.kernel(), nullptr);
  Reachability R(*B.G);
  for (size_t I = 0; I != Es.size(); ++I) {
    EXPECT_TRUE(Out.Done[I]);
    ASSERT_TRUE(Sets[I] == R.labelsOf(Es[I])) << "expr " << I;
  }
}

TEST(QueryEngineKernel, GovernedCancelledBatchAnswersNothing) {
  // A pre-cancelled token must stop both the kernel closure and the BFS
  // fallback: zero items answered, `Cancelled` reported.
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 2);
  E.setKernelThreshold(1);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  BatchControl C;
  C.Token = CancellationToken::create();
  C.Token.requestCancel();
  BatchOutcome Out;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, C, Out);
  EXPECT_EQ(Out.S.code(), StatusCode::Cancelled);
  EXPECT_EQ(Out.Completed, 0u);
  for (size_t I = 0; I != Es.size(); ++I) {
    EXPECT_FALSE(Out.Done[I]);
    EXPECT_TRUE(Sets[I].empty());
  }
}

#if STCFA_FAULT_INJECTION

TEST(QueryEngineKernel, AbortedKernelFallsBackToBfsTransparently) {
  // With a kernel fault armed, batches above the threshold still answer
  // correctly through the BFS fallback — kernel degradation is invisible
  // to callers.
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));

  for (std::string_view Site : {fault::KernelAlloc, fault::KernelLevelCancel}) {
    QueryEngine E(*B.F, 2);
    E.setKernelThreshold(1);
    ASSERT_TRUE(armFault(Site));
    std::vector<DenseBitset> Sets = E.labelsOfBatch(Es);
    disarmFaults();
    Reachability R(*B.G);
    for (size_t I = 0; I != Es.size(); ++I)
      ASSERT_TRUE(Sets[I] == R.labelsOf(Es[I]))
          << Site << " expr " << I;
  }
}

#endif // STCFA_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// HybridCFA wiring
//===----------------------------------------------------------------------===//

TEST(QueryEngineKernel, ChunkRowsPlumbsThroughToKernel) {
  Built B = build({"cubic:10", makeCubicFamily(10), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 1);
  EXPECT_EQ(E.kernelChunkRows(), LabelSetKernel::DefaultChunkRows);
  E.setKernelChunkRows(1);
  EXPECT_EQ(E.kernelChunkRows(), 1u);
  E.setKernelThreshold(1);

  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es);
  ASSERT_NE(E.kernel(), nullptr);
  EXPECT_EQ(E.kernel()->chunkRows(), 1u);
  EXPECT_EQ(E.kernel()->numChunks(), E.kernel()->numLevels());

  QueryEngine Bfs(*B.F, 1);
  Bfs.setKernelThreshold(0);
  std::vector<DenseBitset> Want = Bfs.labelsOfBatch(Es);
  for (size_t I = 0; I != Es.size(); ++I)
    ASSERT_TRUE(Sets[I] == Want[I]) << "expr " << I;
}

TEST(QueryEngineKernel, HybridThreadsChunkRowsThrough) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  HybridOptions HO;
  HO.KernelThreshold = 1;
  HO.KernelChunkRows = 2;
  HybridCFA H(*M, HO);
  ASSERT_TRUE(H.solve().isOk());
  QueryEngine *E = H.queryEngine();
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->kernelChunkRows(), 2u);
}

TEST(QueryEngineKernel, HybridThreadsKernelThresholdThrough) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  HybridOptions HO;
  HO.Threads = 2;
  HO.KernelThreshold = 1;
  HybridCFA H(*M, HO);
  ASSERT_TRUE(H.solve().isOk());
  ASSERT_EQ(H.engine(), HybridCFA::Engine::Subtransitive);
  QueryEngine *E = H.queryEngine();
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->kernelThreshold(), 1u);

  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  std::vector<DenseBitset> Sets = E->labelsOfBatch(Es);
  ASSERT_NE(E->kernel(), nullptr);
  // Hybrid rung 1 is standard-CFA-exact; the kernel answers must be too.
  StandardCFA Std(*M);
  Std.run();
  for (size_t I = 0; I != Es.size(); ++I)
    ASSERT_TRUE(Sets[I] == Std.labelSet(Es[I])) << "expr " << I;
}
