//===-- tests/label_set_kernel_test.cpp - Word-parallel kernel tests ------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The label-set kernel's contracts:
///
///   * bit-identical to per-query BFS (`Reachability`) on every program,
///     and to `StandardCFA` on pure programs under exact congruence, over
///     the whole generator corpus;
///   * lane-count independence (1 lane == 4 lanes, word for word);
///   * governed aborts: a kernel stopped at level k reports `Status`,
///     says exactly which label sets are complete, serves those
///     bit-identically to a full closure, and resumes from level k;
///   * `QueryEngine` dispatch: batches at/above the threshold ride the
///     kernel, point queries and sub-threshold batches do not, and an
///     aborted kernel degrades to the BFS path transparently.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/HybridCFA.h"
#include "analysis/StandardCFA.h"
#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/FaultInjection.h"

#include <memory>
#include <string>
#include <vector>

using namespace stcfa;

namespace {

struct Workload {
  std::string Name;
  std::string Source;
  bool Pure; // exact vs StandardCFA under CongruenceMode::None
  // Mode for the main equivalence run.  The realistic corpus programs
  // recurse through datatypes and only close tractably with congruence
  // summaries (the same mode every other suite closes them under);
  // everything else runs summary-free.
  CongruenceMode Mode = CongruenceMode::None;
};

/// The full generator corpus (all program families) plus the realistic
/// corpus programs.
std::vector<Workload> corpus() {
  std::vector<Workload> W;
  for (int N : {1, 4, 12})
    W.push_back({"cubic:" + std::to_string(N), makeCubicFamily(N), true});
  W.push_back({"joinpoint:10", makeJoinPointFamily(10), true});
  W.push_back({"calledonce:8", makeCalledOnceFamily(8), true});
  W.push_back({"dispatch:8", makeDispatchFamily(8), true});
  // The effects family prints but neither refs nor widening: still exact.
  W.push_back({"effects:6", makeEffectsFamily(6), true});
  for (uint64_t Seed : {11ull, 12ull}) {
    RandomProgramOptions O;
    O.Seed = Seed;
    O.NumBindings = 60;
    W.push_back({"random-pure:" + std::to_string(Seed), makeRandomProgram(O),
                 true});
  }
  {
    // Refs make the graph a sound superset of StandardCFA, but the
    // kernel must still match the BFS bit for bit.
    RandomProgramOptions O;
    O.Seed = 21;
    O.NumBindings = 60;
    O.UseRefs = true;
    O.UseEffects = true;
    W.push_back({"random-refs:21", makeRandomProgram(O), false});
  }
  W.push_back({"life", lifeProgram(), false, CongruenceMode::ByType});
  W.push_back({"lexgen:10", makeLexgenLike(10), false, CongruenceMode::ByType});
  W.push_back({"minieval", miniEvalProgram(), false, CongruenceMode::ByType});
  W.push_back(
      {"parsercombo", parserComboProgram(), false, CongruenceMode::ByType});
  return W;
}

struct Built {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  std::unique_ptr<FrozenGraph> F;
};

Built build(const Workload &W, CongruenceMode Mode) {
  Built B;
  B.M = parseMaybeInfer(W.Source);
  if (!B.M)
    return B;
  SubtransitiveConfig C;
  C.Congruence = Mode;
  B.G = std::make_unique<SubtransitiveGraph>(*B.M, C);
  B.G->build();
  B.G->close();
  EXPECT_FALSE(B.G->aborted()) << W.Name;
  B.F = std::make_unique<FrozenGraph>(*B.G);
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Equivalence: kernel vs BFS vs StandardCFA over the corpus
//===----------------------------------------------------------------------===//

TEST(LabelSetKernel, MatchesBfsAndStandardCFAOverCorpus) {
  for (const Workload &W : corpus()) {
    Built B = build(W, W.Mode);
    ASSERT_TRUE(B.M) << W.Name;

    LabelSetKernel K(*B.F);
    ASSERT_TRUE(K.run().isOk()) << W.Name;
    ASSERT_TRUE(K.complete()) << W.Name;

    Reachability R(*B.G);
    StandardCFA Std(*B.M);
    Std.run();

    for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
      ExprId Ex(I);
      DenseBitset Kernel = K.labelsOf(Ex);
      DenseBitset Bfs = R.labelsOf(Ex);
      ASSERT_TRUE(Kernel == Bfs)
          << W.Name << ": kernel != BFS at expr " << I;
      if (W.Pure) {
        ASSERT_TRUE(Kernel == Std.labelSet(Ex))
            << W.Name << ": kernel != StandardCFA at expr " << I;
      } else {
        ASSERT_TRUE(Kernel.containsAll(Std.labelSet(Ex)))
            << W.Name << ": kernel unsound vs StandardCFA at expr " << I;
      }
    }
  }
}

TEST(LabelSetKernel, MatchesBfsUnderCongruence) {
  // Congruence summaries stress nodeOfExpr aliasing: many occurrences
  // share one canonical node and one kernel row.
  for (const Workload &W : corpus()) {
    Built B = build(W, CongruenceMode::ByType);
    ASSERT_TRUE(B.M) << W.Name;
    LabelSetKernel K(*B.F);
    ASSERT_TRUE(K.run().isOk()) << W.Name;
    Reachability R(*B.G);
    for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
      ASSERT_TRUE(K.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))
          << W.Name << " expr " << I;
  }
}

TEST(LabelSetKernel, LaneCountDoesNotChangeResults) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K1(*B.F, 1u);
  LabelSetKernel K4(*B.F, 4u);
  ASSERT_TRUE(K1.run().isOk());
  ASSERT_TRUE(K4.run().isOk());
  EXPECT_GT(K1.numLevels(), 1u);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(K1.labelsOf(ExprId(I)) == K4.labelsOf(ExprId(I)))
        << "expr " << I;
}

//===----------------------------------------------------------------------===//
// Governed aborts: Status + exact partial-result reporting
//===----------------------------------------------------------------------===//

TEST(LabelSetKernel, ExpiredDeadlineAbortsBeforeAnyLevel) {
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  LabelSetKernel::Controls C;
  C.D = Deadline::afterMillis(-1);
  Status S = K.run(C);
  EXPECT_EQ(S.code(), StatusCode::DeadlineExceeded);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 0u);
  // Nothing is servable except no-node occurrences (trivially empty).
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    ExprId Ex(I);
    if (B.F->nodeOfExpr(Ex) != FrozenGraph::None) {
      EXPECT_FALSE(K.exprComplete(Ex)) << "expr " << I;
    }
    EXPECT_TRUE(K.labelsOf(Ex).empty()) << "expr " << I;
  }
  // The partial kernel resumes to a complete, correct closure.
  ASSERT_TRUE(K.run().isOk());
  EXPECT_TRUE(K.complete());
  Reachability R(*B.G);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(K.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)));
}

TEST(LabelSetKernel, PreCancelledTokenAborts) {
  Built B = build({"cubic:4", makeCubicFamily(4), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  LabelSetKernel::Controls C;
  C.Token = CancellationToken::create();
  C.Token.requestCancel();
  Status S = K.run(C);
  EXPECT_EQ(S.code(), StatusCode::Cancelled);
  EXPECT_EQ(K.levelsCompleted(), 0u);
  EXPECT_FALSE(K.complete());
}

#if STCFA_FAULT_INJECTION

TEST(LabelSetKernel, MidLevelAbortReportsExactlyWhatIsComplete) {
  Built B = build({"cubic:12", makeCubicFamily(12), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);

  // A reference closure to learn the level structure and the answers.
  LabelSetKernel Full(*B.F);
  ASSERT_TRUE(Full.run().isOk());
  const uint32_t Levels = Full.numLevels();
  ASSERT_GE(Levels, 3u) << "cubic:12 condensation unexpectedly shallow";
  const uint32_t K = Levels / 2;

  // Abort a fresh kernel at level K: the site passes K per-level polls,
  // then fires.
  LabelSetKernel Part(*B.F);
  ASSERT_TRUE(armFault(fault::KernelLevelCancel, K));
  Status S = Part.run();
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::Cancelled);
  EXPECT_FALSE(Part.complete());
  EXPECT_EQ(Part.levelsCompleted(), K);
  EXPECT_EQ(Part.numLevels(), Levels);

  // The partial-result contract: complete answers are bit-identical to
  // the full closure, incomplete ones are flagged and empty.  At a
  // mid-DAG abort both kinds must exist.
  uint32_t NumComplete = 0, NumIncomplete = 0;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    ExprId Ex(I);
    if (Part.exprComplete(Ex)) {
      ++NumComplete;
      ASSERT_TRUE(Part.labelsOf(Ex) == Full.labelsOf(Ex))
          << "complete expr " << I << " differs from the full closure";
    } else {
      ++NumIncomplete;
      EXPECT_TRUE(Part.labelsOf(Ex).empty()) << "expr " << I;
    }
  }
  EXPECT_GT(NumComplete, 0u);
  EXPECT_GT(NumIncomplete, 0u);

  // Component-level reporting is consistent with itself across resumes:
  // a second run picks up at level K and finishes everything.
  ASSERT_TRUE(Part.run().isOk());
  EXPECT_TRUE(Part.complete());
  EXPECT_EQ(Part.levelsCompleted(), Levels);
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(Part.labelsOf(ExprId(I)) == Full.labelsOf(ExprId(I)));
}

TEST(LabelSetKernel, InjectedAllocFailureIsOutOfMemory) {
  Built B = build({"cubic:4", makeCubicFamily(4), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  LabelSetKernel K(*B.F);
  ASSERT_TRUE(armFault(fault::KernelAlloc));
  Status S = K.run();
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::OutOfMemory);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 0u);
  // The failed schedule build is retried on resume.
  ASSERT_TRUE(K.run().isOk());
  EXPECT_TRUE(K.complete());
}

#endif // STCFA_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// QueryEngine dispatch
//===----------------------------------------------------------------------===//

TEST(QueryEngineKernel, BatchAboveThresholdUsesKernelAndMatchesBfs) {
  Built B = build({"cubic:10", makeCubicFamily(10), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    Es.push_back(ExprId(I));

  QueryEngine Kern(*B.F, 2);
  Kern.setKernelThreshold(1);
  QueryEngine Bfs(*B.F, 2);
  Bfs.setKernelThreshold(0); // kernel disabled: pure BFS engine

  std::vector<DenseBitset> A = Kern.labelsOfBatch(Es);
  std::vector<DenseBitset> Want = Bfs.labelsOfBatch(Es);
  ASSERT_NE(Kern.kernel(), nullptr);
  EXPECT_TRUE(Kern.kernel()->complete());
  EXPECT_EQ(Bfs.kernel(), nullptr);
  for (size_t I = 0; I != Es.size(); ++I)
    ASSERT_TRUE(A[I] == Want[I]) << "expr " << I;

  // Point queries agree too (they never touch the kernel).
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    ASSERT_TRUE(Kern.labelsOf(ExprId(I)) == Want[I]) << "expr " << I;
}

TEST(QueryEngineKernel, SubThresholdBatchSkipsKernel) {
  Built B = build({"cubic:6", makeCubicFamily(6), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 1);
  E.setKernelThreshold(1000000);
  std::vector<ExprId> Small{B.M->root()};
  (void)E.labelsOfBatch(Small);
  EXPECT_EQ(E.kernel(), nullptr);
}

TEST(QueryEngineKernel, OccurrencesBatchMatchesReverseBfs) {
  for (const Workload &W : corpus()) {
    Built B = build(W, CongruenceMode::ByType);
    ASSERT_TRUE(B.M) << W.Name;
    std::vector<LabelId> Ls;
    for (uint32_t L = 0, E = B.M->numLabels(); L != E; ++L)
      Ls.push_back(LabelId(L));
    if (Ls.empty())
      continue;

    QueryEngine Kern(*B.F, 2);
    Kern.setKernelThreshold(1);
    QueryEngine Bfs(*B.F, 2);
    Bfs.setKernelThreshold(0);
    std::vector<std::vector<ExprId>> A = Kern.occurrencesOfBatch(Ls);
    std::vector<std::vector<ExprId>> Want = Bfs.occurrencesOfBatch(Ls);
    ASSERT_NE(Kern.kernel(), nullptr) << W.Name;
    for (size_t I = 0; I != Ls.size(); ++I) {
      ASSERT_EQ(A[I].size(), Want[I].size()) << W.Name << " label " << I;
      for (size_t J = 0; J != A[I].size(); ++J)
        ASSERT_TRUE(A[I][J] == Want[I][J]) << W.Name << " label " << I;
    }
  }
}

TEST(QueryEngineKernel, MembershipBatchReusesCompletedKernel) {
  Built B = build({"dispatch:8", makeDispatchFamily(8), true},
                  CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine Kern(*B.F, 1);
  Kern.setKernelThreshold(1);
  QueryEngine Bfs(*B.F, 1);
  Bfs.setKernelThreshold(0);

  // Prime the kernel through a big labels batch, then compare every
  // (expr, label) membership probe against the BFS engine.
  std::vector<ExprId> Es;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    Es.push_back(ExprId(I));
  (void)Kern.labelsOfBatch(Es);
  ASSERT_NE(Kern.kernel(), nullptr);

  std::vector<std::pair<ExprId, LabelId>> Qs;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
    for (uint32_t L = 0, LE = B.M->numLabels(); L != LE; ++L)
      Qs.push_back({ExprId(I), LabelId(L)});
  EXPECT_EQ(Kern.isLabelInBatch(Qs), Bfs.isLabelInBatch(Qs));
}

TEST(QueryEngineKernel, GovernedBatchOnKernelPathReportsAllDone) {
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 2);
  E.setKernelThreshold(1);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  BatchControl C;
  BatchOutcome Out;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, C, Out);
  EXPECT_TRUE(Out.S.isOk());
  EXPECT_EQ(Out.Completed, Es.size());
  ASSERT_NE(E.kernel(), nullptr);
  Reachability R(*B.G);
  for (size_t I = 0; I != Es.size(); ++I) {
    EXPECT_TRUE(Out.Done[I]);
    ASSERT_TRUE(Sets[I] == R.labelsOf(Es[I])) << "expr " << I;
  }
}

TEST(QueryEngineKernel, GovernedCancelledBatchAnswersNothing) {
  // A pre-cancelled token must stop both the kernel closure and the BFS
  // fallback: zero items answered, `Cancelled` reported.
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  QueryEngine E(*B.F, 2);
  E.setKernelThreshold(1);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  BatchControl C;
  C.Token = CancellationToken::create();
  C.Token.requestCancel();
  BatchOutcome Out;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, C, Out);
  EXPECT_EQ(Out.S.code(), StatusCode::Cancelled);
  EXPECT_EQ(Out.Completed, 0u);
  for (size_t I = 0; I != Es.size(); ++I) {
    EXPECT_FALSE(Out.Done[I]);
    EXPECT_TRUE(Sets[I].empty());
  }
}

#if STCFA_FAULT_INJECTION

TEST(QueryEngineKernel, AbortedKernelFallsBackToBfsTransparently) {
  // With a kernel fault armed, batches above the threshold still answer
  // correctly through the BFS fallback — kernel degradation is invisible
  // to callers.
  Built B = build({"cubic:8", makeCubicFamily(8), true}, CongruenceMode::None);
  ASSERT_TRUE(B.M);
  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = B.M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));

  for (std::string_view Site : {fault::KernelAlloc, fault::KernelLevelCancel}) {
    QueryEngine E(*B.F, 2);
    E.setKernelThreshold(1);
    ASSERT_TRUE(armFault(Site));
    std::vector<DenseBitset> Sets = E.labelsOfBatch(Es);
    disarmFaults();
    Reachability R(*B.G);
    for (size_t I = 0; I != Es.size(); ++I)
      ASSERT_TRUE(Sets[I] == R.labelsOf(Es[I]))
          << Site << " expr " << I;
  }
}

#endif // STCFA_FAULT_INJECTION

//===----------------------------------------------------------------------===//
// HybridCFA wiring
//===----------------------------------------------------------------------===//

TEST(QueryEngineKernel, HybridThreadsKernelThresholdThrough) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  HybridOptions HO;
  HO.Threads = 2;
  HO.KernelThreshold = 1;
  HybridCFA H(*M, HO);
  ASSERT_TRUE(H.solve().isOk());
  ASSERT_EQ(H.engine(), HybridCFA::Engine::Subtransitive);
  QueryEngine *E = H.queryEngine();
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->kernelThreshold(), 1u);

  std::vector<ExprId> Es;
  for (uint32_t I = 0, EN = M->numExprs(); I != EN; ++I)
    Es.push_back(ExprId(I));
  std::vector<DenseBitset> Sets = E->labelsOfBatch(Es);
  ASSERT_NE(E->kernel(), nullptr);
  // Hybrid rung 1 is standard-CFA-exact; the kernel answers must be too.
  StandardCFA Std(*M);
  Std.run();
  for (size_t I = 0; I != Es.size(); ++I)
    ASSERT_TRUE(Sets[I] == Std.labelSet(Es[I])) << "expr " << I;
}
