//===-- tests/paper_examples_test.cpp - Remaining paper examples ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct checks of the paper's remaining worked examples and remarks:
/// the Section 5 polymorphic `id` program, the exponential-type footnote,
/// the Section 2 join-point fragment, plus forward/backward query
/// consistency and the robustness of the front end on malformed input.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "core/Reachability.h"
#include "gen/Generators.h"
#include "sema/Infer.h"

#include <algorithm>

using namespace stcfa;

namespace {

TEST(PaperExamples, Section5PolymorphicId) {
  // fun id x = x; val y = ((id id) id) 1 — the paper's Section 5 program
  // whose let-expansion induces three monotypes for id.
  auto M = parseAndInfer("let id = fn x => x in ((id id) id) 1");
  ASSERT_TRUE(M);

  // The three occurrences of id carry increasingly large instantiated
  // monotypes (Int->Int, (Int->Int)->(Int->Int), ...), exactly the
  // paper's list.
  std::vector<uint32_t> Sizes;
  forEachExprPreorder(*M, M->root(), [&](ExprId, const Expr *E) {
    if (isa<VarExpr>(E) &&
        M->text(M->var(cast<VarExpr>(E)->var()).Name) == "id")
      Sizes.push_back(M->types().treeSize(E->type()));
  });
  ASSERT_EQ(Sizes.size(), 3u);
  std::sort(Sizes.begin(), Sizes.end());
  EXPECT_EQ(Sizes[0], 3u);  // Int -> Int
  EXPECT_EQ(Sizes[1], 7u);  // (Int->Int) -> (Int->Int)
  EXPECT_EQ(Sizes[2], 15u); // one level up again

  // And the analysis is exact on it.
  StandardCFA Std(*M);
  Std.run();
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(R.labelsOf(ExprId(I)) == Std.labelSet(ExprId(I)));
}

TEST(PaperExamples, ExponentialTypeFootnote) {
  // The Section 4 remark: "in general, the tree-size of a program can be
  // exponential in program size".  `pair x = (x, x)` nested n times
  // doubles the type each level.  The demand-driven LC' must stay small
  // regardless, because nothing demands the deep paths.
  std::string Src = "let pair = fn x => (x, x) in\n"
                    "let p1 = pair 1 in\n";
  for (int I = 2; I <= 12; ++I)
    Src += "let p" + std::to_string(I) + " = pair p" + std::to_string(I - 1) +
           " in\n";
  Src += "0";
  auto M = parseAndInfer(Src);
  ASSERT_TRUE(M);

  TypeMetrics TM = computeTypeMetrics(*M);
  EXPECT_GT(TM.MaxTypeSize, 4000u) << "types should explode";

  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  // ...but the demand-driven graph stays proportional to the program.
  EXPECT_LT(G.stats().totalNodes(), uint64_t(M->numExprs()) * 8);
  EXPECT_EQ(G.stats().Widenings, 0u);

  StandardCFA Std(*M);
  Std.run();
  Reachability R(G);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(R.labelsOf(ExprId(I)) == Std.labelSet(ExprId(I)));
}

TEST(PaperExamples, Section2JoinPointGrowsLinearly) {
  // "the information collected for x can grow linearly": at family size n
  // the shared parameter's label set has n elements.
  for (int N : {3, 7, 11}) {
    auto M = parseAndInfer(makeJoinPointFamily(N));
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    Reachability R(G);
    EXPECT_EQ(R.labelsOfVar(varNamed(*M, "x")).count(),
              static_cast<uint32_t>(N));
  }
}

//===----------------------------------------------------------------------===//
// Query consistency
//===----------------------------------------------------------------------===//

class QueryConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryConsistency, ForwardAndBackwardAgree) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 40;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);

  // l ∈ labelsOf(e)  ⟺  e ∈ occurrencesOf(l)  ⟺  isLabelIn(e, l).
  std::vector<DenseBitset> All = R.allLabelSets();
  std::vector<DenseBitset> AllScc = R.allLabelSets(/*UseScc=*/true);
  for (uint32_t L = 0; L != M->numLabels(); ++L) {
    std::vector<ExprId> Occs = R.occurrencesOf(LabelId(L));
    std::vector<bool> InOccs(M->numExprs(), false);
    for (ExprId E : Occs)
      InOccs[E.index()] = true;
    for (uint32_t I = 0; I != M->numExprs(); ++I) {
      bool Forward = All[I].contains(L);
      EXPECT_EQ(Forward, InOccs[I])
          << "expr " << I << " label " << L << " seed " << GetParam();
      EXPECT_EQ(Forward, R.isLabelIn(ExprId(I), LabelId(L)))
          << "expr " << I << " label " << L << " seed " << GetParam();
      EXPECT_TRUE(All[I] == AllScc[I]) << "expr " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryConsistency,
                         ::testing::Range<uint64_t>(1700, 1710));

//===----------------------------------------------------------------------===//
// Front-end robustness
//===----------------------------------------------------------------------===//

TEST(Robustness, MalformedInputsNeverCrash) {
  const char *Bad[] = {
      "",
      "(",
      ")",
      "fn",
      "fn x",
      "fn x =>",
      "let",
      "let x",
      "let x =",
      "let x = 1",
      "let x = 1 in",
      "if 1 then 2",
      "case 1 of",
      "data",
      "data D",
      "data D =",
      "data D = d;1",     // lower-case constructor
      "#0 (1, 2)",        // zero index
      "# (1, 2)",
      "\"unterminated",
      "1 +",
      ":= 2",
      "let let = 1 in 2", // keyword as name
      "x",
      "fn x => y",
      "(* unclosed",
      "let f = fn x => x in f ;",
      "\x01\x02\xff",
  };
  for (const char *Src : Bad) {
    DiagnosticEngine Diags;
    auto M = parseProgram(Src, Diags);
    EXPECT_EQ(M, nullptr) << "accepted malformed input: " << Src;
    EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

TEST(Robustness, DeepNestingWithinLimitParses) {
  std::string Src(500, '(');
  Src += "1";
  Src.append(500, ')');
  auto M = parseOrDie(Src);
  EXPECT_TRUE(M);
}

TEST(Robustness, AbsurdNestingIsRejectedNotCrashed) {
  // Beyond the parser's depth bound the input is diagnosed cleanly.
  std::string Src(100000, '(');
  Src += "1";
  Src.append(100000, ')');
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram(Src, Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Robustness, LongLetSpineEverywhere) {
  // 20k-binding spine: parser loop, inference spine loop, analyses.
  std::string Src;
  Src += "let a0 = fn x => x;\n";
  for (int I = 1; I < 20000; ++I)
    Src += "let a" + std::to_string(I) + " = a" + std::to_string(I - 1) +
           ";\n";
  Src += "a19999";
  auto M = parseAndInfer(Src);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  EXPECT_EQ(R.labelsOf(M->root()).count(), 1u);
}

} // namespace
