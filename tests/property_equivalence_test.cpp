//===-- tests/property_equivalence_test.cpp - Randomized Prop. 1/2 --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based check of the paper's Propositions 1/2 over seeded random
/// programs: for every expression occurrence and binder,
///
///   * without refs: reachability over the subtransitive graph equals the
///     standard (cubic) analysis exactly, under every closure policy;
///   * with refs/effects: reachability is a superset (sound), because the
///     graph closes ref cells invariantly;
///   * congruences ≈1/≈2 are supersets of the exact analysis, and ≈2 is
///     never coarser than ≈1.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "core/Reachability.h"
#include "gen/Generators.h"

using namespace stcfa;

namespace {

struct Verdict {
  bool Sound = true;
  bool Exact = true;
  std::string Witness;
};

Verdict compare(const Module &M, SubtransitiveConfig Config) {
  StandardCFA Std(M);
  Std.run();
  SubtransitiveGraph G(M, Config);
  G.build();
  G.close();
  Reachability R(G);

  Verdict V;
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    DenseBitset Want = Std.labelSet(ExprId(I));
    DenseBitset Got = R.labelsOf(ExprId(I));
    if (Got == Want)
      continue;
    V.Exact = false;
    if (!Got.containsAll(Want)) {
      V.Sound = false;
      V.Witness = "expr " + std::to_string(I);
      return V;
    }
  }
  for (uint32_t I = 0, E = M.numVars(); I != E; ++I) {
    DenseBitset Want = Std.labelSetOfVar(VarId(I));
    DenseBitset Got = R.labelsOfVar(VarId(I));
    if (Got == Want)
      continue;
    V.Exact = false;
    if (!Got.containsAll(Want)) {
      V.Sound = false;
      V.Witness = "var " + std::to_string(I);
      return V;
    }
  }
  return V;
}

class PureProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PureProgramProperty, GraphEqualsStandardCFA) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 80;
  O.UseRefs = false;
  O.UseEffects = false;
  std::string Src = makeRandomProgram(O);
  auto M = parseAndInfer(Src);
  ASSERT_TRUE(M);

  for (ClosurePolicy P :
       {ClosurePolicy::PaperExact, ClosurePolicy::NodeExists}) {
    SubtransitiveConfig C;
    C.Policy = P;
    C.Congruence = CongruenceMode::None;
    Verdict V = compare(*M, C);
    EXPECT_TRUE(V.Sound) << "policy " << static_cast<int>(P) << " unsound at "
                         << V.Witness << "\nseed " << GetParam();
    EXPECT_TRUE(V.Exact) << "policy " << static_cast<int>(P)
                         << " inexact, seed " << GetParam();
  }

  // The undemanded LC materializes full type templates, which are infinite
  // for recursive datatypes (the paper's non-termination caveat) — our
  // widening makes that sound but coarse.  It stays exact on programs
  // whose type templates are finite.
  {
    SubtransitiveConfig C;
    C.Policy = ClosurePolicy::Undemanded;
    C.Congruence = CongruenceMode::None;
    Verdict V = compare(*M, C);
    EXPECT_TRUE(V.Sound) << "undemanded unsound at " << V.Witness
                         << ", seed " << GetParam();

    RandomProgramOptions O2 = O;
    O2.UseDatatypes = false;
    auto M2 = parseAndInfer(makeRandomProgram(O2));
    ASSERT_TRUE(M2);
    Verdict V2 = compare(*M2, C);
    EXPECT_TRUE(V2.Sound) << "undemanded unsound at " << V2.Witness
                          << ", seed " << GetParam();
    EXPECT_TRUE(V2.Exact) << "undemanded inexact on finite-template program,"
                          << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PureProgramProperty,
                         ::testing::Range<uint64_t>(100, 140));

class RefProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefProgramProperty, GraphIsSound) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 80;
  O.UseRefs = true;
  O.UseEffects = true;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);

  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  Verdict V = compare(*M, C);
  EXPECT_TRUE(V.Sound) << "unsound at " << V.Witness << ", seed "
                       << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefProgramProperty,
                         ::testing::Range<uint64_t>(200, 230));

class CongruenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CongruenceProperty, CongruencesAreSoundAndOrdered) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);

  SubtransitiveConfig C1;
  C1.Congruence = CongruenceMode::ByType;
  Verdict V1 = compare(*M, C1);
  EXPECT_TRUE(V1.Sound) << "≈1 unsound at " << V1.Witness << ", seed "
                        << GetParam();

  SubtransitiveConfig C2;
  C2.Congruence = CongruenceMode::ByBaseAndType;
  Verdict V2 = compare(*M, C2);
  EXPECT_TRUE(V2.Sound) << "≈2 unsound at " << V2.Witness << ", seed "
                        << GetParam();

  // ≈2 is finer than ≈1: its result must be contained in ≈1's.
  SubtransitiveGraph G1(*M, C1), G2(*M, C2);
  G1.build();
  G1.close();
  G2.build();
  G2.close();
  Reachability R1(G1), R2(G2);
  for (uint32_t I = 0, E = M->numExprs(); I != E; ++I) {
    DenseBitset S1 = R1.labelsOf(ExprId(I));
    DenseBitset S2 = R2.labelsOf(ExprId(I));
    EXPECT_TRUE(S1.containsAll(S2))
        << "≈2 coarser than ≈1 at expr " << I << ", seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongruenceProperty,
                         ::testing::Range<uint64_t>(300, 320));

class CorpusEquivalence : public ::testing::Test {};

TEST(CorpusEquivalence, CubicFamilyExact) {
  for (int N : {1, 2, 4, 8, 16}) {
    auto M = parseAndInfer(makeCubicFamily(N));
    ASSERT_TRUE(M);
    SubtransitiveConfig C;
    C.Congruence = CongruenceMode::None;
    Verdict V = compare(*M, C);
    EXPECT_TRUE(V.Sound) << "size " << N << " at " << V.Witness;
    EXPECT_TRUE(V.Exact) << "size " << N;
  }
}

TEST(CorpusEquivalence, JoinPointFamilyExact) {
  auto M = parseAndInfer(makeJoinPointFamily(12));
  ASSERT_TRUE(M);
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  Verdict V = compare(*M, C);
  EXPECT_TRUE(V.Sound) << V.Witness;
  EXPECT_TRUE(V.Exact);
}

} // namespace
