//===-- tests/parser_test.cpp - Lexer and parser unit tests ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ast/Printer.h"
#include "parser/Lexer.h"

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<TokenKind> lexKinds(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  std::vector<TokenKind> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T.Kind);
    if (T.Kind == TokenKind::Eof || T.Kind == TokenKind::Error)
      break;
  }
  return Out;
}

TEST(Lexer, Keywords) {
  auto Kinds = lexKinds("fn let letrec in if then else case of end data");
  std::vector<TokenKind> Expected = {
      TokenKind::KwFn,   TokenKind::KwLet,   TokenKind::KwLetRec,
      TokenKind::KwIn,   TokenKind::KwIf,    TokenKind::KwThen,
      TokenKind::KwElse, TokenKind::KwCase,  TokenKind::KwOf,
      TokenKind::KwEnd,  TokenKind::KwData,  TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CompoundOperators) {
  auto Kinds = lexKinds("=> -> = == < <= :=");
  std::vector<TokenKind> Expected = {
      TokenKind::FatArrow, TokenKind::Arrow,     TokenKind::Equal,
      TokenKind::EqualEqual, TokenKind::Less,    TokenKind::LessEqual,
      TokenKind::Assign,   TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, IntAndString) {
  DiagnosticEngine Diags;
  Lexer L("42 \"hello\"", Diags);
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Int);
  EXPECT_EQ(T.IntValue, 42);
  T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::String);
  EXPECT_EQ(T.Text, "hello");
}

TEST(Lexer, UpperVsLowerIdentifiers) {
  DiagnosticEngine Diags;
  Lexer L("foo Bar baz'", Diags);
  EXPECT_EQ(L.next().Kind, TokenKind::Ident);
  EXPECT_EQ(L.next().Kind, TokenKind::UIdent);
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Ident);
  EXPECT_EQ(T.Text, "baz'");
}

TEST(Lexer, LineComments) {
  auto Kinds = lexKinds("1 -- this is a comment\n2");
  std::vector<TokenKind> Expected = {TokenKind::Int, TokenKind::Int,
                                     TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, NestedBlockComments) {
  auto Kinds = lexKinds("1 (* outer (* inner *) still *) 2");
  std::vector<TokenKind> Expected = {TokenKind::Int, TokenKind::Int,
                                     TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  DiagnosticEngine Diags;
  Lexer L("(* never closed", Diags);
  (void)L.next();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedStringIsError) {
  DiagnosticEngine Diags;
  Lexer L("\"oops", Diags);
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Error);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine Diags;
  Lexer L("a\n  b", Diags);
  Token A = L.next();
  EXPECT_EQ(A.Loc.Line, 1u);
  EXPECT_EQ(A.Loc.Col, 1u);
  Token B = L.next();
  EXPECT_EQ(B.Loc.Line, 2u);
  EXPECT_EQ(B.Loc.Col, 3u);
}

//===----------------------------------------------------------------------===//
// Parser: structure
//===----------------------------------------------------------------------===//

TEST(Parser, Identity) {
  auto M = parseOrDie("fn x => x");
  ASSERT_TRUE(M);
  const auto *Lam = dyn_cast<LamExpr>(M->expr(M->root()));
  ASSERT_TRUE(Lam);
  const auto *Body = dyn_cast<VarExpr>(M->expr(Lam->body()));
  ASSERT_TRUE(Body);
  EXPECT_EQ(Body->var(), Lam->param());
}

TEST(Parser, ApplicationIsLeftAssociative) {
  auto M = parseOrDie("let f = fn x => fn y => x in f f f");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *Outer = dyn_cast<AppExpr>(M->expr(Let->body()));
  ASSERT_TRUE(Outer);
  EXPECT_TRUE(isa<AppExpr>(M->expr(Outer->fn())));
  EXPECT_TRUE(isa<VarExpr>(M->expr(Outer->arg())));
}

TEST(Parser, ArithmeticPrecedence) {
  auto M = parseOrDie("1 + 2 * 3");
  ASSERT_TRUE(M);
  const auto *Add = dyn_cast<PrimExpr>(M->expr(M->root()));
  ASSERT_TRUE(Add);
  EXPECT_EQ(Add->op(), PrimOp::Add);
  const auto *Mul = dyn_cast<PrimExpr>(M->expr(Add->args()[1]));
  ASSERT_TRUE(Mul);
  EXPECT_EQ(Mul->op(), PrimOp::Mul);
}

TEST(Parser, ApplicationBindsTighterThanArithmetic) {
  auto M = parseOrDie("let f = fn x => x in f 1 + f 2");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *Add = dyn_cast<PrimExpr>(M->expr(Let->body()));
  ASSERT_TRUE(Add);
  EXPECT_EQ(Add->op(), PrimOp::Add);
  EXPECT_TRUE(isa<AppExpr>(M->expr(Add->args()[0])));
  EXPECT_TRUE(isa<AppExpr>(M->expr(Add->args()[1])));
}

TEST(Parser, UnboundVariableIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("fn x => y", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, ShadowingResolvesToInnermost) {
  auto M = parseOrDie("fn x => fn x => x");
  ASSERT_TRUE(M);
  const auto *Outer = cast<LamExpr>(M->expr(M->root()));
  const auto *Inner = cast<LamExpr>(M->expr(Outer->body()));
  const auto *Occ = cast<VarExpr>(M->expr(Inner->body()));
  EXPECT_EQ(Occ->var(), Inner->param());
  EXPECT_NE(Occ->var(), Outer->param());
}

TEST(Parser, TopLevelBindingsDesugarToNestedLets) {
  auto M = parseOrDie("let a = 1;\nlet b = 2;\na + b");
  ASSERT_TRUE(M);
  const auto *LetA = dyn_cast<LetExpr>(M->expr(M->root()));
  ASSERT_TRUE(LetA);
  const auto *LetB = dyn_cast<LetExpr>(M->expr(LetA->body()));
  ASSERT_TRUE(LetB);
  EXPECT_TRUE(isa<PrimExpr>(M->expr(LetB->body())));
}

TEST(Parser, LetRecRequiresLambda) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("letrec f = 1 in f", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, LetRecScopesOverInitializer) {
  auto M = parseOrDie("letrec f = fn x => f x in f");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  EXPECT_TRUE(Let->isRec());
}

TEST(Parser, PlainLetDoesNotScopeOverInitializer) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("let f = fn x => f x in f", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, TuplesAndProjections) {
  auto M = parseOrDie("#2 (1, 2, 3)");
  ASSERT_TRUE(M);
  const auto *P = dyn_cast<ProjExpr>(M->expr(M->root()));
  ASSERT_TRUE(P);
  EXPECT_EQ(P->index(), 1u); // surface syntax is 1-based
  const auto *T = dyn_cast<TupleExpr>(M->expr(P->tuple()));
  ASSERT_TRUE(T);
  EXPECT_EQ(T->elems().size(), 3u);
}

TEST(Parser, UnitLiterals) {
  auto M = parseOrDie("(unit, ())");
  ASSERT_TRUE(M);
  const auto *T = cast<TupleExpr>(M->expr(M->root()));
  EXPECT_EQ(cast<LitExpr>(M->expr(T->elems()[0]))->litKind(), LitKind::Unit);
  EXPECT_EQ(cast<LitExpr>(M->expr(T->elems()[1]))->litKind(), LitKind::Unit);
}

TEST(Parser, DataDeclarationAndCase) {
  auto M = parseOrDie("data IntList = Nil | Cons(Int, IntList);\n"
                      "case Cons(1, Nil) of Nil => 0 | Cons(h, t) => h end");
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numCons(), 2u);
  const auto *C = dyn_cast<CaseExpr>(M->expr(M->root()));
  ASSERT_TRUE(C);
  ASSERT_EQ(C->arms().size(), 2u);
  EXPECT_EQ(C->arms()[1].Binders.size(), 2u);
}

TEST(Parser, ConstructorArityMismatchIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("data D = C(Int);\nC(1, 2)", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, UnknownConstructorIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("Nope(1)", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, UnknownDatatypeInSignatureIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("data D = C(Missing);\n1", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, MutuallyRecursiveDatatypesAllowed) {
  auto M = parseOrDie("data A = MkA(B) | ZeroA;\ndata B = MkB(A) | ZeroB;\n"
                      "MkA(MkB(ZeroA))");
  EXPECT_TRUE(M);
}

TEST(Parser, RefSyntax) {
  auto M = parseOrDie("let r = ref (fn x => x) in (r := fn y => y, !r)");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  EXPECT_EQ(cast<PrimExpr>(M->expr(Let->init()))->op(), PrimOp::RefNew);
}

TEST(Parser, AssignIsRightAssociativeAndLoose) {
  // `a := b` with an application on the right.
  auto M = parseOrDie(
      "let a = ref (fn x => x) in let f = fn z => z in a := f (fn w => w)");
  ASSERT_TRUE(M);
}

TEST(Parser, IfThenElse) {
  auto M = parseOrDie("if true then 1 else 2");
  ASSERT_TRUE(M);
  EXPECT_TRUE(isa<IfExpr>(M->expr(M->root())));
}

TEST(Parser, CaseArmsAdmitOpenExpressions) {
  // Arm bodies are full expressions: a bare lambda ends at `|`/`end`.
  auto M = parseOrDie("data D = C | E;\n"
                      "case C of C => fn x => x | E => fn y => y end");
  ASSERT_TRUE(M);
  const auto *Case = cast<CaseExpr>(M->expr(M->root()));
  ASSERT_EQ(Case->arms().size(), 2u);
  EXPECT_TRUE(isa<LamExpr>(M->expr(Case->arms()[0].Body)));
  EXPECT_TRUE(isa<LamExpr>(M->expr(Case->arms()[1].Body)));
}

TEST(Parser, NestedCaseInArmBody) {
  auto M = parseOrDie(
      "data D = C | E;\n"
      "case C of C => case E of C => 1 | E => 2 end | E => 3 end");
  ASSERT_TRUE(M);
  const auto *Outer = cast<CaseExpr>(M->expr(M->root()));
  ASSERT_EQ(Outer->arms().size(), 2u);
  EXPECT_TRUE(isa<CaseExpr>(M->expr(Outer->arms()[0].Body)));
}

TEST(Parser, EmptyProgramIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, TrailingGarbageIsError) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("1 )", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Recursion-depth guard: 100k-deep nesting of every self-recursive shape
// must produce a diagnostic, never a stack overflow.
//===----------------------------------------------------------------------===//

/// Expects \p Source to be rejected with a "nesting too deep" diagnostic.
void expectTooDeep(const std::string &Source) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram(Source, Diags), nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  bool Found = false;
  for (const auto &D : Diags.diagnostics())
    Found |= D.Message.find("nesting too deep") != std::string::npos;
  EXPECT_TRUE(Found) << Diags.render();
}

TEST(Parser, DeepParenNestingIsDiagnosed) {
  constexpr size_t Depth = 100000;
  std::string Source(Depth, '(');
  Source += "1";
  Source += std::string(Depth, ')');
  expectTooDeep(Source);
}

TEST(Parser, DeepPrefixChainIsDiagnosed) {
  // `!!!...x` recurses parsePrefix -> parsePrefix, bypassing parseExpr.
  std::string Source = "let r = ref 1 in ";
  Source += std::string(100000, '!');
  Source += "r";
  expectTooDeep(Source);
}

TEST(Parser, DeepProjectionChainIsDiagnosed) {
  // `#1 #1 ... x` recurses parseAtom -> parseAtom.
  std::string Source = "let t = (1, 2) in ";
  for (size_t I = 0; I != 100000; ++I)
    Source += "#1 ";
  Source += "t";
  expectTooDeep(Source);
}

TEST(Parser, DeepLambdaNestingIsDiagnosed) {
  std::string Source;
  for (size_t I = 0; I != 100000; ++I)
    Source += "fn x => ";
  Source += "x";
  expectTooDeep(Source);
}

TEST(Parser, DeepArrowTypeIsDiagnosed) {
  // Right-recursive arrow chains in a constructor signature.
  std::string Source = "data D = MkD(";
  for (size_t I = 0; I != 100000; ++I)
    Source += "Int -> ";
  Source += "Int); 1";
  expectTooDeep(Source);
}

TEST(Parser, DeepRefTypeIsDiagnosed) {
  // `Ref Ref ... Int` recurses parseTypeAtom -> parseTypeAtom.
  std::string Source = "data D = MkD(";
  for (size_t I = 0; I != 100000; ++I)
    Source += "Ref ";
  Source += "Int); 1";
  expectTooDeep(Source);
}

TEST(Parser, ReasonableNestingStillParses) {
  // The guard must not reject plausibly deep real programs.
  constexpr size_t Depth = 500;
  std::string Source(Depth, '(');
  Source += "1";
  Source += std::string(Depth, ')');
  auto M = parseOrDie(Source);
  EXPECT_TRUE(M);
}

TEST(Parser, EachAbstractionGetsAUniqueLabel) {
  auto M = parseOrDie("(fn x => x) (fn y => y)");
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numLabels(), 2u);
  EXPECT_NE(M->lamOfLabel(LabelId(0)), M->lamOfLabel(LabelId(1)));
}

//===----------------------------------------------------------------------===//
// Printer round trips
//===----------------------------------------------------------------------===//

/// Printing a parsed program and reparsing it must preserve the structure
/// (same kinds/sizes); printing again must be a fixed point.
void roundTrip(const std::string &Source) {
  auto M1 = parseOrDie(Source);
  ASSERT_TRUE(M1);
  std::string P1 = printProgram(*M1);
  DiagnosticEngine Diags;
  auto M2 = parseProgram(P1, Diags);
  ASSERT_TRUE(M2) << "reparse failed for:\n" << P1 << Diags.render();
  EXPECT_EQ(M1->numExprs(), M2->numExprs()) << P1;
  EXPECT_EQ(M1->numLabels(), M2->numLabels()) << P1;
  EXPECT_EQ(P1, printProgram(*M2)) << "printer not a fixed point";
}

TEST(Printer, RoundTripCore) {
  roundTrip("fn x => x");
  roundTrip("(fn x => x x) (fn y => y)");
  roundTrip("let f = fn x => fn y => x in f 1 2");
  roundTrip("letrec loop = fn n => if n < 1 then 0 else loop (n - 1) in "
            "loop 10");
}

TEST(Printer, RoundTripOperators) {
  roundTrip("1 + 2 * 3 - 4 / 5");
  roundTrip("(1 + 2) * 3");
  roundTrip("if 1 < 2 then 1 == 1 else 2 <= 3");
  roundTrip("not (1 < 2)");
}

TEST(Printer, RoundTripData) {
  roundTrip("data IntList = Nil | Cons(Int, IntList);\n"
            "case Cons(1, Nil) of Nil => 0 | Cons(h, t) => h + 1 end");
  roundTrip("data Shape = Circle(Int) | Rect(Int, Int);\n"
            "case Circle(3) of Circle(r) => r * r | Rect(w, h) => w * h end");
}

TEST(Printer, RoundTripTuplesAndRefs) {
  roundTrip("#1 (1, (2, 3))");
  roundTrip("let r = ref 1 in (r := 2, !r)");
  roundTrip("print \"hello\"");
}

} // namespace
