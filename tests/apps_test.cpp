//===-- tests/apps_test.cpp - CFA-consuming applications (Sections 8-9) ---===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "apps/EffectsAnalysis.h"
#include "apps/KLimitedCFA.h"
#include "core/Reachability.h"
#include "gen/Generators.h"

using namespace stcfa;

namespace {

SubtransitiveConfig exact() {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  return C;
}

struct Pipeline {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;

  explicit Pipeline(const std::string &Source,
                    SubtransitiveConfig Config = exact()) {
    M = parseMaybeInfer(Source);
    EXPECT_TRUE(M);
    if (!M)
      return;
    G = std::make_unique<SubtransitiveGraph>(*M, Config);
    G->build();
    G->close();
  }
};

//===----------------------------------------------------------------------===//
// LimitedSet lattice
//===----------------------------------------------------------------------===//

TEST(LimitedSet, InsertAndSaturate) {
  LimitedSet S;
  EXPECT_TRUE(S.insert(3, 2));
  EXPECT_TRUE(S.insert(1, 2));
  EXPECT_FALSE(S.insert(3, 2)); // duplicate
  EXPECT_FALSE(S.isMany());
  EXPECT_EQ(S.ids(), (std::vector<uint32_t>{1, 3}));
  EXPECT_TRUE(S.insert(2, 2)); // third distinct element saturates
  EXPECT_TRUE(S.isMany());
  EXPECT_FALSE(S.insert(9, 2)); // Many absorbs
}

TEST(LimitedSet, MergeRules) {
  LimitedSet A, B;
  A.insert(1, 3);
  B.insert(2, 3);
  B.insert(3, 3);
  EXPECT_TRUE(A.mergeFrom(B, 3));
  EXPECT_EQ(A.ids(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_FALSE(A.mergeFrom(B, 3)); // idempotent
  LimitedSet ManySet;
  ManySet.insert(7, 0); // k=0: anything saturates
  EXPECT_TRUE(ManySet.isMany());
  EXPECT_TRUE(A.mergeFrom(ManySet, 3));
  EXPECT_TRUE(A.isMany());
}

//===----------------------------------------------------------------------===//
// Effects analysis
//===----------------------------------------------------------------------===//

TEST(Effects, DirectPrint) {
  Pipeline P("print \"x\"");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  EXPECT_TRUE(E.isEffectful(P.M->root()));
}

TEST(Effects, PureProgramHasNone) {
  Pipeline P("let f = fn x => x + 1 in f (f 2)");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  EXPECT_EQ(E.numEffectful(), 0u);
}

TEST(Effects, CallingAnEffectfulFunction) {
  Pipeline P("let noisy = fn x => #2 (print \"hi\", x) in noisy 1");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  // The application is red; the abstraction itself is a pure value.
  const auto *Let = cast<LetExpr>(P.M->expr(P.M->root()));
  EXPECT_TRUE(E.isEffectful(Let->body()));
  EXPECT_FALSE(E.isEffectful(Let->init()));
}

TEST(Effects, EffectThroughHigherOrderFlow) {
  // The effectful function reaches the call site through an identity.
  Pipeline P("let id = fn f => f in "
             "let noisy = fn x => #2 (print \"hi\", x) in "
             "(id noisy) 7");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  const auto *LetId = cast<LetExpr>(P.M->expr(P.M->root()));
  const auto *LetNoisy = cast<LetExpr>(P.M->expr(LetId->body()));
  EXPECT_TRUE(E.isEffectful(LetNoisy->body()));
  // `id noisy` itself only builds a value: calling id is pure.
  const auto *Outer = cast<AppExpr>(P.M->expr(LetNoisy->body()));
  EXPECT_FALSE(E.isEffectful(Outer->fn()));
}

TEST(Effects, PureCallSiteStaysPure) {
  Pipeline P("let noisy = fn x => #2 (print \"hi\", x) in "
             "let quiet = fn x => x in "
             "(noisy 1, quiet 2)");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  const auto *L1 = cast<LetExpr>(P.M->expr(P.M->root()));
  const auto *L2 = cast<LetExpr>(P.M->expr(L1->body()));
  const auto *T = cast<TupleExpr>(P.M->expr(L2->body()));
  EXPECT_TRUE(E.isEffectful(T->elems()[0]));
  EXPECT_FALSE(E.isEffectful(T->elems()[1]));
}

TEST(Effects, RefAssignmentIsAnEffect) {
  Pipeline P("let r = ref 1 in r := 2");
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  EXPECT_TRUE(E.isEffectful(P.M->root()));
}

TEST(Effects, EffectsFamilySeparatesWrappersFromPure) {
  Pipeline P(makeEffectsFamily(6));
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  StandardCFA Std(*P.M);
  Std.run();
  EffectsAnalysisRef Ref(*P.M, Std);
  Ref.run();
  for (uint32_t I = 0, N = P.M->numExprs(); I != N; ++I)
    EXPECT_EQ(E.isEffectful(ExprId(I)), Ref.isEffectful(ExprId(I)))
        << "expr " << I;
  EXPECT_GT(E.numEffectful(), 0u);
}

class EffectsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EffectsProperty, AgreesWithReferencePipeline) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  O.UseEffects = true;
  O.UseRefs = false;
  Pipeline P(makeRandomProgram(O));
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  StandardCFA Std(*P.M);
  Std.run();
  EffectsAnalysisRef Ref(*P.M, Std);
  Ref.run();
  for (uint32_t I = 0, N = P.M->numExprs(); I != N; ++I)
    EXPECT_EQ(E.isEffectful(ExprId(I)), Ref.isEffectful(ExprId(I)))
        << "expr " << I << " seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EffectsProperty,
                         ::testing::Range<uint64_t>(400, 420));

class EffectsRefProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EffectsRefProperty, SoundWithRefs) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  O.UseEffects = true;
  O.UseRefs = true;
  Pipeline P(makeRandomProgram(O));
  ASSERT_TRUE(P.G);
  EffectsAnalysis E(*P.G);
  E.run();
  StandardCFA Std(*P.M);
  Std.run();
  EffectsAnalysisRef Ref(*P.M, Std);
  Ref.run();
  // Graph effects may be coarser (invariant ref closure) but never miss.
  for (uint32_t I = 0, N = P.M->numExprs(); I != N; ++I)
    if (Ref.isEffectful(ExprId(I))) {
      EXPECT_TRUE(E.isEffectful(ExprId(I)))
          << "missed effect at expr " << I << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EffectsRefProperty,
                         ::testing::Range<uint64_t>(500, 515));

//===----------------------------------------------------------------------===//
// k-limited CFA
//===----------------------------------------------------------------------===//

TEST(KLimited, SmallSetsAreExact) {
  Pipeline P("let pick = fn b => if b then fn x => x else fn y => y in "
             "pick true");
  ASSERT_TRUE(P.G);
  KLimitedCFA KL(*P.G, 3);
  KL.run();
  const auto *Let = cast<LetExpr>(P.M->expr(P.M->root()));
  const LimitedSet &S = KL.ofExpr(Let->body());
  ASSERT_FALSE(S.isMany());
  EXPECT_EQ(S.size(), 2u);
}

TEST(KLimited, SaturatesBeyondK) {
  // Five functions joined at one variable; k=2 must report Many.
  std::string Src = "let f = fn x => x;\n";
  for (int I = 0; I < 5; ++I)
    Src += "let r" + std::to_string(I) + " = f (fn a" + std::to_string(I) +
           " => a" + std::to_string(I) + ");\n";
  Src += "r0";
  Pipeline P(Src);
  ASSERT_TRUE(P.G);
  KLimitedCFA KL(*P.G, 2);
  KL.run();
  EXPECT_TRUE(KL.ofVar(varNamed(*P.M, "x")).isMany());
}

class KLimitedProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(KLimitedProperty, MatchesExactReachability) {
  auto [Seed, K] = GetParam();
  RandomProgramOptions O;
  O.Seed = Seed;
  O.NumBindings = 60;
  Pipeline P(makeRandomProgram(O));
  ASSERT_TRUE(P.G);
  KLimitedCFA KL(*P.G, K);
  KL.run();
  Reachability R(*P.G);
  for (uint32_t I = 0, N = P.M->numExprs(); I != N; ++I) {
    DenseBitset Exact = R.labelsOf(ExprId(I));
    const LimitedSet &S = KL.ofExpr(ExprId(I));
    if (S.isMany()) {
      EXPECT_GT(Exact.count(), K) << "expr " << I << " seed " << Seed;
    } else {
      ASSERT_EQ(S.size(), Exact.count()) << "expr " << I << " seed " << Seed;
      for (uint32_t L : S.ids())
        EXPECT_TRUE(Exact.contains(L)) << "expr " << I << " seed " << Seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, KLimitedProperty,
    ::testing::Combine(::testing::Values<uint64_t>(600, 601, 602, 603, 604),
                       ::testing::Values<uint32_t>(1, 2, 3, 5)));

//===----------------------------------------------------------------------===//
// Called-once analysis
//===----------------------------------------------------------------------===//

TEST(CalledOnce, Family) {
  Pipeline P(makeCalledOnceFamily(4));
  ASSERT_TRUE(P.G);
  CalledOnceAnalysis CO(*P.G);
  CO.run();
  int Once = 0, Many = 0, Never = 0;
  for (uint32_t L = 0; L != P.M->numLabels(); ++L) {
    switch (CO.countOf(LabelId(L))) {
    case CalledOnceAnalysis::CallCount::Once:
      ++Once;
      break;
    case CalledOnceAnalysis::CallCount::Many:
      ++Many;
      break;
    case CalledOnceAnalysis::CallCount::Never:
      ++Never;
      break;
    }
  }
  EXPECT_EQ(Once, 4);  // once1..once4
  EXPECT_EQ(Many, 4);  // twice1..twice4
  EXPECT_EQ(Never, 0);
}

TEST(CalledOnce, UniqueSiteIsReported) {
  Pipeline P("let g = fn x => x in g 5");
  ASSERT_TRUE(P.G);
  CalledOnceAnalysis CO(*P.G);
  CO.run();
  LabelId G1 = labelOfFnWithParam(*P.M, "x");
  ASSERT_EQ(CO.countOf(G1), CalledOnceAnalysis::CallCount::Once);
  ExprId Site = CO.uniqueCallSite(G1);
  EXPECT_TRUE(isa<AppExpr>(P.M->expr(Site)));
}

TEST(CalledOnce, UncalledFunction) {
  Pipeline P("let dead = fn x => x in 42");
  ASSERT_TRUE(P.G);
  CalledOnceAnalysis CO(*P.G);
  CO.run();
  EXPECT_EQ(CO.countOf(labelOfFnWithParam(*P.M, "x")),
            CalledOnceAnalysis::CallCount::Never);
}

class CalledOnceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CalledOnceProperty, MatchesBruteForce) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 50;
  Pipeline P(makeRandomProgram(O));
  ASSERT_TRUE(P.G);
  CalledOnceAnalysis CO(*P.G);
  CO.run();
  Reachability R(*P.G);

  // Brute force: for each label, enumerate application sites whose
  // operator can evaluate to it.
  for (uint32_t L = 0; L != P.M->numLabels(); ++L) {
    int Sites = 0;
    ExprId TheSite = ExprId::invalid();
    for (uint32_t I = 0, N = P.M->numExprs(); I != N; ++I) {
      const auto *A = dyn_cast<AppExpr>(P.M->expr(ExprId(I)));
      if (!A)
        continue;
      if (R.labelsOf(A->fn()).contains(L)) {
        ++Sites;
        TheSite = ExprId(I);
      }
    }
    auto Want = Sites == 0   ? CalledOnceAnalysis::CallCount::Never
                : Sites == 1 ? CalledOnceAnalysis::CallCount::Once
                             : CalledOnceAnalysis::CallCount::Many;
    EXPECT_EQ(CO.countOf(LabelId(L)), Want)
        << "label " << L << " seed " << GetParam();
    if (Sites == 1) {
      EXPECT_EQ(CO.uniqueCallSite(LabelId(L)), TheSite);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalledOnceProperty,
                         ::testing::Range<uint64_t>(700, 720));

} // namespace
