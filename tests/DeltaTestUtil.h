//===-- tests/DeltaTestUtil.h - Shared edit-delta test oracle ---*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle shared by the delta unit tests and the
/// edit-sequence fuzzer: publish the session's view, rebuild the
/// session's current source from scratch through the ordinary pipeline,
/// and require bit-identical answers for every canonical expression and
/// label.  Any divergence returns a report carrying the caller's tag
/// (program seed / edit seed / step), so a fuzz failure is reproducible
/// from the test log alone.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_TESTS_DELTATESTUTIL_H
#define STCFA_TESTS_DELTATESTUTIL_H

#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "core/SubtransitiveGraph.h"
#include "delta/DeltaSession.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace stcfa {

/// Publishes \p Sess's view and cross-checks every point answer —
/// `labelsOf` for all canonical expressions, `occurrencesOf` for all
/// canonical labels — against a from-scratch pipeline over the session's
/// current source.  With \p UseBatch the delta side's rows come from
/// `labelsOfBatch` with the kernel threshold forced to zero, so the
/// word-parallel kernel (or its forced-scalar twin under
/// `STCFA_FORCE_SCALAR=1`) is the code under test instead of the
/// per-query DFS.  Returns "" on agreement, a reproducing report
/// otherwise.
inline std::string compareDeltaToFreshRebuild(DeltaSession &Sess,
                                              const std::string &Tag,
                                              bool UseBatch = false) {
  DeltaView V;
  if (Status S = Sess.freezeView(V); !S.isOk())
    return Tag + ": freezeView failed: " + S.toString();

  const std::string Src = Sess.currentSource();
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Src, Diags);
  if (!M)
    return Tag + ": current source does not parse:\n" + Diags.render() +
           "\n--- source ---\n" + Src;
  DiagnosticEngine InferDiags;
  (void)inferTypes(*M, InferDiags);

  SubtransitiveConfig Config;
  SubtransitiveGraph G(*M, Config);
  G.build();
  if (Status S = G.close(Deadline::infinite()); !S.isOk())
    return Tag + ": oracle close failed: " + S.toString();
  Status FS = Status::ok();
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, FS);
  if (!F)
    return Tag + ": oracle freeze failed: " + FS.toString();
  QueryEngine Fresh(*F, 1);

  if (V.NumExprs != M->numExprs())
    return Tag + ": canonical expr count " + std::to_string(V.NumExprs) +
           " != fresh parse " + std::to_string(M->numExprs()) +
           "\n--- source ---\n" + Src;
  if (V.NumLabels != M->numLabels())
    return Tag + ": canonical label count " + std::to_string(V.NumLabels) +
           " != fresh parse " + std::to_string(M->numLabels()) +
           "\n--- source ---\n" + Src;

  QueryEngine Delta(*V.Frozen, 1);
  std::vector<DenseBitset> BatchRows;
  if (UseBatch) {
    Delta.setKernelThreshold(0); // force the kernel path
    std::vector<ExprId> Es;
    Es.reserve(V.NumExprs);
    for (uint32_t E = 0; E != V.NumExprs; ++E)
      Es.push_back(ExprId(V.ExprToShadow[E]));
    BatchRows = Delta.labelsOfBatch(Es);
  }
  for (uint32_t E = 0; E != V.NumExprs; ++E) {
    DenseBitset DRow = UseBatch
                           ? std::move(BatchRows[E])
                           : Delta.labelsOf(ExprId(V.ExprToShadow[E]));
    DenseBitset FRow = Fresh.labelsOf(ExprId(E));
    for (uint32_t L = 0; L != V.NumLabels; ++L)
      if (DRow.contains(V.LabelToShadow[L]) != FRow.contains(L))
        return Tag + ": labelsOf(expr " + std::to_string(E) +
               ") disagrees at label " + std::to_string(L) + " (delta=" +
               (DRow.contains(V.LabelToShadow[L]) ? "1" : "0") +
               ", batch=" + (UseBatch ? "1" : "0") + ")\n--- source ---\n" +
               Src;
  }
  for (uint32_t L = 0; L != V.NumLabels; ++L) {
    std::vector<uint32_t> DOcc;
    for (ExprId Shadow : Delta.occurrencesOf(LabelId(V.LabelToShadow[L]))) {
      uint32_t C = V.ExprFromShadow[Shadow.index()];
      if (C != ~0u)
        DOcc.push_back(C);
    }
    std::sort(DOcc.begin(), DOcc.end());
    std::vector<uint32_t> FOcc;
    for (ExprId Id : Fresh.occurrencesOf(LabelId(L)))
      FOcc.push_back(Id.index());
    std::sort(FOcc.begin(), FOcc.end());
    if (DOcc != FOcc)
      return Tag + ": occurrencesOf(label " + std::to_string(L) +
             ") disagrees (delta has " + std::to_string(DOcc.size()) +
             ", fresh has " + std::to_string(FOcc.size()) +
             ")\n--- source ---\n" + Src;
  }
  return "";
}

} // namespace stcfa

#endif // STCFA_TESTS_DELTATESTUTIL_H
