//===-- tests/hybrid_compression_test.cpp - Hybrid CFA and compression ----===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the two paper-suggested extensions: the Conclusion's hybrid
/// algorithm (subtransitive first, cubic fallback for arbitrary programs)
/// and Section 10's chain compression of the query graph.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/HybridCFA.h"
#include "core/Compression.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// HybridCFA
//===----------------------------------------------------------------------===//

TEST(Hybrid, BoundedProgramUsesSubtransitive) {
  auto M = parseMaybeInfer(makeCubicFamily(4));
  ASSERT_TRUE(M);
  HybridCFA H(*M);
  H.run();
  EXPECT_EQ(H.engine(), HybridCFA::Engine::Subtransitive);
  EXPECT_NE(H.graph(), nullptr);
}

TEST(Hybrid, RecursiveDatatypeTraversalFallsBack) {
  // Recursive traversal of a recursive datatype with exact tracking
  // diverges (widening) — the hybrid must fall back to the standard
  // algorithm.
  auto M = parseMaybeInfer(
      "data FList = FNil | FCons(Int -> Int, FList);\n"
      "letrec map = fn f => fn l => case l of FNil => FNil "
      "| FCons(h, t) => FCons(f h, map f t) end in "
      "map (fn g => g) (FCons(fn x => x + 1, FNil))");
  ASSERT_TRUE(M);
  HybridCFA H(*M);
  H.run();
  EXPECT_EQ(H.engine(), HybridCFA::Engine::Standard);
}

TEST(Hybrid, UntypedSelfApplicationStillTerminates) {
  // (fn x => x x)(fn y => y) is untypeable; either engine must still
  // produce the right answer.
  auto M = parseMaybeInfer("(fn x => x x) (fn y => y)");
  ASSERT_TRUE(M);
  HybridCFA H(*M);
  H.run();
  EXPECT_TRUE(H.labelSet(M->root())
                  .contains(labelOfFnWithParam(*M, "y").index()));
}

class HybridEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HybridEquivalence, MatchesStandardCFA) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 50;
  O.UseRefs = false;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  HybridCFA H(*M);
  H.run();
  StandardCFA Std(*M);
  Std.run();
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    DenseBitset Want = Std.labelSet(ExprId(I));
    DenseBitset Got = H.labelSet(ExprId(I));
    if (H.engine() == HybridCFA::Engine::Subtransitive) {
      // The subtransitive engine with exact tracking is exact.
      EXPECT_TRUE(Got == Want) << "expr " << I << " seed " << GetParam();
    } else {
      EXPECT_TRUE(Got.containsAll(Want));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridEquivalence,
                         ::testing::Range<uint64_t>(1200, 1215));

TEST(Hybrid, TinyBudgetForcesFallbackButStaysCorrect) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  HybridCFA H(*M, /*BudgetFactor=*/0); // MaxNodes ~ 1024: cubic:8 exceeds it
  H.run();
  StandardCFA Std(*M);
  Std.run();
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(H.labelSet(ExprId(I)) == Std.labelSet(ExprId(I)));
}

//===----------------------------------------------------------------------===//
// CompressedGraph
//===----------------------------------------------------------------------===//

class CompressionEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressionEquivalence, SameLabelSetsFewerNodes) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  O.UseRefs = (GetParam() % 2) == 0;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  CompressedGraph CG(G);

  EXPECT_LT(CG.numKeptNodes(), CG.numOriginalNodes())
      << "compression should remove chain nodes";
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    EXPECT_TRUE(CG.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))
        << "expr " << I << " seed " << GetParam();
  }
  for (uint32_t V = 0; V != M->numVars(); ++V) {
    EXPECT_TRUE(CG.labelsOfVar(VarId(V)) == R.labelsOfVar(VarId(V)))
        << "var " << V << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionEquivalence,
                         ::testing::Range<uint64_t>(1300, 1320));

TEST(Compression, VisitsFewerNodesOnChains) {
  // A long let-chain compresses into almost nothing.
  std::string Src = "let a0 = fn x => x;\n";
  for (int I = 1; I <= 200; ++I)
    Src += "let a" + std::to_string(I) + " = a" + std::to_string(I - 1) +
           ";\n";
  Src += "a200";
  auto M = parseAndInfer(Src);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  CompressedGraph CG(G);

  DenseBitset Full = R.labelsOf(M->root());
  DenseBitset Compressed = CG.labelsOf(M->root());
  EXPECT_TRUE(Full == Compressed);
  EXPECT_EQ(Compressed.count(), 1u);
  // The chain query visits O(chain) nodes uncompressed, O(1) compressed.
  EXPECT_LT(CG.nodesVisited() * 10, R.nodesVisited());
}

TEST(Compression, HandlesCycles) {
  // letrec loops create cycles among label-free nodes.
  auto M = parseMaybeInfer("letrec loop = fn f => loop f in "
                           "loop (fn x => x)");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  CompressedGraph CG(G);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(CG.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)));
}

TEST(Compression, CorpusEquivalence) {
  auto M = parseAndInfer(lifeProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  CompressedGraph CG(G);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(CG.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))
        << "expr " << I;
}

} // namespace
