//===-- tests/frozen_graph_test.cpp - Snapshot / engine equivalence -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frozen CSR snapshot and the parallel query engine must be
/// *bit-for-bit* interchangeable with the mutable-graph `Reachability`
/// baseline: every query kind, on every corpus program, under every
/// closure policy and congruence mode, at one worker lane and at four.
/// Plus unit tests for the `ThreadPool` primitive and for the apps'
/// CSR propagation branches.
///
//===----------------------------------------------------------------------===//

#include "apps/CallGraph.h"
#include "apps/EffectsAnalysis.h"
#include "apps/KLimitedCFA.h"
#include "analysis/DeadCodeAwareCFA.h"
#include "core/Condensation.h"
#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/ThreadPool.h"

#include "TestUtil.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(Hits.size(), [&](unsigned, size_t I) { ++Hits[I]; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool Pool(3);
  for (int Round = 0; Round != 50; ++Round) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(100, [&](unsigned, size_t I) { Sum += I; });
    EXPECT_EQ(Sum.load(), 100u * 99u / 2);
  }
}

TEST(ThreadPool, WorkerIndexInRange) {
  ThreadPool Pool(2);
  std::vector<std::atomic<int>> PerWorker(2);
  Pool.parallelFor(64, [&](unsigned W, size_t) {
    ASSERT_LT(W, 2u);
    ++PerWorker[W];
  });
  int Total = PerWorker[0] + PerWorker[1];
  EXPECT_EQ(Total, 64);
}

TEST(ThreadPool, SingleWorkerAndEmptyBatch) {
  ThreadPool Pool(1);
  int Count = 0;
  Pool.parallelFor(0, [&](unsigned, size_t) { ++Count; });
  EXPECT_EQ(Count, 0);
  Pool.parallelFor(7, [&](unsigned W, size_t) {
    EXPECT_EQ(W, 0u);
    ++Count;
  });
  EXPECT_EQ(Count, 7);
}

//===----------------------------------------------------------------------===//
// FrozenGraph structure
//===----------------------------------------------------------------------===//

TEST(FrozenGraph, CsrMatchesLinkedLists) {
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  ASSERT_FALSE(G.aborted());
  FrozenGraph F(G);

  ASSERT_EQ(F.numNodes(), G.numNodes());
  uint64_t Edges = 0;
  for (uint32_t N = 0; N != G.numNodes(); ++N) {
    std::multiset<uint32_t> Want, Got;
    for (NodeId S : G.succs(NodeId(N)))
      Want.insert(S.index());
    for (uint32_t S : F.succs(N))
      Got.insert(S);
    EXPECT_EQ(Want, Got) << "succs mismatch at node " << N;
    Edges += Want.size();

    Want.clear();
    Got.clear();
    for (NodeId P : G.preds(NodeId(N)))
      Want.insert(P.index());
    for (uint32_t P : F.preds(N))
      Got.insert(P);
    EXPECT_EQ(Want, Got) << "preds mismatch at node " << N;

    EXPECT_EQ(F.op(N), G.op(NodeId(N)));
    LabelId L = G.labelOf(NodeId(N));
    EXPECT_EQ(F.labelAt(N), L.isValid() ? L.index() : FrozenGraph::None);
  }
  EXPECT_EQ(F.numEdges(), Edges);
}

TEST(FrozenGraph, CondensationIsCachedAndConsistent) {
  std::unique_ptr<Module> M = parseMaybeInfer(lifeProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);

  const Condensation &C1 = F.condensation();
  const Condensation &C2 = F.condensation();
  EXPECT_EQ(&C1, &C2) << "condensation must be computed once";
  EXPECT_EQ(C1.numNodes(), F.numNodes());

  // Edges never point from a lower SCC id to a higher one except within
  // the same SCC: completion order is reverse topological.
  for (uint32_t N = 0; N != F.numNodes(); ++N)
    for (uint32_t S : F.succs(N))
      if (C1.sccOf(N) != C1.sccOf(S)) {
        EXPECT_GT(C1.sccOf(N), C1.sccOf(S));
      }
}

//===----------------------------------------------------------------------===//
// QueryEngine vs Reachability, all corpora x configs x thread counts
//===----------------------------------------------------------------------===//

struct Config {
  const char *Name;
  ClosurePolicy Policy;
  CongruenceMode Congruence;
};

const Config Configs[] = {
    {"paper/bytype", ClosurePolicy::PaperExact, CongruenceMode::ByType},
    {"nodeexists/bytype", ClosurePolicy::NodeExists, CongruenceMode::ByType},
};

struct CorpusProgram {
  const char *Name;
  std::string Source;
};

std::vector<CorpusProgram> corpusPrograms() {
  return {{"life", lifeProgram()},
          {"lexgen", makeLexgenLike(/*States=*/12)},
          {"minieval", miniEvalProgram()},
          {"parsercombo", parserComboProgram()}};
}

void expectSameSet(const DenseBitset &A, const DenseBitset &B,
                   const char *What, const char *Where, uint32_t Index) {
  EXPECT_TRUE(A == B) << What << " mismatch on " << Where << " at index "
                      << Index;
}

/// Runs every query kind through Reachability and through a QueryEngine
/// with \p Threads lanes; everything must agree exactly.
void checkEquivalence(const Module &M, const SubtransitiveGraph &G,
                      unsigned Threads, const char *Where) {
  Reachability Reach(G);
  FrozenGraph F(G);
  QueryEngine Engine(F, Threads);

  // labelsOf: point and batched, every occurrence.
  std::vector<ExprId> AllExprs;
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    AllExprs.push_back(ExprId(I));
  std::vector<DenseBitset> Batch = Engine.labelsOfBatch(AllExprs);
  ASSERT_EQ(Batch.size(), AllExprs.size());
  for (uint32_t I = 0; I != M.numExprs(); ++I) {
    DenseBitset Want = Reach.labelsOf(ExprId(I));
    expectSameSet(Want, Engine.labelsOf(ExprId(I)), "labelsOf", Where, I);
    expectSameSet(Want, Batch[I], "labelsOfBatch", Where, I);
  }

  // labelsOfVar: every binder.
  for (uint32_t V = 0; V != M.numVars(); ++V)
    expectSameSet(Reach.labelsOfVar(VarId(V)), Engine.labelsOfVar(VarId(V)),
                  "labelsOfVar", Where, V);

  // isLabelIn: every (occurrence, label) pair, point and batched.
  std::vector<std::pair<ExprId, LabelId>> Pairs;
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    for (uint32_t L = 0; L != M.numLabels(); ++L)
      Pairs.emplace_back(ExprId(I), LabelId(L));
  std::vector<char> Mask = Engine.isLabelInBatch(Pairs);
  ASSERT_EQ(Mask.size(), Pairs.size());
  for (size_t I = 0; I != Pairs.size(); ++I) {
    bool Want = Reach.isLabelIn(Pairs[I].first, Pairs[I].second);
    EXPECT_EQ(Want, Engine.isLabelIn(Pairs[I].first, Pairs[I].second))
        << "isLabelIn mismatch on " << Where << " at pair " << I;
    EXPECT_EQ(Want, static_cast<bool>(Mask[I]))
        << "isLabelInBatch mismatch on " << Where << " at pair " << I;
  }

  // occurrencesOf: every label, point and batched; order is part of the
  // contract (ascending expression id).
  std::vector<LabelId> AllLabels;
  for (uint32_t L = 0; L != M.numLabels(); ++L)
    AllLabels.push_back(LabelId(L));
  std::vector<std::vector<ExprId>> OccBatch =
      Engine.occurrencesOfBatch(AllLabels);
  ASSERT_EQ(OccBatch.size(), AllLabels.size());
  for (uint32_t L = 0; L != M.numLabels(); ++L) {
    std::vector<ExprId> Want = Reach.occurrencesOf(LabelId(L));
    EXPECT_EQ(Want, Engine.occurrencesOf(LabelId(L)))
        << "occurrencesOf mismatch on " << Where << " at label " << L;
    EXPECT_EQ(Want, OccBatch[L])
        << "occurrencesOfBatch mismatch on " << Where << " at label " << L;
  }

  // allLabelSets: naive-vs-naive and SCC-vs-SCC, plus cross (the two
  // strategies must agree with each other anyway).
  std::vector<DenseBitset> WantAll = Reach.allLabelSets(/*UseScc=*/false);
  std::vector<DenseBitset> GotNaive = Engine.allLabelSets(/*UseScc=*/false);
  std::vector<DenseBitset> GotScc = Engine.allLabelSets(/*UseScc=*/true);
  ASSERT_EQ(WantAll.size(), GotNaive.size());
  ASSERT_EQ(WantAll.size(), GotScc.size());
  for (uint32_t I = 0; I != WantAll.size(); ++I) {
    expectSameSet(WantAll[I], GotNaive[I], "allLabelSets(naive)", Where, I);
    expectSameSet(WantAll[I], GotScc[I], "allLabelSets(scc)", Where, I);
  }
}

TEST(QueryEngine, MatchesReachabilityEverywhere) {
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    for (const Config &C : Configs) {
      SubtransitiveConfig GC;
      GC.Policy = C.Policy;
      GC.Congruence = C.Congruence;
      SubtransitiveGraph G(*M, GC);
      G.build();
      G.close();
      ASSERT_FALSE(G.aborted()) << P.Name << " " << C.Name;
      std::string Where = std::string(P.Name) + "/" + C.Name;
      checkEquivalence(*M, G, /*Threads=*/1, Where.c_str());
      checkEquivalence(*M, G, /*Threads=*/4, (Where + "/t4").c_str());
    }
  }
}

TEST(QueryEngine, MatchesReachabilityUnderByBaseCongruence) {
  // The finer ByBaseAndType congruence diverges during close() on the
  // recursive corpus programs (a pre-existing limitation of ≈2, not of
  // the snapshot), so the bybase equivalence runs on programs where the
  // closure terminates: the cubic family and a small datatype program.
  struct {
    const char *Name;
    std::string Source;
  } Programs[] = {
      {"cubic30", makeCubicFamily(30)},
      {"flist", "data FList = FNil | FCons(Int -> Int, FList);\n"
                "let l = FCons(fn a => a, FCons(fn b => b, FNil)) in "
                "case l of FNil => (fn z => z) | FCons(h, t) => h end"},
  };
  for (const auto &P : Programs) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveConfig GC;
    GC.Congruence = CongruenceMode::ByBaseAndType;
    SubtransitiveGraph G(*M, GC);
    G.build();
    G.close();
    ASSERT_FALSE(G.aborted()) << P.Name;
    std::string Where = std::string(P.Name) + "/paper/bybase";
    checkEquivalence(*M, G, /*Threads=*/1, Where.c_str());
    checkEquivalence(*M, G, /*Threads=*/4, (Where + "/t4").c_str());
  }
}

TEST(QueryEngine, SharedSnapshotIndependentEngines) {
  // Two engines over one snapshot answer independently (the documented
  // sharing model: share the FrozenGraph, not the engine).
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  QueryEngine A(F, 1), B(F, 2);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(A.labelsOf(ExprId(I)) == B.labelsOf(ExprId(I)));
  // Both see the same cached condensation label sets.
  std::vector<DenseBitset> SA = A.allLabelSets(true);
  std::vector<DenseBitset> SB = B.allLabelSets(true);
  for (uint32_t I = 0; I != SA.size(); ++I)
    EXPECT_TRUE(SA[I] == SB[I]);
}

//===----------------------------------------------------------------------===//
// Apps over the frozen snapshot
//===----------------------------------------------------------------------===//

TEST(FrozenApps, EffectsIdenticalWithAndWithoutSnapshot) {
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    FrozenGraph F(G);
    EffectsAnalysis Plain(G);
    Plain.run();
    EffectsAnalysis Csr(G, &F);
    Csr.run();
    EXPECT_EQ(Plain.numEffectful(), Csr.numEffectful()) << P.Name;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      EXPECT_EQ(Plain.isEffectful(ExprId(I)), Csr.isEffectful(ExprId(I)))
          << P.Name << " expr " << I;
  }
}

TEST(FrozenApps, KLimitedIdenticalWithAndWithoutSnapshot) {
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    FrozenGraph F(G);
    for (uint32_t K : {1u, 3u}) {
      KLimitedCFA Plain(G, K);
      Plain.run();
      KLimitedCFA Csr(G, K, &F);
      Csr.run();
      for (uint32_t I = 0; I != M->numExprs(); ++I) {
        const LimitedSet &A = Plain.ofExpr(ExprId(I));
        const LimitedSet &B = Csr.ofExpr(ExprId(I));
        EXPECT_EQ(A.isMany(), B.isMany()) << P.Name << " expr " << I;
        if (!A.isMany()) {
          EXPECT_EQ(A.ids(), B.ids()) << P.Name << " expr " << I;
        }
      }
    }
  }
}

TEST(FrozenApps, CalledOnceIdenticalWithAndWithoutSnapshot) {
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    FrozenGraph F(G);
    CalledOnceAnalysis Plain(G);
    Plain.run();
    CalledOnceAnalysis Csr(G, &F);
    Csr.run();
    for (uint32_t L = 0; L != M->numLabels(); ++L) {
      EXPECT_EQ(Plain.countOf(LabelId(L)), Csr.countOf(LabelId(L)))
          << P.Name << " label " << L;
      if (Plain.countOf(LabelId(L)) == CalledOnceAnalysis::CallCount::Once) {
        EXPECT_EQ(Plain.uniqueCallSite(LabelId(L)),
                  Csr.uniqueCallSite(LabelId(L)))
            << P.Name << " label " << L;
      }
    }
  }
}

TEST(FrozenApps, CallGraphIdenticalWithAndWithoutEngine) {
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    FrozenGraph F(G);
    QueryEngine Engine(F, 2);
    CallGraph Plain(G);
    Plain.run();
    CallGraph Batched(G, &Engine);
    Batched.run();
    ASSERT_EQ(Plain.numCallers(), Batched.numCallers()) << P.Name;
    for (uint32_t C = 0; C != Plain.numCallers(); ++C)
      EXPECT_TRUE(Plain.calleesOf(C) == Batched.calleesOf(C))
          << P.Name << " caller " << C;
    EXPECT_EQ(Plain.deadFunctions(), Batched.deadFunctions()) << P.Name;
  }
}

TEST(FrozenApps, EngineNeverCalledContainedInDeadCodeAware) {
  // The subtransitive flow over-approximates standard CFA, which in turn
  // over-approximates the liveness-gated analysis: a function the engine
  // never sees called must be dead-code-aware dead.
  for (const CorpusProgram &P : corpusPrograms()) {
    std::unique_ptr<Module> M = parseMaybeInfer(P.Source);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    FrozenGraph F(G);
    QueryEngine Engine(F, 2);
    CallGraph CG(G, &Engine);
    CG.run();
    DeadCodeAwareCFA Dc(*M);
    Dc.run();
    std::set<uint32_t> DcDead;
    for (LabelId L : Dc.deadFunctions())
      DcDead.insert(L.index());
    for (LabelId L : CG.deadFunctions()) {
      EXPECT_TRUE(DcDead.count(L.index()))
          << P.Name << ": engine-dead fn#" << L.index()
          << " not dead-code-aware dead";
    }
  }
}

//===----------------------------------------------------------------------===//
// Epoch wrap
//===----------------------------------------------------------------------===//

TEST(QueryEngine, ManyQueriesStayConsistent) {
  // Repeated queries exercise the epoch stamping; results must be stable.
  std::unique_ptr<Module> M = parseMaybeInfer(parserComboProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  QueryEngine Engine(F, 1);
  DenseBitset First = Engine.labelsOf(M->root());
  for (int I = 0; I != 1000; ++I)
    ASSERT_TRUE(First == Engine.labelsOf(M->root()));
  uint64_t Visited = Engine.nodesVisited();
  EXPECT_GT(Visited, 0u);
}

//===----------------------------------------------------------------------===//
// Governed freeze: Status instead of asserts
//===----------------------------------------------------------------------===//

TEST(FrozenGraph, FreezeBeforeCloseIsReportedNotUB) {
  std::unique_ptr<Module> M = parseMaybeInfer("let id = fn x => x in id id");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build(); // no close()
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  EXPECT_EQ(F, nullptr);
  EXPECT_EQ(S.code(), StatusCode::FailedPrecondition);
}

TEST(FrozenGraph, FreezeOfAbortedGraphIsReportedNotUB) {
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  C.MaxNodes = 64; // guaranteed blown
  SubtransitiveGraph G(*M, C);
  G.build();
  EXPECT_EQ(G.close(Deadline::infinite()).code(),
            StatusCode::ResourceExhausted);
  ASSERT_TRUE(G.aborted());

  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  EXPECT_EQ(F, nullptr);
  EXPECT_EQ(S.code(), StatusCode::FailedPrecondition);
  // The message carries the abort reason for the degradation report.
  EXPECT_NE(S.message().find("resource-exhausted"), std::string::npos)
      << S.toString();
}

TEST(FrozenGraph, FreezeUnderExpiredDeadlineIsInert) {
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  ASSERT_FALSE(G.aborted());
  Status S;
  std::unique_ptr<FrozenGraph> F =
      FrozenGraph::freeze(G, S, Deadline::afterMillis(0));
  EXPECT_EQ(F, nullptr);
  EXPECT_EQ(S.code(), StatusCode::DeadlineExceeded);

  // The governed constructor keeps the inert-but-well-defined snapshot.
  FrozenGraph Inert(G, Deadline::afterMillis(0));
  EXPECT_FALSE(Inert.status().isOk());
  EXPECT_EQ(Inert.numNodes(), 0u);
  QueryEngine E(Inert);
  EXPECT_TRUE(E.labelsOf(M->root()).empty());
  EXPECT_TRUE(E.labelsOfVar(VarId(0)).empty());
  EXPECT_TRUE(E.occurrencesOf(LabelId(0)).empty());
}

//===----------------------------------------------------------------------===//
// Worker-lane edge cases
//===----------------------------------------------------------------------===//

TEST(QueryEngine, ZeroThreadsClampsToSequential) {
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  QueryEngine E(F, /*Threads=*/0);
  EXPECT_EQ(E.threads(), 1u);
  QueryEngine Baseline(F, 1);
  EXPECT_EQ(E.labelsOf(M->root()), Baseline.labelsOf(M->root()));
  std::vector<ExprId> Es{M->root()};
  EXPECT_EQ(E.labelsOfBatch(Es), Baseline.labelsOfBatch(Es));
}

TEST(QueryEngine, MoreThreadsThanHardwareStillCorrect) {
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  unsigned Hw = std::thread::hardware_concurrency();
  unsigned Oversubscribed = (Hw ? Hw : 4) * 4 + 3;
  QueryEngine E(F, Oversubscribed);
  EXPECT_EQ(E.threads(), Oversubscribed);
  QueryEngine Baseline(F, 1);

  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));
  EXPECT_EQ(E.labelsOfBatch(Es), Baseline.labelsOfBatch(Es));

  // Governed batches shard item-per-lane here (more lanes than items).
  BatchControl Control;
  BatchOutcome Outcome;
  EXPECT_EQ(E.labelsOfBatch(Es, Control, Outcome), Baseline.labelsOfBatch(Es));
  EXPECT_TRUE(Outcome.S.isOk());
  EXPECT_EQ(Outcome.Completed, Es.size());
}

TEST(QueryEngine, EmptyBatchesAreNoOps) {
  std::unique_ptr<Module> M = parseMaybeInfer("let id = fn x => x in id id");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  for (unsigned Threads : {1u, 4u}) {
    QueryEngine E(F, Threads);
    EXPECT_TRUE(E.labelsOfBatch({}).empty());
    EXPECT_TRUE(E.isLabelInBatch({}).empty());
    EXPECT_TRUE(E.occurrencesOfBatch({}).empty());

    BatchControl Control;
    BatchOutcome Outcome;
    EXPECT_TRUE(E.labelsOfBatch({}, Control, Outcome).empty());
    EXPECT_TRUE(Outcome.S.isOk());
    EXPECT_EQ(Outcome.Completed, 0u);
    EXPECT_TRUE(Outcome.Done.empty());
  }
}

TEST(QueryEngine, GovernedBatchWithRealDeadlineFinishesPromptly) {
  // A generous real deadline on a small batch: everything completes.
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  QueryEngine E(F, 2);
  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));
  BatchControl Control;
  Control.D = Deadline::afterMillis(60000);
  BatchOutcome Outcome;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, Control, Outcome);
  EXPECT_TRUE(Outcome.S.isOk());
  EXPECT_EQ(Outcome.Completed, Es.size());

  // An already-expired deadline yields zero answers, not a hang or crash.
  Control.D = Deadline::afterMillis(0);
  Sets = E.labelsOfBatch(Es, Control, Outcome);
  EXPECT_EQ(Outcome.S.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Outcome.Completed, 0u);
  for (const DenseBitset &S : Sets)
    EXPECT_TRUE(S.empty());
}

TEST(QueryEngine, GovernedBatchCancellationToken) {
  // A pre-cancelled token stops the batch before any item runs.
  std::unique_ptr<Module> M = parseMaybeInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  FrozenGraph F(G);
  QueryEngine E(F, 2);
  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));
  BatchControl Control;
  Control.Token = CancellationToken::create();
  Control.Token.requestCancel();
  BatchOutcome Outcome;
  (void)E.labelsOfBatch(Es, Control, Outcome);
  EXPECT_EQ(Outcome.S.code(), StatusCode::Cancelled);
  EXPECT_EQ(Outcome.Completed, 0u);
}

} // namespace
