//===-- tests/snapshot_test.cpp - Persistent snapshot format --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk snapshot contract (docs/SNAPSHOT.md):
///
///   * **Round trip is bit-exact** — a loaded snapshot answers every
///     label-set query, renders every name, and reports every source
///     range identically to the in-memory pipeline that wrote it.
///   * **Writes are deterministic** — the same frozen tables always
///     produce byte-identical files (the cache relies on it).
///   * **Damage is loud** — truncation, header corruption, bit flips,
///     version/endian mismatch, and injected I/O faults all surface as
///     clean `Status` failures, never a crash or a wrong answer.
///
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"
#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "core/SubtransitiveGraph.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "snapshot/Snapshot.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Metrics.h"

#include "TestUtil.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include <sys/stat.h>
#include <sys/time.h>

using namespace stcfa;

namespace {

/// A parsed + closed + frozen pipeline, kept alive together.
struct Pipeline {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  std::unique_ptr<FrozenGraph> F;
};

Pipeline freezeProgram(const std::string &Source) {
  Pipeline P;
  P.M = parseMaybeInfer(Source);
  if (!P.M)
    return P;
  P.G = std::make_unique<SubtransitiveGraph>(*P.M, SubtransitiveConfig{});
  P.G->build();
  EXPECT_TRUE(P.G->close(Deadline::infinite()).isOk());
  P.F = std::make_unique<FrozenGraph>(*P.G);
  EXPECT_TRUE(P.F->status().isOk());
  return P;
}

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "stcfa_snapshot_test_" + Name + ".snap";
}

std::vector<unsigned char> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return {std::istreambuf_iterator<char>(In),
          std::istreambuf_iterator<char>()};
}

void writeFile(const std::string &Path, const std::vector<unsigned char> &B) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(B.data()),
            static_cast<std::streamsize>(B.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Loads and expects failure; returns the failing status for inspection.
Status expectLoadFails(const std::string &Path) {
  Status S = Status::ok();
  std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
  EXPECT_EQ(Snap, nullptr) << Path;
  EXPECT_FALSE(S.isOk()) << Path;
  return S;
}

/// Writes a kernel-bearing snapshot of \p P to \p Path.
void writeWithKernel(const std::string &Path, const Pipeline &P,
                     uint64_t ContentHash = 0) {
  LabelSetKernel Kern(*P.F, /*Threads=*/2);
  ASSERT_TRUE(Kern.run().isOk());
  SnapshotWriteOptions WO;
  WO.ContentHash = ContentHash;
  WO.Kernel = &Kern;
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M, WO).isOk());
}

//===----------------------------------------------------------------------===//
// Round trip
//===----------------------------------------------------------------------===//

TEST(SnapshotRoundTrip, BitExactAcrossTheCorpus) {
  std::vector<std::pair<std::string, std::string>> Programs = {
      {"life", lifeProgram()},
      {"lexgen", makeLexgenLike()},
      {"cubic30", makeCubicFamily(30)},
      {"joinpoint20", makeJoinPointFamily(20)},
  };
  for (uint64_t Seed : {7u, 23u, 91u}) {
    RandomProgramOptions R;
    R.Seed = Seed;
    R.UseRefs = true;
    R.UseEffects = true;
    Programs.emplace_back("random" + std::to_string(Seed),
                          makeRandomProgram(R));
  }

  for (const auto &[Name, Source] : Programs) {
    SCOPED_TRACE(Name);
    Pipeline P = freezeProgram(Source);
    ASSERT_TRUE(P.F);
    const std::string Path = tempPath("roundtrip_" + Name);
    writeWithKernel(Path, P);

    Status S = Status::ok();
    std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
    ASSERT_TRUE(Snap) << S.toString();
    const FrozenGraph &LF = Snap->frozen();
    EXPECT_FALSE(LF.hasSource());
    EXPECT_EQ(LF.numNodes(), P.F->numNodes());
    EXPECT_EQ(LF.numEdges(), P.F->numEdges());
    EXPECT_EQ(LF.numExprs(), P.F->numExprs());
    EXPECT_EQ(LF.numLabels(), P.F->numLabels());
    EXPECT_EQ(Snap->rootExpr(), P.M->root());

    // Every label set, through both the point path and the adopted
    // kernel batch path, must equal the in-memory engine's answer.
    QueryEngine Mem(*P.F, 1);
    QueryEngine Disk(LF, 1);
    if (auto Kern = Snap->adoptKernel())
      Disk.adoptKernel(std::move(Kern));
    std::vector<ExprId> Es;
    for (uint32_t I = 0; I != P.M->numExprs(); ++I)
      Es.push_back(ExprId(I));
    std::vector<DenseBitset> DiskBatch = Disk.labelsOfBatch(Es);
    for (uint32_t I = 0; I != P.M->numExprs(); ++I) {
      DenseBitset Want = Mem.labelsOf(ExprId(I));
      EXPECT_TRUE(Want == Disk.labelsOf(ExprId(I))) << "expr " << I;
      EXPECT_TRUE(Want == DiskBatch[I]) << "batch expr " << I;
    }

    // Persisted renderings and ranges match the live Module's.
    for (uint32_t I = 0; I != P.M->numExprs(); ++I) {
      EXPECT_EQ(std::string(Snap->exprName(I)),
                describeExpr(*P.M, ExprId(I)));
      SourceRange Want = P.M->expr(ExprId(I))->range();
      SourceRange Got = Snap->exprRange(I);
      EXPECT_EQ(Got.Begin.Line, Want.Begin.Line);
      EXPECT_EQ(Got.Begin.Col, Want.Begin.Col);
      EXPECT_EQ(Got.End.Line, Want.End.Line);
      EXPECT_EQ(Got.End.Col, Want.End.Col);
    }
    for (uint32_t L = 0; L != P.M->numLabels(); ++L)
      EXPECT_EQ(std::string(Snap->labelName(L)),
                describeLabel(*P.M, LabelId(L)));

    std::remove(Path.c_str());
  }
}

TEST(SnapshotRoundTrip, KernelLessSnapshotStillAnswers) {
  Pipeline P = freezeProgram(makeCubicFamily(10));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("nokernel");
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk()); // no kernel rows

  Status S = Status::ok();
  std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
  ASSERT_TRUE(Snap) << S.toString();
  EXPECT_FALSE(Snap->hasKernelRows());
  EXPECT_EQ(Snap->adoptKernel(), nullptr);

  QueryEngine Mem(*P.F, 1);
  QueryEngine Disk(Snap->frozen(), 1);
  for (uint32_t I = 0; I != P.M->numExprs(); ++I)
    EXPECT_TRUE(Mem.labelsOf(ExprId(I)) == Disk.labelsOf(ExprId(I)));
  std::remove(Path.c_str());
}

TEST(SnapshotRoundTrip, ContentHashPersists) {
  Pipeline P = freezeProgram(lifeProgram());
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("contenthash");
  writeWithKernel(Path, P, /*ContentHash=*/0xfeedfacecafebeefULL);
  Status S = Status::ok();
  std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
  ASSERT_TRUE(Snap) << S.toString();
  EXPECT_EQ(Snap->contentHash(), 0xfeedfacecafebeefULL);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(SnapshotDeterminism, TwoFreezesProduceByteIdenticalFiles) {
  // Freeze the same program twice through two independent pipelines and
  // write both: the files must be byte-identical, because the cache key
  // identifies content and the writer zero-fills all padding.
  const std::string Source = makeLexgenLike();
  Pipeline A = freezeProgram(Source);
  Pipeline B = freezeProgram(Source);
  ASSERT_TRUE(A.F && B.F);
  const std::string PathA = tempPath("det_a"), PathB = tempPath("det_b");
  writeWithKernel(PathA, A, 42);
  writeWithKernel(PathB, B, 42);
  EXPECT_EQ(readFile(PathA), readFile(PathB));
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

//===----------------------------------------------------------------------===//
// Injected faults
//===----------------------------------------------------------------------===//

class SnapshotFaultTest : public ::testing::Test {
protected:
  void SetUp() override { disarmFaults(); }
  void TearDown() override { disarmFaults(); }
};

TEST_F(SnapshotFaultTest, WriteAllocFaultFailsTheWriteCleanly) {
  Pipeline P = freezeProgram(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("writealloc");
  ASSERT_TRUE(armFault(fault::SnapshotWriteAlloc));
  Status S = writeSnapshot(Path, *P.F, *P.M);
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::OutOfMemory);
  // The failed write must not have left a file under the final name.
  std::ifstream Probe(Path, std::ios::binary);
  EXPECT_FALSE(Probe.good());
}

TEST_F(SnapshotFaultTest, TruncateCanaryIsCaughtByTheLoader) {
  Pipeline P = freezeProgram(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("trunc_canary");
  ASSERT_TRUE(armFault(fault::SnapshotTruncate));
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  disarmFaults();
  Status S = expectLoadFails(Path);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  std::remove(Path.c_str());
}

TEST_F(SnapshotFaultTest, HeaderCorruptCanaryIsCaughtByTheLoader) {
  Pipeline P = freezeProgram(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("header_canary");
  ASSERT_TRUE(armFault(fault::SnapshotHeaderCorrupt));
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  disarmFaults();
  Status S = expectLoadFails(Path);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  std::remove(Path.c_str());
}

TEST_F(SnapshotFaultTest, CsrBitFlipCanaryIsCaughtByChecksums) {
  Pipeline P = freezeProgram(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("bitflip_canary");
  ASSERT_TRUE(armFault(fault::SnapshotCsrBitFlip));
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  disarmFaults();
  Status S = expectLoadFails(Path);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
  std::remove(Path.c_str());
}

TEST_F(SnapshotFaultTest, MapFailFaultFailsTheLoadCleanly) {
  Pipeline P = freezeProgram(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("mapfail");
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  ASSERT_TRUE(armFault(fault::SnapshotMapFail));
  Status S = expectLoadFails(Path);
  disarmFaults();
  EXPECT_EQ(S.code(), StatusCode::OutOfMemory);
  std::remove(Path.c_str());
}

TEST_F(SnapshotFaultTest, InertGraphIsRefusedByTheWriter) {
  // A close aborted by a one-node budget leaves the frozen snapshot
  // inert; persisting it would serve wrong (incomplete) answers forever.
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(12));
  ASSERT_TRUE(M);
  SubtransitiveConfig GC;
  GC.MaxNodes = 1;
  SubtransitiveGraph G(*M, GC);
  G.build();
  (void)G.close();
  ASSERT_TRUE(G.aborted());
  FrozenGraph F(G);
  ASSERT_FALSE(F.status().isOk());
  Status S = writeSnapshot(tempPath("inert"), F, *M);
  EXPECT_EQ(S.code(), StatusCode::InvalidArgument);
}

//===----------------------------------------------------------------------===//
// Hand-damaged files
//===----------------------------------------------------------------------===//

TEST(SnapshotDamage, MissingEmptyAndShortFilesFailCleanly) {
  expectLoadFails(tempPath("never_written"));

  const std::string Path = tempPath("short");
  writeFile(Path, {});
  expectLoadFails(Path);
  writeFile(Path, {'S', 'T'});
  expectLoadFails(Path);
  writeFile(Path, std::vector<unsigned char>(63, 0));
  expectLoadFails(Path);
  std::remove(Path.c_str());
}

TEST(SnapshotDamage, EveryTruncationPointFailsNeverCrashes) {
  Pipeline P = freezeProgram(makeCubicFamily(8));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("truncsweep_src");
  writeWithKernel(Path, P);
  std::vector<unsigned char> Whole = readFile(Path);
  std::remove(Path.c_str());

  const std::string Cut = tempPath("truncsweep");
  // Sweep cuts through the header, the section table, and every payload
  // region (stride keeps the sweep fast on big files).
  for (size_t Keep = 0; Keep < Whole.size();
       Keep += std::max<size_t>(1, Whole.size() / 97)) {
    std::vector<unsigned char> Part(Whole.begin(), Whole.begin() + Keep);
    writeFile(Cut, Part);
    expectLoadFails(Cut);
  }
  std::remove(Cut.c_str());
}

TEST(SnapshotDamage, VersionMismatchIsRejectedEvenWithValidChecksum) {
  Pipeline P = freezeProgram(makeCubicFamily(8));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("version");
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  std::vector<unsigned char> Bytes = readFile(Path);

  // Bump the format version *and* recompute the header checksum, so the
  // rejection proves the version gate, not checksum luck.
  auto *H = reinterpret_cast<SnapshotHeader *>(Bytes.data());
  H->Version = SnapshotFormatVersion + 1;
  H->HeaderChecksum =
      hashBytes(Bytes.data(), sizeof(SnapshotHeader) - sizeof(uint64_t));
  writeFile(Path, Bytes);
  Status S = expectLoadFails(Path);
  EXPECT_NE(S.toString().find("version"), std::string::npos)
      << S.toString();
  std::remove(Path.c_str());
}

TEST(SnapshotDamage, EndianMismatchIsRejected) {
  Pipeline P = freezeProgram(makeCubicFamily(8));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("endian");
  ASSERT_TRUE(writeSnapshot(Path, *P.F, *P.M).isOk());
  std::vector<unsigned char> Bytes = readFile(Path);
  auto *H = reinterpret_cast<SnapshotHeader *>(Bytes.data());
  H->Endian = __builtin_bswap32(H->Endian);
  H->HeaderChecksum =
      hashBytes(Bytes.data(), sizeof(SnapshotHeader) - sizeof(uint64_t));
  writeFile(Path, Bytes);
  expectLoadFails(Path);
  std::remove(Path.c_str());
}

TEST(SnapshotDamage, FlippedPayloadByteIsCaughtBySectionChecksum) {
  Pipeline P = freezeProgram(makeCubicFamily(8));
  ASSERT_TRUE(P.F);
  const std::string Path = tempPath("payloadflip");
  writeWithKernel(Path, P);
  std::vector<unsigned char> Bytes = readFile(Path);
  // Flip one byte beyond header + table; some positions land in padding
  // (which is checksummed too), so every probe must still fail.
  for (size_t Pos = 512; Pos < Bytes.size();
       Pos += std::max<size_t>(1, Bytes.size() / 13)) {
    std::vector<unsigned char> Damaged = Bytes;
    Damaged[Pos] ^= 0x01;
    writeFile(Path, Damaged);
    expectLoadFails(Path);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(SnapshotCache, KeyIsStableAndDiscriminates) {
  const std::string Src = lifeProgram();
  const std::string Cfg = "analysis=subtransitive;congruence=bytype;"
                          "policy=paper";
  EXPECT_EQ(snapshotCacheKey(Src, Cfg), snapshotCacheKey(Src, Cfg));
  EXPECT_NE(snapshotCacheKey(Src, Cfg), snapshotCacheKey(Src + " ", Cfg));
  EXPECT_NE(snapshotCacheKey(Src, Cfg),
            snapshotCacheKey(Src, Cfg + ";x=1"));
}

TEST(SnapshotCache, PathAndDirHelpers) {
  EXPECT_EQ(snapshotCachePath("/some/dir", 0xabcULL),
            "/some/dir/0000000000000abc.stcfa-snap");
  EXPECT_EQ(snapshotCacheDir("/override"), "/override");
  const std::string Dir = testing::TempDir() + "stcfa_cache_mkdir/a/b";
  EXPECT_TRUE(ensureSnapshotDir(Dir).isOk());
  EXPECT_TRUE(ensureSnapshotDir(Dir).isOk()); // idempotent
}

//===----------------------------------------------------------------------===//
// Size cap / LRU eviction
//===----------------------------------------------------------------------===//

namespace {
void setMtime(const std::string &Path, time_t T) {
  struct timeval Times[2] = {{T, 0}, {T, 0}};
  ASSERT_EQ(::utimes(Path.c_str(), Times), 0) << Path;
}

uint64_t fileSize(const std::string &Path) {
  struct stat St;
  EXPECT_EQ(::stat(Path.c_str(), &St), 0) << Path;
  return static_cast<uint64_t>(St.st_size);
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}
} // namespace

TEST(SnapshotCache, BudgetEvictsOldestFirstAndSparesForeignFiles) {
  const std::string Dir = testing::TempDir() + "stcfa_cache_evict";
  ASSERT_TRUE(ensureSnapshotDir(Dir).isOk());

  // Four real snapshots with strictly increasing (backdated) mtimes —
  // second-granularity timestamps would otherwise tie within the test.
  Pipeline P = freezeProgram(lifeProgram());
  ASSERT_NE(P.F, nullptr);
  const time_t Base = 1700000000;
  std::vector<std::string> Paths;
  uint64_t Total = 0;
  for (uint64_t K = 1; K <= 4; ++K) {
    std::string Path = snapshotCachePath(Dir, K);
    writeWithKernel(Path, P, K);
    setMtime(Path, Base + static_cast<time_t>(K));
    Paths.push_back(Path);
    Total += fileSize(Path);
  }
  // A bystander file must never be evicted, whatever the cap.
  const std::string Foreign = Dir + "/notes.txt";
  writeFile(Foreign, {'h', 'i'});

  const uint64_t Value = counter("snapshot.cache-evictions").value();

  // Under the cap: nothing happens.
  EXPECT_EQ(enforceSnapshotCacheBudget(Dir, Total), 0u);
  for (const std::string &Path : Paths)
    EXPECT_TRUE(fileExists(Path));

  // One byte over: exactly the oldest entry goes.
  EXPECT_EQ(enforceSnapshotCacheBudget(Dir, Total - 1), 1u);
  EXPECT_FALSE(fileExists(Paths[0]));
  EXPECT_TRUE(fileExists(Paths[1]));
  EXPECT_TRUE(fileExists(Paths[2]));
  EXPECT_TRUE(fileExists(Paths[3]));
  EXPECT_EQ(counter("snapshot.cache-evictions").value(), Value + 1);

  // A hit refreshes the LRU order: touch the now-oldest survivor and the
  // next eviction round must pick its (younger-by-mtime) neighbour.
  touchSnapshotEntry(Paths[1]);
  uint64_t OneEntry = fileSize(Paths[3]);
  EXPECT_EQ(enforceSnapshotCacheBudget(Dir, OneEntry + 1), 2u);
  EXPECT_TRUE(fileExists(Paths[1])); // refreshed — survived two rounds
  EXPECT_FALSE(fileExists(Paths[2]));
  EXPECT_FALSE(fileExists(Paths[3]));
  EXPECT_EQ(counter("snapshot.cache-evictions").value(), Value + 3);

  // The bystander survived every round; a missing dir is an empty cache.
  EXPECT_TRUE(fileExists(Foreign));
  EXPECT_EQ(enforceSnapshotCacheBudget(Dir + "/nonexistent", 1), 0u);

  std::remove(Foreign.c_str());
  std::remove(Paths[1].c_str());
}

} // namespace
