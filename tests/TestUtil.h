//===-- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef STCFA_TESTS_TESTUTIL_H
#define STCFA_TESTS_TESTUTIL_H

#include "ast/Module.h"
#include "parser/Parser.h"
#include "sema/Infer.h"

#include "gtest/gtest.h"

#include <memory>
#include <string>

namespace stcfa {

/// Parses \p Source; fails the current test on parse errors.
inline std::unique_ptr<Module> parseOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  EXPECT_TRUE(M != nullptr) << "parse failed:\n" << Diags.render();
  return M;
}

/// Parses and type-checks \p Source; fails the test on any error.
inline std::unique_ptr<Module> parseAndInfer(std::string_view Source) {
  std::unique_ptr<Module> M = parseOrDie(Source);
  if (!M)
    return nullptr;
  DiagnosticEngine Diags;
  bool Ok = inferTypes(*M, Diags);
  EXPECT_TRUE(Ok) << "type inference failed:\n" << Diags.render();
  return Ok ? std::move(M) : nullptr;
}

/// Parses \p Source and *attempts* inference, tolerating type errors: the
/// subtransitive algorithm itself never needs types (paper, Section 4), so
/// analyses must work on untypeable programs like the paper's Section 3
/// self-application example.
inline std::unique_ptr<Module> parseMaybeInfer(std::string_view Source) {
  std::unique_ptr<Module> M = parseOrDie(Source);
  if (!M)
    return nullptr;
  DiagnosticEngine Diags;
  (void)inferTypes(*M, Diags);
  return M;
}

/// Finds the unique `fn` whose parameter is named \p Param; fails if absent
/// or ambiguous.  Handy for addressing abstractions in test programs.
inline LabelId labelOfFnWithParam(const Module &M, std::string_view Param) {
  LabelId Found = LabelId::invalid();
  int Count = 0;
  for (uint32_t L = 0; L != M.numLabels(); ++L) {
    const auto *Lam = cast<LamExpr>(M.expr(M.lamOfLabel(LabelId(L))));
    if (M.text(M.var(Lam->param()).Name) == Param) {
      Found = LabelId(L);
      ++Count;
    }
  }
  EXPECT_EQ(Count, 1) << "fn with parameter '" << Param
                      << "' absent or ambiguous";
  return Found;
}

/// Finds the binder VarId for the unique variable named \p Name.
inline VarId varNamed(const Module &M, std::string_view Name) {
  VarId Found = VarId::invalid();
  int Count = 0;
  for (uint32_t V = 0; V != M.numVars(); ++V) {
    if (M.text(M.var(VarId(V)).Name) == Name) {
      Found = VarId(V);
      ++Count;
    }
  }
  EXPECT_EQ(Count, 1) << "variable '" << Name << "' absent or ambiguous";
  return Found;
}

} // namespace stcfa

#endif // STCFA_TESTS_TESTUTIL_H
