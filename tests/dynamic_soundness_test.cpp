//===-- tests/dynamic_soundness_test.cpp - Analyses vs ground truth -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end soundness: every static analysis in the repository must
/// over-approximate what the reference interpreter actually observes on a
/// concrete run.  This closes the loop on the whole stack — if the
/// subtransitive closure, a congruence, the polyvariant instantiation, or
/// a consuming application ever dropped a real flow, some seed here would
/// catch it.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "apps/EffectsAnalysis.h"
#include "apps/KLimitedCFA.h"
#include "core/Reachability.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "interp/Interpreter.h"
#include "poly/Polyvariant.h"
#include "unify/UnificationCFA.h"

using namespace stcfa;

namespace {

RandomProgramOptions optionsFor(uint64_t Seed) {
  RandomProgramOptions O;
  O.Seed = Seed;
  O.NumBindings = 50;
  O.UseRefs = (Seed % 2) == 0;
  O.UseEffects = (Seed % 3) == 0;
  return O;
}

/// Everything outside non-recursive let-bound lambdas (where polyvariant
/// occurrence identity is meaningful).
std::vector<ExprId> externalExprs(const Module &M) {
  std::vector<bool> Internal(M.numExprs(), false);
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L || L->isRec() || !isa<LamExpr>(M.expr(L->init())))
      return;
    forEachExprPreorder(M, L->init(), [&](ExprId Sub, const Expr *) {
      Internal[Sub.index()] = true;
    });
  });
  std::vector<ExprId> Out;
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    if (!Internal[I])
      Out.push_back(ExprId(I));
  return Out;
}

class DynamicSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicSoundness, AllAnalysesContainObservedFlows) {
  auto M = parseAndInfer(makeRandomProgram(optionsFor(GetParam())));
  ASSERT_TRUE(M);
  InterpreterResult Dyn = interpret(*M, 2000000);
  // Even partial traces are valid observations; nothing to check only if
  // the program observed nothing.

  StandardCFA Std(*M);
  Std.run();
  UnificationCFA Uni(*M);
  Uni.run();
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  KLimitedCFA KL(G, 3);
  KL.run();
  PolyvariantCFA Poly(*M);
  Poly.run();
  Reachability PolyR(Poly.graph());
  std::vector<ExprId> External = externalExprs(*M);
  std::vector<bool> IsExternal(M->numExprs(), false);
  for (ExprId E : External)
    IsExternal[E.index()] = true;

  for (uint32_t I = 0, N = M->numExprs(); I != N; ++I) {
    const DenseBitset &Observed = Dyn.LabelsAt[I];
    if (Observed.empty())
      continue;
    EXPECT_TRUE(Std.labelSet(ExprId(I)).containsAll(Observed))
        << "standard CFA unsound at expr " << I << " seed " << GetParam();
    EXPECT_TRUE(Uni.labelSet(ExprId(I)).containsAll(Observed))
        << "unification CFA unsound at expr " << I << " seed " << GetParam();
    DenseBitset Graph = R.labelsOf(ExprId(I));
    EXPECT_TRUE(Graph.containsAll(Observed))
        << "subtransitive graph unsound at expr " << I << " seed "
        << GetParam();
    const LimitedSet &KS = KL.ofExpr(ExprId(I));
    if (!KS.isMany()) {
      Observed.forEach([&](uint32_t L) {
        EXPECT_TRUE(std::find(KS.ids().begin(), KS.ids().end(), L) !=
                    KS.ids().end())
            << "k-limited unsound at expr " << I << " seed " << GetParam();
      });
    }
    if (IsExternal[I]) {
      EXPECT_TRUE(PolyR.labelsOf(ExprId(I)).containsAll(Observed))
          << "polyvariant unsound at expr " << I << " seed " << GetParam();
    }
  }

  for (uint32_t V = 0, N = M->numVars(); V != N; ++V) {
    const DenseBitset &Observed = Dyn.VarLabels[V];
    if (Observed.empty())
      continue;
    EXPECT_TRUE(Std.labelSetOfVar(VarId(V)).containsAll(Observed))
        << "standard CFA unsound at var " << V << " seed " << GetParam();
    EXPECT_TRUE(R.labelsOfVar(VarId(V)).containsAll(Observed))
        << "graph unsound at var " << V << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSoundness,
                         ::testing::Range<uint64_t>(1000, 1030));

class DynamicAppSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicAppSoundness, EffectsAndCalledOnceContainObservations) {
  auto M = parseAndInfer(makeRandomProgram(optionsFor(GetParam())));
  ASSERT_TRUE(M);
  InterpreterResult Dyn = interpret(*M, 2000000);

  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  EffectsAnalysis Eff(G);
  Eff.run();
  CalledOnceAnalysis CO(G);
  CO.run();

  // Every dynamically effectful expression must be flagged.
  for (uint32_t I = 0, N = M->numExprs(); I != N; ++I) {
    if (Dyn.DidEffect[I]) {
      EXPECT_TRUE(Eff.isEffectful(ExprId(I)))
          << "effects analysis missed expr " << I << " seed " << GetParam();
    }
  }
  // A label dynamically called from two sites cannot be Once/Never; one
  // dynamically called at all cannot be Never.
  for (uint32_t L = 0, N = M->numLabels(); L != N; ++L) {
    size_t Sites = Dyn.CallSitesOf[L].size();
    auto C = CO.countOf(LabelId(L));
    if (Sites >= 2) {
      EXPECT_EQ(C, CalledOnceAnalysis::CallCount::Many)
          << "label " << L << " seed " << GetParam();
    }
    if (Sites == 1) {
      EXPECT_NE(C, CalledOnceAnalysis::CallCount::Never)
          << "label " << L << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicAppSoundness,
                         ::testing::Range<uint64_t>(1100, 1125));

void checkCorpusSoundness(const std::string &Source, const char *Name) {
  auto M = parseAndInfer(Source);
  ASSERT_TRUE(M);
  InterpreterResult Dyn = interpret(*M, 20000000);
  ASSERT_TRUE(Dyn.Completed) << Name << ": " << Dyn.Abort;

  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  for (uint32_t I = 0, N = M->numExprs(); I != N; ++I) {
    if (Dyn.LabelsAt[I].empty())
      continue;
    EXPECT_TRUE(R.labelsOf(ExprId(I)).containsAll(Dyn.LabelsAt[I]))
        << "graph unsound on " << Name << " at expr " << I;
  }
}

TEST(DynamicSoundnessCorpus, LifeProgram) {
  checkCorpusSoundness(lifeProgram(), "life");
}

TEST(DynamicSoundnessCorpus, MiniEval) {
  checkCorpusSoundness(miniEvalProgram(), "minieval");
}

TEST(DynamicSoundnessCorpus, ParserCombo) {
  checkCorpusSoundness(parserComboProgram(), "parsecombo");
}

TEST(DynamicSoundnessCorpus, LexgenLike) {
  checkCorpusSoundness(makeLexgenLike(12), "lexgen:12");
}

} // namespace
