//===-- tests/variants_test.cpp - Dead-code CFA, call graph, incremental --===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the analysis variations beyond the core algorithm: the
/// dead-code-aware 0-CFA (introduction, variation 2), the call-graph
/// consumer, and the incremental use of the subtransitive graph ("simple,
/// incremental, demand-driven").
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/DeadCodeAwareCFA.h"
#include "analysis/StandardCFA.h"
#include "apps/CallGraph.h"
#include "core/Reachability.h"
#include "gen/Generators.h"
#include "interp/Interpreter.h"

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// Dead-code-aware CFA
//===----------------------------------------------------------------------===//

TEST(DeadCodeCFA, PrunesNeverCalledBodies) {
  // `unused` is never applied, so the flows inside its body must vanish,
  // while standard CFA still reports them.
  auto M = parseMaybeInfer(
      "let unused = fn u => (fn a => a) (fn b => b) in 42");
  ASSERT_TRUE(M);
  StandardCFA Std(*M);
  Std.run();
  DeadCodeAwareCFA Dc(*M);
  Dc.run();
  VarId A = varNamed(*M, "a");
  EXPECT_GT(Std.labelSetOfVar(A).count(), 0u);
  EXPECT_EQ(Dc.labelSetOfVar(A).count(), 0u);
  // The body of `unused` is dead.
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *Lam = cast<LamExpr>(M->expr(Let->init()));
  EXPECT_FALSE(Dc.isLive(Lam->body()));
  EXPECT_TRUE(Dc.isLive(M->root()));
}

TEST(DeadCodeCFA, TransitivelyDeadFunctions) {
  auto M = parseMaybeInfer("let g = fn x => x in "
                           "let f = fn y => g y in " // only f calls g
                           "let live = fn z => z in "
                           "live 1");
  ASSERT_TRUE(M);
  DeadCodeAwareCFA Dc(*M);
  Dc.run();
  auto Dead = Dc.deadFunctions();
  // f and g are dead; live is not.
  EXPECT_EQ(Dead.size(), 2u);
  LabelId Live = labelOfFnWithParam(*M, "z");
  for (LabelId L : Dead)
    EXPECT_NE(L, Live);
}

TEST(DeadCodeCFA, CalledThroughDeadCodeStaysDead) {
  // A call that only exists inside a dead body must not activate its
  // callee.
  auto M = parseMaybeInfer("let callee = fn c => c in "
                           "let deadCaller = fn d => callee d in "
                           "7");
  ASSERT_TRUE(M);
  DeadCodeAwareCFA Dc(*M);
  Dc.run();
  EXPECT_EQ(Dc.deadFunctions().size(), 2u);
}

class DeadCodeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeadCodeProperty, RefinesStandardAndCoversDynamic) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 50;
  O.UseRefs = (GetParam() % 2) == 0;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  StandardCFA Std(*M);
  Std.run();
  DeadCodeAwareCFA Dc(*M);
  Dc.run();
  InterpreterResult Dyn = interpret(*M, 2000000);

  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    DenseBitset Refined = Dc.labelSet(ExprId(I));
    // Refinement: never larger than standard.
    EXPECT_TRUE(Std.labelSet(ExprId(I)).containsAll(Refined))
        << "expr " << I << " seed " << GetParam();
    // Soundness: contains everything observed dynamically.
    EXPECT_TRUE(Refined.containsAll(Dyn.LabelsAt[I]))
        << "expr " << I << " seed " << GetParam();
  }
  // Anything the interpreter evaluated must be live.
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    if (Dyn.LabelsAt[I].count() || Dyn.DidEffect[I]) {
      EXPECT_TRUE(Dc.isLive(ExprId(I)))
          << "expr " << I << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadCodeProperty,
                         ::testing::Range<uint64_t>(1500, 1520));

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

struct BuiltGraph {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;

  explicit BuiltGraph(const std::string &Source) {
    M = parseMaybeInfer(Source);
    EXPECT_TRUE(M);
    if (!M)
      return;
    G = std::make_unique<SubtransitiveGraph>(*M);
    G->build();
    G->close();
  }
};

TEST(CallGraphApp, DirectAndIndirectEdges) {
  BuiltGraph B("letrec even = fn n => if n == 0 then true "
               "else not (even (n - 1)) in "
               "let apply = fn f => fn x => f x in "
               "apply (fn b => b) (even 4)");
  ASSERT_TRUE(B.G);
  CallGraph CG(*B.G);
  CG.run();

  LabelId Even = labelOfFnWithParam(*B.M, "n");
  LabelId ApplyOuter = labelOfFnWithParam(*B.M, "f");
  LabelId Arg = labelOfFnWithParam(*B.M, "b");

  // Top level calls apply and even; even calls itself; apply's inner
  // lambda calls its argument.
  EXPECT_TRUE(CG.calleesOf(CG.rootIndex()).contains(ApplyOuter.index()));
  EXPECT_TRUE(CG.calleesOf(CG.rootIndex()).contains(Even.index()));
  EXPECT_TRUE(CG.calleesOf(Even.index()).contains(Even.index()));
  LabelId ApplyInner = labelOfFnWithParam(*B.M, "x");
  EXPECT_TRUE(CG.calleesOf(ApplyInner.index()).contains(Arg.index()));
}

TEST(CallGraphApp, DeadFunctionDetection) {
  BuiltGraph B("let used = fn a => a in "
               "let dead1 = fn b => b in "
               "let dead2 = fn c => dead1 c in "
               "used 1");
  ASSERT_TRUE(B.G);
  CallGraph CG(*B.G);
  CG.run();
  auto Dead = CG.deadFunctions();
  EXPECT_EQ(Dead.size(), 2u);
  DenseBitset Reached = CG.reachableFunctions();
  EXPECT_TRUE(Reached.contains(labelOfFnWithParam(*B.M, "a").index()));
  EXPECT_FALSE(Reached.contains(labelOfFnWithParam(*B.M, "b").index()));
}

class CallGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CallGraphProperty, ContainsDynamicCallEdges) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 40;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  CallGraph CG(G);
  CG.run();
  InterpreterResult Dyn = interpret(*M, 2000000);

  // For every dynamic call (site, callee), the static graph must have the
  // callee at the site's owner.
  for (uint32_t L = 0; L != M->numLabels(); ++L) {
    for (ExprId Site : Dyn.CallSitesOf[L]) {
      bool Found = false;
      for (uint32_t Caller = 0; Caller != CG.numCallers(); ++Caller) {
        for (ExprId S : CG.sitesOf(Caller)) {
          if (S == Site) {
            Found = CG.calleesOf(Caller).contains(L);
            break;
          }
        }
        if (Found)
          break;
      }
      EXPECT_TRUE(Found) << "dynamic call to label " << L << " at site "
                         << Site.index() << " missing, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CallGraphProperty,
                         ::testing::Range<uint64_t>(1600, 1615));

//===----------------------------------------------------------------------===//
// Incremental closure
//===----------------------------------------------------------------------===//

TEST(Incremental, FragmentByFragmentEqualsFromScratch) {
  // Analyse the let-spine one binding at a time, closing in between; the
  // final graph must answer exactly like a from-scratch build+close.
  auto M = parseMaybeInfer(makeCubicFamily(6));
  ASSERT_TRUE(M);

  SubtransitiveGraph Whole(*M);
  Whole.build();
  Whole.close();
  Reachability RW(Whole);

  // Incremental: feed each top-level initializer separately, then the
  // rest of the program.
  SubtransitiveGraph Inc(*M);
  std::vector<ExprId> Inits;
  const Expr *E = M->expr(M->root());
  while (const auto *L = dyn_cast<LetExpr>(E)) {
    Inits.push_back(L->init());
    E = M->expr(L->body());
  }
  ASSERT_GT(Inits.size(), 3u);
  Inc.buildFragment(Inits[0]);
  Inc.close();
  for (size_t I = 1; I != Inits.size(); ++I) {
    Inc.addFragment(Inits[I]);
    Inc.close();
  }
  Inc.addFragment(M->root()); // the spine itself (re-visits are no-ops)
  Inc.close();

  Reachability RI(Inc);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(RI.labelsOf(ExprId(I)) == RW.labelsOf(ExprId(I)))
        << "expr " << I;
  EXPECT_EQ(Whole.stats().totalEdges(), Inc.stats().totalEdges());
}

TEST(Incremental, PostCloseEdgeExtendsTheFixpoint) {
  // Manually connect a new flow after close() and re-close: the new
  // consequence appears, nothing else changes.
  auto M = parseMaybeInfer("let f = fn x => x in let g = fn y => y in f");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R1(G);
  LabelId GLab = labelOfFnWithParam(*M, "y");
  EXPECT_FALSE(R1.labelsOf(M->root()).contains(GLab.index()));

  // New fact: the root may also evaluate to g.
  const auto *LetF = cast<LetExpr>(M->expr(M->root()));
  const auto *LetG = cast<LetExpr>(M->expr(LetF->body()));
  G.addEdge(G.exprNode(M->root()), G.exprNode(LetG->init()));
  G.close();
  Reachability R2(G);
  EXPECT_TRUE(R2.labelsOf(M->root()).contains(GLab.index()));
}

} // namespace
