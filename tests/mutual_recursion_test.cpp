//===-- tests/mutual_recursion_test.cpp - letrec ... and ... groups -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "ast/Printer.h"
#include "core/Reachability.h"
#include "interp/Interpreter.h"
#include "unify/UnificationCFA.h"

using namespace stcfa;

namespace {

const char *EvenOdd =
    "letrec isEven = fn n => if n == 0 then true else isOdd (n - 1)\n"
    "and isOdd = fn n => if n == 0 then false else isEven (n - 1)\n"
    "in (isEven 10, isOdd 10)";

TEST(MutualRecursion, ParsesToAGroup) {
  auto M = parseOrDie(EvenOdd);
  ASSERT_TRUE(M);
  const auto *G = dyn_cast<LetRecNExpr>(M->expr(M->root()));
  ASSERT_TRUE(G);
  EXPECT_EQ(G->bindings().size(), 2u);
  // Forward reference resolved: isOdd inside isEven's body points at the
  // group binder.
  EXPECT_EQ(M->var(G->bindings()[1].Var).Binder, M->root());
}

TEST(MutualRecursion, SingleBindingStaysLetExpr) {
  auto M = parseOrDie("letrec f = fn x => f x in f");
  ASSERT_TRUE(M);
  EXPECT_TRUE(isa<LetExpr>(M->expr(M->root())));
}

TEST(MutualRecursion, TypeChecks) {
  auto M = parseAndInfer(EvenOdd);
  ASSERT_TRUE(M);
  const auto *G = cast<LetRecNExpr>(M->expr(M->root()));
  EXPECT_EQ(M->types().render(M->expr(G->bindings()[0].Init)->type(),
                              M->strings()),
            "Int -> Bool");
}

TEST(MutualRecursion, Evaluates) {
  auto M = parseOrDie(EvenOdd);
  ASSERT_TRUE(M);
  auto R = interpret(*M);
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "(true, false)");
}

TEST(MutualRecursion, ThreeWayGroup) {
  auto M = parseAndInfer(
      "letrec a = fn n => if n == 0 then 0 else b (n - 1)\n"
      "and b = fn n => if n == 0 then 1 else c (n - 1)\n"
      "and c = fn n => if n == 0 then 2 else a (n - 1)\n"
      "in a 7");
  ASSERT_TRUE(M);
  auto R = interpret(*M);
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "1"); // 7 hops: a b c a b c a -> b(0) = 1
}

TEST(MutualRecursion, GraphEqualsStandardCFA) {
  // Mutual higher-order functions exchanging function values.
  auto M = parseAndInfer(
      "letrec ping = fn f => fn n => if n == 0 then f else pong f (n - 1)\n"
      "and pong = fn g => fn n => ping g (n - 1)\n"
      "in (ping (fn a => a) 4) 9");
  ASSERT_TRUE(M);
  StandardCFA Std(*M);
  Std.run();
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  SubtransitiveGraph G(*M, C);
  G.build();
  G.close();
  Reachability R(G);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(R.labelsOf(ExprId(I)) == Std.labelSet(ExprId(I)))
        << "expr " << I;
  for (uint32_t V = 0; V != M->numVars(); ++V)
    EXPECT_TRUE(R.labelsOfVar(VarId(V)) == Std.labelSetOfVar(VarId(V)))
        << "var " << V;
}

TEST(MutualRecursion, UnificationIsSound) {
  auto M = parseAndInfer(EvenOdd);
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  StandardCFA Std(*M);
  Std.run();
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(U.labelSet(ExprId(I)).containsAll(Std.labelSet(ExprId(I))));
}

TEST(MutualRecursion, PrinterRoundTrip) {
  auto M1 = parseOrDie(EvenOdd);
  ASSERT_TRUE(M1);
  std::string P1 = printProgram(*M1);
  DiagnosticEngine Diags;
  auto M2 = parseProgram(P1, Diags);
  ASSERT_TRUE(M2) << Diags.render() << P1;
  EXPECT_EQ(M1->numExprs(), M2->numExprs());
  EXPECT_EQ(P1, printProgram(*M2));
}

TEST(MutualRecursion, TopLevelGroupDesugars) {
  auto M = parseAndInfer(
      "letrec f = fn n => if n == 0 then 1 else g (n - 1)\n"
      "and g = fn n => f n;\n"
      "f 3");
  ASSERT_TRUE(M);
  EXPECT_TRUE(isa<LetRecNExpr>(M->expr(M->root())));
  auto R = interpret(*M);
  EXPECT_EQ(R.FinalValue, "1");
}

TEST(MutualRecursion, NestedGroupsResolveOutward) {
  // The inner group's unresolved name `h` belongs to the outer group.
  auto M = parseAndInfer(
      "letrec outer = fn n =>\n"
      "  (letrec innerA = fn m => if m == 0 then h m else innerB m\n"
      "   and innerB = fn m => innerA (m - 1)\n"
      "   in innerA n)\n"
      "and h = fn k => k\n"
      "in outer 3");
  ASSERT_TRUE(M);
  auto R = interpret(*M);
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "0");
}

//===----------------------------------------------------------------------===//
// Rejections
//===----------------------------------------------------------------------===//

void expectParseError(const char *Src) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram(Src, Diags), nullptr) << Src;
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(MutualRecursion, NonLambdaMemberRejected) {
  expectParseError("letrec f = fn x => x and g = 5 in f");
}

TEST(MutualRecursion, DuplicateNamesRejected) {
  expectParseError("letrec f = fn x => x and f = fn y => y in f");
}

TEST(MutualRecursion, UnboundForwardRefRejected) {
  expectParseError("letrec f = fn x => nowhere x and g = fn y => y in f");
}

TEST(MutualRecursion, ShadowingGroupMemberRejected) {
  // `g` resolves to the outer g inside f's init but is then shadowed by
  // the group's own g — ambiguous under eager resolution, so rejected.
  expectParseError("let g = fn a => a in\n"
                   "letrec f = fn x => g x and g = fn y => y in f 1");
}

TEST(MutualRecursion, AndOutsideLetrecRejected) {
  expectParseError("let f = fn x => x and g = fn y => y in f");
}

} // namespace
