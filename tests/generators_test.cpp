//===-- tests/generators_test.cpp - Workload generator tests --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "interp/Interpreter.h"

#include <algorithm>

using namespace stcfa;

namespace {

int countLines(const std::string &S) {
  return static_cast<int>(std::count(S.begin(), S.end(), '\n'));
}

TEST(Generators, CubicFamilyParsesAndInfers) {
  for (int N : {1, 2, 8}) {
    auto M = parseAndInfer(makeCubicFamily(N));
    ASSERT_TRUE(M) << "size " << N;
    // Two shared functions plus 2 per copy.
    EXPECT_EQ(M->numLabels(), 2u + 2u * N);
  }
}

TEST(Generators, CubicFamilySizeIsLinear) {
  auto M1 = parseOrDie(makeCubicFamily(10));
  auto M2 = parseOrDie(makeCubicFamily(20));
  ASSERT_TRUE(M1 && M2);
  // Doubling the parameter roughly doubles the program size.
  EXPECT_NEAR(static_cast<double>(M2->numExprs()) / M1->numExprs(), 2.0, 0.3);
}

TEST(Generators, JoinPointFamilyParsesAndInfers) {
  auto M = parseAndInfer(makeJoinPointFamily(5));
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numLabels(), 6u); // f plus 5 arguments
}

TEST(Generators, EffectsFamilyParsesAndInfers) {
  auto M = parseAndInfer(makeEffectsFamily(4));
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numLabels(), 10u); // w0..w4, p0..p4
}

TEST(Generators, CalledOnceFamilyParsesAndInfers) {
  EXPECT_TRUE(parseAndInfer(makeCalledOnceFamily(3)));
}

TEST(Generators, DispatchFamilyGrowsCalleeSets) {
  auto M = parseAndInfer(makeDispatchFamily(6));
  ASSERT_TRUE(M);
  // d6 can be any of g0..g6.
  EXPECT_EQ(M->numLabels(), 7u);
}

TEST(Generators, LifeProgramParsesAndInfers) {
  std::string Src = lifeProgram();
  EXPECT_GE(countLines(Src), 120) << "life should be ~150 lines";
  EXPECT_LE(countLines(Src), 200);
  EXPECT_TRUE(parseAndInfer(Src));
}

TEST(Generators, LexgenLikeParsesAndInfers) {
  EXPECT_TRUE(parseAndInfer(makeLexgenLike(10)));
}

TEST(Generators, MiniEvalParsesInfersAndRuns) {
  auto M = parseAndInfer(miniEvalProgram());
  ASSERT_TRUE(M);
  auto R = interpret(*M, 5000000);
  ASSERT_TRUE(R.Completed) << R.Abort;
  // (1+2) * (5 + -3) = 6, evaluated twice (folded + unfolded).
  EXPECT_EQ(R.FinalValue, "12");
}

TEST(Generators, ParserComboParsesInfersAndRuns) {
  auto M = parseAndInfer(parserComboProgram());
  ASSERT_TRUE(M);
  auto R = interpret(*M, 5000000);
  ASSERT_TRUE(R.Completed) << R.Abort;
  // "1*2+3" accepted, "" rejected.
  EXPECT_EQ(R.FinalValue, "1");
}

TEST(Generators, LexgenDefaultScaleMatchesPaper) {
  // The paper's lexgen is 1180 lines; the default emission is the same
  // size class (within ~25%).
  int Lines = countLines(makeLexgenLike());
  EXPECT_GE(Lines, 900);
  EXPECT_LE(Lines, 1500);
}

TEST(Generators, RandomProgramsAreDeterministic) {
  RandomProgramOptions O;
  O.Seed = 42;
  EXPECT_EQ(makeRandomProgram(O), makeRandomProgram(O));
  O.Seed = 43;
  EXPECT_NE(makeRandomProgram(RandomProgramOptions{}), makeRandomProgram(O));
}

class RandomProgramSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramSeeds, ParseAndInferCleanly) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  O.UseRefs = true;
  O.UseEffects = true;
  EXPECT_TRUE(parseAndInfer(makeRandomProgram(O)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSeeds,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
