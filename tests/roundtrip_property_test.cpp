//===-- tests/roundtrip_property_test.cpp - Print/parse round trips -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property: for any program in the corpus, printing and reparsing
/// preserves the AST shape *and the analysis results* (same label-set mass
/// under standard CFA), and the printer is a fixed point on its own
/// output.  This pins the printer and parser against each other across
/// the whole construct surface.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "ast/Printer.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"

using namespace stcfa;

namespace {

uint64_t analysisFingerprint(const Module &M) {
  StandardCFA Std(M);
  Std.run();
  // Order-independent summary: per-occurrence set sizes in traversal
  // order plus total mass.
  uint64_t H = 1469598103934665603ull;
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    H = (H ^ Std.labelSet(Id).count()) * 1099511628211ull;
    H = (H ^ static_cast<uint64_t>(E->kind())) * 1099511628211ull;
  });
  return H;
}

void roundTripsFaithfully(const std::string &Source) {
  auto M1 = parseMaybeInfer(Source);
  ASSERT_TRUE(M1);
  std::string P1 = printProgram(*M1);
  DiagnosticEngine Diags;
  auto M2 = parseProgram(P1, Diags);
  ASSERT_TRUE(M2) << "reparse failed:\n" << Diags.render() << P1;
  DiagnosticEngine D2;
  (void)inferTypes(*M2, D2);

  EXPECT_EQ(M1->numExprs(), M2->numExprs());
  EXPECT_EQ(M1->numLabels(), M2->numLabels());
  EXPECT_EQ(M1->numVars(), M2->numVars());
  EXPECT_EQ(P1, printProgram(*M2)) << "printer not a fixed point";
  EXPECT_EQ(analysisFingerprint(*M1), analysisFingerprint(*M2))
      << "analysis results changed across the round trip";
}

class RandomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoundTrip, PreservesShapeAndAnalysis) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 70;
  O.UseRefs = true;
  O.UseEffects = true;
  roundTripsFaithfully(makeRandomProgram(O));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTrip,
                         ::testing::Range<uint64_t>(1400, 1425));

TEST(CorpusRoundTrip, Life) { roundTripsFaithfully(lifeProgram()); }

TEST(CorpusRoundTrip, MiniEval) {
  roundTripsFaithfully(miniEvalProgram());
}

TEST(CorpusRoundTrip, ParserCombo) {
  roundTripsFaithfully(parserComboProgram());
}

TEST(CorpusRoundTrip, Lexgen) {
  roundTripsFaithfully(makeLexgenLike(25));
}

TEST(CorpusRoundTrip, CubicFamily) {
  roundTripsFaithfully(makeCubicFamily(12));
}

TEST(CorpusRoundTrip, DispatchFamily) {
  roundTripsFaithfully(makeDispatchFamily(12));
}

TEST(CorpusRoundTrip, EffectsFamily) {
  roundTripsFaithfully(makeEffectsFamily(12));
}

} // namespace
