//===-- tests/unify_test.cpp - Equality-based flow analysis tests ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "gen/Generators.h"
#include "unify/UnificationCFA.h"

using namespace stcfa;

namespace {

TEST(Unification, Identity) {
  auto M = parseMaybeInfer("(fn f => f) (fn y => y)");
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  LabelId Y = labelOfFnWithParam(*M, "y");
  EXPECT_TRUE(U.labelSet(M->root()).contains(Y.index()));
}

TEST(Unification, MergesFlowsThatInclusionKeepsApart) {
  // `k` flows into both id1 and id2; unification therefore merges the two
  // parameters, so the extra argument `m` of id1 leaks into id2's
  // parameter.  Inclusion-based CFA keeps them apart.
  auto M = parseMaybeInfer("let id1 = fn x => x in "
                           "let id2 = fn y => y in "
                           "let k = fn a => a in "
                           "let m = fn b => b in "
                           "let r1 = id1 k in "
                           "let r2 = id1 m in "
                           "let r3 = id2 k in r3");
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  StandardCFA Std(*M);
  Std.run();
  VarId Y = varNamed(*M, "y");
  LabelId A = labelOfFnWithParam(*M, "a");
  LabelId B = labelOfFnWithParam(*M, "b");
  // Inclusion: y binds only k.
  DenseBitset Precise = Std.labelSetOfVar(Y);
  EXPECT_TRUE(Precise.contains(A.index()));
  EXPECT_FALSE(Precise.contains(B.index()));
  // Unification: y's class absorbed m as well.
  DenseBitset Coarse = U.labelSetOfVar(Y);
  EXPECT_TRUE(Coarse.contains(A.index()));
  EXPECT_TRUE(Coarse.contains(B.index()));
}

TEST(Unification, TracksThroughTuples) {
  auto M = parseMaybeInfer("#1 (fn a => a, 1)");
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  EXPECT_TRUE(
      U.labelSet(M->root()).contains(labelOfFnWithParam(*M, "a").index()));
}

TEST(Unification, TracksThroughConstructorsAndRefs) {
  auto M = parseMaybeInfer(
      "data Box = MkBox(Int -> Int);\n"
      "let b = MkBox(fn a => a) in "
      "let r = ref (fn c => c) in "
      "let u = r := (case b of MkBox(f) => f end) in !r");
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  const auto *L1 = cast<LetExpr>(M->expr(M->root()));
  const auto *L2 = cast<LetExpr>(M->expr(L1->body()));
  const auto *L3 = cast<LetExpr>(M->expr(L2->body()));
  DenseBitset Read = U.labelSet(L3->body());
  EXPECT_TRUE(Read.contains(labelOfFnWithParam(*M, "a").index()));
  EXPECT_TRUE(Read.contains(labelOfFnWithParam(*M, "c").index()));
}

class UnificationSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnificationSoundness, ContainsStandardCFA) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 60;
  O.UseRefs = true;
  O.UseEffects = true;
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  StandardCFA Std(*M);
  Std.run();
  for (uint32_t I = 0, N = M->numExprs(); I != N; ++I) {
    EXPECT_TRUE(U.labelSet(ExprId(I)).containsAll(Std.labelSet(ExprId(I))))
        << "expr " << I << " seed " << GetParam();
  }
  for (uint32_t V = 0, N = M->numVars(); V != N; ++V) {
    EXPECT_TRUE(
        U.labelSetOfVar(VarId(V)).containsAll(Std.labelSetOfVar(VarId(V))))
        << "var " << V << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnificationSoundness,
                         ::testing::Range<uint64_t>(800, 825));

TEST(Unification, CubicFamilyCollapsesEverything) {
  // On the cubic family, unification merges the whole f/b universe — the
  // precision loss the paper's algorithm avoids.
  auto M = parseAndInfer(makeCubicFamily(4));
  ASSERT_TRUE(M);
  UnificationCFA U(*M);
  U.run();
  StandardCFA Std(*M);
  Std.run();
  uint64_t UnifySize = 0, StdSize = 0;
  for (uint32_t I = 0, N = M->numExprs(); I != N; ++I) {
    UnifySize += U.labelSet(ExprId(I)).count();
    StdSize += Std.labelSet(ExprId(I)).count();
  }
  EXPECT_GT(UnifySize, StdSize);
}

} // namespace
