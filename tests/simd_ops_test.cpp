//===-- tests/simd_ops_test.cpp - SIMD/scalar seam differentials ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The row-OR/popcount dispatch seam (support/SimdOps.h): every path the
// machine supports must be bit-exact with the scalar reference loop, on
// every width — especially the awkward tails that are not multiples of
// the 256-/512-bit vector width.  These tests drive the per-path entry
// points directly, so they exercise the vector code even when the whole
// suite runs under STCFA_FORCE_SCALAR=1 (which only pins the *dispatched*
// path).
//
//===----------------------------------------------------------------------===//

#include "support/DenseBitset.h"
#include "support/SimdOps.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace stcfa;

namespace {

/// Deterministic xorshift word stream.
class WordRng {
public:
  explicit WordRng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

private:
  uint64_t State;
};

std::vector<uint64_t> randomWords(size_t N, uint64_t Seed) {
  WordRng R(Seed);
  std::vector<uint64_t> W(N);
  for (uint64_t &X : W)
    X = R.next();
  return W;
}

std::vector<simd::Path> supportedPaths() {
  std::vector<simd::Path> Paths = {simd::Path::Scalar};
  if (simd::pathSupported(simd::Path::Avx2))
    Paths.push_back(simd::Path::Avx2);
  if (simd::pathSupported(simd::Path::Avx512))
    Paths.push_back(simd::Path::Avx512);
  return Paths;
}

/// The widths that historically break vector kernels: 0, sub-vector,
/// exact multiples of the 4-word (AVX2) and 8-word (AVX-512) strides,
/// and every off-by-one around them.
const size_t AwkwardWidths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  11, 12,
                                13, 15, 16, 17, 23, 24, 25, 31, 32, 33, 63,
                                64, 65, 100, 127, 128, 129, 255, 256, 257};

TEST(SimdOps, ActivePathIsSupported) {
  EXPECT_TRUE(simd::pathSupported(simd::activePath()));
  EXPECT_STREQ(simd::pathName(simd::activePath()), simd::activePathName());
}

TEST(SimdOps, PathNames) {
  EXPECT_STREQ(simd::pathName(simd::Path::Scalar), "scalar");
  EXPECT_STREQ(simd::pathName(simd::Path::Avx2), "avx2");
  EXPECT_STREQ(simd::pathName(simd::Path::Avx512), "avx512");
}

TEST(SimdOps, OrWordsMatchesScalarOnAllWidthsAndPaths) {
  for (simd::Path P : supportedPaths()) {
    for (size_t W : AwkwardWidths) {
      std::vector<uint64_t> Src = randomWords(W, 1000 + W);
      std::vector<uint64_t> Ref = randomWords(W, 2000 + W);
      std::vector<uint64_t> Got = Ref; // same starting contents
      simd::orWordsScalar(W ? Ref.data() : nullptr, W ? Src.data() : nullptr,
                          W);
      simd::orWordsPath(P, W ? Got.data() : nullptr,
                        W ? Src.data() : nullptr, W);
      ASSERT_EQ(Ref, Got) << "path " << simd::pathName(P) << " width " << W;
    }
  }
}

TEST(SimdOps, PopcountMatchesScalarOnAllWidthsAndPaths) {
  for (simd::Path P : supportedPaths()) {
    for (size_t W : AwkwardWidths) {
      std::vector<uint64_t> Src = randomWords(W, 3000 + W);
      uint64_t Ref =
          simd::popcountWordsScalar(W ? Src.data() : nullptr, W);
      uint64_t Got =
          simd::popcountWordsPath(P, W ? Src.data() : nullptr, W);
      ASSERT_EQ(Ref, Got) << "path " << simd::pathName(P) << " width " << W;
    }
  }
}

TEST(SimdOps, PopcountExtremes) {
  for (simd::Path P : supportedPaths()) {
    std::vector<uint64_t> Zeros(37, 0);
    std::vector<uint64_t> Ones(37, ~uint64_t(0));
    EXPECT_EQ(simd::popcountWordsPath(P, Zeros.data(), Zeros.size()), 0u);
    EXPECT_EQ(simd::popcountWordsPath(P, Ones.data(), Ones.size()),
              37u * 64u);
  }
}

TEST(SimdOps, OrWordsDoesNotTouchBeyondWidth) {
  // A canary word just past the row: no path may write through it.
  for (simd::Path P : supportedPaths()) {
    for (size_t W : AwkwardWidths) {
      std::vector<uint64_t> Src = randomWords(W + 1, 4000 + W);
      std::vector<uint64_t> Dst = randomWords(W + 1, 5000 + W);
      const uint64_t SrcCanary = Src[W], DstCanary = Dst[W];
      simd::orWordsPath(P, Dst.data(), Src.data(), W);
      EXPECT_EQ(Src[W], SrcCanary) << "path " << simd::pathName(P);
      EXPECT_EQ(Dst[W], DstCanary) << "path " << simd::pathName(P);
    }
  }
}

TEST(SimdOps, DispatchedCallsMatchScalar) {
  // Whatever activePath() resolved to (native or forced scalar), the
  // public entry points must agree with the reference loop.
  for (size_t W : AwkwardWidths) {
    std::vector<uint64_t> Src = randomWords(W, 6000 + W);
    std::vector<uint64_t> Ref = randomWords(W, 7000 + W);
    std::vector<uint64_t> Got = Ref;
    simd::orWordsScalar(W ? Ref.data() : nullptr, W ? Src.data() : nullptr,
                        W);
    simd::orWords(W ? Got.data() : nullptr, W ? Src.data() : nullptr, W);
    ASSERT_EQ(Ref, Got) << "width " << W;
    ASSERT_EQ(simd::popcountWords(W ? Src.data() : nullptr, W),
              simd::popcountWordsScalar(W ? Src.data() : nullptr, W));
  }
}

TEST(SimdOps, DenseBitsetOrWordsMasksPaddedTail) {
  // DenseBitset::orWords runs on the dispatched path and must still mask
  // ghost bits when OR-ing from a buffer padded past the universe — the
  // kernel's cache-line-padded rows are exactly that.
  for (uint32_t Universe : {1u, 63u, 64u, 65u, 130u, 200u, 513u}) {
    size_t UniverseWords = (Universe + 63) / 64;
    size_t PaddedWords = (UniverseWords + 7) & ~size_t(7);
    std::vector<uint64_t> Padded(PaddedWords, ~uint64_t(0)); // all ghost bits
    DenseBitset B(Universe);
    B.insert(0);
    B.orWords(Padded.data(), Padded.size());
    EXPECT_EQ(B.count(), Universe) << "universe " << Universe;
    EXPECT_EQ(B.popcount(), Universe) << "universe " << Universe;
    uint32_t Seen = 0;
    B.forEach([&](uint32_t I) {
      EXPECT_LT(I, Universe);
      ++Seen;
    });
    EXPECT_EQ(Seen, Universe);
  }
}

TEST(SimdOps, DenseBitsetUnionAgreesWithInsertLoop) {
  // Random cross-check of the dispatched popcount against incremental
  // count maintenance.
  WordRng R(42);
  for (int Round = 0; Round != 20; ++Round) {
    uint32_t Universe = 1 + static_cast<uint32_t>(R.next() % 700);
    DenseBitset A(Universe), B(Universe);
    for (uint32_t I = 0; I != Universe; ++I) {
      if (R.next() & 1)
        A.insert(I);
      if (R.next() & 2)
        B.insert(I);
    }
    DenseBitset U = A;
    U.unionWith(B);
    DenseBitset O = A;
    O.orWords(B);
    EXPECT_TRUE(U == O);
    EXPECT_EQ(O.count(), O.popcount());
  }
}

} // namespace
