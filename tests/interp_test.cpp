//===-- tests/interp_test.cpp - Reference interpreter tests ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "interp/Interpreter.h"

using namespace stcfa;

namespace {

InterpreterResult runSource(const std::string &Source,
                            uint64_t Fuel = 1000000) {
  auto M = parseMaybeInfer(Source);
  EXPECT_TRUE(M);
  if (!M)
    return {};
  return interpret(*M, Fuel);
}

TEST(Interpreter, Arithmetic) {
  auto R = runSource("2 + 3 * 4");
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "14");
}

TEST(Interpreter, BooleansAndComparisons) {
  EXPECT_EQ(runSource("if 1 < 2 then 10 else 20").FinalValue, "10");
  EXPECT_EQ(runSource("if not (1 == 1) then 10 else 20").FinalValue, "20");
  EXPECT_EQ(runSource("3 <= 3").FinalValue, "true");
}

TEST(Interpreter, FunctionsAndClosures) {
  EXPECT_EQ(runSource("(fn x => x + 1) 41").FinalValue, "42");
  // Closure capture.
  EXPECT_EQ(runSource("let make = fn n => fn m => n + m in "
                      "let add5 = make 5 in add5 10")
                .FinalValue,
            "15");
}

TEST(Interpreter, LetRecFactorial) {
  auto R = runSource("letrec fact = fn n => if n == 0 then 1 "
                     "else n * fact (n - 1) in fact 6");
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "720");
}

TEST(Interpreter, TuplesAndProjections) {
  EXPECT_EQ(runSource("#2 (1, (2, 3))").FinalValue, "(2, 3)");
}

TEST(Interpreter, DatatypesAndCase) {
  auto R = runSource(
      "data IntList = INil | ICons(Int, IntList);\n"
      "letrec sum = fn l => case l of INil => 0 "
      "| ICons(h, t) => h + sum t end in "
      "sum (ICons(1, ICons(2, ICons(3, INil))))");
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "6");
}

TEST(Interpreter, RefsAreMutable) {
  auto R = runSource("let r = ref 1 in let u = r := 41 in !r + 1");
  ASSERT_TRUE(R.Completed) << R.Abort;
  EXPECT_EQ(R.FinalValue, "42");
}

TEST(Interpreter, PrintCollectsOutput) {
  auto R = runSource("#2 (print \"hello\", print \"world\")");
  ASSERT_TRUE(R.Completed) << R.Abort;
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], "hello");
  EXPECT_EQ(R.Output[1], "world");
}

TEST(Interpreter, EffectObservations) {
  auto R = runSource("let pure = 1 + 2 in print \"x\"");
  ASSERT_TRUE(R.Completed) << R.Abort;
  auto M = parseMaybeInfer("let pure = 1 + 2 in print \"x\"");
  // The print expression (and the enclosing let) did effects; the
  // arithmetic did not.
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  EXPECT_TRUE(R.DidEffect[M->root().index()]);
  EXPECT_FALSE(R.DidEffect[Let->init().index()]);
}

TEST(Interpreter, FuelBoundsNontermination) {
  auto R = runSource("letrec loop = fn x => loop x in loop 1", 5000);
  EXPECT_FALSE(R.Completed);
  EXPECT_TRUE(R.Abort == "out of fuel" || R.Abort == "recursion too deep")
      << R.Abort;
}

TEST(Interpreter, StuckStates) {
  EXPECT_EQ(runSource("1 2").Abort, "stuck: applying a non-function");
  EXPECT_EQ(runSource("1 / 0").Abort, "stuck: division by zero");
  EXPECT_EQ(runSource("if 1 then 2 else 3").Abort,
            "stuck: non-boolean condition");
  EXPECT_EQ(runSource("data D = C | E;\ncase C of E => 1 end").Abort,
            "stuck: no matching case arm");
}

TEST(Interpreter, DivisionTruncates) {
  EXPECT_EQ(runSource("7 / 2").FinalValue, "3");
}

TEST(Interpreter, CallSiteObservations) {
  std::string Src = "let f = fn x => x in let g = fn y => y in (f 1, f g)";
  auto M = parseMaybeInfer(Src);
  ASSERT_TRUE(M);
  auto R = interpret(*M);
  ASSERT_TRUE(R.Completed) << R.Abort;
  LabelId F = labelOfFnWithParam(*M, "x");
  LabelId G = labelOfFnWithParam(*M, "y");
  EXPECT_EQ(R.CallSitesOf[F.index()].size(), 2u); // two sites call f
  EXPECT_EQ(R.CallSitesOf[G.index()].size(), 0u); // g is never called
}

TEST(Interpreter, LifeProgramRuns) {
  auto M = parseAndInfer(lifeProgram());
  ASSERT_TRUE(M);
  auto R = interpret(*M, 20000000);
  ASSERT_TRUE(R.Completed) << R.Abort;
  // 4 generations of a glider keep 5 live cells.
  EXPECT_FALSE(R.Output.empty());
  EXPECT_EQ(R.Output.back(), "done");
}

TEST(Interpreter, LexgenLikeRuns) {
  auto M = parseAndInfer(makeLexgenLike(12));
  ASSERT_TRUE(M);
  auto R = interpret(*M, 20000000);
  ASSERT_TRUE(R.Completed) << R.Abort;
  // The driver returns tokCount renumbered + tokCount tokens (an int).
  EXPECT_FALSE(R.FinalValue.empty());
}

TEST(Interpreter, CubicFamilyRuns) {
  auto M = parseAndInfer(makeCubicFamily(4));
  ASSERT_TRUE(M);
  auto R = interpret(*M);
  ASSERT_TRUE(R.Completed) << R.Abort;
}

} // namespace
