//===-- tests/equivalence_test.cpp - Propositions 1 and 2 -----------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central claim (Propositions 1/2): the transitive closure of
/// the subtransitive graph gives exactly the results of standard CFA.  We
/// check it by comparing `Reachability::labelsOf` against `StandardCFA`
/// for every occurrence of hand-written programs exercising each language
/// construct.  For mutable references the graph is invariant-closed and may
/// be coarser, so those programs assert soundness (superset) instead.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "ast/Printer.h"
#include "core/Reachability.h"

using namespace stcfa;

namespace {

struct CompareResult {
  int ExactMatches = 0;
  int GraphCoarser = 0; // graph ⊋ standard (sound but less precise)
  int Unsound = 0;      // graph ⊉ standard
  std::string FirstUnsound;
};

CompareResult compareAll(const Module &M, SubtransitiveConfig Config = {}) {
  StandardCFA Std(M);
  Std.run();

  SubtransitiveGraph G(M, Config);
  G.build();
  G.close();
  Reachability R(G);

  CompareResult Out;
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    ExprId Id(I);
    DenseBitset Want = Std.labelSet(Id);
    DenseBitset Got = R.labelsOf(Id);
    if (Got == Want) {
      ++Out.ExactMatches;
    } else if (Got.containsAll(Want)) {
      ++Out.GraphCoarser;
    } else {
      ++Out.Unsound;
      if (Out.FirstUnsound.empty())
        Out.FirstUnsound = describeExpr(M, Id) + " in:\n" + printProgram(M);
    }
  }
  // Binder sets must agree too.
  for (uint32_t V = 0; V != M.numVars(); ++V) {
    DenseBitset Want = Std.labelSetOfVar(VarId(V));
    DenseBitset Got = R.labelsOfVar(VarId(V));
    if (Got == Want) {
      ++Out.ExactMatches;
    } else if (Got.containsAll(Want)) {
      ++Out.GraphCoarser;
    } else {
      ++Out.Unsound;
      if (Out.FirstUnsound.empty())
        Out.FirstUnsound =
            "binder " + std::string(M.text(M.var(VarId(V)).Name));
    }
  }
  return Out;
}

/// Asserts graph CFA == standard CFA on every occurrence.
void expectExact(const std::string &Source, SubtransitiveConfig Config = {}) {
  auto M = parseMaybeInfer(Source);
  ASSERT_TRUE(M);
  CompareResult R = compareAll(*M, Config);
  EXPECT_EQ(R.Unsound, 0) << "unsound at " << R.FirstUnsound;
  EXPECT_EQ(R.GraphCoarser, 0) << "graph coarser than standard CFA on:\n"
                               << Source;
}

/// Asserts graph CFA ⊇ standard CFA on every occurrence (used for refs and
/// congruence-coarsened datatype programs).
void expectSound(const std::string &Source, SubtransitiveConfig Config = {}) {
  auto M = parseMaybeInfer(Source);
  ASSERT_TRUE(M);
  CompareResult R = compareAll(*M, Config);
  EXPECT_EQ(R.Unsound, 0) << "unsound at " << R.FirstUnsound;
}

SubtransitiveConfig exactDatatypes() {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  return C;
}

//===----------------------------------------------------------------------===//
// The paper's own examples
//===----------------------------------------------------------------------===//

TEST(Equivalence, PaperSection3Example) {
  // (fn x => x x) (fn x' => x'), the running example of Section 3.
  expectExact("(fn x => x x) (fn y => y)");
}

TEST(Equivalence, PaperSection3ExampleResult) {
  // Check the concrete result: the whole application evaluates to the
  // second abstraction, as derived in the paper's LC example.
  auto M = parseMaybeInfer("(fn x => x x) (fn y => y)");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  LabelId Y = labelOfFnWithParam(*M, "y");
  LabelId X = labelOfFnWithParam(*M, "x");
  EXPECT_TRUE(R.isLabelIn(M->root(), Y));
  EXPECT_FALSE(R.isLabelIn(M->root(), X));
  // x is bound to fn y => y only.
  DenseBitset XSet = R.labelsOfVar(varNamed(*M, "x"));
  EXPECT_TRUE(XSet.contains(Y.index()));
  EXPECT_FALSE(XSet.contains(X.index()));
}

TEST(Equivalence, PaperSection7Fragment) {
  // fn z => ((fn y => z) nil) — the Section 7 polyvariance example, here
  // with unit standing in for nil.
  expectExact("fn z => (fn y => z) unit");
}

TEST(Equivalence, PaperCubicBenchmarkShape) {
  // The Section 10 parameterized benchmark at size 1.
  expectExact("let fs = fn x => x;\n"
              "let bs = fn x => x;\n"
              "let f1 = fn x => x;\n"
              "let b1 = fn x => x;\n"
              "let x1 = b1 (fs f1);\n"
              "let y1 = (bs b1) f1;\n"
              "y1");
}

//===----------------------------------------------------------------------===//
// Lambda core
//===----------------------------------------------------------------------===//

TEST(Equivalence, Identity) { expectExact("fn x => x"); }

TEST(Equivalence, SimpleApplication) {
  expectExact("(fn f => f) (fn y => y)");
}

TEST(Equivalence, Composition) {
  expectExact("let comp = fn f => fn g => fn x => f (g x) in "
              "comp (fn a => a) (fn b => b)");
}

TEST(Equivalence, JoinPoint) {
  // The join-point shape of the paper's introduction: one parameter fed
  // from several call sites.
  expectExact("let f = fn x => x in "
              "let r1 = f (fn a => a) in "
              "let r2 = f (fn b => b) in "
              "(r1, r2)");
}

TEST(Equivalence, HigherOrderReturn) {
  expectExact("let mk = fn u => fn v => u in "
              "let g = mk (fn a => a) in "
              "g 1");
}

TEST(Equivalence, LetRecLoop) {
  expectExact("letrec loop = fn f => loop f in loop (fn x => x)");
}

TEST(Equivalence, ChurchNumerals) {
  expectExact("let zero = fn s => fn z => z in "
              "let succ = fn n => fn s => fn z => s (n s z) in "
              "let two = succ (succ zero) in "
              "two (fn b => b) (fn c => c)");
}

TEST(Equivalence, IfBranches) {
  expectExact("let pick = fn b => if b then fn x => x else fn y => y in "
              "pick true");
}

TEST(Equivalence, SelfApplicationThroughLet) {
  expectExact("let id = fn x => x in id id");
}

//===----------------------------------------------------------------------===//
// Tuples
//===----------------------------------------------------------------------===//

TEST(Equivalence, TupleRoundTrip) {
  expectExact("#1 (fn a => a, fn b => b)");
}

TEST(Equivalence, TupleSecondField) {
  expectExact("#2 (fn a => a, fn b => b)");
}

TEST(Equivalence, NestedTuples) {
  expectExact("#1 (#2 (fn a => a, (fn b => b, fn c => c)))");
}

TEST(Equivalence, TupleThroughFunction) {
  expectExact("let pair = fn x => fn y => (x, y) in "
              "let p = pair (fn a => a) (fn b => b) in "
              "(#1 p) (#2 p)");
}

TEST(Equivalence, TupleFlowsThroughJoin) {
  expectExact("let choose = fn b => if b then (fn a => a, 1) "
              "else (fn c => c, 2) in #1 (choose true)");
}

//===----------------------------------------------------------------------===//
// Datatypes (congruence disabled: exact tracking)
//===----------------------------------------------------------------------===//

TEST(Equivalence, NonRecursiveDatatypeExact) {
  expectExact("data Box = MkBox(Int -> Int);\n"
              "case MkBox(fn x => x) of MkBox(f) => f end",
              exactDatatypes());
}

TEST(Equivalence, TwoConstructorsSelectExact) {
  expectExact("data Either = L(Int -> Int) | R(Int -> Int);\n"
              "case L(fn a => a) of L(f) => f | R(g) => g end",
              exactDatatypes());
}

TEST(Equivalence, FunctionListExact) {
  // Recursive datatype holding functions: still exact without congruence
  // on this finite program (depth widening far away).
  expectExact("data FList = FNil | FCons(Int -> Int, FList);\n"
              "let l = FCons(fn a => a, FCons(fn b => b, FNil)) in "
              "case l of FNil => (fn z => z) | FCons(h, t) => h end",
              exactDatatypes());
}

TEST(Equivalence, CaseBindersAreConstructorSelective) {
  auto M = parseMaybeInfer(
      "data E = L(Int -> Int) | R(Int -> Int);\n"
      "case L(fn a => a) of L(f) => f | R(g) => g end");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactDatatypes());
  G.build();
  G.close();
  Reachability R(G);
  LabelId A = labelOfFnWithParam(*M, "a");
  // f sees fn a (through L), g sees nothing (no R value exists).
  DenseBitset FSet = R.labelsOfVar(varNamed(*M, "f"));
  EXPECT_TRUE(FSet.contains(A.index()));
  DenseBitset GSet = R.labelsOfVar(varNamed(*M, "g"));
  EXPECT_EQ(GSet.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Datatypes with congruences: sound, possibly coarser
//===----------------------------------------------------------------------===//

TEST(Equivalence, CongruenceByTypeIsSound) {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::ByType;
  expectSound("data FList = FNil | FCons(Int -> Int, FList);\n"
              "let l = FCons(fn a => a, FCons(fn b => b, FNil)) in "
              "case l of FNil => (fn z => z) | FCons(h, t) => h end",
              C);
}

TEST(Equivalence, CongruenceByBaseAndTypeIsSound) {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::ByBaseAndType;
  expectSound("data FList = FNil | FCons(Int -> Int, FList);\n"
              "let l = FCons(fn a => a, FCons(fn b => b, FNil)) in "
              "case l of FNil => (fn z => z) | FCons(h, t) => h end",
              C);
}

//===----------------------------------------------------------------------===//
// References: invariant closure is sound (superset), not exact
//===----------------------------------------------------------------------===//

TEST(Equivalence, RefReadSound) {
  expectSound("let r = ref (fn a => a) in !r");
}

TEST(Equivalence, RefWriteSound) {
  expectSound("let r = ref (fn a => a) in "
              "let u = r := (fn b => b) in !r");
}

TEST(Equivalence, RefWriteReachesReads) {
  auto M = parseMaybeInfer("let r = ref (fn a => a) in "
                         "let u = r := (fn b => b) in !r");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  Reachability R(G);
  // The read must see both the initial value and the written value.
  const auto *LetR = cast<LetExpr>(M->expr(M->root()));
  const auto *LetU = cast<LetExpr>(M->expr(LetR->body()));
  DenseBitset Read = R.labelsOf(LetU->body());
  EXPECT_TRUE(Read.contains(labelOfFnWithParam(*M, "a").index()));
  EXPECT_TRUE(Read.contains(labelOfFnWithParam(*M, "b").index()));
}

//===----------------------------------------------------------------------===//
// Mixed programs
//===----------------------------------------------------------------------===//

TEST(Equivalence, MapOverFunctionList) {
  // Recursive traversal of a recursive datatype: without a congruence the
  // derived-node chains are unbounded (the paper: "for untyped (or
  // recursively typed) programs ... our algorithm may not terminate"), so
  // the depth widening engages and the result is sound but coarser.
  const char *Source =
      "data FList = FNil | FCons(Int -> Int, FList);\n"
      "letrec map = fn f => fn l => case l of FNil => FNil "
      "| FCons(h, t) => FCons(f h, map f t) end in "
      "let twice = fn g => g in "
      "map twice (FCons(fn x => x + 1, FNil))";
  expectSound(Source, exactDatatypes());

  // The widening must actually have engaged without a congruence...
  auto M = parseMaybeInfer(Source);
  ASSERT_TRUE(M);
  SubtransitiveGraph GNone(*M, exactDatatypes());
  GNone.build();
  GNone.close();
  EXPECT_GT(GNone.stats().Widenings, 0u);

  // ...while congruence ≈1 bounds the node space with no widening, as the
  // paper's Section 6 construction intends.
  SubtransitiveGraph GCong(*M);
  GCong.build();
  GCong.close();
  EXPECT_EQ(GCong.stats().Widenings, 0u);
  expectSound(Source);
}

TEST(Equivalence, PolymorphicIdUsedTwice) {
  expectExact("let id = fn x => x in (id (fn a => a), id (fn b => b))");
}

TEST(Equivalence, DeadCodeStillAnalyzed) {
  // CFA is reduction-order-independent: the unused branch contributes.
  expectExact("let dead = (fn a => a) (fn b => b) in fn c => c");
}

//===----------------------------------------------------------------------===//
// Closure policies agree on final label sets
//===----------------------------------------------------------------------===//

class PolicyEquivalenceTest
    : public ::testing::TestWithParam<ClosurePolicy> {};

TEST_P(PolicyEquivalenceTest, SameLabelSets) {
  const char *Source = "let comp = fn f => fn g => fn x => f (g x) in "
                       "let p = comp (fn a => a) (fn b => b) in "
                       "(p, (fn s => s s) (fn t => t))";
  auto M = parseMaybeInfer(Source);
  ASSERT_TRUE(M);
  SubtransitiveConfig C;
  C.Policy = GetParam();
  CompareResult R = compareAll(*M, C);
  EXPECT_EQ(R.Unsound, 0) << R.FirstUnsound;
  EXPECT_EQ(R.GraphCoarser, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyEquivalenceTest,
                         ::testing::Values(ClosurePolicy::PaperExact,
                                           ClosurePolicy::NodeExists,
                                           ClosurePolicy::Undemanded));

} // namespace
