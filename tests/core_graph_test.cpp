//===-- tests/core_graph_test.cpp - Subtransitive graph structure ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Reachability.h"
#include "gen/Generators.h"

#include <set>
#include <string>

using namespace stcfa;

namespace {

SubtransitiveConfig exact() {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  return C;
}

bool hasEdge(const SubtransitiveGraph &G, NodeId A, NodeId B) {
  for (NodeId S : G.succs(A))
    if (S == B)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// The build-phase rules, edge by edge (the paper's Section 3 derivation)
//===----------------------------------------------------------------------===//

TEST(GraphStructure, PaperBuildEdges) {
  // (fn x => x x) (fn y => y): the first four rule applications of the
  // Section 3 LC example.
  auto M = parseMaybeInfer("(fn x => x x) (fn y => y)");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();

  const auto *App = cast<AppExpr>(M->expr(M->root()));
  NodeId LamX = G.exprNode(App->fn());
  NodeId LamY = G.exprNode(App->arg());
  const auto *LX = cast<LamExpr>(M->expr(App->fn()));
  NodeId VarX = G.varNode(LX->param());

  // ABS-1: x -> dom(fn x => ...), for both abstractions.
  EXPECT_TRUE(hasEdge(G, VarX, G.domNode(LamX)));
  // ABS-2: ran(fn x => ...) -> (x x).
  EXPECT_TRUE(hasEdge(G, G.ranNode(LamX), G.exprNode(LX->body())));
  // APP-1: dom(e1) -> e2 for the outer application.
  EXPECT_TRUE(hasEdge(G, G.domNode(LamX), LamY));
  // APP-2: (e1 e2) -> ran(e1).
  EXPECT_TRUE(hasEdge(G, G.exprNode(M->root()), G.ranNode(LamX)));
}

TEST(GraphStructure, PaperCloseDerivation) {
  // After closing, the whole application must reach fn y => y through a
  // multi-step chain (Proposition 1's factored derivation).
  auto M = parseMaybeInfer("(fn x => x x) (fn y => y)");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  uint64_t BuildEdges = G.stats().BuildEdges;
  G.close();
  EXPECT_GT(G.stats().CloseEdges, 0u);
  EXPECT_EQ(G.stats().BuildEdges, BuildEdges) << "build count frozen";

  Reachability R(G);
  EXPECT_TRUE(R.isLabelIn(M->root(), labelOfFnWithParam(*M, "y")));
  // But there is NO direct edge root -> fn y (it is genuinely
  // subtransitive: only the closure's multi-step path connects them).
  const auto *App = cast<AppExpr>(M->expr(M->root()));
  EXPECT_FALSE(hasEdge(G, G.exprNode(M->root()), G.exprNode(App->arg())));
}

TEST(GraphStructure, BuildIsLinearPass) {
  // Build-phase node and edge counts grow linearly in program size.
  auto M1 = parseMaybeInfer(makeCubicFamily(8));
  auto M2 = parseMaybeInfer(makeCubicFamily(16));
  ASSERT_TRUE(M1 && M2);
  SubtransitiveGraph G1(*M1, exact()), G2(*M2, exact());
  G1.build();
  G2.build();
  double NodeRatio =
      double(G2.stats().BuildNodes) / double(G1.stats().BuildNodes);
  EXPECT_NEAR(NodeRatio, 2.0, 0.25);
}

TEST(GraphStructure, DescribeRendersPaths) {
  auto M = parseMaybeInfer("fn x => x");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  NodeId Lam = G.exprNode(M->root());
  EXPECT_EQ(G.describe(G.domNode(Lam)).substr(0, 4), "dom(");
  EXPECT_EQ(G.describe(G.ranNode(Lam)).substr(0, 4), "ran(");
  const auto *LX = cast<LamExpr>(M->expr(M->root()));
  EXPECT_EQ(G.describe(G.varNode(LX->param())), "var:x");
}

TEST(GraphStructure, DerivedNodesAreHashConsed) {
  auto M = parseMaybeInfer("fn x => x");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  NodeId Lam = G.exprNode(M->root());
  EXPECT_EQ(G.domNode(Lam), G.domNode(Lam));
  EXPECT_NE(G.domNode(Lam), G.ranNode(Lam));
  EXPECT_EQ(G.lookupDerived(NodeOp::Dom, Lam), G.domNode(Lam));
}

TEST(GraphStructure, EdgesAreDeduplicated) {
  auto M = parseMaybeInfer("fn x => x");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  NodeId A = G.exprNode(M->root());
  NodeId B = G.labelNode(LabelId(0));
  uint64_t Before = G.stats().BuildEdges;
  G.addEdge(A, B);
  G.addEdge(A, B);
  G.addEdge(A, A); // self edges are dropped
  EXPECT_EQ(G.stats().BuildEdges, Before + 1);
}

//===----------------------------------------------------------------------===//
// Widening
//===----------------------------------------------------------------------===//

TEST(GraphStructure, WideningKeepsLabelSoundness) {
  // Recursive datatype + recursive traversal with a tiny depth budget:
  // widening must engage and the result must still contain the truth.
  const char *Source =
      "data FList = FNil | FCons(Int -> Int, FList);\n"
      "letrec nth = fn l => fn n => case l of "
      "FNil => (fn z => z) | FCons(h, t) => if n == 0 then h else "
      "nth t (n - 1) end in "
      "(nth (FCons(fn a => a + 1, FNil)) 0) 5";
  auto M = parseMaybeInfer(Source);
  ASSERT_TRUE(M);
  SubtransitiveConfig C = exact();
  C.MaxNodeDepth = 3;
  SubtransitiveGraph G(*M, C);
  G.build();
  G.close();
  EXPECT_GT(G.stats().Widenings, 0u);
  Reachability R(G);
  // The dynamic truth: `nth ... 0` evaluates to fn a => a + 1, so the
  // operator of the outermost application must see that label.
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *App = cast<AppExpr>(M->expr(Let->body()));
  EXPECT_TRUE(R.labelsOf(App->fn())
                  .contains(labelOfFnWithParam(*M, "a").index()));
}

//===----------------------------------------------------------------------===//
// Fragments and externalized variables (the Section 7 machinery)
//===----------------------------------------------------------------------===//

TEST(GraphStructure, FragmentBuildsOnlyTheSubtree) {
  auto M = parseMaybeInfer("let f = fn x => x in f (fn a => a)");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));

  SubtransitiveGraph Whole(*M, exact());
  Whole.build();
  SubtransitiveGraph Frag(*M, exact());
  Frag.buildFragment(Let->init());
  EXPECT_LT(Frag.stats().BuildNodes, Whole.stats().BuildNodes);
  // The argument abstraction is outside the fragment.
  const auto *App = cast<AppExpr>(M->expr(Let->body()));
  EXPECT_FALSE(Frag.lookupExprNode(App->arg()).isValid());
}

TEST(GraphStructure, ExternalizedVarsSuppressDefUseFlow) {
  auto M = parseMaybeInfer("let f = fn x => x in f");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));

  std::vector<bool> Ext(M->numVars(), false);
  Ext[Let->var().index()] = true;
  SubtransitiveGraph G(*M, exact());
  G.setExternalizedVars(Ext);
  G.build();
  G.close();
  Reachability R(G);
  // With the def-use flow externalized and nothing instantiated, the use
  // of f sees no labels.
  EXPECT_EQ(R.labelsOf(Let->body()).count(), 0u);
}

TEST(GraphStructure, ForceDemandSaturatesInterfacePaths) {
  auto M = parseMaybeInfer("fn g => fn x => g x");
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  NodeId V = G.exprNode(M->root());
  // Force the dom/dom and dom/ran paths like the summariser does.
  NodeId D = G.domNode(V), R2 = G.ranNode(V);
  G.forceDemand(G.domNode(D));
  G.forceDemand(G.ranNode(D));
  G.forceDemand(G.domNode(R2));
  G.forceDemand(G.ranNode(R2));
  G.forceDemand(D);
  G.forceDemand(R2);
  G.close();
  // The summary edge of Section 7: results of the inner application come
  // from the context function's results, i.e. ran(ran(V)) reaches
  // ran(dom(V)).
  Reachability Reach(G);
  bool Found = false;
  std::vector<NodeId> Stack{G.ranNode(R2)};
  std::set<uint32_t> Seen;
  while (!Stack.empty() && !Found) {
    NodeId N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N.index()).second)
      continue;
    Found = (N == G.ranNode(D));
    for (NodeId S : G.succs(N))
      Stack.push_back(S);
  }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Stats accounting
//===----------------------------------------------------------------------===//

TEST(GraphStructure, PhaseAccountingIsDisjoint) {
  auto M = parseMaybeInfer(makeJoinPointFamily(6));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  GraphStats AfterBuild = G.stats();
  EXPECT_GT(AfterBuild.BuildNodes, 0u);
  EXPECT_EQ(AfterBuild.CloseNodes, 0u);
  EXPECT_EQ(AfterBuild.CloseEdges, 0u);
  G.close();
  const GraphStats &AfterClose = G.stats();
  EXPECT_EQ(AfterClose.BuildNodes, AfterBuild.BuildNodes);
  EXPECT_EQ(AfterClose.BuildEdges, AfterBuild.BuildEdges);
  EXPECT_EQ(AfterClose.totalNodes(), G.numNodes());
}

//===----------------------------------------------------------------------===//
// The close-phase governor: budgets, deadlines, and cancellation
//===----------------------------------------------------------------------===//

TEST(CloseGovernor, CleanCloseReportsOk) {
  auto M = parseMaybeInfer(makeJoinPointFamily(6));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  Status S = G.close(Deadline::infinite());
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(G.closeStatus().isOk());
  EXPECT_TRUE(G.closed());
  EXPECT_FALSE(G.aborted());
}

TEST(CloseGovernor, NodeBudgetAbortsWithResourceExhausted) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  SubtransitiveConfig C = exact();
  C.MaxNodes = 32; // far below what the cubic family needs
  SubtransitiveGraph G(*M, C);
  G.build();
  Status S = G.close(Deadline::infinite());
  EXPECT_EQ(S, StatusCode::ResourceExhausted);
  EXPECT_TRUE(G.aborted());
  EXPECT_FALSE(G.closed());
  EXPECT_EQ(G.closeStatus(), StatusCode::ResourceExhausted);
}

TEST(CloseGovernor, EdgeBudgetAbortsWithResourceExhausted) {
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  SubtransitiveConfig C = exact();
  C.MaxEdges = 16;
  SubtransitiveGraph G(*M, C);
  G.build();
  Status S = G.close(Deadline::infinite());
  EXPECT_EQ(S, StatusCode::ResourceExhausted);
  EXPECT_NE(S.message().find("edge"), std::string::npos);
  EXPECT_TRUE(G.aborted());
}

TEST(CloseGovernor, ExpiredDeadlineAbortsWithDeadlineExceeded) {
  auto M = parseMaybeInfer(makeCubicFamily(6));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  Status S = G.close(Deadline::afterMillis(0));
  EXPECT_EQ(S, StatusCode::DeadlineExceeded);
  EXPECT_TRUE(G.aborted());
  EXPECT_FALSE(G.closed());
}

TEST(CloseGovernor, PreCancelledTokenAbortsWithCancelled) {
  auto M = parseMaybeInfer(makeCubicFamily(6));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  CancellationToken Token = CancellationToken::create();
  Token.requestCancel();
  Status S = G.close(Deadline::infinite(), Token);
  EXPECT_EQ(S, StatusCode::Cancelled);
  EXPECT_TRUE(G.aborted());
}

TEST(CloseGovernor, UnarmedTokenAndInfiniteDeadlineAreFree) {
  // The default-constructed token is unarmed and Deadline::infinite() never
  // reads the clock; a fully governed call must still reach the fixpoint.
  auto M = parseMaybeInfer(makeCubicFamily(6));
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exact());
  G.build();
  Status S = G.close(Deadline::infinite(), CancellationToken());
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(G.closed());
}

#ifdef NDEBUG
TEST(CloseGovernor, AbortedGraphAnswersEmptyThroughReachability) {
  // Satellite 2 at the core layer: in release builds, querying an aborted
  // graph is a reported error (empty answer + FailedPrecondition), not UB.
  auto M = parseMaybeInfer(makeCubicFamily(8));
  ASSERT_TRUE(M);
  SubtransitiveConfig C = exact();
  C.MaxNodes = 32;
  SubtransitiveGraph G(*M, C);
  G.build();
  ASSERT_FALSE(G.close(Deadline::infinite()).isOk());
  ASSERT_TRUE(G.aborted());
  Reachability R(G);
  for (uint32_t I = 0; I < M->numExprs(); ++I)
    EXPECT_TRUE(R.labelsOf(ExprId(I)).empty());
  EXPECT_EQ(R.status(), StatusCode::FailedPrecondition);
}
#endif

} // namespace
