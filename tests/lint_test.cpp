//===-- tests/lint_test.cpp - Lint engine, passes, renderers --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the lint subsystem end to end:
///
///  * golden corpus — each `examples/lint/*.stml` file carries
///    `-- expect: rule@line:col` annotations; for every rule annotated in
///    a file, the findings of that rule must match the annotations
///    exactly (position multiset equality, so missing *and* spurious
///    findings fail);
///  * differential — `dead-function` and `applied-non-function` must
///    agree with a reference computed from full standard-CFA value sets
///    (congruence off, literal tracking on);
///  * governor — an expired deadline or a cancelled token yields per-pass
///    partial flags, never a crash or a hang;
///  * renderers — the SARIF output must be well-formed JSON with the
///    2.1.0 structural invariants; text/JSON outputs are spot-checked;
///  * parser spans — the end positions feeding every finding.
///
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"
#include "lint/Render.h"

#include "analysis/StandardCFA.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"

#include "TestUtil.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace stcfa;

namespace {

#ifndef STCFA_SOURCE_DIR
#error "tests need STCFA_SOURCE_DIR to locate examples/lint/"
#endif

/// Everything the passes consume, built from source once per test.
struct Pipeline {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  std::unique_ptr<FrozenGraph> F;
};

Pipeline buildPipeline(std::string_view Source,
                       CongruenceMode Congruence = CongruenceMode::ByType) {
  Pipeline P;
  P.M = parseMaybeInfer(Source);
  if (!P.M)
    return P;
  SubtransitiveConfig GC;
  GC.Congruence = Congruence;
  P.G = std::make_unique<SubtransitiveGraph>(*P.M, GC);
  P.G->build();
  P.G->close();
  EXPECT_TRUE(P.G->closed() && !P.G->aborted());
  P.F = std::make_unique<FrozenGraph>(*P.G);
  EXPECT_TRUE(P.F->status().isOk());
  return P;
}

LintResult runAll(const Pipeline &P, LintOptions LO = {}) {
  LintEngine Engine(*P.G, *P.F);
  return Engine.run(LO);
}

//===----------------------------------------------------------------------===//
// Golden corpus
//===----------------------------------------------------------------------===//

struct Expectation {
  std::string Rule;
  uint32_t Line, Col;
  friend bool operator<(const Expectation &A, const Expectation &B) {
    return std::tie(A.Rule, A.Line, A.Col) < std::tie(B.Rule, B.Line, B.Col);
  }
  friend bool operator==(const Expectation &A, const Expectation &B) {
    return A.Rule == B.Rule && A.Line == B.Line && A.Col == B.Col;
  }
};

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

class LintGolden : public ::testing::TestWithParam<const char *> {};

TEST_P(LintGolden, MatchesAnnotations) {
  std::string Path =
      std::string(STCFA_SOURCE_DIR) + "/examples/lint/" + GetParam();
  std::string Source = readFileOrDie(Path);
  std::vector<Expectation> Expected;
  {
    SCOPED_TRACE(Path);
    std::istringstream In(Source);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t At = Line.find("-- expect: ");
      if (At == std::string::npos)
        continue;
      std::string Spec = Line.substr(At + 11);
      size_t Sep = Spec.find('@');
      size_t Colon = Spec.find(':', Sep);
      ASSERT_TRUE(Sep != std::string::npos && Colon != std::string::npos)
          << "malformed annotation: " << Line;
      Expected.push_back(
          {Spec.substr(0, Sep),
           static_cast<uint32_t>(
               std::stoul(Spec.substr(Sep + 1, Colon - Sep - 1))),
           static_cast<uint32_t>(std::stoul(Spec.substr(Colon + 1)))});
    }
  }
  ASSERT_FALSE(Expected.empty()) << "corpus file carries no annotations";

  Pipeline P = buildPipeline(Source);
  ASSERT_TRUE(P.F);
  LintResult R = runAll(P);

  std::set<std::string> CoveredRules;
  for (const Expectation &E : Expected)
    CoveredRules.insert(E.Rule);
  for (const std::string &Rule : CoveredRules)
    ASSERT_TRUE(LintEngine::findPass(Rule))
        << "annotation names unknown rule '" << Rule << "'";

  // Multiset equality per annotated rule: spurious findings fail too.
  std::vector<Expectation> Actual;
  for (const LintPassReport &Report : R.Reports) {
    EXPECT_TRUE(Report.PassStatus.isOk());
    for (const LintDiagnostic &D : Report.Findings)
      if (CoveredRules.count(D.RuleId))
        Actual.push_back({D.RuleId, D.Range.Begin.Line, D.Range.Begin.Col});
  }
  std::sort(Expected.begin(), Expected.end());
  std::sort(Actual.begin(), Actual.end());
  EXPECT_EQ(Expected, Actual) << "findings diverge from annotations in "
                              << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, LintGolden,
                         ::testing::Values("dead_function.stml",
                                           "unused_binding.stml",
                                           "applied_non_function.stml",
                                           "called_once.stml",
                                           "impure_in_pure.stml",
                                           "escaping_function.stml"));

//===----------------------------------------------------------------------===//
// Differential against standard CFA
//===----------------------------------------------------------------------===//

using RangeKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;

RangeKey keyOf(SourceRange R) {
  return {R.Begin.Line, R.Begin.Col, R.End.Line, R.End.Col};
}

/// Reference sets from full standard-CFA value sets (literals tracked):
/// a call site is misapplied when its operator set holds a non-label
/// value id; a label is dead when no operator set holds it.
void referenceFindings(const Module &M, std::multiset<RangeKey> &Misapplied,
                       std::multiset<RangeKey> &DeadLams) {
  StandardCFA CFA(M, /*TrackLiterals=*/true);
  ASSERT_TRUE(CFA.run(Deadline::infinite()).isOk());
  std::vector<bool> Called(M.numLabels(), false);
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    const auto *A = dyn_cast<AppExpr>(E);
    if (!A)
      return;
    bool NonFn = false;
    CFA.valueSet(A->fn()).forEach([&](size_t V) {
      if (V < M.numLabels())
        Called[V] = true;
      else
        NonFn = true;
    });
    if (NonFn)
      Misapplied.insert(keyOf(M.expr(A->fn())->range()));
  });
  for (uint32_t L = 0; L != M.numLabels(); ++L)
    if (!Called[L])
      DeadLams.insert(keyOf(M.expr(M.lamOfLabel(LabelId(L)))->range()));
}

void checkDifferential(const std::string &Source, const char *Tag) {
  SCOPED_TRACE(Tag);
  // Congruence off: the exact-flow configuration the equivalence proofs
  // cover.  Skip inputs where widening fired (Top nodes): the graph is
  // then a deliberate over-approximation and divergence is expected.
  Pipeline P = buildPipeline(Source, CongruenceMode::None);
  ASSERT_TRUE(P.F);
  for (uint32_t N = 0; N != P.F->numNodes(); ++N)
    if (P.F->op(N) == NodeOp::Top)
      return; // widened graph: a deliberate over-approximation

  LintOptions LO;
  LO.Passes = {"dead-function", "applied-non-function"};
  LintResult R = runAll(P, LO);
  std::multiset<RangeKey> LintMisapplied, LintDead;
  for (const LintPassReport &Report : R.Reports) {
    ASSERT_TRUE(Report.PassStatus.isOk());
    for (const LintDiagnostic &D : Report.Findings)
      (D.RuleId == "applied-non-function" ? LintMisapplied : LintDead)
          .insert(keyOf(D.Range));
  }

  std::multiset<RangeKey> RefMisapplied, RefDead;
  referenceFindings(*P.M, RefMisapplied, RefDead);
  EXPECT_EQ(LintMisapplied, RefMisapplied);
  EXPECT_EQ(LintDead, RefDead);
}

TEST(LintDifferential, GeneratorCorpus) {
  checkDifferential(makeCubicFamily(4), "cubic:4");
  checkDifferential(makeCubicFamily(8), "cubic:8");
  checkDifferential(makeJoinPointFamily(6), "joinpoint:6");
  checkDifferential(makeJoinPointFamily(10), "joinpoint:10");
  checkDifferential(lifeProgram(), "life");
  for (uint64_t Seed : {1, 7, 23}) {
    RandomProgramOptions RO;
    RO.Seed = Seed;
    RO.UseRefs = true;
    RO.UseEffects = true;
    checkDifferential(makeRandomProgram(RO),
                      ("random:" + std::to_string(Seed)).c_str());
  }
}

TEST(LintDifferential, ExamplesCorpus) {
  for (const char *Name :
       {"dead_function.stml", "unused_binding.stml",
        "applied_non_function.stml", "called_once.stml",
        "impure_in_pure.stml", "escaping_function.stml"}) {
    std::string Source = readFileOrDie(std::string(STCFA_SOURCE_DIR) +
                                       "/examples/lint/" + Name);
    checkDifferential(Source, Name);
  }
}

//===----------------------------------------------------------------------===//
// Governor
//===----------------------------------------------------------------------===//

TEST(LintGoverned, ExpiredDeadlineFlagsEveryPassPartial) {
  Pipeline P = buildPipeline(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  LintOptions LO;
  LO.D = Deadline::afterMillis(0);
  LintResult R = runAll(P, LO);
  ASSERT_EQ(R.Reports.size(), LintEngine::passes().size());
  EXPECT_TRUE(R.anyPartial());
  for (const LintPassReport &Report : R.Reports) {
    EXPECT_TRUE(Report.Partial) << Report.Info->Id;
    EXPECT_EQ(Report.PassStatus.code(), StatusCode::DeadlineExceeded)
        << Report.Info->Id;
  }
}

TEST(LintGoverned, CancelledTokenReportsCancelled) {
  Pipeline P = buildPipeline(makeCubicFamily(6));
  ASSERT_TRUE(P.F);
  LintOptions LO;
  LO.Token = CancellationToken::create();
  LO.Token.requestCancel();
  LintResult R = runAll(P, LO);
  for (const LintPassReport &Report : R.Reports) {
    EXPECT_TRUE(Report.Partial) << Report.Info->Id;
    EXPECT_EQ(Report.PassStatus.code(), StatusCode::Cancelled)
        << Report.Info->Id;
  }
}

TEST(LintGoverned, ParallelRunMatchesSerial) {
  std::string Source = readFileOrDie(std::string(STCFA_SOURCE_DIR) +
                                     "/examples/lint/impure_in_pure.stml");
  Pipeline P = buildPipeline(Source);
  ASSERT_TRUE(P.F);
  LintResult Serial = runAll(P);
  LintOptions LO;
  LO.Threads = 4;
  LintResult Parallel = runAll(P, LO);
  ASSERT_EQ(Serial.Reports.size(), Parallel.Reports.size());
  for (size_t I = 0; I != Serial.Reports.size(); ++I) {
    EXPECT_EQ(Serial.Reports[I].Info, Parallel.Reports[I].Info);
    ASSERT_EQ(Serial.Reports[I].Findings.size(),
              Parallel.Reports[I].Findings.size());
    for (size_t J = 0; J != Serial.Reports[I].Findings.size(); ++J) {
      EXPECT_EQ(Serial.Reports[I].Findings[J].Message,
                Parallel.Reports[I].Findings[J].Message);
      EXPECT_EQ(keyOf(Serial.Reports[I].Findings[J].Range),
                keyOf(Parallel.Reports[I].Findings[J].Range));
    }
  }
}

TEST(LintEngineApi, PassSelectionAndLookup) {
  EXPECT_EQ(LintEngine::passes().size(), 6u);
  EXPECT_NE(LintEngine::findPass("dead-function"), nullptr);
  EXPECT_EQ(LintEngine::findPass("no-such-pass"), nullptr);
  Pipeline P = buildPipeline("let f = fn x => x in f 1");
  ASSERT_TRUE(P.F);
  LintOptions LO;
  LO.Passes = {"called-once"};
  LintResult R = runAll(P, LO);
  ASSERT_EQ(R.Reports.size(), 1u);
  EXPECT_STREQ(R.Reports[0].Info->Id, "called-once");
  ASSERT_EQ(R.Reports[0].Findings.size(), 1u);
  EXPECT_EQ(R.NumNotes, 1u);
  EXPECT_EQ(R.NumErrors, 0u);
}

//===----------------------------------------------------------------------===//
// A minimal JSON reader for structural SARIF validation
//===----------------------------------------------------------------------===//

struct Json {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<Json> A;
  std::map<std::string, Json> O;

  const Json *at(const std::string &Key) const {
    auto It = O.find(Key);
    return It == O.end() ? nullptr : &It->second;
  }
};

struct JsonParser {
  const std::string &Src;
  size_t Pos = 0;
  bool Failed = false;

  void skip() {
    while (Pos < Src.size() && std::isspace(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
  }
  bool eat(char C) {
    skip();
    if (Pos < Src.size() && Src[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  Json fail() {
    Failed = true;
    return {};
  }
  Json parse() {
    skip();
    if (Pos >= Src.size())
      return fail();
    char C = Src[Pos];
    if (C == '{') {
      ++Pos;
      Json V;
      V.K = Json::Obj;
      if (eat('}'))
        return V;
      do {
        skip();
        Json Key = parseString();
        if (Failed || !eat(':'))
          return fail();
        V.O[Key.S] = parse();
        if (Failed)
          return fail();
      } while (eat(','));
      return eat('}') ? V : fail();
    }
    if (C == '[') {
      ++Pos;
      Json V;
      V.K = Json::Arr;
      if (eat(']'))
        return V;
      do {
        V.A.push_back(parse());
        if (Failed)
          return fail();
      } while (eat(','));
      return eat(']') ? V : fail();
    }
    if (C == '"')
      return parseString();
    if (Src.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      Json V;
      V.K = Json::Bool;
      V.B = true;
      return V;
    }
    if (Src.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      Json V;
      V.K = Json::Bool;
      V.B = false;
      return V;
    }
    if (Src.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return {};
    }
    // Number.
    size_t Start = Pos;
    while (Pos < Src.size() &&
           (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '-' || Src[Pos] == '+' || Src[Pos] == '.' ||
            Src[Pos] == 'e' || Src[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return fail();
    Json V;
    V.K = Json::Num;
    V.N = std::stod(Src.substr(Start, Pos - Start));
    return V;
  }
  Json parseString() {
    skip();
    if (Pos >= Src.size() || Src[Pos] != '"')
      return fail();
    ++Pos;
    Json V;
    V.K = Json::Str;
    while (Pos < Src.size() && Src[Pos] != '"') {
      if (Src[Pos] == '\\') {
        if (Pos + 1 >= Src.size())
          return fail();
        char E = Src[Pos + 1];
        Pos += 2;
        switch (E) {
        case 'n':
          V.S += '\n';
          break;
        case 't':
          V.S += '\t';
          break;
        case 'r':
          V.S += '\r';
          break;
        case 'u':
          if (Pos + 4 > Src.size())
            return fail();
          Pos += 4; // structural check only; code point dropped
          break;
        default:
          V.S += E;
        }
        continue;
      }
      V.S += Src[Pos++];
    }
    return eat('"') ? V : fail();
  }
};

Json parseJsonOrDie(const std::string &Text) {
  JsonParser P{Text};
  Json V = P.parse();
  P.skip();
  EXPECT_FALSE(P.Failed) << "invalid JSON near offset " << P.Pos;
  EXPECT_EQ(P.Pos, Text.size()) << "trailing garbage after JSON";
  return V;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

TEST(LintRender, SarifStructureValidates) {
  std::string Source = readFileOrDie(std::string(STCFA_SOURCE_DIR) +
                                     "/examples/lint/applied_non_function.stml");
  Pipeline P = buildPipeline(Source);
  ASSERT_TRUE(P.F);
  LintResult R = runAll(P);
  ASSERT_GT(R.NumErrors, 0u);

  Json Log = parseJsonOrDie(renderLintSarif(R, "applied_non_function.stml"));
  ASSERT_EQ(Log.K, Json::Obj);
  ASSERT_TRUE(Log.at("$schema"));
  ASSERT_TRUE(Log.at("version"));
  EXPECT_EQ(Log.at("version")->S, "2.1.0");

  const Json *Runs = Log.at("runs");
  ASSERT_TRUE(Runs && Runs->K == Json::Arr && Runs->A.size() == 1);
  const Json &Run = Runs->A[0];

  const Json *Driver = Run.at("tool") ? Run.at("tool")->at("driver") : nullptr;
  ASSERT_TRUE(Driver);
  EXPECT_EQ(Driver->at("name")->S, "stcfa-lint");
  const Json *Rules = Driver->at("rules");
  ASSERT_TRUE(Rules && Rules->K == Json::Arr);
  EXPECT_EQ(Rules->A.size(), LintEngine::passes().size());
  for (const Json &Rule : Rules->A) {
    ASSERT_TRUE(Rule.at("id"));
    ASSERT_TRUE(Rule.at("shortDescription"));
    const Json *Level =
        Rule.at("defaultConfiguration")
            ? Rule.at("defaultConfiguration")->at("level")
            : nullptr;
    ASSERT_TRUE(Level);
    EXPECT_TRUE(Level->S == "note" || Level->S == "warning" ||
                Level->S == "error");
  }

  const Json *Invocations = Run.at("invocations");
  ASSERT_TRUE(Invocations && Invocations->A.size() == 1);
  ASSERT_TRUE(Invocations->A[0].at("executionSuccessful"));
  EXPECT_TRUE(Invocations->A[0].at("executionSuccessful")->B);

  const Json *Results = Run.at("results");
  ASSERT_TRUE(Results && Results->K == Json::Arr);
  EXPECT_EQ(Results->A.size(),
            size_t(R.NumErrors + R.NumWarnings + R.NumNotes));
  bool SawError = false;
  for (const Json &Res : Results->A) {
    ASSERT_TRUE(Res.at("ruleId"));
    const Json *Idx = Res.at("ruleIndex");
    ASSERT_TRUE(Idx);
    ASSERT_LT(size_t(Idx->N), Rules->A.size());
    EXPECT_EQ(Rules->A[size_t(Idx->N)].at("id")->S, Res.at("ruleId")->S);
    ASSERT_TRUE(Res.at("level"));
    SawError |= Res.at("level")->S == "error";
    ASSERT_TRUE(Res.at("message") && Res.at("message")->at("text"));
    const Json *Locs = Res.at("locations");
    ASSERT_TRUE(Locs && !Locs->A.empty());
    const Json *Region = Locs->A[0].at("physicalLocation")
                             ? Locs->A[0].at("physicalLocation")->at("region")
                             : nullptr;
    ASSERT_TRUE(Region);
    ASSERT_TRUE(Region->at("startLine"));
    EXPECT_GE(Region->at("startLine")->N, 1);
    if (const Json *EndCol = Region->at("endColumn")) {
      const Json *StartCol = Region->at("startColumn");
      ASSERT_TRUE(StartCol);
      if (Region->at("endLine")->N == Region->at("startLine")->N) {
        EXPECT_GT(EndCol->N, StartCol->N);
      }
    }
  }
  EXPECT_TRUE(SawError);
}

TEST(LintRender, SarifPartialRunMarksInvocation) {
  Pipeline P = buildPipeline(makeCubicFamily(4));
  ASSERT_TRUE(P.F);
  LintOptions LO;
  LO.D = Deadline::afterMillis(0);
  LintResult R = runAll(P, LO);
  Json Log = parseJsonOrDie(renderLintSarif(R, "cubic4"));
  const Json &Inv = Log.at("runs")->A[0].at("invocations")->A[0];
  EXPECT_FALSE(Inv.at("executionSuccessful")->B);
  const Json *Partial = Inv.at("properties")->at("partialPasses");
  ASSERT_TRUE(Partial && Partial->K == Json::Arr);
  EXPECT_EQ(Partial->A.size(), LintEngine::passes().size());
}

TEST(LintRender, JsonShapeAndEscaping) {
  Pipeline P = buildPipeline("let f = fn x => x in let dead = fn y => y in f 1");
  ASSERT_TRUE(P.F);
  LintResult R = runAll(P);
  Json Doc = parseJsonOrDie(renderLintJson(R, "in\"put.stml"));
  EXPECT_EQ(Doc.at("tool")->S, "stcfa-lint");
  EXPECT_EQ(Doc.at("input")->S, "in\"put.stml");
  ASSERT_TRUE(Doc.at("passes") && Doc.at("passes")->K == Json::Arr);
  EXPECT_EQ(Doc.at("passes")->A.size(), LintEngine::passes().size());
  for (const Json &Pass : Doc.at("passes")->A) {
    ASSERT_TRUE(Pass.at("pass"));
    ASSERT_TRUE(Pass.at("status"));
    ASSERT_TRUE(Pass.at("findings"));
  }
  ASSERT_TRUE(Doc.at("summary"));
  EXPECT_EQ(size_t(Doc.at("summary")->at("notes")->N), size_t(R.NumNotes));
}

TEST(LintRender, TextIncludesRuleTagsAndSummary) {
  std::string Source = readFileOrDie(std::string(STCFA_SOURCE_DIR) +
                                     "/examples/lint/dead_function.stml");
  Pipeline P = buildPipeline(Source);
  ASSERT_TRUE(P.F);
  std::string Text = renderLintText(runAll(P), "dead_function.stml");
  EXPECT_NE(Text.find("[dead-function]"), std::string::npos);
  EXPECT_NE(Text.find("dead_function.stml:3:14-3:27: warning:"),
            std::string::npos);
  EXPECT_NE(Text.find("error(s)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser spans (the positions every finding is built from)
//===----------------------------------------------------------------------===//

TEST(LintSpans, ParserRecordsEndPositions) {
  auto M = parseOrDie("fn x => x");
  ASSERT_TRUE(M);
  SourceRange R = M->expr(M->root())->range();
  EXPECT_EQ(R.Begin, (SourceLoc{1, 1}));
  EXPECT_EQ(R.End, (SourceLoc{1, 10}));
  EXPECT_TRUE(R.hasExtent());
}

TEST(LintSpans, ApplicationSpansLeftOperandToEnd) {
  auto M = parseOrDie("let f = fn x => x in f f");
  ASSERT_TRUE(M);
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  SourceRange App = M->expr(Let->body())->range();
  EXPECT_EQ(App.Begin, (SourceLoc{1, 22}));
  EXPECT_EQ(App.End, (SourceLoc{1, 25}));
  SourceRange Whole = M->expr(M->root())->range();
  EXPECT_EQ(Whole.Begin, (SourceLoc{1, 1}));
  EXPECT_EQ(Whole.End, (SourceLoc{1, 25}));
}

TEST(LintSpans, MultiLineTupleSpan) {
  auto M = parseOrDie("(1,\n 22)");
  ASSERT_TRUE(M);
  SourceRange R = M->expr(M->root())->range();
  EXPECT_EQ(R.Begin, (SourceLoc{1, 1}));
  EXPECT_EQ(R.End, (SourceLoc{2, 5}));
}

TEST(LintSpans, BinaryPrimSpansBothOperands) {
  auto M = parseOrDie("1 + 23");
  ASSERT_TRUE(M);
  SourceRange R = M->expr(M->root())->range();
  EXPECT_EQ(R.Begin, (SourceLoc{1, 1}));
  EXPECT_EQ(R.End, (SourceLoc{1, 7}));
}

TEST(LintSpans, ParseErrorCarriesTokenRange) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram("let x = in x", Diags), nullptr);
  ASSERT_TRUE(Diags.hasErrors());
  const Diagnostic &D = Diags.diagnostics().front();
  EXPECT_TRUE(D.Range.hasExtent());
  EXPECT_EQ(D.Range.Begin, D.Loc);
  std::string Rendered = Diags.render();
  EXPECT_NE(Rendered.find(":9-"), std::string::npos) << Rendered;
}

} // namespace
