//===-- tests/fault_injection_test.cpp - Fault-injection harness ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Iterates every registered fault site, arms it, runs the governed
// pipeline (close -> freeze -> batched queries -> hybrid ladder), and
// asserts: no crash, the documented Status lands where the site fires,
// and every answer actually served is conservative with respect to the
// standard cubic analysis.
//
//===----------------------------------------------------------------------===//

#include "analysis/HybridCFA.h"
#include "analysis/StandardCFA.h"
#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "core/SubtransitiveGraph.h"
#include "delta/DeltaSession.h"
#include "gen/Generators.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "testgen/ShapeGen.h"

#include "DeltaTestUtil.h"
#include "TestUtil.h"

#include <algorithm>
#include <set>
#include <string>

using namespace stcfa;

namespace {

const char *Program = R"(
data List = Nil | Cons(Int, List);
let id = fn x => x in
let twice = fn f => fn y => f (f y) in
let pick = fn b => if b then id else twice id in
(pick true) (Cons(1, Nil))
)";

/// Disarms on scope exit so one test's armed site never leaks into the
/// next (gtest runs tests in one process).
struct ArmedSite {
  explicit ArmedSite(std::string_view Name, uint64_t SkipHits = 0) {
    EXPECT_TRUE(armFault(Name, SkipHits)) << "unregistered site " << Name;
  }
  ~ArmedSite() { disarmFaults(); }
};

/// Exact-precision subtransitive config (congruence off), so a clean run
/// matches StandardCFA label-for-label.
SubtransitiveConfig exactConfig() {
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  return C;
}

StatusCode expectedCloseCode(std::string_view Site) {
  if (Site == fault::CloseNodeBudget || Site == fault::CloseEdgeBudget)
    return StatusCode::ResourceExhausted;
  if (Site == fault::CloseDeadline)
    return StatusCode::DeadlineExceeded;
  if (Site == fault::CloseCancel)
    return StatusCode::Cancelled;
  return StatusCode::OutOfMemory; // fault::CloseAlloc
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(FaultInjection, RegistryListsEverySiteOnce) {
  auto Sites = registeredFaultSites();
  EXPECT_GE(Sites.size(), 10u);
  std::set<std::string_view> Names;
  for (const FaultSite &S : Sites) {
    EXPECT_TRUE(Names.insert(S.Name).second) << "duplicate site " << S.Name;
    EXPECT_FALSE(S.Description.empty()) << S.Name;
    // Dotted stage.point naming keeps the registry greppable.
    EXPECT_NE(S.Name.find('.'), std::string_view::npos) << S.Name;
  }
}

TEST(FaultInjection, CompiledInForTier1) {
  // Tier-1 ctest runs with the gate ON (the default); production builds
  // turn it off and every check folds away.
  EXPECT_TRUE(faultInjectionEnabled());
}

TEST(FaultInjection, ArmingUnknownSiteFails) {
  EXPECT_FALSE(armFault("no.such-site"));
  disarmFaults();
}

TEST(FaultInjection, DisarmedSitesNeverFire) {
  disarmFaults();
  for (const FaultSite &S : registeredFaultSites())
    EXPECT_FALSE(faultFires(S.Name)) << S.Name;
}

TEST(FaultInjection, SkipCountDelaysFiring) {
  ArmedSite Armed(fault::CloseNodeBudget, /*SkipHits=*/3);
  EXPECT_FALSE(faultFires(fault::CloseNodeBudget));
  EXPECT_FALSE(faultFires(fault::CloseNodeBudget));
  EXPECT_FALSE(faultFires(fault::CloseNodeBudget));
  EXPECT_TRUE(faultFires(fault::CloseNodeBudget));
  EXPECT_TRUE(faultFires(fault::CloseNodeBudget));
  // Other sites stay dormant while one is armed.
  EXPECT_FALSE(faultFires(fault::CloseDeadline));
}

//===----------------------------------------------------------------------===//
// Close-phase sites
//===----------------------------------------------------------------------===//

TEST(FaultInjection, CloseSitesAbortWithDocumentedStatus) {
  for (std::string_view Site :
       {fault::CloseNodeBudget, fault::CloseEdgeBudget, fault::CloseDeadline,
        fault::CloseCancel, fault::CloseAlloc}) {
    ArmedSite Armed(Site);
    std::unique_ptr<Module> M = parseMaybeInfer(Program);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M, exactConfig());
    G.build();
    Status S = G.close(Deadline::infinite());
    EXPECT_FALSE(S.isOk()) << Site;
    EXPECT_TRUE(G.aborted()) << Site;
    EXPECT_FALSE(G.closed()) << Site;
    EXPECT_EQ(S.code(), expectedCloseCode(Site)) << Site << ": "
                                                 << S.toString();
    EXPECT_EQ(G.closeStatus().code(), S.code()) << Site;

    // Freezing the aborted graph is a reported error, not UB.
    Status FreezeStatus;
    std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, FreezeStatus);
    EXPECT_EQ(F, nullptr) << Site;
    EXPECT_EQ(FreezeStatus.code(), StatusCode::FailedPrecondition) << Site;

#ifdef NDEBUG
    // Release-build API contract: queries over the aborted graph answer
    // empty — never a partial, silently-wrong set.
    Reachability Reach(G);
    EXPECT_TRUE(Reach.labelsOf(M->root()).empty()) << Site;
    EXPECT_TRUE(Reach.occurrencesOf(LabelId(0)).empty()) << Site;
    EXPECT_EQ(Reach.status().code(), StatusCode::FailedPrecondition) << Site;
#endif
  }
}

TEST(FaultInjection, MidCloseAbortViaSkipCount) {
  // Fire the node-budget site mid-close instead of on the first
  // iteration; the unwind path must be identical.
  ArmedSite Armed(fault::CloseNodeBudget, /*SkipHits=*/10);
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  Status S = G.close(Deadline::infinite());
  EXPECT_EQ(S.code(), StatusCode::ResourceExhausted);
  EXPECT_TRUE(G.aborted());
}

//===----------------------------------------------------------------------===//
// Freeze sites
//===----------------------------------------------------------------------===//

TEST(FaultInjection, FreezeSitesReportAndYieldNoSnapshot) {
  struct Case {
    std::string_view Site;
    StatusCode Expected;
  } Cases[] = {
      {fault::FreezeAlloc, StatusCode::OutOfMemory},
      {fault::FreezeDeadline, StatusCode::DeadlineExceeded},
  };
  for (const Case &C : Cases) {
    std::unique_ptr<Module> M = parseMaybeInfer(Program);
    ASSERT_TRUE(M);
    SubtransitiveGraph G(*M, exactConfig());
    G.build();
    ASSERT_TRUE(G.close(Deadline::infinite()).isOk());

    ArmedSite Armed(C.Site);
    Status S;
    std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
    EXPECT_EQ(F, nullptr) << C.Site;
    EXPECT_EQ(S.code(), C.Expected) << C.Site << ": " << S.toString();
  }
}

TEST(FaultInjection, LegacyFreezeConstructorGoesInert) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());

  ArmedSite Armed(fault::FreezeAlloc);
  // The governed constructor reports through status() and leaves an
  // empty, well-defined snapshot: every lookup answers "no node".
  FrozenGraph F(G, Deadline::infinite());
  EXPECT_EQ(F.status().code(), StatusCode::OutOfMemory);
  EXPECT_EQ(F.numNodes(), 0u);
  EXPECT_EQ(F.numEdges(), 0u);
  EXPECT_EQ(F.nodeOfExpr(M->root()), FrozenGraph::None);

  QueryEngine E(F);
  EXPECT_TRUE(E.labelsOf(M->root()).empty());
  EXPECT_TRUE(E.occurrencesOf(LabelId(0)).empty());
}

TEST(FaultInjection, MidFreezeDeadlineLeavesNoPartialSnapshot) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());

  // Skip the first checkpoint so the forward CSR is already built when
  // the deadline fires; the half-built arrays must be dropped.
  ArmedSite Armed(fault::FreezeDeadline, /*SkipHits=*/1);
  FrozenGraph F(G, Deadline::infinite());
  EXPECT_EQ(F.status().code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(F.numNodes(), 0u);
  EXPECT_EQ(F.numEdges(), 0u);
}

//===----------------------------------------------------------------------===//
// Batched-query sites
//===----------------------------------------------------------------------===//

TEST(FaultInjection, BatchDeadlineReturnsPartialResults) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  ASSERT_TRUE(S.isOk());
  QueryEngine E(*F, /*Threads=*/1); // one lane: deterministic item order

  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));

  // Ungoverned reference answers.
  std::vector<DenseBitset> Reference = E.labelsOfBatch(Es);

  // Let three items through, then simulate deadline expiry.
  ArmedSite Armed(fault::QueryBatchDeadline, /*SkipHits=*/3);
  BatchControl Control;
  BatchOutcome Outcome;
  std::vector<DenseBitset> Partial = E.labelsOfBatch(Es, Control, Outcome);

  EXPECT_EQ(Outcome.S.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Outcome.Completed, 3u);
  ASSERT_EQ(Outcome.Done.size(), Es.size());
  ASSERT_EQ(Partial.size(), Es.size());
  for (size_t I = 0; I != Es.size(); ++I) {
    if (Outcome.Done[I])
      EXPECT_EQ(Partial[I], Reference[I]) << "item " << I;
    else
      EXPECT_TRUE(Partial[I].empty()) << "item " << I;
  }
  EXPECT_EQ(std::count(Outcome.Done.begin(), Outcome.Done.end(), 1), 3);
}

TEST(FaultInjection, BatchCancelStopsIsLabelInBatch) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  ASSERT_TRUE(S.isOk());
  QueryEngine E(*F, /*Threads=*/1);

  std::vector<std::pair<ExprId, LabelId>> Qs;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    for (uint32_t L = 0; L != M->numLabels(); ++L)
      Qs.emplace_back(ExprId(I), LabelId(L));

  ArmedSite Armed(fault::QueryBatchCancel, /*SkipHits=*/2);
  BatchControl Control;
  BatchOutcome Outcome;
  std::vector<char> Partial = E.isLabelInBatch(Qs, Control, Outcome);
  EXPECT_EQ(Outcome.S.code(), StatusCode::Cancelled);
  EXPECT_EQ(Outcome.Completed, 2u);
  // Unanswered slots stay at the default (false), never garbage.
  for (size_t I = 0; I != Qs.size(); ++I) {
    if (!Outcome.Done[I]) {
      EXPECT_EQ(Partial[I], 0) << "item " << I;
    }
  }
}

TEST(FaultInjection, GovernedBatchCompletesWhenNothingFires) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  ASSERT_TRUE(S.isOk());
  QueryEngine E(*F, /*Threads=*/2);

  std::vector<LabelId> Ls;
  for (uint32_t L = 0; L != M->numLabels(); ++L)
    Ls.push_back(LabelId(L));
  BatchControl Control;
  BatchOutcome Outcome;
  auto Governed = E.occurrencesOfBatch(Ls, Control, Outcome);
  EXPECT_TRUE(Outcome.S.isOk());
  EXPECT_EQ(Outcome.Completed, Ls.size());
  EXPECT_EQ(Governed, E.occurrencesOfBatch(Ls));
}

//===----------------------------------------------------------------------===//
// Label-set kernel sites
//===----------------------------------------------------------------------===//

TEST(FaultInjection, KernelAllocFaultReportsOutOfMemory) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  ASSERT_TRUE(S.isOk());

  ArmedSite Armed(fault::KernelAlloc);
  LabelSetKernel K(*F);
  EXPECT_EQ(K.run().code(), StatusCode::OutOfMemory);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 0u);
  // Every answer is the well-defined empty set, never garbage.
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(K.labelsOf(ExprId(I)).empty()) << "expr " << I;
}

TEST(FaultInjection, KernelLevelCancelFaultReportsCancelled) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  SubtransitiveGraph G(*M, exactConfig());
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status S;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, S);
  ASSERT_TRUE(S.isOk());

  // Let one level complete, then fire: the abort must report exactly one
  // finished level and serve only the level-0 components' sets.  Chunk
  // merging is pinned off so the cancel site is polled per level.
  ArmedSite Armed(fault::KernelLevelCancel, /*SkipHits=*/1);
  LabelSetKernel K(*F, /*Threads=*/2);
  K.setChunkRows(1);
  EXPECT_EQ(K.run().code(), StatusCode::Cancelled);
  EXPECT_FALSE(K.complete());
  EXPECT_EQ(K.levelsCompleted(), 1u);
  disarmFaults();

  // Resume under the same governed contract: now it completes and the
  // answers match a from-scratch closure.
  ASSERT_TRUE(K.run().isOk());
  LabelSetKernel Fresh(*F);
  ASSERT_TRUE(Fresh.run().isOk());
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(K.labelsOf(ExprId(I)) == Fresh.labelsOf(ExprId(I)))
        << "expr " << I;
}

//===----------------------------------------------------------------------===//
// Hybrid-ladder sites
//===----------------------------------------------------------------------===//

TEST(FaultInjection, HybridBudgetFaultDegradesToStandard) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  ArmedSite Armed(fault::HybridSubtransitiveBudget);
  HybridOptions Opts;
  HybridCFA H(*M, Opts);
  Status S = H.solve();
  EXPECT_TRUE(S.isOk()); // degraded service is still service
  EXPECT_EQ(H.engine(), HybridCFA::Engine::Standard);

  const DegradationReport &R = H.report();
  EXPECT_STREQ(R.Served, "standard");
  ASSERT_GE(R.Attempts.size(), 2u);
  EXPECT_STREQ(R.Attempts[0].Rung, "subtransitive");
  EXPECT_EQ(R.Attempts[0].S.code(), StatusCode::ResourceExhausted);
  EXPECT_STREQ(R.Attempts.back().Rung, "standard");
  EXPECT_TRUE(R.Attempts.back().S.isOk());

  // The served answers are the standard algorithm's exactly.
  StandardCFA Std(*M);
  Std.run();
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_EQ(H.labelSet(ExprId(I)), Std.labelSet(ExprId(I))) << "expr " << I;
}

TEST(FaultInjection, HybridFreezeFaultDegradesToStandard) {
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  ArmedSite Armed(fault::HybridFreezeAlloc);
  HybridCFA H(*M, HybridOptions{});
  EXPECT_TRUE(H.solve().isOk());
  EXPECT_EQ(H.engine(), HybridCFA::Engine::Standard);
  const DegradationReport &R = H.report();
  ASSERT_GE(R.Attempts.size(), 3u);
  EXPECT_STREQ(R.Attempts[1].Rung, "freeze");
  EXPECT_EQ(R.Attempts[1].S.code(), StatusCode::OutOfMemory);
}

TEST(FaultInjection, HybridStandardFaultFallsToPartialRung) {
  // Blow rung 1 organically (BudgetFactor=0 on a cubic program), then
  // inject a deadline into rung 2; with Degrade=Partial the ladder must
  // still serve — the universal label set for every occurrence.
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(24));
  ASSERT_TRUE(M);
  ArmedSite Armed(fault::HybridStandardDeadline);
  HybridOptions Opts;
  Opts.BudgetFactor = 0; // MaxNodes floor ~1024, exceeded by cubic:24
  Opts.Degrade = DegradeMode::Partial;
  HybridCFA H(*M, Opts);
  Status S = H.solve();
  EXPECT_TRUE(S.isOk());
  EXPECT_EQ(H.engine(), HybridCFA::Engine::PartialAnswer);
  EXPECT_STREQ(H.report().Served, "partial");

  // Universal sets are trivially conservative w.r.t. the true answer.
  StandardCFA Std(*M);
  Std.run();
  DenseBitset Root = H.labelSet(M->root());
  EXPECT_EQ(Root.count(), M->numLabels());
  EXPECT_TRUE(Root.containsAll(Std.labelSet(M->root())));
}

TEST(FaultInjection, HybridStandardFaultWithoutPartialServesNothing) {
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(24));
  ASSERT_TRUE(M);
  ArmedSite Armed(fault::HybridStandardDeadline);
  HybridOptions Opts;
  Opts.BudgetFactor = 0;
  Opts.Degrade = DegradeMode::Standard;
  HybridCFA H(*M, Opts);
  Status S = H.solve();
  EXPECT_EQ(S.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(H.engine(), HybridCFA::Engine::None);
  EXPECT_STREQ(H.report().Served, "none");
  EXPECT_TRUE(H.labelSet(M->root()).empty());

  // The report is machine-readable JSON naming every attempted rung.
  std::string Json = H.report().toJson();
  EXPECT_NE(Json.find("\"served\":\"none\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"rung\":\"subtransitive\""), std::string::npos);
  EXPECT_NE(Json.find("\"rung\":\"standard\""), std::string::npos);
  EXPECT_NE(Json.find("deadline-exceeded"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The sweep: every registered site, one governed pipeline, no crashes,
// conservative answers.
//===----------------------------------------------------------------------===//

TEST(FaultInjection, EverySiteDegradesGracefully) {
  // Ground truth once, outside any armed site.
  std::unique_ptr<Module> M = parseMaybeInfer(Program);
  ASSERT_TRUE(M);
  StandardCFA Std(*M);
  Std.run();

  for (const FaultSite &Site : registeredFaultSites()) {
    // Corrupt-kind sites deliberately produce a *wrong* answer — they are
    // canaries for the differential fuzz suite, not degradation paths.
    if (Site.Kind == FaultKind::Corrupt)
      continue;
    SCOPED_TRACE(std::string(Site.Name));
    ArmedSite Armed(Site.Name);

    // Stage 1+2: governed close and freeze.
    SubtransitiveGraph G(*M, exactConfig());
    G.build();
    Status CloseStatus = G.close(Deadline::infinite());
    std::unique_ptr<FrozenGraph> F;
    Status FreezeStatus;
    if (CloseStatus.isOk())
      F = FrozenGraph::freeze(G, FreezeStatus);
    else
      FreezeStatus = Status::failedPrecondition("close failed");

    // Stage 3: governed batch over whatever survived.
    if (F) {
      QueryEngine E(*F, /*Threads=*/2);
      std::vector<ExprId> Es;
      for (uint32_t I = 0; I != M->numExprs(); ++I)
        Es.push_back(ExprId(I));
      BatchControl Control;
      BatchOutcome Outcome;
      std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, Control, Outcome);
      // Completed answers must be exact (congruence off), hence
      // conservative; unanswered slots must be empty, never garbage.
      for (size_t I = 0; I != Es.size(); ++I) {
        if (Outcome.Done[I]) {
          EXPECT_EQ(Sets[I], Std.labelSet(Es[I])) << "expr " << I;
        } else {
          EXPECT_TRUE(Sets[I].empty()) << "expr " << I;
        }
      }
      if (!Outcome.S.isOk()) {
        EXPECT_LT(Outcome.Completed, Es.size());
      }
    }

    // Stage 4: the hybrid ladder with full degradation always serves a
    // conservative answer for this site set (no cancel faults sit on the
    // hybrid path; close/freeze faults in the hybrid's own graph degrade).
    HybridOptions Opts;
    Opts.Degrade = DegradeMode::Partial;
    HybridCFA H(*M, Opts);
    Status HybridStatus = H.solve();
    if (Site.Name == fault::CloseCancel) {
      // The injected cancel reads as a caller request: no answer at all.
      EXPECT_EQ(HybridStatus.code(), StatusCode::Cancelled);
      EXPECT_EQ(H.engine(), HybridCFA::Engine::None);
      EXPECT_TRUE(H.labelSet(M->root()).empty());
    } else {
      EXPECT_TRUE(HybridStatus.isOk()) << HybridStatus.toString();
      EXPECT_NE(H.engine(), HybridCFA::Engine::None);
      for (uint32_t I = 0; I != M->numExprs(); ++I)
        EXPECT_TRUE(H.labelSet(ExprId(I)).containsAll(Std.labelSet(ExprId(I))))
            << "expr " << I << " lost labels under " << Site.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Delta sites: every injected fault degrades into a full rebuild that
// still serves bit-exact answers — a governed abort is never a wrong
// answer (src/delta/DeltaSession.h).
//===----------------------------------------------------------------------===//

TEST(FaultInjection, DeltaSitesAreRegistered) {
  auto Sites = registeredFaultSites();
  for (std::string_view Name :
       {fault::DeltaDiffAlloc, fault::DeltaRecloseAbort,
        fault::DeltaInstallRace}) {
    EXPECT_TRUE(std::any_of(Sites.begin(), Sites.end(),
                            [&](const auto &S) { return S.Name == Name; }))
        << "missing delta site " << Name;
  }
}

TEST(FaultInjection, DeltaDiffAllocFallsBackToFullRebuildOnEveryOp) {
  ShapeSpec Spec;
  EXPECT_TRUE(parseShapeSpec("diamond:4", Spec));
  DeltaSession::Options O;
  Status CS = Status::ok();
  auto Sess = DeltaSession::create(makeShapeProgram(Spec), O, CS);
  ASSERT_TRUE(Sess != nullptr) << CS.toString();
  // A spare, unreferenced definition so the delete op below is legal.
  {
    EditRequest Spare;
    Spare.Kind = EditRequest::Op::Insert;
    Spare.Text = "let spare = fn x => m0 (x);";
    ApplyResult Res;
    ASSERT_TRUE(Sess->apply(Spare, Res).isOk());
  }

  EditRequest Replace;
  Replace.Kind = EditRequest::Op::Replace;
  Replace.Name = "l2";
  Replace.Text = "let l2 = fn x => m1 (m0 (x));";
  EditRequest Insert;
  Insert.Kind = EditRequest::Op::Insert;
  Insert.Text = "let faulted = fn x => m2 (x);";
  EditRequest Delete;
  Delete.Kind = EditRequest::Op::Delete;
  Delete.Name = "spare";
  EditRequest Rebody;
  Rebody.Kind = EditRequest::Op::ReplaceBody;
  Rebody.Text = "m4 (m3 0)";

  Counter &Fallbacks = counter("delta.fallback_full");
  for (const auto &[Label, Req] :
       {std::pair<const char *, EditRequest &>{"replace", Replace},
        {"insert", Insert},
        {"delete", Delete},
        {"replace-body", Rebody}}) {
    const uint64_t Before = Fallbacks.value();
    ApplyResult Res;
    Status S = Status::ok();
    {
      ArmedSite Armed(fault::DeltaDiffAlloc);
      S = Sess->apply(Req, Res);
    }
    ASSERT_TRUE(S.isOk()) << Label << ": " << S.toString();
    EXPECT_EQ(Res.M, ApplyResult::Mode::FullRebuild) << Label;
    EXPECT_FALSE(Res.NeedsFullPipeline) << Label;
    EXPECT_EQ(Fallbacks.value(), Before + 1)
        << Label << ": delta.fallback_full did not tick";
    EXPECT_EQ("", compareDeltaToFreshRebuild(
                      *Sess, std::string("diff-alloc ") + Label));
  }
}

TEST(FaultInjection, DeltaRecloseAbortFallsBackToFullRebuild) {
  ShapeSpec Spec;
  EXPECT_TRUE(parseShapeSpec("deep:6", Spec));
  DeltaSession::Options O;
  Status CS = Status::ok();
  auto Sess = DeltaSession::create(makeShapeProgram(Spec), O, CS);
  ASSERT_TRUE(Sess != nullptr) << CS.toString();

  Counter &Fallbacks = counter("delta.fallback_full");
  const uint64_t Before = Fallbacks.value();
  EditRequest Req;
  Req.Kind = EditRequest::Op::Replace;
  Req.Name = "f3";
  Req.Text = "let f3 = fn x => f0 (f1 (x));";
  ApplyResult Res;
  Status S = Status::ok();
  {
    ArmedSite Armed(fault::DeltaRecloseAbort);
    S = Sess->apply(Req, Res);
  }
  ASSERT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Res.M, ApplyResult::Mode::FullRebuild);
  EXPECT_FALSE(Res.NeedsFullPipeline);
  EXPECT_EQ(Fallbacks.value(), Before + 1);
  EXPECT_EQ("", compareDeltaToFreshRebuild(*Sess, "reclose-abort"));

  // Disarmed, the same session serves the next edit incrementally again.
  Req.Text = "let f3 = fn x => f2 (x);";
  ASSERT_TRUE(Sess->apply(Req, Res).isOk());
  EXPECT_EQ(Res.M, ApplyResult::Mode::Delta);
  EXPECT_EQ("", compareDeltaToFreshRebuild(*Sess, "reclose-recovered"));
}

} // namespace
