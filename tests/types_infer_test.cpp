//===-- tests/types_infer_test.cpp - Type table and HM inference ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "sema/Infer.h"
#include "types/Type.h"

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// TypeTable
//===----------------------------------------------------------------------===//

TEST(TypeTable, HashConsing) {
  TypeTable TT;
  TypeId A = TT.arrowType(TT.intType(), TT.boolType());
  TypeId B = TT.arrowType(TT.intType(), TT.boolType());
  EXPECT_EQ(A, B);
  TypeId C = TT.arrowType(TT.boolType(), TT.intType());
  EXPECT_NE(A, C);
}

TEST(TypeTable, TreeSize) {
  TypeTable TT;
  EXPECT_EQ(TT.treeSize(TT.intType()), 1u);
  TypeId F = TT.arrowType(TT.intType(), TT.intType());
  EXPECT_EQ(TT.treeSize(F), 3u);
  TypeId P = TT.tupleType({F, TT.boolType()});
  EXPECT_EQ(TT.treeSize(P), 5u);
}

TEST(TypeTable, OrderAndArity) {
  TypeTable TT;
  TypeId I2I = TT.arrowType(TT.intType(), TT.intType());
  EXPECT_EQ(TT.order(I2I), 1u);
  EXPECT_EQ(TT.arity(I2I), 1u);
  // (Int -> Int) -> Int list-ish: order 2, curried arity counting per the
  // paper ("curried integer map has arity 2 and order 2").
  TypeId HOF = TT.arrowType(I2I, TT.arrowType(TT.intType(), TT.intType()));
  EXPECT_EQ(TT.order(HOF), 2u);
  EXPECT_EQ(TT.arity(HOF), 2u);
  EXPECT_EQ(TT.order(TT.intType()), 0u);
}

TEST(TypeTable, Render) {
  TypeTable TT;
  StringInterner SI;
  TypeId F = TT.arrowType(TT.arrowType(TT.intType(), TT.boolType()),
                          TT.unitType());
  EXPECT_EQ(TT.render(F, SI), "(Int -> Bool) -> Unit");
  TypeId P = TT.tupleType({TT.intType(), TT.refType(TT.boolType())});
  EXPECT_EQ(TT.render(P, SI), "(Int, Ref Bool)");
  Symbol D = SI.intern("IntList");
  EXPECT_EQ(TT.render(TT.dataType(D), SI), "IntList");
}

//===----------------------------------------------------------------------===//
// Inference: successes
//===----------------------------------------------------------------------===//

/// Renders the inferred type of the root expression.
std::string rootType(const std::string &Source) {
  auto M = parseAndInfer(Source);
  if (!M)
    return "<error>";
  return M->types().render(M->expr(M->root())->type(), M->strings());
}

TEST(Infer, Literals) {
  EXPECT_EQ(rootType("42"), "Int");
  EXPECT_EQ(rootType("true"), "Bool");
  EXPECT_EQ(rootType("unit"), "Unit");
  EXPECT_EQ(rootType("\"s\""), "String");
}

TEST(Infer, Functions) {
  EXPECT_EQ(rootType("fn x => x + 1"), "Int -> Int");
  EXPECT_EQ(rootType("(fn x => x) 3"), "Int");
  EXPECT_EQ(rootType("fn f => f 1 + 1"), "(Int -> Int) -> Int");
}

TEST(Infer, LetPolymorphism) {
  // id is used at Int and at Bool: requires generalization.
  EXPECT_EQ(rootType("let id = fn x => x in if id true then id 1 else 2"),
            "Int");
  // Self-application of polymorphic id (the classic let-poly example).
  EXPECT_EQ(rootType("let id = fn x => x in (id id) 7"), "Int");
}

TEST(Infer, LambdasAreMonomorphic) {
  // The same program with a lambda-bound id must fail.
  DiagnosticEngine Diags;
  auto M = parseProgram(
      "(fn id => if id true then id 1 else 2) (fn x => x)", Diags);
  ASSERT_TRUE(M);
  DiagnosticEngine InferDiags;
  EXPECT_FALSE(inferTypes(*M, InferDiags));
}

TEST(Infer, LetRec) {
  EXPECT_EQ(rootType("letrec fact = fn n => if n == 0 then 1 else "
                     "n * fact (n - 1) in fact"),
            "Int -> Int");
}

TEST(Infer, TuplesAndProjections) {
  EXPECT_EQ(rootType("(1, true)"), "(Int, Bool)");
  EXPECT_EQ(rootType("#2 (1, true)"), "Bool");
}

TEST(Infer, DeferredProjectionThroughUse) {
  // `#1 p` inside the lambda is resolved by the later application.
  EXPECT_EQ(rootType("let fst = fn p => #1 p in fst (7, true)"), "Int");
}

TEST(Infer, Datatypes) {
  EXPECT_EQ(rootType("data IntList = INil | ICons(Int, IntList);\n"
                     "ICons(1, INil)"),
            "IntList");
  EXPECT_EQ(rootType("data IntList = INil | ICons(Int, IntList);\n"
                     "case ICons(1, INil) of INil => 0 | ICons(h, t) => h "
                     "end"),
            "Int");
}

TEST(Infer, Refs) {
  EXPECT_EQ(rootType("ref 1"), "Ref Int");
  EXPECT_EQ(rootType("!(ref 1)"), "Int");
  EXPECT_EQ(rootType("let r = ref 1 in r := 2"), "Unit");
}

TEST(Infer, ValueRestriction) {
  // `ref (fn x => x)` must not generalize: using the cell at two types is
  // an error.
  DiagnosticEngine Diags;
  auto M = parseProgram("let r = ref (fn x => x) in "
                        "let u = r := (fn b => b + 1) in (!r) true",
                        Diags);
  ASSERT_TRUE(M);
  DiagnosticEngine InferDiags;
  EXPECT_FALSE(inferTypes(*M, InferDiags));
}

TEST(Infer, EveryOccurrenceGetsAType) {
  auto M = parseAndInfer("let id = fn x => x in (id 1, id true)");
  ASSERT_TRUE(M);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    EXPECT_TRUE(M->expr(ExprId(I))->type().isValid()) << "expr " << I;
}

TEST(Infer, OccurrencesGetInstantiatedMonotypes) {
  auto M = parseAndInfer("let id = fn x => x in (id 1, id true)");
  ASSERT_TRUE(M);
  // The two occurrences of id have different instantiated types — exactly
  // the let-expansion monotypes of the paper's Section 5.
  std::vector<std::string> Types;
  forEachExprPreorder(*M, M->root(), [&](ExprId, const Expr *E) {
    if (isa<VarExpr>(E) && M->text(M->var(cast<VarExpr>(E)->var()).Name) ==
                               "id")
      Types.push_back(M->types().render(E->type(), M->strings()));
  });
  ASSERT_EQ(Types.size(), 2u);
  EXPECT_EQ(Types[0], "Int -> Int");
  EXPECT_EQ(Types[1], "Bool -> Bool");
}

//===----------------------------------------------------------------------===//
// Inference: failures
//===----------------------------------------------------------------------===//

void expectIllTyped(const std::string &Source) {
  DiagnosticEngine Diags;
  auto M = parseProgram(Source, Diags);
  ASSERT_TRUE(M) << Diags.render();
  DiagnosticEngine InferDiags;
  EXPECT_FALSE(inferTypes(*M, InferDiags)) << Source;
  EXPECT_TRUE(InferDiags.hasErrors());
}

TEST(Infer, Mismatches) {
  expectIllTyped("1 + true");
  expectIllTyped("if 1 then 2 else 3");
  expectIllTyped("(fn x => x x) (fn y => y)"); // occurs check
  expectIllTyped("#3 (1, 2)");                 // index out of range
  expectIllTyped("#1 5");                      // projection of non-tuple
  expectIllTyped("not 3");
  expectIllTyped("fn p => #1 p");              // unresolved flex projection
  expectIllTyped("data D = C(Int);\nC(true)");
  expectIllTyped("data D = C(Int);\nif true then C(1) else 2");
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, BoundedTypeFamilyHasSmallKAvg) {
  auto M = parseAndInfer("let id = fn x => x + 1 in id (id (id 3))");
  ASSERT_TRUE(M);
  TypeMetrics TM = computeTypeMetrics(*M);
  EXPECT_GE(TM.AvgTypeSize, 1.0);
  EXPECT_LE(TM.AvgTypeSize, 4.0); // the paper's "around 2 or 3"
  EXPECT_EQ(TM.MaxOrder, 1u);
  EXPECT_EQ(TM.MaxTypeSize, 3u);
}

TEST(Metrics, OrderGrowsWithHigherOrderCode) {
  auto M = parseAndInfer("fn f => fn x => f (f x) + 1");
  ASSERT_TRUE(M);
  TypeMetrics TM = computeTypeMetrics(*M);
  EXPECT_EQ(TM.MaxOrder, 2u);
  EXPECT_EQ(TM.MaxArity, 2u);
}

} // namespace
