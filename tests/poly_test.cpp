//===-- tests/poly_test.cpp - Polyvariance (Section 7) tests --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/StandardCFA.h"
#include "core/Reachability.h"
#include "gen/Generators.h"
#include "interp/Interpreter.h"
#include "poly/Polyvariant.h"

using namespace stcfa;

namespace {

/// Expressions outside every summarized candidate's body have meaningful
/// polyvariant results; internal occurrences do not (they have no single
/// instance identity — the paper's copies).  This helper collects the
/// external ones: everything not inside a non-recursive let-bound lambda.
std::vector<ExprId> externalExprs(const Module &M) {
  std::vector<bool> Internal(M.numExprs(), false);
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L || L->isRec() || !isa<LamExpr>(M.expr(L->init())))
      return;
    forEachExprPreorder(M, L->init(), [&](ExprId Sub, const Expr *) {
      Internal[Sub.index()] = true;
    });
  });
  std::vector<ExprId> Out;
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    if (!Internal[I])
      Out.push_back(ExprId(I));
  return Out;
}

TEST(Polyvariant, SeparatesCallSitesOfId) {
  // The motivating win: monovariant CFA conflates id's two uses,
  // polyvariant analysis keeps them apart.
  auto M = parseMaybeInfer(
      "let id = fn x => x in (id (fn a => a), id (fn b => b))");
  ASSERT_TRUE(M);

  LabelId A = labelOfFnWithParam(*M, "a");
  LabelId B = labelOfFnWithParam(*M, "b");
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *T = cast<TupleExpr>(M->expr(Let->body()));

  // Monovariant: both components see both labels.
  StandardCFA Std(*M);
  Std.run();
  EXPECT_TRUE(Std.labelSet(T->elems()[0]).contains(B.index()));

  // Polyvariant: the first component sees only `a`.
  PolyvariantCFA Poly(*M);
  Poly.run();
  EXPECT_EQ(Poly.stats().Summarized, 1u);
  Reachability R(Poly.graph());
  DenseBitset First = R.labelsOf(T->elems()[0]);
  EXPECT_TRUE(First.contains(A.index()));
  EXPECT_FALSE(First.contains(B.index()));
  DenseBitset Second = R.labelsOf(T->elems()[1]);
  EXPECT_TRUE(Second.contains(B.index()));
  EXPECT_FALSE(Second.contains(A.index()));
}

TEST(Polyvariant, PaperSection7Example) {
  // fn z => ((fn y => z) nil): the summary compresses to ran(e)->dom(e).
  auto M = parseMaybeInfer("let f = fn z => (fn y => z) unit in "
                           "(f (fn a => a), f (fn b => b))");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  EXPECT_EQ(Poly.stats().Summarized, 1u);
  Reachability R(Poly.graph());
  const auto *Let = cast<LetExpr>(M->expr(M->root()));
  const auto *T = cast<TupleExpr>(M->expr(Let->body()));
  LabelId A = labelOfFnWithParam(*M, "a");
  LabelId B = labelOfFnWithParam(*M, "b");
  DenseBitset First = R.labelsOf(T->elems()[0]);
  EXPECT_TRUE(First.contains(A.index()));
  EXPECT_FALSE(First.contains(B.index()));
}

TEST(Polyvariant, HigherOrderArgumentFlows) {
  // apply = fn g => fn x => g x; the instantiated summary must route both
  // the argument and the result through the context's function.
  auto M = parseMaybeInfer("let apply = fn g => fn x => g x in "
                           "(apply (fn a => a)) (fn c => c)");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  ASSERT_EQ(Poly.stats().Summarized, 1u);
  Reachability R(Poly.graph());
  // The whole program evaluates to (fn a => a) applied to (fn c => c),
  // i.e. to fn c => c.
  DenseBitset Result = R.labelsOf(M->root());
  EXPECT_TRUE(Result.contains(labelOfFnWithParam(*M, "c").index()));
  EXPECT_FALSE(Result.contains(labelOfFnWithParam(*M, "g").index()));
}

TEST(Polyvariant, FreeVariablesUseSharedAnchors) {
  auto M = parseMaybeInfer("let outer = fn q => q in "
                           "let usesFree = fn x => outer x in "
                           "usesFree (fn a => a)");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  // Both functions summarize; `usesFree`'s summary routes through the
  // shared `outer` binder anchor.
  EXPECT_EQ(Poly.stats().Candidates, 2u);
  EXPECT_EQ(Poly.stats().Fallbacks, 0u);
  EXPECT_EQ(Poly.stats().Summarized, 2u);
  // The call still resolves through the free variable.
  Reachability R(Poly.graph());
  EXPECT_TRUE(
      R.labelsOf(M->root()).contains(labelOfFnWithParam(*M, "a").index()));
}

TEST(Polyvariant, SharedAnchorsDoNotLeakAcrossInstances) {
  // Two uses of `wrap` with different arguments; `wrap` calls through the
  // free variable `call`.  Instances must stay separate even though the
  // `call` anchor is shared.
  auto M = parseMaybeInfer("let call = fn f => f 1 in "
                           "let wrap = fn g => call g in "
                           "(wrap (fn a => a), wrap (fn b => b + 1))");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  // Both wrap (free var: call) and call (closed) summarize.
  EXPECT_EQ(Poly.stats().Summarized, 2u);
  // External soundness versus the concrete run (internal binders of
  // summarized functions have per-instance identity and are out of scope
  // for shared queries; see the class comment in Polyvariant.h).
  InterpreterResult Dyn = interpret(*M);
  ASSERT_TRUE(Dyn.Completed) << Dyn.Abort;
  Reachability R(Poly.graph());
  for (ExprId E : externalExprs(*M)) {
    EXPECT_TRUE(R.labelsOf(E).containsAll(Dyn.LabelsAt[E.index()]))
        << "expr " << E.index();
  }
}

TEST(Polyvariant, DatatypeTypedCandidateFallsBack) {
  auto M = parseMaybeInfer("data Box = MkBox(Int -> Int);\n"
                           "let boxer = fn f => MkBox(f) in "
                           "case boxer (fn a => a) of MkBox(g) => g 1 end");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  // boxer's result type mentions a datatype: monovariant fallback.
  EXPECT_EQ(Poly.stats().Fallbacks, 1u);
  // With the fallback in place the flow still resolves: `g` is fn a.
  Reachability R(Poly.graph());
  EXPECT_TRUE(R.labelsOfVar(varNamed(*M, "g"))
                  .contains(labelOfFnWithParam(*M, "a").index()));
}

TEST(Polyvariant, OccurrenceBudgetFallsBack) {
  std::string Src = "let id = fn x => x in (";
  for (int I = 0; I < 5; ++I)
    Src += (I ? ", id (fn a" : "id (fn a") + std::to_string(I) + " => a" +
           std::to_string(I) + ")";
  Src += ")";
  auto M = parseMaybeInfer(Src);
  ASSERT_TRUE(M);
  PolyConfig PC;
  PC.MaxOccurrences = 3; // five uses exceed the budget
  PolyvariantCFA Poly(*M, SubtransitiveConfig{}, PC);
  Poly.run();
  EXPECT_EQ(Poly.stats().Fallbacks, 1u);
  EXPECT_EQ(Poly.stats().Instantiations, 0u);
}

TEST(Polyvariant, UncalledCandidateIsHarmless) {
  auto M = parseMaybeInfer("let dead = fn x => x in fn live => live");
  ASSERT_TRUE(M);
  PolyvariantCFA Poly(*M);
  Poly.run();
  Reachability R(Poly.graph());
  EXPECT_TRUE(R.labelsOf(M->root())
                  .contains(labelOfFnWithParam(*M, "live").index()));
}

class PolyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolyProperty, NeverCoarserThanMonovariant) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 50;
  O.UseDatatypes = false; // datatype-typed candidates just fall back
  auto M = parseAndInfer(makeRandomProgram(O));
  ASSERT_TRUE(M);

  StandardCFA Std(*M);
  Std.run();
  PolyvariantCFA Poly(*M);
  Poly.run();
  Reachability R(Poly.graph());

  for (ExprId E : externalExprs(*M)) {
    DenseBitset Mono = Std.labelSet(E);
    DenseBitset P = R.labelsOf(E);
    EXPECT_TRUE(Mono.containsAll(P))
        << "poly coarser than mono at expr " << E.index() << " seed "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyProperty,
                         ::testing::Range<uint64_t>(900, 920));

} // namespace
