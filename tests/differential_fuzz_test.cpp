//===-- tests/differential_fuzz_test.cpp - Engine cross-check fuzzing -----===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven differential fuzzing of the serving path: for each random
/// program, the full label-set table is computed three ways —
///
///   1. the standard cubic analysis (ground truth),
///   2. the governed per-query BFS batch path (kernel disabled),
///   3. the word-parallel `LabelSetKernel` (kernel forced on),
///
/// and any disagreement fails with the reproducing seed in the message.
/// Programs are pure (no refs/effects) with congruence off, so all three
/// engines must agree bit-for-bit, not merely conservatively.
///
/// The `kernel.row-corrupt` fault site is the suite's canary: arming it
/// makes the kernel silently flip one bit in a finished row, and the
/// canary test asserts the differential check actually reports it.
///
//===----------------------------------------------------------------------===//

#include "analysis/StandardCFA.h"
#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "core/SubtransitiveGraph.h"
#include "gen/Generators.h"
#include "support/FaultInjection.h"
#include "testgen/ShapeGen.h"

#include "TestUtil.h"

#include <string>
#include <vector>

using namespace stcfa;

namespace {

/// Runs the three engines over \p Src and returns a human-readable
/// mismatch report ("" when all agree).  Every line carries \p Tag (the
/// generator spec/seed), so a failure is reproducible from the test log
/// alone.  \p KernelChunkRows lets the shape suite sweep the chunked
/// scheduler's one tuning knob (0 keeps the default).
std::string differentialReportSource(const std::string &Tag,
                                     const std::string &Src,
                                     uint32_t KernelChunkRows = 0) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Src, Diags);
  if (!M)
    return Tag + ": generated program failed to parse:\n" + Diags.render();
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags))
    return Tag + ": generated program failed to type-check:\n" +
           InferDiags.render();

  // Ground truth: the cubic analysis.
  StandardCFA Std(*M);
  Std.run();

  // Shared preparation: exact (congruence-off) close + freeze.
  SubtransitiveConfig Config;
  Config.Congruence = CongruenceMode::None;
  SubtransitiveGraph G(*M, Config);
  G.build();
  Status CloseStatus = G.close(Deadline::infinite());
  if (!CloseStatus.isOk())
    return Tag + ": close failed: " + CloseStatus.toString();
  Status FreezeStatus;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, FreezeStatus);
  if (!F)
    return Tag + ": freeze failed: " + FreezeStatus.toString();

  std::vector<ExprId> Es;
  for (uint32_t I = 0, E = M->numExprs(); I != E; ++I)
    Es.push_back(ExprId(I));

  // Engine 2: governed BFS batch — kernel disabled, infinite controls,
  // so the batch must complete every slot.
  QueryEngine Bfs(*F, /*Threads=*/2);
  Bfs.setKernelThreshold(0);
  BatchControl Control;
  BatchOutcome Outcome;
  std::vector<DenseBitset> BfsSets = Bfs.labelsOfBatch(Es, Control, Outcome);
  if (!Outcome.S.isOk() || Outcome.Completed != Es.size())
    return Tag + ": ungoverned-control batch stopped early: " +
           Outcome.S.toString();

  // Engine 3: the word-parallel kernel — threshold 1 forces dispatch.
  QueryEngine Kern(*F, /*Threads=*/2);
  Kern.setKernelThreshold(1);
  if (KernelChunkRows != 0)
    Kern.setKernelChunkRows(KernelChunkRows);
  std::vector<DenseBitset> KernSets = Kern.labelsOfBatch(Es);

  std::string Report;
  unsigned Mismatches = 0;
  auto check = [&](const char *Engine, const DenseBitset &Got, uint32_t I) {
    const DenseBitset &Want = Std.labelSet(ExprId(I));
    if (Got == Want)
      return;
    ++Mismatches;
    if (Mismatches > 5) // keep the log readable; the seed reproduces all
      return;
    Report += Tag + ": " + Engine + " disagrees with standard at expr " +
              std::to_string(I) + " (got " + std::to_string(Got.count()) +
              " labels, want " + std::to_string(Want.count()) + ")\n";
  };
  for (uint32_t I = 0, E = M->numExprs(); I != E; ++I) {
    check("governed-bfs", BfsSets[I], I);
    check("kernel", KernSets[I], I);
  }
  if (Mismatches > 5)
    Report += Tag + ": ... " + std::to_string(Mismatches - 5) +
              " further mismatches suppressed\n";
  return Report;
}

std::string differentialReport(const RandomProgramOptions &O) {
  return differentialReportSource("seed " + std::to_string(O.Seed),
                                  makeRandomProgram(O));
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzz, EnginesAgree) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 40;
  O.UseRefs = false;
  O.UseEffects = false;
  EXPECT_EQ(differentialReport(O), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1000, 1160));

/// Larger programs push the close phase and the kernel's level schedule
/// harder (more SCCs, deeper condensation DAG).
class DifferentialFuzzDense : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzDense, EnginesAgree) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 96;
  O.UseRefs = false;
  O.UseEffects = false;
  EXPECT_EQ(differentialReport(O), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzDense,
                         ::testing::Range<uint64_t>(5000, 5040));

/// Tiny programs hit the edge cases: single-SCC condensations, rows of
/// one word, batches barely above the forced threshold.
class DifferentialFuzzTiny : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzTiny, EnginesAgree) {
  RandomProgramOptions O;
  O.Seed = GetParam();
  O.NumBindings = 8;
  O.UseRefs = false;
  O.UseEffects = false;
  EXPECT_EQ(differentialReport(O), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTiny,
                         ::testing::Range<uint64_t>(9000, 9040));

/// The condensation-shape stress corpus (testgen/ShapeGen.h): each shape
/// family exercises a schedule geometry the random generator rarely
/// produces — one fat level, a skinny path, alternating widths, and
/// fat-then-skinny.  Each case also pins a different chunk size, so the
/// level-compressed scheduler's merge decisions are fuzzed alongside the
/// row-OR kernel itself (per-level, tiny merged chunks, the default, and
/// one-chunk-for-everything).
class DifferentialFuzzShapes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzShapes, EnginesAgree) {
  uint64_t Case = GetParam();
  ShapeSpec Spec;
  Spec.Shape = static_cast<CondShape>(Case % NumCondShapes);
  Spec.N = 5 + static_cast<int>((Case * 7) % 60);
  Spec.Seed = 1 + Case;
  const uint32_t ChunkRowsSweep[] = {1, 3, 0 /*default*/, UINT32_MAX};
  uint32_t ChunkRows = ChunkRowsSweep[(Case / NumCondShapes) % 4];
  EXPECT_EQ(differentialReportSource(shapeSpecString(Spec),
                                     makeShapeProgram(Spec), ChunkRows),
            "");
}

INSTANTIATE_TEST_SUITE_P(Shapes, DifferentialFuzzShapes,
                         ::testing::Range<uint64_t>(0, 64));

//===----------------------------------------------------------------------===//
// The canary: a deliberately-broken kernel must be caught.
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzzCanary, CorruptedKernelRowIsReported) {
  if (!faultInjectionEnabled())
    GTEST_SKIP() << "fault injection compiled out";

  RandomProgramOptions O;
  O.Seed = 4242;
  O.NumBindings = 40;
  O.UseRefs = false;
  O.UseEffects = false;

  // Sanity: the seed is clean without the fault.
  ASSERT_EQ(differentialReport(O), "");

  ASSERT_TRUE(armFault(fault::KernelRowCorrupt));
  std::string Report = differentialReport(O);
  disarmFaults();

  // The corrupted row must surface as a kernel-vs-standard mismatch, and
  // the report must name the reproducing seed.
  EXPECT_FALSE(Report.empty())
      << "a silently corrupted kernel row went undetected";
  EXPECT_NE(Report.find("seed 4242"), std::string::npos) << Report;
  EXPECT_NE(Report.find("kernel"), std::string::npos) << Report;
}

} // namespace
