//===-- tests/observability_test.cpp - Trace + metrics layer --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability layer: span nesting and parent linkage
/// (including across ThreadPool lanes), counter shard aggregation,
/// histogram bucket boundaries, the disabled-mode no-allocation claim,
/// and the governed-abort telemetry contract (a kernel abort must emit
/// the fallback counter and an instant whose cause names the Status
/// that forced it).
///
//===----------------------------------------------------------------------===//

#include "analysis/HybridCFA.h"
#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "core/SubtransitiveGraph.h"
#include "gen/Generators.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include "TestUtil.h"

#include <map>
#include <thread>
#include <vector>

using namespace stcfa;

namespace {

/// Enables collection for one test and leaves the layer disabled and
/// empty afterwards (gtest may run several tests in one process).
struct ScopedTracing {
  ScopedTracing() {
    setTracingEnabled(true);
    clearTraceEvents();
  }
  ~ScopedTracing() {
    setTracingEnabled(false);
    clearTraceEvents();
  }
};

/// Disarms on scope exit (mirrors the fault-injection suite's helper).
struct ArmedSite {
  explicit ArmedSite(std::string_view Name) {
    EXPECT_TRUE(armFault(Name)) << "unregistered site " << Name;
  }
  ~ArmedSite() { disarmFaults(); }
};

std::vector<const TraceEventView *>
eventsNamed(const std::vector<TraceEventView> &Evs, std::string_view Name) {
  std::vector<const TraceEventView *> Out;
  for (const TraceEventView &E : Evs)
    if (E.Name == Name)
      Out.push_back(&E);
  return Out;
}

uint64_t intArg(const TraceEventView &E, std::string_view Key) {
  for (const auto &[K, V] : E.Args)
    if (K == Key)
      return V;
  ADD_FAILURE() << "event " << E.Name << " has no arg '" << Key << "'";
  return ~uint64_t(0);
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(Trace, CompiledInForTier1) {
  // Tier-1 ctest runs with the gate ON (the default); production builds
  // may turn it off, and then every span folds away at compile time.
  EXPECT_TRUE(tracingCompiledIn());
}

TEST(Trace, SpanNestingAndArgs) {
  if (!tracingCompiledIn())
    GTEST_SKIP() << "tracing compiled out";
  ScopedTracing T;

  {
    Span Outer("test.outer");
    Outer.arg("answer", 42);
    {
      Span Inner("test.inner");
      Inner.arg("cause", "ok");
    }
    { Span Sibling("test.sibling"); }
  }
  traceInstant("test.instant", "cause", "why", "n", 7);

  std::vector<TraceEventView> Evs = snapshotTraceEvents();
  ASSERT_EQ(eventsNamed(Evs, "test.outer").size(), 1u);
  ASSERT_EQ(eventsNamed(Evs, "test.inner").size(), 1u);
  ASSERT_EQ(eventsNamed(Evs, "test.sibling").size(), 1u);
  ASSERT_EQ(eventsNamed(Evs, "test.instant").size(), 1u);

  const TraceEventView &Outer = *eventsNamed(Evs, "test.outer")[0];
  const TraceEventView &Inner = *eventsNamed(Evs, "test.inner")[0];
  const TraceEventView &Sibling = *eventsNamed(Evs, "test.sibling")[0];
  const TraceEventView &Instant = *eventsNamed(Evs, "test.instant")[0];

  // Parent linkage: both children point at the outer span; the outer
  // span is a root.
  EXPECT_EQ(Outer.Parent, 0u);
  EXPECT_EQ(Inner.Parent, Outer.Seq);
  EXPECT_EQ(Sibling.Parent, Outer.Seq);
  EXPECT_EQ(Outer.Phase, 'X');

  // Timestamps nest: the inner span starts no earlier and ends no later.
  EXPECT_GE(Inner.StartNs, Outer.StartNs);
  EXPECT_LE(Inner.StartNs + Inner.DurNs, Outer.StartNs + Outer.DurNs);

  // Arguments survive the round trip.
  EXPECT_EQ(intArg(Outer, "answer"), 42u);
  EXPECT_EQ(Inner.StrKey, "cause");
  EXPECT_EQ(Inner.StrVal, "ok");
  EXPECT_EQ(Instant.Phase, 'i');
  EXPECT_EQ(Instant.StrVal, "why");
  EXPECT_EQ(intArg(Instant, "n"), 7u);

  // The Chrome export is a JSON array naming every span.
  std::string Json = chromeTraceJson();
  EXPECT_EQ(Json.front(), '[');
  EXPECT_NE(Json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(Trace, NestingHoldsAcrossPoolLanes) {
  if (!tracingCompiledIn())
    GTEST_SKIP() << "tracing compiled out";
  ScopedTracing T;

  // Spans opened inside pool tasks must link to the enclosing span *on
  // the same thread*, never to a span another lane happens to have open.
  ThreadPool Pool(3);
  Pool.parallelFor(8, [](unsigned, size_t) {
    Span Outer("test.lane.outer");
    Span Inner("test.lane.inner");
    (void)Inner;
  });

  std::vector<TraceEventView> Evs = snapshotTraceEvents();
  std::map<uint64_t, const TraceEventView *> BySeq;
  for (const TraceEventView &E : Evs)
    BySeq[E.Seq] = &E;

  auto Outers = eventsNamed(Evs, "test.lane.outer");
  auto Inners = eventsNamed(Evs, "test.lane.inner");
  ASSERT_EQ(Outers.size(), 8u);
  ASSERT_EQ(Inners.size(), 8u);
  for (const TraceEventView *Inner : Inners) {
    auto It = BySeq.find(Inner->Parent);
    ASSERT_NE(It, BySeq.end()) << "dangling parent seq " << Inner->Parent;
    EXPECT_EQ(It->second->Name, "test.lane.outer");
    EXPECT_EQ(It->second->Tid, Inner->Tid)
        << "span parented across threads";
  }
  for (const TraceEventView *Outer : Outers)
    EXPECT_EQ(Outer->Parent, 0u);
}

TEST(Trace, DisabledModeRecordsNothingAndNeverAllocates) {
  if (!tracingCompiledIn())
    GTEST_SKIP() << "tracing compiled out";

  // Warm up this thread's buffer while enabled, so the creation
  // allocation is already accounted for.
  setTracingEnabled(true);
  { Span Warm("test.warm"); }
  setTracingEnabled(false);
  clearTraceEvents();

  uint64_t Before = traceAllocationCount();
  for (int I = 0; I != 10000; ++I) {
    Span S("test.disabled");
    S.arg("i", static_cast<uint64_t>(I));
    S.arg("cause", "disabled");
    traceInstant("test.disabled.instant");
  }
  EXPECT_EQ(traceAllocationCount(), Before)
      << "disabled-mode spans must not touch the heap";
  EXPECT_TRUE(snapshotTraceEvents().empty());
}

TEST(Trace, ClearRetainsBufferCapacity) {
  if (!tracingCompiledIn())
    GTEST_SKIP() << "tracing compiled out";
  ScopedTracing T;

  // First cycle may grow the buffer...
  for (int I = 0; I != 64; ++I) {
    Span S("test.capacity");
    (void)S;
  }
  clearTraceEvents();
  // ...the second cycle of the same size must fit in retained capacity.
  uint64_t Before = traceAllocationCount();
  for (int I = 0; I != 64; ++I) {
    Span S("test.capacity");
    (void)S;
  }
  EXPECT_EQ(traceAllocationCount(), Before);
  EXPECT_EQ(snapshotTraceEvents().size(), 64u);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterAggregatesShardsAcrossThreads) {
  Counter &C = counter("test.obs.shard_agg");
  C.reset();

  // More threads than shards, so some shards are shared — the sum must
  // still be exact (fetch_add, never store).
  constexpr int NumThreads = 24;
  constexpr int PerThread = 1000;
  std::vector<std::thread> Ts;
  for (int I = 0; I != NumThreads; ++I)
    Ts.emplace_back([&C] {
      for (int J = 0; J != PerThread; ++J)
        C.inc();
    });
  for (std::thread &T : Ts)
    T.join();
  C.add(5);
  EXPECT_EQ(C.value(), uint64_t(NumThreads) * PerThread + 5);

  // The snapshot sees the same aggregated value, under the same name.
  for (const auto &[Name, V] : snapshotMetrics().Counters) {
    if (Name == "test.obs.shard_agg") {
      EXPECT_EQ(V, uint64_t(NumThreads) * PerThread + 5);
    }
  }
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram &H = histogram("test.obs.hist", {10, 20, 40});
  H.reset();

  // A value equal to a bound lands in that bound's bucket (`le`
  // semantics); anything above the last bound lands in the overflow
  // bucket.
  for (uint64_t V : {0u, 10u})
    H.observe(V); // bucket 0 (<= 10)
  for (uint64_t V : {11u, 20u})
    H.observe(V); // bucket 1 (<= 20)
  for (uint64_t V : {21u, 40u})
    H.observe(V); // bucket 2 (<= 40)
  for (uint64_t V : {41u, 100000u})
    H.observe(V); // overflow

  EXPECT_EQ(H.count(), 8u);
  EXPECT_EQ(H.sum(), 0u + 10 + 11 + 20 + 21 + 40 + 41 + 100000);
  ASSERT_EQ(H.bounds().size(), 3u);
  std::vector<uint64_t> Buckets = H.bucketCounts();
  ASSERT_EQ(Buckets.size(), 4u);
  EXPECT_EQ(Buckets[0], 2u);
  EXPECT_EQ(Buckets[1], 2u);
  EXPECT_EQ(Buckets[2], 2u);
  EXPECT_EQ(Buckets[3], 2u);
  H.reset();
}

TEST(Metrics, SnapshotJsonNamesEveryMetric) {
  counter("test.obs.json_counter").inc();
  gauge("test.obs.json_gauge").set(-3);
  histogram("test.obs.json_hist", latencyBucketsMillis()).observe(4);

  std::string Json = snapshotMetrics().toJson();
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"test.obs.json_counter\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"test.obs.json_gauge\": -3"), std::string::npos);
  EXPECT_NE(Json.find("\"test.obs.json_hist\""), std::string::npos);
  EXPECT_NE(Json.find("\"buckets\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Governed-abort telemetry
//===----------------------------------------------------------------------===//

TEST(Observability, GovernedKernelAbortEmitsFallbackTelemetry) {
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(16));
  ASSERT_TRUE(M);
  SubtransitiveConfig Config;
  Config.Congruence = CongruenceMode::None;
  SubtransitiveGraph G(*M, Config);
  G.build();
  ASSERT_TRUE(G.close(Deadline::infinite()).isOk());
  Status FreezeStatus;
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(G, FreezeStatus);
  ASSERT_TRUE(F);

  QueryEngine E(*F, /*Threads=*/2);
  E.setKernelThreshold(1);
  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));

  Counter &Fallbacks = counter("query.batch.kernel_fallback");
  Counter &Dispatches = counter("query.batch.kernel_dispatch");
  uint64_t FallbacksBefore = Fallbacks.value();
  uint64_t DispatchesBefore = Dispatches.value();

  ScopedTracing T;
  BatchControl Control;
  Control.D = Deadline::afterMillis(0); // expired before the kernel starts
  BatchOutcome Outcome;
  std::vector<DenseBitset> Sets = E.labelsOfBatch(Es, Control, Outcome);

  // The kernel run aborted on the deadline and fell back to BFS (which
  // then aborted too — the whole batch is governed by the same clock).
  EXPECT_EQ(Outcome.S.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Fallbacks.value(), FallbacksBefore + 1);
  EXPECT_EQ(Dispatches.value(), DispatchesBefore)
      << "an aborted kernel run must not count as a dispatch";

  if (tracingCompiledIn()) {
    // The fallback instant names the Status that forced it.
    std::vector<TraceEventView> Evs = snapshotTraceEvents();
    auto Instants = eventsNamed(Evs, "query.kernel-fallback");
    ASSERT_EQ(Instants.size(), 1u);
    EXPECT_EQ(Instants[0]->Phase, 'i');
    EXPECT_EQ(Instants[0]->StrKey, "cause");
    EXPECT_EQ(Instants[0]->StrVal, statusCodeName(Outcome.S.code()));
  }
}

TEST(Observability, HybridRungTransitionCarriesCause) {
  if (!faultInjectionEnabled())
    GTEST_SKIP() << "fault injection compiled out";
  std::unique_ptr<Module> M = parseMaybeInfer(makeCubicFamily(12));
  ASSERT_TRUE(M);

  Counter &Transitions = counter("hybrid.rung_transitions");
  uint64_t TransitionsBefore = Transitions.value();

  ScopedTracing T;
  Status SolveStatus;
  DegradationReport Report;
  {
    // A blown subtransitive budget forces the ladder down to rung 2.
    ArmedSite Armed(fault::HybridSubtransitiveBudget);
    HybridOptions Opts;
    Opts.Degrade = DegradeMode::Partial;
    HybridCFA H(*M, Opts);
    SolveStatus = H.solve();
    EXPECT_EQ(H.engine(), HybridCFA::Engine::Standard);
    Report = H.report();
  }
  EXPECT_TRUE(SolveStatus.isOk());
  EXPECT_GE(Transitions.value(), TransitionsBefore + 1);

  if (!tracingCompiledIn())
    return;
  // The transition instant's cause must match the rung-1 Status the
  // ladder actually recorded.
  ASSERT_FALSE(Report.Attempts.empty());
  EXPECT_EQ(Report.Attempts[0].S.code(), StatusCode::ResourceExhausted);
  std::vector<TraceEventView> Evs = snapshotTraceEvents();
  auto Instants = eventsNamed(Evs, "hybrid.rung-transition");
  ASSERT_EQ(Instants.size(), 1u);
  EXPECT_EQ(Instants[0]->StrKey, "cause");
  EXPECT_EQ(Instants[0]->StrVal, statusCodeName(Report.Attempts[0].S.code()));
  EXPECT_EQ(intArg(*Instants[0], "to_rung"), 2u);
}

} // namespace
