//===-- tests/delta_fuzz_test.cpp - Edit-sequence differential fuzzer -----===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-sequence differential fuzzer proving the delta layer's
/// exactness claim at scale: 120 seeded shape programs each take a
/// 12-step random edit script (replace / insert / delete / replace-body
/// / rename), and after *every* step the session's published view must
/// be bit-identical to a from-scratch parse -> close -> freeze of the
/// session's current source (`tests/DeltaTestUtil.h`).  Every ~5th step
/// verifies through `labelsOfBatch` with the kernel threshold forced to
/// zero, so under `STCFA_FORCE_SCALAR=1` (the ci.sh scalar lane) the
/// kernel's forced-scalar twin is differentially tested too.
///
/// Edit scripts are generated from the session's own introspection
/// (`numDefs`/`defName`), with replacement and insertion fragments
/// referencing only definitions *earlier* than the target position —
/// the same top-to-bottom scoping a fresh parse enforces.  Deleting a
/// still-referenced definition is an expected structured rejection and
/// counts as a no-op step; any other rejection fails the test.
///
/// Failures report the (program-seed, edit-seed, step) triple plus the
/// full current source, so any divergence reproduces from the log alone.
///
//===----------------------------------------------------------------------===//

#include "delta/DeltaSession.h"
#include "testgen/ShapeGen.h"

#include "DeltaTestUtil.h"
#include "TestUtil.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace stcfa;

namespace {

/// xorshift64: tiny, seedable, and stable across platforms — failing
/// triples must reproduce bit-for-bit everywhere.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  /// Uniform in [0, N); N must be nonzero.
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

/// True when definition \p I's current value is a lambda (`let f = fn
/// ...;`).  Shape programs also contain application- and int-valued
/// definitions (`let a1 = fs w1;`, `let r1 = a1 0;`); applying those in
/// a generated fragment would make the program ill-typed, and ill-typed
/// application cycles can push the untyped closure into exponential
/// territory — a from-scratch rebuild of such a program diverges too,
/// so the differential oracle cannot use it.  Generated chains therefore
/// apply only fn-valued names.
bool fnValued(const DeltaSession &Sess, uint32_t I) {
  const std::string &T = Sess.defText(I);
  const size_t Eq = T.find('=');
  if (Eq == std::string::npos)
    return false;
  const size_t P = T.find_first_not_of(" \t\n", Eq + 1);
  return P != std::string::npos && T.compare(P, 2, "fn") == 0;
}

/// A random application chain over the fn-valued definitions among
/// `Defs[0..Limit)`, the names legal at the edit's position: \p Var
/// alone when none qualify, else one of `P (v)`, `P1 (P2 (v))`,
/// `P1 (P2 (P3 (v)))`.
std::string randomChain(Rng &R, const DeltaSession &Sess, uint32_t Limit,
                        const std::string &Var) {
  std::vector<uint32_t> Fns;
  for (uint32_t I = 0; I != Limit; ++I)
    if (fnValued(Sess, I))
      Fns.push_back(I);
  if (Fns.empty())
    return Var;
  std::string E = Var;
  const uint32_t Depth = 1 + R.below(3);
  for (uint32_t I = 0; I != Depth; ++I)
    E = Sess.defName(Fns[R.below(static_cast<uint32_t>(Fns.size()))]) + " (" +
        E + ")";
  return E;
}

/// One random edit against the session's current shape.  \p Fresh is a
/// per-step unique identifier for inserts and renames, so scripts never
/// trip the shadowed-name rebuild path by accident (that path has its
/// own unit test) and renames never collide.
EditRequest randomEdit(Rng &R, const DeltaSession &Sess,
                       const std::string &Fresh) {
  const uint32_t N = Sess.numDefs();
  EditRequest Req;
  // Weights: replace-heavy (the headline path), structural edits and
  // renames sprinkled through, deletes rare (most are rejected as
  // still-referenced in chain-shaped programs anyway).
  const uint32_t Roll = R.below(100);
  if (Roll < 40 && N != 0) {
    Req.Kind = EditRequest::Op::Replace;
    const uint32_t I = R.below(N);
    Req.Name = Sess.defName(I);
    const std::string Init = "fn x => " + randomChain(R, Sess, I, "x");
    // Self-recursive replacements exercise the letrec fragment path.
    if (R.below(4) == 0)
      Req.Text = "letrec " + Req.Name + " = fn x => " + Req.Name + " (" +
                 randomChain(R, Sess, I, "x") + ");";
    else
      Req.Text = "let " + Req.Name + " = " + Init + ";";
  } else if (Roll < 60) {
    Req.Kind = EditRequest::Op::Insert;
    // Insert before a random definition (or append), referencing only
    // definitions earlier than that position.
    const uint32_t P = R.below(N + 1);
    if (P < N)
      Req.Before = Sess.defName(P);
    Req.Text =
        "let " + Fresh + " = fn x => " + randomChain(R, Sess, P, "x") + ";";
  } else if (Roll < 75 && N != 0) {
    Req.Kind = EditRequest::Op::ReplaceBody;
    Req.Text = randomChain(R, Sess, N, "0");
  } else if (Roll < 90 && N != 0) {
    Req.Kind = EditRequest::Op::Rename;
    Req.Name = Sess.defName(R.below(N));
    Req.NewName = Fresh;
  } else if (N > 1) {
    Req.Kind = EditRequest::Op::Delete;
    Req.Name = Sess.defName(R.below(N));
  } else {
    Req.Kind = EditRequest::Op::ReplaceBody;
    Req.Text = randomChain(R, Sess, N, "0");
  }
  return Req;
}

constexpr int EditsPerProgram = 12;

/// Runs one (program-seed, edit-seed) script: build the session from a
/// seeded shape program, apply `EditsPerProgram` random edits, and
/// differentially verify the published view after every step.
void runScript(CondShape Shape, uint64_t ProgSeed) {
  ShapeSpec Spec;
  Spec.Shape = Shape;
  Spec.N = 3 + static_cast<int>(ProgSeed % 6);
  Spec.Seed = ProgSeed;
  const std::string Program = makeShapeProgram(Spec);

  // Derive the edit seed from the program seed so the pair prints as a
  // reproducible triple but the two streams stay decorrelated.
  const uint64_t EditSeed = ProgSeed * 0x9e3779b97f4a7c15ull + 0xc0ffee;
  const std::string TagBase = std::string(shapeName(Shape)) +
                              " prog-seed=" + std::to_string(ProgSeed) +
                              " edit-seed=" + std::to_string(EditSeed);

  DeltaSession::Options O;
  Status CS = Status::ok();
  std::unique_ptr<DeltaSession> Sess = DeltaSession::create(Program, O, CS);
  ASSERT_TRUE(Sess != nullptr) << TagBase << ": " << CS.toString();
  ASSERT_TRUE(Sess->incremental())
      << TagBase << ": shape program left the exactness envelope";
  EXPECT_EQ("", compareDeltaToFreshRebuild(*Sess, TagBase + " step=init"));

  Rng R(EditSeed);
  for (int Step = 0; Step != EditsPerProgram; ++Step) {
    const std::string Tag = TagBase + " step=" + std::to_string(Step);
    const std::string Fresh = "zz" + std::to_string(ProgSeed % 1000) + "_" +
                              std::to_string(Step);
    const EditRequest Req = randomEdit(R, *Sess, Fresh);
    // Seed-hunting aid: STCFA_DELTA_FUZZ_TRACE=1 narrates every step so a
    // hang or blow-up pins to a (prog-seed, edit-seed, step) triple.
    if (std::getenv("STCFA_DELTA_FUZZ_TRACE"))
      std::fprintf(stderr, "%s op=%d name=%s text=%s\n", Tag.c_str(),
                   static_cast<int>(Req.Kind), Req.Name.c_str(),
                   Req.Text.c_str());

    const bool WasIncremental = Sess->incremental();
    const std::string SourceBefore = Sess->currentSource();
    ApplyResult Res;
    Status S = Sess->apply(Req, Res);
    if (!S.isOk()) {
      // A rejected edit must be a structured error that leaves the
      // session untouched.  On the incremental path the only rejection
      // a generated script can produce is deleting a still-referenced
      // definition; in text-only mode any splice the re-parse refuses
      // (e.g. deleting a referenced definition surfaces as an unbound
      // name) is legal.
      ASSERT_EQ(S.code(), StatusCode::InvalidArgument) << Tag << ": "
                                                       << S.toString();
      if (WasIncremental) {
        ASSERT_EQ(Req.Kind, EditRequest::Op::Delete)
            << Tag << ": unexpected rejection: " << S.toString();
        ASSERT_NE(S.message().find("referenced"), std::string::npos)
            << Tag << ": " << S.toString();
      } else {
        ASSERT_EQ(Req.Kind, EditRequest::Op::Delete)
            << Tag << ": unexpected text-only rejection: " << S.toString();
      }
      EXPECT_EQ(SourceBefore, Sess->currentSource())
          << Tag << ": rejected edit changed the source";
      if (Sess->incremental()) {
        EXPECT_EQ("", compareDeltaToFreshRebuild(*Sess, Tag + " (no-op)"));
      }
      continue;
    }

    if (Res.NeedsFullPipeline || !Sess->incremental()) {
      // The edit pushed the program out of the exactness envelope (a
      // well-typed deep chain can legitimately engage the depth
      // widening) and the session degraded to text-splicing — the
      // documented ladder.  Its remaining contract: the spliced source
      // must be a valid program for the caller's full pipeline.
      DiagnosticEngine Diags;
      ASSERT_TRUE(parseProgram(Sess->currentSource(), Diags) != nullptr)
          << Tag << ": spliced source does not parse:\n"
          << Diags.render() << "\n--- source ---\n"
          << Sess->currentSource();
      continue;
    }

    // Every ~5th step goes through the batched kernel path, so the
    // forced-scalar CI lane differentially tests the scalar twin.
    const bool UseBatch = (Step % 5) == 4;
    EXPECT_EQ("", compareDeltaToFreshRebuild(*Sess, Tag, UseBatch));
    if (::testing::Test::HasFailure())
      return; // first divergence is the reproducer; don't bury it
  }
}

constexpr uint64_t SeedsPerShape = 30; // 4 shapes x 30 = 120 programs

TEST(DeltaFuzz, WideShapes) {
  for (uint64_t S = 1; S <= SeedsPerShape; ++S) {
    runScript(CondShape::Wide, S);
    if (::testing::Test::HasFailure())
      return;
  }
}

TEST(DeltaFuzz, DeepChains) {
  for (uint64_t S = 1; S <= SeedsPerShape; ++S) {
    runScript(CondShape::Deep, S);
    if (::testing::Test::HasFailure())
      return;
  }
}

TEST(DeltaFuzz, Diamonds) {
  for (uint64_t S = 1; S <= SeedsPerShape; ++S) {
    runScript(CondShape::Diamond, S);
    if (::testing::Test::HasFailure())
      return;
  }
}

TEST(DeltaFuzz, SkewedShapes) {
  for (uint64_t S = 1; S <= SeedsPerShape; ++S) {
    runScript(CondShape::Skewed, S);
    if (::testing::Test::HasFailure())
      return;
  }
}

} // namespace
