//===-- tests/testgen_test.cpp - Condensation-shape generator tests -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stress generator's contracts (testgen/ShapeGen.h):
///
///   * every family emits well-formed, well-typed programs at any N;
///   * generation is deterministic in `(shape, N, seed)`, and the seed
///     perturbs only emission order — never the shape class or the
///     analysis answers;
///   * the condensation geometry actually matches the family name: deep
///     is a skinny path (levels grow with N), wide is one fat level,
///     skewed is fat-then-skinny;
///   * the spec parser round-trips and rejects malformed specs without
///     clobbering its output.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/Reachability.h"
#include "core/SubtransitiveGraph.h"
#include "testgen/ShapeGen.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace stcfa;

namespace {

std::vector<CondShape> allShapes() {
  return {CondShape::Wide, CondShape::Deep, CondShape::Diamond,
          CondShape::Skewed};
}

struct BuiltShape {
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  std::unique_ptr<FrozenGraph> F;
};

BuiltShape buildShape(const ShapeSpec &Spec) {
  BuiltShape B;
  B.M = parseAndInfer(makeShapeProgram(Spec));
  if (!B.M)
    return B;
  B.G = std::make_unique<SubtransitiveGraph>(*B.M);
  B.G->build();
  B.G->close();
  EXPECT_FALSE(B.G->aborted()) << shapeSpecString(Spec);
  B.F = std::make_unique<FrozenGraph>(*B.G);
  return B;
}

/// Runs a fresh kernel to completion and returns it for geometry probes.
std::unique_ptr<LabelSetKernel> closeKernel(const FrozenGraph &F) {
  auto K = std::make_unique<LabelSetKernel>(F);
  EXPECT_TRUE(K->run().isOk());
  EXPECT_TRUE(K->complete());
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Well-formedness and determinism
//===----------------------------------------------------------------------===//

TEST(ShapeGen, AllFamiliesParseAndTypeCheck) {
  for (CondShape S : allShapes()) {
    for (int N : {1, 2, 8, 33}) {
      for (uint64_t Seed : {1ull, 7ull}) {
        ShapeSpec Spec{S, N, Seed};
        auto M = parseAndInfer(makeShapeProgram(Spec));
        ASSERT_TRUE(M) << shapeSpecString(Spec);
        EXPECT_GT(M->numExprs(), 0u) << shapeSpecString(Spec);
        EXPECT_GT(M->numLabels(), 0u) << shapeSpecString(Spec);
      }
    }
  }
}

TEST(ShapeGen, DeterministicInSpec) {
  for (CondShape S : allShapes()) {
    ShapeSpec Spec{S, 12, 9};
    EXPECT_EQ(makeShapeProgram(Spec), makeShapeProgram(Spec))
        << shapeSpecString(Spec);
  }
}

TEST(ShapeGen, SeedPermutesEmissionOrderOnly) {
  // The permuting families must emit a *different* program under a
  // different seed...
  for (CondShape S : {CondShape::Wide, CondShape::Skewed}) {
    ShapeSpec A{S, 16, 1}, B{S, 16, 2};
    EXPECT_NE(makeShapeProgram(A), makeShapeProgram(B)) << shapeName(S);
  }
  // ...but the analysis answers are shape properties, not seed
  // properties: label-set sizes and kernel geometry agree across seeds.
  for (CondShape S : allShapes()) {
    BuiltShape A = buildShape({S, 10, 1});
    BuiltShape B = buildShape({S, 10, 99});
    ASSERT_TRUE(A.M && B.M) << shapeName(S);
    auto KA = closeKernel(*A.F);
    auto KB = closeKernel(*B.F);
    EXPECT_EQ(KA->numLevels(), KB->numLevels()) << shapeName(S);
    EXPECT_EQ(A.F->condensation().numSccs(), B.F->condensation().numSccs())
        << shapeName(S);

    // Multisets of label-set sizes must agree (expr ids shift with
    // emission order, so compare sorted counts).
    auto Counts = [](const Module &M, LabelSetKernel &K) {
      std::vector<uint32_t> C;
      for (uint32_t I = 0, E = M.numExprs(); I != E; ++I)
        C.push_back(K.labelsOf(ExprId(I)).count());
      std::sort(C.begin(), C.end());
      return C;
    };
    EXPECT_EQ(Counts(*A.M, *KA), Counts(*B.M, *KB)) << shapeName(S);
  }
}

//===----------------------------------------------------------------------===//
// Condensation geometry matches the family name
//===----------------------------------------------------------------------===//

TEST(ShapeGen, DeepLevelsGrowWithN) {
  BuiltShape Small = buildShape({CondShape::Deep, 20, 1});
  BuiltShape Large = buildShape({CondShape::Deep, 80, 1});
  ASSERT_TRUE(Small.M && Large.M);
  auto KS = closeKernel(*Small.F);
  auto KL = closeKernel(*Large.F);
  // A wrapper chain condenses to a path: levels scale with N, and the
  // 4x deeper chain must have ~4x the levels (allow generous slack for
  // the fixed prologue/epilogue components).
  EXPECT_GE(KS->numLevels(), 20u);
  EXPECT_GE(KL->numLevels(), 80u);
  EXPECT_GE(KL->numLevels(), 3 * KS->numLevels());
}

TEST(ShapeGen, WideIsShallowerThanDeepAtEqualN) {
  BuiltShape W = buildShape({CondShape::Wide, 60, 1});
  BuiltShape D = buildShape({CondShape::Deep, 60, 1});
  ASSERT_TRUE(W.M && D.M);
  auto KW = closeKernel(*W.F);
  auto KD = closeKernel(*D.F);
  // wide:N's branches run in parallel (each contributes only its fixed
  // per-branch plumbing depth); deep:N is a path where every wrapper
  // stacks.  At equal N the wide DAG must be markedly shallower despite
  // having more SCCs.
  EXPECT_LT(KW->numLevels() * 2, KD->numLevels());
}

TEST(ShapeGen, SkewedIsDeeperThanWideAtEqualN) {
  BuiltShape S = buildShape({CondShape::Skewed, 40, 1});
  BuiltShape W = buildShape({CondShape::Wide, 40, 1});
  ASSERT_TRUE(S.M && W.M);
  auto KS = closeKernel(*S.F);
  auto KW = closeKernel(*W.F);
  // The skewed family appends a depth-N tail to the wide join.
  EXPECT_GE(KS->numLevels(), KW->numLevels() + 40);
}

TEST(ShapeGen, WideJoinSeesAllLabels) {
  // Every w_i flows through the shared conduit's parameter, so the
  // conduit body's label set contains all N wrapper labels.
  const int N = 8;
  BuiltShape B = buildShape({CondShape::Wide, N, 3});
  ASSERT_TRUE(B.M);
  auto K = closeKernel(*B.F);
  Reachability R(*B.G);
  uint32_t MaxCount = 0;
  for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I) {
    DenseBitset L = K->labelsOf(ExprId(I));
    ASSERT_TRUE(L == R.labelsOf(ExprId(I))) << "expr " << I;
    MaxCount = std::max(MaxCount, L.count());
  }
  EXPECT_GE(MaxCount, static_cast<uint32_t>(N));
}

TEST(ShapeGen, KernelMatchesBfsOnAllFamilies) {
  for (CondShape S : allShapes()) {
    for (uint64_t Seed : {1ull, 5ull}) {
      BuiltShape B = buildShape({S, 14, Seed});
      ASSERT_TRUE(B.M) << shapeName(S);
      auto K = closeKernel(*B.F);
      Reachability R(*B.G);
      for (uint32_t I = 0, E = B.M->numExprs(); I != E; ++I)
        ASSERT_TRUE(K->labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))
            << shapeName(S) << " seed " << Seed << " expr " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(ShapeGen, ParseSpecAccepts) {
  ShapeSpec S;
  ASSERT_TRUE(parseShapeSpec("wide:64", S));
  EXPECT_EQ(S.Shape, CondShape::Wide);
  EXPECT_EQ(S.N, 64);
  EXPECT_EQ(S.Seed, 1u); // default seed

  ASSERT_TRUE(parseShapeSpec("deep:500:7", S));
  EXPECT_EQ(S.Shape, CondShape::Deep);
  EXPECT_EQ(S.N, 500);
  EXPECT_EQ(S.Seed, 7u);

  ASSERT_TRUE(parseShapeSpec("diamond:1", S));
  EXPECT_EQ(S.Shape, CondShape::Diamond);
  ASSERT_TRUE(parseShapeSpec("skewed:32:12345", S));
  EXPECT_EQ(S.Shape, CondShape::Skewed);
  EXPECT_EQ(S.Seed, 12345u);
}

TEST(ShapeGen, ParseSpecRejectsWithoutClobbering) {
  ShapeSpec S{CondShape::Diamond, 77, 9};
  for (const char *Bad :
       {"", "wide", "wide:", "wide:0", "wide:-3", "wide:abc", "wide:3:",
        "wide:3:x", "cubic:100", "tall:5", ":5", "wide:3:4:5x"}) {
    EXPECT_FALSE(parseShapeSpec(Bad, S)) << "'" << Bad << "'";
    EXPECT_EQ(S.Shape, CondShape::Diamond) << "'" << Bad << "'";
    EXPECT_EQ(S.N, 77) << "'" << Bad << "'";
    EXPECT_EQ(S.Seed, 9u) << "'" << Bad << "'";
  }
}

TEST(ShapeGen, SpecStringRoundTrips) {
  for (CondShape Shape : allShapes()) {
    ShapeSpec In{Shape, 42, 17};
    ShapeSpec Out;
    ASSERT_TRUE(parseShapeSpec(shapeSpecString(In), Out));
    EXPECT_EQ(Out.Shape, In.Shape);
    EXPECT_EQ(Out.N, In.N);
    EXPECT_EQ(Out.Seed, In.Seed);
  }
}

TEST(ShapeGen, ShapeNamesParseBack) {
  for (CondShape Shape : allShapes()) {
    ShapeSpec Out;
    EXPECT_TRUE(
        parseShapeSpec(std::string(shapeName(Shape)) + ":5", Out));
    EXPECT_EQ(Out.Shape, Shape);
  }
}
