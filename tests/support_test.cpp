//===-- tests/support_test.cpp - Support library unit tests ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"
#include "support/DenseBitset.h"
#include "support/Diagnostics.h"
#include "support/Hashing.h"
#include "support/Ids.h"
#include "support/Status.h"
#include "support/StringInterner.h"
#include "support/TablePrinter.h"

#include "gtest/gtest.h"

using namespace stcfa;

namespace {

//===----------------------------------------------------------------------===//
// Ids
//===----------------------------------------------------------------------===//

TEST(Ids, DefaultIsInvalid) {
  ExprId E;
  EXPECT_FALSE(E.isValid());
  EXPECT_EQ(E, ExprId::invalid());
}

TEST(Ids, IndexRoundTrip) {
  ExprId E(7);
  EXPECT_TRUE(E.isValid());
  EXPECT_EQ(E.index(), 7u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  // Compile-time property; just exercise comparison within one space.
  EXPECT_NE(VarId(1), VarId(2));
  EXPECT_LT(VarId(1), VarId(2));
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, InternIsIdempotent) {
  StringInterner SI;
  Symbol A = SI.intern("hello");
  Symbol B = SI.intern("hello");
  Symbol C = SI.intern("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(SI.text(A), "hello");
  EXPECT_EQ(SI.text(C), "world");
  EXPECT_EQ(SI.size(), 2u);
}

TEST(StringInterner, SurvivesRehashing) {
  StringInterner SI;
  std::vector<Symbol> Syms;
  for (int I = 0; I != 1000; ++I)
    Syms.push_back(SI.intern("sym" + std::to_string(I)));
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(SI.text(Syms[I]), "sym" + std::to_string(I));
}

//===----------------------------------------------------------------------===//
// DenseBitset
//===----------------------------------------------------------------------===//

TEST(DenseBitset, InsertContainsCount) {
  DenseBitset S(130);
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(0));
  EXPECT_TRUE(S.insert(64));
  EXPECT_TRUE(S.insert(129));
  EXPECT_FALSE(S.insert(64));
  EXPECT_EQ(S.count(), 3u);
  EXPECT_TRUE(S.contains(129));
  EXPECT_FALSE(S.contains(1));
}

TEST(DenseBitset, UnionWithReportsAdditions) {
  DenseBitset A(100), B(100);
  A.insert(1);
  B.insert(1);
  B.insert(2);
  B.insert(99);
  EXPECT_EQ(A.unionWith(B), 2u);
  EXPECT_EQ(A.unionWith(B), 0u);
  EXPECT_EQ(A.count(), 3u);
}

TEST(DenseBitset, ForEachIsOrdered) {
  DenseBitset S(256);
  for (uint32_t I : {7u, 250u, 0u, 63u, 64u})
    S.insert(I);
  std::vector<uint32_t> Seen;
  S.forEach([&](uint32_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<uint32_t>{0, 7, 63, 64, 250}));
}

TEST(DenseBitset, OrWordsBulkUnion) {
  DenseBitset A(130), B(130);
  A.insert(1);
  A.insert(64);
  B.insert(64);
  B.insert(65);
  B.insert(129);
  A.orWords(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(64));
  EXPECT_TRUE(A.contains(65));
  EXPECT_TRUE(A.contains(129));
  EXPECT_EQ(A.count(), A.popcount());
}

TEST(DenseBitset, OrWordsMasksTailWord) {
  // Universe 130 occupies 3 words with only 2 valid bits in the last;
  // a source buffer with garbage beyond bit 129 (e.g. the kernel's
  // cache-line-padded rows) must not plant ghost bits.
  DenseBitset A(130);
  const uint64_t Src[3] = {1, 0, ~uint64_t(0)};
  A.orWords(Src, 3);
  EXPECT_EQ(A.count(), 3u); // bits 0, 128, 129 only
  EXPECT_TRUE(A.contains(0));
  EXPECT_TRUE(A.contains(128));
  EXPECT_TRUE(A.contains(129));
  EXPECT_EQ(A.count(), A.popcount());

  // Equality against a conventionally-built set proves no ghost bits
  // survived in the tail word's representation.
  DenseBitset B(130);
  B.insert(0);
  B.insert(128);
  B.insert(129);
  EXPECT_TRUE(A == B);
}

TEST(DenseBitset, OrWordsShortSourceAndPopcount) {
  // A source shorter than the destination ORs only its prefix.
  DenseBitset A(200);
  const uint64_t Src[1] = {uint64_t(1) << 63};
  A.orWords(Src, 1);
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.contains(63));

  // An exact-multiple universe has no tail to mask: the last word keeps
  // every bit.
  DenseBitset C(128);
  const uint64_t Full[2] = {~uint64_t(0), ~uint64_t(0)};
  C.orWords(Full, 2);
  EXPECT_EQ(C.count(), 128u);
  EXPECT_EQ(C.popcount(), 128u);
}

TEST(DenseBitset, ContainsAllAndEquality) {
  DenseBitset A(64), B(64);
  A.insert(3);
  A.insert(9);
  B.insert(3);
  EXPECT_TRUE(A.containsAll(B));
  EXPECT_FALSE(B.containsAll(A));
  B.insert(9);
  EXPECT_TRUE(A == B);
}

//===----------------------------------------------------------------------===//
// U64Set / U64Map
//===----------------------------------------------------------------------===//

TEST(U64Set, InsertAndGrow) {
  U64Set S;
  for (uint64_t I = 1; I <= 5000; ++I)
    EXPECT_TRUE(S.insert(I * 2654435761u));
  for (uint64_t I = 1; I <= 5000; ++I)
    EXPECT_FALSE(S.insert(I * 2654435761u));
  EXPECT_EQ(S.size(), 5000u);
  EXPECT_TRUE(S.contains(2654435761u));
  EXPECT_FALSE(S.contains(12345));
}

TEST(U64Map, LookupOrInsert) {
  U64Map M;
  for (uint64_t I = 1; I <= 3000; ++I) {
    uint32_t &Slot = M.lookupOrInsert(I, ~0u);
    EXPECT_EQ(Slot, ~0u);
    Slot = static_cast<uint32_t>(I * 3);
  }
  for (uint64_t I = 1; I <= 3000; ++I) {
    EXPECT_EQ(M.lookup(I, 0), I * 3);
    EXPECT_EQ(M.lookupOrInsert(I, ~0u), I * 3);
  }
  EXPECT_EQ(M.lookup(999999, 42u), 42u);
  EXPECT_EQ(M.size(), 3000u);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "23456"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("long-name"), std::string::npos);
  // Every line has the same length (header, separator, rows).
  size_t FirstLine = Out.find('\n');
  std::string Header = Out.substr(0, FirstLine);
  size_t Pos = FirstLine + 1;
  while (Pos < Out.size()) {
    size_t Next = Out.find('\n', Pos);
    EXPECT_EQ(Next - Pos, Header.size()) << Out;
    Pos = Next + 1;
  }
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(uint64_t(42)), "42");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, RendersLineAndColumn) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 14}, "something went wrong");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.render(), "3:14: something went wrong\n");
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, AvalancheSmoke) {
  // Nearby keys hash far apart (weak but useful sanity check).
  EXPECT_NE(hashU64(1), hashU64(2));
  EXPECT_NE(hashU64(1) >> 32, hashU64(2) >> 32);
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

//===----------------------------------------------------------------------===//
// Status
//===----------------------------------------------------------------------===//

TEST(Status, DefaultAndFactoriesCarryTheirCode) {
  EXPECT_TRUE(Status().isOk());
  EXPECT_TRUE(Status::ok().isOk());
  EXPECT_EQ(Status::cancelled("stop"), StatusCode::Cancelled);
  EXPECT_EQ(Status::deadlineExceeded("late"), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Status::resourceExhausted("budget"),
            StatusCode::ResourceExhausted);
  EXPECT_EQ(Status::outOfMemory("alloc"), StatusCode::OutOfMemory);
  EXPECT_EQ(Status::failedPrecondition("order"),
            StatusCode::FailedPrecondition);
  EXPECT_EQ(Status::invalidArgument("flag"), StatusCode::InvalidArgument);
}

TEST(Status, ToStringNamesTheCodeAndKeepsTheMessage) {
  Status S = Status::deadlineExceeded("close ran out of time");
  EXPECT_FALSE(S.isOk());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "close ran out of time");
  EXPECT_NE(S.toString().find("deadline-exceeded"), std::string::npos);
  EXPECT_NE(S.toString().find("close ran out of time"), std::string::npos);
}

TEST(Status, CodeNamesAreStableStrings) {
  EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
  EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(statusCodeName(StatusCode::FailedPrecondition),
               "failed-precondition");
}

//===----------------------------------------------------------------------===//
// Deadline and CancellationToken
//===----------------------------------------------------------------------===//

TEST(Deadline, InfiniteNeverExpires) {
  Deadline D = Deadline::infinite();
  EXPECT_TRUE(D.isInfinite());
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingMillis(), 1000000);
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  Deadline D = Deadline::afterMillis(0);
  EXPECT_FALSE(D.isInfinite());
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingMillis(), 0);
}

TEST(Deadline, GenerousBudgetIsNotYetExpired) {
  Deadline D = Deadline::afterMillis(60000);
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingMillis(), 0);
}

TEST(CancellationToken, DefaultIsUnarmedAndNeverCancelled) {
  CancellationToken T;
  EXPECT_FALSE(T.armed());
  EXPECT_FALSE(T.cancelled());
  T.requestCancel(); // no-op on an unarmed token
  EXPECT_FALSE(T.cancelled());
}

TEST(CancellationToken, CancelPropagatesAcrossCopies) {
  CancellationToken T = CancellationToken::create();
  EXPECT_TRUE(T.armed());
  CancellationToken Copy = T;
  EXPECT_FALSE(Copy.cancelled());
  T.requestCancel();
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(Copy.cancelled());
}

} // namespace
