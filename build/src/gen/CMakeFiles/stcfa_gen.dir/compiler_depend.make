# Empty compiler generated dependencies file for stcfa_gen.
# This may be replaced when dependencies are built.
