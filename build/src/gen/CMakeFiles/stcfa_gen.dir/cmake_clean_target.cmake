file(REMOVE_RECURSE
  "libstcfa_gen.a"
)
