file(REMOVE_RECURSE
  "CMakeFiles/stcfa_gen.dir/Corpus.cpp.o"
  "CMakeFiles/stcfa_gen.dir/Corpus.cpp.o.d"
  "CMakeFiles/stcfa_gen.dir/Generators.cpp.o"
  "CMakeFiles/stcfa_gen.dir/Generators.cpp.o.d"
  "libstcfa_gen.a"
  "libstcfa_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
