
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/Corpus.cpp" "src/gen/CMakeFiles/stcfa_gen.dir/Corpus.cpp.o" "gcc" "src/gen/CMakeFiles/stcfa_gen.dir/Corpus.cpp.o.d"
  "/root/repo/src/gen/Generators.cpp" "src/gen/CMakeFiles/stcfa_gen.dir/Generators.cpp.o" "gcc" "src/gen/CMakeFiles/stcfa_gen.dir/Generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stcfa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
