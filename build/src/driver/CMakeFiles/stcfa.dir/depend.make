# Empty dependencies file for stcfa.
# This may be replaced when dependencies are built.
