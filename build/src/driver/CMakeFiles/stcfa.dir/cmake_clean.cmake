file(REMOVE_RECURSE
  "CMakeFiles/stcfa.dir/Main.cpp.o"
  "CMakeFiles/stcfa.dir/Main.cpp.o.d"
  "stcfa"
  "stcfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
