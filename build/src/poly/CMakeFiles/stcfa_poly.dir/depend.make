# Empty dependencies file for stcfa_poly.
# This may be replaced when dependencies are built.
