file(REMOVE_RECURSE
  "libstcfa_poly.a"
)
