file(REMOVE_RECURSE
  "CMakeFiles/stcfa_poly.dir/Polyvariant.cpp.o"
  "CMakeFiles/stcfa_poly.dir/Polyvariant.cpp.o.d"
  "libstcfa_poly.a"
  "libstcfa_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
