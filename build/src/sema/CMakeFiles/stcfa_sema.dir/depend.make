# Empty dependencies file for stcfa_sema.
# This may be replaced when dependencies are built.
