file(REMOVE_RECURSE
  "libstcfa_sema.a"
)
