file(REMOVE_RECURSE
  "CMakeFiles/stcfa_sema.dir/Infer.cpp.o"
  "CMakeFiles/stcfa_sema.dir/Infer.cpp.o.d"
  "libstcfa_sema.a"
  "libstcfa_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
