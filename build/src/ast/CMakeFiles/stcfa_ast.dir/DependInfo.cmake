
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Expr.cpp" "src/ast/CMakeFiles/stcfa_ast.dir/Expr.cpp.o" "gcc" "src/ast/CMakeFiles/stcfa_ast.dir/Expr.cpp.o.d"
  "/root/repo/src/ast/Printer.cpp" "src/ast/CMakeFiles/stcfa_ast.dir/Printer.cpp.o" "gcc" "src/ast/CMakeFiles/stcfa_ast.dir/Printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stcfa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/stcfa_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
