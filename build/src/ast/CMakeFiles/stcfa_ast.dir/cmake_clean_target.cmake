file(REMOVE_RECURSE
  "libstcfa_ast.a"
)
