# Empty compiler generated dependencies file for stcfa_ast.
# This may be replaced when dependencies are built.
