file(REMOVE_RECURSE
  "CMakeFiles/stcfa_ast.dir/Expr.cpp.o"
  "CMakeFiles/stcfa_ast.dir/Expr.cpp.o.d"
  "CMakeFiles/stcfa_ast.dir/Printer.cpp.o"
  "CMakeFiles/stcfa_ast.dir/Printer.cpp.o.d"
  "libstcfa_ast.a"
  "libstcfa_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
