file(REMOVE_RECURSE
  "libstcfa_analysis.a"
)
