# Empty compiler generated dependencies file for stcfa_analysis.
# This may be replaced when dependencies are built.
