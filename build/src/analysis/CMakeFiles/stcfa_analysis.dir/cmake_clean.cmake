file(REMOVE_RECURSE
  "CMakeFiles/stcfa_analysis.dir/DeadCodeAwareCFA.cpp.o"
  "CMakeFiles/stcfa_analysis.dir/DeadCodeAwareCFA.cpp.o.d"
  "CMakeFiles/stcfa_analysis.dir/HybridCFA.cpp.o"
  "CMakeFiles/stcfa_analysis.dir/HybridCFA.cpp.o.d"
  "CMakeFiles/stcfa_analysis.dir/StandardCFA.cpp.o"
  "CMakeFiles/stcfa_analysis.dir/StandardCFA.cpp.o.d"
  "libstcfa_analysis.a"
  "libstcfa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
