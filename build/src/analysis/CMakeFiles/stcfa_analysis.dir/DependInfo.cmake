
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/DeadCodeAwareCFA.cpp" "src/analysis/CMakeFiles/stcfa_analysis.dir/DeadCodeAwareCFA.cpp.o" "gcc" "src/analysis/CMakeFiles/stcfa_analysis.dir/DeadCodeAwareCFA.cpp.o.d"
  "/root/repo/src/analysis/HybridCFA.cpp" "src/analysis/CMakeFiles/stcfa_analysis.dir/HybridCFA.cpp.o" "gcc" "src/analysis/CMakeFiles/stcfa_analysis.dir/HybridCFA.cpp.o.d"
  "/root/repo/src/analysis/StandardCFA.cpp" "src/analysis/CMakeFiles/stcfa_analysis.dir/StandardCFA.cpp.o" "gcc" "src/analysis/CMakeFiles/stcfa_analysis.dir/StandardCFA.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/stcfa_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stcfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/stcfa_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stcfa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
