file(REMOVE_RECURSE
  "CMakeFiles/stcfa_types.dir/Type.cpp.o"
  "CMakeFiles/stcfa_types.dir/Type.cpp.o.d"
  "libstcfa_types.a"
  "libstcfa_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
