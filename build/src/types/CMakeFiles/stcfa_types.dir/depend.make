# Empty dependencies file for stcfa_types.
# This may be replaced when dependencies are built.
