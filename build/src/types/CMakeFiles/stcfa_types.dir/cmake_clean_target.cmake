file(REMOVE_RECURSE
  "libstcfa_types.a"
)
