# Empty compiler generated dependencies file for stcfa_types.
# This may be replaced when dependencies are built.
