# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ast")
subdirs("parser")
subdirs("types")
subdirs("sema")
subdirs("analysis")
subdirs("unify")
subdirs("core")
subdirs("apps")
subdirs("poly")
subdirs("gen")
subdirs("interp")
subdirs("driver")
