file(REMOVE_RECURSE
  "libstcfa_core.a"
)
