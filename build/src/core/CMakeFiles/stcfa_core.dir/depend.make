# Empty dependencies file for stcfa_core.
# This may be replaced when dependencies are built.
