file(REMOVE_RECURSE
  "CMakeFiles/stcfa_core.dir/Compression.cpp.o"
  "CMakeFiles/stcfa_core.dir/Compression.cpp.o.d"
  "CMakeFiles/stcfa_core.dir/Reachability.cpp.o"
  "CMakeFiles/stcfa_core.dir/Reachability.cpp.o.d"
  "CMakeFiles/stcfa_core.dir/SubtransitiveGraph.cpp.o"
  "CMakeFiles/stcfa_core.dir/SubtransitiveGraph.cpp.o.d"
  "libstcfa_core.a"
  "libstcfa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
