file(REMOVE_RECURSE
  "libstcfa_support.a"
)
