# Empty dependencies file for stcfa_support.
# This may be replaced when dependencies are built.
