file(REMOVE_RECURSE
  "CMakeFiles/stcfa_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/stcfa_support.dir/TablePrinter.cpp.o.d"
  "libstcfa_support.a"
  "libstcfa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
