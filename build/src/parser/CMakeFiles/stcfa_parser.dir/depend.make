# Empty dependencies file for stcfa_parser.
# This may be replaced when dependencies are built.
