file(REMOVE_RECURSE
  "CMakeFiles/stcfa_parser.dir/Lexer.cpp.o"
  "CMakeFiles/stcfa_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/stcfa_parser.dir/Parser.cpp.o"
  "CMakeFiles/stcfa_parser.dir/Parser.cpp.o.d"
  "libstcfa_parser.a"
  "libstcfa_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
