file(REMOVE_RECURSE
  "libstcfa_parser.a"
)
