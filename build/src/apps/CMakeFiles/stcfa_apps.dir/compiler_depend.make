# Empty compiler generated dependencies file for stcfa_apps.
# This may be replaced when dependencies are built.
