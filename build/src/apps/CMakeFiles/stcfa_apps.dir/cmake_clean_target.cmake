file(REMOVE_RECURSE
  "libstcfa_apps.a"
)
