file(REMOVE_RECURSE
  "CMakeFiles/stcfa_apps.dir/CallGraph.cpp.o"
  "CMakeFiles/stcfa_apps.dir/CallGraph.cpp.o.d"
  "CMakeFiles/stcfa_apps.dir/EffectsAnalysis.cpp.o"
  "CMakeFiles/stcfa_apps.dir/EffectsAnalysis.cpp.o.d"
  "CMakeFiles/stcfa_apps.dir/KLimitedCFA.cpp.o"
  "CMakeFiles/stcfa_apps.dir/KLimitedCFA.cpp.o.d"
  "libstcfa_apps.a"
  "libstcfa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
