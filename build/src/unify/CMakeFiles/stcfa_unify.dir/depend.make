# Empty dependencies file for stcfa_unify.
# This may be replaced when dependencies are built.
