file(REMOVE_RECURSE
  "libstcfa_unify.a"
)
