file(REMOVE_RECURSE
  "CMakeFiles/stcfa_unify.dir/UnificationCFA.cpp.o"
  "CMakeFiles/stcfa_unify.dir/UnificationCFA.cpp.o.d"
  "libstcfa_unify.a"
  "libstcfa_unify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_unify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
