file(REMOVE_RECURSE
  "libstcfa_interp.a"
)
