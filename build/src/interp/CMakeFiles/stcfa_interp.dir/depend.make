# Empty dependencies file for stcfa_interp.
# This may be replaced when dependencies are built.
