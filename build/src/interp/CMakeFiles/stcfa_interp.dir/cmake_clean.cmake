file(REMOVE_RECURSE
  "CMakeFiles/stcfa_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/stcfa_interp.dir/Interpreter.cpp.o.d"
  "libstcfa_interp.a"
  "libstcfa_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stcfa_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
