# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_purity_checker "/root/repo/build/examples/purity_checker")
set_tests_properties(example_purity_checker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inlining_advisor "/root/repo/build/examples/inlining_advisor")
set_tests_properties(example_inlining_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analysis_tour "/root/repo/build/examples/analysis_tour")
set_tests_properties(example_analysis_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dead_code_reporter "/root/repo/build/examples/dead_code_reporter")
set_tests_properties(example_dead_code_reporter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
