# Empty dependencies file for inlining_advisor.
# This may be replaced when dependencies are built.
