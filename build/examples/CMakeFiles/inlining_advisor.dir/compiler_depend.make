# Empty compiler generated dependencies file for inlining_advisor.
# This may be replaced when dependencies are built.
