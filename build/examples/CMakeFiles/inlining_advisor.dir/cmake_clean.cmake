file(REMOVE_RECURSE
  "CMakeFiles/inlining_advisor.dir/inlining_advisor.cpp.o"
  "CMakeFiles/inlining_advisor.dir/inlining_advisor.cpp.o.d"
  "inlining_advisor"
  "inlining_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlining_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
