file(REMOVE_RECURSE
  "CMakeFiles/analysis_tour.dir/analysis_tour.cpp.o"
  "CMakeFiles/analysis_tour.dir/analysis_tour.cpp.o.d"
  "analysis_tour"
  "analysis_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
