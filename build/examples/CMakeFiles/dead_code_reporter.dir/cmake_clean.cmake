file(REMOVE_RECURSE
  "CMakeFiles/dead_code_reporter.dir/dead_code_reporter.cpp.o"
  "CMakeFiles/dead_code_reporter.dir/dead_code_reporter.cpp.o.d"
  "dead_code_reporter"
  "dead_code_reporter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dead_code_reporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
