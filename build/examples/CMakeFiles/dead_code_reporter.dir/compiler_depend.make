# Empty compiler generated dependencies file for dead_code_reporter.
# This may be replaced when dependencies are built.
