# Empty dependencies file for purity_checker.
# This may be replaced when dependencies are built.
