file(REMOVE_RECURSE
  "CMakeFiles/purity_checker.dir/purity_checker.cpp.o"
  "CMakeFiles/purity_checker.dir/purity_checker.cpp.o.d"
  "purity_checker"
  "purity_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purity_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
