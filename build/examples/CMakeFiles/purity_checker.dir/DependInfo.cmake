
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/purity_checker.cpp" "examples/CMakeFiles/purity_checker.dir/purity_checker.cpp.o" "gcc" "examples/CMakeFiles/purity_checker.dir/purity_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/stcfa_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/stcfa_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stcfa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stcfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/stcfa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/unify/CMakeFiles/stcfa_unify.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/stcfa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/stcfa_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/stcfa_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/stcfa_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/stcfa_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stcfa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
