
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/core_graph_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/core_graph_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/core_graph_test.cpp.o.d"
  "/root/repo/tests/dynamic_soundness_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/dynamic_soundness_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/dynamic_soundness_test.cpp.o.d"
  "/root/repo/tests/equivalence_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/equivalence_test.cpp.o.d"
  "/root/repo/tests/generators_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/generators_test.cpp.o.d"
  "/root/repo/tests/hybrid_compression_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/hybrid_compression_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/hybrid_compression_test.cpp.o.d"
  "/root/repo/tests/interp_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/interp_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/interp_test.cpp.o.d"
  "/root/repo/tests/mutual_recursion_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/mutual_recursion_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/mutual_recursion_test.cpp.o.d"
  "/root/repo/tests/paper_examples_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/paper_examples_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/paper_examples_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/poly_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/poly_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/poly_test.cpp.o.d"
  "/root/repo/tests/property_equivalence_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/property_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/property_equivalence_test.cpp.o.d"
  "/root/repo/tests/roundtrip_property_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/roundtrip_property_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/roundtrip_property_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/types_infer_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/types_infer_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/types_infer_test.cpp.o.d"
  "/root/repo/tests/unify_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/unify_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/unify_test.cpp.o.d"
  "/root/repo/tests/variants_test.cpp" "tests/CMakeFiles/stcfa_tests.dir/variants_test.cpp.o" "gcc" "tests/CMakeFiles/stcfa_tests.dir/variants_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/stcfa_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/stcfa_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/stcfa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stcfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/stcfa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/unify/CMakeFiles/stcfa_unify.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/stcfa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/stcfa_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/stcfa_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/stcfa_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/stcfa_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stcfa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
