# Empty dependencies file for stcfa_tests.
# This may be replaced when dependencies are built.
