# Empty compiler generated dependencies file for bench_constants.
# This may be replaced when dependencies are built.
