file(REMOVE_RECURSE
  "CMakeFiles/bench_constants.dir/bench_constants.cpp.o"
  "CMakeFiles/bench_constants.dir/bench_constants.cpp.o.d"
  "bench_constants"
  "bench_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
