# Empty compiler generated dependencies file for bench_congruence.
# This may be replaced when dependencies are built.
