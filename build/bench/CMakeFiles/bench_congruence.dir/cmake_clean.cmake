file(REMOVE_RECURSE
  "CMakeFiles/bench_congruence.dir/bench_congruence.cpp.o"
  "CMakeFiles/bench_congruence.dir/bench_congruence.cpp.o.d"
  "bench_congruence"
  "bench_congruence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_congruence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
