# Empty compiler generated dependencies file for bench_polyvariance.
# This may be replaced when dependencies are built.
