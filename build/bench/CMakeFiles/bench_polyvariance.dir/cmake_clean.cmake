file(REMOVE_RECURSE
  "CMakeFiles/bench_polyvariance.dir/bench_polyvariance.cpp.o"
  "CMakeFiles/bench_polyvariance.dir/bench_polyvariance.cpp.o.d"
  "bench_polyvariance"
  "bench_polyvariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polyvariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
