file(REMOVE_RECURSE
  "CMakeFiles/bench_klimited.dir/bench_klimited.cpp.o"
  "CMakeFiles/bench_klimited.dir/bench_klimited.cpp.o.d"
  "bench_klimited"
  "bench_klimited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_klimited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
