# Empty dependencies file for bench_klimited.
# This may be replaced when dependencies are built.
