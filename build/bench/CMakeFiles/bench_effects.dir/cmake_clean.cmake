file(REMOVE_RECURSE
  "CMakeFiles/bench_effects.dir/bench_effects.cpp.o"
  "CMakeFiles/bench_effects.dir/bench_effects.cpp.o.d"
  "bench_effects"
  "bench_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
