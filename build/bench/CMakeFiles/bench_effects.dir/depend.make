# Empty dependencies file for bench_effects.
# This may be replaced when dependencies are built.
