file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cubic.dir/bench_table1_cubic.cpp.o"
  "CMakeFiles/bench_table1_cubic.dir/bench_table1_cubic.cpp.o.d"
  "bench_table1_cubic"
  "bench_table1_cubic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cubic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
