# Empty dependencies file for bench_table1_cubic.
# This may be replaced when dependencies are built.
