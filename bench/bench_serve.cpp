//===-- bench/bench_serve.cpp - Daemon request-latency percentiles --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-latency benchmark for `--serve` mode (docs/SERVE.md).  Runs an
/// in-process daemon over pipe pairs — the same byte-level protocol a
/// client sees, minus process spawn — and measures the round trip of each
/// request individually: write the line, block until the reply line.
///
///   * Table 1 — per program: one-time `load` cost, then p50/p95/p99 over
///     a sweep of `labels` queries at rotating expressions, plus single
///     `all-labels` and `lint` round trips.
///
/// Emits `BENCH_serve.json` so CI can diff tail latencies across
/// revisions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Generators.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

/// In-process daemon over two pipe pairs.  Requests go down Req, replies
/// come back up Rep; the run loop executes on its own thread, exactly as
/// the driver wires it, so the measured path includes parse, dispatch,
/// admission, the worker hop, and reply serialization.
class ServeDaemon {
public:
  explicit ServeDaemon(serve::ServeOptions Opts = {}) {
    if (pipe(Req) != 0 || pipe(Rep) != 0) {
      std::perror("pipe");
      std::abort();
    }
    Daemon = std::make_unique<serve::Server>(Req[0], Rep[1], Opts);
    Runner = std::thread([this] { Daemon->run(); });
    In = fdopen(Rep[0], "r");
  }

  ~ServeDaemon() {
    close(Req[1]); // EOF -> the run loop drains and returns
    Runner.join();
    if (In)
      fclose(In); // closes Rep[0]
    close(Req[0]);
    close(Rep[1]);
  }

  /// One full round trip: write the request line, block for the reply
  /// line.  The single-request-in-flight discipline keeps the measured
  /// time attributable to this request alone.
  std::string roundTrip(const std::string &Request) {
    std::string Line = Request + "\n";
    ssize_t W = write(Req[1], Line.data(), Line.size());
    if (W != static_cast<ssize_t>(Line.size())) {
      std::fprintf(stderr, "bench_serve: short write\n");
      std::abort();
    }
    char *Buf = nullptr;
    size_t Cap = 0;
    ssize_t N = getline(&Buf, &Cap, In);
    std::string Reply = N > 0 ? std::string(Buf, static_cast<size_t>(N))
                              : std::string();
    free(Buf);
    return Reply;
  }

private:
  int Req[2] = {-1, -1};
  int Rep[2] = {-1, -1};
  std::unique_ptr<serve::Server> Daemon;
  std::thread Runner;
  std::FILE *In = nullptr;
};

std::string requestLine(int Id, const char *Verb, serve::JsonValue Params) {
  serve::JsonValue R = serve::JsonValue::object();
  R.set("id", serve::JsonValue::number(int64_t(Id)));
  R.set("verb", serve::JsonValue::string(Verb));
  R.set("params", std::move(Params));
  return serve::renderJson(R);
}

std::string loadLine(int Id, const std::string &Source) {
  serve::JsonValue P = serve::JsonValue::object();
  P.set("source", serve::JsonValue::string(Source));
  return requestLine(Id, "load", std::move(P));
}

std::string labelsLine(int Id, uint32_t Expr) {
  serve::JsonValue P = serve::JsonValue::object();
  P.set("kind", serve::JsonValue::string("labels"));
  P.set("expr", serve::JsonValue::number(int64_t(Expr)));
  return requestLine(Id, "query", std::move(P));
}

/// Aborts on an error reply so a red bench can't masquerade as a fast
/// one, and returns `result.exprs` from load replies (0 otherwise).
uint32_t checkReply(const std::string &Reply) {
  serve::JsonValue V;
  if (!serve::parseJson(Reply, V).isOk() || !V.field("ok") ||
      !V.field("ok")->asBool()) {
    std::fprintf(stderr, "bench_serve: error reply: %s", Reply.c_str());
    std::abort();
  }
  const serve::JsonValue *Result = V.field("result");
  const serve::JsonValue *Exprs = Result ? Result->field("exprs") : nullptr;
  return Exprs && Exprs->isInt() ? static_cast<uint32_t>(Exprs->asInt()) : 0;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P / 100.0 *
                                     static_cast<double>(Sorted.size() - 1) +
                                     0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

void printPaperTables() {
  std::printf("== Serve-mode request latency (in-process pipe) ==\n");
  TablePrinter Table({"prog", "exprs", "load(ms)", "queries", "p50(ms)",
                      "p95(ms)", "p99(ms)", "all-labels(ms)", "lint(ms)"});
  JsonReport Report("serve");

  struct Prog {
    std::string Name;
    std::string Source;
  };
  const Prog Progs[] = {{"cubic:16", makeCubicFamily(16)},
                        {"cubic:64", makeCubicFamily(64)},
                        {"joinpoint:64", makeJoinPointFamily(64)}};
  constexpr int kQueries = 200;

  for (const Prog &P : Progs) {
    ServeDaemon D;
    int Id = 0;

    Timer LoadTimer;
    uint32_t Exprs = checkReply(D.roundTrip(loadLine(++Id, P.Source)));
    double LoadMs = LoadTimer.millis();

    // Warm-up pass so first-touch page faults land outside the sweep.
    for (int I = 0; I != 8; ++I)
      checkReply(D.roundTrip(labelsLine(++Id, uint32_t(I) % Exprs)));

    std::vector<double> Millis;
    Millis.reserve(kQueries);
    for (int I = 0; I != kQueries; ++I) {
      Timer T;
      std::string Reply =
          D.roundTrip(labelsLine(++Id, uint32_t(I * 7) % Exprs));
      Millis.push_back(T.millis());
      checkReply(Reply);
    }
    std::sort(Millis.begin(), Millis.end());
    double P50 = percentile(Millis, 50), P95 = percentile(Millis, 95),
           P99 = percentile(Millis, 99);

    serve::JsonValue AllParams = serve::JsonValue::object();
    AllParams.set("kind", serve::JsonValue::string("all-labels"));
    Timer AllTimer;
    checkReply(
        D.roundTrip(requestLine(++Id, "query", std::move(AllParams))));
    double AllMs = AllTimer.millis();

    Timer LintTimer;
    checkReply(
        D.roundTrip(requestLine(++Id, "lint", serve::JsonValue::object())));
    double LintMs = LintTimer.millis();

    Table.addRow({P.Name, TablePrinter::num(uint64_t(Exprs)),
                  TablePrinter::num(LoadMs),
                  TablePrinter::num(uint64_t(kQueries)),
                  TablePrinter::num(P50), TablePrinter::num(P95),
                  TablePrinter::num(P99), TablePrinter::num(AllMs),
                  TablePrinter::num(LintMs)});
    Report.record("serve_latency")
        .add("prog", P.Name)
        .add("exprs", Exprs)
        .add("load_ms", LoadMs)
        .add("queries", kQueries)
        .add("p50_ms", P50)
        .add("p95_ms", P95)
        .add("p99_ms", P99)
        .add("all_labels_ms", AllMs)
        .add("lint_ms", LintMs);
  }

  std::printf("%s\n", Table.render().c_str());
}

void BM_ServeLabelsRoundTrip(benchmark::State &State) {
  ServeDaemon D;
  int Id = 0;
  uint32_t Exprs = checkReply(D.roundTrip(
      loadLine(++Id, makeCubicFamily(static_cast<int>(State.range(0))))));
  uint32_t Expr = 0;
  for (auto _ : State) {
    std::string Reply = D.roundTrip(labelsLine(++Id, Expr++ % Exprs));
    benchmark::DoNotOptimize(Reply.data());
  }
}
BENCHMARK(BM_ServeLabelsRoundTrip)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
