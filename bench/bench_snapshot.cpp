//===-- bench/bench_snapshot.cpp - Persistent snapshot round trip ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence benchmark: what does an mmap-warm start save over the
/// cold pipeline?
///
///   * Table 1 — per program: the cold path (parse + infer + build +
///     close + freeze), the one-time snapshot write (kernel closure
///     included), and the warm path (mmap + validate + first root-label
///     query), with the warm/cold speedup and the file size.
///
/// Emits `BENCH_snapshot.json`.  `--snapshot-smoke` runs a
/// correctness-only check (loaded answers must be bit-exact against the
/// in-memory engine on cubic:100) and exits non-zero on any mismatch.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "snapshot/Snapshot.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <string_view>
#include <sys/stat.h>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

struct Workload {
  const char *Name;
  std::string Source;
};

std::vector<Workload> workloads() {
  return {{"cubic:100", makeCubicFamily(100)},
          {"cubic:200", makeCubicFamily(200)},
          {"lexgen", makeLexgenLike()}};
}

std::string snapPath(const char *Name) {
  std::string P = "bench_snapshot_";
  for (const char *C = Name; *C; ++C)
    P += (*C == ':') ? '_' : *C;
  return "/tmp/" + P + ".stcfa-snap";
}

/// The full cold path, parse through freeze; returns the frozen answer
/// count so the work cannot be optimized away.
uint64_t coldPipeline(const std::string &Source) {
  auto M = mustParse(Source);
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  QueryEngine Engine(F, 1);
  return Engine.labelsOf(M->root()).count();
}

template <typename FnT> double bestMillis(int Reps, FnT Fn) {
  double Best = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    Fn();
    double Ms = T.millis();
    if (I == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

void printPaperTables() {
  JsonReport Report("snapshot");

  std::printf("== persistent snapshots: cold pipeline vs mmap-warm load "
              "==\n");
  TablePrinter T1({"program", "exprs", "cold(ms)", "write(ms)", "load(ms)",
                   "speedup", "bytes"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);
    LabelSetKernel Kern(F, /*Threads=*/1);
    if (!Kern.run().isOk())
      std::abort();

    const std::string Path = snapPath(W.Name);
    constexpr int Reps = 9;
    // Cold: everything a warm load skips. Fewer reps — it dominates.
    double ColdMs = bestMillis(3, [&] {
      benchmark::DoNotOptimize(coldPipeline(W.Source));
    });
    double WriteMs = bestMillis(Reps, [&] {
      SnapshotWriteOptions WO;
      WO.Kernel = &Kern;
      if (!writeSnapshot(Path, F, *M, WO).isOk())
        std::abort();
    });
    // Warm: mmap + validate + engine + first query, end to end.
    double LoadMs = bestMillis(Reps, [&] {
      Status S = Status::ok();
      std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
      if (!Snap)
        std::abort();
      QueryEngine Engine(Snap->frozen(), 1);
      if (auto K = Snap->adoptKernel())
        Engine.adoptKernel(std::move(K));
      benchmark::DoNotOptimize(
          Engine.labelsOf(Snap->rootExpr()).count());
    });

    struct stat St = {};
    uint64_t Bytes = ::stat(Path.c_str(), &St) == 0 ? uint64_t(St.st_size)
                                                    : 0;
    double Speedup = LoadMs > 0 ? ColdMs / LoadMs : 0;
    T1.addRow({W.Name, std::to_string(M->numExprs()),
               TablePrinter::num(ColdMs), TablePrinter::num(WriteMs),
               TablePrinter::num(LoadMs), TablePrinter::num(Speedup, 1),
               std::to_string(Bytes)});
    Report.record("snapshot_round_trip")
        .add("program", std::string(W.Name))
        .add("exprs", M->numExprs())
        .add("cold_pipeline_ms", ColdMs)
        .add("write_ms", WriteMs)
        .add("mmap_load_ms", LoadMs)
        .add("speedup", Speedup)
        .add("file_bytes", Bytes);
    std::remove(Path.c_str());
  }
  std::printf("%s\n", T1.render().c_str());
}

/// Correctness-only gate for CI: every label set served from the mapped
/// snapshot must be bit-exact against the in-memory engine.
int snapshotSmoke() {
  const std::string Source = makeCubicFamily(100);
  auto M = mustParse(Source);
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  LabelSetKernel Kern(F, 1);
  if (!Kern.run().isOk()) {
    std::fprintf(stderr, "snapshot smoke: kernel closure failed\n");
    return 1;
  }
  const std::string Path = snapPath("smoke");
  SnapshotWriteOptions WO;
  WO.Kernel = &Kern;
  if (Status S = writeSnapshot(Path, F, *M, WO); !S.isOk()) {
    std::fprintf(stderr, "snapshot smoke: write failed: %s\n",
                 S.toString().c_str());
    return 1;
  }
  Status S = Status::ok();
  std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
  std::remove(Path.c_str());
  if (!Snap) {
    std::fprintf(stderr, "snapshot smoke: load failed: %s\n",
                 S.toString().c_str());
    return 1;
  }
  QueryEngine Mem(F, 1);
  QueryEngine Disk(Snap->frozen(), 1);
  if (auto K = Snap->adoptKernel())
    Disk.adoptKernel(std::move(K));
  std::vector<ExprId> Es;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Es.push_back(ExprId(I));
  std::vector<DenseBitset> DiskSets = Disk.labelsOfBatch(Es);
  for (uint32_t I = 0; I != M->numExprs(); ++I) {
    if (!(Mem.labelsOf(ExprId(I)) == DiskSets[I])) {
      std::fprintf(stderr,
                   "snapshot smoke: MISMATCH at occurrence %u\n", I);
      return 1;
    }
  }
  std::printf("snapshot smoke: %u label sets bit-exact after round "
              "trip\n",
              M->numExprs());
  return 0;
}

void BM_SnapshotLoad(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  const std::string Path = snapPath("bm");
  if (!writeSnapshot(Path, F, *M).isOk())
    std::abort();
  for (auto _ : State) {
    Status S = Status::ok();
    std::unique_ptr<LoadedSnapshot> Snap = LoadedSnapshot::load(Path, S);
    QueryEngine Engine(Snap->frozen(), 1);
    benchmark::DoNotOptimize(Engine.labelsOf(Snap->rootExpr()).count());
  }
  std::remove(Path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: `--snapshot-smoke` runs the correctness gate only, so
// ctest can wire it without paying for the timed tables.
int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::string_view(argv[I]) == "--snapshot-smoke")
      return snapshotSmoke();
  printPaperTables();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
