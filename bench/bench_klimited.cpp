//===-- bench/bench_klimited.cpp - E5: k-limited CFA and called-once ------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 9 (k-limited CFA) and the abstract's called-once analysis:
/// annotation propagation over the subtransitive graph versus computing
/// full label sets per call site with repeated reachability.
///
/// Expected shape: the k-limited pass is (near-)linear for fixed k, with
/// update counts bounded by (k+1)·edges, and is much cheaper than the
/// full-set pass on programs with large label sets.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/KLimitedCFA.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Section 9: k-limited CFA over the dispatch-chain family ==\n");
  TablePrinter Table({"sites", "exprs", "k", "klim(ms)", "updates",
                      "full-sets(ms)", "many call-sites"});
  for (int N : {16, 64, 256, 1024}) {
    auto M = mustParse(makeDispatchFamily(N));
    GraphRun G = runGraph(*M);
    for (uint32_t K : {1u, 3u}) {
      Timer T;
      KLimitedCFA KL(*G.Graph, K);
      KL.run();
      double KlMs = T.millis();

      uint32_t Many = 0;
      for (uint32_t I = 0; I != M->numExprs(); ++I)
        if (isa<AppExpr>(M->expr(ExprId(I))) &&
            KL.ofCallSite(ExprId(I)).isMany())
          ++Many;

      // The full-set alternative: reachability per call site.
      T.reset();
      Reachability R(*G.Graph);
      uint64_t Total = 0;
      for (uint32_t I = 0; I != M->numExprs(); ++I) {
        const auto *A = dyn_cast<AppExpr>(M->expr(ExprId(I)));
        if (A)
          Total += R.labelsOf(A->fn()).count();
      }
      double FullMs = T.millis();
      benchmark::DoNotOptimize(Total);

      Table.addRow({std::to_string(N), std::to_string(M->numExprs()),
                    std::to_string(K), TablePrinter::num(KlMs),
                    TablePrinter::num(KL.updates()),
                    TablePrinter::num(FullMs), std::to_string(Many)});
    }
  }
  std::printf("%s\n", Table.render().c_str());

  std::printf("== Called-once analysis over the called-once family ==\n");
  TablePrinter T2({"families", "labels", "once", "many", "time(ms)"});
  for (int N : {16, 64, 256, 1024}) {
    auto M = mustParse(makeCalledOnceFamily(N));
    GraphRun G = runGraph(*M);
    Timer T;
    CalledOnceAnalysis CO(*G.Graph);
    CO.run();
    double Ms = T.millis();
    uint32_t Once = static_cast<uint32_t>(CO.calledOnce().size());
    uint32_t Many = 0;
    for (uint32_t L = 0; L != M->numLabels(); ++L)
      if (CO.countOf(LabelId(L)) == CalledOnceAnalysis::CallCount::Many)
        ++Many;
    T2.addRow({std::to_string(N), std::to_string(M->numLabels()),
               std::to_string(Once), std::to_string(Many),
               TablePrinter::num(Ms)});
  }
  std::printf("%s\n", T2.render().c_str());
}

void BM_KLimited(benchmark::State &State) {
  auto M = mustParse(makeDispatchFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  for (auto _ : State) {
    KLimitedCFA KL(*G.Graph, static_cast<uint32_t>(State.range(1)));
    KL.run();
    benchmark::DoNotOptimize(KL.updates());
  }
}
BENCHMARK(BM_KLimited)
    ->Args({64, 1})
    ->Args({64, 5})
    ->Args({1024, 1})
    ->Args({1024, 5})
    ->Unit(benchmark::kMillisecond);

void BM_CalledOnce(benchmark::State &State) {
  auto M = mustParse(makeCalledOnceFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  for (auto _ : State) {
    CalledOnceAnalysis CO(*G.Graph);
    CO.run();
    benchmark::DoNotOptimize(CO.calledOnce().size());
  }
}
BENCHMARK(BM_CalledOnce)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
