//===-- bench/bench_table1_cubic.cpp - E2: the paper's Table 1 ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1: the parameterized benchmark that drives the
/// standard algorithm cubic.  Columns mirror the paper: program size, the
/// standard/SBA solve (time and machine-independent work units), the
/// subtransitive build phase (time, nodes), close phase (time, nodes),
/// and the quadratic query-all pass over all non-trivial applications.
///
/// Expected shape (the paper's claim): the standard algorithm's work grows
/// superlinearly (towards cubic) in the copy count, while build+close grow
/// linearly; the query-all column grows quadratically.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Table 1: parameterized cubic benchmark "
              "(paper Section 10) ==\n");
  TablePrinter Table({"copies", "exprs", "std(ms)", "std work", "build(ms)",
                      "build nodes", "close(ms)", "close nodes",
                      "query-all(ms)"});
  for (int N : {1, 2, 4, 8, 16, 32, 64, 128}) {
    auto M = mustParse(makeCubicFamily(N));
    StandardRun Std = runStandard(*M);
    GraphRun G = runGraph(*M);
    double QueryMs = queryAllApplications(*M, *G.Graph);
    Table.addRow({std::to_string(N), std::to_string(M->numExprs()),
                  TablePrinter::num(Std.TotalMs), TablePrinter::num(Std.Work),
                  TablePrinter::num(G.BuildMs),
                  TablePrinter::num(G.Stats.BuildNodes),
                  TablePrinter::num(G.CloseMs),
                  TablePrinter::num(G.Stats.CloseNodes),
                  TablePrinter::num(QueryMs)});
  }
  std::printf("%s\n", Table.render().c_str());

  // Growth factors: the headline claim in one line each.
  auto MSmall = mustParse(makeCubicFamily(16));
  auto MBig = mustParse(makeCubicFamily(64));
  StandardRun S1 = runStandard(*MSmall), S2 = runStandard(*MBig);
  GraphRun G1 = runGraph(*MSmall), G2 = runGraph(*MBig);
  std::printf("4x copies: std work x%.1f, graph edges x%.1f "
              "(linear would be x4.0)\n\n",
              double(S2.Work) / double(S1.Work),
              double(G2.Stats.totalEdges()) / double(G1.Stats.totalEdges()));
}

void BM_StandardCFA_Cubic(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  uint64_t Work = 0;
  for (auto _ : State) {
    StandardCFA CFA(*M);
    CFA.run();
    Work = CFA.stats().work();
    benchmark::DoNotOptimize(Work);
  }
  State.counters["work"] = static_cast<double>(Work);
  State.counters["exprs"] = M->numExprs();
}
BENCHMARK(BM_StandardCFA_Cubic)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Subtransitive_Cubic(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  uint64_t Edges = 0;
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    Edges = G.stats().totalEdges();
    benchmark::DoNotOptimize(Edges);
  }
  State.counters["edges"] = static_cast<double>(Edges);
  State.counters["exprs"] = M->numExprs();
}
BENCHMARK(BM_Subtransitive_Cubic)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_QueryAll_Cubic(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  SubtransitiveGraph G(*M);
  G.build();
  G.close();
  for (auto _ : State) {
    uint64_t Labels = 0;
    queryAllApplications(*M, G, &Labels);
    benchmark::DoNotOptimize(Labels);
  }
}
BENCHMARK(BM_QueryAll_Cubic)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
