//===-- bench/bench_delta.cpp - Incremental edit-delta benchmark ----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incrementality benchmark: what does the delta layer save over
/// reloading the program from scratch?
///
///   * Table 1 — per workload: the full load (parse + infer + build +
///     close + freeze + first query), one single-definition edit through
///     the delta path (apply + publish + first query), and the speedup.
///     The acceptance line in the issue: a single-definition edit must
///     be >= 10x faster than a full load on deep:512 and cubic:200.
///
///   * Table 2 — edit scripts touching 10% and 50% of the definitions,
///     amortized per edit, against the same full-load baseline.
///
/// Emits `BENCH_delta.json`.  `--delta-smoke` runs a correctness-only
/// gate (every published view along an edit script must be bit-exact
/// against a from-scratch rebuild) and exits non-zero on any mismatch.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "delta/DeltaSession.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"
#include "testgen/ShapeGen.h"

// The differential oracle the delta unit tests and fuzzer use; it has no
// gtest dependency, so the smoke gate shares it instead of growing a
// weaker copy.
#include "../tests/DeltaTestUtil.h"

#include <cstdio>
#include <functional>
#include <string_view>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

struct Workload {
  const char *Name;
  std::string Source;
  /// Names of definitions an edit script may target.
  std::vector<std::string> Targets;
  /// Replacement text for a target; \p Variant alternates so every rep
  /// applies a real change (never the definition's current text).
  std::function<std::string(const std::string &, int)> Text;
};

std::string deepProgram(int N) {
  ShapeSpec S;
  S.Shape = CondShape::Deep;
  S.N = N;
  return makeShapeProgram(S);
}

std::vector<Workload> workloads() {
  std::vector<Workload> Ws;

  // deep:512 — the cone of a mid-chain edit is a long path.  Targets
  // skip f0/f1 so both variants can reference two predecessors.
  {
    Workload W;
    W.Name = "deep:512";
    W.Source = deepProgram(512);
    for (int I = 2; I <= 512; ++I)
      W.Targets.push_back("f" + std::to_string(I));
    W.Text = [](const std::string &Name, int Variant) {
      int I = std::atoi(Name.c_str() + 1);
      // Variant 0 reroutes around the predecessor; variant 1 restores
      // the original shape's wiring.
      int To = Variant == 0 ? I - 2 : I - 1;
      return "let " + Name + " = fn x => f" + std::to_string(To) + " (x);";
    };
    Ws.push_back(std::move(W));
  }

  // cubic:200 — the paper's Section 10 family; `fs`/`bs` join all the
  // copies, so an edited f_i's cone crosses the shared parameters.
  for (int N : {100, 200}) {
    Workload W;
    W.Source = makeCubicFamily(N);
    W.Name = N == 100 ? "cubic:100" : "cubic:200";
    for (int I = 1; I <= N; ++I)
      W.Targets.push_back("f" + std::to_string(I));
    W.Text = [](const std::string &Name, int Variant) {
      // Both variants differ from the generated `fn x => x`.
      return "let " + Name + " = fn x => " +
             (Variant == 0 ? "fs" : "bs") + " (x);";
    };
    Ws.push_back(std::move(W));
  }
  return Ws;
}

/// The full-load baseline: everything an editor pays to reload from
/// scratch — parse, infer, build, close, freeze, first root query.
uint64_t fullLoad(const std::string &Source) {
  auto M = mustParse(Source);
  GraphRun G = runGraph(*M);
  Status FS = Status::ok();
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(*G.Graph, FS);
  if (!F)
    std::abort();
  QueryEngine Engine(*F, 1);
  return Engine.labelsOf(M->root()).count();
}

std::unique_ptr<DeltaSession> mustSession(const std::string &Source) {
  DeltaSession::Options O;
  Status S = Status::ok();
  std::unique_ptr<DeltaSession> Sess = DeltaSession::create(Source, O, S);
  if (!Sess || !Sess->incremental()) {
    std::fprintf(stderr, "bench_delta: session creation failed: %s\n",
                 S.toString().c_str());
    std::abort();
  }
  return Sess;
}

EditRequest replaceEdit(const std::string &Name, const std::string &Text) {
  EditRequest R;
  R.Kind = EditRequest::Op::Replace;
  R.Name = Name;
  R.Text = Text;
  return R;
}

/// One timed edit: apply + publish + first root query — the latency an
/// editor sees between a keystroke and a fresh answer.  Aborts if the
/// edit leaves the incremental envelope (these workloads must not).
double timedEdit(DeltaSession &Sess, const EditRequest &Req) {
  Timer T;
  ApplyResult Res;
  if (Status S = Sess.apply(Req, Res); !S.isOk()) {
    std::fprintf(stderr, "bench_delta: apply failed: %s\n",
                 S.toString().c_str());
    std::abort();
  }
  if (Res.NeedsFullPipeline) {
    std::fprintf(stderr, "bench_delta: edit left the incremental envelope\n");
    std::abort();
  }
  DeltaView V;
  if (!Sess.freezeView(V).isOk())
    std::abort();
  QueryEngine Engine(*V.Frozen, 1);
  benchmark::DoNotOptimize(
      Engine.labelsOf(ExprId(V.ExprToShadow[V.NumExprs - 1])).count());
  return T.millis();
}

template <typename FnT> double bestMillis(int Reps, FnT Fn) {
  double Best = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    Fn();
    double Ms = T.millis();
    if (I == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

void printPaperTables() {
  JsonReport Report("delta");

  std::printf("== incremental edits: delta apply vs full reload ==\n");
  TablePrinter T1({"program", "defs", "full-load(ms)", "edit(ms)", "speedup",
                   "accept>=10x"});
  bool AcceptAll = true;
  std::vector<Workload> Ws = workloads();
  for (const Workload &W : Ws) {
    double LoadMs = bestMillis(3, [&] {
      benchmark::DoNotOptimize(fullLoad(W.Source));
    });

    // One long-lived session; variants alternate so every rep applies a
    // real single-definition change to the middle of the program.
    std::unique_ptr<DeltaSession> Sess = mustSession(W.Source);
    const std::string &Mid = W.Targets[W.Targets.size() / 2];
    double EditMs = 0;
    constexpr int Reps = 9;
    for (int I = 0; I != Reps; ++I) {
      double Ms = timedEdit(*Sess, replaceEdit(Mid, W.Text(Mid, I % 2)));
      if (I == 0 || Ms < EditMs)
        EditMs = Ms;
    }

    double Speedup = EditMs > 0 ? LoadMs / EditMs : 0;
    // The acceptance gate only names the two big workloads; report the
    // small one for the trend line without gating on it.
    const bool Gated = std::string_view(W.Name) != "cubic:100";
    const bool Accept = !Gated || Speedup >= 10.0;
    AcceptAll = AcceptAll && Accept;
    T1.addRow({W.Name, std::to_string(Sess->numDefs()),
               TablePrinter::num(LoadMs), TablePrinter::num(EditMs),
               TablePrinter::num(Speedup, 1),
               Gated ? (Accept ? "yes" : "NO") : "-"});
    Report.record("single_edit")
        .add("program", std::string(W.Name))
        .add("defs", Sess->numDefs())
        .add("full_load_ms", LoadMs)
        .add("single_edit_ms", EditMs)
        .add("speedup", Speedup)
        .add("accepted", uint64_t(Accept));
  }
  std::printf("%s\n", T1.render().c_str());

  std::printf("== edit scripts: amortized cost per edit ==\n");
  TablePrinter T2({"program", "edits", "frac", "total(ms)", "per-edit(ms)",
                   "vs-load"});
  for (const Workload &W : Ws) {
    double LoadMs = bestMillis(3, [&] {
      benchmark::DoNotOptimize(fullLoad(W.Source));
    });
    for (double Frac : {0.10, 0.50}) {
      const size_t K = std::max<size_t>(1, size_t(W.Targets.size() * Frac));
      std::unique_ptr<DeltaSession> Sess = mustSession(W.Source);
      // Spread the K edits across the program rather than clustering.
      const size_t Stride = W.Targets.size() / K;
      Timer T;
      for (size_t I = 0; I != K; ++I) {
        const std::string &Name = W.Targets[(I * Stride) % W.Targets.size()];
        ApplyResult Res;
        if (!Sess->apply(replaceEdit(Name, W.Text(Name, 0)), Res).isOk() ||
            Res.NeedsFullPipeline)
          std::abort();
      }
      DeltaView V;
      if (!Sess->freezeView(V).isOk())
        std::abort();
      double TotalMs = T.millis();
      double PerEdit = TotalMs / double(K);
      T2.addRow({W.Name, std::to_string(K), TablePrinter::num(Frac, 2),
                 TablePrinter::num(TotalMs), TablePrinter::num(PerEdit),
                 TablePrinter::num(LoadMs > 0 ? TotalMs / LoadMs : 0, 2) +
                     "x"});
      Report.record("edit_script")
          .add("program", std::string(W.Name))
          .add("edits", uint64_t(K))
          .add("fraction", Frac)
          .add("total_ms", TotalMs)
          .add("per_edit_ms", PerEdit)
          .add("vs_full_load", LoadMs > 0 ? TotalMs / LoadMs : 0);
    }
  }
  std::printf("%s\n", T2.render().c_str());
  std::printf("acceptance (single edit >= 10x full load on deep:512 and "
              "cubic:200): %s\n",
              AcceptAll ? "PASS" : "FAIL");
}

/// Correctness-only gate for CI: every published view along a mixed edit
/// script must be bit-exact against a from-scratch rebuild.
int deltaSmoke() {
  Workload W;
  W.Source = makeCubicFamily(60);
  std::unique_ptr<DeltaSession> Sess = mustSession(W.Source);
  for (int I = 0; I != 8; ++I) {
    const std::string Name = "f" + std::to_string(7 * I + 3);
    const std::string Text = "let " + Name + " = fn x => " +
                             (I % 2 ? "fs" : "bs") + " (x);";
    ApplyResult Res;
    if (Status S = Sess->apply(replaceEdit(Name, Text), Res); !S.isOk()) {
      std::fprintf(stderr, "delta smoke: apply %d failed: %s\n", I,
                   S.toString().c_str());
      return 1;
    }
    if (Res.NeedsFullPipeline || !Sess->incremental()) {
      std::fprintf(stderr, "delta smoke: edit %d left the envelope\n", I);
      return 1;
    }
    std::string Diff = compareDeltaToFreshRebuild(
        *Sess, "delta smoke edit " + std::to_string(I));
    if (!Diff.empty()) {
      std::fprintf(stderr, "delta smoke: MISMATCH\n%s\n", Diff.c_str());
      return 1;
    }
  }
  std::printf("delta smoke: 8 edits on cubic:60 bit-exact against fresh "
              "rebuilds\n");
  return 0;
}

void BM_SingleEdit(benchmark::State &State) {
  const std::string Source = makeCubicFamily(static_cast<int>(State.range(0)));
  std::unique_ptr<DeltaSession> Sess = mustSession(Source);
  const std::string Name = "f" + std::to_string(State.range(0) / 2);
  int Variant = 0;
  for (auto _ : State) {
    ApplyResult Res;
    if (!Sess->apply(replaceEdit(Name, "let " + Name + " = fn x => " +
                                           (Variant ? "fs" : "bs") + " (x);"),
                     Res)
             .isOk())
      std::abort();
    Variant ^= 1;
    DeltaView V;
    if (!Sess->freezeView(V).isOk())
      std::abort();
    QueryEngine Engine(*V.Frozen, 1);
    benchmark::DoNotOptimize(
        Engine.labelsOf(ExprId(V.ExprToShadow[V.NumExprs - 1])).count());
  }
}
BENCHMARK(BM_SingleEdit)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

} // namespace

// Custom main: `--delta-smoke` runs the correctness gate only, so ctest
// can wire it without paying for the timed tables.
int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::string_view(argv[I]) == "--delta-smoke")
      return deltaSmoke();
  printPaperTables();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
