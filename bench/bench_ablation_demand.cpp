//===-- bench/bench_ablation_demand.cpp - E9: demand-driven closure -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the paper's key design choice: the demand-driven closure
/// rules (LC', Section 3).  We compare
///
///   * `paper`      — CLOSE-DOM'/CLOSE-RAN' fire only when the derived
///                    node has an incoming edge (the paper's LC');
///   * `nodeexists` — fire as soon as the derived node exists;
///   * `undemanded` — the unprimed LC: derived nodes are materialised
///                    eagerly along each node's type template.
///
/// All three produce identical label sets (tested); the question is how
/// many nodes/edges each adds.  Expected shape: paper <= nodeexists <<
/// undemanded.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Ablation: demand policies of the close phase ==\n");
  TablePrinter Table({"prog", "policy", "time(ms)", "nodes", "edges",
                      "rule firings"});
  struct Prog {
    std::string Name;
    std::string Source;
  };
  RandomProgramOptions O;
  O.Seed = 31;
  O.NumBindings = 400;
  O.UseDatatypes = false; // keep the undemanded template finite
  Prog Progs[] = {{"cubic:32", makeCubicFamily(32)},
                  {"lexgen:40", makeLexgenLike(40)},
                  {"random:400", makeRandomProgram(O)}};
  struct Policy {
    const char *Name;
    ClosurePolicy P;
  };
  for (const Prog &P : Progs) {
    auto M = mustParse(P.Source);
    for (Policy Pol : {Policy{"paper", ClosurePolicy::PaperExact},
                       Policy{"nodeexists", ClosurePolicy::NodeExists},
                       Policy{"undemanded", ClosurePolicy::Undemanded}}) {
      SubtransitiveConfig C;
      C.Policy = Pol.P;
      Timer T;
      SubtransitiveGraph G(*M, C);
      G.build();
      G.close();
      Table.addRow({P.Name, Pol.Name, TablePrinter::num(T.millis()),
                    TablePrinter::num(G.stats().totalNodes()),
                    TablePrinter::num(G.stats().totalEdges()),
                    TablePrinter::num(G.stats().CloseRuleFirings)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_ClosePolicy(benchmark::State &State) {
  RandomProgramOptions O;
  O.Seed = 31;
  O.NumBindings = static_cast<int>(State.range(0));
  O.UseDatatypes = false;
  auto M = mustParse(makeRandomProgram(O));
  auto Policy = static_cast<ClosurePolicy>(State.range(1));
  for (auto _ : State) {
    SubtransitiveConfig C;
    C.Policy = Policy;
    SubtransitiveGraph G(*M, C);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_ClosePolicy)
    ->Args({400, static_cast<int>(ClosurePolicy::PaperExact)})
    ->Args({400, static_cast<int>(ClosurePolicy::NodeExists)})
    ->Args({400, static_cast<int>(ClosurePolicy::Undemanded)})
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
