//===-- bench/bench_effects.cpp - E4: linear-time effects analysis --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 8: effects analysis directly on the subtransitive graph
/// (linear) versus the pipeline the paper contrasts against — run the
/// standard analysis, materialise label sets, then run the syntactic
/// effects fixpoint (at least quadratic).
///
/// Expected shape: identical answers; the graph-based pass scales linearly
/// in the wrapper-chain length while the reference pipeline grows
/// superlinearly.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "apps/EffectsAnalysis.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Section 8: effects analysis, graph vs std pipeline ==\n");
  TablePrinter Table({"chain", "exprs", "effectful", "graph(ms)",
                      "std pipeline(ms)", "agree"});
  for (int N : {8, 32, 128, 512, 2048}) {
    auto M = mustParse(makeEffectsFamily(N));

    Timer T;
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    EffectsAnalysis Fast(G);
    Fast.run();
    double FastMs = T.millis();

    T.reset();
    StandardCFA Std(*M);
    Std.run();
    EffectsAnalysisRef Ref(*M, Std);
    Ref.run();
    double RefMs = T.millis();

    bool Agree = Fast.numEffectful() == Ref.numEffectful();
    for (uint32_t I = 0; Agree && I != M->numExprs(); ++I)
      Agree = Fast.isEffectful(ExprId(I)) == Ref.isEffectful(ExprId(I));

    Table.addRow({std::to_string(N), std::to_string(M->numExprs()),
                  std::to_string(Fast.numEffectful()),
                  TablePrinter::num(FastMs), TablePrinter::num(RefMs),
                  Agree ? "yes" : "NO"});
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_Effects_Graph(benchmark::State &State) {
  auto M = mustParse(makeEffectsFamily(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    EffectsAnalysis E(G);
    E.run();
    benchmark::DoNotOptimize(E.numEffectful());
  }
}
BENCHMARK(BM_Effects_Graph)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_Effects_StdPipeline(benchmark::State &State) {
  auto M = mustParse(makeEffectsFamily(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    StandardCFA Std(*M);
    Std.run();
    EffectsAnalysisRef Ref(*M, Std);
    Ref.run();
    benchmark::DoNotOptimize(Ref.numEffectful());
  }
}
BENCHMARK(BM_Effects_StdPipeline)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
