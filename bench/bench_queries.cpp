//===-- bench/bench_queries.cpp - E1/E10: the Section 2 query table -------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 2 complexity table empirically: the four query
/// problems (`l ∈ L(e)?`, `L(e)`, `{e : l ∈ L(e)}`, all label sets) under
/// the standard algorithm (solve everything, then read) and the new
/// algorithm (build+close once, then graph reachability per query).
/// Also covers E10: the quadratic all-label-sets pass, naive vs.
/// SCC-condensed.
///
/// Expected shape: per-query cost for the new algorithm is roughly linear
/// in program size, while the standard algorithm pays its full
/// (superlinear) solve before the first answer.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Compression.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

std::string workload(int N) {
  RandomProgramOptions O;
  O.Seed = 7;
  O.NumBindings = N;
  return makeRandomProgram(O);
}

void printPaperTables() {
  JsonReport Report("queries");
  std::printf("== Section 2 query problems: standard vs subtransitive ==\n");
  TablePrinter Table({"bindings", "exprs", "std solve(ms)", "prep(ms)",
                      "isIn(us)", "L(e)(us)", "occurs(us)", "all(ms)",
                      "all-scc(ms)"});
  for (int N : {50, 100, 200, 400, 800}) {
    auto M = mustParse(workload(N));
    StandardRun Std = runStandard(*M);
    GraphRun G = runGraph(*M);
    Reachability R(*G.Graph);

    ExprId Root = M->root();
    LabelId L0(0);

    Timer T;
    constexpr int Reps = 50;
    for (int I = 0; I != Reps; ++I)
      benchmark::DoNotOptimize(R.isLabelIn(Root, L0));
    double IsInUs = T.millis() * 1000 / Reps;

    T.reset();
    for (int I = 0; I != Reps; ++I)
      benchmark::DoNotOptimize(R.labelsOf(Root).count());
    double LabelsUs = T.millis() * 1000 / Reps;

    T.reset();
    for (int I = 0; I != Reps; ++I)
      benchmark::DoNotOptimize(R.occurrencesOf(L0).size());
    double OccursUs = T.millis() * 1000 / Reps;

    T.reset();
    auto All = R.allLabelSets(/*UseScc=*/false);
    double AllMs = T.millis();
    T.reset();
    auto AllScc = R.allLabelSets(/*UseScc=*/true);
    double AllSccMs = T.millis();
    // The two all-sets strategies must agree.
    for (uint32_t I = 0; I != M->numExprs(); ++I) {
      if (!(All[I] == AllScc[I])) {
        std::fprintf(stderr, "all-label-sets mismatch at expr %u\n", I);
        std::abort();
      }
    }

    Table.addRow({std::to_string(N), std::to_string(M->numExprs()),
                  TablePrinter::num(Std.TotalMs),
                  TablePrinter::num(G.BuildMs + G.CloseMs),
                  TablePrinter::num(IsInUs), TablePrinter::num(LabelsUs),
                  TablePrinter::num(OccursUs), TablePrinter::num(AllMs),
                  TablePrinter::num(AllSccMs)});
    Report.record("section2")
        .add("bindings", N)
        .add("exprs", M->numExprs())
        .add("std_solve_ms", Std.TotalMs)
        .add("prep_ms", G.BuildMs + G.CloseMs)
        .add("is_in_us", IsInUs)
        .add("labels_of_us", LabelsUs)
        .add("occurs_us", OccursUs)
        .add("all_ms", AllMs)
        .add("all_scc_ms", AllSccMs);
  }
  std::printf("%s\n", Table.render().c_str());

  // Section 10's suggested improvement: chain compression of the query
  // graph ("many nodes have only one outgoing edge").
  std::printf("== Chain compression of the query graph ==\n");
  TablePrinter T2({"bindings", "nodes", "kept", "ratio", "L(e) raw(us)",
                   "L(e) compressed(us)"});
  for (int N : {100, 400, 800}) {
    auto M = mustParse(workload(N));
    GraphRun G = runGraph(*M);
    Reachability R(*G.Graph);
    CompressedGraph CG(*G.Graph);
    constexpr int Reps = 50;
    Timer T;
    for (int I = 0; I != Reps; ++I)
      benchmark::DoNotOptimize(R.labelsOf(M->root()).count());
    double RawUs = T.millis() * 1000 / Reps;
    T.reset();
    for (int I = 0; I != Reps; ++I)
      benchmark::DoNotOptimize(CG.labelsOf(M->root()).count());
    double CompUs = T.millis() * 1000 / Reps;
    T2.addRow({std::to_string(N),
               TablePrinter::num(uint64_t(CG.numOriginalNodes())),
               TablePrinter::num(uint64_t(CG.numKeptNodes())),
               TablePrinter::num(double(CG.numKeptNodes()) /
                                     CG.numOriginalNodes(),
                                 2),
               TablePrinter::num(RawUs), TablePrinter::num(CompUs)});
    Report.record("compression")
        .add("bindings", N)
        .add("nodes", uint64_t(CG.numOriginalNodes()))
        .add("kept", uint64_t(CG.numKeptNodes()))
        .add("labels_of_raw_us", RawUs)
        .add("labels_of_compressed_us", CompUs);
  }
  std::printf("%s\n", T2.render().c_str());
}

void BM_Query_IsLabelIn(benchmark::State &State) {
  auto M = mustParse(workload(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.isLabelIn(M->root(), LabelId(0)));
}
BENCHMARK(BM_Query_IsLabelIn)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_Query_LabelsOf(benchmark::State &State) {
  auto M = mustParse(workload(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.labelsOf(M->root()).count());
}
BENCHMARK(BM_Query_LabelsOf)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_Query_AllLabelSets(benchmark::State &State) {
  auto M = mustParse(workload(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  bool UseScc = State.range(1) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(R.allLabelSets(UseScc).size());
}
BENCHMARK(BM_Query_AllLabelSets)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
