//===-- bench/bench_table2_programs.cpp - E3: the paper's Table 2 ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2: realistic programs (life ~150 lines, lexgen ~1180
/// lines).  Columns: program, size (lines), SBA/standard total time, the
/// subtransitive build time and node count, close time and node count —
/// plus our unification baseline for context.
///
/// Expected shape: the subtransitive analysis beats the standard solve by
/// a small multiple (the paper reports 2.5–3x), and the close phase adds
/// no more nodes than the build phase on realistic programs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Corpus.h"
#include "support/TablePrinter.h"
#include "unify/UnificationCFA.h"

#include <algorithm>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

int countLines(const std::string &S) {
  return static_cast<int>(std::count(S.begin(), S.end(), '\n'));
}

double median3(double A, double B, double C) {
  return std::max(std::min(A, B), std::min(std::max(A, B), C));
}

void printPaperTables() {
  std::printf("== Table 2: realistic programs (paper Section 10) ==\n");
  TablePrinter Table({"prog", "lines", "std(ms)", "build(ms)", "build nodes",
                      "close(ms)", "close nodes", "speedup", "unify(ms)"});
  struct Row {
    const char *Name;
    std::string Source;
  };
  Row Rows[] = {{"life", lifeProgram()},
                {"lexgen", makeLexgenLike()},
                {"lexgen-x4", makeLexgenLike(380)}};
  for (const Row &P : Rows) {
    auto M = mustParse(P.Source);
    // Median of three runs, like the paper's best-of-10 but cheaper.
    StandardRun S1 = runStandard(*M), S2 = runStandard(*M),
                S3 = runStandard(*M);
    double StdMs = median3(S1.TotalMs, S2.TotalMs, S3.TotalMs);
    GraphRun G1 = runGraph(*M), G2 = runGraph(*M), G3 = runGraph(*M);
    double BuildMs = median3(G1.BuildMs, G2.BuildMs, G3.BuildMs);
    double CloseMs = median3(G1.CloseMs, G2.CloseMs, G3.CloseMs);

    Timer T;
    UnificationCFA U(*M);
    U.run();
    double UnifyMs = T.millis();

    Table.addRow(
        {P.Name, std::to_string(countLines(P.Source)),
         TablePrinter::num(StdMs), TablePrinter::num(BuildMs),
         TablePrinter::num(G1.Stats.BuildNodes), TablePrinter::num(CloseMs),
         TablePrinter::num(G1.Stats.CloseNodes),
         TablePrinter::num(StdMs / (BuildMs + CloseMs), 1) + "x",
         TablePrinter::num(UnifyMs)});
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_Standard_Life(benchmark::State &State) {
  auto M = mustParse(lifeProgram());
  for (auto _ : State) {
    StandardCFA CFA(*M);
    CFA.run();
    benchmark::DoNotOptimize(CFA.stats().Propagations);
  }
}
BENCHMARK(BM_Standard_Life)->Unit(benchmark::kMillisecond);

void BM_Subtransitive_Life(benchmark::State &State) {
  auto M = mustParse(lifeProgram());
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_Subtransitive_Life)->Unit(benchmark::kMillisecond);

void BM_Standard_Lexgen(benchmark::State &State) {
  auto M = mustParse(makeLexgenLike());
  for (auto _ : State) {
    StandardCFA CFA(*M);
    CFA.run();
    benchmark::DoNotOptimize(CFA.stats().Propagations);
  }
}
BENCHMARK(BM_Standard_Lexgen)->Unit(benchmark::kMillisecond);

void BM_Subtransitive_Lexgen(benchmark::State &State) {
  auto M = mustParse(makeLexgenLike());
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_Subtransitive_Lexgen)->Unit(benchmark::kMillisecond);

void BM_Unify_Lexgen(benchmark::State &State) {
  auto M = mustParse(makeLexgenLike());
  for (auto _ : State) {
    UnificationCFA U(*M);
    U.run();
    benchmark::DoNotOptimize(U.unions());
  }
}
BENCHMARK(BM_Unify_Lexgen)->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
