//===-- bench/bench_congruence.cpp - E7: the Section 6 congruences --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6's two datatype congruences: ≈1 (merge every node of a
/// datatype's type — linear classes) versus ≈2 (merge only deconstructor
/// nodes keyed by base node — up to quadratic classes, strictly more
/// precise), versus exact tracking (congruence off; termination then rests
/// on the depth widening for recursive traversals).
///
/// Precision is measured as the mean label-set size over expressions with
/// a non-empty set (smaller = more precise), cost as nodes/edges/time.
/// Expected shape: nodes(≈1) <= nodes(≈2); precision(≈1) <= precision(≈2)
/// <= precision(exact).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Generators.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

std::string datatypeWorkload(int N, uint64_t Seed) {
  RandomProgramOptions O;
  O.Seed = Seed;
  O.NumBindings = N;
  O.UseDatatypes = true;
  return makeRandomProgram(O);
}

struct Measured {
  double Ms;
  uint64_t Nodes;
  uint64_t Edges;
  uint64_t Widenings;
  double AvgSetSize;
};

Measured measure(const Module &M, CongruenceMode Mode) {
  SubtransitiveConfig C;
  C.Congruence = Mode;
  Timer T;
  SubtransitiveGraph G(M, C);
  G.build();
  G.close();
  Measured Out;
  Out.Ms = T.millis();
  Out.Nodes = G.stats().totalNodes();
  Out.Edges = G.stats().totalEdges();
  Out.Widenings = G.stats().Widenings;
  Reachability R(G);
  uint64_t Total = 0, NonEmpty = 0;
  for (uint32_t I = 0; I != M.numExprs(); ++I) {
    uint32_t Size = R.labelsOf(ExprId(I)).count();
    if (Size) {
      Total += Size;
      ++NonEmpty;
    }
  }
  Out.AvgSetSize = NonEmpty ? double(Total) / double(NonEmpty) : 0.0;
  return Out;
}

void printPaperTables() {
  std::printf("== Section 6 congruences on datatype-heavy programs ==\n");
  TablePrinter Table({"bindings", "mode", "time(ms)", "nodes", "edges",
                      "widenings", "avg |L(e)|"});
  for (int N : {100, 300, 900}) {
    auto M = mustParse(datatypeWorkload(N, 21));
    struct ModeRow {
      const char *Name;
      CongruenceMode Mode;
    };
    for (ModeRow MR : {ModeRow{"exact", CongruenceMode::None},
                       ModeRow{"~2 base+type", CongruenceMode::ByBaseAndType},
                       ModeRow{"~1 by type", CongruenceMode::ByType}}) {
      Measured R = measure(*M, MR.Mode);
      Table.addRow({std::to_string(N), MR.Name, TablePrinter::num(R.Ms),
                    TablePrinter::num(R.Nodes), TablePrinter::num(R.Edges),
                    TablePrinter::num(R.Widenings),
                    TablePrinter::num(R.AvgSetSize, 2)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_Congruence(benchmark::State &State) {
  auto M = mustParse(datatypeWorkload(static_cast<int>(State.range(0)), 21));
  auto Mode = static_cast<CongruenceMode>(State.range(1));
  for (auto _ : State) {
    SubtransitiveConfig C;
    C.Congruence = Mode;
    SubtransitiveGraph G(*M, C);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_Congruence)
    ->Args({300, static_cast<int>(CongruenceMode::None)})
    ->Args({300, static_cast<int>(CongruenceMode::ByType)})
    ->Args({300, static_cast<int>(CongruenceMode::ByBaseAndType)})
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
