//===-- bench/BenchUtil.h - Shared benchmark plumbing -----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: parse-or-abort, timed runs of
/// each analysis with their machine-independent counters, and the
/// standard `main` that first prints the paper-style table(s) and then
/// runs the registered google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_BENCH_BENCHUTIL_H
#define STCFA_BENCH_BENCHUTIL_H

#include "analysis/StandardCFA.h"
#include "core/Reachability.h"
#include "parser/Parser.h"
#include "sema/Infer.h"
#include "support/SimdOps.h"
#include "support/Timer.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace stcfa {
namespace bench {

/// The CPU model string from /proc/cpuinfo ("unknown" where absent) —
/// perf trajectories across BENCH_*.json files are only interpretable
/// with the hardware identity attached.
inline std::string cpuModel() {
  std::ifstream In("/proc/cpuinfo");
  for (std::string Line; std::getline(In, Line);) {
    if (Line.rfind("model name", 0) != 0)
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      break;
    size_t Start = Line.find_first_not_of(" \t", Colon + 1);
    return Start == std::string::npos ? "unknown" : Line.substr(Start);
  }
  return "unknown";
}

/// The widest row-OR path this machine supports (what the kernel would
/// use absent `STCFA_FORCE_SCALAR`).
inline const char *simdSupported() {
  if (simd::pathSupported(simd::Path::Avx512))
    return simd::pathName(simd::Path::Avx512);
  if (simd::pathSupported(simd::Path::Avx2))
    return simd::pathName(simd::Path::Avx2);
  return simd::pathName(simd::Path::Scalar);
}

/// Machine-readable companion to the printed tables: collects flat
/// records of numeric/string metrics and writes them as a JSON array to
/// `BENCH_<name>.json` in the working directory, so runs can be diffed
/// and plotted without scraping stdout.
///
/// \code
///   JsonReport Report("queries");
///   Report.record("table1")
///       .add("bindings", 100)
///       .add("prep_ms", PrepMs);
///   // written on destruction (or call write() explicitly)
/// \endcode
class JsonReport {
public:
  class Record {
  public:
    Record &add(const char *Key, double Value) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
      Fields.emplace_back(Key, Buf);
      return *this;
    }
    Record &add(const char *Key, uint64_t Value) {
      Fields.emplace_back(Key, std::to_string(Value));
      return *this;
    }
    Record &add(const char *Key, int Value) {
      return add(Key, static_cast<uint64_t>(Value));
    }
    Record &add(const char *Key, unsigned Value) {
      return add(Key, static_cast<uint64_t>(Value));
    }
    Record &add(const char *Key, const std::string &Value) {
      Fields.emplace_back(Key, "\"" + Value + "\"");
      return *this;
    }
    /// Embeds \p Json verbatim as the value — for pre-rendered objects
    /// like the metrics snapshot (`snapshotMetrics().toJson()`).
    Record &addRaw(const char *Key, std::string Json) {
      Fields.emplace_back(Key, std::move(Json));
      return *this;
    }

  private:
    friend class JsonReport;
    explicit Record(std::string Kind) : Kind(std::move(Kind)) {}
    std::string Kind;
    /// Key -> already-rendered JSON value.
    std::vector<std::pair<std::string, std::string>> Fields;
  };

  /// Every report leads with a `cpu` record — model, SIMD capability,
  /// the path actually active in this process, and the thread count —
  /// so numbers from different machines are never compared blind.
  explicit JsonReport(std::string Name) : Name(std::move(Name)) {
    record("cpu")
        .add("cpu_model", cpuModel())
        .add("simd", simdSupported())
        .add("simd_path", std::string(simd::activePathName()))
        .add("hardware_threads",
             static_cast<unsigned>(std::thread::hardware_concurrency()));
  }
  JsonReport(const JsonReport &) = delete;
  JsonReport &operator=(const JsonReport &) = delete;
  ~JsonReport() { write(); }

  /// Appends a record tagged with \p Kind (e.g. the table it mirrors).
  Record &record(std::string Kind) {
    Records.push_back(Record(std::move(Kind)));
    return Records.back();
  }

  /// Writes `BENCH_<name>.json`; harmless to call more than once.
  void write() {
    if (Written)
      return;
    Written = true;
    std::string Path = "BENCH_" + Name + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    std::fprintf(F, "[\n");
    for (size_t I = 0; I != Records.size(); ++I) {
      std::fprintf(F, "  {\"kind\": \"%s\"", Records[I].Kind.c_str());
      for (const auto &[Key, Value] : Records[I].Fields)
        std::fprintf(F, ", \"%s\": %s", Key.c_str(), Value.c_str());
      std::fprintf(F, "}%s\n", I + 1 == Records.size() ? "" : ",");
    }
    std::fprintf(F, "]\n");
    std::fclose(F);
    std::printf("wrote %s (%zu records)\n", Path.c_str(), Records.size());
  }

private:
  std::string Name;
  std::vector<Record> Records;
  bool Written = false;
};

/// Parses and type-checks; aborts the benchmark binary on failure (the
/// corpora are all well-formed by construction).
inline std::unique_ptr<Module> mustParse(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = parseProgram(Source, Diags);
  if (!M) {
    std::fprintf(stderr, "benchmark input failed to parse:\n%s",
                 Diags.render().c_str());
    std::abort();
  }
  DiagnosticEngine InferDiags;
  if (!inferTypes(*M, InferDiags)) {
    std::fprintf(stderr, "benchmark input failed to type-check:\n%s",
                 InferDiags.render().c_str());
    std::abort();
  }
  return M;
}

/// One timed standard-CFA solve.
struct StandardRun {
  double TotalMs = 0;
  uint64_t Work = 0;
};

inline StandardRun runStandard(const Module &M) {
  Timer T;
  StandardCFA CFA(M);
  CFA.run();
  StandardRun R;
  R.TotalMs = T.millis();
  R.Work = CFA.stats().work();
  return R;
}

/// One timed subtransitive build+close (phases timed separately, like the
/// paper's Tables 1 and 2).
struct GraphRun {
  double BuildMs = 0;
  double CloseMs = 0;
  GraphStats Stats;
  std::unique_ptr<SubtransitiveGraph> Graph;
};

inline GraphRun runGraph(const Module &M, SubtransitiveConfig Config = {}) {
  GraphRun R;
  R.Graph = std::make_unique<SubtransitiveGraph>(M, Config);
  Timer T;
  R.Graph->build();
  R.BuildMs = T.millis();
  T.reset();
  R.Graph->close();
  R.CloseMs = T.millis();
  R.Stats = R.Graph->stats();
  return R;
}

/// Queries the label set of every non-trivial application — the paper's
/// benchmark workload ("writing out the control flow information for all
/// non-trivial applications").  Returns the time.
inline double queryAllApplications(const Module &M,
                                   const SubtransitiveGraph &G,
                                   uint64_t *TotalLabels = nullptr) {
  Timer T;
  Reachability R(G);
  uint64_t Labels = 0;
  for (uint32_t I = 0; I != M.numExprs(); ++I) {
    const auto *A = dyn_cast<AppExpr>(M.expr(ExprId(I)));
    if (!A)
      continue;
    // Non-trivial: the operator is not an identifier or an abstraction.
    ExprKind K = M.expr(A->fn())->kind();
    if (K == ExprKind::Var || K == ExprKind::Lam)
      continue;
    Labels += R.labelsOf(A->fn()).count();
  }
  if (TotalLabels)
    *TotalLabels += Labels;
  return T.millis();
}

} // namespace bench
} // namespace stcfa

/// Each bench binary defines `printPaperTables()` and uses this macro to
/// emit the table before the google-benchmark timings.
#define STCFA_BENCH_MAIN(PrintFn)                                            \
  int main(int argc, char **argv) {                                         \
    PrintFn();                                                               \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))                \
      return 1;                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    return 0;                                                                \
  }

#endif // STCFA_BENCH_BENCHUTIL_H
