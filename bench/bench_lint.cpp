//===-- bench/bench_lint.cpp - Lint pass scaling over program size --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-pass lint wall-clock versus program size.  Every checker consumes
/// the frozen subtransitive graph without materialising label sets, so
/// each pass should scale with the graph (nodes + edges), not with
/// labels x call sites.  The table sweeps cubic:N (the quadratic-growth
/// family); `BENCH_lint.json` records per-(program, pass) timings plus a
/// final metrics snapshot so CI can diff counters across revisions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "lint/LintEngine.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Lint pass wall-clock vs program size ==\n");
  TablePrinter Table(
      {"prog", "exprs", "nodes", "pass", "time(ms)", "findings", "partial"});
  JsonReport Report("lint");

  struct Prog {
    std::string Name;
    std::string Source;
  };
  RandomProgramOptions RO;
  RO.Seed = 13;
  RO.NumBindings = 300;
  RO.UseRefs = true;
  RO.UseEffects = true;
  const Prog Progs[] = {{"cubic:8", makeCubicFamily(8)},
                        {"cubic:32", makeCubicFamily(32)},
                        {"cubic:128", makeCubicFamily(128)},
                        {"joinpoint:64", makeJoinPointFamily(64)},
                        {"life", lifeProgram()},
                        {"random:300", makeRandomProgram(RO)}};

  for (const Prog &P : Progs) {
    auto M = mustParse(P.Source);
    GraphRun G = runGraph(*M);
    Timer FreezeTimer;
    FrozenGraph F(*G.Graph);
    double FreezeMs = FreezeTimer.millis();
    if (!F.status().isOk()) {
      std::fprintf(stderr, "freeze failed for %s: %s\n", P.Name.c_str(),
                   F.status().toString().c_str());
      continue;
    }

    LintEngine Engine(*G.Graph, F);
    for (const LintPassInfo &Info : LintEngine::passes()) {
      LintOptions LO;
      LO.Passes = {Info.Id};
      // A fresh engine run per pass so shared analyses (called-once,
      // effects) are rebuilt and their cost lands inside the timing.
      Timer T;
      LintResult R = Engine.run(LO);
      double Millis = T.millis();
      const LintPassReport &PassReport = R.Reports.front();
      uint32_t Findings =
          static_cast<uint32_t>(PassReport.Findings.size());
      Table.addRow({P.Name, TablePrinter::num(uint64_t(M->numExprs())),
                    TablePrinter::num(uint64_t(F.numNodes())), Info.Id,
                    TablePrinter::num(Millis),
                    TablePrinter::num(uint64_t(Findings)),
                    PassReport.Partial ? "yes" : "no"});
      Report.record("lint_pass")
          .add("prog", P.Name)
          .add("pass", Info.Id)
          .add("exprs", M->numExprs())
          .add("nodes", F.numNodes())
          .add("build_ms", G.BuildMs)
          .add("close_ms", G.CloseMs)
          .add("freeze_ms", FreezeMs)
          .add("lint_ms", Millis)
          .add("findings", Findings)
          .add("partial", PassReport.Partial ? 1u : 0u);
    }

    // All passes in one governed fan-out run: the engine amortises the
    // shared called-once/effects analyses across consumers.
    Timer AllTimer;
    LintResult All = Engine.run({});
    Report.record("lint_all")
        .add("prog", P.Name)
        .add("lint_ms", AllTimer.millis())
        .add("errors", All.NumErrors)
        .add("warnings", All.NumWarnings)
        .add("notes", All.NumNotes);
  }

  Report.record("metrics").addRaw("snapshot", snapshotMetrics().toJson());
  std::printf("%s\n", Table.render().c_str());
}

void BM_LintAllPasses(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  LintEngine Engine(*G.Graph, F);
  for (auto _ : State) {
    LintResult R = Engine.run({});
    benchmark::DoNotOptimize(R.NumWarnings);
  }
}
BENCHMARK(BM_LintAllPasses)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMillisecond);

void BM_LintSinglePass(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(64));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  LintEngine Engine(*G.Graph, F);
  const LintPassInfo &Info = LintEngine::passes()[State.range(0)];
  State.SetLabel(Info.Id);
  for (auto _ : State) {
    LintOptions LO;
    LO.Passes = {Info.Id};
    LintResult R = Engine.run(LO);
    benchmark::DoNotOptimize(R.Reports.front().Findings.size());
  }
}
BENCHMARK(BM_LintSinglePass)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
