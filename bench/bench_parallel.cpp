//===-- bench/bench_parallel.cpp - Frozen CSR + parallel query engine -----===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path benchmark: how much does freezing the subtransitive
/// graph into a CSR snapshot buy over the intrusive linked lists, and
/// how do batched queries scale across worker lanes?
///
///   * Table 1 — `allLabelSets` on the linked-list `Reachability` vs the
///     CSR `QueryEngine` (one lane), plus the cached-SCC path and the
///     one-time freeze cost, on `cubic:N` and `lexgen`.
///   * Table 2 — batched `labelsOf` over every occurrence at 1, 2, and 4
///     lanes.  Thread counts beyond the machine's core count cannot show
///     wall-clock wins (this table reports honest numbers either way);
///     the CSR-vs-linked-list speedup in Table 1 is layout, not
///     parallelism.
///   * Table 3 — the word-parallel `LabelSetKernel`: one level-scheduled
///     closure over the condensation vs one BFS per query, at 1, 2, and
///     4 lanes, plus the steady-state kernel-backed batch path.
///   * Table 5 — kernel lane scaling over the condensation-shape stress
///     corpus (wide/deep/diamond/skewed, src/testgen), with the
///     schedule geometry (levels, chunks, barrier compression) and the
///     active SIMD path per row.
///
/// Every timed cell is min-of-N after untimed warm-up reps (see
/// `bestMillis`), and every report leads with a `cpu` record (model,
/// SIMD capability, thread count), so numbers are comparable across
/// runs and machines.
///
/// Emits `BENCH_parallel.json` (Tables 1–2) and `BENCH_kernel.json`
/// (Tables 3–5, with a `hardware_threads` field so scaling numbers can
/// be judged against the machine that produced them).
///
/// `--kernel-smoke` runs a correctness-only check (kernel vs per-query
/// BFS on cubic:100) and exits non-zero on any mismatch; CI wires it as
/// a ctest target so the bench binary itself cannot rot.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FrozenGraph.h"
#include "core/LabelSetKernel.h"
#include "core/QueryEngine.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "testgen/ShapeGen.h"

#include <string_view>
#include <thread>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

struct Workload {
  const char *Name;
  std::string Source;
};

std::vector<Workload> workloads() {
  return {{"cubic:100", makeCubicFamily(100)},
          {"cubic:200", makeCubicFamily(200)},
          {"lexgen", makeLexgenLike()}};
}

/// Untimed warm-up repetitions before every timed cell: the first
/// passes fault the matrix pages in, populate caches and branch
/// predictors, and let the governor ramp the clock, so the timed reps
/// measure steady state.  (Without this, BENCH_kernel.json once showed
/// lexgen `lanes1_ms` > `lanes2_ms` — a 1.32 "scaling" on a 1-core box
/// that was pure cold-start noise in the first-measured cell.)
constexpr int WarmupReps = 2;

/// Best-of-\p Reps wall time of \p Fn after `WarmupReps` untimed runs,
/// in milliseconds (minimum, not mean: on a loaded machine the minimum
/// tracks the cost of the code rather than of the scheduler).
template <typename FnT> double bestMillis(int Reps, FnT Fn) {
  for (int I = 0; I != WarmupReps; ++I)
    Fn();
  double Best = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    Fn();
    double Ms = T.millis();
    if (I == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

/// Best-of-\p Reps for two competing implementations, interleaved
/// A,B,A,B,... so drifting machine load (frequency scaling, co-tenants)
/// hits both sides equally instead of biasing whichever ran later.
/// Both sides get the same untimed warm-up as `bestMillis`.
template <typename AFnT, typename BFnT>
std::pair<double, double> bestMillisPaired(int Reps, AFnT A, BFnT B) {
  for (int I = 0; I != WarmupReps; ++I) {
    A();
    B();
  }
  double BestA = 0, BestB = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    A();
    double MsA = T.millis();
    T.reset();
    B();
    double MsB = T.millis();
    if (I == 0 || MsA < BestA)
      BestA = MsA;
    if (I == 0 || MsB < BestB)
      BestB = MsB;
  }
  return {BestA, BestB};
}

void printPaperTables() {
  JsonReport Report("parallel");
  std::printf("machine: %u hardware thread(s)\n\n",
              std::thread::hardware_concurrency());

  std::printf("== allLabelSets: linked lists vs frozen CSR (one lane) ==\n");
  TablePrinter T1({"program", "exprs", "freeze(ms)", "list(ms)", "csr(ms)",
                   "speedup", "csr-scc(ms)"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    Reachability R(*G.Graph);

    Timer FreezeT;
    FrozenGraph F(*G.Graph);
    double FreezeMs = FreezeT.millis();
    QueryEngine Engine(F, 1);

    constexpr int Reps = 9;
    auto [ListMs, CsrMs] = bestMillisPaired(
        Reps,
        [&] {
          benchmark::DoNotOptimize(R.allLabelSets(/*UseScc=*/false).size());
        },
        [&] {
          benchmark::DoNotOptimize(
              Engine.allLabelSets(/*UseScc=*/false).size());
        });
    // First SCC call pays the condensation; steady state is cached.
    benchmark::DoNotOptimize(Engine.allLabelSets(/*UseScc=*/true).size());
    double SccMs = bestMillis(Reps, [&] {
      benchmark::DoNotOptimize(Engine.allLabelSets(/*UseScc=*/true).size());
    });
    double Speedup = CsrMs > 0 ? ListMs / CsrMs : 0;

    T1.addRow({W.Name, std::to_string(M->numExprs()),
               TablePrinter::num(FreezeMs), TablePrinter::num(ListMs),
               TablePrinter::num(CsrMs), TablePrinter::num(Speedup, 2),
               TablePrinter::num(SccMs)});
    Report.record("all_label_sets")
        .add("program", std::string(W.Name))
        .add("exprs", M->numExprs())
        .add("freeze_ms", FreezeMs)
        .add("linked_list_ms", ListMs)
        .add("csr_ms", CsrMs)
        .add("speedup", Speedup)
        .add("csr_scc_cached_ms", SccMs);
  }
  std::printf("%s\n", T1.render().c_str());

  std::printf("== batched labelsOf over every occurrence: lane scaling ==\n");
  TablePrinter T2({"program", "queries", "1 lane(ms)", "2 lanes(ms)",
                   "4 lanes(ms)", "2x", "4x"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);

    std::vector<ExprId> Queries;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      Queries.push_back(ExprId(I));

    constexpr int Reps = 9;
    double Ms[3];
    unsigned LaneCounts[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      QueryEngine Engine(F, LaneCounts[I]);
      Ms[I] = bestMillis(Reps, [&] {
        benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
      });
    }

    T2.addRow({W.Name, std::to_string(Queries.size()),
               TablePrinter::num(Ms[0]), TablePrinter::num(Ms[1]),
               TablePrinter::num(Ms[2]),
               TablePrinter::num(Ms[1] > 0 ? Ms[0] / Ms[1] : 0, 2),
               TablePrinter::num(Ms[2] > 0 ? Ms[0] / Ms[2] : 0, 2)});
    Report.record("batched_labels_of")
        .add("program", std::string(W.Name))
        .add("queries", uint64_t(Queries.size()))
        .add("lanes1_ms", Ms[0])
        .add("lanes2_ms", Ms[1])
        .add("lanes4_ms", Ms[2])
        .add("scaling2", Ms[1] > 0 ? Ms[0] / Ms[1] : 0)
        .add("scaling4", Ms[2] > 0 ? Ms[0] / Ms[2] : 0);
  }
  std::printf("%s\n", T2.render().c_str());

  // The per-stage accounting behind the wall-clock cells above (freeze
  // counts, close edges, dispatch decisions) rides along in the JSON.
  Report.record("metrics_snapshot")
      .addRaw("metrics", snapshotMetrics().toJson(2));
}

void printKernelTables() {
  JsonReport Report("kernel");
  const unsigned HwThreads = std::thread::hardware_concurrency();

  std::printf("== label-set kernel: level-scheduled closure vs per-query "
              "BFS ==\n");
  TablePrinter T3({"program", "exprs", "bfs(ms)", "k1(ms)", "k2(ms)",
                   "k4(ms)", "vs-bfs", "2x", "4x"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);
    // Warm the cached condensation so every timed cell below measures
    // the closure, not the one-time Tarjan pass.
    F.condensation();

    constexpr int Reps = 9;
    // Baseline: the CSR per-query BFS (kernel dispatch disabled).
    QueryEngine Bfs(F, 1);
    Bfs.setKernelThreshold(0);
    double BfsMs = bestMillis(Reps, [&] {
      benchmark::DoNotOptimize(Bfs.allLabelSets(/*UseScc=*/false).size());
    });

    double Ms[3];
    unsigned LaneCounts[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      ThreadPool Pool(LaneCounts[I]);
      Ms[I] = bestMillis(Reps, [&] {
        // A fresh kernel per rep: the cell prices schedule build plus
        // the full closure, the work a cold batched query pays once.
        LabelSetKernel K(F, LaneCounts[I] > 1 ? &Pool : nullptr,
                         LaneCounts[I]);
        if (!K.run().isOk())
          std::abort();
        benchmark::DoNotOptimize(K.levelsCompleted());
      });
    }
    double VsBfs = Ms[0] > 0 ? BfsMs / Ms[0] : 0;

    T3.addRow({W.Name, std::to_string(M->numExprs()),
               TablePrinter::num(BfsMs), TablePrinter::num(Ms[0]),
               TablePrinter::num(Ms[1]), TablePrinter::num(Ms[2]),
               TablePrinter::num(VsBfs, 2),
               TablePrinter::num(Ms[1] > 0 ? Ms[0] / Ms[1] : 0, 2),
               TablePrinter::num(Ms[2] > 0 ? Ms[0] / Ms[2] : 0, 2)});
    Report.record("kernel_all_labels")
        .add("program", std::string(W.Name))
        .add("exprs", M->numExprs())
        .add("hardware_threads", HwThreads)
        .add("bfs_ms", BfsMs)
        .add("kernel1_ms", Ms[0])
        .add("kernel2_ms", Ms[1])
        .add("kernel4_ms", Ms[2])
        .add("speedup_vs_bfs", VsBfs)
        .add("scaling2", Ms[1] > 0 ? Ms[0] / Ms[1] : 0)
        .add("scaling4", Ms[2] > 0 ? Ms[0] / Ms[2] : 0);
  }
  std::printf("%s\n", T3.render().c_str());

  std::printf("== batched labelsOf served by the kernel (steady state) "
              "==\n");
  TablePrinter T4({"program", "queries", "bfs-batch(ms)", "1 lane(ms)",
                   "2 lanes(ms)", "4 lanes(ms)", "vs-bfs", "2x", "4x"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);
    F.condensation();

    std::vector<ExprId> Queries;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      Queries.push_back(ExprId(I));

    constexpr int Reps = 9;
    QueryEngine BfsEngine(F, 1);
    BfsEngine.setKernelThreshold(0);
    double BfsMs = bestMillis(Reps, [&] {
      benchmark::DoNotOptimize(BfsEngine.labelsOfBatch(Queries).size());
    });

    double Ms[3];
    unsigned LaneCounts[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      QueryEngine Engine(F, LaneCounts[I]);
      Engine.setKernelThreshold(1);
      // First call pays the closure; the steady state below is what a
      // query-serving process sees on every later batch.
      benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
      Ms[I] = bestMillis(Reps, [&] {
        benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
      });
    }
    double VsBfs = Ms[0] > 0 ? BfsMs / Ms[0] : 0;

    T4.addRow({W.Name, std::to_string(Queries.size()),
               TablePrinter::num(BfsMs), TablePrinter::num(Ms[0]),
               TablePrinter::num(Ms[1]), TablePrinter::num(Ms[2]),
               TablePrinter::num(VsBfs, 2),
               TablePrinter::num(Ms[1] > 0 ? Ms[0] / Ms[1] : 0, 2),
               TablePrinter::num(Ms[2] > 0 ? Ms[0] / Ms[2] : 0, 2)});
    Report.record("kernel_batched")
        .add("program", std::string(W.Name))
        .add("queries", uint64_t(Queries.size()))
        .add("hardware_threads", HwThreads)
        .add("bfs_batch_ms", BfsMs)
        .add("lanes1_ms", Ms[0])
        .add("lanes2_ms", Ms[1])
        .add("lanes4_ms", Ms[2])
        .add("speedup_vs_bfs", VsBfs)
        .add("scaling2", Ms[1] > 0 ? Ms[0] / Ms[1] : 0)
        .add("scaling4", Ms[2] > 0 ? Ms[0] / Ms[2] : 0);
  }
  std::printf("%s\n", T4.render().c_str());

  // Table 5 — lane scaling over the condensation-shape stress corpus
  // (src/testgen): shapes the cubic/lexgen workloads never produce.
  // Alongside wall clock, each row records the schedule geometry —
  // levels, chunks, and the barrier compression the chunked scheduler
  // bought — because on a 1-core bench box the counters, not the
  // wall-clock scaling, are what prove the scheduler works.
  std::printf("== kernel lane scaling over condensation shapes ==\n");
  TablePrinter T5({"shape", "sccs", "levels", "chunks", "compress", "k1(ms)",
                   "k2(ms)", "k4(ms)", "2x", "4x"});
  const ShapeSpec ShapeSpecs[] = {
      {CondShape::Wide, 256, 1},
      {CondShape::Deep, 512, 1},
      {CondShape::Diamond, 256, 1},
      {CondShape::Skewed, 256, 1},
  };
  for (const ShapeSpec &Spec : ShapeSpecs) {
    std::string Name =
        std::string(shapeName(Spec.Shape)) + ":" + std::to_string(Spec.N);
    auto M = mustParse(makeShapeProgram(Spec));
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);
    F.condensation();

    // Schedule geometry from one un-timed closure.
    LabelSetKernel Probe(F, /*Threads=*/1);
    if (!Probe.run().isOk())
      std::abort();
    double Compression =
        Probe.numChunks() ? double(Probe.numLevels()) / Probe.numChunks() : 0;

    constexpr int Reps = 9;
    double Ms[3];
    unsigned LaneCounts[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      ThreadPool Pool(LaneCounts[I]);
      Ms[I] = bestMillis(Reps, [&] {
        LabelSetKernel K(F, LaneCounts[I] > 1 ? &Pool : nullptr,
                         LaneCounts[I]);
        if (!K.run().isOk())
          std::abort();
        benchmark::DoNotOptimize(K.levelsCompleted());
      });
    }

    T5.addRow({Name, std::to_string(F.condensation().numSccs()),
               std::to_string(Probe.numLevels()),
               std::to_string(Probe.numChunks()),
               TablePrinter::num(Compression, 1), TablePrinter::num(Ms[0]),
               TablePrinter::num(Ms[1]), TablePrinter::num(Ms[2]),
               TablePrinter::num(Ms[1] > 0 ? Ms[0] / Ms[1] : 0, 2),
               TablePrinter::num(Ms[2] > 0 ? Ms[0] / Ms[2] : 0, 2)});
    Report.record("kernel_shape_scaling")
        .add("shape", Name)
        .add("exprs", M->numExprs())
        .add("sccs", F.condensation().numSccs())
        .add("levels", Probe.numLevels())
        .add("chunks", Probe.numChunks())
        .add("barrier_compression", Compression)
        .add("simd_path", std::string(simd::activePathName()))
        .add("hardware_threads", HwThreads)
        .add("kernel1_ms", Ms[0])
        .add("kernel2_ms", Ms[1])
        .add("kernel4_ms", Ms[2])
        .add("scaling2", Ms[1] > 0 ? Ms[0] / Ms[1] : 0)
        .add("scaling4", Ms[2] > 0 ? Ms[0] / Ms[2] : 0);
  }
  std::printf("%s\n", T5.render().c_str());

  Report.record("metrics_snapshot")
      .addRaw("metrics", snapshotMetrics().toJson(2));
}

/// Correctness-only smoke for CI: the kernel and the kernel-backed batch
/// path must agree with per-query BFS on cubic:100, bit for bit.
int kernelSmoke() {
  auto M = mustParse(makeCubicFamily(100));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  FrozenGraph F(*G.Graph);

  LabelSetKernel K(F, /*Threads=*/2);
  if (!K.run().isOk()) {
    std::fprintf(stderr, "kernel smoke: run() failed: %s\n",
                 K.status().message().c_str());
    return 1;
  }
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    if (!(K.labelsOf(ExprId(I)) == R.labelsOf(ExprId(I)))) {
      std::fprintf(stderr, "kernel smoke: mismatch at expr %u\n", I);
      return 1;
    }

  QueryEngine Engine(F, 2);
  Engine.setKernelThreshold(1);
  std::vector<ExprId> Queries;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Queries.push_back(ExprId(I));
  std::vector<DenseBitset> Batch = Engine.labelsOfBatch(Queries);
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    if (!(Batch[I] == R.labelsOf(ExprId(I)))) {
      std::fprintf(stderr, "kernel smoke: batch mismatch at expr %u\n", I);
      return 1;
    }

  std::printf("kernel smoke: %u label sets match per-query BFS\n",
              M->numExprs());
  return 0;
}

void BM_AllLabelSets_LinkedList(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.allLabelSets(false).size());
}
BENCHMARK(BM_AllLabelSets_LinkedList)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_AllLabelSets_Csr(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  QueryEngine Engine(F, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.allLabelSets(false).size());
}
BENCHMARK(BM_AllLabelSets_Csr)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LabelsOfBatch(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(200));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  QueryEngine Engine(F, static_cast<unsigned>(State.range(0)));
  std::vector<ExprId> Queries;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Queries.push_back(ExprId(I));
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
}
BENCHMARK(BM_LabelsOfBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_KernelAllLabels(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(200));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  F.condensation();
  unsigned Lanes = static_cast<unsigned>(State.range(0));
  ThreadPool Pool(Lanes);
  for (auto _ : State) {
    LabelSetKernel K(F, Lanes > 1 ? &Pool : nullptr, Lanes);
    if (!K.run().isOk())
      std::abort();
    benchmark::DoNotOptimize(K.levelsCompleted());
  }
}
BENCHMARK(BM_KernelAllLabels)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Custom main (instead of STCFA_BENCH_MAIN): `--kernel-smoke` must run
// the correctness check *only* and return its verdict as the exit code,
// so ctest can gate on it without paying for the timed tables.
int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::string_view(argv[I]) == "--kernel-smoke")
      return kernelSmoke();
  printPaperTables();
  printKernelTables();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
