//===-- bench/bench_parallel.cpp - Frozen CSR + parallel query engine -----===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-path benchmark: how much does freezing the subtransitive
/// graph into a CSR snapshot buy over the intrusive linked lists, and
/// how do batched queries scale across worker lanes?
///
///   * Table 1 — `allLabelSets` on the linked-list `Reachability` vs the
///     CSR `QueryEngine` (one lane), plus the cached-SCC path and the
///     one-time freeze cost, on `cubic:N` and `lexgen`.
///   * Table 2 — batched `labelsOf` over every occurrence at 1, 2, and 4
///     lanes.  Thread counts beyond the machine's core count cannot show
///     wall-clock wins (this table reports honest numbers either way);
///     the CSR-vs-linked-list speedup in Table 1 is layout, not
///     parallelism.
///
/// Emits `BENCH_parallel.json` with every cell.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/FrozenGraph.h"
#include "core/QueryEngine.h"
#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

#include <thread>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

struct Workload {
  const char *Name;
  std::string Source;
};

std::vector<Workload> workloads() {
  return {{"cubic:100", makeCubicFamily(100)},
          {"cubic:200", makeCubicFamily(200)},
          {"lexgen", makeLexgenLike()}};
}

/// Best-of-\p Reps wall time of \p Fn, in milliseconds (minimum, not
/// mean: on a loaded machine the minimum tracks the cost of the code
/// rather than of the scheduler).
template <typename FnT> double bestMillis(int Reps, FnT Fn) {
  double Best = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    Fn();
    double Ms = T.millis();
    if (I == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

/// Best-of-\p Reps for two competing implementations, interleaved
/// A,B,A,B,... so drifting machine load (frequency scaling, co-tenants)
/// hits both sides equally instead of biasing whichever ran later.
template <typename AFnT, typename BFnT>
std::pair<double, double> bestMillisPaired(int Reps, AFnT A, BFnT B) {
  double BestA = 0, BestB = 0;
  for (int I = 0; I != Reps; ++I) {
    Timer T;
    A();
    double MsA = T.millis();
    T.reset();
    B();
    double MsB = T.millis();
    if (I == 0 || MsA < BestA)
      BestA = MsA;
    if (I == 0 || MsB < BestB)
      BestB = MsB;
  }
  return {BestA, BestB};
}

void printPaperTables() {
  JsonReport Report("parallel");
  std::printf("machine: %u hardware thread(s)\n\n",
              std::thread::hardware_concurrency());

  std::printf("== allLabelSets: linked lists vs frozen CSR (one lane) ==\n");
  TablePrinter T1({"program", "exprs", "freeze(ms)", "list(ms)", "csr(ms)",
                   "speedup", "csr-scc(ms)"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    Reachability R(*G.Graph);

    Timer FreezeT;
    FrozenGraph F(*G.Graph);
    double FreezeMs = FreezeT.millis();
    QueryEngine Engine(F, 1);

    constexpr int Reps = 9;
    auto [ListMs, CsrMs] = bestMillisPaired(
        Reps,
        [&] {
          benchmark::DoNotOptimize(R.allLabelSets(/*UseScc=*/false).size());
        },
        [&] {
          benchmark::DoNotOptimize(
              Engine.allLabelSets(/*UseScc=*/false).size());
        });
    // First SCC call pays the condensation; steady state is cached.
    benchmark::DoNotOptimize(Engine.allLabelSets(/*UseScc=*/true).size());
    double SccMs = bestMillis(Reps, [&] {
      benchmark::DoNotOptimize(Engine.allLabelSets(/*UseScc=*/true).size());
    });
    double Speedup = CsrMs > 0 ? ListMs / CsrMs : 0;

    T1.addRow({W.Name, std::to_string(M->numExprs()),
               TablePrinter::num(FreezeMs), TablePrinter::num(ListMs),
               TablePrinter::num(CsrMs), TablePrinter::num(Speedup, 2),
               TablePrinter::num(SccMs)});
    Report.record("all_label_sets")
        .add("program", std::string(W.Name))
        .add("exprs", M->numExprs())
        .add("freeze_ms", FreezeMs)
        .add("linked_list_ms", ListMs)
        .add("csr_ms", CsrMs)
        .add("speedup", Speedup)
        .add("csr_scc_cached_ms", SccMs);
  }
  std::printf("%s\n", T1.render().c_str());

  std::printf("== batched labelsOf over every occurrence: lane scaling ==\n");
  TablePrinter T2({"program", "queries", "1 lane(ms)", "2 lanes(ms)",
                   "4 lanes(ms)", "2x", "4x"});
  for (const Workload &W : workloads()) {
    auto M = mustParse(W.Source);
    GraphRun G = runGraph(*M);
    FrozenGraph F(*G.Graph);

    std::vector<ExprId> Queries;
    for (uint32_t I = 0; I != M->numExprs(); ++I)
      Queries.push_back(ExprId(I));

    constexpr int Reps = 9;
    double Ms[3];
    unsigned LaneCounts[3] = {1, 2, 4};
    for (int I = 0; I != 3; ++I) {
      QueryEngine Engine(F, LaneCounts[I]);
      Ms[I] = bestMillis(Reps, [&] {
        benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
      });
    }

    T2.addRow({W.Name, std::to_string(Queries.size()),
               TablePrinter::num(Ms[0]), TablePrinter::num(Ms[1]),
               TablePrinter::num(Ms[2]),
               TablePrinter::num(Ms[1] > 0 ? Ms[0] / Ms[1] : 0, 2),
               TablePrinter::num(Ms[2] > 0 ? Ms[0] / Ms[2] : 0, 2)});
    Report.record("batched_labels_of")
        .add("program", std::string(W.Name))
        .add("queries", uint64_t(Queries.size()))
        .add("lanes1_ms", Ms[0])
        .add("lanes2_ms", Ms[1])
        .add("lanes4_ms", Ms[2])
        .add("scaling2", Ms[1] > 0 ? Ms[0] / Ms[1] : 0)
        .add("scaling4", Ms[2] > 0 ? Ms[0] / Ms[2] : 0);
  }
  std::printf("%s\n", T2.render().c_str());
}

void BM_AllLabelSets_LinkedList(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  Reachability R(*G.Graph);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.allLabelSets(false).size());
}
BENCHMARK(BM_AllLabelSets_LinkedList)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_AllLabelSets_Csr(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(static_cast<int>(State.range(0))));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  QueryEngine Engine(F, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.allLabelSets(false).size());
}
BENCHMARK(BM_AllLabelSets_Csr)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_LabelsOfBatch(benchmark::State &State) {
  auto M = mustParse(makeCubicFamily(200));
  GraphRun G = runGraph(*M);
  FrozenGraph F(*G.Graph);
  QueryEngine Engine(F, static_cast<unsigned>(State.range(0)));
  std::vector<ExprId> Queries;
  for (uint32_t I = 0; I != M->numExprs(); ++I)
    Queries.push_back(ExprId(I));
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.labelsOfBatch(Queries).size());
}
BENCHMARK(BM_LabelsOfBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
