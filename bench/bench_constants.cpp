//===-- bench/bench_constants.cpp - E6: the paper's constants -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 10's constant-factor observations:
///
///   * `k_avg`, the mean type-tree size per occurrence, is small
///     ("typically around 2 or 3") — the hidden constant of the linear
///     bound;
///   * build-phase node count tracks program size (≈ one node per syntax
///     node);
///   * close-phase node count is "typically no more than" the build-phase
///     count on realistic programs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Corpus.h"
#include "gen/Generators.h"
#include "support/TablePrinter.h"

#include <algorithm>

using namespace stcfa;
using namespace stcfa::bench;

namespace {

void printPaperTables() {
  std::printf("== Section 10 constants: k_avg and node-count ratios ==\n");
  TablePrinter Table({"prog", "exprs", "k_avg", "k_max", "order", "build "
                      "nodes", "nodes/expr", "close nodes", "close/build"});
  struct Row {
    std::string Name;
    std::string Source;
  };
  std::vector<Row> Rows = {{"life", lifeProgram()},
                           {"lexgen", makeLexgenLike()},
                           {"minieval", miniEvalProgram()},
                           {"parsecombo", parserComboProgram()},
                           {"cubic:32", makeCubicFamily(32)},
                           {"joinpoint:64", makeJoinPointFamily(64)}};
  for (uint64_t Seed : {11ull, 12ull, 13ull}) {
    RandomProgramOptions O;
    O.Seed = Seed;
    O.NumBindings = 300;
    Rows.push_back({"random:" + std::to_string(Seed), makeRandomProgram(O)});
  }

  for (const Row &P : Rows) {
    auto M = mustParse(P.Source);
    TypeMetrics TM = computeTypeMetrics(*M);
    GraphRun G = runGraph(*M);
    Table.addRow(
        {P.Name, std::to_string(M->numExprs()),
         TablePrinter::num(TM.AvgTypeSize, 2), std::to_string(TM.MaxTypeSize),
         std::to_string(TM.MaxOrder), TablePrinter::num(G.Stats.BuildNodes),
         TablePrinter::num(double(G.Stats.BuildNodes) / M->numExprs(), 2),
         TablePrinter::num(G.Stats.CloseNodes),
         TablePrinter::num(double(G.Stats.CloseNodes) /
                               double(G.Stats.BuildNodes),
                           2)});
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_BuildPhase_Lexgen(benchmark::State &State) {
  auto M = mustParse(makeLexgenLike(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    benchmark::DoNotOptimize(G.stats().BuildEdges);
  }
  State.counters["exprs"] = M->numExprs();
}
BENCHMARK(BM_BuildPhase_Lexgen)
    ->Arg(40)
    ->Arg(150)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_ClosePhase_Lexgen(benchmark::State &State) {
  auto M = mustParse(makeLexgenLike(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_ClosePhase_Lexgen)
    ->Arg(40)
    ->Arg(150)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
