//===-- bench/bench_polyvariance.cpp - E8: Section 7 polyvariance ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7: summary-based polyvariance versus the monovariant analysis.
/// Precision is measured two ways over external expressions: mean
/// label-set size, and the number of call sites whose callee set is a
/// singleton (the inlining opportunities polyvariance exists to expose).
///
/// Expected shape: polyvariance never loses precision, wins on programs
/// that reuse generic functions, and costs a modest constant factor.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gen/Generators.h"
#include "poly/Polyvariant.h"
#include "support/TablePrinter.h"

using namespace stcfa;
using namespace stcfa::bench;

namespace {

/// A reuse-heavy workload: generic plumbing functions each used at many
/// sites with distinct function arguments.
std::string reuseWorkload(int N) {
  std::string Out = "let id = fn x => x;\n"
                    "let apply = fn f => fn y => f y;\n"
                    "let pair = fn a => fn b => (a, b);\n";
  for (int I = 0; I != N; ++I) {
    std::string S = std::to_string(I);
    Out += "let g" + S + " = fn u" + S + " => u" + S + " + " + S + ";\n";
    Out += "let r" + S + " = apply (id g" + S + ") " + S + ";\n";
    Out += "let p" + S + " = pair g" + S + " " + S + ";\n";
    Out += "let h" + S + " = #1 p" + S + ";\n";
  }
  Out += "r0";
  return Out;
}

std::vector<bool> externalMask(const Module &M) {
  std::vector<bool> Internal(M.numExprs(), false);
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L || L->isRec() || !isa<LamExpr>(M.expr(L->init())))
      return;
    forEachExprPreorder(M, L->init(), [&](ExprId Sub, const Expr *) {
      Internal[Sub.index()] = true;
    });
  });
  std::vector<bool> External(M.numExprs());
  for (uint32_t I = 0; I != M.numExprs(); ++I)
    External[I] = !Internal[I];
  return External;
}

struct Precision {
  double AvgSetSize = 0;
  uint32_t SingletonCallSites = 0;
};

Precision precisionOf(const Module &M, Reachability &R,
                      const std::vector<bool> &External) {
  Precision Out;
  uint64_t Total = 0, NonEmpty = 0;
  for (uint32_t I = 0; I != M.numExprs(); ++I) {
    if (!External[I])
      continue;
    uint32_t Size = R.labelsOf(ExprId(I)).count();
    if (Size) {
      Total += Size;
      ++NonEmpty;
    }
    if (const auto *A = dyn_cast<AppExpr>(M.expr(ExprId(I))))
      if (R.labelsOf(A->fn()).count() == 1)
        ++Out.SingletonCallSites;
  }
  Out.AvgSetSize = NonEmpty ? double(Total) / double(NonEmpty) : 0;
  return Out;
}

void printPaperTables() {
  std::printf("== Section 7 polyvariance on reuse-heavy programs ==\n");
  TablePrinter Table({"reuses", "mode", "time(ms)", "avg |L(e)|",
                      "singleton call sites", "summaries", "instances"});
  for (int N : {8, 32, 128}) {
    auto M = mustParse(reuseWorkload(N));
    std::vector<bool> External = externalMask(*M);

    Timer T;
    SubtransitiveGraph Mono(*M);
    Mono.build();
    Mono.close();
    double MonoMs = T.millis();
    Reachability MonoR(Mono);
    Precision MonoP = precisionOf(*M, MonoR, External);
    Table.addRow({std::to_string(N), "mono", TablePrinter::num(MonoMs),
                  TablePrinter::num(MonoP.AvgSetSize, 2),
                  std::to_string(MonoP.SingletonCallSites), "-", "-"});

    T.reset();
    PolyConfig PC;
    PC.MaxOccurrences = 4096;
    PolyvariantCFA Poly(*M, SubtransitiveConfig{}, PC);
    Poly.run();
    double PolyMs = T.millis();
    Reachability PolyR(Poly.graph());
    Precision PolyP = precisionOf(*M, PolyR, External);
    Table.addRow({std::to_string(N), "poly", TablePrinter::num(PolyMs),
                  TablePrinter::num(PolyP.AvgSetSize, 2),
                  std::to_string(PolyP.SingletonCallSites),
                  std::to_string(Poly.stats().Summarized),
                  std::to_string(Poly.stats().Instantiations)});
  }
  std::printf("%s\n", Table.render().c_str());
}

void BM_Monovariant(benchmark::State &State) {
  auto M = mustParse(reuseWorkload(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    SubtransitiveGraph G(*M);
    G.build();
    G.close();
    benchmark::DoNotOptimize(G.stats().CloseEdges);
  }
}
BENCHMARK(BM_Monovariant)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Polyvariant(benchmark::State &State) {
  auto M = mustParse(reuseWorkload(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    PolyConfig PC;
    PC.MaxOccurrences = 4096;
    PolyvariantCFA Poly(*M, SubtransitiveConfig{}, PC);
    Poly.run();
    benchmark::DoNotOptimize(Poly.stats().Instantiations);
  }
}
BENCHMARK(BM_Polyvariant)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

} // namespace

STCFA_BENCH_MAIN(printPaperTables)
