//===-- analysis/DeadCodeAwareCFA.h - Liveness-gated 0-CFA ------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's introduction lists the classic dimensions along which CFA
/// variants differ; dimension (2) is "the treatment of dead-code: does the
/// analysis take into account which pieces of a program can actually be
/// called?".  Standard CFA (and the subtransitive graph) analyse all code
/// unconditionally; this variant gates a function body's constraints on
/// the function being *applied from live code*, in the style of
/// reachability-refined 0-CFA.
///
/// Under call-by-value everything in the `let`-spine is evaluated, so
/// liveness only prunes the bodies of never-called abstractions and the
/// code they alone contain.  The result is never larger than standard CFA
/// (property-tested) and still over-approximates any concrete run (the
/// interpreter only executes live code; dynamic-soundness-tested).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_ANALYSIS_DEADCODEAWARECFA_H
#define STCFA_ANALYSIS_DEADCODEAWARECFA_H

#include "ast/Module.h"
#include "support/DenseBitset.h"
#include "support/Hashing.h"

#include <deque>
#include <vector>

namespace stcfa {

/// Standard CFA with liveness gating of abstraction bodies.
class DeadCodeAwareCFA {
public:
  explicit DeadCodeAwareCFA(const Module &M);

  void run();

  /// Labels that may flow to occurrence \p E (empty for dead code).
  DenseBitset labelSet(ExprId E) const;
  DenseBitset labelSetOfVar(VarId V) const;

  /// May occurrence \p E be evaluated at all?
  bool isLive(ExprId E) const { return Live[E.index()]; }

  /// Abstractions whose bodies were never activated.
  std::vector<LabelId> deadFunctions() const;

private:
  uint32_t setOfExpr(ExprId E) const { return E.index(); }
  uint32_t setOfVar(VarId V) const { return M.numExprs() + V.index(); }
  uint32_t setOfCell(ExprId E) const { return CellOfExpr[E.index()]; }

  void markLive(ExprId E);
  void activate(ExprId E);
  void addEdge(uint32_t Src, uint32_t Dst);
  void queueInsert(uint32_t Set, uint32_t Value);
  void fireTrigger(uint32_t TriggerIndex, uint32_t Value);

  struct Trigger {
    enum KindT : uint8_t { AppFn, ProjTuple, CaseScrutinee, RefRead, RefWrite }
        Kind;
    ExprId Site;
  };

  const Module &M;
  uint32_t NumValues = 0;
  std::vector<ExprId> ValueSite;
  std::vector<uint32_t> ValueOfExpr;
  std::vector<uint32_t> CellOfExpr;

  std::vector<bool> Live;
  std::vector<bool> BodyActivated; // per label
  std::vector<DenseBitset> Sets;
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> TriggersOf;
  std::vector<Trigger> Triggers;
  U64Set EdgeSet;
  std::deque<std::pair<uint32_t, uint32_t>> Pending;
  std::deque<ExprId> LiveWorklist;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_ANALYSIS_DEADCODEAWARECFA_H
