//===-- analysis/StandardCFA.cpp - The cubic baseline analysis ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/StandardCFA.h"

#include "support/FaultInjection.h"

using namespace stcfa;

StandardCFA::StandardCFA(const Module &M, bool TrackLiterals) : M(M) {
  // Assign abstract-value ids: labels first (so a label's value id equals
  // its LabelId index), then tuple, constructor, and ref-cell sites —
  // plus literal sites when tracking them.
  ValueOfExpr.assign(M.numExprs(), ~0u);
  NumValues = M.numLabels();
  ValueSite.resize(M.numLabels());
  for (uint32_t L = 0; L != M.numLabels(); ++L) {
    ExprId Lam = M.lamOfLabel(LabelId(L));
    ValueSite[L] = Lam;
    ValueOfExpr[Lam.index()] = L;
  }
  CellOfExpr.assign(M.numExprs(), ~0u);
  uint32_t NumCells = 0;
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    bool IsRef =
        isa<PrimExpr>(E) && cast<PrimExpr>(E)->op() == PrimOp::RefNew;
    if (IsRef)
      CellOfExpr[Id.index()] = M.numExprs() + M.numVars() + NumCells++;
    if (!IsRef && !isa<TupleExpr>(E) && !isa<ConExpr>(E) &&
        !(TrackLiterals && isa<LitExpr>(E)))
      return;
    ValueOfExpr[Id.index()] = NumValues++;
    ValueSite.push_back(Id);
  });

  uint32_t NumSets = M.numExprs() + M.numVars() + NumCells;
  Sets.assign(NumSets, DenseBitset(NumValues));
  Succs.resize(NumSets);
  TriggersOf.resize(NumSets);
}

void StandardCFA::addEdge(uint32_t Src, uint32_t Dst) {
  uint64_t Key = (uint64_t(Src) + 1) << 32 | (uint64_t(Dst) + 1);
  if (!EdgeSet.insert(Key))
    return;
  ++Stats.Edges;
  Succs[Src].push_back(Dst);
  // Transmit everything already known at the source.
  Sets[Src].forEach([&](uint32_t V) {
    ++Stats.Propagations;
    queueInsert(Dst, V);
  });
}

void StandardCFA::queueInsert(uint32_t Set, uint32_t Value) {
  if (!Sets[Set].insert(Value))
    return;
  ++Stats.SetInsertions;
  Pending.emplace_back(Set, Value);
}

void StandardCFA::buildStaticConstraints() {
  auto trigger = [&](Trigger::KindT Kind, ExprId Site, uint32_t OnSet) {
    TriggersOf[OnSet].push_back(static_cast<uint32_t>(Triggers.size()));
    Triggers.push_back({Kind, Site});
  };

  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Var:
      // L(occurrence) >= L(binder).
      addEdge(setOfVar(cast<VarExpr>(E)->var()), setOfExpr(Id));
      break;
    case ExprKind::Lam:
      queueInsert(setOfExpr(Id), cast<LamExpr>(E)->label().index());
      break;
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      trigger(Trigger::AppFn, Id, setOfExpr(A->fn()));
      break;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      addEdge(setOfExpr(L->init()), setOfVar(L->var()));
      addEdge(setOfExpr(L->body()), setOfExpr(Id));
      break;
    }
    case ExprKind::LetRecN: {
      const auto *L = cast<LetRecNExpr>(E);
      for (const LetRecNExpr::Binding &B : L->bindings())
        addEdge(setOfExpr(B.Init), setOfVar(B.Var));
      addEdge(setOfExpr(L->body()), setOfExpr(Id));
      break;
    }
    case ExprKind::Lit:
      // Untracked by default; with TrackLiterals the constant is its own
      // abstract value (its id was assigned in the constructor walk).
      if (ValueOfExpr[Id.index()] != ~0u)
        queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
      break;
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      addEdge(setOfExpr(I->thenExpr()), setOfExpr(Id));
      addEdge(setOfExpr(I->elseExpr()), setOfExpr(Id));
      break;
    }
    case ExprKind::Tuple:
    case ExprKind::Con:
      queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
      break;
    case ExprKind::Proj: {
      const auto *P = cast<ProjExpr>(E);
      trigger(Trigger::ProjTuple, Id, setOfExpr(P->tuple()));
      break;
    }
    case ExprKind::Case: {
      const auto *C = cast<CaseExpr>(E);
      trigger(Trigger::CaseScrutinee, Id, setOfExpr(C->scrutinee()));
      // All arm results flow to the case (branch reachability is not
      // tracked, matching the subtransitive graph's unconditional
      // `case -> arm` edges).
      for (const CaseArm &Arm : C->arms())
        addEdge(setOfExpr(Arm.Body), setOfExpr(Id));
      break;
    }
    case ExprKind::Prim: {
      const auto *P = cast<PrimExpr>(E);
      switch (P->op()) {
      case PrimOp::RefNew:
        queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
        // The initial contents flow into the cell.
        addEdge(setOfExpr(P->args()[0]), setOfCell(Id));
        break;
      case PrimOp::RefGet:
        trigger(Trigger::RefRead, Id, setOfExpr(P->args()[0]));
        break;
      case PrimOp::RefSet:
        trigger(Trigger::RefWrite, Id, setOfExpr(P->args()[0]));
        break;
      default:
        break; // arithmetic etc. produce untracked base values
      }
      break;
    }
    }
  });
}

void StandardCFA::fireTrigger(uint32_t TriggerIndex, uint32_t Value) {
  const Trigger &T = Triggers[TriggerIndex];
  const Expr *SiteValue = M.expr(ValueSite[Value]);
  switch (T.Kind) {
  case Trigger::AppFn: {
    const auto *Lam = dyn_cast<LamExpr>(SiteValue);
    if (!Lam)
      return;
    const auto *App = cast<AppExpr>(M.expr(T.Site));
    addEdge(setOfExpr(App->arg()), setOfVar(Lam->param()));
    addEdge(setOfExpr(Lam->body()), setOfExpr(T.Site));
    return;
  }
  case Trigger::ProjTuple: {
    const auto *Tuple = dyn_cast<TupleExpr>(SiteValue);
    if (!Tuple)
      return;
    const auto *Proj = cast<ProjExpr>(M.expr(T.Site));
    if (Proj->index() < Tuple->elems().size())
      addEdge(setOfExpr(Tuple->elems()[Proj->index()]), setOfExpr(T.Site));
    return;
  }
  case Trigger::CaseScrutinee: {
    const auto *Con = dyn_cast<ConExpr>(SiteValue);
    if (!Con)
      return;
    const auto *Case = cast<CaseExpr>(M.expr(T.Site));
    for (const CaseArm &Arm : Case->arms()) {
      if (Arm.Con != Con->con())
        continue;
      for (size_t I = 0; I != Arm.Binders.size(); ++I)
        addEdge(setOfExpr(Con->args()[I]), setOfVar(Arm.Binders[I]));
    }
    return;
  }
  case Trigger::RefRead: {
    const auto *Prim = dyn_cast<PrimExpr>(SiteValue);
    if (!Prim || Prim->op() != PrimOp::RefNew)
      return;
    addEdge(setOfCell(ValueSite[Value]), setOfExpr(T.Site));
    return;
  }
  case Trigger::RefWrite: {
    const auto *Prim = dyn_cast<PrimExpr>(SiteValue);
    if (!Prim || Prim->op() != PrimOp::RefNew)
      return;
    const auto *Write = cast<PrimExpr>(M.expr(T.Site));
    addEdge(setOfExpr(Write->args()[1]), setOfCell(ValueSite[Value]));
    return;
  }
  }
}

Status StandardCFA::run(const Deadline &D, const CancellationToken &Token) {
  assert(!HasRun && "run() called twice");
  HasRun = true;
  buildStaticConstraints();
  // Governor checkpoint cadence: each pop is cheap, so the clock and
  // token are polled every `Stride` pops (plus pop 0, so injected faults
  // fire deterministically even on tiny inputs).
  constexpr uint64_t Stride = 4096;
  uint64_t Pops = 0;
  while (!Pending.empty()) {
    if (Pops++ % Stride == 0) {
      if (Token.cancelled())
        return RunStatus = Status::cancelled("standard CFA cancelled");
      if (D.expired() || faultFires(fault::HybridStandardDeadline))
        return RunStatus =
                   Status::deadlineExceeded("standard CFA exceeded its "
                                            "deadline");
    }
    auto [Set, Value] = Pending.front();
    Pending.pop_front();
    for (uint32_t T : TriggersOf[Set])
      fireTrigger(T, Value);
    for (uint32_t Dst : Succs[Set]) {
      ++Stats.Propagations;
      queueInsert(Dst, Value);
    }
  }
  return RunStatus = Status::ok();
}

DenseBitset StandardCFA::labelSet(ExprId E) const {
  assert(HasRun && "labelSet before run()");
  DenseBitset Out(M.numLabels());
  Sets[E.index()].forEach([&](uint32_t V) {
    if (V < M.numLabels())
      Out.insert(V);
  });
  return Out;
}

DenseBitset StandardCFA::labelSetOfVar(VarId V) const {
  assert(HasRun && "labelSetOfVar before run()");
  DenseBitset Out(M.numLabels());
  Sets[M.numExprs() + V.index()].forEach([&](uint32_t Val) {
    if (Val < M.numLabels())
      Out.insert(Val);
  });
  return Out;
}
