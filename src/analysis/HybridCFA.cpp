//===-- analysis/HybridCFA.cpp - The Conclusion's hybrid analysis ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/HybridCFA.h"

#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cstdio>

using namespace stcfa;

const char *stcfa::engineName(HybridCFA::Engine E) {
  switch (E) {
  case HybridCFA::Engine::Subtransitive:
    return "subtransitive";
  case HybridCFA::Engine::Standard:
    return "standard";
  case HybridCFA::Engine::PartialAnswer:
    return "partial";
  case HybridCFA::Engine::None:
    return "none";
  }
  return "none";
}

namespace {

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendJsonStatus(std::string &Out, const Status &S) {
  Out += "{\"code\":";
  appendJsonString(Out, statusCodeName(S.code()));
  Out += ",\"message\":";
  appendJsonString(Out, S.message());
  Out += '}';
}

} // namespace

std::string DegradationReport::toJson() const {
  std::string Out = "{\"served\":";
  appendJsonString(Out, Served);
  Out += ",\"final\":";
  appendJsonStatus(Out, Final);
  Out += ",\"attempts\":[";
  for (size_t I = 0; I != Attempts.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"rung\":";
    appendJsonString(Out, Attempts[I].Rung);
    Out += ",\"status\":";
    appendJsonStatus(Out, Attempts[I].S);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), ",\"millis\":%.3f}", Attempts[I].Millis);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

HybridCFA::HybridCFA(const Module &M, uint32_t BudgetFactor, unsigned Threads)
    : M(M) {
  Opts.BudgetFactor = BudgetFactor;
  Opts.Threads = Threads;
}

HybridCFA::HybridCFA(const Module &M, const HybridOptions &Opts)
    : M(M), Opts(Opts) {}

Status HybridCFA::solve() {
  assert(!HasRun && "solve() called twice");
  HasRun = true;
  Span SolveSpan("hybrid.solve");
  auto finish = [&](Status F) {
    static Counter &Solves = counter("hybrid.solves");
    Solves.inc();
    Report.Served = engineName(Used);
    SolveSpan.arg("attempts", Report.Attempts.size());
    SolveSpan.arg("served", engineName(Used));
    return Report.Final = std::move(F);
  };
  // Every degradation step is one instant event: which rung the ladder
  // moves to (0 = no answer) and the Status code that forced the move.
  auto rungTransition = [](const Status &Why, uint64_t ToRung) {
    static Counter &Transitions = counter("hybrid.rung_transitions");
    Transitions.inc();
    traceInstant("hybrid.rung-transition", "cause", statusCodeName(Why.code()),
                 "to_rung", ToRung);
  };

  // Rung 1: the subtransitive analysis with exact datatype tracking (so a
  // success has exactly standard-CFA precision) and a linear node budget.
  Timer SubTimer;
  Status SubStatus = Status::ok();
  {
    Span RungSpan("hybrid.subtransitive");
    SubtransitiveConfig C;
    C.Congruence = CongruenceMode::None;
    C.MaxNodes = uint64_t(Opts.BudgetFactor) * M.numExprs() + 1024;
    Graph = std::make_unique<SubtransitiveGraph>(M, C);
    Graph->build();
    SubStatus = Graph->close(Opts.D, Opts.Token);
    if (SubStatus.isOk() && Graph->stats().Widenings != 0)
      // Widening trades precision for termination; a widened graph is not
      // standard-CFA-exact, which is the signature of a program outside
      // the bounded-type classes — same treatment as a blown budget.
      SubStatus = Status::resourceExhausted(
          "depth widening engaged: program is outside the bounded-type "
          "classes");
    if (SubStatus.isOk() && faultFires(fault::HybridSubtransitiveBudget))
      SubStatus =
          Status::resourceExhausted("injected subtransitive budget exhaustion");
    RungSpan.arg("status", statusCodeName(SubStatus.code()));
  }
  Report.Attempts.push_back({"subtransitive", SubStatus, SubTimer.millis()});

  if (SubStatus.isOk()) {
    // Rung 1, second half: freeze the graph into the CSR serving snapshot.
    Timer FreezeTimer;
    Status FreezeStatus;
    if (faultFires(fault::HybridFreezeAlloc))
      FreezeStatus = Status::outOfMemory("injected CSR allocation failure");
    else
      Frozen = FrozenGraph::freeze(*Graph, FreezeStatus, Opts.D);
    Report.Attempts.push_back({"freeze", FreezeStatus, FreezeTimer.millis()});
    if (FreezeStatus.isOk()) {
      Queries = std::make_unique<QueryEngine>(*Frozen, Opts.Threads);
      Queries->setKernelThreshold(Opts.KernelThreshold);
      Queries->setKernelChunkRows(Opts.KernelChunkRows);
      Used = Engine::Subtransitive;
      return finish(Status::ok());
    }
    SubStatus = FreezeStatus; // a failed freeze degrades like a failed close
  }

  // The partial graph is useless (reachability over it is unsound) —
  // discard it before deciding the next rung.
  Graph.reset();

  if (SubStatus == StatusCode::Cancelled || Opts.Degrade == DegradeMode::Off) {
    rungTransition(SubStatus, 0);
    Used = Engine::None;
    return finish(SubStatus);
  }

  // Rung 2: the standard cubic algorithm under the remaining deadline.
  rungTransition(SubStatus, 2);
  if (!Opts.D.expired()) {
    Timer StdTimer;
    Status StdStatus = Status::ok();
    {
      Span RungSpan("hybrid.standard");
      Fallback = std::make_unique<StandardCFA>(M);
      StdStatus = Fallback->run(Opts.D, Opts.Token);
      RungSpan.arg("status", statusCodeName(StdStatus.code()));
    }
    Report.Attempts.push_back({"standard", StdStatus, StdTimer.millis()});
    if (StdStatus.isOk()) {
      Used = Engine::Standard;
      return finish(Status::ok());
    }
    // A timed-out standard run holds *under*-approximate sets — never
    // serve them.
    Fallback.reset();
    if (StdStatus == StatusCode::Cancelled) {
      rungTransition(StdStatus, 0);
      Used = Engine::None;
      return finish(StdStatus);
    }
    SubStatus = StdStatus;
  } else {
    Report.Attempts.push_back(
        {"standard",
         Status::deadlineExceeded("skipped: deadline already expired"), 0.0});
    SubStatus = Status::deadlineExceeded("deadline expired before the "
                                         "standard rung could start");
  }

  // Rung 3: the bounded partial answer — every label set is the universal
  // set, a conservative superset of any exact answer, in O(labels) time.
  if (Opts.Degrade == DegradeMode::Partial) {
    rungTransition(SubStatus, 3);
    Span RungSpan("hybrid.partial");
    Report.Attempts.push_back({"partial", Status::ok(), 0.0});
    Used = Engine::PartialAnswer;
    return finish(Status::ok());
  }

  rungTransition(SubStatus, 0);
  Used = Engine::None;
  return finish(SubStatus);
}

DenseBitset HybridCFA::universalLabels() const {
  DenseBitset Out(M.numLabels());
  for (uint32_t L = 0, E = M.numLabels(); L != E; ++L)
    Out.insert(L);
  return Out;
}

DenseBitset HybridCFA::labelSet(ExprId E) {
  assert(HasRun && "query before run()");
  switch (Used) {
  case Engine::Subtransitive:
    return Queries->labelsOf(E);
  case Engine::Standard:
    return Fallback->labelSet(E);
  case Engine::PartialAnswer:
    return universalLabels();
  case Engine::None:
    break;
  }
  return DenseBitset(M.numLabels());
}

DenseBitset HybridCFA::labelSetOfVar(VarId V) {
  assert(HasRun && "query before run()");
  switch (Used) {
  case Engine::Subtransitive:
    return Queries->labelsOfVar(V);
  case Engine::Standard:
    return Fallback->labelSetOfVar(V);
  case Engine::PartialAnswer:
    return universalLabels();
  case Engine::None:
    break;
  }
  return DenseBitset(M.numLabels());
}
