//===-- analysis/HybridCFA.cpp - The Conclusion's hybrid analysis ---------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/HybridCFA.h"

using namespace stcfa;

HybridCFA::HybridCFA(const Module &M, uint32_t BudgetFactor, unsigned Threads)
    : M(M), BudgetFactor(BudgetFactor), Threads(Threads) {}

void HybridCFA::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // Attempt the subtransitive analysis with exact datatype tracking (so a
  // success has exactly standard-CFA precision) and a linear node budget.
  SubtransitiveConfig C;
  C.Congruence = CongruenceMode::None;
  C.MaxNodes = uint64_t(BudgetFactor) * M.numExprs() + 1024;
  Graph = std::make_unique<SubtransitiveGraph>(M, C);
  Graph->build();
  Graph->close();
  if (!Graph->aborted() && Graph->stats().Widenings == 0) {
    // Serve queries from a frozen CSR snapshot: identical answers to
    // `Reachability` over the linked-list adjacency, better locality.
    Frozen = std::make_unique<FrozenGraph>(*Graph);
    Queries = std::make_unique<QueryEngine>(*Frozen, Threads);
    Used = Engine::Subtransitive;
    return;
  }

  // Outside the bounded-type classes: fall back to the standard
  // algorithm, which terminates for arbitrary programs.
  Graph.reset();
  Fallback = std::make_unique<StandardCFA>(M);
  Fallback->run();
  Used = Engine::Standard;
}

DenseBitset HybridCFA::labelSet(ExprId E) {
  assert(HasRun && "query before run()");
  return Used == Engine::Subtransitive ? Queries->labelsOf(E)
                                       : Fallback->labelSet(E);
}

DenseBitset HybridCFA::labelSetOfVar(VarId V) {
  assert(HasRun && "query before run()");
  return Used == Engine::Subtransitive ? Queries->labelsOfVar(V)
                                       : Fallback->labelSetOfVar(V);
}
