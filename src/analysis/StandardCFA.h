//===-- analysis/StandardCFA.h - The cubic baseline analysis ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "standard algorithm" (Section 2): monovariant,
/// inclusion-based control-flow analysis computed as a least fixed point
/// with a worklist — `O(n^3)` time, `O(n^2)` space.  Extended, like the SBA
/// implementation the paper benchmarks against, to track tuple, data
/// constructor, and ref-cell values so functions are traced through data
/// structures exactly.
///
/// This is both the baseline for the Tables 1/2 benchmarks (with
/// machine-independent work counters) and the ground truth for the
/// equivalence property tests: on ref-free programs the transitive closure
/// of the subtransitive graph must yield exactly these label sets
/// (Propositions 1 and 2).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_ANALYSIS_STANDARDCFA_H
#define STCFA_ANALYSIS_STANDARDCFA_H

#include "ast/Module.h"
#include "support/Deadline.h"
#include "support/DenseBitset.h"
#include "support/Hashing.h"
#include "support/Status.h"

#include <deque>
#include <vector>

namespace stcfa {

/// Machine-independent cost counters ("units of work" in Table 1).
struct StandardCFAStats {
  /// Value transmissions attempted along subset edges.
  uint64_t Propagations = 0;
  /// Successful set insertions.
  uint64_t SetInsertions = 0;
  /// Subset edges materialised (static + dynamically discovered).
  uint64_t Edges = 0;

  uint64_t work() const { return Propagations + SetInsertions + Edges; }
};

/// Runs standard CFA over a module and exposes the label sets.
class StandardCFA {
public:
  /// With \p TrackLiterals, literal constants become abstract value sites
  /// too (value ids above the tuple/con/ref sites), so `valueSet` also
  /// answers "may a base-type constant flow here?".  Label sets are
  /// unchanged either way; the lint differential reference uses this to
  /// check applied-non-function findings against ground truth.
  explicit StandardCFA(const Module &M, bool TrackLiterals = false);

  /// Solves the constraint system to its least fixed point.
  void run() { (void)run(Deadline::infinite()); }

  /// Governed solve: polls \p D and \p Token every few thousand worklist
  /// pops.  On `DeadlineExceeded`/`Cancelled` the partial sets are
  /// *under*-approximations — `HybridCFA` treats such a run as failed and
  /// never serves them as sound answers.
  Status run(const Deadline &D, const CancellationToken &Token = {});

  /// The status of the last `run` (`Ok` for a completed fixed point).
  const Status &runStatus() const { return RunStatus; }

  /// The abstraction labels that may flow to occurrence \p E.  Universe is
  /// `Module::numLabels()`.  Only valid after `run`.
  DenseBitset labelSet(ExprId E) const;

  /// The abstraction labels that may flow to binder \p V.
  DenseBitset labelSetOfVar(VarId V) const;

  /// Raw abstract-value set (labels plus data/ref sites) of an occurrence.
  const DenseBitset &valueSet(ExprId E) const { return Sets[E.index()]; }

  /// The site expression introducing abstract value \p V (a lam for
  /// `V < Module::numLabels()`, else a tuple/con/refnew — or literal
  /// under `TrackLiterals` — occurrence).
  ExprId valueSite(uint32_t V) const { return ValueSite[V]; }

  const StandardCFAStats &stats() const { return Stats; }

  /// Total number of tracked abstract values (labels + tuple/con/ref sites).
  uint32_t numValues() const { return NumValues; }

private:
  //===--- set index space: exprs, then binders, then ref cells -----------==//

  uint32_t setOfExpr(ExprId E) const { return E.index(); }
  uint32_t setOfVar(VarId V) const { return M.numExprs() + V.index(); }
  /// The contents set of the cell allocated at RefNew site \p E.
  uint32_t setOfCell(ExprId E) const {
    assert(CellOfExpr[E.index()] != ~0u && "not a ref site");
    return CellOfExpr[E.index()];
  }

  void addEdge(uint32_t Src, uint32_t Dst);
  void queueInsert(uint32_t Set, uint32_t Value);
  void buildStaticConstraints();
  void fireTrigger(uint32_t TriggerIndex, uint32_t Value);

  /// A dynamic constraint attached to a set; fires for each value arriving
  /// at that set.
  struct Trigger {
    enum KindT : uint8_t { AppFn, ProjTuple, CaseScrutinee, RefRead, RefWrite }
        Kind;
    ExprId Site;
  };

  const Module &M;
  uint32_t NumValues = 0;
  /// valueId -> the site expression (lam/tuple/con/refnew).
  std::vector<ExprId> ValueSite;
  /// exprId -> valueId for value-introducing expressions (else invalid).
  std::vector<uint32_t> ValueOfExpr;
  /// exprId -> cell set index for RefNew sites (else ~0u).
  std::vector<uint32_t> CellOfExpr;

  std::vector<DenseBitset> Sets;
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<std::vector<uint32_t>> TriggersOf; // set -> trigger indices
  std::vector<Trigger> Triggers;
  U64Set EdgeSet;
  std::deque<std::pair<uint32_t, uint32_t>> Pending; // (set, value)
  StandardCFAStats Stats;
  Status RunStatus;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_ANALYSIS_STANDARDCFA_H
