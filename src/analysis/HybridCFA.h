//===-- analysis/HybridCFA.h - The Conclusion's hybrid analysis -*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid the paper's Conclusion proposes: "Our algorithm could
/// potentially be combined with the standard cubic-time CFA algorithm to
/// obtain a hybrid algorithm that terminates for arbitrary programs but is
/// linear for bounded-type programs."
///
/// Strategy: attempt the subtransitive analysis with exact datatype
/// tracking and a node budget proportional to the program size.  If the
/// close phase blows the budget or the depth widening engages — the
/// signatures of a program outside the bounded-type classes — discard the
/// graph and run the standard (always-terminating) algorithm instead.
/// On bounded-type programs the subtransitive attempt succeeds and the
/// whole analysis is (near-)linear, with exactly standard-CFA precision.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_ANALYSIS_HYBRIDCFA_H
#define STCFA_ANALYSIS_HYBRIDCFA_H

#include "analysis/StandardCFA.h"
#include "core/QueryEngine.h"
#include "core/SubtransitiveGraph.h"

#include <memory>

namespace stcfa {

/// Subtransitive-first CFA with a cubic fallback.
class HybridCFA {
public:
  /// \p BudgetFactor bounds the subtransitive attempt at
  /// `BudgetFactor * numExprs` nodes before falling back.  \p Threads is
  /// forwarded to the query engine (batched queries shard across it).
  explicit HybridCFA(const Module &M, uint32_t BudgetFactor = 8,
                     unsigned Threads = 1);

  void run();

  /// Which engine produced the results.
  enum class Engine : uint8_t { Subtransitive, Standard };
  Engine engine() const { return Used; }

  /// Labels flowing to occurrence \p E (frozen-graph reachability via the
  /// query engine under the subtransitive engine; a table read under the
  /// fallback).
  DenseBitset labelSet(ExprId E);
  DenseBitset labelSetOfVar(VarId V);

  /// The graph, when the subtransitive engine succeeded (else null).
  const SubtransitiveGraph *graph() const { return Graph.get(); }

  /// The frozen CSR snapshot and its query engine, when the
  /// subtransitive engine succeeded (else null).
  const FrozenGraph *frozen() const { return Frozen.get(); }
  QueryEngine *queryEngine() { return Queries.get(); }

private:
  const Module &M;
  uint32_t BudgetFactor;
  unsigned Threads;
  Engine Used = Engine::Subtransitive;
  std::unique_ptr<SubtransitiveGraph> Graph;
  std::unique_ptr<FrozenGraph> Frozen;
  std::unique_ptr<QueryEngine> Queries;
  std::unique_ptr<StandardCFA> Fallback;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_ANALYSIS_HYBRIDCFA_H
