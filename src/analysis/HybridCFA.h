//===-- analysis/HybridCFA.h - The Conclusion's hybrid analysis -*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid the paper's Conclusion proposes: "Our algorithm could
/// potentially be combined with the standard cubic-time CFA algorithm to
/// obtain a hybrid algorithm that terminates for arbitrary programs but is
/// linear for bounded-type programs."
///
/// Extended here into a *degradation ladder* under a resource governor:
///
///   1. subtransitive — exact datatype tracking, linear node budget,
///      governed close; succeeds iff the program is in the bounded-type
///      classes and the deadline holds.  Exactly standard-CFA precision.
///   2. standard      — the always-terminating cubic algorithm, run under
///      whatever deadline remains.  Exact, but slower.
///   3. partial       — a bounded partial answer: every queried label set
///      is the *universal* set, a trivially conservative superset of the
///      true answer, returned in O(labels) time.
///
/// Each rung's outcome (status + wall time) lands in a machine-readable
/// `DegradationReport`.  Cancellation never degrades — a cancelled
/// analysis stops with no answer, because the caller asked it to stop.
/// `DegradeMode::Off` pins the ladder to rung 1 (fail instead of
/// degrading); `Standard` (the default, matching the paper's hybrid)
/// stops after rung 2; `Partial` walks all three rungs.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_ANALYSIS_HYBRIDCFA_H
#define STCFA_ANALYSIS_HYBRIDCFA_H

#include "analysis/StandardCFA.h"
#include "core/QueryEngine.h"
#include "core/SubtransitiveGraph.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace stcfa {

/// How far down the ladder the hybrid may degrade.
enum class DegradeMode : uint8_t {
  Off,      ///< Subtransitive or nothing: a failed rung 1 is a hard error.
  Standard, ///< The paper's hybrid: fall back to the cubic algorithm.
  Partial,  ///< Always answer: degrade to the universal-set partial rung.
};

/// Construction-time resource controls for `HybridCFA`.
struct HybridOptions {
  /// Bounds the subtransitive attempt at `BudgetFactor * numExprs` nodes.
  uint32_t BudgetFactor = 8;
  /// Worker lanes for the query engine (batched queries shard across it).
  unsigned Threads = 1;
  /// Wall-clock deadline over the whole ladder (infinite by default).
  Deadline D;
  /// Cooperative cancellation; a cancelled run serves no answer.
  CancellationToken Token;
  DegradeMode Degrade = DegradeMode::Standard;
  /// Batch size above which the query engine's batched entry points
  /// dispatch to the word-parallel label-set kernel (0 disables it).
  size_t KernelThreshold = QueryEngine::DefaultKernelThreshold;
  /// Level-merge threshold for the kernel's chunked scheduler
  /// (`LabelSetKernel::setChunkRows`; <= 1 restores per-level barriers).
  uint32_t KernelChunkRows = LabelSetKernel::DefaultChunkRows;
};

/// Machine-readable record of the degradation ladder: one entry per rung
/// attempted, which rung finally served, and the overall status.
struct DegradationReport {
  struct Attempt {
    /// "subtransitive", "freeze", "standard", or "partial".
    const char *Rung;
    Status S;
    double Millis;
  };
  std::vector<Attempt> Attempts;
  /// The serving rung: "subtransitive", "standard", "partial", or "none".
  const char *Served = "none";
  /// `Ok` when some rung served; the last failure otherwise.
  Status Final;

  /// One-line JSON object (`{"served":...,"final":...,"attempts":[...]}`).
  std::string toJson() const;
};

/// Subtransitive-first CFA with a governed degradation ladder.
class HybridCFA {
public:
  /// Ungoverned construction: infinite deadline, `Standard` degradation —
  /// exactly the paper's hybrid.
  explicit HybridCFA(const Module &M, uint32_t BudgetFactor = 8,
                     unsigned Threads = 1);

  HybridCFA(const Module &M, const HybridOptions &Opts);

  void run() { (void)solve(); }

  /// Walks the ladder.  `Ok` iff some rung served an answer (degraded
  /// service is still `Ok` — consult `report()` / `engine()` for how
  /// degraded); `Cancelled`/`DeadlineExceeded`/`ResourceExhausted` when
  /// no rung could.
  Status solve();

  /// Which engine produced the results.  `None` means no rung served
  /// (query answers are empty; `report().Final` says why).
  enum class Engine : uint8_t { Subtransitive, Standard, PartialAnswer, None };
  Engine engine() const { return Used; }

  const DegradationReport &report() const { return Report; }

  /// Labels flowing to occurrence \p E (frozen-graph reachability via the
  /// query engine under the subtransitive engine; a table read under the
  /// cubic fallback; the universal set under the partial-answer rung).
  DenseBitset labelSet(ExprId E);
  DenseBitset labelSetOfVar(VarId V);

  /// The graph, when the subtransitive engine succeeded (else null).
  const SubtransitiveGraph *graph() const { return Graph.get(); }

  /// The frozen CSR snapshot and its query engine, when the
  /// subtransitive engine succeeded (else null).
  const FrozenGraph *frozen() const { return Frozen.get(); }
  QueryEngine *queryEngine() { return Queries.get(); }

private:
  DenseBitset universalLabels() const;

  const Module &M;
  HybridOptions Opts;
  Engine Used = Engine::None;
  DegradationReport Report;
  std::unique_ptr<SubtransitiveGraph> Graph;
  std::unique_ptr<FrozenGraph> Frozen;
  std::unique_ptr<QueryEngine> Queries;
  std::unique_ptr<StandardCFA> Fallback;
  bool HasRun = false;
};

/// Printable name of a hybrid engine ("subtransitive", "standard",
/// "partial", "none").
const char *engineName(HybridCFA::Engine E);

} // namespace stcfa

#endif // STCFA_ANALYSIS_HYBRIDCFA_H
