//===-- analysis/DeadCodeAwareCFA.cpp - Liveness-gated 0-CFA --------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCodeAwareCFA.h"

using namespace stcfa;

DeadCodeAwareCFA::DeadCodeAwareCFA(const Module &M) : M(M) {
  ValueOfExpr.assign(M.numExprs(), ~0u);
  CellOfExpr.assign(M.numExprs(), ~0u);
  NumValues = M.numLabels();
  ValueSite.resize(M.numLabels());
  for (uint32_t L = 0; L != M.numLabels(); ++L) {
    ExprId Lam = M.lamOfLabel(LabelId(L));
    ValueSite[L] = Lam;
    ValueOfExpr[Lam.index()] = L;
  }
  uint32_t NumCells = 0;
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    bool IsRef =
        isa<PrimExpr>(E) && cast<PrimExpr>(E)->op() == PrimOp::RefNew;
    if (IsRef)
      CellOfExpr[Id.index()] = M.numExprs() + M.numVars() + NumCells++;
    if (!IsRef && !isa<TupleExpr>(E) && !isa<ConExpr>(E))
      return;
    ValueOfExpr[Id.index()] = NumValues++;
    ValueSite.push_back(Id);
  });

  uint32_t NumSets = M.numExprs() + M.numVars() + NumCells;
  Sets.assign(NumSets, DenseBitset(NumValues));
  Succs.resize(NumSets);
  TriggersOf.resize(NumSets);
  Live.assign(M.numExprs(), false);
  BodyActivated.assign(M.numLabels(), false);
}

void DeadCodeAwareCFA::addEdge(uint32_t Src, uint32_t Dst) {
  uint64_t Key = (uint64_t(Src) + 1) << 32 | (uint64_t(Dst) + 1);
  if (!EdgeSet.insert(Key))
    return;
  Succs[Src].push_back(Dst);
  Sets[Src].forEach([&](uint32_t V) { queueInsert(Dst, V); });
}

void DeadCodeAwareCFA::queueInsert(uint32_t Set, uint32_t Value) {
  if (!Sets[Set].insert(Value))
    return;
  Pending.emplace_back(Set, Value);
}

void DeadCodeAwareCFA::markLive(ExprId E) {
  if (Live[E.index()])
    return;
  Live[E.index()] = true;
  LiveWorklist.push_back(E);
}

/// Installs the constraints of one (newly live) occurrence and marks its
/// evaluated children live.  Lambda bodies stay dormant until the lambda
/// is applied from live code.
void DeadCodeAwareCFA::activate(ExprId Id) {
  const Expr *E = M.expr(Id);
  auto trigger = [&](Trigger::KindT Kind, ExprId Site, uint32_t OnSet) {
    TriggersOf[OnSet].push_back(static_cast<uint32_t>(Triggers.size()));
    Triggers.push_back({Kind, Site});
    // Values that already arrived fire immediately.
    uint32_t Index = static_cast<uint32_t>(Triggers.size() - 1);
    Sets[OnSet].forEach([&](uint32_t V) { fireTrigger(Index, V); });
  };

  switch (E->kind()) {
  case ExprKind::Var:
    addEdge(setOfVar(cast<VarExpr>(E)->var()), setOfExpr(Id));
    return;
  case ExprKind::Lam:
    queueInsert(setOfExpr(Id), cast<LamExpr>(E)->label().index());
    return; // the body waits for a live application
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    markLive(A->fn());
    markLive(A->arg());
    trigger(Trigger::AppFn, Id, setOfExpr(A->fn()));
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    markLive(L->init()); // call-by-value: initializers always run
    markLive(L->body());
    addEdge(setOfExpr(L->init()), setOfVar(L->var()));
    addEdge(setOfExpr(L->body()), setOfExpr(Id));
    return;
  }
  case ExprKind::LetRecN: {
    const auto *L = cast<LetRecNExpr>(E);
    for (const LetRecNExpr::Binding &B : L->bindings()) {
      markLive(B.Init); // the closures are built eagerly
      addEdge(setOfExpr(B.Init), setOfVar(B.Var));
    }
    markLive(L->body());
    addEdge(setOfExpr(L->body()), setOfExpr(Id));
    return;
  }
  case ExprKind::Lit:
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    markLive(I->cond());
    markLive(I->thenExpr());
    markLive(I->elseExpr());
    addEdge(setOfExpr(I->thenExpr()), setOfExpr(Id));
    addEdge(setOfExpr(I->elseExpr()), setOfExpr(Id));
    return;
  }
  case ExprKind::Tuple:
    for (ExprId C : cast<TupleExpr>(E)->elems())
      markLive(C);
    queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
    return;
  case ExprKind::Proj: {
    const auto *P = cast<ProjExpr>(E);
    markLive(P->tuple());
    trigger(Trigger::ProjTuple, Id, setOfExpr(P->tuple()));
    return;
  }
  case ExprKind::Con:
    for (ExprId C : cast<ConExpr>(E)->args())
      markLive(C);
    queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
    return;
  case ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    markLive(C->scrutinee());
    trigger(Trigger::CaseScrutinee, Id, setOfExpr(C->scrutinee()));
    for (const CaseArm &Arm : C->arms()) {
      markLive(Arm.Body);
      addEdge(setOfExpr(Arm.Body), setOfExpr(Id));
    }
    return;
  }
  case ExprKind::Prim: {
    const auto *P = cast<PrimExpr>(E);
    for (ExprId C : P->args())
      markLive(C);
    switch (P->op()) {
    case PrimOp::RefNew:
      queueInsert(setOfExpr(Id), ValueOfExpr[Id.index()]);
      addEdge(setOfExpr(P->args()[0]), setOfCell(Id));
      return;
    case PrimOp::RefGet:
      trigger(Trigger::RefRead, Id, setOfExpr(P->args()[0]));
      return;
    case PrimOp::RefSet:
      trigger(Trigger::RefWrite, Id, setOfExpr(P->args()[0]));
      return;
    default:
      return;
    }
  }
  }
  assert(false && "unknown expression kind");
}

void DeadCodeAwareCFA::fireTrigger(uint32_t TriggerIndex, uint32_t Value) {
  const Trigger T = Triggers[TriggerIndex];
  const Expr *SiteValue = M.expr(ValueSite[Value]);
  switch (T.Kind) {
  case Trigger::AppFn: {
    const auto *Lam = dyn_cast<LamExpr>(SiteValue);
    if (!Lam)
      return;
    const auto *App = cast<AppExpr>(M.expr(T.Site));
    addEdge(setOfExpr(App->arg()), setOfVar(Lam->param()));
    addEdge(setOfExpr(Lam->body()), setOfExpr(T.Site));
    // The liveness refinement: a body runs once the function is applied.
    if (!BodyActivated[Lam->label().index()]) {
      BodyActivated[Lam->label().index()] = true;
      markLive(Lam->body());
    }
    return;
  }
  case Trigger::ProjTuple: {
    const auto *Tuple = dyn_cast<TupleExpr>(SiteValue);
    if (!Tuple)
      return;
    const auto *Proj = cast<ProjExpr>(M.expr(T.Site));
    if (Proj->index() < Tuple->elems().size())
      addEdge(setOfExpr(Tuple->elems()[Proj->index()]), setOfExpr(T.Site));
    return;
  }
  case Trigger::CaseScrutinee: {
    const auto *Con = dyn_cast<ConExpr>(SiteValue);
    if (!Con)
      return;
    const auto *Case = cast<CaseExpr>(M.expr(T.Site));
    for (const CaseArm &Arm : Case->arms()) {
      if (Arm.Con != Con->con())
        continue;
      for (size_t I = 0; I != Arm.Binders.size(); ++I)
        addEdge(setOfExpr(Con->args()[I]), setOfVar(Arm.Binders[I]));
    }
    return;
  }
  case Trigger::RefRead: {
    const auto *Prim = dyn_cast<PrimExpr>(SiteValue);
    if (!Prim || Prim->op() != PrimOp::RefNew)
      return;
    addEdge(setOfCell(ValueSite[Value]), setOfExpr(T.Site));
    return;
  }
  case Trigger::RefWrite: {
    const auto *Prim = dyn_cast<PrimExpr>(SiteValue);
    if (!Prim || Prim->op() != PrimOp::RefNew)
      return;
    const auto *Write = cast<PrimExpr>(M.expr(T.Site));
    addEdge(setOfExpr(Write->args()[1]), setOfCell(ValueSite[Value]));
    return;
  }
  }
}

void DeadCodeAwareCFA::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;
  markLive(M.root());
  while (!LiveWorklist.empty() || !Pending.empty()) {
    if (!LiveWorklist.empty()) {
      ExprId E = LiveWorklist.front();
      LiveWorklist.pop_front();
      activate(E);
      continue;
    }
    auto [Set, Value] = Pending.front();
    Pending.pop_front();
    for (uint32_t T : TriggersOf[Set])
      fireTrigger(T, Value);
    for (uint32_t Dst : Succs[Set])
      queueInsert(Dst, Value);
  }
}

DenseBitset DeadCodeAwareCFA::labelSet(ExprId E) const {
  assert(HasRun && "labelSet before run()");
  DenseBitset Out(M.numLabels());
  Sets[E.index()].forEach([&](uint32_t V) {
    if (V < M.numLabels())
      Out.insert(V);
  });
  return Out;
}

DenseBitset DeadCodeAwareCFA::labelSetOfVar(VarId V) const {
  assert(HasRun && "labelSetOfVar before run()");
  DenseBitset Out(M.numLabels());
  Sets[M.numExprs() + V.index()].forEach([&](uint32_t Val) {
    if (Val < M.numLabels())
      Out.insert(Val);
  });
  return Out;
}

std::vector<LabelId> DeadCodeAwareCFA::deadFunctions() const {
  assert(HasRun && "deadFunctions before run()");
  std::vector<LabelId> Out;
  for (uint32_t L = 0; L != M.numLabels(); ++L) {
    // A function is dead when its own abstraction is dead code, or when
    // it is never applied (body never activated).
    ExprId Lam = M.lamOfLabel(LabelId(L));
    if (!Live[Lam.index()] || !BodyActivated[L])
      Out.push_back(LabelId(L));
  }
  return Out;
}
