//===-- testgen/ShapeGen.cpp - Condensation-shape stress generator --------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "testgen/ShapeGen.h"

#include <cassert>
#include <numeric>
#include <vector>

using namespace stcfa;

namespace {

/// Deterministic xorshift (same recurrence as gen/Generators.cpp: no
/// std::random, reproducibility across standard libraries matters).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform in [0, Bound).
  uint32_t below(uint32_t Bound) {
    assert(Bound > 0);
    return static_cast<uint32_t>(next() % Bound);
  }

private:
  uint64_t State;
};

/// Seed-driven Fisher–Yates permutation of [1, N]: perturbs node-id
/// assignment (and therefore row order) without changing the shape.
std::vector<int> permutation(int N, Rng &R) {
  std::vector<int> P(static_cast<size_t>(N));
  std::iota(P.begin(), P.end(), 1);
  for (int I = N - 1; I > 0; --I)
    std::swap(P[static_cast<size_t>(I)],
              P[R.below(static_cast<uint32_t>(I + 1))]);
  return P;
}

std::string num(int I) { return std::to_string(I); }

/// wide:N — N independent identities all passed through one shared
/// conduit `fs`, whose parameter joins every `w i` label.  The
/// condensation is one fat level of independent consumers.
std::string makeWide(int N, Rng &R) {
  std::string Out = "let fs = fn x => x;\n";
  for (int I : permutation(N, R)) {
    std::string S = num(I);
    Out += "let w" + S + " = fn x => x;\n";
    Out += "let a" + S + " = fs w" + S + ";\n";
    Out += "let r" + S + " = a" + S + " 0;\n";
  }
  Out += "r" + num(N) + "\n";
  return Out;
}

/// deep:N — a single wrapper chain: `f i` calls `f i-1`, so the result
/// of each layer flows into the next and the condensation is a path of
/// length ~N with one component per level.
std::string makeDeep(int N, Rng &) {
  std::string Out = "let f0 = fn x => x;\n";
  for (int I = 1; I <= N; ++I)
    Out += "let f" + num(I) + " = fn x => f" + num(I - 1) + " x;\n";
  Out += "f" + num(N) + " 0\n";
  return Out;
}

/// diamond:N — N stacked diamond blocks: two parallel wrappers `l i`,
/// `r i` around the previous merge point `m i-1`, re-joined by `m i`.
/// Levels alternate width 2 (the branches) and width 1 (the merge).
std::string makeDiamond(int N, Rng &) {
  std::string Out = "let m0 = fn x => x;\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = num(I), P = num(I - 1);
    Out += "let l" + S + " = fn x => m" + P + " x;\n";
    Out += "let r" + S + " = fn x => m" + P + " x;\n";
    Out += "let m" + S + " = fn x => l" + S + " (r" + S + " x);\n";
  }
  Out += "m" + num(N) + " 0\n";
  return Out;
}

/// skewed:N — a wide N-way join (as in wide:N) whose joined result
/// seeds a depth-N wrapper chain (as in deep:N): one fat level, then a
/// long skinny tail.  The seed picks which joined alias anchors the
/// tail.
std::string makeSkewed(int N, Rng &R) {
  std::string Out = "let j = fn x => x;\n";
  for (int I : permutation(N, R)) {
    std::string S = num(I);
    Out += "let s" + S + " = fn x => x;\n";
    Out += "let u" + S + " = j s" + S + ";\n";
  }
  Out += "let d0 = u" + num(1 + static_cast<int>(R.below(
                                    static_cast<uint32_t>(N)))) +
         ";\n";
  for (int I = 1; I <= N; ++I)
    Out += "let d" + num(I) + " = fn x => d" + num(I - 1) + " x;\n";
  Out += "d" + num(N) + " 0\n";
  return Out;
}

} // namespace

const char *stcfa::shapeName(CondShape S) {
  switch (S) {
  case CondShape::Wide:
    return "wide";
  case CondShape::Deep:
    return "deep";
  case CondShape::Diamond:
    return "diamond";
  case CondShape::Skewed:
    return "skewed";
  }
  return "wide";
}

bool stcfa::parseShapeSpec(const std::string &Spec, ShapeSpec &Out) {
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos || Colon + 1 == Spec.size())
    return false;
  std::string Name = Spec.substr(0, Colon);
  ShapeSpec S;
  if (Name == "wide")
    S.Shape = CondShape::Wide;
  else if (Name == "deep")
    S.Shape = CondShape::Deep;
  else if (Name == "diamond")
    S.Shape = CondShape::Diamond;
  else if (Name == "skewed")
    S.Shape = CondShape::Skewed;
  else
    return false;

  std::string Rest = Spec.substr(Colon + 1);
  size_t Colon2 = Rest.find(':');
  std::string NStr = Rest.substr(0, Colon2);
  if (NStr.empty() ||
      NStr.find_first_not_of("0123456789") != std::string::npos)
    return false;
  S.N = std::stoi(NStr);
  if (S.N < 1)
    return false;
  if (Colon2 != std::string::npos) {
    std::string SeedStr = Rest.substr(Colon2 + 1);
    if (SeedStr.empty() ||
        SeedStr.find_first_not_of("0123456789") != std::string::npos)
      return false;
    S.Seed = std::stoull(SeedStr);
  }
  Out = S;
  return true;
}

std::string stcfa::shapeSpecString(const ShapeSpec &Spec) {
  return std::string(shapeName(Spec.Shape)) + ":" + std::to_string(Spec.N) +
         ":" + std::to_string(Spec.Seed);
}

std::string stcfa::makeShapeProgram(const ShapeSpec &Spec) {
  assert(Spec.N >= 1 && "shape size must be positive");
  Rng R(Spec.Seed);
  switch (Spec.Shape) {
  case CondShape::Wide:
    return makeWide(Spec.N, R);
  case CondShape::Deep:
    return makeDeep(Spec.N, R);
  case CondShape::Diamond:
    return makeDiamond(Spec.N, R);
  case CondShape::Skewed:
    return makeSkewed(Spec.N, R);
  }
  return makeWide(Spec.N, R);
}
