//===-- testgen/ShapeGen.h - Condensation-shape stress generator *- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators for programs whose *condensation DAGs* hit
/// shapes the bench corpus (`cubic:N`, `lexgen`, `joinpoint:N`) never
/// produces.  The label-set kernel's schedule — levels, chunks, barrier
/// count, row layout — is a function of that DAG's shape, so these are
/// the stress workloads for the chunked scheduler and the lane-scaling
/// benches:
///
///   * **wide:N** — N independent functions joined through one shared
///     conduit: a DAG that is almost all one massive level.  Maximum
///     per-level parallelism, minimum depth; chunking buys nothing and
///     must cost nothing.
///   * **deep:N** — one wrapper chain of length N: a DAG that is a
///     skinny path, one or two components per level.  The
///     barrier-per-level worst case; level compression should collapse
///     it to O(N / chunkRows) chunks.
///   * **diamond:N** — N stacked diamonds (two parallel branches
///     re-joining per block): alternating width-2 / width-1 levels,
///     the interleaved case where both merging and fan-out matter.
///   * **skewed:N** — a wide N-way join feeding a depth-N wrapper
///     chain: one fat level then a long skinny tail, so a good
///     schedule must switch strategy mid-DAG.
///
/// All programs are well-typed, monomorphic, and deterministic in
/// `(shape, N, seed)` — the seed only permutes emission order and join
/// choices, never the shape class.  Specs parse from the driver syntax
/// `wide:N[:seed]` (`stcfa --corpus=wide:64`, `--gen-shape=deep:500`).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_TESTGEN_SHAPEGEN_H
#define STCFA_TESTGEN_SHAPEGEN_H

#include <cstdint>
#include <string>

namespace stcfa {

/// The condensation-DAG shape families.
enum class CondShape : uint8_t { Wide, Deep, Diamond, Skewed };

/// Spec name of a family: "wide" | "deep" | "diamond" | "skewed".
const char *shapeName(CondShape S);

/// Number of shape families (for iteration in smokes/benches).
inline constexpr int NumCondShapes = 4;

/// A parsed `<family>:<N>[:<seed>]` spec.
struct ShapeSpec {
  CondShape Shape = CondShape::Wide;
  /// Size parameter: leaves (wide), chain length (deep), blocks
  /// (diamond), fan width == tail depth (skewed).
  int N = 16;
  uint64_t Seed = 1;
};

/// Parses `wide:64`, `deep:500:7`, ... into \p Out.  Returns false (and
/// leaves \p Out untouched) unless the family name is known and N >= 1.
bool parseShapeSpec(const std::string &Spec, ShapeSpec &Out);

/// Renders \p Spec back to its canonical `<family>:<N>:<seed>` form.
std::string shapeSpecString(const ShapeSpec &Spec);

/// Emits the program for \p Spec; deterministic in the whole spec.
std::string makeShapeProgram(const ShapeSpec &Spec);

} // namespace stcfa

#endif // STCFA_TESTGEN_SHAPEGEN_H
