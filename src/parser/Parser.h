//===-- parser/Parser.h - Recursive-descent parser --------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a scope-resolved `Module`.
///
/// Grammar (see README for the full description):
///
/// \code
///   program  := item* expr
///   item     := 'data' UIdent '=' conDef ('|' conDef)* ';'
///             | ('let'|'letrec') ident '=' expr ';'
///   conDef   := UIdent ('(' type (',' type)* ')')?
///   type     := tyAtom ('->' type)?
///   tyAtom   := 'Int' | 'Bool' | 'Unit' | 'String' | 'Ref' tyAtom
///             | UIdent | '(' type (',' type)* ')'
///   expr     := 'fn' ident '=>' expr
///             | ('let'|'letrec') ident '=' expr 'in' expr
///             | 'if' expr 'then' expr 'else' expr
///             | assign
///   assign   := compare (':=' assign)?
///   compare  := add (('<'|'<='|'==') add)?
///   add      := mul (('+'|'-') mul)*
///   mul      := apps (('*'|'/') apps)*
///   apps     := prefix+
///   prefix   := ('not'|'print'|'ref'|'!') prefix | atom
///   atom     := ident | UIdent ('(' expr (',' expr)* ')')?
///             | INT | STRING | 'true' | 'false' | 'unit' | '(' ')'
///             | '#' INT atom | '(' expr (',' expr)* ')'
///             | 'case' expr 'of' arm ('|' arm)* 'end'
///   arm      := UIdent ('(' ident (',' ident)* ')')? '=>' expr
/// \endcode
///
/// Scope resolution happens during parsing; variables must be bound,
/// constructors declared (with matching arity), and `letrec` initializers
/// must be abstractions.  Datatype names may be referenced before their
/// declaration; unresolved names are reported after the whole program is
/// parsed.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_PARSER_PARSER_H
#define STCFA_PARSER_PARSER_H

#include "ast/Module.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace stcfa {

/// Parses \p Source into a fresh module.  Returns nullptr (with diagnostics
/// in \p Diags) on any error.
std::unique_ptr<Module> parseProgram(std::string_view Source,
                                     DiagnosticEngine &Diags);

//===--- fragment parsing (the delta layer) --------------------------------//
//
// The edit-delta layer (src/delta) re-parses *one definition at a time*
// into a live module instead of re-parsing the whole program.  Both entry
// points append to \p M only — a failed parse leaves at most unreachable
// garbage subtrees, never dangling references — and resolve free names
// through an explicit environment instead of the whole-program scope
// stack.  The expression/binder creation order matches what `parseProgram`
// would produce for the same text in context; the delta layer's
// canonical<->shadow id mapping relies on that.

/// One top-level definition parsed in isolation.
struct FragmentDef {
  Symbol Name;
  bool IsRec = false;
  /// The definition's binder: `ReuseBinder` when the caller supplied one
  /// (a replace edit keeps the old binder so downstream references stay
  /// resolved), otherwise freshly created.
  VarId Binder;
  ExprId Init;
};

/// Parses `let <name> = <expr>;` or `letrec <name> = <expr>;` into \p M,
/// resolving free names through \p Env (outermost first; later entries
/// shadow earlier ones).  Multi-binding `letrec ... and ...` groups and
/// `data` declarations are rejected.  Returns false with diagnostics in
/// \p Diags on any error.
bool parseTopDefFragment(Module &M, std::string_view Text,
                         const std::vector<std::pair<Symbol, VarId>> &Env,
                         DiagnosticEngine &Diags, FragmentDef &Out,
                         VarId ReuseBinder = VarId::invalid());

/// Parses one bare expression (e.g. a replacement program body) into \p M
/// under \p Env.  Returns an invalid id with diagnostics on error.
ExprId parseExprFragment(Module &M, std::string_view Text,
                         const std::vector<std::pair<Symbol, VarId>> &Env,
                         DiagnosticEngine &Diags);

} // namespace stcfa

#endif // STCFA_PARSER_PARSER_H
