//===-- parser/Parser.h - Recursive-descent parser --------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a scope-resolved `Module`.
///
/// Grammar (see README for the full description):
///
/// \code
///   program  := item* expr
///   item     := 'data' UIdent '=' conDef ('|' conDef)* ';'
///             | ('let'|'letrec') ident '=' expr ';'
///   conDef   := UIdent ('(' type (',' type)* ')')?
///   type     := tyAtom ('->' type)?
///   tyAtom   := 'Int' | 'Bool' | 'Unit' | 'String' | 'Ref' tyAtom
///             | UIdent | '(' type (',' type)* ')'
///   expr     := 'fn' ident '=>' expr
///             | ('let'|'letrec') ident '=' expr 'in' expr
///             | 'if' expr 'then' expr 'else' expr
///             | assign
///   assign   := compare (':=' assign)?
///   compare  := add (('<'|'<='|'==') add)?
///   add      := mul (('+'|'-') mul)*
///   mul      := apps (('*'|'/') apps)*
///   apps     := prefix+
///   prefix   := ('not'|'print'|'ref'|'!') prefix | atom
///   atom     := ident | UIdent ('(' expr (',' expr)* ')')?
///             | INT | STRING | 'true' | 'false' | 'unit' | '(' ')'
///             | '#' INT atom | '(' expr (',' expr)* ')'
///             | 'case' expr 'of' arm ('|' arm)* 'end'
///   arm      := UIdent ('(' ident (',' ident)* ')')? '=>' expr
/// \endcode
///
/// Scope resolution happens during parsing; variables must be bound,
/// constructors declared (with matching arity), and `letrec` initializers
/// must be abstractions.  Datatype names may be referenced before their
/// declaration; unresolved names are reported after the whole program is
/// parsed.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_PARSER_PARSER_H
#define STCFA_PARSER_PARSER_H

#include "ast/Module.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace stcfa {

/// Parses \p Source into a fresh module.  Returns nullptr (with diagnostics
/// in \p Diags) on any error.
std::unique_ptr<Module> parseProgram(std::string_view Source,
                                     DiagnosticEngine &Diags);

} // namespace stcfa

#endif // STCFA_PARSER_PARSER_H
