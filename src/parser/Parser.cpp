//===-- parser/Parser.cpp - Recursive-descent parser ----------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <unordered_map>

using namespace stcfa;

namespace {

/// The parser proper.  On the first error `Failed` is set and every entry
/// point returns an invalid id; callers bail out promptly.
class ParserImpl {
public:
  ParserImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Lex(Source, Diags), Diags(Diags),
        Owned(std::make_unique<Module>()), M(Owned.get()) {
    Tok = Lex.next();
  }

  /// Fragment mode: parse into an existing module (the delta layer's
  /// shadow module).  The module is only appended to; on failure the
  /// appended subtrees are unreachable garbage, never dangling.
  ParserImpl(std::string_view Source, DiagnosticEngine &Diags,
             Module &Existing)
      : Lex(Source, Diags), Diags(Diags), M(&Existing) {
    Tok = Lex.next();
  }

  std::unique_ptr<Module> run();

  /// Parses one `let name = expr;` / `letrec name = expr;` item with the
  /// given name environment in scope.  See `parseTopDefFragment`.
  bool runTopDefFragment(const std::vector<std::pair<Symbol, VarId>> &Env,
                         FragmentDef &Out, VarId ReuseBinder);

  /// Parses one bare expression with the given environment in scope.
  ExprId runExprFragment(const std::vector<std::pair<Symbol, VarId>> &Env);

private:
  //===--- token plumbing --------------------------------------------------//

  void bump() {
    // Track the end of the last consumed token: when a production
    // finishes, `PrevEnd` is the exclusive end of its source extent.
    PrevEnd = Tok.End;
    Tok = Lex.next();
  }

  /// Stamps \p E's end position with the end of the last consumed token.
  /// Every `M->make*` result funnels through here so all parsed
  /// expressions carry a full `[start, end)` span.
  ExprId fin(ExprId E) {
    if (E.isValid() && PrevEnd.isValid())
      M->setExprEnd(E, PrevEnd);
    return E;
  }

  bool at(TokenKind K) const { return Tok.Kind == K; }

  bool eat(TokenKind K) {
    if (!at(K))
      return false;
    bump();
    return true;
  }

  void expect(TokenKind K, const char *What) {
    if (eat(K))
      return;
    fail(std::string("expected ") + What);
  }

  void fail(std::string Message) {
    if (!Failed)
      Diags.errorRange({Tok.Loc, Tok.End}, std::move(Message));
    Failed = true;
  }

  //===--- recursion guard --------------------------------------------------//
  //
  // Every self-recursive grammar production passes through enter()/leave()
  // on one shared depth counter, so deeply nested input of *any* shape —
  // parens, prefix chains (`!!!...x`), projection chains (`#1 #1 ...`),
  // arrow/`Ref` types — produces a diagnostic instead of a stack overflow.

  bool enter(const char *What) {
    if (Depth >= MaxDepth) {
      fail(std::string(What) + " nesting too deep");
      return false;
    }
    ++Depth;
    return true;
  }

  void leave() { --Depth; }

  //===--- scopes ----------------------------------------------------------//

  VarId bindVar(Symbol Name) {
    VarId Id = M->makeVar(Name);
    Scopes[Name].push_back(Id);
    return Id;
  }

  void unbindVar(Symbol Name) {
    auto It = Scopes.find(Name);
    assert(It != Scopes.end() && !It->second.empty() && "unbalanced scope");
    It->second.pop_back();
  }

  VarId lookupVar(Symbol Name) {
    auto It = Scopes.find(Name);
    if (It == Scopes.end() || It->second.empty())
      return VarId::invalid();
    return It->second.back();
  }

  //===--- grammar ---------------------------------------------------------//

  void parseDataDecl();
  TypeId parseType();
  TypeId parseTypeImpl();
  TypeId parseTypeAtom();
  ExprId parseExpr();
  ExprId parseExprImpl();

  /// A variable occurrence that referred forward to a later member of a
  /// `letrec ... and ...` group; patched when the group closes.
  struct PendingRef {
    ExprId Ref;
    Symbol Name;
    SourceLoc Loc;
  };

  /// Parses `name = init (and name = init)*` after `letrec`, leaving all
  /// names bound in scope.  Forward references among the inits are
  /// deferred and patched here; references that would resolve to an outer
  /// binding shadowed by a group member are rejected (ML scopes every
  /// group name over every initializer).
  bool parseRecBindings(std::vector<Symbol> &Names,
                        std::vector<LetRecNExpr::Binding> &Bindings);
  ExprId parseAssign();
  ExprId parseCompare();
  ExprId parseAdditive();
  ExprId parseMultiplicative();
  ExprId parseApps();
  ExprId parsePrefix();
  ExprId parseAtom();
  ExprId parseCase(SourceLoc Loc);
  ExprId parseParenOrTuple(SourceLoc Loc);

  /// True if the current token can begin a `prefix` expression (and hence
  /// continue an application chain).
  bool startsOperand() const {
    switch (Tok.Kind) {
    case TokenKind::Ident:
    case TokenKind::UIdent:
    case TokenKind::Int:
    case TokenKind::String:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
    case TokenKind::KwUnit:
    case TokenKind::LParen:
    case TokenKind::Hash:
    case TokenKind::KwCase:
    case TokenKind::Bang:
    case TokenKind::KwNot:
    case TokenKind::KwPrint:
    case TokenKind::KwRef:
      return true;
    default:
      return false;
    }
  }

  /// Maximum expression nesting depth (each level costs several stack
  /// frames of recursive descent).
  static constexpr uint32_t MaxDepth = 1000;

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Tok;
  /// Exclusive end position of the last token `bump()` consumed.
  SourceLoc PrevEnd;
  uint32_t Depth = 0;
  bool Failed = false;
  /// Owned in whole-program mode; null in fragment mode, where `M` borrows
  /// the caller's module.
  std::unique_ptr<Module> Owned;
  Module *M;
  std::unordered_map<Symbol, std::vector<VarId>> Scopes;
  /// One frame per letrec group currently being parsed.
  std::vector<std::vector<PendingRef>> PendingGroups;
  /// Datatype names referenced in types, for post-parse validation.
  std::vector<std::pair<Symbol, SourceLoc>> ReferencedDataNames;
  /// Names of declared datatypes.
  std::vector<Symbol> DeclaredDataNames;
};

} // namespace

std::unique_ptr<Module> ParserImpl::run() {
  struct TopBinding {
    SourceLoc Loc;
    std::vector<LetRecNExpr::Binding> Group; // singleton unless a rec group
    bool IsRec;
  };
  std::vector<TopBinding> Bindings;
  ExprId Final = ExprId::invalid();

  while (!Failed) {
    if (at(TokenKind::KwData)) {
      parseDataDecl();
      continue;
    }
    if (at(TokenKind::KwLetRec)) {
      SourceLoc Loc = Tok.Loc;
      bump();
      std::vector<Symbol> Names;
      std::vector<LetRecNExpr::Binding> GroupBindings;
      if (!parseRecBindings(Names, GroupBindings))
        break;
      if (eat(TokenKind::Semi)) {
        Bindings.push_back({Loc, std::move(GroupBindings), /*IsRec=*/true});
        continue;
      }
      expect(TokenKind::KwIn, "';' or 'in'");
      if (Failed)
        break;
      ExprId Body = parseExpr();
      if (Failed)
        break;
      for (size_t I = Names.size(); I != 0; --I)
        unbindVar(Names[I - 1]);
      Final = fin(GroupBindings.size() == 1
                      ? M->makeLet(Loc, GroupBindings[0].Var,
                                   GroupBindings[0].Init, Body, /*IsRec=*/true)
                      : M->makeLetRecN(Loc, std::move(GroupBindings), Body));
      break;
    }
    if (at(TokenKind::KwLet)) {
      SourceLoc Loc = Tok.Loc;
      bump();
      if (!at(TokenKind::Ident)) {
        fail("expected identifier after 'let'");
        break;
      }
      Symbol Name = M->sym(Tok.Text);
      bump();
      expect(TokenKind::Equal, "'='");
      ExprId Init = parseExpr();
      if (Failed)
        break;
      VarId Var = bindVar(Name);
      if (eat(TokenKind::Semi)) {
        Bindings.push_back({Loc, {{Var, Init}}, /*IsRec=*/false});
        continue;
      }
      expect(TokenKind::KwIn, "';' or 'in'");
      if (Failed)
        break;
      ExprId Body = parseExpr();
      if (Failed)
        break;
      unbindVar(Name);
      Final = fin(M->makeLet(Loc, Var, Init, Body, /*IsRec=*/false));
      break;
    }
    Final = parseExpr();
    break;
  }

  if (!Failed && !Final.isValid())
    fail("expected a program body expression");
  if (!Failed)
    expect(TokenKind::Eof, "end of input");

  // Validate datatype references.
  for (auto &[Name, Loc] : ReferencedDataNames) {
    bool Known = false;
    for (Symbol D : DeclaredDataNames)
      Known |= (D == Name);
    if (!Known) {
      Diags.error(Loc, "unknown type name '" + std::string(M->text(Name)) +
                           "'");
      Failed = true;
    }
  }

  if (Failed)
    return nullptr;

  // Fold the pending top-level bindings around the final expression,
  // innermost last.
  for (size_t I = Bindings.size(); I != 0; --I) {
    TopBinding &B = Bindings[I - 1];
    // The folded lets span to the end of the program body.
    if (B.Group.size() == 1)
      Final = fin(M->makeLet(B.Loc, B.Group[0].Var, B.Group[0].Init, Final,
                             B.IsRec));
    else
      Final = fin(M->makeLetRecN(B.Loc, std::move(B.Group), Final));
  }
  M->setRoot(Final);
  return std::move(Owned);
}

bool ParserImpl::runTopDefFragment(
    const std::vector<std::pair<Symbol, VarId>> &Env, FragmentDef &Out,
    VarId ReuseBinder) {
  for (const auto &[S, V] : Env)
    Scopes[S].push_back(V);

  Out.IsRec = at(TokenKind::KwLetRec);
  if (!eat(TokenKind::KwLetRec) && !eat(TokenKind::KwLet)) {
    fail("expected 'let' or 'letrec'");
    return false;
  }
  if (!at(TokenKind::Ident)) {
    fail("expected identifier after 'let'");
    return false;
  }
  Out.Name = M->sym(Tok.Text);
  SourceLoc Loc = Tok.Loc;
  bump();
  expect(TokenKind::Equal, "'='");
  if (Failed)
    return false;

  // Binder/initializer creation order mirrors `run()` exactly — the delta
  // layer's canonical<->shadow id arithmetic depends on it: a letrec binds
  // its name before the initializer, a plain let after.
  if (Out.IsRec) {
    Out.Binder = ReuseBinder.isValid() ? ReuseBinder : M->makeVar(Out.Name);
    Scopes[Out.Name].push_back(Out.Binder);
    Out.Init = parseExpr();
    if (Failed)
      return false;
    if (!isa<LamExpr>(M->expr(Out.Init))) {
      Diags.error(Loc, "letrec initializer must be an abstraction");
      Failed = true;
      return false;
    }
    if (at(TokenKind::KwAnd)) {
      fail("multi-binding letrec groups cannot be edited as fragments");
      return false;
    }
  } else {
    Out.Init = parseExpr();
    if (Failed)
      return false;
    Out.Binder = ReuseBinder.isValid() ? ReuseBinder : M->makeVar(Out.Name);
  }
  expect(TokenKind::Semi, "';' after the definition");
  if (!Failed)
    expect(TokenKind::Eof, "end of input");
  return !Failed;
}

ExprId ParserImpl::runExprFragment(
    const std::vector<std::pair<Symbol, VarId>> &Env) {
  for (const auto &[S, V] : Env)
    Scopes[S].push_back(V);
  ExprId E = parseExpr();
  if (!Failed)
    expect(TokenKind::Eof, "end of input");
  return Failed ? ExprId::invalid() : E;
}

bool ParserImpl::parseRecBindings(std::vector<Symbol> &Names,
                                  std::vector<LetRecNExpr::Binding> &Bindings) {
  PendingGroups.emplace_back();
  do {
    if (!at(TokenKind::Ident)) {
      fail("expected identifier after 'letrec'");
      break;
    }
    Symbol Name = M->sym(Tok.Text);
    SourceLoc Loc = Tok.Loc;
    bump();
    for (Symbol Prev : Names) {
      if (Prev == Name) {
        Diags.error(Loc, "duplicate name '" + std::string(M->text(Name)) +
                             "' in letrec group");
        Failed = true;
      }
    }
    expect(TokenKind::Equal, "'='");
    if (Failed)
      break;
    VarId Var = bindVar(Name);
    ExprId Init = parseExpr();
    if (Failed)
      break;
    if (!isa<LamExpr>(M->expr(Init))) {
      Diags.error(Loc, "letrec initializer must be an abstraction");
      Failed = true;
      break;
    }
    Names.push_back(Name);
    Bindings.push_back({Var, Init});
  } while (eat(TokenKind::KwAnd));

  // Patch forward references now that every group name is in scope;
  // unresolved names may still belong to an enclosing group.
  std::vector<PendingRef> Group = std::move(PendingGroups.back());
  PendingGroups.pop_back();
  for (const PendingRef &R : Group) {
    VarId V = lookupVar(R.Name);
    if (V.isValid()) {
      cast<VarExpr>(M->expr(R.Ref))->setVar(V);
      continue;
    }
    if (!PendingGroups.empty()) {
      PendingGroups.back().push_back(R);
      continue;
    }
    if (!Failed)
      Diags.error(R.Loc,
                  "unbound variable '" + std::string(M->text(R.Name)) + "'");
    Failed = true;
  }
  if (Failed)
    return false;

  // ML scopes every group name over every initializer, but this parser
  // resolves eagerly: an occurrence of a group name that bound to an
  // *outer* shadowed binding inside an earlier initializer would be
  // silently wrong — reject it instead.
  for (size_t I = 0; I != Names.size(); ++I) {
    auto It = Scopes.find(Names[I]);
    assert(It != Scopes.end() && It->second.size() >= 1);
    if (It->second.size() < 2)
      continue;
    VarId Outer = It->second[It->second.size() - 2];
    for (const LetRecNExpr::Binding &B : Bindings) {
      forEachExprPreorder(*M, B.Init, [&](ExprId, const Expr *E) {
        const auto *VE = dyn_cast<VarExpr>(E);
        if (VE && VE->isResolved() && VE->var() == Outer && !Failed) {
          Diags.error(M->expr(B.Init)->loc(),
                      "'" + std::string(M->text(Names[I])) +
                          "' is shadowed by a later member of this letrec "
                          "group; rename one of them");
          Failed = true;
        }
      });
    }
  }
  return !Failed;
}

void ParserImpl::parseDataDecl() {
  SourceLoc Loc = Tok.Loc;
  bump(); // data
  if (!at(TokenKind::UIdent)) {
    fail("expected datatype name after 'data'");
    return;
  }
  Symbol DataName = M->sym(Tok.Text);
  bump();
  for (Symbol D : DeclaredDataNames) {
    if (D == DataName) {
      Diags.error(Loc, "duplicate datatype '" + std::string(M->text(DataName)) +
                           "'");
      Failed = true;
      return;
    }
  }
  DeclaredDataNames.push_back(DataName);
  expect(TokenKind::Equal, "'='");

  TypeId ResultType = M->types().dataType(DataName);
  std::vector<ConId> Cons;
  do {
    if (Failed)
      return;
    if (!at(TokenKind::UIdent)) {
      fail("expected constructor name");
      return;
    }
    Symbol ConName = M->sym(Tok.Text);
    SourceLoc ConLoc = Tok.Loc;
    bump();
    std::vector<TypeId> ArgTypes;
    if (eat(TokenKind::LParen)) {
      do {
        ArgTypes.push_back(parseType());
        if (Failed)
          return;
      } while (eat(TokenKind::Comma));
      expect(TokenKind::RParen, "')'");
    }
    if (M->findCon(ConName).isValid()) {
      Diags.error(ConLoc, "duplicate constructor '" +
                              std::string(M->text(ConName)) + "'");
      Failed = true;
      return;
    }
    Cons.push_back(M->makeCon(ConName, DataName, std::move(ArgTypes),
                              ResultType));
  } while (eat(TokenKind::Pipe));
  expect(TokenKind::Semi, "';' after data declaration");
  M->addDataDecl(DataName, std::move(Cons));
}

TypeId ParserImpl::parseType() {
  // Right-recursive arrow chains (`A -> A -> ...`) and nested tuple types
  // cost stack frames per level, exactly like expressions.
  if (!enter("type"))
    return M->types().unitType();
  TypeId Out = parseTypeImpl();
  leave();
  return Out;
}

TypeId ParserImpl::parseTypeImpl() {
  TypeId Left = parseTypeAtom();
  if (Failed)
    return Left;
  if (eat(TokenKind::Arrow)) {
    TypeId Right = parseType();
    return Failed ? Right : M->types().arrowType(Left, Right);
  }
  return Left;
}

TypeId ParserImpl::parseTypeAtom() {
  TypeTable &TT = M->types();
  if (at(TokenKind::UIdent)) {
    std::string_view Name = Tok.Text;
    SourceLoc Loc = Tok.Loc;
    bump();
    if (Name == "Int")
      return TT.intType();
    if (Name == "Bool")
      return TT.boolType();
    if (Name == "Unit")
      return TT.unitType();
    if (Name == "String")
      return TT.stringType();
    if (Name == "Ref") {
      // `Ref Ref Ref ... t` recurses without passing through parseType.
      if (!enter("type"))
        return TT.unitType();
      TypeId Inner = parseTypeAtom();
      leave();
      return TT.refType(Inner);
    }
    Symbol S = M->sym(Name);
    ReferencedDataNames.emplace_back(S, Loc);
    return TT.dataType(S);
  }
  if (eat(TokenKind::LParen)) {
    std::vector<TypeId> Fields;
    do {
      Fields.push_back(parseType());
      if (Failed)
        return Fields.back();
    } while (eat(TokenKind::Comma));
    expect(TokenKind::RParen, "')'");
    return Fields.size() == 1 ? Fields[0] : TT.tupleType(std::move(Fields));
  }
  fail("expected a type");
  return TT.unitType();
}

ExprId ParserImpl::parseExpr() {
  if (Failed)
    return ExprId::invalid();
  // Bound the recursive descent: deeply nested input must produce a
  // diagnostic, not a stack overflow.
  if (!enter("expression"))
    return ExprId::invalid();
  ExprId Out = parseExprImpl();
  leave();
  return Out;
}

ExprId ParserImpl::parseExprImpl() {
  SourceLoc Loc = Tok.Loc;

  if (eat(TokenKind::KwFn)) {
    if (!at(TokenKind::Ident)) {
      fail("expected parameter name after 'fn'");
      return ExprId::invalid();
    }
    Symbol Name = M->sym(Tok.Text);
    bump();
    expect(TokenKind::FatArrow, "'=>'");
    VarId Param = bindVar(Name);
    ExprId Body = parseExpr();
    unbindVar(Name);
    if (Failed)
      return ExprId::invalid();
    return fin(M->makeLam(Loc, Param, Body));
  }

  if (at(TokenKind::KwLetRec)) {
    bump();
    std::vector<Symbol> Names;
    std::vector<LetRecNExpr::Binding> Bindings;
    if (!parseRecBindings(Names, Bindings))
      return ExprId::invalid();
    expect(TokenKind::KwIn, "'in'");
    ExprId Body = parseExpr();
    for (size_t I = Names.size(); I != 0; --I)
      unbindVar(Names[I - 1]);
    if (Failed)
      return ExprId::invalid();
    if (Bindings.size() == 1)
      return fin(M->makeLet(Loc, Bindings[0].Var, Bindings[0].Init, Body,
                            /*IsRec=*/true));
    return fin(M->makeLetRecN(Loc, std::move(Bindings), Body));
  }

  if (at(TokenKind::KwLet)) {
    bump();
    if (!at(TokenKind::Ident)) {
      fail("expected identifier after 'let'");
      return ExprId::invalid();
    }
    Symbol Name = M->sym(Tok.Text);
    bump();
    expect(TokenKind::Equal, "'='");
    ExprId Init = parseExpr();
    if (Failed)
      return ExprId::invalid();
    VarId Var = bindVar(Name);
    expect(TokenKind::KwIn, "'in'");
    ExprId Body = parseExpr();
    unbindVar(Name);
    if (Failed)
      return ExprId::invalid();
    return fin(M->makeLet(Loc, Var, Init, Body, /*IsRec=*/false));
  }

  if (eat(TokenKind::KwIf)) {
    // All three positions admit full expressions; `then`/`else` terminate
    // the sub-parses, and a dangling `else` binds to the innermost `if`.
    ExprId Cond = parseExpr();
    expect(TokenKind::KwThen, "'then'");
    ExprId Then = parseExpr();
    expect(TokenKind::KwElse, "'else'");
    ExprId Else = parseExpr();
    if (Failed)
      return ExprId::invalid();
    return fin(M->makeIf(Loc, Cond, Then, Else));
  }

  return parseAssign();
}

ExprId ParserImpl::parseAssign() {
  ExprId Left = parseCompare();
  if (Failed)
    return ExprId::invalid();
  if (eat(TokenKind::Assign)) {
    // The right-hand side of `:=` admits full expressions (`r := fn x => x`
    // is common ML style).
    ExprId Right = parseExpr();
    if (Failed)
      return ExprId::invalid();
    return fin(M->makePrim(M->expr(Left)->loc(), PrimOp::RefSet, {Left, Right}));
  }
  return Left;
}

ExprId ParserImpl::parseCompare() {
  ExprId Left = parseAdditive();
  if (Failed)
    return ExprId::invalid();
  PrimOp Op;
  if (at(TokenKind::Less))
    Op = PrimOp::Lt;
  else if (at(TokenKind::LessEqual))
    Op = PrimOp::Le;
  else if (at(TokenKind::EqualEqual))
    Op = PrimOp::Eq;
  else
    return Left;
  bump();
  ExprId Right = parseAdditive();
  if (Failed)
    return ExprId::invalid();
  return fin(M->makePrim(M->expr(Left)->loc(), Op, {Left, Right}));
}

ExprId ParserImpl::parseAdditive() {
  ExprId Left = parseMultiplicative();
  while (!Failed && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
    PrimOp Op = at(TokenKind::Plus) ? PrimOp::Add : PrimOp::Sub;
        bump();
    ExprId Right = parseMultiplicative();
    if (Failed)
      return ExprId::invalid();
    Left = fin(M->makePrim(M->expr(Left)->loc(), Op, {Left, Right}));
  }
  return Failed ? ExprId::invalid() : Left;
}

ExprId ParserImpl::parseMultiplicative() {
  ExprId Left = parseApps();
  while (!Failed && (at(TokenKind::Star) || at(TokenKind::Slash))) {
    PrimOp Op = at(TokenKind::Star) ? PrimOp::Mul : PrimOp::Div;
        bump();
    ExprId Right = parseApps();
    if (Failed)
      return ExprId::invalid();
    Left = fin(M->makePrim(M->expr(Left)->loc(), Op, {Left, Right}));
  }
  return Failed ? ExprId::invalid() : Left;
}

ExprId ParserImpl::parseApps() {
  ExprId Left = parsePrefix();
  while (!Failed && startsOperand()) {
        ExprId Arg = parsePrefix();
    if (Failed)
      return ExprId::invalid();
    Left = fin(M->makeApp(M->expr(Left)->loc(), Left, Arg));
  }
  return Failed ? ExprId::invalid() : Left;
}

ExprId ParserImpl::parsePrefix() {
  SourceLoc Loc = Tok.Loc;
  PrimOp Op;
  if (at(TokenKind::KwNot))
    Op = PrimOp::Not;
  else if (at(TokenKind::KwPrint))
    Op = PrimOp::Print;
  else if (at(TokenKind::KwRef))
    Op = PrimOp::RefNew;
  else if (at(TokenKind::Bang))
    Op = PrimOp::RefGet;
  else
    return parseAtom();
  bump();
  // Prefix chains (`!!!...x`, `ref ref ... x`) recurse without passing
  // through parseExpr, so they need their own depth accounting.
  if (!enter("expression"))
    return ExprId::invalid();
  ExprId Arg = parsePrefix();
  leave();
  if (Failed)
    return ExprId::invalid();
  return fin(M->makePrim(Loc, Op, {Arg}));
}

ExprId ParserImpl::parseAtom() {
  if (Failed)
    return ExprId::invalid();
  SourceLoc Loc = Tok.Loc;

  switch (Tok.Kind) {
  case TokenKind::Ident: {
    Symbol Name = M->sym(Tok.Text);
    VarId Var = lookupVar(Name);
    if (!Var.isValid()) {
      // Inside a letrec group this may be a forward reference to a later
      // member; defer resolution to the group close.
      if (!PendingGroups.empty()) {
        bump();
        ExprId Ref = fin(M->makeVarRef(Loc, VarId::invalid()));
        PendingGroups.back().push_back({Ref, Name, Loc});
        return Ref;
      }
      fail("unbound variable '" + std::string(Tok.Text) + "'");
      return ExprId::invalid();
    }
    bump();
    return fin(M->makeVarRef(Loc, Var));
  }
  case TokenKind::UIdent: {
    Symbol Name = M->sym(Tok.Text);
    ConId Con = M->findCon(Name);
    if (!Con.isValid()) {
      fail("unknown constructor '" + std::string(Tok.Text) + "'");
      return ExprId::invalid();
    }
    bump();
    size_t Arity = M->con(Con).ArgTypes.size();
    std::vector<ExprId> Args;
    if (Arity != 0) {
      expect(TokenKind::LParen, "'(' (constructor arguments)");
      do {
        Args.push_back(parseExpr());
        if (Failed)
          return ExprId::invalid();
      } while (eat(TokenKind::Comma));
      expect(TokenKind::RParen, "')'");
      if (!Failed && Args.size() != Arity) {
        fail("constructor '" + std::string(M->text(Name)) + "' expects " +
             std::to_string(Arity) + " arguments");
      }
    }
    if (Failed)
      return ExprId::invalid();
    return fin(M->makeCon(Loc, Con, std::move(Args)));
  }
  case TokenKind::Int: {
    int64_t Value = Tok.IntValue;
    bump();
    return fin(M->makeIntLit(Loc, Value));
  }
  case TokenKind::String: {
    Symbol S = M->sym(Tok.Text);
    bump();
    return fin(M->makeStringLit(Loc, S));
  }
  case TokenKind::KwTrue:
    bump();
    return fin(M->makeBoolLit(Loc, true));
  case TokenKind::KwFalse:
    bump();
    return fin(M->makeBoolLit(Loc, false));
  case TokenKind::KwUnit:
    bump();
    return fin(M->makeUnitLit(Loc));
  case TokenKind::Hash: {
    bump();
    if (!at(TokenKind::Int) || Tok.IntValue < 1) {
      fail("expected a positive field index after '#'");
      return ExprId::invalid();
    }
    uint32_t Index = static_cast<uint32_t>(Tok.IntValue - 1);
    bump();
    // Projection chains (`#1 #1 ... x`) recurse atom-to-atom.
    if (!enter("expression"))
      return ExprId::invalid();
    ExprId Tuple = parseAtom();
    leave();
    if (Failed)
      return ExprId::invalid();
    return fin(M->makeProj(Loc, Index, Tuple));
  }
  case TokenKind::KwCase:
    bump();
    return parseCase(Loc);
  case TokenKind::LParen:
    bump();
    return parseParenOrTuple(Loc);
  default:
    fail("expected an expression");
    return ExprId::invalid();
  }
}

ExprId ParserImpl::parseCase(SourceLoc Loc) {
  ExprId Scrutinee = parseExpr();
  expect(TokenKind::KwOf, "'of'");
  std::vector<CaseArm> Arms;
  do {
    if (Failed)
      return ExprId::invalid();
    if (!at(TokenKind::UIdent)) {
      fail("expected constructor pattern");
      return ExprId::invalid();
    }
    Symbol ConName = M->sym(Tok.Text);
    ConId Con = M->findCon(ConName);
    if (!Con.isValid()) {
      fail("unknown constructor '" + std::string(Tok.Text) + "'");
      return ExprId::invalid();
    }
    bump();
    size_t Arity = M->con(Con).ArgTypes.size();
    std::vector<VarId> Binders;
    std::vector<Symbol> BinderNames;
    if (Arity != 0) {
      expect(TokenKind::LParen, "'(' (pattern binders)");
      do {
        if (!at(TokenKind::Ident)) {
          fail("expected binder name in pattern");
          return ExprId::invalid();
        }
        Symbol B = M->sym(Tok.Text);
        bump();
        BinderNames.push_back(B);
        Binders.push_back(bindVar(B));
      } while (eat(TokenKind::Comma));
      expect(TokenKind::RParen, "')'");
      if (!Failed && Binders.size() != Arity)
        fail("pattern for '" + std::string(M->text(ConName)) + "' expects " +
             std::to_string(Arity) + " binders");
    }
    expect(TokenKind::FatArrow, "'=>'");
    // Arm bodies admit full expressions: `|` cannot begin an operand and
    // nested `case` is self-delimited by `end`, so there is no ambiguity.
    ExprId Body = Failed ? ExprId::invalid() : parseExpr();
    if (!Failed && !at(TokenKind::Pipe) && !at(TokenKind::KwEnd))
      fail("expected '|' or 'end' after case arm");
    for (size_t I = BinderNames.size(); I != 0; --I)
      unbindVar(BinderNames[I - 1]);
    if (Failed)
      return ExprId::invalid();
    Arms.push_back({Con, std::move(Binders), Body});
  } while (eat(TokenKind::Pipe));
  expect(TokenKind::KwEnd, "'end'");
  if (Failed)
    return ExprId::invalid();
  return fin(M->makeCase(Loc, Scrutinee, std::move(Arms)));
}

ExprId ParserImpl::parseParenOrTuple(SourceLoc Loc) {
  if (eat(TokenKind::RParen))
    return fin(M->makeUnitLit(Loc));
  std::vector<ExprId> Elems;
  do {
    Elems.push_back(parseExpr());
    if (Failed)
      return ExprId::invalid();
  } while (eat(TokenKind::Comma));
  expect(TokenKind::RParen, "')'");
  if (Failed)
    return ExprId::invalid();
  if (Elems.size() == 1)
    return Elems[0];
  return fin(M->makeTuple(Loc, std::move(Elems)));
}

// Case-arm body precedence note: arm bodies parse at `assign` level, so an
// abstraction or `let` in an arm must be parenthesized — the printer
// mirrors this.

std::unique_ptr<Module> stcfa::parseProgram(std::string_view Source,
                                            DiagnosticEngine &Diags) {
  Span ParseSpan("parse");
  ParseSpan.arg("source_bytes", Source.size());
  static Counter &Programs = counter("parse.programs");
  static Counter &Exprs = counter("parse.exprs");
  static Counter &Failures = counter("parse.failures");
  Programs.inc();
  ParserImpl P(Source, Diags);
  std::unique_ptr<Module> M = P.run();
  if (Diags.hasErrors()) {
    Failures.inc();
    ParseSpan.arg("status", "error");
    return nullptr;
  }
  Exprs.add(M->numExprs());
  ParseSpan.arg("exprs", M->numExprs());
  return M;
}

bool stcfa::parseTopDefFragment(
    Module &M, std::string_view Text,
    const std::vector<std::pair<Symbol, VarId>> &Env, DiagnosticEngine &Diags,
    FragmentDef &Out, VarId ReuseBinder) {
  static Counter &Fragments = counter("parse.fragments");
  static Counter &Failures = counter("parse.fragment_failures");
  Fragments.inc();
  ParserImpl P(Text, Diags, M);
  if (P.runTopDefFragment(Env, Out, ReuseBinder) && !Diags.hasErrors())
    return true;
  Failures.inc();
  return false;
}

ExprId stcfa::parseExprFragment(
    Module &M, std::string_view Text,
    const std::vector<std::pair<Symbol, VarId>> &Env,
    DiagnosticEngine &Diags) {
  static Counter &Fragments = counter("parse.fragments");
  static Counter &Failures = counter("parse.fragment_failures");
  Fragments.inc();
  ParserImpl P(Text, Diags, M);
  ExprId E = P.runExprFragment(Env);
  if (!E.isValid() || Diags.hasErrors()) {
    Failures.inc();
    return ExprId::invalid();
  }
  return E;
}
