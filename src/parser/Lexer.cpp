//===-- parser/Lexer.cpp - Tokenizer for the mini-ML syntax ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace stcfa;

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::advance() {
  assert(Pos < Source.size() && "advancing past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Line comment: -- to end of line.
    if (C == '-' && peek(1) == '-') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    // Nested block comment: (* ... *).
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      int Depth = 1;
      while (Depth > 0) {
        if (Pos >= Source.size()) {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        char D = advance();
        if (D == '(' && peek() == '*') {
          advance();
          ++Depth;
        } else if (D == '*' && peek() == ')') {
          advance();
          --Depth;
        }
      }
      continue;
    }
    return;
  }
}

static TokenKind keywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"data", TokenKind::KwData},   {"let", TokenKind::KwLet},
      {"letrec", TokenKind::KwLetRec}, {"in", TokenKind::KwIn},
      {"fn", TokenKind::KwFn},       {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},   {"else", TokenKind::KwElse},
      {"case", TokenKind::KwCase},   {"of", TokenKind::KwOf},
      {"end", TokenKind::KwEnd},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse}, {"unit", TokenKind::KwUnit},
      {"not", TokenKind::KwNot},     {"print", TokenKind::KwPrint},
      {"ref", TokenKind::KwRef},
      {"and", TokenKind::KwAnd},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Eof : It->second;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = here();
  if (Pos >= Source.size())
    return make(TokenKind::Eof, Loc);

  char C = peek();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Start = Pos;
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
            peek() == '\''))
      advance();
    std::string_view Text = Source.substr(Start, Pos - Start);
    if (TokenKind Kw = keywordKind(Text); Kw != TokenKind::Eof)
      return make(Kw, Loc, Text);
    bool Upper = std::isupper(static_cast<unsigned char>(Text.front()));
    return make(Upper ? TokenKind::UIdent : TokenKind::Ident, Loc, Text);
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    size_t Start = Pos;
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T = make(TokenKind::Int, Loc, Source.substr(Start, Pos - Start));
    T.IntValue = 0;
    for (char D : T.Text)
      T.IntValue = T.IntValue * 10 + (D - '0');
    return T;
  }

  if (C == '"') {
    advance();
    size_t Start = Pos;
    while (Pos < Source.size() && peek() != '"' && peek() != '\n')
      advance();
    if (Pos >= Source.size() || peek() != '"') {
      Diags.error(Loc, "unterminated string literal");
      return make(TokenKind::Error, Loc);
    }
    std::string_view Text = Source.substr(Start, Pos - Start);
    advance(); // closing quote
    return make(TokenKind::String, Loc, Text);
  }

  advance();
  switch (C) {
  case '(':
    return make(TokenKind::LParen, Loc);
  case ')':
    return make(TokenKind::RParen, Loc);
  case ',':
    return make(TokenKind::Comma, Loc);
  case ';':
    return make(TokenKind::Semi, Loc);
  case '|':
    return make(TokenKind::Pipe, Loc);
  case '#':
    return make(TokenKind::Hash, Loc);
  case '!':
    return make(TokenKind::Bang, Loc);
  case '+':
    return make(TokenKind::Plus, Loc);
  case '*':
    return make(TokenKind::Star, Loc);
  case '/':
    return make(TokenKind::Slash, Loc);
  case '-':
    if (peek() == '>') {
      advance();
      return make(TokenKind::Arrow, Loc);
    }
    return make(TokenKind::Minus, Loc);
  case '=':
    if (peek() == '>') {
      advance();
      return make(TokenKind::FatArrow, Loc);
    }
    if (peek() == '=') {
      advance();
      return make(TokenKind::EqualEqual, Loc);
    }
    return make(TokenKind::Equal, Loc);
  case '<':
    if (peek() == '=') {
      advance();
      return make(TokenKind::LessEqual, Loc);
    }
    return make(TokenKind::Less, Loc);
  case ':':
    if (peek() == '=') {
      advance();
      return make(TokenKind::Assign, Loc);
    }
    break;
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return make(TokenKind::Error, Loc);
}
