//===-- parser/Lexer.h - Tokenizer for the mini-ML syntax ------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the surface syntax.  Supports `--` line comments and
/// `(* ... *)` block comments (nested).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_PARSER_LEXER_H
#define STCFA_PARSER_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace stcfa {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Ident,  // lower-case initial
  UIdent, // upper-case initial (constructors, datatype names)
  Int,
  String,
  // Keywords.
  KwData,
  KwLet,
  KwLetRec,
  KwIn,
  KwFn,
  KwIf,
  KwThen,
  KwElse,
  KwCase,
  KwOf,
  KwEnd,
  KwTrue,
  KwFalse,
  KwUnit,
  KwNot,
  KwPrint,
  KwRef,
  KwAnd,
  // Punctuation and operators.
  LParen,
  RParen,
  Comma,
  Semi,
  Pipe,
  FatArrow, // =>
  Arrow,    // ->
  Equal,    // =
  EqualEqual,
  Less,
  LessEqual,
  Plus,
  Minus,
  Star,
  Slash,
  Hash,
  Bang,
  Assign, // :=
};

/// One token with its full source range.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// One past the token's last character (exclusive, like
  /// `SourceRange::End`); equals `Loc` only for the Eof token.
  SourceLoc End;
  /// Identifier / string text (unescaped) when applicable.
  std::string_view Text;
  /// Integer value for `Int` tokens.
  int64_t IntValue = 0;
};

/// Produces tokens from a source buffer.  The buffer must outlive the lexer
/// (token `Text` views point into it).
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLoc here() const { return {Line, Col}; }
  /// Called after the token's characters were consumed, so `here()` is the
  /// exclusive end position.
  Token make(TokenKind Kind, SourceLoc Loc, std::string_view Text = {}) {
    return {Kind, Loc, here(), Text, 0};
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace stcfa

#endif // STCFA_PARSER_LEXER_H
