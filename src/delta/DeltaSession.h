//===-- delta/DeltaSession.h - Incremental edit deltas ----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental update layer behind the daemon's `edit` verb: instead
/// of re-running parse -> close -> freeze over the whole program, an edit
/// of one top-level definition re-parses only that definition's text,
/// diffs its base edges against the old definition's, retracts the
/// removed edges together with the cone of derived consequences they
/// supported, and resumes the demand-driven closure from the retraction
/// frontier.  This exploits exactly the property the paper advertises —
/// the subtransitive closure is "simple, incremental, demand-driven" —
/// so a single-definition edit costs work proportional to the edit's
/// consequences, not to the program.
///
/// ## The shadow module
///
/// The session keeps a *shadow* `Module` that only ever grows: replacing
/// a definition appends the replacement's subtree and leaves the old
/// subtree as unreachable garbage (expression arenas have no free lists,
/// and node ids must stay stable because the graph's nodes reference
/// them).  Clients, however, speak *canonical* ids — the ids a fresh
/// parse of the current source text would assign.  The session maintains
/// the canonical<->shadow renumbering (a per-definition prefix-sum over
/// subtree sizes; fragment re-parses reproduce `parseProgram`'s relative
/// creation order, which the parser documents as a contract), and every
/// published `DeltaView` carries it so the serve layer can translate at
/// the epoch boundary.  When the shadow arena outgrows the canonical
/// program by `Options::MaxBloat`, the session compacts by rebuilding
/// from source (counted as `delta.compactions`).
///
/// ## Base-edge refcounts and the retraction cone
///
/// Every definition's `addEdge` *attempts* are journaled at build time
/// (`SubtransitiveGraph::setEdgeJournal`) and refcounted across
/// definitions: an edge is physically retracted only when its last
/// owning definition drops it.  A retracted base edge seeds a DRed-style
/// deletion cone: `appendConsequencesForDelta` enumerates the one-step
/// rule conclusions the edge could have produced, each of which is
/// deleted in turn unless a surviving base edge still owns it.  Deleted
/// endpoints' aliases are then re-queued (`requeueAliasesForDelta`) and
/// a governed `close()` re-derives every conclusion the surviving edges
/// still support.  Over-deletion is impossible to observe: re-derivation
/// is a fixpoint of the same rules, and any conservatively *kept* stale
/// edge has a derived source unreachable from every live occurrence, so
/// reachability answers (Propositions 1/2) are unaffected.
///
/// ## Exactness envelope and the fallback ladder
///
/// The fast path is gated to programs where delta answers are provably
/// identical to a from-scratch rebuild:
///
///   * no `data` declarations (type-driven congruence summaries would
///     make node identity depend on global inference; without data
///     types, `CongruenceMode::ByType` is identity-neutral), and
///   * no depth widening (`hasTopNode()`): the `Top` summary's edges are
///     not enumerable through the per-rule cone.
///
/// Outside the envelope — or when the governed re-close aborts (budget,
/// deadline, injected fault) — the session falls back: inside the
/// envelope-by-construction cases it rebuilds its own pipeline from the
/// spliced source (`delta.fallback_full`); for `data` programs it keeps
/// text-splicing only and tells the caller to run the full load pipeline
/// (`ApplyResult::NeedsFullPipeline`).  Either way the answers served
/// are the answers a fresh rebuild would give — a governed abort is
/// never a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_DELTA_DELTASESSION_H
#define STCFA_DELTA_DELTASESSION_H

#include "ast/Module.h"
#include "core/FrozenGraph.h"
#include "core/SubtransitiveGraph.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace stcfa {

/// A self-contained, immutable view of one edit epoch, ready to be
/// installed by the serve layer: the frozen snapshot is detached from
/// the session's live graph (queries never race the next edit's graph
/// surgery), and the id maps translate between the canonical numbering
/// clients speak and the shadow numbering the snapshot uses.
struct DeltaView {
  std::unique_ptr<FrozenGraph> Frozen;

  /// Canonical program shape (what a fresh parse would report).
  uint32_t NumExprs = 0;
  uint32_t NumLabels = 0;

  /// Canonical -> shadow id maps; every canonical id maps to a live
  /// shadow id (`size() == NumExprs` / `NumLabels`).
  std::vector<uint32_t> ExprToShadow;
  std::vector<uint32_t> LabelToShadow;

  /// Shadow -> canonical inverse maps, `~0u` for garbage shadow ids
  /// (subtrees orphaned by replace/delete edits).  Sized to the shadow
  /// module's counts at freeze time.
  std::vector<uint32_t> ExprFromShadow;
  std::vector<uint32_t> LabelFromShadow;
};

/// One incremental edit request, addressed by definition name or by the
/// 1-based source line on which the definition's text starts.
struct EditRequest {
  enum class Op : uint8_t {
    Insert,      ///< add a definition (before `Before`, or last)
    Delete,      ///< remove the named definition
    Replace,     ///< swap the named definition's text (same name)
    ReplaceBody, ///< swap the program body expression
    Rename,      ///< rename a definition and all its references
  };
  Op Kind = Op::Replace;
  /// Target definition name (all ops except ReplaceBody/anonymous
  /// Insert); empty when `Line` addresses the target instead.
  std::string Name;
  /// 1-based source line addressing (0 = unused): the definition whose
  /// text begins on this line.
  uint32_t Line = 0;
  /// Insert position: the name of the definition to insert before;
  /// empty = append after the last definition.
  std::string Before;
  /// New definition text (`let f = ...;`) for Insert/Replace, or the
  /// new body expression for ReplaceBody.
  std::string Text;
  /// New identifier for Rename.
  std::string NewName;
};

/// What one `apply` did, for the reply and the metrics.
struct ApplyResult {
  /// How the edit was served.
  enum class Mode : uint8_t {
    Delta,        ///< incremental fast path (retract + re-close)
    Metadata,     ///< rename fast path (no graph change)
    FullRebuild,  ///< session rebuilt its own pipeline from source
    FullPipeline, ///< caller must run the full load pipeline
  };
  Mode M = Mode::Delta;
  /// Graph nodes incident to a retracted edge (`delta.dirty_nodes`).
  uint64_t DirtyNodes = 0;
  /// Edges the governed re-close added back (`delta.reclose_edges`).
  uint64_t RecloseEdges = 0;
  /// True when the caller must rebuild via the full load pipeline and
  /// install the result itself; the session has already spliced its
  /// source text (`currentSource()` is the input to that rebuild).
  bool NeedsFullPipeline = false;
};

/// One live editable program: the authoritative per-definition source
/// texts plus (inside the exactness envelope) the shadow module, the
/// mutable closed graph, and the per-definition edge journals.
///
/// Thread safety: none.  The daemon drives a session from its single
/// reader thread; published `DeltaView`s are immutable and independent.
class DeltaSession {
public:
  struct Options {
    /// Analysis configuration.  A `Config.MaxNodes` of 0 is replaced at
    /// `create` time with a budget derived from the program size, so an
    /// edit that makes the closure diverge (ill-typed application
    /// cycles branch exponentially below the depth widening) aborts
    /// into the fallback ladder instead of running unbounded.
    SubtransitiveConfig Config;
    /// Worker lanes for the published views' query engines.
    unsigned Threads = 1;
    /// Governed re-close budget per edit; 0 = no deadline.
    uint64_t CloseDeadlineMillis = 0;
    /// Shadow-arena growth factor that triggers compaction: rebuild
    /// when `shadow exprs > MaxBloat * canonical exprs`.
    double MaxBloat = 4.0;
  };

  /// Builds a session over \p Source.  Returns null with \p Out set when
  /// the program does not parse (the daemon only creates sessions from
  /// sources that already loaded, so this is defensive).
  static std::unique_ptr<DeltaSession> create(std::string_view Source,
                                              const Options &O, Status &Out);

  ~DeltaSession();

  /// Applies one edit.  On success the session's source text and (on the
  /// fast paths) graph reflect the edit; call `freezeView` to publish.
  /// On failure the session is unchanged — a rejected edit (unknown
  /// name, fragment parse error, deleting a still-referenced
  /// definition) never corrupts the session.
  Status apply(const EditRequest &R, ApplyResult &Res);

  /// Publishes the current state as a detached immutable view.  Invalid
  /// after an apply that returned `NeedsFullPipeline` (the session then
  /// has no graph; rebuild via the full pipeline instead).
  Status freezeView(DeltaView &Out);

  /// The current program text: definition texts and the body, joined in
  /// order.  A fresh parse of this is the canonical program.
  std::string currentSource() const;

  /// Canonical program shape (fresh-parse counts).
  uint32_t numExprs() const;
  uint32_t numLabels() const;

  /// Number of top-level definitions currently in the program.
  uint32_t numDefs() const { return static_cast<uint32_t>(Defs.size()); }
  /// The name of definition \p I (textual order).
  const std::string &defName(uint32_t I) const { return Defs[I].Name; }
  /// The authoritative item text of definition \p I, e.g. `let f = ...;`.
  const std::string &defText(uint32_t I) const { return Defs[I].Text; }

  /// True when the session can serve edits incrementally; false for
  /// programs outside the exactness envelope (`data` declarations),
  /// where every apply returns `NeedsFullPipeline`.
  bool incremental() const { return !TextOnly; }

private:
  DeltaSession() = default;

  /// One top-level definition (or, for `Body`, the program body).
  struct DefRecord {
    std::string Text; ///< authoritative item text, e.g. `let f = ...;`
    std::string Name;
    bool IsRec = false;
    VarId Binder = VarId::invalid();
    ExprId Init = ExprId::invalid();  ///< shadow init-subtree root
    ExprId Spine = ExprId::invalid(); ///< shadow spine `LetExpr`
    /// Shadow ids of the init subtree, in creation (= canonical) order.
    std::vector<uint32_t> Exprs;
    std::vector<uint32_t> Labels;
    /// Binders of *other* definitions this subtree references.
    std::vector<uint32_t> ExternalRefs;
    /// Journaled `addEdge` attempts owned by this definition.
    std::vector<std::pair<NodeId, NodeId>> BaseEdges;
  };

  // Construction / rebuild.
  Status initFromTexts();
  void destroyShadowState();
  void relinkSpine();
  std::vector<std::pair<Symbol, VarId>> envBefore(size_t DefIndex) const;
  void collectExternalRefs(const DefRecord &D, ExprId SubtreeRoot,
                           std::vector<uint32_t> &Out) const;

  // Edge bookkeeping.
  void addRefs(const std::vector<std::pair<NodeId, NodeId>> &J);
  void dropRefs(const std::vector<std::pair<NodeId, NodeId>> &J,
                std::vector<std::pair<NodeId, NodeId>> &Retracted);
  /// DRed deletion: retracts \p Seeds and their unsupported consequence
  /// cone, re-queues the frontier, and reports dirty-node count.
  uint64_t retractCone(std::vector<std::pair<NodeId, NodeId>> Seeds);

  // Edit steps (fast path); each returns the edit's validity.
  Status editReplace(const EditRequest &R, size_t Idx, ApplyResult &Res);
  Status editInsert(const EditRequest &R, ApplyResult &Res);
  Status editDelete(size_t Idx, ApplyResult &Res);
  Status editReplaceBody(const EditRequest &R, ApplyResult &Res);
  Status editRename(const EditRequest &R, size_t Idx, ApplyResult &Res);
  Status validateRename(const EditRequest &R, size_t Idx) const;

  /// Text-splice path for sessions outside the envelope: validate the
  /// spliced candidate by re-parsing, commit, and request a full reload.
  Status applyTextOnly(const EditRequest &R, size_t Idx, ApplyResult &Res);

  /// Re-journals the spine/body chain edges after a structural edit and
  /// retracts whatever the old chain exclusively supported.
  uint64_t rebuildChain();
  bool shadowBloated() const;
  Status compactRebuild(ApplyResult &Res);

  /// Re-closes after surgery; on a governed abort or widening, rebuilds
  /// from source (`delta.fallback_full`).
  Status recloseOrFallback(ApplyResult &Res);
  /// Full in-session rebuild from the authoritative texts.
  Status rebuildFromTexts(ApplyResult &Res, ApplyResult::Mode Why);

  Status resolveTarget(const EditRequest &R, bool NeedsDef, size_t &Idx) const;

  Options Opts;
  bool TextOnly = false; ///< outside the envelope: splice text only

  std::vector<DefRecord> Defs; ///< textual order
  DefRecord Body;              ///< Name/Binder/Spine unused

  // Shadow pipeline (absent in TextOnly mode).
  std::unique_ptr<Module> M;
  std::unique_ptr<SubtransitiveGraph> G;
  /// Refcounts of journaled base edges, keyed like the graph's edge set.
  U64Map EdgeRefs;
  /// The installed spine/body chain edges (one journal, rebuilt per
  /// structural edit): `spine_k -> spine_{k+1}` and `spine_last -> body`.
  std::vector<std::pair<NodeId, NodeId>> ChainEdges;
};

} // namespace stcfa

#endif // STCFA_DELTA_DELTASESSION_H
