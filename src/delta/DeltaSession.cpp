//===-- delta/DeltaSession.cpp - Incremental edit deltas ------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "delta/DeltaSession.h"
#include <cstdio>
#include <cstdlib>

#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace stcfa;

namespace {

uint64_t edgeKey(NodeId A, NodeId B) {
  return (uint64_t(A.index()) + 1) << 32 | (uint64_t(B.index()) + 1);
}

std::string renderDiags(DiagnosticEngine &Diags) {
  std::string R = Diags.render();
  while (!R.empty() && R.back() == '\n')
    R.pop_back();
  return R;
}

/// One top-level source item located by the splitter.
struct TopItem {
  std::string Text;
  std::string Name; ///< `let`/`letrec`/`data` declared name
  bool IsData = false;
};

/// Splits a program into its top-level items and the body expression by
/// token scanning: items end at the first `;` after their keyword, and a
/// `let`/`letrec` whose binding group closes with `in` before any `;` is
/// the body.  `;` never occurs inside an expression in this grammar, and
/// `let`-nesting is tracked so an `in` belonging to an inner `let` never
/// terminates the scan early.
Status splitTopLevel(std::string_view Source, std::vector<TopItem> &Items,
                     std::string &BodyText, bool &HasData) {
  Items.clear();
  BodyText.clear();
  HasData = false;

  std::vector<size_t> LineStarts = {0};
  for (size_t I = 0; I != Source.size(); ++I)
    if (Source[I] == '\n')
      LineStarts.push_back(I + 1);
  auto offsetOf = [&](SourceLoc Loc) -> size_t {
    if (Loc.Line == 0 || Loc.Line > LineStarts.size())
      return Source.size();
    return LineStarts[Loc.Line - 1] + Loc.Col - 1;
  };

  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Toks;
  for (;;) {
    Token T = Lex.next();
    Toks.push_back(T);
    if (T.Kind == TokenKind::Eof || T.Kind == TokenKind::Error)
      break;
  }
  if (Toks.back().Kind == TokenKind::Error)
    return Status::invalidArgument("program does not lex: " +
                                   renderDiags(Diags));

  size_t I = 0;
  for (;;) {
    const Token &T = Toks[I];
    if (T.Kind == TokenKind::Eof)
      return Status::invalidArgument("program has no body expression");
    const bool IsLet =
        T.Kind == TokenKind::KwLet || T.Kind == TokenKind::KwLetRec;
    if (T.Kind != TokenKind::KwData && !IsLet) {
      BodyText = std::string(Source.substr(offsetOf(T.Loc)));
      break;
    }
    // Find where this item ends: the first `;`, unless a `let` item's
    // binding closes with `in` first (then it is the body expression).
    int LetDepth = IsLet ? 1 : 0;
    size_t J = I + 1;
    bool IsBody = false;
    size_t SemiIdx = 0;
    for (;; ++J) {
      const Token &U = Toks[J];
      if (U.Kind == TokenKind::Eof)
        return Status::invalidArgument(
            "unterminated top-level item (missing ';')");
      if (U.Kind == TokenKind::KwLet || U.Kind == TokenKind::KwLetRec)
        ++LetDepth;
      else if (U.Kind == TokenKind::KwIn && IsLet && --LetDepth == 0) {
        IsBody = true;
        break;
      } else if (U.Kind == TokenKind::Semi) {
        SemiIdx = J;
        break;
      }
    }
    if (IsBody) {
      BodyText = std::string(Source.substr(offsetOf(T.Loc)));
      break;
    }
    TopItem Item;
    Item.IsData = T.Kind == TokenKind::KwData;
    HasData |= Item.IsData;
    Item.Text = std::string(Source.substr(
        offsetOf(T.Loc), offsetOf(Toks[SemiIdx].End) - offsetOf(T.Loc)));
    // The declared name is the identifier right after the keyword.
    const Token &NameTok = Toks[I + 1];
    if (NameTok.Kind == TokenKind::Ident ||
        NameTok.Kind == TokenKind::UIdent)
      Item.Name = std::string(NameTok.Text);
    Items.push_back(std::move(Item));
    I = SemiIdx + 1;
  }
  return Status::ok();
}

/// Replaces every *identifier token* `From` with `To` (strings and
/// comments are untouched — this is a scope-aware-enough rename because
/// the caller guarantees `To` occurs nowhere in the program, making the
/// blanket substitution a capture-free alpha conversion).
std::string renameIdentInText(const std::string &Text, std::string_view From,
                              std::string_view To) {
  std::vector<size_t> LineStarts = {0};
  for (size_t I = 0; I != Text.size(); ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
  auto offsetOf = [&](SourceLoc Loc) -> size_t {
    return LineStarts[Loc.Line - 1] + Loc.Col - 1;
  };
  DiagnosticEngine Diags;
  Lexer Lex(Text, Diags);
  std::string Out;
  size_t Copied = 0;
  for (;;) {
    Token T = Lex.next();
    if (T.Kind == TokenKind::Eof || T.Kind == TokenKind::Error)
      break;
    if (T.Kind != TokenKind::Ident || T.Text != From)
      continue;
    size_t Begin = offsetOf(T.Loc);
    Out.append(Text, Copied, Begin - Copied);
    Out.append(To);
    Copied = Begin + From.size();
  }
  Out.append(Text, Copied, Text.size() - Copied);
  return Out;
}

/// True iff \p Name lexes as exactly one lower-case identifier.
bool isPlainIdent(const std::string &Name) {
  DiagnosticEngine Diags;
  Lexer Lex(Name, Diags);
  Token T = Lex.next();
  return T.Kind == TokenKind::Ident && T.Text == Name &&
         Lex.next().Kind == TokenKind::Eof;
}

/// True iff the identifier \p Name occurs as a token in \p Text.
bool identOccursIn(const std::string &Text, std::string_view Name) {
  DiagnosticEngine Diags;
  Lexer Lex(Text, Diags);
  for (;;) {
    Token T = Lex.next();
    if (T.Kind == TokenKind::Eof || T.Kind == TokenKind::Error)
      return false;
    if (T.Kind == TokenKind::Ident && T.Text == Name)
      return true;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

DeltaSession::~DeltaSession() = default;

std::unique_ptr<DeltaSession> DeltaSession::create(std::string_view Source,
                                                   const Options &O,
                                                   Status &Out) {
  Out = Status::ok();
  std::vector<TopItem> Items;
  std::string BodyText;
  bool HasData = false;
  if (Status S = splitTopLevel(Source, Items, BodyText, HasData);
      !S.isOk()) {
    Out = S;
    return nullptr;
  }
  auto Sess = std::unique_ptr<DeltaSession>(new DeltaSession());
  Sess->Opts = O;
  // An edit can leave the program ill-typed, and the untyped closure's
  // dom/ran towers can then branch exponentially *below* the depth
  // widening (the driver's "termination is not guaranteed by the paper"
  // case).  A node budget turns that into a governed abort that rides
  // the fallback ladder — full rebuild, then NeedsFullPipeline — instead
  // of an unbounded close on the daemon's reader thread.
  if (Sess->Opts.Config.MaxNodes == 0)
    Sess->Opts.Config.MaxNodes =
        std::max<uint64_t>(1u << 20, 32 * Source.size());
  Sess->Defs.reserve(Items.size());
  for (TopItem &Item : Items) {
    DefRecord D;
    D.Text = std::move(Item.Text);
    D.Name = std::move(Item.Name);
    Sess->Defs.push_back(std::move(D));
  }
  Sess->Body.Text = std::move(BodyText);
  if (HasData) {
    // Outside the exactness envelope: datatype congruence summaries make
    // node identity depend on whole-program inference.  Text-splice only.
    Sess->TextOnly = true;
    return Sess;
  }
  if (!Sess->initFromTexts().isOk()) {
    // Still usable: e.g. multi-binding `letrec ... and ...` groups the
    // fragment parser rejects, or programs that widen into Top.  Every
    // edit then routes through the full pipeline.
    Sess->destroyShadowState();
    Sess->TextOnly = true;
  }
  return Sess;
}

void DeltaSession::destroyShadowState() {
  G.reset();
  M.reset();
  EdgeRefs = U64Map();
  ChainEdges.clear();
  for (DefRecord *D : std::vector<DefRecord *>{&Body}) {
    D->Exprs.clear();
    D->Labels.clear();
    D->ExternalRefs.clear();
    D->BaseEdges.clear();
  }
  for (DefRecord &D : Defs) {
    D.Binder = VarId::invalid();
    D.Init = ExprId::invalid();
    D.Spine = ExprId::invalid();
    D.Exprs.clear();
    D.Labels.clear();
    D.ExternalRefs.clear();
    D.BaseEdges.clear();
  }
}

std::vector<std::pair<Symbol, VarId>>
DeltaSession::envBefore(size_t DefIndex) const {
  std::vector<std::pair<Symbol, VarId>> Env;
  Env.reserve(DefIndex);
  for (size_t I = 0; I != DefIndex; ++I)
    Env.emplace_back(const_cast<Module &>(*M).sym(Defs[I].Name),
                     Defs[I].Binder);
  return Env;
}

void DeltaSession::collectExternalRefs(const DefRecord &D, ExprId SubtreeRoot,
                                       std::vector<uint32_t> &Out) const {
  // A variable occurrence is an *external* reference when its binding
  // expression lies outside this fragment's subtree: fragment-internal
  // binders (lams, lets, case arms) all have their `VarInfo::Binder` set
  // to an expression created during this fragment's parse, while earlier
  // definitions' binders point at spine lets (or are still unset during
  // initial construction).  The definition's own letrec binder is
  // excluded explicitly — a self-reference does not pin the definition.
  Out.clear();
  uint32_t MinExpr = UINT32_MAX, MaxExpr = 0;
  forEachExprPreorder(*M, SubtreeRoot, [&](ExprId Id, const Expr *) {
    MinExpr = std::min(MinExpr, Id.index());
    MaxExpr = std::max(MaxExpr, Id.index());
  });
  forEachExprPreorder(*M, SubtreeRoot, [&](ExprId, const Expr *E) {
    const auto *V = dyn_cast<VarExpr>(E);
    if (!V)
      return;
    VarId Target = V->var();
    if (D.Binder.isValid() && Target == D.Binder)
      return; // letrec self-reference
    ExprId Binder = M->var(Target).Binder;
    const bool External = !Binder.isValid() ||
                          Binder.index() < MinExpr ||
                          Binder.index() > MaxExpr;
    if (External)
      Out.push_back(Target.index());
  });
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
}

Status DeltaSession::initFromTexts() {
  destroyShadowState();
  M = std::make_unique<Module>();

  DiagnosticEngine Diags;
  for (size_t K = 0; K != Defs.size(); ++K) {
    DefRecord &D = Defs[K];
    const uint32_t E0 = M->numExprs(), L0 = M->numLabels();
    FragmentDef FD;
    if (!parseTopDefFragment(*M, D.Text, envBefore(K), Diags, FD))
      return Status::invalidArgument("definition '" + D.Name +
                                     "' failed to parse as a fragment: " +
                                     renderDiags(Diags));
    D.Name = std::string(M->text(FD.Name));
    D.IsRec = FD.IsRec;
    D.Binder = FD.Binder;
    D.Init = FD.Init;
    for (uint32_t E = E0; E != M->numExprs(); ++E)
      D.Exprs.push_back(E);
    for (uint32_t L = L0; L != M->numLabels(); ++L)
      D.Labels.push_back(L);
    collectExternalRefs(D, D.Init, D.ExternalRefs);
  }
  {
    const uint32_t E0 = M->numExprs(), L0 = M->numLabels();
    ExprId B = parseExprFragment(*M, Body.Text, envBefore(Defs.size()), Diags);
    if (!B.isValid())
      return Status::invalidArgument("program body failed to parse: " +
                                     renderDiags(Diags));
    Body.Init = B;
    Body.Binder = VarId::invalid();
    for (uint32_t E = E0; E != M->numExprs(); ++E)
      Body.Exprs.push_back(E);
    for (uint32_t L = L0; L != M->numLabels(); ++L)
      Body.Labels.push_back(L);
    collectExternalRefs(Body, Body.Init, Body.ExternalRefs);
  }
  relinkSpine();

  G = std::make_unique<SubtransitiveGraph>(*M, Opts.Config);
  bool First = true;
  auto buildSub = [&](ExprId Root,
                      std::vector<std::pair<NodeId, NodeId>> &J) {
    G->setEdgeJournal(&J);
    if (First) {
      G->buildFragment(Root);
      First = false;
    } else {
      G->addFragment(Root);
    }
    G->setEdgeJournal(nullptr);
  };
  for (DefRecord &D : Defs) {
    buildSub(D.Init, D.BaseEdges);
    G->setEdgeJournal(&D.BaseEdges);
    G->addEdge(G->varNode(D.Binder), G->exprNode(D.Init));
    G->setEdgeJournal(nullptr);
  }
  buildSub(Body.Init, Body.BaseEdges);

  G->setEdgeJournal(&ChainEdges);
  for (size_t K = 0; K != Defs.size(); ++K) {
    NodeId Next = K + 1 != Defs.size() ? G->exprNode(Defs[K + 1].Spine)
                                       : G->exprNode(Body.Init);
    G->addEdge(G->exprNode(Defs[K].Spine), Next);
  }
  G->setEdgeJournal(nullptr);

  for (DefRecord &D : Defs)
    addRefs(D.BaseEdges);
  addRefs(Body.BaseEdges);
  addRefs(ChainEdges);

  Status CS = G->close(Deadline::infinite());
  if (!CS.isOk() || G->aborted())
    return CS.isOk() ? Status::internal("initial close aborted") : CS;
  if (G->hasTopNode())
    return Status::failedPrecondition(
        "depth widening engaged; outside the delta exactness envelope");
  return Status::ok();
}

void DeltaSession::relinkSpine() {
  ExprId Next = Body.Init;
  for (size_t K = Defs.size(); K-- != 0;) {
    DefRecord &D = Defs[K];
    if (!D.Spine.isValid()) {
      D.Spine = M->makeLet(SourceLoc{1, 1}, D.Binder, D.Init, Next, D.IsRec);
    } else {
      auto *Let = cast<LetExpr>(M->expr(D.Spine));
      Let->setInit(D.Init);
      Let->setBody(Next);
    }
    Next = D.Spine;
  }
  M->setRoot(Next);
}

//===----------------------------------------------------------------------===//
// Edge bookkeeping
//===----------------------------------------------------------------------===//

void DeltaSession::addRefs(const std::vector<std::pair<NodeId, NodeId>> &J) {
  for (const auto &[A, B] : J)
    ++EdgeRefs.lookupOrInsert(edgeKey(A, B), 0);
}

void DeltaSession::dropRefs(const std::vector<std::pair<NodeId, NodeId>> &J,
                            std::vector<std::pair<NodeId, NodeId>> &Retracted) {
  for (const auto &[A, B] : J) {
    uint32_t &C = EdgeRefs.lookupOrInsert(edgeKey(A, B), 0);
    if (C != 0 && --C == 0)
      Retracted.emplace_back(A, B);
  }
}

uint64_t
DeltaSession::retractCone(std::vector<std::pair<NodeId, NodeId>> Work) {
  std::vector<bool> Seen(G->numNodes(), false);
  std::vector<NodeId> DirtyList;
  auto markDirty = [&](NodeId N) {
    if (!Seen[N.index()]) {
      Seen[N.index()] = true;
      DirtyList.push_back(N);
    }
  };
  while (!Work.empty()) {
    auto [A, B] = Work.back();
    Work.pop_back();
    // A pair still owned by a surviving definition's journal is a live
    // base edge: the cone stops here.  (Derived-rule conclusions can
    // coincide with base edges — APP-1 edges have derived sources.)
    if (EdgeRefs.lookup(edgeKey(A, B), 0) > 0)
      continue;
    if (!G->hasEdge(A, B))
      continue;
    G->appendConsequencesForDelta(A, B, Work);
    G->removeEdgeForDelta(A, B);
    markDirty(A);
    markDirty(B);
  }
  // Re-queue every alias around the frontier: the next close() re-derives
  // each conclusion the surviving edges still support.
  for (NodeId N : DirtyList)
    G->requeueAliasesForDelta(N);
  return DirtyList.size();
}

//===----------------------------------------------------------------------===//
// Apply
//===----------------------------------------------------------------------===//

Status DeltaSession::resolveTarget(const EditRequest &R, bool NeedsDef,
                                   size_t &Idx) const {
  Idx = SIZE_MAX;
  if (!NeedsDef)
    return Status::ok();
  if (!R.Name.empty()) {
    size_t Found = SIZE_MAX;
    for (size_t I = 0; I != Defs.size(); ++I) {
      if (Defs[I].Name != R.Name)
        continue;
      if (Found != SIZE_MAX)
        return Status::invalidArgument("definition name '" + R.Name +
                                       "' is ambiguous (shadowed); address "
                                       "it by line instead");
      Found = I;
    }
    if (Found == SIZE_MAX)
      return Status::invalidArgument("no definition named '" + R.Name + "'");
    Idx = Found;
    return Status::ok();
  }
  if (R.Line != 0) {
    uint32_t Line = 1;
    for (size_t I = 0; I != Defs.size(); ++I) {
      if (Line == R.Line) {
        Idx = I;
        return Status::ok();
      }
      Line += 1 + static_cast<uint32_t>(
                      std::count(Defs[I].Text.begin(), Defs[I].Text.end(),
                                 '\n'));
    }
    return Status::invalidArgument("no definition starts on line " +
                                   std::to_string(R.Line));
  }
  return Status::invalidArgument(
      "edit needs a target: params.name or params.line");
}

Status DeltaSession::apply(const EditRequest &R, ApplyResult &Res) {
  static Counter &Applies = counter("delta.applies");
  static Counter &DirtyNodes = counter("delta.dirty_nodes");
  static Counter &RecloseEdges = counter("delta.reclose_edges");
  static Counter &Fallbacks = counter("delta.fallback_full");
  static Histogram &ApplyMs =
      histogram("delta.apply_millis", latencyBucketsMillis());
  Applies.inc();
  Timer T;
  Span Sp("delta.apply");

  Res = ApplyResult{};
  const bool NeedsDef = R.Kind == EditRequest::Op::Delete ||
                        R.Kind == EditRequest::Op::Replace ||
                        R.Kind == EditRequest::Op::Rename;
  size_t Idx = SIZE_MAX;
  if (Status S = resolveTarget(R, NeedsDef, Idx); !S.isOk())
    return S;

  Status S = Status::ok();
  if (TextOnly) {
    S = applyTextOnly(R, Idx, Res);
  } else {
    switch (R.Kind) {
    case EditRequest::Op::Replace:
      S = editReplace(R, Idx, Res);
      break;
    case EditRequest::Op::Insert:
      S = editInsert(R, Res);
      break;
    case EditRequest::Op::Delete:
      S = editDelete(Idx, Res);
      break;
    case EditRequest::Op::ReplaceBody:
      S = editReplaceBody(R, Res);
      break;
    case EditRequest::Op::Rename:
      S = editRename(R, Idx, Res);
      break;
    }
  }
  if (!S.isOk())
    return S;

  DirtyNodes.add(Res.DirtyNodes);
  RecloseEdges.add(Res.RecloseEdges);
  if (Res.NeedsFullPipeline)
    Fallbacks.inc();
  ApplyMs.observe(static_cast<uint64_t>(T.millis()));
  Sp.arg("dirty_nodes", Res.DirtyNodes);
  Sp.arg("reclose_edges", Res.RecloseEdges);
  Sp.arg("mode", Res.M == ApplyResult::Mode::Delta          ? "delta"
                 : Res.M == ApplyResult::Mode::Metadata     ? "metadata"
                 : Res.M == ApplyResult::Mode::FullRebuild  ? "full-rebuild"
                                                            : "full-pipeline");
  return Status::ok();
}

Status DeltaSession::applyTextOnly(const EditRequest &R, size_t Idx,
                                   ApplyResult &Res) {
  // Outside the envelope the session is a text editor: splice, validate
  // by re-parsing the candidate source, and hand the rebuild to the
  // caller's full pipeline.
  std::vector<std::string> Texts;
  Texts.reserve(Defs.size());
  for (const DefRecord &D : Defs)
    Texts.push_back(D.Text);
  std::string NewBody = Body.Text;

  switch (R.Kind) {
  case EditRequest::Op::Replace:
    Texts[Idx] = R.Text;
    break;
  case EditRequest::Op::Delete:
    Texts.erase(Texts.begin() + static_cast<ptrdiff_t>(Idx));
    break;
  case EditRequest::Op::Insert: {
    size_t P = Texts.size();
    if (!R.Before.empty()) {
      P = SIZE_MAX;
      for (size_t I = 0; I != Defs.size(); ++I)
        if (Defs[I].Name == R.Before) {
          P = I;
          break;
        }
      if (P == SIZE_MAX)
        return Status::invalidArgument("no definition named '" + R.Before +
                                       "' to insert before");
    }
    Texts.insert(Texts.begin() + static_cast<ptrdiff_t>(P), R.Text);
    break;
  }
  case EditRequest::Op::ReplaceBody:
    NewBody = R.Text;
    break;
  case EditRequest::Op::Rename: {
    if (Status S = validateRename(R, Idx); !S.isOk())
      return S;
    for (std::string &Text : Texts)
      Text = renameIdentInText(Text, Defs[Idx].Name, R.NewName);
    NewBody = renameIdentInText(NewBody, Defs[Idx].Name, R.NewName);
    break;
  }
  }

  std::string Candidate;
  for (const std::string &Text : Texts) {
    Candidate += Text;
    Candidate += '\n';
  }
  Candidate += NewBody;
  Candidate += '\n';
  DiagnosticEngine Diags;
  if (!parseProgram(Candidate, Diags))
    return Status::invalidArgument("edited program does not parse: " +
                                   renderDiags(Diags));

  // Commit: re-split so item names track the new text.
  std::vector<TopItem> Items;
  std::string BodyText;
  bool HasData = false;
  if (Status S = splitTopLevel(Candidate, Items, BodyText, HasData);
      !S.isOk())
    return S;
  Defs.clear();
  Defs.reserve(Items.size());
  for (TopItem &Item : Items) {
    DefRecord D;
    D.Text = std::move(Item.Text);
    D.Name = std::move(Item.Name);
    Defs.push_back(std::move(D));
  }
  Body = DefRecord{};
  Body.Text = std::move(BodyText);
  Res.M = ApplyResult::Mode::FullPipeline;
  Res.NeedsFullPipeline = true;
  return Status::ok();
}

Status DeltaSession::editReplace(const EditRequest &R, size_t Idx,
                                 ApplyResult &Res) {
  DefRecord &D = Defs[Idx];
  const uint32_t E0 = M->numExprs(), L0 = M->numLabels();
  DiagnosticEngine Diags;
  FragmentDef FD;
  if (!parseTopDefFragment(*M, R.Text, envBefore(Idx), Diags, FD, D.Binder))
    return Status::invalidArgument("replacement for '" + D.Name +
                                   "' does not parse: " + renderDiags(Diags));
  if (M->text(FD.Name) != D.Name)
    return Status::invalidArgument(
        "replace cannot change the definition's name (got '" +
        std::string(M->text(FD.Name)) + "', expected '" + D.Name +
        "'); use rename");

  // Committed from here on.
  D.Text = R.Text;
  D.IsRec = FD.IsRec;
  std::vector<std::pair<NodeId, NodeId>> OldEdges = std::move(D.BaseEdges);
  D.BaseEdges.clear();
  D.Init = FD.Init;
  D.Exprs.clear();
  D.Labels.clear();
  for (uint32_t E = E0; E != M->numExprs(); ++E)
    D.Exprs.push_back(E);
  for (uint32_t L = L0; L != M->numLabels(); ++L)
    D.Labels.push_back(L);
  collectExternalRefs(D, D.Init, D.ExternalRefs);

  if (faultFires(fault::DeltaDiffAlloc)) {
    counter("delta.fallback_full").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }
  if (shadowBloated())
    return compactRebuild(Res);

  G->notifyModuleGrown();
  G->setEdgeJournal(&D.BaseEdges);
  G->addFragment(D.Init);
  G->addEdge(G->varNode(D.Binder), G->exprNode(D.Init));
  G->setEdgeJournal(nullptr);
  cast<LetExpr>(M->expr(D.Spine))->setInit(D.Init);

  addRefs(D.BaseEdges);
  std::vector<std::pair<NodeId, NodeId>> Retracted;
  dropRefs(OldEdges, Retracted);
  Res.DirtyNodes = retractCone(std::move(Retracted));
  return recloseOrFallback(Res);
}

Status DeltaSession::editInsert(const EditRequest &R, ApplyResult &Res) {
  size_t P = Defs.size();
  if (!R.Before.empty()) {
    P = SIZE_MAX;
    for (size_t I = 0; I != Defs.size(); ++I)
      if (Defs[I].Name == R.Before) {
        P = I;
        break;
      }
    if (P == SIZE_MAX)
      return Status::invalidArgument("no definition named '" + R.Before +
                                     "' to insert before");
  }

  const uint32_t E0 = M->numExprs(), L0 = M->numLabels();
  DiagnosticEngine Diags;
  FragmentDef FD;
  if (!parseTopDefFragment(*M, R.Text, envBefore(P), Diags, FD))
    return Status::invalidArgument("inserted definition does not parse: " +
                                   renderDiags(Diags));

  DefRecord D;
  D.Text = R.Text;
  D.Name = std::string(M->text(FD.Name));
  D.IsRec = FD.IsRec;
  D.Binder = FD.Binder;
  D.Init = FD.Init;
  for (uint32_t E = E0; E != M->numExprs(); ++E)
    D.Exprs.push_back(E);
  for (uint32_t L = L0; L != M->numLabels(); ++L)
    D.Labels.push_back(L);
  collectExternalRefs(D, D.Init, D.ExternalRefs);

  // Committed from here on.
  const std::string NewName = D.Name;
  Defs.insert(Defs.begin() + static_cast<ptrdiff_t>(P), std::move(D));

  // A name collision changes which binder later occurrences of that name
  // resolve to under a fresh parse; the already-parsed shadow subtrees
  // would keep the old resolution.  Rebuild from source — the fragment
  // environment applies lexical shadowing correctly there.
  size_t SameName = 0;
  for (const DefRecord &Other : Defs)
    SameName += Other.Name == NewName;
  if (SameName > 1) {
    counter("delta.shadowed_rebuilds").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }

  if (faultFires(fault::DeltaDiffAlloc)) {
    counter("delta.fallback_full").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }
  if (shadowBloated())
    return compactRebuild(Res);

  DefRecord &Ins = Defs[P];
  G->notifyModuleGrown();
  G->setEdgeJournal(&Ins.BaseEdges);
  G->addFragment(Ins.Init);
  G->addEdge(G->varNode(Ins.Binder), G->exprNode(Ins.Init));
  G->setEdgeJournal(nullptr);
  addRefs(Ins.BaseEdges);

  relinkSpine(); // creates the new spine LetExpr
  G->notifyModuleGrown();
  Res.DirtyNodes = rebuildChain();
  return recloseOrFallback(Res);
}

Status DeltaSession::editDelete(size_t Idx, ApplyResult &Res) {
  DefRecord &D = Defs[Idx];
  const uint32_t Binder = D.Binder.index();
  for (size_t I = 0; I != Defs.size(); ++I) {
    if (I == Idx)
      continue;
    if (std::binary_search(Defs[I].ExternalRefs.begin(),
                           Defs[I].ExternalRefs.end(), Binder))
      return Status::invalidArgument("definition '" + D.Name +
                                     "' is still referenced by '" +
                                     Defs[I].Name + "'");
  }
  if (std::binary_search(Body.ExternalRefs.begin(), Body.ExternalRefs.end(),
                         Binder))
    return Status::invalidArgument("definition '" + D.Name +
                                   "' is still referenced by the body");

  if (faultFires(fault::DeltaDiffAlloc)) {
    Defs.erase(Defs.begin() + static_cast<ptrdiff_t>(Idx));
    counter("delta.fallback_full").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }

  DefRecord Old = std::move(D);
  Defs.erase(Defs.begin() + static_cast<ptrdiff_t>(Idx));

  std::vector<std::pair<NodeId, NodeId>> Retracted;
  dropRefs(Old.BaseEdges, Retracted);
  Res.DirtyNodes = retractCone(std::move(Retracted));
  relinkSpine();
  Res.DirtyNodes += rebuildChain();
  return recloseOrFallback(Res);
}

Status DeltaSession::editReplaceBody(const EditRequest &R, ApplyResult &Res) {
  const uint32_t E0 = M->numExprs(), L0 = M->numLabels();
  DiagnosticEngine Diags;
  ExprId NewBody =
      parseExprFragment(*M, R.Text, envBefore(Defs.size()), Diags);
  if (!NewBody.isValid())
    return Status::invalidArgument("replacement body does not parse: " +
                                   renderDiags(Diags));

  // Committed from here on.
  Body.Text = R.Text;
  std::vector<std::pair<NodeId, NodeId>> OldEdges = std::move(Body.BaseEdges);
  Body.BaseEdges.clear();
  Body.Init = NewBody;
  Body.Exprs.clear();
  Body.Labels.clear();
  for (uint32_t E = E0; E != M->numExprs(); ++E)
    Body.Exprs.push_back(E);
  for (uint32_t L = L0; L != M->numLabels(); ++L)
    Body.Labels.push_back(L);
  collectExternalRefs(Body, Body.Init, Body.ExternalRefs);

  if (faultFires(fault::DeltaDiffAlloc)) {
    counter("delta.fallback_full").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }
  if (shadowBloated())
    return compactRebuild(Res);

  G->notifyModuleGrown();
  G->setEdgeJournal(&Body.BaseEdges);
  G->addFragment(Body.Init);
  G->setEdgeJournal(nullptr);
  addRefs(Body.BaseEdges);

  std::vector<std::pair<NodeId, NodeId>> Retracted;
  dropRefs(OldEdges, Retracted);
  Res.DirtyNodes = retractCone(std::move(Retracted));
  relinkSpine();
  Res.DirtyNodes += rebuildChain();
  return recloseOrFallback(Res);
}

Status DeltaSession::validateRename(const EditRequest &R, size_t Idx) const {
  if (!isPlainIdent(R.NewName))
    return Status::invalidArgument("'" + R.NewName +
                                   "' is not a valid identifier");
  for (size_t I = 0; I != Defs.size(); ++I)
    if (I != Idx && Defs[I].Name == Defs[Idx].Name)
      return Status::invalidArgument("definition name '" + Defs[Idx].Name +
                                     "' is shadowed; rename is ambiguous");
  for (const DefRecord &D : Defs)
    if (identOccursIn(D.Text, R.NewName))
      return Status::invalidArgument("'" + R.NewName +
                                     "' already occurs in the program; "
                                     "pick an unused name");
  if (identOccursIn(Body.Text, R.NewName))
    return Status::invalidArgument("'" + R.NewName +
                                   "' already occurs in the program; "
                                   "pick an unused name");
  return Status::ok();
}

Status DeltaSession::editRename(const EditRequest &R, size_t Idx,
                                ApplyResult &Res) {
  if (Status S = validateRename(R, Idx); !S.isOk())
    return S;
  // Alpha conversion: because the new name occurs nowhere, renaming
  // *every* identifier token spelled like the old name (including any
  // inner binders that shadow it, consistently with their uses) is
  // capture-free and preserves resolution structure — the graph does not
  // change at all.
  const std::string OldName = Defs[Idx].Name;
  for (DefRecord &D : Defs)
    D.Text = renameIdentInText(D.Text, OldName, R.NewName);
  Body.Text = renameIdentInText(Body.Text, OldName, R.NewName);
  for (DefRecord &D : Defs)
    if (D.Name == OldName)
      D.Name = R.NewName;
  M->setVarName(Defs[Idx].Binder, M->sym(R.NewName));
  Res.M = ApplyResult::Mode::Metadata;
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Re-close, fallback, chain
//===----------------------------------------------------------------------===//

uint64_t DeltaSession::rebuildChain() {
  std::vector<std::pair<NodeId, NodeId>> NewChain;
  G->setEdgeJournal(&NewChain);
  for (size_t K = 0; K != Defs.size(); ++K) {
    NodeId Next = K + 1 != Defs.size() ? G->exprNode(Defs[K + 1].Spine)
                                       : G->exprNode(Body.Init);
    G->addEdge(G->exprNode(Defs[K].Spine), Next);
  }
  G->setEdgeJournal(nullptr);
  addRefs(NewChain);
  std::vector<std::pair<NodeId, NodeId>> Retracted;
  dropRefs(ChainEdges, Retracted);
  ChainEdges = std::move(NewChain);
  return retractCone(std::move(Retracted));
}

bool DeltaSession::shadowBloated() const {
  if (Opts.MaxBloat <= 0)
    return false;
  return static_cast<double>(M->numExprs()) >
         Opts.MaxBloat * static_cast<double>(numExprs());
}

Status DeltaSession::compactRebuild(ApplyResult &Res) {
  counter("delta.compactions").inc();
  return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
}

Status DeltaSession::recloseOrFallback(ApplyResult &Res) {
  const uint64_t PoolBefore = G->edgePoolSize();
  bool Abort = faultFires(fault::DeltaRecloseAbort);
  if (!Abort) {
    Deadline D = Opts.CloseDeadlineMillis != 0
                     ? Deadline::afterMillis(
                           static_cast<int64_t>(Opts.CloseDeadlineMillis))
                     : Deadline::infinite();
    Status CS = G->close(D);
    Abort = !CS.isOk() || G->aborted() || G->hasTopNode();
    if (Abort && getenv("STCFA_DELTA_DEBUG"))
      fprintf(stderr, "[reclose] status=%s aborted=%d top=%d\n",
              CS.toString().c_str(), (int)G->aborted(), (int)G->hasTopNode());
  }
  if (Abort) {
    // Governed abort (deadline/budget/fault) or the program widened out
    // of the exactness envelope: discard the surgered graph and rebuild
    // from the spliced source.  Never a wrong answer.
    counter("delta.fallback_full").inc();
    return rebuildFromTexts(Res, ApplyResult::Mode::FullRebuild);
  }
  Res.RecloseEdges = G->edgePoolSize() - PoolBefore;
  Res.M = ApplyResult::Mode::Delta;
  return Status::ok();
}

Status DeltaSession::rebuildFromTexts(ApplyResult &Res,
                                      ApplyResult::Mode Why) {
  if (!initFromTexts().isOk()) {
    // The rebuilt program itself falls outside the envelope (it widened,
    // or a letrec group the fragment parser rejects appeared).  Degrade
    // the session to text-only; the caller runs the full pipeline.
    destroyShadowState();
    TextOnly = true;
    Res.M = ApplyResult::Mode::FullPipeline;
    Res.NeedsFullPipeline = true;
    return Status::ok();
  }
  Res.M = Why;
  Res.RecloseEdges = 0;
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Views and shape
//===----------------------------------------------------------------------===//

uint32_t DeltaSession::numExprs() const {
  size_t N = Defs.size(); // one spine let per definition
  for (const DefRecord &D : Defs)
    N += D.Exprs.size();
  N += Body.Exprs.size();
  return static_cast<uint32_t>(N);
}

uint32_t DeltaSession::numLabels() const {
  size_t N = 0;
  for (const DefRecord &D : Defs)
    N += D.Labels.size();
  N += Body.Labels.size();
  return static_cast<uint32_t>(N);
}

std::string DeltaSession::currentSource() const {
  std::string Out;
  for (const DefRecord &D : Defs) {
    Out += D.Text;
    Out += '\n';
  }
  Out += Body.Text;
  Out += '\n';
  return Out;
}

Status DeltaSession::freezeView(DeltaView &Out) {
  if (TextOnly || !G)
    return Status::failedPrecondition(
        "session has no incremental state; rebuild via the full pipeline");
  Status FS = Status::ok();
  std::unique_ptr<FrozenGraph> F = FrozenGraph::freeze(*G, FS);
  if (!F)
    return FS;
  // Detach so queries against this view never race the next edit's graph
  // surgery (the serve layer shares views across worker threads).
  F->detachSource();
  Out.Frozen = std::move(F);

  // Canonical numbering, in fresh-parse creation order: each definition's
  // init subtree, then the body subtree, then the spine lets innermost
  // (last definition) first — the root is always the last canonical id.
  Out.NumExprs = numExprs();
  Out.NumLabels = numLabels();
  Out.ExprToShadow.clear();
  Out.LabelToShadow.clear();
  Out.ExprToShadow.reserve(Out.NumExprs);
  Out.LabelToShadow.reserve(Out.NumLabels);
  for (const DefRecord &D : Defs) {
    Out.ExprToShadow.insert(Out.ExprToShadow.end(), D.Exprs.begin(),
                            D.Exprs.end());
    Out.LabelToShadow.insert(Out.LabelToShadow.end(), D.Labels.begin(),
                             D.Labels.end());
  }
  Out.ExprToShadow.insert(Out.ExprToShadow.end(), Body.Exprs.begin(),
                          Body.Exprs.end());
  Out.LabelToShadow.insert(Out.LabelToShadow.end(), Body.Labels.begin(),
                           Body.Labels.end());
  for (size_t K = Defs.size(); K-- != 0;)
    Out.ExprToShadow.push_back(Defs[K].Spine.index());
  assert(Out.ExprToShadow.size() == Out.NumExprs && "expr map out of sync");
  assert(Out.LabelToShadow.size() == Out.NumLabels && "label map out of sync");

  Out.ExprFromShadow.assign(M->numExprs(), ~0u);
  for (uint32_t C = 0; C != Out.NumExprs; ++C)
    Out.ExprFromShadow[Out.ExprToShadow[C]] = C;
  Out.LabelFromShadow.assign(M->numLabels(), ~0u);
  for (uint32_t C = 0; C != Out.NumLabels; ++C)
    Out.LabelFromShadow[Out.LabelToShadow[C]] = C;
  return Status::ok();
}
