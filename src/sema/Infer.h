//===-- sema/Infer.h - Hindley-Milner type inference ------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hindley–Milner inference with let-polymorphism (Rémy-style levels).
///
/// The subtransitive algorithm never consults types (Section 4 of the
/// paper), but the reproduction infers them to (a) reject ill-typed
/// programs, for which the termination guarantee does not hold, (b) record
/// the *instantiated monotype of every expression occurrence* — exactly the
/// monotypes of the paper's let-expansion argument (Section 5), which drive
/// the `k_avg` statistics and the Section 6 datatype congruences — and
/// (c) support the bounded-type program classes used in the benchmarks.
///
/// Mutable references use the standard ML value restriction, specialised
/// to this grammar: `ref e` is only generalised when `e` is a value.
/// Equality is restricted to `Int`.  Projections `#j e` require the tuple
/// type of `e` to be determined at the point of checking (no row
/// polymorphism); in practice this means projections of
/// lambda-bound tuples need the tuple constructed first or an annotation
/// via usage, which all our corpora satisfy.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SEMA_INFER_H
#define STCFA_SEMA_INFER_H

#include "ast/Module.h"
#include "support/Diagnostics.h"

namespace stcfa {

/// Runs type inference over \p M, annotating every expression occurrence
/// with its resolved monotype (`Expr::type()`).  Returns false and records
/// diagnostics in \p Diags on type errors.
bool inferTypes(Module &M, DiagnosticEngine &Diags);

/// Aggregate type-size statistics over all expression occurrences; the
/// paper's bounded-type parameters (Sections 4 and 10).
struct TypeMetrics {
  /// Largest type tree among occurrences (the bound `k`).
  uint32_t MaxTypeSize = 0;
  /// Mean type-tree size (the paper's `k_avg`, reported as "typically
  /// around 2 or 3").
  double AvgTypeSize = 0.0;
  /// Largest order (funarg depth) among occurrence types.
  uint32_t MaxOrder = 0;
  /// Largest curried arity among occurrence types.
  uint32_t MaxArity = 0;
};

/// Computes metrics over a type-annotated module (run `inferTypes` first).
TypeMetrics computeTypeMetrics(const Module &M);

} // namespace stcfa

#endif // STCFA_SEMA_INFER_H
