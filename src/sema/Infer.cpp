//===-- sema/Infer.cpp - Hindley-Milner type inference --------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "sema/Infer.h"

#include <algorithm>
#include <unordered_map>

using namespace stcfa;

namespace {

/// A type scheme: a body type with a set of quantified variable numbers.
struct Scheme {
  std::vector<uint32_t> Quantified;
  TypeId Body;
};

class InferCtx {
public:
  InferCtx(Module &M, DiagnosticEngine &Diags)
      : M(M), TT(M.types()), Diags(Diags), Env(M.numVars()) {}

  bool run();

private:
  //===--- unification variables -------------------------------------------//

  TypeId freshVar() {
    uint32_t N = static_cast<uint32_t>(VarBinding.size());
    VarBinding.push_back(TypeId::invalid());
    VarLevel.push_back(CurrentLevel);
    NoGeneralize.push_back(false);
    return TT.varType(N);
  }

  /// Follows variable bindings until reaching a non-variable type or an
  /// unbound variable.
  TypeId resolveShallow(TypeId T) const {
    while (true) {
      const Type &Node = TT.type(T);
      if (Node.Kind != TypeKind::Var)
        return T;
      if (Node.VarNum >= VarBinding.size() ||
          !VarBinding[Node.VarNum].isValid())
        return T;
      T = VarBinding[Node.VarNum];
    }
  }

  /// Occurs check plus level adjustment: every free variable of \p T gets
  /// its level lowered to \p Lv.  Returns false if \p VarNum occurs in T.
  bool occursAdjust(uint32_t VarNum, uint32_t Lv, TypeId T) {
    T = resolveShallow(T);
    const Type &Node = TT.type(T);
    if (Node.Kind == TypeKind::Var) {
      if (Node.VarNum == VarNum)
        return false;
      if (Node.VarNum < VarLevel.size())
        VarLevel[Node.VarNum] = std::min(VarLevel[Node.VarNum], Lv);
      return true;
    }
    for (TypeId A : Node.Args)
      if (!occursAdjust(VarNum, Lv, A))
        return false;
    return true;
  }

  bool unify(TypeId A, TypeId B, SourceLoc Loc) {
    A = resolveShallow(A);
    B = resolveShallow(B);
    if (A == B)
      return true;
    const Type &NA = TT.type(A);
    const Type &NB = TT.type(B);
    if (NA.Kind == TypeKind::Var)
      return bindVar(NA.VarNum, B, Loc);
    if (NB.Kind == TypeKind::Var)
      return bindVar(NB.VarNum, A, Loc);
    if (NA.Kind != NB.Kind || NA.Name != NB.Name ||
        NA.Args.size() != NB.Args.size())
      return mismatch(A, B, Loc);
    for (size_t I = 0; I != NA.Args.size(); ++I)
      if (!unify(NA.Args[I], NB.Args[I], Loc))
        return false;
    return true;
  }

  bool bindVar(uint32_t VarNum, TypeId T, SourceLoc Loc) {
    assert(VarNum < VarBinding.size() && !VarBinding[VarNum].isValid() &&
           "binding a bound variable");
    if (!occursAdjust(VarNum, VarLevel[VarNum], T)) {
      error(Loc, "cannot construct the infinite type 't" +
                     std::to_string(VarNum) + " = " + render(T));
      return false;
    }
    // A pending projection restriction survives unification: whatever the
    // restricted variable now stands for must stay monomorphic until the
    // projection is resolved.
    if (NoGeneralize[VarNum])
      markNoGeneralize(T);
    VarBinding[VarNum] = T;
    return true;
  }

  void markNoGeneralize(TypeId T) {
    T = resolveShallow(T);
    const Type &Node = TT.type(T);
    if (Node.Kind == TypeKind::Var) {
      if (Node.VarNum < NoGeneralize.size())
        NoGeneralize[Node.VarNum] = true;
      return;
    }
    for (TypeId A : Node.Args)
      markNoGeneralize(A);
  }

  bool mismatch(TypeId A, TypeId B, SourceLoc Loc) {
    error(Loc, "type mismatch: " + render(A) + " vs " + render(B));
    return false;
  }

  std::string render(TypeId T) { return TT.render(zonk(T), M.strings()); }

  void error(SourceLoc Loc, std::string Message) {
    // Report only the first error: later ones tend to be noise caused by
    // the recovery types.
    if (Ok)
      Diags.error(Loc, std::move(Message));
    Ok = false;
  }

  //===--- schemes ----------------------------------------------------------//

  /// Replaces the scheme's quantified variables with fresh ones.
  TypeId instantiate(const Scheme &S) {
    if (S.Quantified.empty())
      return S.Body;
    std::unordered_map<uint32_t, TypeId> Subst;
    for (uint32_t Q : S.Quantified)
      Subst.emplace(Q, freshVar());
    return substitute(S.Body, Subst);
  }

  TypeId substitute(TypeId T, const std::unordered_map<uint32_t, TypeId> &S) {
    T = resolveShallow(T);
    // Copy: the recursive calls below may intern new types and invalidate
    // references into the table.
    Type Node = TT.type(T);
    if (Node.Kind == TypeKind::Var) {
      auto It = S.find(Node.VarNum);
      return It == S.end() ? T : It->second;
    }
    if (Node.Args.empty())
      return T;
    std::vector<TypeId> Args;
    Args.reserve(Node.Args.size());
    for (TypeId A : Node.Args)
      Args.push_back(substitute(A, S));
    return rebuild(Node.Kind, std::move(Args));
  }

  TypeId rebuild(TypeKind Kind, std::vector<TypeId> Args) {
    switch (Kind) {
    case TypeKind::Arrow:
      return TT.arrowType(Args[0], Args[1]);
    case TypeKind::Tuple:
      return TT.tupleType(std::move(Args));
    case TypeKind::Ref:
      return TT.refType(Args[0]);
    default:
      assert(false && "rebuild of a leaf type");
      return TT.unitType();
    }
  }

  /// Quantifies the free variables of \p T whose level is deeper than the
  /// current one (Rémy-style generalization).
  Scheme generalize(TypeId T) {
    Scheme S;
    collectGeneralizable(T, S.Quantified);
    S.Body = T;
    return S;
  }

  void collectGeneralizable(TypeId T, std::vector<uint32_t> &Out) {
    T = resolveShallow(T);
    const Type &Node = TT.type(T);
    if (Node.Kind == TypeKind::Var) {
      // Variables carrying a pending projection stay monomorphic so a later
      // use in the same scope can still determine the tuple shape (the
      // moral equivalent of SML's flex-record restriction).
      if (Node.VarNum < VarLevel.size() &&
          VarLevel[Node.VarNum] > CurrentLevel && !NoGeneralize[Node.VarNum] &&
          std::find(Out.begin(), Out.end(), Node.VarNum) == Out.end())
        Out.push_back(Node.VarNum);
      return;
    }
    for (TypeId A : Node.Args)
      collectGeneralizable(A, Out);
  }

  //===--- the walk ---------------------------------------------------------//

  TypeId inferExpr(ExprId Id);
  TypeId inferNonLet(const Expr *E);
  TypeId primType(const PrimExpr *P);

  /// True for syntactic values (the ML value restriction).
  bool isSyntacticValue(ExprId Id) const {
    const Expr *E = M.expr(Id);
    switch (E->kind()) {
    case ExprKind::Var:
    case ExprKind::Lam:
    case ExprKind::Lit:
      return true;
    case ExprKind::Tuple:
      for (ExprId C : cast<TupleExpr>(E)->elems())
        if (!isSyntacticValue(C))
          return false;
      return true;
    case ExprKind::Con:
      for (ExprId C : cast<ConExpr>(E)->args())
        if (!isSyntacticValue(C))
          return false;
      return true;
    default:
      return false;
    }
  }

  /// Fully resolves \p T; only valid once inference is finished (memoized).
  TypeId zonk(TypeId T) {
    T = resolveShallow(T);
    auto It = ZonkMemo.find(T);
    if (It != ZonkMemo.end())
      return It->second;
    // Copy: recursive zonks may intern new types (see `substitute`).
    Type Node = TT.type(T);
    TypeId Out = T;
    if (!Node.Args.empty()) {
      std::vector<TypeId> Args;
      Args.reserve(Node.Args.size());
      bool Changed = false;
      for (TypeId A : Node.Args) {
        TypeId Z = zonk(A);
        Changed |= (Z != A);
        Args.push_back(Z);
      }
      if (Changed)
        Out = rebuild(Node.Kind, std::move(Args));
    }
    ZonkMemo.emplace(T, Out);
    return Out;
  }

  /// A `#j e` whose scrutinee type was still a variable when checked.
  struct PendingProj {
    TypeId ScrutTy;
    TypeId ResultTy;
    uint32_t Index;
    SourceLoc Loc;
  };

  /// Resolves deferred projections to fixpoint; errors on leftovers.
  void solvePendingProjs();

  Module &M;
  TypeTable &TT;
  DiagnosticEngine &Diags;
  std::vector<Scheme> Env; // indexed by VarId
  std::vector<TypeId> VarBinding;
  std::vector<uint32_t> VarLevel;
  std::vector<bool> NoGeneralize;
  std::vector<PendingProj> PendingProjs;
  std::unordered_map<TypeId, TypeId> ZonkMemo;
  uint32_t CurrentLevel = 0;
  bool Ok = true;
};

} // namespace

void InferCtx::solvePendingProjs() {
  bool Progress = true;
  while (Progress && Ok) {
    Progress = false;
    std::vector<PendingProj> Remaining;
    for (const PendingProj &P : PendingProjs) {
      TypeId Scrut = resolveShallow(P.ScrutTy);
      const Type &Node = TT.type(Scrut);
      if (Node.Kind == TypeKind::Var) {
        Remaining.push_back(P);
        continue;
      }
      Progress = true;
      if (Node.Kind != TypeKind::Tuple)
        error(P.Loc, "projection requires a tuple, got " + render(Scrut));
      else if (P.Index >= Node.Args.size())
        error(P.Loc, "projection index out of range for " + render(Scrut));
      else
        unify(P.ResultTy, Node.Args[P.Index], P.Loc);
    }
    PendingProjs = std::move(Remaining);
  }
  for (const PendingProj &P : PendingProjs)
    error(P.Loc, "cannot determine the tuple shape of this projection");
}

bool InferCtx::run() {
  inferExpr(M.root());
  if (Ok)
    solvePendingProjs();
  if (!Ok)
    return false;
  // Final pass: resolve every recorded occurrence type.  ZonkMemo keeps
  // this linear even when instantiated types share large subtrees.  Clear
  // it first: error rendering may have cached partially-resolved entries.
  ZonkMemo.clear();
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    Expr *Ex = M.expr(ExprId(I));
    assert(Ex->type().isValid() && "expression missed by inference");
    Ex->setType(zonk(Ex->type()));
  }
  return true;
}

TypeId InferCtx::inferExpr(ExprId Id) {
  // `let` spines (the common shape of generated programs: thousands of
  // top-level bindings) are handled with an explicit loop so inference
  // depth is bounded by expression nesting, not by program length.
  std::vector<const LetExpr *> Spine;
  const Expr *E = M.expr(Id);
  while (const auto *L = dyn_cast<LetExpr>(E)) {
    TypeId InitTy;
    if (L->isRec()) {
      ++CurrentLevel;
      TypeId FnVar = freshVar();
      Env[L->var().index()] = {{}, FnVar};
      InitTy = inferExpr(L->init());
      unify(FnVar, InitTy, M.expr(L->init())->loc());
      --CurrentLevel;
      InitTy = FnVar;
    } else {
      ++CurrentLevel;
      InitTy = inferExpr(L->init());
      --CurrentLevel;
    }
    // The value restriction: only generalize syntactic values.
    if (isSyntacticValue(L->init()) || L->isRec())
      Env[L->var().index()] = generalize(InitTy);
    else
      Env[L->var().index()] = {{}, InitTy};
    Spine.push_back(L);
    E = M.expr(L->body());
    if (!Ok)
      break;
  }

  TypeId BodyTy = Ok ? inferNonLet(E) : TT.unitType();
  if (!E->type().isValid())
    M.expr(E->id())->setType(BodyTy);
  for (size_t I = Spine.size(); I != 0; --I)
    M.expr(Spine[I - 1]->id())->setType(BodyTy);
  return BodyTy;
}

TypeId InferCtx::inferNonLet(const Expr *E) {
  TypeId Result = TT.unitType();
  switch (E->kind()) {
  case ExprKind::Var:
    Result = instantiate(Env[cast<VarExpr>(E)->var().index()]);
    break;
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    TypeId ParamTy = freshVar();
    Env[L->param().index()] = {{}, ParamTy};
    TypeId BodyTy = inferExpr(L->body());
    Result = TT.arrowType(ParamTy, BodyTy);
    break;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    TypeId FnTy = inferExpr(A->fn());
    TypeId ArgTy = inferExpr(A->arg());
    TypeId ResTy = freshVar();
    unify(FnTy, TT.arrowType(ArgTy, ResTy), E->loc());
    Result = ResTy;
    break;
  }
  case ExprKind::Let:
    assert(false && "let handled by inferExpr");
    break;
  case ExprKind::LetRecN: {
    const auto *L = cast<LetRecNExpr>(E);
    ++CurrentLevel;
    std::vector<TypeId> FnVars;
    for (const LetRecNExpr::Binding &B : L->bindings()) {
      TypeId V = freshVar();
      FnVars.push_back(V);
      Env[B.Var.index()] = {{}, V};
    }
    for (size_t I = 0; I != L->bindings().size(); ++I) {
      TypeId InitTy = inferExpr(L->bindings()[I].Init);
      unify(FnVars[I], InitTy, M.expr(L->bindings()[I].Init)->loc());
    }
    --CurrentLevel;
    for (size_t I = 0; I != L->bindings().size(); ++I)
      Env[L->bindings()[I].Var.index()] = generalize(FnVars[I]);
    Result = inferExpr(L->body());
    break;
  }
  case ExprKind::Lit: {
    switch (cast<LitExpr>(E)->litKind()) {
    case LitKind::Int:
      Result = TT.intType();
      break;
    case LitKind::Bool:
      Result = TT.boolType();
      break;
    case LitKind::Unit:
      Result = TT.unitType();
      break;
    case LitKind::String:
      Result = TT.stringType();
      break;
    }
    break;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    unify(inferExpr(I->cond()), TT.boolType(), M.expr(I->cond())->loc());
    TypeId ThenTy = inferExpr(I->thenExpr());
    TypeId ElseTy = inferExpr(I->elseExpr());
    unify(ThenTy, ElseTy, E->loc());
    Result = ThenTy;
    break;
  }
  case ExprKind::Tuple: {
    std::vector<TypeId> Fields;
    for (ExprId C : cast<TupleExpr>(E)->elems())
      Fields.push_back(inferExpr(C));
    Result = TT.tupleType(std::move(Fields));
    break;
  }
  case ExprKind::Proj: {
    const auto *P = cast<ProjExpr>(E);
    TypeId TupleTy = resolveShallow(inferExpr(P->tuple()));
    const Type &Node = TT.type(TupleTy);
    if (Node.Kind == TypeKind::Var) {
      // The scrutinee's shape is not known yet (typically a lambda
      // parameter projected in its own body).  Defer: a later use in the
      // same generalization scope must pin the tuple down.
      NoGeneralize[Node.VarNum] = true;
      Result = freshVar();
      // The result is pinned to the scrutinee's eventual field type, so it
      // must not be generalized either (else a later resolution would
      // mutate an already-instantiated scheme).
      NoGeneralize[TT.type(Result).VarNum] = true;
      PendingProjs.push_back({TupleTy, Result, P->index(), E->loc()});
    } else if (Node.Kind != TypeKind::Tuple) {
      error(E->loc(), "projection requires a tuple, got " + render(TupleTy));
    } else if (P->index() >= Node.Args.size()) {
      error(E->loc(), "projection index out of range for " + render(TupleTy));
    } else {
      Result = Node.Args[P->index()];
    }
    break;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    const ConInfo &Info = M.con(C->con());
    for (size_t I = 0; I != C->args().size(); ++I) {
      TypeId ArgTy = inferExpr(C->args()[I]);
      unify(ArgTy, Info.ArgTypes[I], M.expr(C->args()[I])->loc());
    }
    Result = Info.ResultType;
    break;
  }
  case ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    TypeId ScrutTy = inferExpr(C->scrutinee());
    TypeId ResTy = freshVar();
    for (const CaseArm &Arm : C->arms()) {
      const ConInfo &Info = M.con(Arm.Con);
      unify(ScrutTy, Info.ResultType, M.expr(C->scrutinee())->loc());
      for (size_t I = 0; I != Arm.Binders.size(); ++I)
        Env[Arm.Binders[I].index()] = {{}, Info.ArgTypes[I]};
      unify(inferExpr(Arm.Body), ResTy, M.expr(Arm.Body)->loc());
    }
    Result = ResTy;
    break;
  }
  case ExprKind::Prim:
    Result = primType(cast<PrimExpr>(E));
    break;
  }
  M.expr(E->id())->setType(Result);
  return Result;
}

TypeId InferCtx::primType(const PrimExpr *P) {
  auto Arg = [&](size_t I) { return inferExpr(P->args()[I]); };
  auto ArgLoc = [&](size_t I) { return M.expr(P->args()[I])->loc(); };
  switch (P->op()) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
    unify(Arg(0), TT.intType(), ArgLoc(0));
    unify(Arg(1), TT.intType(), ArgLoc(1));
    return TT.intType();
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Eq:
    unify(Arg(0), TT.intType(), ArgLoc(0));
    unify(Arg(1), TT.intType(), ArgLoc(1));
    return TT.boolType();
  case PrimOp::Not:
    unify(Arg(0), TT.boolType(), ArgLoc(0));
    return TT.boolType();
  case PrimOp::Print:
    Arg(0); // prints any value
    return TT.unitType();
  case PrimOp::RefNew:
    return TT.refType(Arg(0));
  case PrimOp::RefGet: {
    TypeId Content = freshVar();
    unify(Arg(0), TT.refType(Content), ArgLoc(0));
    return Content;
  }
  case PrimOp::RefSet: {
    TypeId Content = freshVar();
    unify(Arg(0), TT.refType(Content), ArgLoc(0));
    unify(Arg(1), Content, ArgLoc(1));
    return TT.unitType();
  }
  }
  assert(false && "unknown primitive");
  return TT.unitType();
}

bool stcfa::inferTypes(Module &M, DiagnosticEngine &Diags) {
  InferCtx Ctx(M, Diags);
  return Ctx.run();
}

TypeMetrics stcfa::computeTypeMetrics(const Module &M) {
  const TypeTable &TT = M.types();
  TypeMetrics Out;
  // Memoized tree size with saturation: instantiated polymorphic types can
  // share exponentially large trees.
  std::unordered_map<TypeId, uint64_t> SizeMemo;
  constexpr uint64_t Cap = 1ull << 32;
  auto size = [&](auto &&Self, TypeId T) -> uint64_t {
    auto It = SizeMemo.find(T);
    if (It != SizeMemo.end())
      return It->second;
    uint64_t S = 1;
    for (TypeId A : TT.type(T).Args)
      S = std::min(Cap, S + Self(Self, A));
    SizeMemo.emplace(T, S);
    return S;
  };

  uint64_t Total = 0;
  uint32_t Count = 0;
  for (uint32_t I = 0, E = M.numExprs(); I != E; ++I) {
    TypeId T = M.expr(ExprId(I))->type();
    if (!T.isValid())
      continue;
    uint64_t S = size(size, T);
    Total += std::min<uint64_t>(S, Cap);
    Out.MaxTypeSize = std::max(Out.MaxTypeSize,
                               static_cast<uint32_t>(std::min(S, Cap)));
    Out.MaxOrder = std::max(Out.MaxOrder, TT.order(T));
    Out.MaxArity = std::max(Out.MaxArity, TT.arity(T));
    ++Count;
  }
  Out.AvgTypeSize = Count ? static_cast<double>(Total) / Count : 0.0;
  return Out;
}
