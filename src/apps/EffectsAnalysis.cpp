//===-- apps/EffectsAnalysis.cpp - Linear-time effects analysis -----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/EffectsAnalysis.h"

#include "analysis/StandardCFA.h"

using namespace stcfa;

EffectsAnalysis::EffectsAnalysis(const SubtransitiveGraph &G,
                                 const FrozenGraph *Frozen)
    : G(&G), Frozen(Frozen), M(G.module()), RedExpr(M.numExprs(), false),
      RedNode(G.numNodes(), false), ExprDeps(M.numExprs()),
      AppsOnRan(G.numNodes()) {
  assert((!Frozen || !Frozen->hasSource() || &Frozen->source() == &G) &&
         "snapshot must freeze this graph");
}

EffectsAnalysis::EffectsAnalysis(const Module &M, const FrozenGraph &Frozen)
    : G(nullptr), Frozen(&Frozen), M(M), RedExpr(M.numExprs(), false),
      RedNode(Frozen.numNodes(), false), ExprDeps(M.numExprs()),
      AppsOnRan(Frozen.numNodes()) {
  assert(M.numExprs() == Frozen.numExprs() &&
         "module/snapshot shape mismatch");
}

NodeId EffectsAnalysis::nodeOfExpr(ExprId E) const {
  if (G)
    return G->lookupExprNode(E);
  uint32_t N = Frozen->nodeOfExpr(E);
  return N == FrozenGraph::None ? NodeId() : NodeId(N);
}

NodeId EffectsAnalysis::ranPortOf(NodeId Fn) const {
  if (G)
    return G->lookupDerived(NodeOp::Ran, Fn);
  uint32_t R = Frozen->ranOf(Fn.index());
  return R == FrozenGraph::None ? NodeId() : NodeId(R);
}

NodeOp EffectsAnalysis::opOf(NodeId N) const {
  return G ? G->op(N) : Frozen->op(N.index());
}

void EffectsAnalysis::markExpr(ExprId E) {
  if (RedExpr[E.index()])
    return;
  RedExpr[E.index()] = true;
  ++NumRed;
  ExprWorklist.push_back(E);
  NodeId N = nodeOfExpr(E);
  if (N.isValid())
    markNode(N);
}

void EffectsAnalysis::markNode(NodeId N) {
  if (RedNode[N.index()])
    return;
  RedNode[N.index()] = true;
  NodeWorklist.push_back(N);
}

Status EffectsAnalysis::run(const Deadline &D, const CancellationToken &Token) {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // One linear pass: seed the side-effecting primitives and record the
  // structural dependencies child -> parent (skipping lambda bodies) plus
  // the app -> ran(operator) registrations.
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    if (!isa<LamExpr>(E))
      forEachChild(E, [&](ExprId C) { ExprDeps[C.index()].push_back(Id); });
    if (const auto *P = dyn_cast<PrimExpr>(E)) {
      if (isEffectfulPrim(P->op()))
        markExpr(Id);
    }
    if (const auto *A = dyn_cast<AppExpr>(E)) {
      NodeId Fn = nodeOfExpr(A->fn());
      if (Fn.isValid()) {
        NodeId Ran = ranPortOf(Fn);
        // APP-2 created ran(fn) during the build phase.
        if (Ran.isValid())
          AppsOnRan[Ran.index()].push_back(Id);
      }
    }
  });

  // Fixpoint: redness flows from children to parents, and backwards along
  // graph edges into ran-nodes (the paper's rule (b)).  Each pop is a few
  // vector scans, so the governor checkpoint runs every `Stride` pops.
  constexpr uint64_t Stride = 4096;
  uint64_t Pops = 0;
  while (!ExprWorklist.empty() || !NodeWorklist.empty()) {
    if (Pops++ % Stride == 0) {
      if (Token.cancelled())
        return RunStatus = Status::cancelled("effects analysis cancelled");
      if (D.expired())
        return RunStatus = Status::deadlineExceeded(
                   "effects analysis exceeded its deadline");
    }
    if (!ExprWorklist.empty()) {
      ExprId E = ExprWorklist.back();
      ExprWorklist.pop_back();
      for (ExprId Parent : ExprDeps[E.index()])
        markExpr(Parent);
      continue;
    }
    NodeId N = NodeWorklist.back();
    NodeWorklist.pop_back();
    // Rule (b): a ran-node with an edge to a red node is red.
    if (Frozen) {
      for (uint32_t P : Frozen->preds(N.index()))
        if (Frozen->op(P) == NodeOp::Ran)
          markNode(NodeId(P));
    } else {
      for (NodeId P : G->preds(N))
        if (G->op(P) == NodeOp::Ran)
          markNode(P);
    }
    // Rule (a), third disjunct: a call site whose ran(operator) is red.
    if (opOf(N) == NodeOp::Ran)
      for (ExprId App : AppsOnRan[N.index()])
        markExpr(App);
  }
  return RunStatus = Status::ok();
}

//===----------------------------------------------------------------------===//
// Reference implementation over standard CFA
//===----------------------------------------------------------------------===//

EffectsAnalysisRef::EffectsAnalysisRef(const Module &M, const StandardCFA &CFA)
    : M(M), CFA(CFA), Red(M.numExprs(), false) {}

void EffectsAnalysisRef::run() {
  // Naive fixpoint: iterate the syntactic rules over the full label-set
  // representation until nothing changes.
  bool Changed = true;
  auto mark = [&](ExprId E) {
    if (Red[E.index()])
      return;
    Red[E.index()] = true;
    ++NumRed;
    Changed = true;
  };

  while (Changed) {
    Changed = false;
    forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
      if (Red[Id.index()])
        return;
      if (const auto *P = dyn_cast<PrimExpr>(E)) {
        if (isEffectfulPrim(P->op())) {
          mark(Id);
          return;
        }
      }
      // Evaluated children.
      bool ChildRed = false;
      if (!isa<LamExpr>(E))
        forEachChild(E, [&](ExprId C) { ChildRed |= Red[C.index()]; });
      if (ChildRed) {
        mark(Id);
        return;
      }
      // A call site is red when any callee body is red.
      if (const auto *A = dyn_cast<AppExpr>(E)) {
        bool CalleeRed = false;
        CFA.labelSet(A->fn()).forEach([&](uint32_t L) {
          const auto *Lam = cast<LamExpr>(M.expr(M.lamOfLabel(LabelId(L))));
          CalleeRed |= Red[Lam->body().index()];
        });
        if (CalleeRed)
          mark(Id);
      }
    });
  }
}
