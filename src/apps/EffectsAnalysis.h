//===-- apps/EffectsAnalysis.h - Linear-time effects analysis ---*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 8's linear-time effects analysis: find every expression whose
/// evaluation may cause a side effect, *without* materialising label sets.
///
/// The paper's formulation (for the pure calculus plus side-effecting
/// primitives):
///
///   (a) an application `(e1 e2)` is red if `e1`, `e2`, or `ran(e1)` is
///       red;
///   (b) a node `ran(e)` is red if it has an edge to a red node.
///
/// We generalise structurally to the full language: every expression is
/// red when an evaluated child is red (a lambda does *not* inherit its
/// body's redness — building a closure is pure), and redness travels
/// backwards through `ran`-chains of the subtransitive graph so that a
/// call site inherits the redness of every function body that can reach
/// its operator position.  One worklist pass, O(nodes + edges).
///
/// `EffectsAnalysisRef` recomputes the same property from full standard
/// CFA label sets (the quadratic pipeline the paper contrasts against);
/// the test suite checks both agree.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_APPS_EFFECTSANALYSIS_H
#define STCFA_APPS_EFFECTSANALYSIS_H

#include "core/FrozenGraph.h"
#include "core/SubtransitiveGraph.h"

namespace stcfa {

class StandardCFA;

/// Linear-time effects analysis over a closed subtransitive graph.
class EffectsAnalysis {
public:
  /// With \p Frozen (a snapshot of the same graph), the propagation
  /// iterates the compacted CSR adjacency instead of the intrusive
  /// linked lists; results are identical.
  explicit EffectsAnalysis(const SubtransitiveGraph &G,
                           const FrozenGraph *Frozen = nullptr);

  /// Snapshot-only form: every graph lookup (occurrence nodes, ran
  /// ports, ops, adjacency) is served from \p Frozen's flat tables, so
  /// an mmap-backed view with no live graph works — the
  /// lint-over-snapshot and daemon paths.  \p M must be the module the
  /// snapshot was frozen from (content-hash-verified by the caller).
  EffectsAnalysis(const Module &M, const FrozenGraph &Frozen);

  /// Runs the propagation; call once.
  void run() { (void)run(Deadline::infinite()); }

  /// Governed run: polls \p D and \p Token every few thousand worklist
  /// pops.  On `DeadlineExceeded`/`Cancelled` the marks are an
  /// *under*-approximation (some effectful occurrences may be missed);
  /// callers must surface the partial-result flag.
  Status run(const Deadline &D, const CancellationToken &Token = {});

  /// The status of the last `run` (`Ok` for a completed fixpoint).
  const Status &runStatus() const { return RunStatus; }

  /// May evaluating \p E cause a side effect?
  bool isEffectful(ExprId E) const { return RedExpr[E.index()]; }

  /// Number of side-effecting occurrences found.
  uint32_t numEffectful() const { return NumRed; }

private:
  void markExpr(ExprId E);
  void markNode(NodeId N);
  NodeId nodeOfExpr(ExprId E) const;
  NodeId ranPortOf(NodeId Fn) const;
  NodeOp opOf(NodeId N) const;

  const SubtransitiveGraph *G; ///< null on the snapshot-only path
  const FrozenGraph *Frozen;   ///< non-null whenever `G` is null
  const Module &M;
  std::vector<bool> RedExpr;
  std::vector<bool> RedNode;
  /// Expression -> expressions whose redness it implies.
  std::vector<std::vector<ExprId>> ExprDeps;
  /// ran-node -> application sites registered on it.
  std::vector<std::vector<ExprId>> AppsOnRan;
  std::vector<ExprId> ExprWorklist;
  std::vector<NodeId> NodeWorklist;
  uint32_t NumRed = 0;
  Status RunStatus;
  bool HasRun = false;
};

/// Reference implementation: standard CFA label sets plus a syntactic
/// fixpoint (at least quadratic, per the paper).  For testing and for the
/// E4 benchmark baseline.
class EffectsAnalysisRef {
public:
  explicit EffectsAnalysisRef(const Module &M, const StandardCFA &CFA);

  void run();

  bool isEffectful(ExprId E) const { return Red[E.index()]; }
  uint32_t numEffectful() const { return NumRed; }

private:
  const Module &M;
  const StandardCFA &CFA;
  std::vector<bool> Red;
  uint32_t NumRed = 0;
};

} // namespace stcfa

#endif // STCFA_APPS_EFFECTSANALYSIS_H
