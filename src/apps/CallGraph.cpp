//===-- apps/CallGraph.cpp - Call-graph construction ----------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/CallGraph.h"

using namespace stcfa;

CallGraph::CallGraph(const SubtransitiveGraph &G, QueryEngine *Engine)
    : G(G), M(G.module()), Engine(Engine) {
  Callees.assign(numCallers(), DenseBitset(M.numLabels()));
  Sites.resize(numCallers());
}

void CallGraph::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // Attribute every occurrence to its innermost enclosing abstraction
  // with one pass (recursion on lambda bodies carries the owner down).
  std::vector<uint32_t> OwnerOf(M.numExprs(), rootIndex());
  std::vector<std::pair<ExprId, uint32_t>> Stack{{M.root(), rootIndex()}};
  while (!Stack.empty()) {
    auto [Id, Owner] = Stack.back();
    Stack.pop_back();
    OwnerOf[Id.index()] = Owner;
    const Expr *E = M.expr(Id);
    uint32_t ChildOwner =
        isa<LamExpr>(E) ? cast<LamExpr>(E)->label().index() : Owner;
    forEachChild(E, [&, CO = ChildOwner](ExprId C) {
      Stack.emplace_back(C, CO);
    });
  }

  // Collect all call sites first so the engine path can answer them as
  // one batch (sharded across its thread pool).
  std::vector<ExprId> Operators;
  std::vector<uint32_t> Owners;
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    const auto *App = dyn_cast<AppExpr>(E);
    if (!App)
      return;
    uint32_t Owner = OwnerOf[Id.index()];
    Sites[Owner].push_back(Id);
    Operators.push_back(App->fn());
    Owners.push_back(Owner);
  });

  if (Engine) {
    std::vector<DenseBitset> Sets = Engine->labelsOfBatch(Operators);
    for (size_t I = 0; I != Sets.size(); ++I)
      Callees[Owners[I]].unionWith(Sets[I]);
    return;
  }
  Reachability R(G);
  for (size_t I = 0; I != Operators.size(); ++I)
    Callees[Owners[I]].unionWith(R.labelsOf(Operators[I]));
}

DenseBitset CallGraph::reachableFunctions() const {
  assert(HasRun && "query before run()");
  DenseBitset Reached(M.numLabels());
  std::vector<uint32_t> Worklist{rootIndex()};
  while (!Worklist.empty()) {
    uint32_t Caller = Worklist.back();
    Worklist.pop_back();
    Callees[Caller].forEach([&](uint32_t L) {
      if (Reached.insert(L))
        Worklist.push_back(L);
    });
  }
  return Reached;
}

std::vector<LabelId> CallGraph::deadFunctions() const {
  DenseBitset Reached = reachableFunctions();
  std::vector<LabelId> Out;
  for (uint32_t L = 0; L != M.numLabels(); ++L)
    if (!Reached.contains(L))
      Out.push_back(LabelId(L));
  return Out;
}
