//===-- apps/KLimitedCFA.cpp - Linear-time k-limited CFA ------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/KLimitedCFA.h"

#include <algorithm>

using namespace stcfa;

bool LimitedSet::insert(uint32_t Id, uint32_t K) {
  if (Many)
    return false;
  auto It = std::lower_bound(Ids.begin(), Ids.end(), Id);
  if (It != Ids.end() && *It == Id)
    return false;
  if (Ids.size() >= K) {
    Many = true;
    Ids.clear();
    return true;
  }
  Ids.insert(It, Id);
  return true;
}

bool LimitedSet::mergeFrom(const LimitedSet &Other, uint32_t K) {
  if (Many)
    return false;
  if (Other.Many) {
    Many = true;
    Ids.clear();
    return true;
  }
  bool Changed = false;
  for (uint32_t Id : Other.Ids) {
    Changed |= insert(Id, K);
    if (Many)
      return true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// KLimitedCFA
//===----------------------------------------------------------------------===//

KLimitedCFA::KLimitedCFA(const SubtransitiveGraph &G, uint32_t K,
                         const FrozenGraph *Frozen)
    : G(G), Frozen(Frozen), M(G.module()), K(K), Ann(G.numNodes()) {
  assert((!Frozen || &Frozen->source() == &G) &&
         "snapshot must freeze this graph");
}

void KLimitedCFA::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // Seed: every node carrying a label knows at least itself; propagate
  // against the edges (a predecessor's set contains its successors').
  std::vector<NodeId> Worklist;
  for (uint32_t N = 0, E = G.numNodes(); N != E; ++N) {
    if (LabelId L = G.labelOf(NodeId(N)); L.isValid()) {
      Ann[N].insert(L.index(), K);
      Worklist.push_back(NodeId(N));
    }
  }
  auto Merge = [&](uint32_t P, uint32_t N) {
    ++Updates;
    if (Ann[P].mergeFrom(Ann[N], K))
      Worklist.push_back(NodeId(P));
  };
  while (!Worklist.empty()) {
    NodeId N = Worklist.back();
    Worklist.pop_back();
    if (Frozen) {
      for (uint32_t P : Frozen->preds(N.index()))
        Merge(P, N.index());
    } else {
      for (NodeId P : G.preds(N))
        Merge(P.index(), N.index());
    }
  }
}

const LimitedSet &KLimitedCFA::ofExpr(ExprId E) const {
  assert(HasRun && "query before run()");
  NodeId N = G.lookupExprNode(E);
  return N.isValid() ? Ann[N.index()] : Empty;
}

const LimitedSet &KLimitedCFA::ofVar(VarId V) const {
  assert(HasRun && "query before run()");
  NodeId N = G.lookupVarNode(V);
  return N.isValid() ? Ann[N.index()] : Empty;
}

const LimitedSet &KLimitedCFA::ofCallSite(ExprId App) const {
  const auto *A = cast<AppExpr>(M.expr(App));
  return ofExpr(A->fn());
}

//===----------------------------------------------------------------------===//
// CalledOnceAnalysis
//===----------------------------------------------------------------------===//

CalledOnceAnalysis::CalledOnceAnalysis(const SubtransitiveGraph &G,
                                       const FrozenGraph *Frozen)
    : G(&G), Frozen(Frozen), M(G.module()),
      Result(M.numLabels(), CallCount::Never),
      Site(M.numLabels(), ExprId::invalid()) {
  assert((!Frozen || !Frozen->hasSource() || &Frozen->source() == &G) &&
         "snapshot must freeze this graph");
}

CalledOnceAnalysis::CalledOnceAnalysis(const Module &M,
                                       const FrozenGraph &Frozen)
    : G(nullptr), Frozen(&Frozen), M(M),
      Result(M.numLabels(), CallCount::Never),
      Site(M.numLabels(), ExprId::invalid()) {
  assert(M.numLabels() == Frozen.numLabels() &&
         "module/snapshot shape mismatch");
}

NodeId CalledOnceAnalysis::nodeOfExpr(ExprId E) const {
  if (G)
    return G->lookupExprNode(E);
  uint32_t N = Frozen->nodeOfExpr(E);
  return N == FrozenGraph::None ? NodeId() : NodeId(N);
}

NodeId CalledOnceAnalysis::labelNodeOf(LabelId L) const {
  if (G)
    return G->lookupLabelNode(L);
  uint32_t N = Frozen->labelRoots(L).second;
  return N == FrozenGraph::None ? NodeId() : NodeId(N);
}

Status CalledOnceAnalysis::run(const Deadline &D,
                               const CancellationToken &Token) {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // 1-limited call-site markers flowing with the edges.
  std::vector<LimitedSet> Marks(G ? G->numNodes() : Frozen->numNodes());
  std::vector<NodeId> Worklist;
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    const auto *A = dyn_cast<AppExpr>(E);
    if (!A)
      return;
    NodeId Fn = nodeOfExpr(A->fn());
    if (!Fn.isValid())
      return;
    if (Marks[Fn.index()].insert(Id.index(), /*K=*/1) ||
        Marks[Fn.index()].isMany())
      Worklist.push_back(Fn);
  });
  auto Merge = [&](uint32_t S, uint32_t N) {
    if (Marks[S].mergeFrom(Marks[N], /*K=*/1))
      Worklist.push_back(NodeId(S));
  };
  constexpr uint64_t Stride = 4096;
  uint64_t Pops = 0;
  RunStatus = Status::ok();
  while (!Worklist.empty()) {
    if (Pops++ % Stride == 0) {
      if (Token.cancelled()) {
        RunStatus = Status::cancelled("called-once analysis cancelled");
        break;
      }
      if (D.expired()) {
        RunStatus = Status::deadlineExceeded(
            "called-once analysis exceeded its deadline");
        break;
      }
    }
    NodeId N = Worklist.back();
    Worklist.pop_back();
    if (Frozen) {
      for (uint32_t S : Frozen->succs(N.index()))
        Merge(S, N.index());
    } else {
      for (NodeId S : G->succs(N))
        Merge(S.index(), N.index());
    }
  }

  // Summarise whatever marker flow completed; on an aborted propagation
  // the counts are an under-approximation and RunStatus says so.
  for (uint32_t L = 0, E = M.numLabels(); L != E; ++L) {
    LimitedSet Total;
    NodeId Lam = nodeOfExpr(M.lamOfLabel(LabelId(L)));
    if (Lam.isValid())
      Total.mergeFrom(Marks[Lam.index()], 1);
    // Polyvariant instantiations attach labels through closure-inert
    // label nodes; their markers count too.
    if (NodeId LN = labelNodeOf(LabelId(L)); LN.isValid())
      Total.mergeFrom(Marks[LN.index()], 1);
    if (Total.isMany()) {
      Result[L] = CallCount::Many;
    } else if (Total.size() == 1) {
      Result[L] = CallCount::Once;
      Site[L] = ExprId(Total.ids()[0]);
    }
  }
  return RunStatus;
}

std::vector<LabelId> CalledOnceAnalysis::calledOnce() const {
  assert(HasRun && "query before run()");
  std::vector<LabelId> Out;
  for (uint32_t L = 0, E = M.numLabels(); L != E; ++L)
    if (Result[L] == CallCount::Once)
      Out.push_back(LabelId(L));
  return Out;
}
