//===-- apps/CallGraph.h - Call-graph construction --------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow graph the paper's introduction motivates: "the
/// control-flow graph of a program plays a central role in compilation".
/// For higher-order programs it must be computed by CFA; this consumer
/// derives it from the subtransitive graph:
///
///   * nodes are abstraction labels plus a synthetic `root` (top-level
///     code),
///   * there is an edge `f -> g` when some application site inside `f`'s
///     body may invoke `g`.
///
/// Callee sets per site come from graph reachability (output-bound cost,
/// like the paper's "all calls from all call sites" view); the derived
/// queries — reachable functions, dead functions, strongly connected
/// (mutually recursive) groups — are then linear in the call graph.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_APPS_CALLGRAPH_H
#define STCFA_APPS_CALLGRAPH_H

#include "core/QueryEngine.h"
#include "core/Reachability.h"
#include "core/SubtransitiveGraph.h"

#include <vector>

namespace stcfa {

/// Monovariant call graph over abstraction labels.
class CallGraph {
public:
  /// With \p Engine, callee sets come from one batched (optionally
  /// parallel) `labelsOfBatch` over all call-site operators instead of
  /// one linked-list DFS per site; results are identical.
  explicit CallGraph(const SubtransitiveGraph &G,
                     QueryEngine *Engine = nullptr);

  /// Builds the graph (callee sets via reachability per call site).
  void run();

  /// Caller index space: label indices, plus `rootIndex()` for top-level.
  uint32_t rootIndex() const { return M.numLabels(); }
  uint32_t numCallers() const { return M.numLabels() + 1; }

  /// Labels callable from caller \p Caller (a label index or rootIndex()).
  const DenseBitset &calleesOf(uint32_t Caller) const {
    return Callees[Caller];
  }

  /// Call sites attributed to caller \p Caller.
  const std::vector<ExprId> &sitesOf(uint32_t Caller) const {
    return Sites[Caller];
  }

  /// Functions reachable from top-level code (transitively callable).
  DenseBitset reachableFunctions() const;

  /// Functions that no reachable code can call.
  std::vector<LabelId> deadFunctions() const;

private:
  const SubtransitiveGraph &G;
  const Module &M;
  QueryEngine *Engine;
  std::vector<DenseBitset> Callees;
  std::vector<std::vector<ExprId>> Sites;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_APPS_CALLGRAPH_H
