//===-- apps/KLimitedCFA.h - Linear-time k-limited CFA ----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 9: for each node, either the exact set of callable functions
/// when it is small (<= k), or the token "many".  Annotations propagate
/// *against* edge direction (an edge `n1 -> n2` means `L(n1) ⊇ L(n2)`);
/// each node's annotation can change at most k+2 times, so the whole
/// propagation is linear in the graph for fixed k.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_APPS_KLIMITEDCFA_H
#define STCFA_APPS_KLIMITEDCFA_H

#include "core/FrozenGraph.h"
#include "core/SubtransitiveGraph.h"

#include <vector>

namespace stcfa {

/// The lattice  ∅ ⊂ {≤K ids} ⊂ Many  over 32-bit ids.
class LimitedSet {
public:
  bool isMany() const { return Many; }
  /// The ids; meaningless when `isMany()`.
  const std::vector<uint32_t> &ids() const { return Ids; }
  uint32_t size() const { return static_cast<uint32_t>(Ids.size()); }

  /// Inserts \p Id, saturating to Many beyond \p K elements; returns true
  /// iff the set changed.
  bool insert(uint32_t Id, uint32_t K);

  /// Merges \p Other in (same saturation rule); returns true iff changed.
  bool mergeFrom(const LimitedSet &Other, uint32_t K);

private:
  std::vector<uint32_t> Ids; // sorted
  bool Many = false;
};

/// Linear-time k-limited CFA over a closed subtransitive graph.
class KLimitedCFA {
public:
  /// With \p Frozen (a snapshot of the same graph), the propagation
  /// iterates the compacted CSR adjacency; results are identical.
  KLimitedCFA(const SubtransitiveGraph &G, uint32_t K,
              const FrozenGraph *Frozen = nullptr);

  void run();

  uint32_t k() const { return K; }

  /// The annotation of occurrence \p E: its callable functions if few.
  const LimitedSet &ofExpr(ExprId E) const;

  /// The annotation of binder \p V.
  const LimitedSet &ofVar(VarId V) const;

  /// The functions callable from call site \p App (an `AppExpr` id):
  /// the annotation of its operator.
  const LimitedSet &ofCallSite(ExprId App) const;

  /// Number of worklist updates performed (for the linearity bench).
  uint64_t updates() const { return Updates; }

private:
  const SubtransitiveGraph &G;
  const FrozenGraph *Frozen;
  const Module &M;
  uint32_t K;
  std::vector<LimitedSet> Ann;
  LimitedSet Empty;
  uint64_t Updates = 0;
  bool HasRun = false;
};

/// Called-once analysis (paper abstract: "identify all functions called
/// from only one call-site").  Call-site markers flow *with* edge
/// direction from each application's operator node; by Proposition 1 they
/// arrive exactly at the abstractions the site can call.  1-limited
/// saturation keeps it linear.
class CalledOnceAnalysis {
public:
  /// With \p Frozen, marker propagation iterates the compacted CSR
  /// adjacency; results are identical.
  explicit CalledOnceAnalysis(const SubtransitiveGraph &G,
                              const FrozenGraph *Frozen = nullptr);

  /// Snapshot-only form: node lookups come from \p Frozen's flat tables
  /// (occurrence map, label roots), so an mmap-backed view works — the
  /// lint-over-snapshot and daemon paths.  \p M must be the module the
  /// snapshot was frozen from.
  CalledOnceAnalysis(const Module &M, const FrozenGraph &Frozen);

  void run() { (void)run(Deadline::infinite()); }

  /// Governed run: polls \p D and \p Token every few thousand marker
  /// merges.  On `DeadlineExceeded`/`Cancelled` the per-label counts are
  /// computed from the partial marker flow — an under-approximation
  /// (`Never`/`Once` may be stale); callers must surface the flag.
  Status run(const Deadline &D, const CancellationToken &Token = {});

  /// The status of the last `run` (`Ok` for a completed propagation).
  const Status &runStatus() const { return RunStatus; }

  /// Result for one abstraction.
  enum class CallCount : uint8_t { Never, Once, Many };

  CallCount countOf(LabelId L) const { return Result[L.index()]; }

  /// For a label called exactly once, the unique call site (`AppExpr` id).
  ExprId uniqueCallSite(LabelId L) const { return Site[L.index()]; }

  /// All labels called from exactly one call site.
  std::vector<LabelId> calledOnce() const;

private:
  NodeId nodeOfExpr(ExprId E) const;
  NodeId labelNodeOf(LabelId L) const;

  const SubtransitiveGraph *G; ///< null on the snapshot-only path
  const FrozenGraph *Frozen;   ///< non-null whenever `G` is null
  const Module &M;
  std::vector<CallCount> Result;
  std::vector<ExprId> Site;
  Status RunStatus;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_APPS_KLIMITEDCFA_H
