//===-- unify/UnificationCFA.h - Equality-based flow analysis ---*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equality-based (unification) control-flow analysis in the style of
/// Bondorf & Jørgensen [2], the almost-linear-time alternative the paper
/// contrasts against: every flow constraint `L(a) ⊇ L(b)` is strengthened
/// to `L(a) = L(b)` and solved by union-find.  The result is computed in
/// O(n α(n)) but is strictly less precise than inclusion-based CFA — the
/// paper's point is that the subtransitive graph achieves (near-)linear
/// time *without* this loss.
///
/// Benchmarked against `StandardCFA` and the subtransitive graph in E2/E3;
/// the tests assert soundness (its sets contain standard CFA's).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_UNIFY_UNIFICATIONCFA_H
#define STCFA_UNIFY_UNIFICATIONCFA_H

#include "ast/Module.h"
#include "support/DenseBitset.h"

#include <unordered_map>
#include <vector>

namespace stcfa {

/// Equality-based flow analysis over a module.
class UnificationCFA {
public:
  explicit UnificationCFA(const Module &M);

  /// Builds and solves the equality constraints.
  void run();

  /// Abstraction labels flowing to occurrence \p E (universe: numLabels).
  DenseBitset labelSet(ExprId E) const;
  /// Abstraction labels flowing to binder \p V.
  DenseBitset labelSetOfVar(VarId V) const;

  /// Union operations performed (work measure).
  uint64_t unions() const { return Unions; }
  /// Number of distinct flow classes at the end.
  uint32_t numClasses() const;

private:
  //===--- union-find ------------------------------------------------------//

  uint32_t freshVar();
  uint32_t find(uint32_t V);
  void unite(uint32_t A, uint32_t B);
  void processPending();

  /// The field structure attached to a class: dom/ran of functions, tuple
  /// and constructor fields, ref-cell contents.  Keys are packed tags.
  using FieldMap = std::unordered_map<uint64_t, uint32_t>;

  /// The class field for \p Tag, creating a fresh variable if absent.
  uint32_t fieldOf(uint32_t V, uint64_t Tag);

  uint32_t varOfExpr(ExprId E) const { return E.index(); }
  uint32_t varOfBinder(VarId V) const { return M.numExprs() + V.index(); }

  const Module &M;
  std::vector<uint32_t> Parent;
  std::vector<uint32_t> Rank;
  /// Labels per class root.
  std::vector<std::vector<uint32_t>> Labels;
  /// Structure per class root.
  std::vector<FieldMap> Fields;
  std::vector<std::pair<uint32_t, uint32_t>> Pending;
  uint64_t Unions = 0;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_UNIFY_UNIFICATIONCFA_H
