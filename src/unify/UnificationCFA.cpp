//===-- unify/UnificationCFA.cpp - Equality-based flow analysis -----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "unify/UnificationCFA.h"

#include <algorithm>

using namespace stcfa;

namespace {

// Field tags on flow classes.
constexpr uint64_t TagDom = 1;
constexpr uint64_t TagRan = 2;
constexpr uint64_t TagRefCell = 3;

uint64_t tupleTag(uint32_t Index) { return 0x100 + Index; }
uint64_t conTag(ConId Con, uint32_t Index) {
  return (uint64_t(Con.index() + 1) << 32) | Index;
}

} // namespace

UnificationCFA::UnificationCFA(const Module &M) : M(M) {
  uint32_t N = M.numExprs() + M.numVars();
  Parent.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    Parent[I] = I;
  Rank.assign(N, 0);
  Labels.resize(N);
  Fields.resize(N);
}

uint32_t UnificationCFA::freshVar() {
  uint32_t V = static_cast<uint32_t>(Parent.size());
  Parent.push_back(V);
  Rank.push_back(0);
  Labels.emplace_back();
  Fields.emplace_back();
  return V;
}

uint32_t UnificationCFA::find(uint32_t V) {
  while (Parent[V] != V) {
    Parent[V] = Parent[Parent[V]]; // path halving
    V = Parent[V];
  }
  return V;
}

void UnificationCFA::unite(uint32_t A, uint32_t B) {
  Pending.emplace_back(A, B);
}

void UnificationCFA::processPending() {
  while (!Pending.empty()) {
    auto [A, B] = Pending.back();
    Pending.pop_back();
    A = find(A);
    B = find(B);
    if (A == B)
      continue;
    ++Unions;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    if (Rank[A] == Rank[B])
      ++Rank[A];
    // B merges into A.
    Parent[B] = A;
    // Merge labels.
    if (Labels[A].size() < Labels[B].size())
      Labels[A].swap(Labels[B]);
    Labels[A].insert(Labels[A].end(), Labels[B].begin(), Labels[B].end());
    Labels[B].clear();
    Labels[B].shrink_to_fit();
    // Merge structure; shared fields unify recursively.
    if (Fields[A].size() < Fields[B].size())
      Fields[A].swap(Fields[B]);
    for (auto &[Tag, Var] : Fields[B]) {
      auto [It, Inserted] = Fields[A].emplace(Tag, Var);
      if (!Inserted)
        Pending.emplace_back(It->second, Var);
    }
    Fields[B].clear();
  }
}

uint32_t UnificationCFA::fieldOf(uint32_t V, uint64_t Tag) {
  uint32_t Root = find(V);
  auto It = Fields[Root].find(Tag);
  if (It != Fields[Root].end())
    return It->second;
  uint32_t Fresh = freshVar();
  Fields[Root].emplace(Tag, Fresh);
  return Fresh;
}

void UnificationCFA::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    uint32_t Self = varOfExpr(Id);
    switch (E->kind()) {
    case ExprKind::Var:
      unite(Self, varOfBinder(cast<VarExpr>(E)->var()));
      break;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      Labels[find(Self)].push_back(L->label().index());
      unite(fieldOf(Self, TagDom), varOfBinder(L->param()));
      unite(fieldOf(Self, TagRan), varOfExpr(L->body()));
      break;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      unite(fieldOf(varOfExpr(A->fn()), TagDom), varOfExpr(A->arg()));
      unite(fieldOf(varOfExpr(A->fn()), TagRan), Self);
      break;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      unite(varOfBinder(L->var()), varOfExpr(L->init()));
      unite(Self, varOfExpr(L->body()));
      break;
    }
    case ExprKind::LetRecN: {
      const auto *L = cast<LetRecNExpr>(E);
      for (const LetRecNExpr::Binding &B : L->bindings())
        unite(varOfBinder(B.Var), varOfExpr(B.Init));
      unite(Self, varOfExpr(L->body()));
      break;
    }
    case ExprKind::Lit:
      break;
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      unite(Self, varOfExpr(I->thenExpr()));
      unite(Self, varOfExpr(I->elseExpr()));
      break;
    }
    case ExprKind::Tuple: {
      const auto *T = cast<TupleExpr>(E);
      for (uint32_t I = 0; I != T->elems().size(); ++I)
        unite(fieldOf(Self, tupleTag(I)), varOfExpr(T->elems()[I]));
      break;
    }
    case ExprKind::Proj: {
      const auto *P = cast<ProjExpr>(E);
      unite(Self, fieldOf(varOfExpr(P->tuple()), tupleTag(P->index())));
      break;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      for (uint32_t I = 0; I != C->args().size(); ++I)
        unite(fieldOf(Self, conTag(C->con(), I)), varOfExpr(C->args()[I]));
      break;
    }
    case ExprKind::Case: {
      const auto *C = cast<CaseExpr>(E);
      uint32_t Scrut = varOfExpr(C->scrutinee());
      for (const CaseArm &Arm : C->arms()) {
        for (uint32_t I = 0; I != Arm.Binders.size(); ++I)
          unite(varOfBinder(Arm.Binders[I]),
                fieldOf(Scrut, conTag(Arm.Con, I)));
        unite(Self, varOfExpr(Arm.Body));
      }
      break;
    }
    case ExprKind::Prim: {
      const auto *P = cast<PrimExpr>(E);
      switch (P->op()) {
      case PrimOp::RefNew:
        unite(fieldOf(Self, TagRefCell), varOfExpr(P->args()[0]));
        break;
      case PrimOp::RefGet:
        unite(Self, fieldOf(varOfExpr(P->args()[0]), TagRefCell));
        break;
      case PrimOp::RefSet:
        unite(fieldOf(varOfExpr(P->args()[0]), TagRefCell),
              varOfExpr(P->args()[1]));
        break;
      default:
        break;
      }
      break;
    }
    }
    processPending();
  });
}

DenseBitset UnificationCFA::labelSet(ExprId E) const {
  assert(HasRun && "query before run()");
  // find() is logically const (path compression only).
  uint32_t Root = const_cast<UnificationCFA *>(this)->find(varOfExpr(E));
  DenseBitset Out(M.numLabels());
  for (uint32_t L : Labels[Root])
    Out.insert(L);
  return Out;
}

DenseBitset UnificationCFA::labelSetOfVar(VarId V) const {
  assert(HasRun && "query before run()");
  uint32_t Root = const_cast<UnificationCFA *>(this)->find(varOfBinder(V));
  DenseBitset Out(M.numLabels());
  for (uint32_t L : Labels[Root])
    Out.insert(L);
  return Out;
}

uint32_t UnificationCFA::numClasses() const {
  auto *Self = const_cast<UnificationCFA *>(this);
  uint32_t Count = 0;
  for (uint32_t I = 0; I != Parent.size(); ++I)
    if (Self->find(I) == I)
      ++Count;
  return Count;
}
