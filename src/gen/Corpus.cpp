//===-- gen/Corpus.cpp - Realistic benchmark programs ---------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"

#include <cassert>

using namespace stcfa;

std::string stcfa::lifeProgram() {
  // Conway's Game of Life over a list of live cells.  The higher-order
  // list library (filter/map/fold/exists) creates exactly the join-point
  // flows the paper's Section 2 discusses.
  return R"PROG(
-- life: Conway's Game of Life on a sparse list of live cells.
data CellList = CNil | CCons((Int, Int), CellList);
data BoolFns = BNil | BCons((Int, Int) -> Bool, BoolFns);

letrec length = fn cs =>
  case cs of CNil => 0 | CCons(c, r) => 1 + length r end;

letrec append = fn xs => fn ys =>
  case xs of CNil => ys | CCons(c, r) => CCons(c, append r ys) end;

let sameCell = fn a => fn b =>
  if #1 a == #1 b then #2 a == #2 b else false;

letrec member = fn cs => fn p =>
  case cs of
    CNil => false
  | CCons(c, r) => if sameCell c p then true else member r p
  end;

letrec filter = fn pred => fn cs =>
  case cs of
    CNil => CNil
  | CCons(c, r) =>
      if pred c then CCons(c, filter pred r) else filter pred r
  end;

letrec mapCells = fn f => fn cs =>
  case cs of CNil => CNil | CCons(c, r) => CCons(f c, mapCells f r) end;

letrec fold = fn f => fn acc => fn cs =>
  case cs of CNil => acc | CCons(c, r) => fold f (f acc c) r end;

letrec exists = fn pred => fn cs =>
  case cs of
    CNil => false
  | CCons(c, r) => if pred c then true else exists pred r
  end;

letrec dedup = fn cs =>
  case cs of
    CNil => CNil
  | CCons(c, r) => if member r c then dedup r else CCons(c, dedup r)
  end;

letrec concatMap = fn f => fn cs =>
  case cs of
    CNil => CNil
  | CCons(c, r) => append (f c) (concatMap f r)
  end;

-- The eight neighbours of a cell.
let neighbours = fn c =>
  let x = #1 c in
  let y = #2 c in
  CCons((x - 1, y - 1), CCons((x - 1, y), CCons((x - 1, y + 1),
  CCons((x, y - 1), CCons((x, y + 1),
  CCons((x + 1, y - 1), CCons((x + 1, y), CCons((x + 1, y + 1),
  CNil))))))));

let liveNeighbours = fn board => fn c =>
  length (filter (fn n => member board n) (neighbours c));

let survives = fn board => fn c =>
  let n = liveNeighbours board c in
  if n == 2 then true else n == 3;

let isBorn = fn board => fn c =>
  if member board c then false else liveNeighbours board c == 3;

-- A small pipeline of predicates dispatched through a function list, so
-- that predicate flow has several call sites (a deliberate join point).
let anyPred = fn preds => fn c =>
  letrec go = fn ps =>
    case ps of
      BNil => false
    | BCons(p, rest) => if p c then true else go rest
    end
  in go preds;

let nextGeneration = fn board =>
  let keep = filter (survives board) board in
  let candidates = dedup (concatMap neighbours board) in
  let births = filter (isBorn board) candidates in
  append keep births;

letrec iterate = fn n => fn f => fn x =>
  if n == 0 then x else iterate (n - 1) f (f x);

-- Board statistics used by the reporting pipeline.
let maxInt = fn a => fn b => if a < b then b else a;
let minInt = fn a => fn b => if a < b then a else b;

let boundingBox = fn board =>
  let xs = fn pick => fn combine => fn start =>
    fold (fn acc => fn c => combine acc (pick c)) start board in
  let maxX = xs (fn c => #1 c) maxInt (0 - 1000) in
  let minX = xs (fn c => #1 c) minInt 1000 in
  let maxY = xs (fn c => #2 c) maxInt (0 - 1000) in
  let minY = xs (fn c => #2 c) minInt 1000 in
  ((minX, minY), (maxX, maxY));

let boxArea = fn box =>
  let w = #1 (#2 box) - #1 (#1 box) + 1 in
  let h = #2 (#2 box) - #2 (#1 box) + 1 in
  w * h;

let density = fn board =>
  let area = boxArea (boundingBox board) in
  if area == 0 then 0 else (length board * 100) / area;

-- The classic glider.
let glider =
  CCons((1, 2), CCons((2, 3), CCons((3, 1), CCons((3, 2),
  CCons((3, 3), CNil)))));

let finalBoard = iterate 4 nextGeneration glider;

-- Reporting: walk the final board, printing each cell.
letrec show = fn cs =>
  case cs of
    CNil => print "done"
  | CCons(c, r) => #2 (print "cell", show r)
  end;

let checkers = BCons(fn c => #1 c == #2 c,
               BCons(fn c => member glider c, BNil));
let interesting = filter (anyPred checkers) finalBoard;

#2 (show interesting, length finalBoard + density finalBoard)
)PROG";
}

std::string stcfa::miniEvalProgram() {
  // A small interpreter written in the analysed language.  Environments
  // are represented as functions Int -> Int, so `lookup` and `extend`
  // thread every binding through higher-order joins.
  return R"PROG(
-- minieval: an arithmetic-expression interpreter with function
-- environments.
data AExpr = Num(Int)
          | Var(Int)
          | Add(AExpr, AExpr)
          | Mul(AExpr, AExpr)
          | Neg(AExpr)
          | Let(Int, AExpr, AExpr);

-- The empty environment maps every variable to 0.
let emptyEnv = fn v => 0;

-- extend env x n: a new environment, as a closure over the old one.
let extend = fn env => fn x => fn n =>
  fn v => if v == x then n else env v;

letrec eval = fn env => fn e =>
  case e of
    Num(n) => n
  | Var(v) => env v
  | Add(a, b) => eval env a + eval env b
  | Mul(a, b) => eval env a * eval env b
  | Neg(a) => 0 - eval env a
  | Let(x, rhs, body) => eval (extend env x (eval env rhs)) body
  end;

-- A tiny constant folder: rebuilds the expression, folding Add/Mul of
-- literals.  Exercises constructor flow in both directions.
letrec fold = fn e =>
  case e of
    Num(n) => Num(n)
  | Var(v) => Var(v)
  | Add(a, b) =>
      (let fa = fold a in
       let fb = fold b in
       case fa of
         Num(x) => (case fb of Num(y) => Num(x + y)
                    | Var(v) => Add(fa, fb)
                    | Add(p, q) => Add(fa, fb)
                    | Mul(p, q) => Add(fa, fb)
                    | Neg(p) => Add(fa, fb)
                    | Let(v, p, q) => Add(fa, fb) end)
       | Var(v) => Add(fa, fb)
       | Add(p, q) => Add(fa, fb)
       | Mul(p, q) => Add(fa, fb)
       | Neg(p) => Add(fa, fb)
       | Let(v, p, q) => Add(fa, fb)
       end)
  | Mul(a, b) => Mul(fold a, fold b)
  | Neg(a) => Neg(fold a)
  | Let(x, rhs, body) => Let(x, fold rhs, fold body)
  end;

-- (1 + 2) * (let x0 = 5 in x0 + -3)
let program =
  Mul(Add(Num(1), Num(2)),
      Let(0, Num(5), Add(Var(0), Neg(Num(3)))));

let folded = fold program;
eval emptyEnv folded + eval emptyEnv program
)PROG";
}

std::string stcfa::parserComboProgram() {
  // Parsers are functions CharList -> Result; combinators compose them.
  return R"PROG(
-- parsecombo: a combinator-based recogniser.
data CharList = CNil | CCons(Int, CharList);
data Result = Fail | Ok(CharList);

-- Primitive parsers -------------------------------------------------------
let empty = fn input => Ok(input);

let charIs = fn c =>
  fn input =>
    case input of
      CNil => Fail
    | CCons(h, rest) => if h == c then Ok(rest) else Fail
    end;

let digit = fn input =>
  case input of
    CNil => Fail
  | CCons(h, rest) => if 0 <= h then (if h <= 9 then Ok(rest) else Fail)
                      else Fail
  end;

-- Combinators: each takes and returns parsers ------------------------------
let seq = fn p => fn q =>
  fn input =>
    case p input of
      Fail => Fail
    | Ok(rest) => q rest
    end;

let alt = fn p => fn q =>
  fn input =>
    case p input of
      Fail => q input
    | Ok(rest) => Ok(rest)
    end;

-- Bounded repetition (structural recursion keeps it total).
letrec manyUpTo = fn n => fn p =>
  fn input =>
    if n == 0 then Ok(input)
    else case p input of
           Fail => Ok(input)
         | Ok(rest) => (manyUpTo (n - 1) p) rest
         end;

let opt = fn p => alt p empty;

-- The grammar:  number := digit digit*      (up to 8 digits)
--               term   := number ('*' number)?
--               expr   := term ('+' term)?
let number = seq digit (manyUpTo 8 digit);
let star = charIs 42;
let plus = charIs 43;
let term = seq number (opt (seq star number));
let expr = seq term (opt (seq plus term));

letrec fromList = fn l =>
  case l of CNil => CNil | CCons(h, t) => CCons(h, fromList t) end;

-- "1*2+3" with '*' = 42, '+' = 43.
let input = CCons(1, CCons(42, CCons(2, CCons(43, CCons(3, CNil)))));

let accepted = fn r => case r of Fail => 0 | Ok(rest) =>
  (case rest of CNil => 1 | CCons(h, t) => 0 end) end;

accepted (expr (fromList input)) + accepted (expr CNil)
)PROG";
}

std::string stcfa::makeLexgenLike(int States) {
  assert(States >= 2 && "need at least two states");
  std::string Out;
  Out += "-- lexgen: a generated table-driven lexer (" +
         std::to_string(States) + " states).\n";
  Out += "data CharList = ChNil | ChCons(Int, CharList);\n";
  Out += "data TokList = TkNil | TkCons(Int, TokList);\n";
  Out += "data ActList = ANil | ACons(Int -> Int, ActList);\n";
  Out += "\n";
  Out += "letrec tokCount = fn ts =>\n"
         "  case ts of TkNil => 0 | TkCons(t, r) => 1 + tokCount r end;\n";
  Out += "letrec chAppend = fn xs => fn ys =>\n"
         "  case xs of ChNil => ys | ChCons(c, r) => ChCons(c, chAppend r "
         "ys) end;\n";
  Out += "letrec mapTok = fn f => fn ts =>\n"
         "  case ts of TkNil => TkNil | TkCons(t, r) => TkCons(f t, mapTok "
         "f r) end;\n";
  Out += "let compose = fn f => fn g => fn x => f (g x);\n";
  Out += "let twice = fn f => compose f f;\n";
  Out += "\n";

  // One semantic action per state; every third is built by composition so
  // the action table mixes first-order and derived functions.
  for (int I = 0; I != States; ++I) {
    std::string S = std::to_string(I);
    if (I >= 2 && I % 3 == 0)
      Out += "let act" + S + " = compose act" + std::to_string(I - 1) +
             " act" + std::to_string(I - 2) + ";\n";
    else if (I >= 1 && I % 3 == 1)
      Out += "let act" + S + " = twice act" + std::to_string(I - 1) + ";\n";
    else
      Out += "let act" + S + " = fn len => len * " + std::to_string(I + 2) +
             " + " + S + ";\n";
  }
  Out += "\n";

  // The action table as a list of functions, plus table lookup — the
  // dispatch join point of any table-driven lexer.
  Out += "let actions =\n";
  for (int I = 0; I != States; ++I)
    Out += "  ACons(act" + std::to_string(I) + ",\n";
  Out += "  ANil";
  Out.append(static_cast<size_t>(States), ')');
  Out += ";\n";
  Out += "letrec selectAct = fn acts => fn n =>\n"
         "  case acts of\n"
         "    ANil => (fn len => 0 - 1)\n"
         "  | ACons(f, rest) => if n == 0 then f else selectAct rest (n - "
         "1)\n"
         "  end;\n";
  Out += "\n";

  // The transition automaton: one function per state, all mutually
  // recursive (like real generated lexers).  Each state tests the input
  // class and either shifts to a neighbour state or emits a token via its
  // action.
  for (int I = 0; I != States; ++I) {
    std::string S = std::to_string(I);
    std::string Shift1 = std::to_string((I + 1) % States);
    std::string Shift2 = std::to_string((I * 7 + 3) % States);
    Out += I == 0 ? "letrec " : "and ";
    Out += "st" + S + " = fn input => fn acc =>\n";
    Out += "  case input of\n";
    Out += "    ChNil => acc\n";
    Out += "  | ChCons(c, rest) =>\n";
    Out += "      if c < 4 then st" + Shift1 + " rest acc\n";
    Out += "      else if c < 8 then st" + Shift2 + " rest acc\n";
    Out += "      else st0 rest (TkCons((selectAct actions " + S +
           ") c, acc))\n";
    Out += "  end\n";
  }
  Out += ";\n";
  // The state table itself is first-class, so state lookup is one more
  // higher-order dispatch point.
  Out += "data StList = SNil | SCons(CharList -> TokList -> TokList, "
         "StList);\n";
  Out += "let states =\n";
  for (int I = 0; I != States; ++I)
    Out += "  SCons(st" + std::to_string(I) + ",\n";
  Out += "  SNil";
  Out.append(static_cast<size_t>(States), ')');
  Out += ";\n";
  Out += "letrec selectState = fn n =>\n"
         "  (letrec go = fn sts => fn k =>\n"
         "     case sts of\n"
         "       SNil => st0\n"
         "     | SCons(s, rest) => if k == 0 then s else go rest (k - 1)\n"
         "     end\n"
         "   in go states n);\n";
  Out += "let run = fn state => fn input => fn acc =>\n"
         "  (selectState state) input acc;\n";
  Out += "\n";

  // Deterministic pseudo-input.
  Out += "letrec mkInput = fn n =>\n"
         "  if n == 0 then ChNil\n"
         "  else ChCons(n - (n / 11) * 11, mkInput (n - 1));\n";
  Out += "let tokens = run 0 (mkInput 50) TkNil;\n";
  Out += "let renumbered = mapTok (selectAct actions 1) tokens;\n";
  Out += "tokCount renumbered + tokCount tokens\n";
  return Out;
}
