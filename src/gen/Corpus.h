//===-- gen/Corpus.h - Realistic benchmark programs -------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-ins for the paper's Table 2 SML benchmarks (see DESIGN.md §5):
///
///   * `lifeProgram()` — Conway's Game of Life over cell lists (~150 lines,
///     like the SML benchmark suite's `life`), heavy on the higher-order
///     list library (map/filter/fold as join points);
///   * `makeLexgenLike(States)` — a table-driven lexer whose actions are
///     dispatched through a list of functions; at the default scale it
///     matches `lexgen`'s ~1180 lines.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_GEN_CORPUS_H
#define STCFA_GEN_CORPUS_H

#include <string>

namespace stcfa {

/// The life-like benchmark (~150 lines of surface syntax).
std::string lifeProgram();

/// A generated table-driven lexer with \p States mutually recursive state
/// functions; 95 states yields roughly the 1180 lines of the paper's
/// `lexgen`.
std::string makeLexgenLike(int States = 95);

/// An interpreter for arithmetic expressions written *in* the analysed
/// language (~90 lines): environments are functions, so variable lookup
/// routes every binding through one higher-order join point.
std::string miniEvalProgram();

/// A parser-combinator recogniser (~100 lines): parsers are first-class
/// functions built with `seq`/`alt`/`many` combinators — the densest
/// higher-order flow in the corpus.
std::string parserComboProgram();

} // namespace stcfa

#endif // STCFA_GEN_CORPUS_H
