//===-- gen/Generators.h - Benchmark program generators ---------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level workload generators standing in for the paper's SML
/// benchmark corpus (see DESIGN.md §5):
///
///   * `makeCubicFamily(n)` — the Section 10 parameterized benchmark that
///     exhibits the standard algorithm's cubic behaviour,
///   * `makeJoinPointFamily(n)` — the Section 2 introduction fragment
///     (one function applied from n call sites),
///   * `makeEffectsFamily(n)` — call chains with a side-effecting core,
///     for the Section 8 effects-analysis experiment,
///   * `makeCalledOnceFamily(n)` — a mix of single-call and multi-call
///     functions for the called-once experiment,
///   * `makeRandomProgram(opts)` — seeded, typed-by-construction random
///     programs over a bounded-type value pool, used by the equivalence
///     property tests and the scaling benches.
///
/// All generators emit surface syntax; parse with `parseProgram`.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_GEN_GENERATORS_H
#define STCFA_GEN_GENERATORS_H

#include <cstdint>
#include <string>

namespace stcfa {

/// The paper's parameterized cubic benchmark (Section 10): `fs`/`bs` plus
/// \p N renamed copies of the `f i`/`b i`/`x i`/`y i` block.
std::string makeCubicFamily(int N);

/// One identity function applied from \p N call sites, returning through a
/// shared join point (the Section 2 introduction example).
std::string makeJoinPointFamily(int N);

/// A chain of \p N wrapper functions over one printing core, plus \p N
/// pure functions; exactly the wrappers and the core are side-effecting.
std::string makeEffectsFamily(int N);

/// \p N functions called exactly once plus \p N functions shared by two
/// call sites (for called-once analysis: the first group qualifies).
std::string makeCalledOnceFamily(int N);

/// A dispatch chain: `d_i` can be any of `g_0..g_i`, and every `d_i` is
/// called.  Call site `d_i x` therefore has `i+1` possible callees — the
/// workload where k-limited annotations pay off and the full label-set
/// representation costs Θ(n²).
std::string makeDispatchFamily(int N);

/// Options for the random generator.  All programs are well-typed with
/// types drawn from a fixed bounded template (order <= 2).
struct RandomProgramOptions {
  uint64_t Seed = 1;
  /// Number of top-level bindings.
  int NumBindings = 40;
  bool UseTuples = true;
  bool UseDatatypes = true;
  bool UseIf = true;
  /// Mutable cells holding functions (makes the graph analysis inexact but
  /// still sound; see DESIGN.md).
  bool UseRefs = false;
  /// Sprinkle `print` into some function bodies.
  bool UseEffects = false;
};

/// Generates a random program per \p Opts; deterministic in `Opts.Seed`.
std::string makeRandomProgram(const RandomProgramOptions &Opts);

} // namespace stcfa

#endif // STCFA_GEN_GENERATORS_H
