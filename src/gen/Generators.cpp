//===-- gen/Generators.cpp - Benchmark program generators -----------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "gen/Generators.h"

#include <cassert>
#include <vector>

using namespace stcfa;

std::string stcfa::makeCubicFamily(int N) {
  assert(N >= 1 && "family size must be positive");
  // The paper (Section 10):
  //   fun fs x = x            fun bs x = x
  //   fun fi x = x            fun bi x = x
  //   val xi = bi(fs fi)      val yi = (bs bi) fi
  // The `fs`/`bs` parameters join the flows of all copies, which is what
  // drives the standard algorithm superlinear.
  std::string Out;
  Out += "let fs = fn x => x;\n";
  Out += "let bs = fn x => x;\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I);
    Out += "let f" + S + " = fn x => x;\n";
    Out += "let b" + S + " = fn x => x;\n";
    Out += "let x" + S + " = b" + S + " (fs f" + S + ");\n";
    Out += "let y" + S + " = (bs b" + S + ") f" + S + ";\n";
  }
  Out += "y" + std::to_string(N) + "\n";
  return Out;
}

std::string stcfa::makeJoinPointFamily(int N) {
  assert(N >= 1 && "family size must be positive");
  // fun f x = x  applied from n sites; x acts as a join point combining
  // information from all of them (Section 2's motivating fragment).
  std::string Out = "let f = fn x => x;\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I);
    Out += "let g" + S + " = fn u" + S + " => u" + S + ";\n";
    Out += "let r" + S + " = f g" + S + ";\n";
  }
  Out += "r" + std::to_string(N) + "\n";
  return Out;
}

std::string stcfa::makeEffectsFamily(int N) {
  assert(N >= 1 && "family size must be positive");
  std::string Out;
  // The effectful core and a chain of wrappers around it; every wi is
  // (transitively) side-effecting.
  Out += "let w0 = fn x => #2 (print \"effect\", x);\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I), P = std::to_string(I - 1);
    Out += "let w" + S + " = fn x => w" + P + " x;\n";
  }
  // Pure functions of the same shape.
  Out += "let p0 = fn x => x;\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I), P = std::to_string(I - 1);
    Out += "let p" + S + " = fn x => p" + P + " x;\n";
  }
  std::string S = std::to_string(N);
  Out += "w" + S + " 1 + p" + S + " 2\n";
  return Out;
}

std::string stcfa::makeCalledOnceFamily(int N) {
  assert(N >= 1 && "family size must be positive");
  std::string Out;
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I);
    // `once_i` has exactly one call site; `twice_i` has two; `shared_i`
    // flows to one call site but through a join variable.
    Out += "let once" + S + " = fn x => x + " + S + ";\n";
    Out += "let twice" + S + " = fn x => x * " + S + ";\n";
    Out += "let a" + S + " = once" + S + " 1;\n";
    Out += "let b" + S + " = twice" + S + " 2;\n";
    Out += "let c" + S + " = twice" + S + " 3;\n";
  }
  Out += "a1 + b1 + c1\n";
  return Out;
}

std::string stcfa::makeDispatchFamily(int N) {
  assert(N >= 1 && "family size must be positive");
  std::string Out = "let g0 = fn x => x;\n"
                    "let d0 = g0;\n"
                    "let c0 = d0 0;\n";
  for (int I = 1; I <= N; ++I) {
    std::string S = std::to_string(I), P = std::to_string(I - 1);
    Out += "let g" + S + " = fn x => x + " + S + ";\n";
    Out += "let d" + S + " = if c" + P + " < " + S + " then d" + P +
           " else g" + S + ";\n";
    Out += "let c" + S + " = d" + S + " " + S + ";\n";
  }
  Out += "c" + std::to_string(N) + "\n";
  return Out;
}

namespace {

/// Deterministic xorshift generator (no std::random: reproducibility
/// across standard library implementations matters for the tests).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform in [0, Bound).
  uint32_t below(uint32_t Bound) {
    assert(Bound > 0);
    return static_cast<uint32_t>(next() % Bound);
  }

  bool flip() { return next() & 1; }

private:
  uint64_t State;
};

/// Emits one random binding per step, maintaining pools of names grouped
/// by type so every reference is well-typed.
class RandomProgramBuilder {
public:
  explicit RandomProgramBuilder(const RandomProgramOptions &Opts)
      : Opts(Opts), R(Opts.Seed) {}

  std::string run() {
    std::string Out;
    if (Opts.UseDatatypes)
      Out += "data GFunList = GNil | GCons(Int -> Int, GFunList);\n";
    // Seed pools so choices are always possible.
    Out += "let a0 = fn x => x;\n";
    Out += "let a1 = fn x => x + 1;\n";
    FnPool = {"a0", "a1"};
    Out += "let h0 = fn f => fn x => f x;\n";
    HofPool = {"h0"};
    if (Opts.UseDatatypes) {
      Out += "let l0 = GCons(a0, GNil);\n";
      ListPool = {"l0"};
    }

    for (int I = 0; I != Opts.NumBindings; ++I)
      Out += emitBinding();

    // The body forces a little evaluation of everything interesting.
    Out += pickFn() + " 1 + " + pickFn() + " 2 + (" + pickHof() + " " +
           pickFn() + ") 3\n";
    return Out;
  }

private:
  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(NextId++);
  }

  const std::string &pickFn() { return FnPool[R.below(FnPool.size())]; }
  const std::string &pickHof() { return HofPool[R.below(HofPool.size())]; }
  const std::string &pickList() { return ListPool[R.below(ListPool.size())]; }

  std::string emitBinding() {
    enum Choice {
      NewFn,
      Compose,
      NewHof,
      ApplyHof,
      IfJoin,
      TupleProj,
      ListConsCase,
      RefCell,
      MutualPair,
      EffectfulFn,
      NumChoices
    };
    while (true) {
      Choice C = static_cast<Choice>(R.below(NumChoices));
      switch (C) {
      case NewFn: {
        std::string N = fresh("a");
        std::string Body = R.flip() ? "x" : ("x + " + std::to_string(R.below(9)));
        std::string Out = "let " + N + " = fn x => " + Body + ";\n";
        FnPool.push_back(N);
        return Out;
      }
      case Compose: {
        std::string N = fresh("a");
        std::string Out = "let " + N + " = fn x => " + pickFn() + " (" +
                          pickFn() + " x);\n";
        FnPool.push_back(N);
        return Out;
      }
      case NewHof: {
        std::string N = fresh("h");
        std::string Out;
        if (R.flip())
          Out = "let " + N + " = fn f => fn x => f (f x);\n";
        else
          Out = "let " + N + " = fn f => fn x => " + pickFn() + " (f x);\n";
        HofPool.push_back(N);
        return Out;
      }
      case ApplyHof: {
        std::string N = fresh("a");
        std::string Out =
            "let " + N + " = " + pickHof() + " " + pickFn() + ";\n";
        FnPool.push_back(N);
        return Out;
      }
      case IfJoin: {
        if (!Opts.UseIf)
          continue;
        std::string N = fresh("a");
        std::string Out = "let " + N + " = if " +
                          std::to_string(R.below(9)) + " < " +
                          std::to_string(R.below(9)) + " then " + pickFn() +
                          " else " + pickFn() + ";\n";
        FnPool.push_back(N);
        return Out;
      }
      case TupleProj: {
        if (!Opts.UseTuples)
          continue;
        std::string T = fresh("t");
        std::string N = fresh("a");
        std::string Out = "let " + T + " = (" + pickFn() + ", " + pickFn() +
                          ");\n";
        Out += "let " + N + " = #" + (R.flip() ? "1" : "2") + " " + T +
               ";\n";
        FnPool.push_back(N);
        return Out;
      }
      case ListConsCase: {
        if (!Opts.UseDatatypes)
          continue;
        std::string L = fresh("l");
        std::string N = fresh("a");
        std::string Out = "let " + L + " = GCons(" + pickFn() + ", " +
                          pickList() + ");\n";
        Out += "let " + N + " = case " + L + " of GNil => " + pickFn() +
               " | GCons(hd, tl) => hd end;\n";
        ListPool.push_back(L);
        FnPool.push_back(N);
        return Out;
      }
      case RefCell: {
        if (!Opts.UseRefs)
          continue;
        std::string C2 = fresh("r");
        std::string N = fresh("a");
        std::string Out = "let " + C2 + " = ref " + pickFn() + ";\n";
        if (R.flip())
          Out += "let u" + C2 + " = " + C2 + " := " + pickFn() + ";\n";
        Out += "let " + N + " = !" + C2 + ";\n";
        FnPool.push_back(N);
        return Out;
      }
      case MutualPair: {
        std::string A = fresh("m");
        std::string B2 = fresh("m");
        std::string Out = "letrec " + A + " = fn n => if n < 1 then " +
                          pickFn() + " n else " + B2 + " (n - 1)\n" +
                          "and " + B2 + " = fn n => " + A + " (n - 1);\n";
        FnPool.push_back(A);
        FnPool.push_back(B2);
        return Out;
      }
      case EffectfulFn: {
        if (!Opts.UseEffects)
          continue;
        std::string N = fresh("a");
        std::string Out = "let " + N + " = fn x => #2 (print \"e\", " +
                          pickFn() + " x);\n";
        FnPool.push_back(N);
        return Out;
      }
      case NumChoices:
        break;
      }
    }
  }

  RandomProgramOptions Opts;
  Rng R;
  int NextId = 2;
  std::vector<std::string> FnPool;   // Int -> Int
  std::vector<std::string> HofPool;  // (Int -> Int) -> Int -> Int
  std::vector<std::string> ListPool; // GFunList
};

} // namespace

std::string stcfa::makeRandomProgram(const RandomProgramOptions &Opts) {
  RandomProgramBuilder B(Opts);
  return B.run();
}
