//===-- lint/LintEngine.cpp - Governed lint pass manager ------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>

using namespace stcfa;

LintEngine::LintEngine(const SubtransitiveGraph &G, const FrozenGraph &F)
    : G(&G), M(G.module()), F(F) {
  assert((!F.hasSource() || &F.source() == &G) &&
         "snapshot must freeze this graph");
}

LintEngine::LintEngine(const Module &M, const FrozenGraph &F)
    : G(nullptr), M(M), F(F) {
  assert(M.numExprs() == F.numExprs() && "module/snapshot shape mismatch");
}

LintResult LintEngine::run(const LintOptions &Opts) {
  Span RunSpan("lint.run");
  static Counter &Runs = counter("lint.runs");
  static Counter &TotalFindings = counter("lint.findings");
  static Counter &PartialPasses = counter("lint.partial_passes");
  static Histogram &PassMillis =
      histogram("lint.pass_millis", latencyBucketsMillis());
  Runs.inc();

  // Selection in registry order keeps report order deterministic however
  // the pool interleaves execution.
  std::vector<const LintPassInfo *> Selected;
  for (const LintPassInfo &P : passes()) {
    if (Opts.Passes.empty()) {
      Selected.push_back(&P);
      continue;
    }
    for (const std::string &Id : Opts.Passes)
      if (Id == P.Id) {
        Selected.push_back(&P);
        break;
      }
  }

  LintResult Result;
  Result.Reports.resize(Selected.size());
  if (Selected.empty())
    return Result;

  LintContext Ctx(G, M, F, Opts.D, Opts.Token);
  unsigned Width = Opts.Threads ? Opts.Threads : 1;
  if (Width > Selected.size())
    Width = static_cast<unsigned>(Selected.size());
  ThreadPool Pool(Width);
  Pool.parallelFor(Selected.size(), [&](unsigned, size_t I) {
    const LintPassInfo *Info = Selected[I];
    Span PassSpan(Info->SpanName);
    Timer T;
    LintPassReport &R = Result.Reports[I];
    R.Info = Info;
    R.PassStatus = Info->Run(Ctx, R.Findings);
    R.Partial = !R.PassStatus.isOk();
    R.Millis = T.millis();
    PassSpan.arg("findings", R.Findings.size());
    PassSpan.arg("partial", R.Partial ? 1 : 0);
    if (R.Partial)
      PassSpan.arg("cause", statusCodeName(R.PassStatus.code()));
    counter(std::string("lint.") + Info->Id + ".findings")
        .add(R.Findings.size());
    TotalFindings.add(R.Findings.size());
    if (R.Partial)
      PartialPasses.inc();
    PassMillis.observe(static_cast<uint64_t>(R.Millis));
  });

  for (const LintPassReport &R : Result.Reports)
    for (const LintDiagnostic &Diag : R.Findings)
      switch (Diag.Severity) {
      case LintSeverity::Error:
        ++Result.NumErrors;
        break;
      case LintSeverity::Warning:
        ++Result.NumWarnings;
        break;
      case LintSeverity::Note:
        ++Result.NumNotes;
        break;
      }
  RunSpan.arg("passes", Result.Reports.size());
  RunSpan.arg("errors", Result.NumErrors);
  RunSpan.arg("warnings", Result.NumWarnings);
  return Result;
}
