//===-- lint/LintDiagnostic.h - Structured lint findings --------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured finding record shared by every checker pass and by the
/// text/JSON/SARIF renderers.  A finding carries the rule id of the pass
/// that produced it, a severity, the primary source span, a message, and
/// an optional chain of notes pointing at related program points (the
/// only call site, the value that makes a call go wrong, ...).
///
/// Severities map onto SARIF 2.1.0 `level` values one-to-one; the driver
/// exit code is decided by the highest severity present (see
/// docs/LINT.md).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_LINT_LINTDIAGNOSTIC_H
#define STCFA_LINT_LINTDIAGNOSTIC_H

#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace stcfa {

/// Severity of a lint finding, ordered from least to most severe.
enum class LintSeverity : uint8_t { Note, Warning, Error };

/// SARIF/`--lint-format=text` spelling: "note", "warning", "error".
inline const char *lintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "note";
}

/// A secondary location attached to a finding ("the only call site is
/// here").  Renders as a SARIF `relatedLocation`.
struct LintNote {
  SourceRange Range;
  std::string Message;
};

/// One finding produced by a checker pass.
struct LintDiagnostic {
  /// The rule id (equal to the pass id, e.g. "dead-function").
  std::string RuleId;
  LintSeverity Severity = LintSeverity::Warning;
  /// Primary span; may be degenerate (point only) or invalid for
  /// programmatically built ASTs.
  SourceRange Range;
  std::string Message;
  std::vector<LintNote> Notes;
};

} // namespace stcfa

#endif // STCFA_LINT_LINTDIAGNOSTIC_H
