//===-- lint/Render.h - Text/JSON/SARIF diagnostic renderers ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialises a `LintResult` for human and machine consumers:
///
///  * text  — `file:line:col-line:col: severity: message [rule]` lines
///            with indented notes, then a one-line summary;
///  * json  — the project's own stable shape (per-pass reports with
///            status/partial/millis plus a severity summary);
///  * sarif — a minimal but valid SARIF 2.1.0 log: one run, one rule per
///            registered pass, one result per finding, notes as
///            `relatedLocations`, partial-pass ids under
///            `invocations[0].properties.partialPasses`.
///
/// Columns follow the repo-wide convention (support/Diagnostics.h): both
/// line and column are 1-based and `End` is exclusive, which is exactly
/// SARIF's `endColumn` semantics, so spans pass through untranslated.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_LINT_RENDER_H
#define STCFA_LINT_RENDER_H

#include "lint/LintEngine.h"

#include <string>
#include <string_view>

namespace stcfa {

/// Human-readable rendering; \p InputName prefixes every location.
std::string renderLintText(const LintResult &R, std::string_view InputName);

/// The project JSON shape (docs/LINT.md).
std::string renderLintJson(const LintResult &R, std::string_view InputName);

/// SARIF 2.1.0.  \p InputName becomes the artifact URI.
std::string renderLintSarif(const LintResult &R, std::string_view InputName);

} // namespace stcfa

#endif // STCFA_LINT_RENDER_H
