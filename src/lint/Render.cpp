//===-- lint/Render.cpp - Text/JSON/SARIF diagnostic renderers ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Render.h"

using namespace stcfa;

namespace {

void jsonEscape(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xf];
        Out += Hex[C & 0xf];
      } else {
        Out += C;
      }
    }
  }
}

std::string quoted(std::string_view S) {
  std::string Out = "\"";
  jsonEscape(Out, S);
  Out += "\"";
  return Out;
}

std::string locText(std::string_view InputName, SourceRange R) {
  std::string Out(InputName);
  if (!R.isValid())
    return Out;
  Out += ":" + std::to_string(R.Begin.Line) + ":" + std::to_string(R.Begin.Col);
  if (R.hasExtent())
    Out += "-" + std::to_string(R.End.Line) + ":" + std::to_string(R.End.Col);
  return Out;
}

/// `"startLine":L,"startColumn":C[,"endLine":L,"endColumn":C]`, or empty
/// when the range is invalid (programmatic AST with no locations).
std::string regionJson(SourceRange R) {
  if (!R.isValid())
    return {};
  std::string Out = "\"startLine\":" + std::to_string(R.Begin.Line) +
                    ",\"startColumn\":" + std::to_string(R.Begin.Col);
  if (R.hasExtent())
    Out += ",\"endLine\":" + std::to_string(R.End.Line) +
           ",\"endColumn\":" + std::to_string(R.End.Col);
  return Out;
}

} // namespace

std::string stcfa::renderLintText(const LintResult &R,
                                  std::string_view InputName) {
  std::string Out;
  for (const LintPassReport &Report : R.Reports) {
    for (const LintDiagnostic &D : Report.Findings) {
      Out += locText(InputName, D.Range) + ": " +
             lintSeverityName(D.Severity) + ": " + D.Message + " [" +
             D.RuleId + "]\n";
      for (const LintNote &N : D.Notes)
        Out += "  note: " + locText(InputName, N.Range) + ": " + N.Message +
               "\n";
    }
  }
  for (const LintPassReport &Report : R.Reports)
    if (Report.Partial)
      Out += std::string(Report.Info->Id) +
             ": partial results (" + Report.PassStatus.toString() + ")\n";
  Out += "lint: " + std::to_string(R.NumErrors) + " error(s), " +
         std::to_string(R.NumWarnings) + " warning(s), " +
         std::to_string(R.NumNotes) + " note(s)\n";
  return Out;
}

std::string stcfa::renderLintJson(const LintResult &R,
                                  std::string_view InputName) {
  std::string Out = "{\n  \"tool\": \"stcfa-lint\",\n  \"input\": " +
                    quoted(InputName) + ",\n  \"passes\": [";
  bool FirstPass = true;
  for (const LintPassReport &Report : R.Reports) {
    Out += FirstPass ? "\n" : ",\n";
    FirstPass = false;
    Out += "    {\"pass\": " + quoted(Report.Info->Id) +
           ", \"status\": " + quoted(statusCodeName(Report.PassStatus.code())) +
           ", \"partial\": " + (Report.Partial ? "true" : "false") +
           ", \"millis\": " + std::to_string(Report.Millis) +
           ", \"findings\": [";
    bool FirstFinding = true;
    for (const LintDiagnostic &D : Report.Findings) {
      Out += FirstFinding ? "\n" : ",\n";
      FirstFinding = false;
      Out += "      {\"rule\": " + quoted(D.RuleId) +
             ", \"severity\": " + quoted(lintSeverityName(D.Severity));
      if (std::string Region = regionJson(D.Range); !Region.empty())
        Out += ", " + Region;
      Out += ", \"message\": " + quoted(D.Message);
      if (!D.Notes.empty()) {
        Out += ", \"notes\": [";
        bool FirstNote = true;
        for (const LintNote &N : D.Notes) {
          Out += FirstNote ? "" : ", ";
          FirstNote = false;
          Out += "{";
          if (std::string Region = regionJson(N.Range); !Region.empty())
            Out += Region + ", ";
          Out += "\"message\": " + quoted(N.Message) + "}";
        }
        Out += "]";
      }
      Out += "}";
    }
    Out += FirstFinding ? "]}" : "\n    ]}";
  }
  Out += FirstPass ? "],\n" : "\n  ],\n";
  Out += "  \"summary\": {\"errors\": " + std::to_string(R.NumErrors) +
         ", \"warnings\": " + std::to_string(R.NumWarnings) +
         ", \"notes\": " + std::to_string(R.NumNotes) + "}\n}\n";
  return Out;
}

std::string stcfa::renderLintSarif(const LintResult &R,
                                   std::string_view InputName) {
  std::string Uri(InputName.empty() ? "stdin" : InputName);

  // Rule table over *all* registered passes so `ruleIndex` is stable no
  // matter which subset ran.
  std::span<const LintPassInfo> All = LintEngine::passes();
  auto ruleIndex = [&](const std::string &Id) {
    for (size_t I = 0; I != All.size(); ++I)
      if (Id == All[I].Id)
        return I;
    return size_t(0);
  };

  std::string Out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"stcfa-lint\",\n"
      "          \"informationUri\": "
      "\"https://doi.org/10.1145/258915.258924\",\n"
      "          \"rules\": [";
  bool First = true;
  for (const LintPassInfo &P : All) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "            {\"id\": " + quoted(P.Id) +
           ", \"shortDescription\": {\"text\": " + quoted(P.Summary) +
           "}, \"defaultConfiguration\": {\"level\": " +
           quoted(lintSeverityName(P.DefaultSeverity)) + "}}";
  }
  Out += "\n          ]\n"
         "        }\n"
         "      },\n"
         "      \"invocations\": [\n"
         "        {\"executionSuccessful\": " +
         std::string(R.anyPartial() ? "false" : "true") +
         ", \"properties\": {\"partialPasses\": [";
  First = true;
  for (const LintPassReport &Report : R.Reports)
    if (Report.Partial) {
      Out += First ? "" : ", ";
      First = false;
      Out += quoted(Report.Info->Id);
    }
  Out += "]}}\n"
         "      ],\n"
         "      \"results\": [";
  First = true;
  for (const LintPassReport &Report : R.Reports) {
    for (const LintDiagnostic &D : Report.Findings) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += "        {\"ruleId\": " + quoted(D.RuleId) +
             ", \"ruleIndex\": " + std::to_string(ruleIndex(D.RuleId)) +
             ", \"level\": " + quoted(lintSeverityName(D.Severity)) +
             ", \"message\": {\"text\": " + quoted(D.Message) + "}";
      if (D.Range.isValid()) {
        Out += ", \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": " +
               quoted(Uri) + "}, \"region\": {" + regionJson(D.Range) + "}}}]";
      }
      bool AnyNote = false;
      for (const LintNote &N : D.Notes)
        AnyNote |= N.Range.isValid();
      if (AnyNote) {
        Out += ", \"relatedLocations\": [";
        bool FirstNote = true;
        for (const LintNote &N : D.Notes) {
          if (!N.Range.isValid())
            continue;
          Out += FirstNote ? "" : ", ";
          FirstNote = false;
          Out += "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": " +
                 quoted(Uri) + "}, \"region\": {" + regionJson(N.Range) +
                 "}}, \"message\": {\"text\": " + quoted(N.Message) + "}}";
        }
        Out += "]";
      }
      Out += "}";
    }
  }
  Out += First ? "]\n" : "\n      ]\n";
  Out += "    }\n"
         "  ]\n"
         "}\n";
  return Out;
}
