//===-- lint/LintEngine.h - Governed lint pass manager ----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pass manager over the frozen subtransitive graph.  Each checker pass
/// answers one program-hygiene question using the linear-time machinery
/// the repo already has — port reachability over the CSR snapshot, the
/// called-once markers of Section 9, the effects analysis of Section 8 —
/// without ever materialising full label sets.
///
/// Registered passes (ids double as rule ids):
///
///   dead-function        warning  abstraction never called from any site
///   unused-binding       warning  binder with no variable occurrence
///   applied-non-function error    call site whose operator may be a
///                                 non-function value
///   called-once          note     abstraction with exactly one call site
///                                 (inlining candidate)
///   impure-in-pure       warning  side-effecting expression in a position
///                                 expected pure (pure-primitive operand,
///                                 branch condition, case scrutinee)
///   escaping-function    note     closure flowing into the program result
///                                 or a mutable reference cell
///
/// The engine fans passes out on a `ThreadPool` (each pass writes its own
/// report slot), shares the expensive wrapped analyses between passes
/// through a `LintContext` (built once under `std::call_once`), and runs
/// under the resource governor: every pass polls the shared
/// `Deadline`/`CancellationToken` and reports a per-pass `Status` plus a
/// `Partial` flag instead of aborting the run.  Spans and counters follow
/// docs/OBSERVABILITY.md (`lint.run`, `lint.pass.<id>`,
/// `lint.findings`, `lint.pass_millis`).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_LINT_LINTENGINE_H
#define STCFA_LINT_LINTENGINE_H

#include "apps/EffectsAnalysis.h"
#include "apps/KLimitedCFA.h"
#include "core/FrozenGraph.h"
#include "lint/LintDiagnostic.h"
#include "support/Deadline.h"
#include "support/Status.h"

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stcfa {

class LintContext;

/// Static description of one registered pass.
struct LintPassInfo {
  /// Stable pass/rule id (`--lint=<id>,...`).
  const char *Id;
  /// Trace span name — a string literal, as Trace requires.
  const char *SpanName;
  /// One-line rule description (SARIF `shortDescription`).
  const char *Summary;
  LintSeverity DefaultSeverity;
  /// The checker: appends findings, returns the pass status (`Ok`, or
  /// `DeadlineExceeded`/`Cancelled` with whatever partial findings were
  /// collected).
  Status (*Run)(const LintContext &Ctx, std::vector<LintDiagnostic> &Out);
};

/// Shared state handed to every pass.  Thread-safe: the wrapped analyses
/// are materialised lazily under `std::call_once`, so two passes racing
/// for `calledOnce()` build it exactly once and then share it read-only.
class LintContext {
public:
  LintContext(const SubtransitiveGraph &G, const FrozenGraph &F,
              const Deadline &D, const CancellationToken &Token);

  /// Snapshot-only form: the wrapped analyses run on \p F's flat tables
  /// alone, so an mmap-backed view works — the lint-over-snapshot and
  /// daemon paths.  \p M must be the module \p F was frozen from.
  LintContext(const Module &M, const FrozenGraph &F, const Deadline &D,
              const CancellationToken &Token);
  ~LintContext();

  const Module &module() const { return M; }
  /// The live source graph, or null on the snapshot-only path.
  const SubtransitiveGraph *graph() const { return G; }
  const FrozenGraph &frozen() const { return F; }
  const Deadline &deadline() const { return D; }
  const CancellationToken &token() const { return Token; }

  /// The shared called-once analysis (Section 9 markers), built on first
  /// use under this context's deadline.  \p S receives the analysis run
  /// status — partial marker flow on expiry.
  const CalledOnceAnalysis &calledOnce(Status &S) const;

  /// The shared effects analysis (Section 8), same contract.
  const EffectsAnalysis &effects(Status &S) const;

  /// The occurrence whose graph node is \p N, or invalid when \p N is a
  /// derived port/label/summary node.  Built once (node indices in the
  /// snapshot are canonical, so the map is exact).
  ExprId exprOfNode(uint32_t N) const;

private:
  friend class LintEngine;
  LintContext(const SubtransitiveGraph *G, const Module &M,
              const FrozenGraph &F, const Deadline &D,
              const CancellationToken &Token);

  const SubtransitiveGraph *G; ///< null on the snapshot-only path
  const FrozenGraph &F;
  const Module &M;
  Deadline D;
  CancellationToken Token;

  mutable std::once_flag CalledOnceFlag, EffectsFlag, NodeMapFlag;
  mutable std::unique_ptr<CalledOnceAnalysis> CalledOnceA;
  mutable std::unique_ptr<EffectsAnalysis> EffectsA;
  mutable Status CalledOnceStatus, EffectsStatus;
  mutable std::vector<ExprId> NodeToExpr;
};

/// What one pass produced.
struct LintPassReport {
  const LintPassInfo *Info = nullptr;
  std::vector<LintDiagnostic> Findings;
  Status PassStatus;
  /// True when the pass ran under an expired deadline or cancellation and
  /// its findings are an under-approximation.
  bool Partial = false;
  double Millis = 0;
};

/// Engine configuration.
struct LintOptions {
  /// Pass ids to run; empty means every registered pass.  Unknown ids are
  /// ignored (the driver validates before calling).
  std::vector<std::string> Passes;
  Deadline D;
  CancellationToken Token;
  /// Fan-out width; passes beyond this queue on the pool.
  unsigned Threads = 1;
};

/// Aggregate result of one engine run.
struct LintResult {
  /// One report per selected pass, in registry order (deterministic).
  std::vector<LintPassReport> Reports;
  uint32_t NumErrors = 0;
  uint32_t NumWarnings = 0;
  uint32_t NumNotes = 0;

  bool anyPartial() const {
    for (const LintPassReport &R : Reports)
      if (R.Partial)
        return true;
    return false;
  }
};

/// The pass manager.
class LintEngine {
public:
  /// \p F must be a usable snapshot of \p G (`F.status().isOk()`).
  LintEngine(const SubtransitiveGraph &G, const FrozenGraph &F);

  /// Snapshot-only form: every pass and wrapped analysis runs on \p F's
  /// flat tables, so an mmap-backed snapshot works without its source
  /// pipeline.  \p M must be the module \p F was frozen from
  /// (content-hash-verified by the caller — the driver and daemon both
  /// check before constructing).
  LintEngine(const Module &M, const FrozenGraph &F);

  /// All registered passes, in execution order.
  static std::span<const LintPassInfo> passes();

  /// Looks up a pass by id; null when unknown.
  static const LintPassInfo *findPass(std::string_view Id);

  /// Runs the selected passes and collects their reports.
  LintResult run(const LintOptions &Opts = {});

private:
  const SubtransitiveGraph *G; ///< null on the snapshot-only path
  const Module &M;
  const FrozenGraph &F;
};

} // namespace stcfa

#endif // STCFA_LINT_LINTENGINE_H
