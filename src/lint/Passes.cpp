//===-- lint/Passes.cpp - The checker passes ------------------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six checker passes and the shared `LintContext`.  Every pass works
/// directly on the frozen CSR snapshot (Propositions 1/2 reachability) or
/// on one of the linear-time wrapped analyses — none materialises full
/// label sets, so each pass stays linear in the graph.
///
/// Known approximation limits (documented in docs/LINT.md):
///
///  * `applied-non-function` tracks the value kinds the graph gives
///    producers to — literals, tuples, constructor values, reference
///    cells, and widened `Top` — but not the results of arithmetic
///    primitives, which have no producer node (the standard-CFA reference
///    tracks exactly the same set, which is what the differential test
///    checks).
///  * Partial runs (expired deadline / cancellation) under-approximate:
///    passes may miss findings, never invent them.
///
//===----------------------------------------------------------------------===//

#include "lint/LintEngine.h"

#include "ast/Module.h"

#include <algorithm>
#include <deque>

using namespace stcfa;

//===----------------------------------------------------------------------===//
// LintContext
//===----------------------------------------------------------------------===//

LintContext::LintContext(const SubtransitiveGraph &G, const FrozenGraph &F,
                         const Deadline &D, const CancellationToken &Token)
    : LintContext(&G, G.module(), F, D, Token) {}

LintContext::LintContext(const Module &M, const FrozenGraph &F,
                         const Deadline &D, const CancellationToken &Token)
    : LintContext(nullptr, M, F, D, Token) {}

LintContext::LintContext(const SubtransitiveGraph *G, const Module &M,
                         const FrozenGraph &F, const Deadline &D,
                         const CancellationToken &Token)
    : G(G), F(F), M(M), D(D), Token(Token) {}

LintContext::~LintContext() = default;

const CalledOnceAnalysis &LintContext::calledOnce(Status &S) const {
  std::call_once(CalledOnceFlag, [this] {
    CalledOnceA = G ? std::make_unique<CalledOnceAnalysis>(*G, &F)
                    : std::make_unique<CalledOnceAnalysis>(M, F);
    CalledOnceStatus = CalledOnceA->run(D, Token);
  });
  S = CalledOnceStatus;
  return *CalledOnceA;
}

const EffectsAnalysis &LintContext::effects(Status &S) const {
  std::call_once(EffectsFlag, [this] {
    EffectsA = G ? std::make_unique<EffectsAnalysis>(*G, &F)
                 : std::make_unique<EffectsAnalysis>(M, F);
    EffectsStatus = EffectsA->run(D, Token);
  });
  S = EffectsStatus;
  return *EffectsA;
}

ExprId LintContext::exprOfNode(uint32_t N) const {
  std::call_once(NodeMapFlag, [this] {
    NodeToExpr.assign(F.numNodes(), ExprId::invalid());
    for (uint32_t E = 0, End = M.numExprs(); E != End; ++E)
      if (uint32_t Node = F.nodeOfExpr(ExprId(E)); Node != FrozenGraph::None)
        NodeToExpr[Node] = ExprId(E);
  });
  return N < NodeToExpr.size() ? NodeToExpr[N] : ExprId::invalid();
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

namespace {

/// Polls the governor; fills \p S and returns true when the pass should
/// stop and report partial findings.
bool governedStop(const LintContext &Ctx, Status &S) {
  if (Ctx.token().cancelled()) {
    S = Status::cancelled("lint pass cancelled");
    return true;
  }
  if (Ctx.deadline().expired()) {
    S = Status::deadlineExceeded("lint pass exceeded its deadline");
    return true;
  }
  return false;
}

/// Display names for abstractions: the binder name when the lambda is the
/// initializer of a `let`/`letrec` binding, "anonymous function" otherwise.
std::vector<std::string> functionNames(const Module &M) {
  std::vector<std::string> Names(M.numLabels(), "anonymous function");
  auto nameLam = [&](ExprId Init, VarId V) {
    if (const auto *Lam = dyn_cast<LamExpr>(M.expr(Init)))
      Names[Lam->label().index()] =
          "function '" + std::string(M.text(M.var(V).Name)) + "'";
  };
  for (uint32_t E = 0, End = M.numExprs(); E != End; ++E) {
    const Expr *Ex = M.expr(ExprId(E));
    if (const auto *Let = dyn_cast<LetExpr>(Ex))
      nameLam(Let->init(), Let->var());
    else if (const auto *Rec = dyn_cast<LetRecNExpr>(Ex))
      for (const LetRecNExpr::Binding &B : Rec->bindings())
        nameLam(B.Init, B.Var);
  }
  return Names;
}

SourceRange rangeOfExpr(const Module &M, ExprId E) {
  return E.isValid() ? M.expr(E)->range() : SourceRange{};
}

//===----------------------------------------------------------------------===//
// dead-function: abstractions no call site can reach
//===----------------------------------------------------------------------===//

Status passDeadFunction(const LintContext &Ctx,
                        std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  const CalledOnceAnalysis &CO = Ctx.calledOnce(S);
  // A partial marker flow under-counts call sites; `Never` would then be
  // unreliable, so suppress findings entirely on a partial analysis.
  if (!S.isOk())
    return S;
  const Module &M = Ctx.module();
  std::vector<std::string> Names = functionNames(M);
  for (uint32_t L = 0, End = M.numLabels(); L != End; ++L) {
    if (CO.countOf(LabelId(L)) != CalledOnceAnalysis::CallCount::Never)
      continue;
    Out.push_back({"dead-function", LintSeverity::Warning,
                   rangeOfExpr(M, M.lamOfLabel(LabelId(L))),
                   Names[L] + " is never called",
                   {}});
  }
  return S;
}

//===----------------------------------------------------------------------===//
// unused-binding: binders with no occurrence
//===----------------------------------------------------------------------===//

Status passUnusedBinding(const LintContext &Ctx,
                         std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  if (governedStop(Ctx, S))
    return S;
  const Module &M = Ctx.module();
  const FrozenGraph &F = Ctx.frozen();
  for (uint32_t V = 0, End = M.numVars(); V != End; ++V) {
    // The graph's only edges *into* a binder node come from occurrences
    // (the VAR rule; the close phase never targets var nodes), so an
    // empty predecessor row means the binder is never referenced.
    uint32_t N = F.nodeOfVar(VarId(V));
    if (N != FrozenGraph::None && !F.preds(N).empty())
      continue;
    const VarInfo &Info = M.var(VarId(V));
    if (!Info.Binder.isValid())
      continue;
    const char *Kind = "binding";
    switch (M.expr(Info.Binder)->kind()) {
    case ExprKind::Lam:
      Kind = "parameter";
      break;
    case ExprKind::Case:
      Kind = "pattern binder";
      break;
    default:
      break;
    }
    Out.push_back({"unused-binding", LintSeverity::Warning,
                   rangeOfExpr(M, Info.Binder),
                   std::string(Kind) + " '" +
                       std::string(M.text(Info.Name)) + "' is never used",
                   {}});
  }
  return S;
}

//===----------------------------------------------------------------------===//
// applied-non-function: call sites whose operator may be a base value
//===----------------------------------------------------------------------===//

/// What a producer node produces, for the note message.
std::string describeProducer(const Module &M, const FrozenGraph &F,
                             const LintContext &Ctx, uint32_t N) {
  if (F.op(N) == NodeOp::Top)
    return "a widened (unknown) value";
  ExprId E = Ctx.exprOfNode(N);
  if (!E.isValid())
    return "a non-function value";
  const Expr *Ex = M.expr(E);
  switch (Ex->kind()) {
  case ExprKind::Lit:
    switch (cast<LitExpr>(Ex)->litKind()) {
    case LitKind::Int:
      return "an integer literal";
    case LitKind::Bool:
      return "a boolean literal";
    case LitKind::Unit:
      return "the unit value";
    case LitKind::String:
      return "a string literal";
    }
    return "a literal";
  case ExprKind::Tuple:
    return "a tuple";
  case ExprKind::Con:
    return "a '" + std::string(M.text(M.con(cast<ConExpr>(Ex)->con()).Name)) +
           "' constructor value";
  case ExprKind::Prim:
    return "a mutable reference cell";
  default:
    return "a non-function value";
  }
}

Status passAppliedNonFunction(const LintContext &Ctx,
                              std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  if (governedStop(Ctx, S))
    return S;
  const Module &M = Ctx.module();
  const FrozenGraph &F = Ctx.frozen();

  // Producer nodes of trackable non-function values.  An edge `n1 -> n2`
  // means L(n1) ⊇ L(n2), so values flow *against* the edges: a reverse
  // (predecessor-side) BFS from the producers marks every node whose
  // value set may contain one, carrying a witness producer for the note.
  const uint32_t None = FrozenGraph::None;
  std::vector<uint32_t> Witness(F.numNodes(), None);
  std::deque<uint32_t> Queue;
  auto seed = [&](uint32_t N) {
    if (N != None && Witness[N] == None) {
      Witness[N] = N;
      Queue.push_back(N);
    }
  };
  for (uint32_t E = 0, End = M.numExprs(); E != End; ++E) {
    const Expr *Ex = M.expr(ExprId(E));
    bool Producer = isa<LitExpr>(Ex) || isa<TupleExpr>(Ex) || isa<ConExpr>(Ex);
    if (const auto *P = dyn_cast<PrimExpr>(Ex))
      Producer = P->op() == PrimOp::RefNew;
    if (Producer)
      seed(F.nodeOfExpr(ExprId(E)));
  }
  for (uint32_t N = 0, End = F.numNodes(); N != End; ++N)
    if (F.op(N) == NodeOp::Top)
      seed(N);

  uint64_t Steps = 0;
  while (!Queue.empty()) {
    if (Steps++ % 4096 == 0 && governedStop(Ctx, S))
      return S;
    uint32_t N = Queue.front();
    Queue.pop_front();
    for (uint32_t P : F.preds(N))
      if (Witness[P] == None) {
        Witness[P] = Witness[N];
        Queue.push_back(P);
      }
  }

  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    const auto *A = dyn_cast<AppExpr>(E);
    if (!A)
      return;
    uint32_t Fn = F.nodeOfExpr(A->fn());
    if (Fn == None || Witness[Fn] == None)
      return;
    uint32_t W = Witness[Fn];
    SourceRange FnRange = rangeOfExpr(M, A->fn());
    LintNote Note{rangeOfExpr(M, Ctx.exprOfNode(W)),
                  describeProducer(M, F, Ctx, W) +
                      " may flow into the operator"};
    if (!Note.Range.isValid())
      Note.Range = FnRange; // Top nodes have no occurrence to point at
    Out.push_back({"applied-non-function", LintSeverity::Error, FnRange,
                   "operator of this application may evaluate to a "
                   "non-function value",
                   {std::move(Note)}});
    (void)Id;
  });
  return S;
}

//===----------------------------------------------------------------------===//
// called-once: inlining candidates
//===----------------------------------------------------------------------===//

Status passCalledOnce(const LintContext &Ctx,
                      std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  const CalledOnceAnalysis &CO = Ctx.calledOnce(S);
  // Partial marker flow can misreport `Once` for a `Many` function.
  if (!S.isOk())
    return S;
  const Module &M = Ctx.module();
  std::vector<std::string> Names = functionNames(M);
  for (uint32_t L = 0, End = M.numLabels(); L != End; ++L) {
    if (CO.countOf(LabelId(L)) != CalledOnceAnalysis::CallCount::Once)
      continue;
    ExprId Site = CO.uniqueCallSite(LabelId(L));
    std::vector<LintNote> Notes;
    if (Site.isValid())
      Notes.push_back({rangeOfExpr(M, Site), "the only call site is here"});
    Out.push_back({"called-once", LintSeverity::Note,
                   rangeOfExpr(M, M.lamOfLabel(LabelId(L))),
                   Names[L] +
                       " is called from exactly one site; inlining candidate",
                   std::move(Notes)});
  }
  return S;
}

//===----------------------------------------------------------------------===//
// impure-in-pure: side effects in positions expected pure
//===----------------------------------------------------------------------===//

Status passImpureInPure(const LintContext &Ctx,
                        std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  if (governedStop(Ctx, S))
    return S;
  const EffectsAnalysis &Eff = Ctx.effects(S);
  // Partial effects marks under-approximate; report what is certain.
  const Module &M = Ctx.module();
  auto report = [&](ExprId E, std::string What) {
    Out.push_back({"impure-in-pure", LintSeverity::Warning, rangeOfExpr(M, E),
                   std::move(What), {}});
  };
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    if (const auto *P = dyn_cast<PrimExpr>(E)) {
      // Pure value primitives only: the reference machinery is stateful
      // by design and `print`/`:=` are the effects themselves.
      switch (P->op()) {
      case PrimOp::Print:
      case PrimOp::RefNew:
      case PrimOp::RefGet:
      case PrimOp::RefSet:
        return;
      default:
        break;
      }
      for (ExprId Arg : P->args())
        if (Eff.isEffectful(Arg))
          report(Arg, std::string("operand of pure primitive '") +
                          primName(P->op()) + "' may have side effects");
      return;
    }
    if (const auto *If = dyn_cast<IfExpr>(E)) {
      if (Eff.isEffectful(If->cond()))
        report(If->cond(), "branch condition may have side effects");
      return;
    }
    if (const auto *C = dyn_cast<CaseExpr>(E)) {
      if (Eff.isEffectful(C->scrutinee()))
        report(C->scrutinee(), "case scrutinee may have side effects");
      return;
    }
    if (const auto *Pr = dyn_cast<ProjExpr>(E)) {
      if (Eff.isEffectful(Pr->tuple()))
        report(Pr->tuple(), "projection target may have side effects");
      return;
    }
  });
  return S;
}

//===----------------------------------------------------------------------===//
// escaping-function: closures flowing into the result or a reference cell
//===----------------------------------------------------------------------===//

Status passEscapingFunction(const LintContext &Ctx,
                            std::vector<LintDiagnostic> &Out) {
  Status S = Status::ok();
  if (governedStop(Ctx, S))
    return S;
  const Module &M = Ctx.module();
  const FrozenGraph &F = Ctx.frozen();

  // Proposition 1: a forward (successor-side) search from a node reaches
  // exactly the producers of the values that may flow to it.  Search once
  // from the program-result node and once from every refcell port.
  uint32_t RootNode = F.nodeOfExpr(M.root());
  DenseBitset ToResult =
      F.reachableFrom(std::span<const uint32_t>(&RootNode, 1));

  std::vector<uint32_t> Cells;
  for (uint32_t N = 0, End = F.numNodes(); N != End; ++N)
    if (F.op(N) == NodeOp::RefCell)
      Cells.push_back(N);
  DenseBitset ToCell = F.reachableFrom(Cells);

  if (governedStop(Ctx, S))
    return S;

  std::vector<std::string> Names = functionNames(M);
  for (uint32_t L = 0, End = M.numLabels(); L != End; ++L) {
    auto [LamNode, Carrier] = F.labelRoots(LabelId(L));
    auto in = [&](const DenseBitset &B) {
      return (LamNode != FrozenGraph::None && B.contains(LamNode)) ||
             (Carrier != FrozenGraph::None && B.contains(Carrier));
    };
    SourceRange R = rangeOfExpr(M, M.lamOfLabel(LabelId(L)));
    if (in(ToResult))
      Out.push_back({"escaping-function", LintSeverity::Note, R,
                     Names[L] + " escapes into the program result",
                     {}});
    if (!Cells.empty() && in(ToCell))
      Out.push_back({"escaping-function", LintSeverity::Note, R,
                     Names[L] + " is stored in a mutable reference cell",
                     {}});
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

static const LintPassInfo Registry[] = {
    {"dead-function", "lint.pass.dead-function",
     "Abstraction never called from any reachable call site",
     LintSeverity::Warning, passDeadFunction},
    {"unused-binding", "lint.pass.unused-binding",
     "Binder with no variable occurrence", LintSeverity::Warning,
     passUnusedBinding},
    {"applied-non-function", "lint.pass.applied-non-function",
     "Call site whose operator may evaluate to a non-function value",
     LintSeverity::Error, passAppliedNonFunction},
    {"called-once", "lint.pass.called-once",
     "Abstraction called from exactly one site (inlining candidate)",
     LintSeverity::Note, passCalledOnce},
    {"impure-in-pure", "lint.pass.impure-in-pure",
     "Side-effecting expression in a position expected pure",
     LintSeverity::Warning, passImpureInPure},
    {"escaping-function", "lint.pass.escaping-function",
     "Closure flowing into the program result or a mutable reference",
     LintSeverity::Note, passEscapingFunction},
};

std::span<const LintPassInfo> LintEngine::passes() { return Registry; }

const LintPassInfo *LintEngine::findPass(std::string_view Id) {
  for (const LintPassInfo &P : Registry)
    if (Id == P.Id)
      return &P;
  return nullptr;
}
