//===-- support/DenseBitset.h - Fixed-universe bitset -----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamic bitset over a fixed universe `[0, Size)`, used for label sets
/// in the cubic baseline analysis.  Supports the operations the worklist
/// solver needs: insert with change detection, union with change detection,
/// iteration over set bits, and popcount.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_DENSEBITSET_H
#define STCFA_SUPPORT_DENSEBITSET_H

#include "support/SimdOps.h"

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stcfa {

/// Bitset over a fixed universe of dense indices.
class DenseBitset {
public:
  DenseBitset() = default;
  explicit DenseBitset(uint32_t Universe)
      : Words((Universe + 63) / 64, 0), Universe(Universe) {}

  /// Number of representable elements.
  uint32_t universe() const { return Universe; }

  /// Inserts \p I; returns true iff it was not already present.
  bool insert(uint32_t I) {
    assert(I < Universe && "bit out of range");
    uint64_t Mask = uint64_t(1) << (I % 64);
    uint64_t &W = Words[I / 64];
    if (W & Mask)
      return false;
    W |= Mask;
    ++Count;
    return true;
  }

  /// True iff \p I is present.
  bool contains(uint32_t I) const {
    assert(I < Universe && "bit out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Bulk-unions \p Other into this set (straight word-wise OR, no
  /// change count — the label-set kernel's materialisation path).
  void orWords(const DenseBitset &Other) {
    assert(Universe == Other.Universe && "universe mismatch");
    orWords(Other.Words.data(), Other.Words.size());
  }

  /// Bulk-unions \p N raw 64-bit words into this set.  Source bits at or
  /// beyond the universe are masked off, so OR-ing from a buffer padded
  /// past the universe (the kernel's cache-line-padded rows) can never
  /// plant ghost bits in the tail word.  Runs on the dispatched SIMD
  /// path (see support/SimdOps.h).
  void orWords(const uint64_t *Src, size_t N) {
    simd::orWords(Words.data(), Src, N < Words.size() ? N : Words.size());
    if (uint32_t Rem = Universe % 64; Rem != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Rem) - 1;
    Count = popcount();
  }

  /// Population count recomputed from the words (always equal to
  /// `count()`, which is maintained incrementally).
  uint32_t popcount() const {
    return static_cast<uint32_t>(
        simd::popcountWords(Words.data(), Words.size()));
  }

  /// Unions \p Other into this set; returns the number of new elements.
  uint32_t unionWith(const DenseBitset &Other) {
    assert(Universe == Other.Universe && "universe mismatch");
    uint32_t Added = 0;
    for (size_t W = 0, E = Words.size(); W != E; ++W) {
      uint64_t New = Other.Words[W] & ~Words[W];
      if (!New)
        continue;
      Added += static_cast<uint32_t>(std::popcount(New));
      Words[W] |= New;
    }
    Count += Added;
    return Added;
  }

  /// Number of elements present.
  uint32_t count() const { return Count; }

  bool empty() const { return Count == 0; }

  /// Invokes \p Fn for each set bit in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (size_t W = 0, E = Words.size(); W != E; ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        uint32_t Bit = static_cast<uint32_t>(std::countr_zero(Bits));
        Fn(static_cast<uint32_t>(W * 64 + Bit));
        Bits &= Bits - 1;
      }
    }
  }

  friend bool operator==(const DenseBitset &A, const DenseBitset &B) {
    return A.Universe == B.Universe && A.Words == B.Words;
  }

  /// True iff this set contains every element of \p Other.
  bool containsAll(const DenseBitset &Other) const {
    assert(Universe == Other.Universe && "universe mismatch");
    for (size_t W = 0, E = Words.size(); W != E; ++W)
      if (Other.Words[W] & ~Words[W])
        return false;
    return true;
  }

private:
  std::vector<uint64_t> Words;
  uint32_t Universe = 0;
  uint32_t Count = 0;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_DENSEBITSET_H
