//===-- support/Metrics.cpp - Process-wide metrics registry ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <map>
#include <memory>
#include <mutex>

using namespace stcfa;

unsigned stcfa::detail::metricShardIndex() {
  // Each thread grabs the next shard round-robin, once; two threads may
  // share a shard after NumMetricShards threads, which stays correct
  // (fetch_add), just occasionally contended.
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Index =
      Next.fetch_add(1, std::memory_order_relaxed) % NumMetricShards;
  return Index;
}

uint64_t Counter::value() const {
  uint64_t Total = 0;
  for (const auto &S : Shards)
    Total += S.V.load(std::memory_order_relaxed);
  return Total;
}

void Counter::reset() {
  for (auto &S : Shards)
    S.V.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<uint64_t> BucketBounds)
    : Bounds(std::move(BucketBounds)),
      Buckets(Bounds.size() + 1) {}

void Histogram::observe(uint64_t V) {
  size_t I = 0;
  while (I != Bounds.size() && V > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  return Count.load(std::memory_order_relaxed);
}

uint64_t Histogram::sum() const { return Sum.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> Out(Buckets.size());
  for (size_t I = 0; I != Buckets.size(); ++I)
    Out[I] = Buckets[I].load(std::memory_order_relaxed);
  return Out;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

namespace {

// std::map keeps snapshot order deterministic (name-sorted) and node
// stability keeps handed-out references valid forever.
struct MetricsRegistry {
  std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

MetricsRegistry &metricsRegistry() {
  static MetricsRegistry R;
  return R;
}

void indentInto(std::string &Out, int N) {
  Out.append(static_cast<size_t>(N), ' ');
}

} // namespace

Counter &stcfa::counter(const std::string &Name) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &stcfa::gauge(const std::string &Name) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto &Slot = R.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &stcfa::histogram(const std::string &Name,
                            std::vector<uint64_t> BucketBounds) {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(BucketBounds));
  return *Slot;
}

MetricsSnapshot stcfa::snapshotMetrics() {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  MetricsSnapshot S;
  for (const auto &[Name, C] : R.Counters)
    S.Counters.emplace_back(Name, C->value());
  for (const auto &[Name, G] : R.Gauges)
    S.Gauges.emplace_back(Name, G->value());
  for (const auto &[Name, H] : R.Histograms) {
    MetricsSnapshot::HistogramValue V;
    V.Name = Name;
    V.Bounds = H->bounds();
    V.BucketCounts = H->bucketCounts();
    V.Count = H->count();
    V.Sum = H->sum();
    S.Histograms.push_back(std::move(V));
  }
  return S;
}

void stcfa::resetMetrics() {
  MetricsRegistry &R = metricsRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &KV : R.Counters)
    KV.second->reset();
  for (auto &KV : R.Gauges)
    KV.second->reset();
  for (auto &KV : R.Histograms)
    KV.second->reset();
}

std::string MetricsSnapshot::toJson(int Indent) const {
  std::string Out;
  const int I0 = Indent, I1 = Indent + 2, I2 = Indent + 4, I3 = Indent + 6;
  Out += "{\n";
  indentInto(Out, I1);
  Out += "\"counters\": {";
  for (size_t I = 0; I != Counters.size(); ++I) {
    Out += I ? ",\n" : "\n";
    indentInto(Out, I2);
    Out += "\"" + Counters[I].first +
           "\": " + std::to_string(Counters[I].second);
  }
  if (!Counters.empty()) {
    Out += "\n";
    indentInto(Out, I1);
  }
  Out += "},\n";
  indentInto(Out, I1);
  Out += "\"gauges\": {";
  for (size_t I = 0; I != Gauges.size(); ++I) {
    Out += I ? ",\n" : "\n";
    indentInto(Out, I2);
    Out += "\"" + Gauges[I].first + "\": " + std::to_string(Gauges[I].second);
  }
  if (!Gauges.empty()) {
    Out += "\n";
    indentInto(Out, I1);
  }
  Out += "},\n";
  indentInto(Out, I1);
  Out += "\"histograms\": {";
  for (size_t I = 0; I != Histograms.size(); ++I) {
    const HistogramValue &H = Histograms[I];
    Out += I ? ",\n" : "\n";
    indentInto(Out, I2);
    Out += "\"" + H.Name + "\": {\n";
    indentInto(Out, I3);
    Out += "\"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + std::to_string(H.Sum) + ",\n";
    indentInto(Out, I3);
    Out += "\"bounds\": [";
    for (size_t J = 0; J != H.Bounds.size(); ++J)
      Out += (J ? ", " : "") + std::to_string(H.Bounds[J]);
    Out += "],\n";
    indentInto(Out, I3);
    Out += "\"buckets\": [";
    for (size_t J = 0; J != H.BucketCounts.size(); ++J)
      Out += (J ? ", " : "") + std::to_string(H.BucketCounts[J]);
    Out += "]\n";
    indentInto(Out, I2);
    Out += "}";
  }
  if (!Histograms.empty()) {
    Out += "\n";
    indentInto(Out, I1);
  }
  Out += "}\n";
  indentInto(Out, I0);
  Out += "}";
  return Out;
}
