//===-- support/TablePrinter.h - Aligned text tables ------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned plain-text tables.  The benchmark binaries use this to
/// print paper-style result tables (Tables 1 and 2 and the Section 2
/// complexity table) next to the raw google-benchmark output.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_TABLEPRINTER_H
#define STCFA_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace stcfa {

/// Collects rows of cells and prints them with aligned columns.
class TablePrinter {
public:
  /// Creates a table whose first row is the header \p Columns.
  explicit TablePrinter(std::vector<std::string> Columns);

  /// Appends a data row; it must have as many cells as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) as a string.
  std::string render() const;

  /// Formats a double with \p Precision fractional digits.
  static std::string num(double Value, int Precision = 3);
  /// Formats an integer count.
  static std::string num(uint64_t Value);

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_TABLEPRINTER_H
