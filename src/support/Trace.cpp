//===-- support/Trace.cpp - Stage-level tracing spans ---------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <cstdio>
#include <fstream>

#if STCFA_TRACING

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

using namespace stcfa;

namespace {

std::atomic<bool> Enabled{false};
std::atomic<uint64_t> AllocCount{0};
std::atomic<uint64_t> NextSeq{1};
std::atomic<uint32_t> NextTid{0};

uint64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch)
          .count());
}

// One recorded event.  Name/key/value strings are literal (or otherwise
// immortal) pointers, so recording never copies characters.
struct Event {
  const char *Name;
  char Phase;
  uint64_t StartNs;
  uint64_t DurNs;
  uint64_t Seq;
  uint64_t Parent;
  uint32_t NumArgs;
  const char *ArgKeys[4];
  uint64_t ArgVals[4];
  const char *StrKey;
  const char *StrVal;
};

// Per-thread buffer.  Held by shared_ptr from both the thread_local slot
// and the global registry, so events recorded on a pool thread survive
// that thread's exit.  Appends take the buffer's own mutex — uncontended
// in practice, and spans are stage-granularity, never per-edge.
struct TraceBuffer {
  std::mutex M;
  std::vector<Event> Events;
  uint32_t Tid = 0;
};

struct Registry {
  std::mutex M;
  std::vector<std::shared_ptr<TraceBuffer>> Buffers;
};

Registry &registry() {
  static Registry R;
  return R;
}

TraceBuffer &localBuffer() {
  thread_local std::shared_ptr<TraceBuffer> Local = [] {
    auto B = std::make_shared<TraceBuffer>();
    B->Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
    AllocCount.fetch_add(1, std::memory_order_relaxed);
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    if (R.Buffers.size() == R.Buffers.capacity())
      AllocCount.fetch_add(1, std::memory_order_relaxed);
    R.Buffers.push_back(B);
    return B;
  }();
  return *Local;
}

void append(const Event &E) {
  TraceBuffer &B = localBuffer();
  std::lock_guard<std::mutex> Lock(B.M);
  if (B.Events.size() == B.Events.capacity())
    AllocCount.fetch_add(1, std::memory_order_relaxed);
  B.Events.push_back(E);
}

// Per-thread stack of open span Seq ids, for parent linkage.  Fixed
// depth; spans are stage-granularity, so 64 is generous.
constexpr int MaxDepth = 64;
thread_local uint64_t SpanStack[MaxDepth];
thread_local int SpanDepth = 0;

void appendInstant(const char *Name, const char *Key, const char *Val,
                   const char *IntKey, uint64_t IntVal, bool HasInt) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  Event E{};
  E.Name = Name;
  E.Phase = 'i';
  E.StartNs = nowNs();
  E.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  E.Parent = SpanDepth > 0 ? SpanStack[SpanDepth - 1] : 0;
  E.StrKey = Key;
  E.StrVal = Val;
  if (HasInt) {
    E.ArgKeys[0] = IntKey;
    E.ArgVals[0] = IntVal;
    E.NumArgs = 1;
  }
  append(E);
}

void escapeInto(std::string &Out, const char *S) {
  for (; *S; ++S) {
    if (*S == '"' || *S == '\\')
      Out.push_back('\\');
    Out.push_back(*S);
  }
}

void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  Out += Buf;
}

} // namespace

void stcfa::setTracingEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

bool stcfa::tracingEnabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void stcfa::clearTraceEvents() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &B : R.Buffers) {
    std::lock_guard<std::mutex> BLock(B->M);
    B->Events.clear(); // keeps capacity — no future growth alloc
  }
}

uint64_t stcfa::traceAllocationCount() {
  return AllocCount.load(std::memory_order_relaxed);
}

Span::Span(const char *SpanName) {
  if (!Enabled.load(std::memory_order_relaxed))
    return;
  Name = SpanName;
  StartNs = nowNs();
  Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Parent = SpanDepth > 0 ? SpanStack[SpanDepth - 1] : 0;
  if (SpanDepth < MaxDepth)
    SpanStack[SpanDepth++] = Seq;
}

Span::~Span() {
  if (!Name)
    return;
  if (SpanDepth > 0 && SpanStack[SpanDepth - 1] == Seq)
    --SpanDepth;
  Event E{};
  E.Name = Name;
  E.Phase = 'X';
  E.StartNs = StartNs;
  E.DurNs = nowNs() - StartNs;
  E.Seq = Seq;
  E.Parent = Parent;
  E.NumArgs = NumArgs;
  for (uint32_t I = 0; I != NumArgs; ++I) {
    E.ArgKeys[I] = ArgKeys[I];
    E.ArgVals[I] = ArgVals[I];
  }
  E.StrKey = StrKey;
  E.StrVal = StrVal;
  append(E);
}

void Span::arg(const char *Key, uint64_t Value) {
  if (!Name || NumArgs >= 4)
    return;
  ArgKeys[NumArgs] = Key;
  ArgVals[NumArgs] = Value;
  ++NumArgs;
}

void Span::arg(const char *Key, const char *Value) {
  if (!Name)
    return;
  StrKey = Key;
  StrVal = Value;
}

void stcfa::traceInstant(const char *Name) {
  appendInstant(Name, nullptr, nullptr, nullptr, 0, false);
}

void stcfa::traceInstant(const char *Name, const char *Key, const char *Val) {
  appendInstant(Name, Key, Val, nullptr, 0, false);
}

void stcfa::traceInstant(const char *Name, const char *Key, const char *Val,
                         const char *IntKey, uint64_t IntVal) {
  appendInstant(Name, Key, Val, IntKey, IntVal, true);
}

std::vector<TraceEventView> stcfa::snapshotTraceEvents() {
  std::vector<std::pair<Event, uint32_t>> Raw;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    for (auto &B : R.Buffers) {
      std::lock_guard<std::mutex> BLock(B->M);
      for (const Event &E : B->Events)
        Raw.emplace_back(E, B->Tid);
    }
  }
  std::sort(Raw.begin(), Raw.end(),
            [](const auto &A, const auto &B) { return A.first.Seq < B.first.Seq; });
  std::vector<TraceEventView> Out;
  Out.reserve(Raw.size());
  for (const auto &[E, Tid] : Raw) {
    TraceEventView V;
    V.Name = E.Name;
    V.Phase = E.Phase;
    V.StartNs = E.StartNs;
    V.DurNs = E.DurNs;
    V.Tid = Tid;
    V.Seq = E.Seq;
    V.Parent = E.Parent;
    for (uint32_t I = 0; I != E.NumArgs; ++I)
      V.Args.emplace_back(E.ArgKeys[I], E.ArgVals[I]);
    if (E.StrKey) {
      V.StrKey = E.StrKey;
      V.StrVal = E.StrVal ? E.StrVal : "";
    }
    Out.push_back(std::move(V));
  }
  return Out;
}

std::string stcfa::chromeTraceJson() {
  std::vector<TraceEventView> Events = snapshotTraceEvents();
  std::string Out = "[";
  bool First = true;
  for (const TraceEventView &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"name\": \"";
    escapeInto(Out, E.Name.c_str());
    Out += "\", \"ph\": \"";
    Out.push_back(E.Phase);
    Out += "\", \"ts\": ";
    appendMicros(Out, E.StartNs);
    if (E.Phase == 'X') {
      Out += ", \"dur\": ";
      appendMicros(Out, E.DurNs);
    } else {
      Out += ", \"s\": \"t\"";
    }
    Out += ", \"pid\": 1, \"tid\": " + std::to_string(E.Tid);
    Out += ", \"args\": {\"seq\": " + std::to_string(E.Seq) +
           ", \"parent\": " + std::to_string(E.Parent);
    for (const auto &[K, V] : E.Args) {
      Out += ", \"";
      escapeInto(Out, K.c_str());
      Out += "\": " + std::to_string(V);
    }
    if (!E.StrKey.empty()) {
      Out += ", \"";
      escapeInto(Out, E.StrKey.c_str());
      Out += "\": \"";
      escapeInto(Out, E.StrVal.c_str());
      Out += "\"";
    }
    Out += "}}";
  }
  Out += "\n]\n";
  return Out;
}

bool stcfa::writeChromeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << chromeTraceJson();
  return Out.good();
}

#else // !STCFA_TRACING

bool stcfa::writeChromeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "[]\n";
  return Out.good();
}

#endif // STCFA_TRACING
