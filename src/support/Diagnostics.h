//===-- support/Diagnostics.h - Source locations and errors -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations plus an error sink shared by the lexer, parser, scope
/// resolver, and type checker.  The project does not use exceptions; every
/// front-end stage records diagnostics here and callers check `hasErrors`.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_DIAGNOSTICS_H
#define STCFA_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace stcfa {

/// A 1-based line/column position in a source buffer.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// A half-open `[Begin, End)` span of source text.  `End` is the position
/// one past the last character (SARIF's exclusive `endColumn` convention);
/// a degenerate range with `End == Begin` means "only the start position
/// is known" (programmatically built ASTs, pre-span diagnostics).
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  bool isValid() const { return Begin.isValid(); }
  /// True when the range carries a real extent, not just a point.
  bool hasExtent() const { return End.isValid() && !(End == Begin); }

  friend bool operator==(SourceRange A, SourceRange B) {
    return A.Begin == B.Begin && A.End == B.End;
  }
};

/// One reported problem.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
  /// The full span; `Range.Begin == Loc` always, `Range.End` may equal
  /// `Loc` when the reporter only knew a point.
  SourceRange Range;
};

/// Accumulates diagnostics across front-end stages.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message), {Loc, Loc}});
  }

  /// Records an error spanning \p Range.  (A separate name, not an
  /// overload: brace-initialised call sites like `error({3, 14}, ...)`
  /// would otherwise be ambiguous between a point and a range.)
  void errorRange(SourceRange Range, std::string Message) {
    Diags.push_back({Range.Begin, std::move(Message), Range});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as `line:col: message` lines; diagnostics
  /// carrying a real extent render it as `line:col-line:col: message`.
  std::string render() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col);
      if (D.Range.hasExtent())
        Out += "-" + std::to_string(D.Range.End.Line) + ":" +
               std::to_string(D.Range.End.Col);
      Out += ": " + D.Message + "\n";
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_DIAGNOSTICS_H
