//===-- support/Diagnostics.h - Source locations and errors -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations plus an error sink shared by the lexer, parser, scope
/// resolver, and type checker.  The project does not use exceptions; every
/// front-end stage records diagnostics here and callers check `hasErrors`.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_DIAGNOSTICS_H
#define STCFA_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace stcfa {

/// A 1-based line/column position in a source buffer.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

/// One reported problem.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics across front-end stages.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as `line:col: message` lines.
  std::string render() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col) +
             ": " + D.Message + "\n";
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_DIAGNOSTICS_H
