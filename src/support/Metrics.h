//===-- support/Metrics.h - Process-wide metrics registry -------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small process-wide metrics registry: monotonic counters, gauges, and
/// fixed-bucket latency histograms.  Always compiled in (unlike Trace) —
/// the hot path is cheap enough to leave on:
///
///  * `Counter::add()` is one relaxed `fetch_add` on the calling thread's
///    shard — a cache-line-padded atomic slot picked once per thread —
///    so concurrent lanes never contend on the same line.  Shards are
///    summed at scrape time.
///  * `Gauge::set()` is a single atomic store (gauges are set from one
///    place at a time; no sharding needed).
///  * `Histogram::observe()` bumps one bucket with a relaxed `fetch_add`.
///    Observations are stage latencies — dozens per run, not millions —
///    so buckets are plain atomics.
///
/// Registration (`counter("close.edges_added")`) takes a mutex; callers
/// cache the returned reference in a function-local static so the lookup
/// happens once:
///
/// \code
///   static Counter &Edges = counter("close.edges_added");
///   Edges.add(Delta);
/// \endcode
///
/// `resetMetrics()` zeroes values but never invalidates handles — those
/// cached references stay good for the life of the process.
/// `snapshotMetrics()` returns a deterministic (name-sorted) snapshot
/// with a JSON serialization matching docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_METRICS_H
#define STCFA_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace stcfa {

namespace detail {
struct alignas(64) MetricShard {
  std::atomic<uint64_t> V{0};
};
/// The calling thread's stable shard index in [0, NumShards).
unsigned metricShardIndex();
constexpr unsigned NumMetricShards = 16;
} // namespace detail

/// Monotonic counter, sharded per thread.
class Counter {
public:
  void add(uint64_t N) {
    Shards[detail::metricShardIndex()].V.fetch_add(N,
                                                   std::memory_order_relaxed);
  }
  void inc() { add(1); }
  /// Sum over shards (scrape path).
  uint64_t value() const;
  void reset();

private:
  detail::MetricShard Shards[detail::NumMetricShards];
};

/// Point-in-time value (e.g. rows resident, current rung).
class Gauge {
public:
  void set(int64_t V) { Val.store(V, std::memory_order_relaxed); }
  int64_t value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Val{0};
};

/// Fixed-bucket histogram.  Bounds are ascending upper bounds (`le`);
/// one implicit overflow bucket catches everything above the last bound.
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> BucketBounds);
  void observe(uint64_t V);
  uint64_t count() const;
  uint64_t sum() const;
  /// Cumulative-free per-bucket counts; size() == bounds().size() + 1.
  std::vector<uint64_t> bucketCounts() const;
  const std::vector<uint64_t> &bounds() const { return Bounds; }
  void reset();

private:
  std::vector<uint64_t> Bounds;
  std::vector<std::atomic<uint64_t>> Buckets; // Bounds.size() + 1
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
};

/// Looks up or registers a metric by name.  Names are dot-separated
/// `stage.metric` (see docs/OBSERVABILITY.md); first registration wins
/// (for histograms, later bound lists are ignored).  The references stay
/// valid for the life of the process.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name,
                     std::vector<uint64_t> BucketBounds);

/// Millisecond latency bounds shared by the stage histograms.
inline std::vector<uint64_t> latencyBucketsMillis() {
  return {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000};
}

/// Deterministic point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string Name;
    std::vector<uint64_t> Bounds;
    std::vector<uint64_t> BucketCounts; // Bounds.size() + 1 (overflow last)
    uint64_t Count = 0;
    uint64_t Sum = 0;
  };
  std::vector<std::pair<std::string, uint64_t>> Counters; // name-sorted
  std::vector<std::pair<std::string, int64_t>> Gauges;    // name-sorted
  std::vector<HistogramValue> Histograms;                 // name-sorted

  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
  std::string toJson(int Indent = 0) const;
};

MetricsSnapshot snapshotMetrics();

/// Zeroes every registered metric (handles stay valid).
void resetMetrics();

} // namespace stcfa

#endif // STCFA_SUPPORT_METRICS_H
