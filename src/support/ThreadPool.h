//===-- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool (`std::thread` + one work queue) for
/// sharding batched read-only queries.  One blocking entry point:
/// `parallelFor(NumTasks, Fn)` runs `Fn(Worker, Task)` for every task
/// index.  `Worker` is a stable lane index in `[0, size())`, so callers
/// can hand each lane its own scratch state (per-thread epoch/stamp
/// vectors) and run lock-free over shared immutable data.
///
/// The calling thread participates as worker 0, so a pool of size `N`
/// spawns `N - 1` background threads and `parallelFor` makes progress
/// even on a single-core machine; a pool of size 1 spawns no threads and
/// runs everything inline.
///
/// Tasks are claimed through one atomic cursor whose high half carries
/// the batch generation: a claim can only succeed against the batch it
/// was issued for, so a worker waking late (or holding a stale task
/// function) simply observes a generation mismatch and goes back to
/// sleep — it can never run a new batch's task with an old function.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_THREADPOOL_H
#define STCFA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stcfa {

/// Fixed-size pool of worker threads with a single blocking fan-out.
class ThreadPool {
public:
  /// Creates a pool of logical size \p Size (>= 1): the caller plus
  /// `Size - 1` background threads.
  explicit ThreadPool(unsigned Size) : Size(Size ? Size : 1) {
    Workers.reserve(this->Size - 1);
    for (unsigned W = 1; W != this->Size; ++W)
      Workers.emplace_back([this, W] { workerLoop(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ShuttingDown = true;
    }
    WorkReady.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  /// Logical worker count (including the calling thread).
  unsigned size() const { return Size; }

  /// Runs `Fn(Worker, Task)` for every `Task` in `[0, NumTasks)`, then
  /// returns.  Tasks are claimed dynamically; `Worker` identifies the
  /// executing lane (0 = the calling thread).  Not reentrant.
  void parallelFor(size_t NumTasks,
                   const std::function<void(unsigned, size_t)> &Fn) {
    if (NumTasks == 0)
      return;
    if (Size == 1 || NumTasks == 1) {
      for (size_t T = 0; T != NumTasks; ++T)
        Fn(0, T);
      return;
    }
    assert(NumTasks < (uint64_t(1) << 32) && "task count packs into 32 bits");
    uint64_t Gen;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Pending == 0 && "parallelFor is not reentrant");
      Task = &Fn;
      Total = static_cast<uint32_t>(NumTasks);
      Pending = NumTasks;
      Gen = ++Generation;
      Cursor.store(Gen << 32, std::memory_order_release);
    }
    WorkReady.notify_all();
    runTasks(0, Fn, Total, Gen);
    std::unique_lock<std::mutex> Lock(Mutex);
    AllDone.wait(Lock, [this] { return Pending == 0; });
    Task = nullptr;
  }

private:
  /// Claims and runs tasks of batch \p Gen until it drains (or a newer
  /// batch supersedes it, which cannot happen while this batch has
  /// unclaimed tasks — `Pending` keeps `parallelFor` blocked).
  void runTasks(unsigned Worker, const std::function<void(unsigned, size_t)> &Fn,
                uint32_t Tot, uint64_t Gen) {
    size_t Done = 0;
    const uint64_t GenBits = (Gen & 0xffffffffull) << 32;
    uint64_t C = Cursor.load(std::memory_order_acquire);
    while ((C & 0xffffffff00000000ull) == GenBits) {
      uint32_t T = static_cast<uint32_t>(C);
      if (T >= Tot)
        break;
      if (Cursor.compare_exchange_weak(C, C + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        Fn(Worker, T);
        ++Done;
        C = Cursor.load(std::memory_order_acquire);
      }
    }
    if (Done) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Pending -= Done;
      if (Pending == 0)
        AllDone.notify_all();
    }
  }

  void workerLoop(unsigned Worker) {
    uint64_t SeenGeneration = 0;
    for (;;) {
      const std::function<void(unsigned, size_t)> *Fn;
      uint32_t Tot;
      uint64_t Gen;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        WorkReady.wait(Lock, [&] {
          return ShuttingDown || Generation != SeenGeneration;
        });
        if (ShuttingDown)
          return;
        SeenGeneration = Generation;
        if (Pending == 0)
          continue; // batch already drained
        Fn = Task;
        Tot = Total;
        Gen = Generation;
      }
      runTasks(Worker, *Fn, Tot, Gen);
    }
  }

  unsigned Size;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkReady, AllDone;
  const std::function<void(unsigned, size_t)> *Task = nullptr;
  uint32_t Total = 0;
  size_t Pending = 0;
  uint64_t Generation = 0;
  bool ShuttingDown = false;

  /// High 32 bits: batch generation (mod 2^32); low 32 bits: next
  /// unclaimed task index.
  std::atomic<uint64_t> Cursor{0};
};

} // namespace stcfa

#endif // STCFA_SUPPORT_THREADPOOL_H
