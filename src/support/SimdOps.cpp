//===-- support/SimdOps.cpp - Runtime-dispatched bitset row ops -----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/SimdOps.h"

#include <bit>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define STCFA_SIMD_X86 1
#include <immintrin.h>
#else
#define STCFA_SIMD_X86 0
#endif

using namespace stcfa;
using namespace stcfa::simd;

//===----------------------------------------------------------------------===//
// Scalar reference loops
//===----------------------------------------------------------------------===//

void simd::orWordsScalar(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  for (size_t I = 0; I != Words; ++I)
    Dst[I] |= Src[I];
}

uint64_t simd::popcountWordsScalar(const uint64_t *Src, size_t Words) {
  uint64_t C = 0;
  for (size_t I = 0; I != Words; ++I)
    C += static_cast<uint64_t>(std::popcount(Src[I]));
  return C;
}

//===----------------------------------------------------------------------===//
// Vector paths (x86 only; per-function target attributes keep the rest
// of the build baseline-portable)
//===----------------------------------------------------------------------===//

#if STCFA_SIMD_X86

namespace {

__attribute__((target("avx2"))) void orWordsAvx2(uint64_t *Dst,
                                                 const uint64_t *Src,
                                                 size_t Words) {
  size_t I = 0;
  // Two 256-bit lanes per iteration: 8 words in flight covers a whole
  // cache line, and the independent ORs dual-issue.
  for (; I + 8 <= Words; I += 8) {
    __m256i A = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i B =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I + 4));
    __m256i DA = _mm256_loadu_si256(reinterpret_cast<__m256i *>(Dst + I));
    __m256i DB = _mm256_loadu_si256(reinterpret_cast<__m256i *>(Dst + I + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_or_si256(DA, A));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I + 4),
                        _mm256_or_si256(DB, B));
  }
  for (; I + 4 <= Words; I += 4) {
    __m256i A = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i D = _mm256_loadu_si256(reinterpret_cast<__m256i *>(Dst + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_or_si256(D, A));
  }
  for (; I != Words; ++I) // the non-multiple-of-4 tail
    Dst[I] |= Src[I];
}

__attribute__((target("avx512f"))) void orWordsAvx512(uint64_t *Dst,
                                                      const uint64_t *Src,
                                                      size_t Words) {
  size_t I = 0;
  for (; I + 8 <= Words; I += 8) {
    __m512i A = _mm512_loadu_si512(Src + I);
    __m512i D = _mm512_loadu_si512(Dst + I);
    _mm512_storeu_si512(Dst + I, _mm512_or_si512(D, A));
  }
  if (I != Words) {
    // Masked epilogue: one masked 512-bit OR covers any tail length, so
    // a non-multiple-of-8 row costs one extra instruction, not a scalar
    // loop.
    __mmask8 M = static_cast<__mmask8>((1u << (Words - I)) - 1);
    __m512i A = _mm512_maskz_loadu_epi64(M, Src + I);
    __m512i D = _mm512_maskz_loadu_epi64(M, Dst + I);
    _mm512_mask_storeu_epi64(Dst + I, M, _mm512_or_si512(D, A));
  }
}

/// AVX2 has no vector popcount; the win over the plain loop is just
/// unrolling around the scalar POPCNT unit (still bit-exact, still part
/// of the dispatched seam so the tests cover it).
__attribute__((target("popcnt"))) uint64_t popcountWordsAvx2(
    const uint64_t *Src, size_t Words) {
  uint64_t C0 = 0, C1 = 0, C2 = 0, C3 = 0;
  size_t I = 0;
  for (; I + 4 <= Words; I += 4) {
    C0 += static_cast<uint64_t>(std::popcount(Src[I]));
    C1 += static_cast<uint64_t>(std::popcount(Src[I + 1]));
    C2 += static_cast<uint64_t>(std::popcount(Src[I + 2]));
    C3 += static_cast<uint64_t>(std::popcount(Src[I + 3]));
  }
  for (; I != Words; ++I)
    C0 += static_cast<uint64_t>(std::popcount(Src[I]));
  return C0 + C1 + C2 + C3;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t
popcountWordsVpopcnt(const uint64_t *Src, size_t Words) {
  __m512i Acc = _mm512_setzero_si512();
  size_t I = 0;
  for (; I + 8 <= Words; I += 8)
    Acc = _mm512_add_epi64(Acc, _mm512_popcnt_epi64(_mm512_loadu_si512(Src + I)));
  if (I != Words) {
    __mmask8 M = static_cast<__mmask8>((1u << (Words - I)) - 1);
    Acc = _mm512_add_epi64(
        Acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(M, Src + I)));
  }
  // Horizontal sum by hand: _mm512_reduce_add_epi64 expands through
  // _mm256_undefined_si256, which GCC's -Werror=uninitialized rejects.
  alignas(64) uint64_t Lanes[8];
  _mm512_store_si512(Lanes, Acc);
  return Lanes[0] + Lanes[1] + Lanes[2] + Lanes[3] + Lanes[4] + Lanes[5] +
         Lanes[6] + Lanes[7];
}

bool cpuHasAvx2() { return __builtin_cpu_supports("avx2"); }
bool cpuHasAvx512() { return __builtin_cpu_supports("avx512f"); }
bool cpuHasVpopcnt() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vpopcntdq");
}

} // namespace

#else // !STCFA_SIMD_X86

namespace {
bool cpuHasAvx2() { return false; }
bool cpuHasAvx512() { return false; }
bool cpuHasVpopcnt() { return false; }
} // namespace

#endif // STCFA_SIMD_X86

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

namespace {

struct Dispatch {
  Path P;
  void (*Or)(uint64_t *, const uint64_t *, size_t);
  uint64_t (*Pop)(const uint64_t *, size_t);
};

bool forceScalar() {
  const char *E = std::getenv("STCFA_FORCE_SCALAR");
  return E && *E && !(E[0] == '0' && E[1] == '\0');
}

Dispatch resolveDispatch() {
  Dispatch D{Path::Scalar, &simd::orWordsScalar, &simd::popcountWordsScalar};
  if (forceScalar())
    return D;
#if STCFA_SIMD_X86
  if (cpuHasAvx512()) {
    D.P = Path::Avx512;
    D.Or = &orWordsAvx512;
    D.Pop = cpuHasVpopcnt() ? &popcountWordsVpopcnt : &popcountWordsAvx2;
    return D;
  }
  if (cpuHasAvx2()) {
    D.P = Path::Avx2;
    D.Or = &orWordsAvx2;
    D.Pop = &popcountWordsAvx2;
    return D;
  }
#endif
  return D;
}

/// Resolved once per process; function-local static makes the first
/// concurrent call safe.
const Dispatch &dispatch() {
  static const Dispatch D = resolveDispatch();
  return D;
}

} // namespace

const char *simd::pathName(Path P) {
  switch (P) {
  case Path::Scalar:
    return "scalar";
  case Path::Avx2:
    return "avx2";
  case Path::Avx512:
    return "avx512";
  }
  return "scalar";
}

Path simd::activePath() { return dispatch().P; }

bool simd::pathSupported(Path P) {
  switch (P) {
  case Path::Scalar:
    return true;
  case Path::Avx2:
    return cpuHasAvx2();
  case Path::Avx512:
    return cpuHasAvx512();
  }
  return false;
}

void simd::orWordsDispatch(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  dispatch().Or(Dst, Src, Words);
}

uint64_t simd::popcountWordsDispatch(const uint64_t *Src, size_t Words) {
  return dispatch().Pop(Src, Words);
}

void simd::orWordsPath(Path P, uint64_t *Dst, const uint64_t *Src,
                       size_t Words) {
#if STCFA_SIMD_X86
  if (P == Path::Avx512)
    return orWordsAvx512(Dst, Src, Words);
  if (P == Path::Avx2)
    return orWordsAvx2(Dst, Src, Words);
#else
  (void)P;
#endif
  orWordsScalar(Dst, Src, Words);
}

uint64_t simd::popcountWordsPath(Path P, const uint64_t *Src, size_t Words) {
#if STCFA_SIMD_X86
  if (P == Path::Avx512)
    return cpuHasVpopcnt() ? popcountWordsVpopcnt(Src, Words)
                           : popcountWordsAvx2(Src, Words);
  if (P == Path::Avx2)
    return popcountWordsAvx2(Src, Words);
#else
  (void)P;
#endif
  return popcountWordsScalar(Src, Words);
}
