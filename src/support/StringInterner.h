//===-- support/StringInterner.h - Pooled string identities -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings so identifiers can be compared and hashed as integers.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_STRINGINTERNER_H
#define STCFA_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stcfa {

/// An interned string; valid only together with the interner it came from.
class Symbol {
public:
  constexpr Symbol() : Value(~0u) {}
  constexpr explicit Symbol(uint32_t V) : Value(V) {}

  constexpr bool isValid() const { return Value != ~0u; }
  constexpr uint32_t index() const { return Value; }

  friend constexpr bool operator==(Symbol A, Symbol B) {
    return A.Value == B.Value;
  }
  friend constexpr bool operator!=(Symbol A, Symbol B) {
    return A.Value != B.Value;
  }
  friend constexpr bool operator<(Symbol A, Symbol B) {
    return A.Value < B.Value;
  }

private:
  uint32_t Value;
};

/// Owns a pool of unique strings and maps them to dense `Symbol`s.
class StringInterner {
public:
  /// Interns \p Text, returning the existing symbol if already present.
  Symbol intern(std::string_view Text) {
    auto It = Index.find(std::string(Text));
    if (It != Index.end())
      return It->second;
    Symbol S(static_cast<uint32_t>(Pool.size()));
    Pool.emplace_back(Text);
    Index.emplace(Pool.back(), S);
    return S;
  }

  /// Returns the text of \p S.
  std::string_view text(Symbol S) const {
    assert(S.isValid() && S.index() < Pool.size() && "unknown symbol");
    return Pool[S.index()];
  }

  /// Number of distinct interned strings.
  size_t size() const { return Pool.size(); }

private:
  std::vector<std::string> Pool;
  std::unordered_map<std::string, Symbol> Index;
};

} // namespace stcfa

namespace std {
template <> struct hash<stcfa::Symbol> {
  size_t operator()(stcfa::Symbol S) const {
    return static_cast<size_t>(S.index());
  }
};
} // namespace std

#endif // STCFA_SUPPORT_STRINGINTERNER_H
