//===-- support/Timer.h - Wall-clock timing helpers -------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harnesses to report
/// per-phase times (build phase vs. close phase vs. query phase), mirroring
/// the columns of the paper's Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_TIMER_H
#define STCFA_SUPPORT_TIMER_H

#include <chrono>

namespace stcfa {

/// Measures elapsed wall-clock time from construction (or `reset`).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last `reset`.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or the last `reset`.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_TIMER_H
