//===-- support/Status.h - Recoverable error codes --------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recoverable error reporting for the analysis pipeline.  The project is
/// exception-free (diagnostics for front-end errors, and — before this
/// layer — assert-and-crash for everything else), so every fallible
/// pipeline stage returns or records a `Status`: the close phase under a
/// node/edge/wall-clock budget, freezing, batched queries under a
/// deadline, and the hybrid degradation ladder all report through it.
///
/// A `Status` is a small value type: a code plus an optional message.
/// `Status::ok()` is the success singleton; failures carry a
/// human-readable reason (`"close phase exceeded 12ms deadline"`).  Codes
/// deliberately mirror the common RPC vocabulary so driver exit codes and
/// machine-readable degradation reports can map 1:1.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_STATUS_H
#define STCFA_SUPPORT_STATUS_H

#include <cstdint>
#include <string>
#include <utility>

namespace stcfa {

/// Outcome classification for fallible pipeline stages.
enum class StatusCode : uint8_t {
  Ok = 0,
  /// A cooperative cancellation token was triggered.
  Cancelled,
  /// A wall-clock deadline expired before the stage finished.
  DeadlineExceeded,
  /// A node/edge budget (or other countable resource) was exhausted.
  ResourceExhausted,
  /// An allocation failed (real or injected); the stage rolled back.
  OutOfMemory,
  /// The stage was invoked on an object in the wrong state (e.g.
  /// freezing an aborted graph, querying before `close()`).
  FailedPrecondition,
  /// Caller-supplied configuration is inconsistent or out of range.
  InvalidArgument,
  /// A bug: an invariant the stage relies on did not hold.
  Internal,
};

/// Stable lower-case name for a code (degradation reports, logs).
inline const char *statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::Cancelled:
    return "cancelled";
  case StatusCode::DeadlineExceeded:
    return "deadline-exceeded";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  case StatusCode::OutOfMemory:
    return "out-of-memory";
  case StatusCode::FailedPrecondition:
    return "failed-precondition";
  case StatusCode::InvalidArgument:
    return "invalid-argument";
  case StatusCode::Internal:
    return "internal";
  }
  return "unknown";
}

/// A code plus an optional human-readable message.
class Status {
public:
  /// Default-constructed statuses are success.
  Status() = default;
  Status(StatusCode Code, std::string Message = {})
      : Code(Code), Msg(std::move(Message)) {}

  static Status ok() { return Status(); }
  static Status cancelled(std::string M = "cancelled") {
    return {StatusCode::Cancelled, std::move(M)};
  }
  static Status deadlineExceeded(std::string M = "deadline exceeded") {
    return {StatusCode::DeadlineExceeded, std::move(M)};
  }
  static Status resourceExhausted(std::string M = "resource exhausted") {
    return {StatusCode::ResourceExhausted, std::move(M)};
  }
  static Status outOfMemory(std::string M = "allocation failed") {
    return {StatusCode::OutOfMemory, std::move(M)};
  }
  static Status failedPrecondition(std::string M = "failed precondition") {
    return {StatusCode::FailedPrecondition, std::move(M)};
  }
  static Status invalidArgument(std::string M = "invalid argument") {
    return {StatusCode::InvalidArgument, std::move(M)};
  }
  static Status internal(std::string M = "internal error") {
    return {StatusCode::Internal, std::move(M)};
  }

  bool isOk() const { return Code == StatusCode::Ok; }
  explicit operator bool() const { return isOk(); }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// `code-name: message` (or just the code name).
  std::string toString() const {
    std::string Out = statusCodeName(Code);
    if (!Msg.empty()) {
      Out += ": ";
      Out += Msg;
    }
    return Out;
  }

  friend bool operator==(const Status &A, StatusCode C) {
    return A.Code == C;
  }
  friend bool operator==(StatusCode C, const Status &A) {
    return A.Code == C;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Msg;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_STATUS_H
