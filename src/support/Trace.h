//===-- support/Trace.h - Stage-level tracing spans -------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-overhead-when-disabled tracing for the analysis pipeline.  Stages
/// open an RAII `Span` at their boundary (close phase, freeze, condense,
/// one per kernel level, one per query-batch lane, one per hybrid rung)
/// and may attach a handful of integer arguments plus one string argument
/// (typically a `statusCodeName()` cause).  Completed spans carry a
/// monotonic start timestamp, duration, the recording thread, and a link
/// to the enclosing span on the same thread; `writeChromeTrace()` dumps
/// everything in the Chrome `chrome://tracing` / Perfetto JSON array
/// format.
///
/// Gating mirrors FaultInjection:
///
///  * `STCFA_TRACING == 0` — `Span` is an empty struct, every call is an
///    inline no-op, and the whole facility folds away at compile time.
///  * `STCFA_TRACING == 1` (this repo's default, so tier-1 ctest
///    exercises the layer) — a span while collection is *disabled* costs
///    one relaxed atomic load in the constructor and a branch in the
///    destructor; no buffer is touched and nothing allocates
///    (`traceAllocationCount()` is the test hook for that claim).
///
/// Collection is enabled at runtime (`setTracingEnabled(true)`), by the
/// driver when `--trace-json=` is given, or by tests.  Span names and
/// argument keys must be string literals (or otherwise outlive the trace)
/// — the buffer stores the pointers, which is what keeps recording cheap.
///
/// Spans mark *stage* boundaries: per level, per component batch, per
/// lane shard.  Never open one inside a per-edge or per-word loop; that
/// is what the Metrics counters are for.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_TRACE_H
#define STCFA_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef STCFA_TRACING
#define STCFA_TRACING 0
#endif

namespace stcfa {

/// True when tracing is compiled in.
constexpr bool tracingCompiledIn() { return STCFA_TRACING != 0; }

/// A completed event as tests and exporters see it.  Name/keys are copied
/// into std::string here, so snapshots outlive everything.
struct TraceEventView {
  std::string Name;
  char Phase = 'X';    ///< 'X' complete span, 'i' instant
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Tid = 0;    ///< dense per-process trace thread id
  uint64_t Seq = 0;    ///< unique event id (allocation order)
  uint64_t Parent = 0; ///< Seq of the enclosing span on this thread, 0 = root
  std::vector<std::pair<std::string, uint64_t>> Args;
  std::string StrKey;  ///< empty when no string argument was attached
  std::string StrVal;
};

#if STCFA_TRACING

/// Runtime master switch.  Off by default; flipping it on/off is safe at
/// any quiescent point (tests, driver startup).
void setTracingEnabled(bool On);
bool tracingEnabled();

/// Discards all recorded events (buffer capacity is retained, so a
/// clear-then-record cycle does not count as an allocation).
void clearTraceEvents();

/// Number of heap allocations the trace layer has performed since process
/// start (buffer registration + vector growth).  Monotonic; tests assert
/// the delta is zero across a disabled-mode workload.
uint64_t traceAllocationCount();

/// All events recorded so far, across threads, in stable (Seq) order.
std::vector<TraceEventView> snapshotTraceEvents();

/// The events as a Chrome-tracing JSON array.
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path; false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Records a zero-duration instant event (e.g. a rung transition or a
/// kernel→BFS fallback), with an optional cause string and integer arg.
void traceInstant(const char *Name);
void traceInstant(const char *Name, const char *Key, const char *Val);
void traceInstant(const char *Name, const char *Key, const char *Val,
                  const char *IntKey, uint64_t IntVal);

/// RAII span.  Construct at a stage boundary; attach args before the
/// scope closes.  Inactive (when collection is disabled) spans ignore
/// args and record nothing.
class Span {
public:
  explicit Span(const char *SpanName);
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches an integer argument (up to 4 per span; extras are dropped).
  void arg(const char *Key, uint64_t Value);
  /// Attaches the span's single string argument (last call wins).
  void arg(const char *Key, const char *Value);

private:
  const char *Name = nullptr; ///< nullptr == inactive
  uint64_t StartNs = 0;
  uint64_t Seq = 0;
  uint64_t Parent = 0;
  uint32_t NumArgs = 0;
  const char *ArgKeys[4] = {};
  uint64_t ArgVals[4] = {};
  const char *StrKey = nullptr;
  const char *StrVal = nullptr;
};

#else // !STCFA_TRACING

inline void setTracingEnabled(bool) {}
inline constexpr bool tracingEnabled() { return false; }
inline void clearTraceEvents() {}
inline constexpr uint64_t traceAllocationCount() { return 0; }
inline std::vector<TraceEventView> snapshotTraceEvents() { return {}; }
inline std::string chromeTraceJson() { return "[]"; }
bool writeChromeTrace(const std::string &Path); // writes "[]"
inline void traceInstant(const char *) {}
inline void traceInstant(const char *, const char *, const char *) {}
inline void traceInstant(const char *, const char *, const char *,
                         const char *, uint64_t) {}

class Span {
public:
  explicit Span(const char *) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  void arg(const char *, uint64_t) {}
  void arg(const char *, const char *) {}
};

#endif // STCFA_TRACING

} // namespace stcfa

#endif // STCFA_SUPPORT_TRACE_H
