//===-- support/Deadline.h - Deadlines and cancellation ---------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock deadlines and cooperative cancellation for the resource
/// governor.  Long-running stages (the close phase, freezing, batched
/// queries, the hybrid ladder) poll both at coarse-grained checkpoints —
/// between worklist strides, queries, or shards — never inside the hot
/// per-edge DFS loops, so the governed pipeline costs nothing on the
/// point-query path.
///
///   * `Deadline` is a monotonic-clock (`steady_clock`) time point.
///     `Deadline::infinite()` never expires and is the default
///     everywhere, so ungoverned callers keep their existing behaviour;
///     `expired()` on it never reads the clock.
///   * `CancellationToken` is a copyable handle on a shared atomic flag.
///     A default-constructed token is *unarmed* (no allocation, never
///     cancelled); `CancellationToken::create()` arms one.  Any copy may
///     `requestCancel()`; all copies observe it.  Polling an unarmed
///     token is a null check.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_DEADLINE_H
#define STCFA_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <memory>

namespace stcfa {

/// A monotonic-clock deadline.  Value type; pass by value or const ref.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// The default deadline never expires.
  Deadline() = default;

  /// A deadline \p Ms milliseconds from now.
  static Deadline afterMillis(int64_t Ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(Ms));
  }

  /// The never-expiring deadline.
  static Deadline infinite() { return Deadline(); }

  bool isInfinite() const { return !Finite; }

  /// True once the clock passed the deadline.  Never reads the clock for
  /// an infinite deadline.
  bool expired() const { return Finite && Clock::now() >= At; }

  /// Milliseconds until expiry (clamped at 0); a large positive value
  /// for the infinite deadline.
  int64_t remainingMillis() const {
    if (!Finite)
      return INT64_MAX / 2;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        At - Clock::now());
    return Left.count() < 0 ? 0 : Left.count();
  }

private:
  explicit Deadline(Clock::time_point At) : At(At), Finite(true) {}

  Clock::time_point At{};
  bool Finite = false;
};

/// Copyable handle on a shared cancellation flag.  Cooperative: stages
/// poll `cancelled()` at checkpoints and unwind with `Status::Cancelled`.
class CancellationToken {
public:
  /// Unarmed token: never cancelled, no allocation.
  CancellationToken() = default;

  /// An armed token whose copies all share one flag.
  static CancellationToken create() {
    CancellationToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  bool armed() const { return Flag != nullptr; }

  /// Requests cancellation; every copy of this token observes it.  No-op
  /// on an unarmed token.
  void requestCancel() const {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }

  /// True once any copy requested cancellation.
  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_DEADLINE_H
