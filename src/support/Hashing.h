//===-- support/Hashing.h - Hash utilities and u64 hash set -----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash combining plus a compact open-addressing set of non-zero 64-bit
/// keys.  The subtransitive graph stores each edge as a packed
/// `(source << 32) | target` key; edge deduplication is the hottest
/// operation in the close phase, so it gets a dedicated structure instead
/// of `std::unordered_set`.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_HASHING_H
#define STCFA_SUPPORT_HASHING_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stcfa {

/// Mixes \p X with an avalanching finalizer (splitmix64 style).
inline uint64_t hashU64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines two hash values.
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  return hashU64(A ^ (B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2)));
}

/// Deterministic hash over a byte range; used for snapshot section
/// checksums and content-addressed cache keys, where a process- and
/// platform-stable hash matters and cryptographic strength does not.
///
/// The bulk loop runs four independent xor-multiply lanes over 32-byte
/// strides, so the multiplies pipeline instead of serializing — snapshot
/// loads checksum every mapped byte, which puts this on the warm-start
/// critical path (docs/SNAPSHOT.md); the byte-serial FNV-1a it replaced
/// capped validation near 1 GB/s.  The tail and sub-32-byte inputs use
/// plain FNV-1a.  Little-endian word loads are part of the format
/// contract, like the header's endianness tag.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *P = static_cast<const unsigned char *>(Data);
  constexpr uint64_t M = 0x9e3779b97f4a7c15ULL;
  uint64_t H0 = Seed, H1 = Seed ^ 0xff51afd7ed558ccdULL,
           H2 = Seed ^ 0xc4ceb9fe1a85ec53ULL,
           H3 = Seed ^ 0x2545f4914f6cdd1dULL;
  size_t I = 0;
  for (; I + 32 <= Size; I += 32) {
    uint64_t W0, W1, W2, W3;
    __builtin_memcpy(&W0, P + I, 8);
    __builtin_memcpy(&W1, P + I + 8, 8);
    __builtin_memcpy(&W2, P + I + 16, 8);
    __builtin_memcpy(&W3, P + I + 24, 8);
    H0 = (H0 ^ W0) * M;
    H1 = (H1 ^ W1) * M;
    H2 = (H2 ^ W2) * M;
    H3 = (H3 ^ W3) * M;
  }
  uint64_t H = hashCombine(hashCombine(H0, H1), hashCombine(H2, H3));
  for (; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return hashU64(H);
}

/// Open-addressing hash set of *non-zero* 64-bit keys.
///
/// Key 0 is reserved as the empty-slot marker and ~0 as the deletion
/// tombstone; callers must bias their keys so that neither occurs (edge
/// keys add 1 to each endpoint and stay far below 2^63).  Erasure exists
/// for the delta layer's edge retraction; probe chains skip tombstones,
/// rebuilds drop them, and the load-factor check counts them so a
/// churn-heavy table still resizes.
class U64Set {
public:
  U64Set() : Slots(InitialCapacity, 0) {}

  /// Inserts \p Key; returns true iff it was not already present.
  bool insert(uint64_t Key) {
    assert(Key != 0 && Key != Tombstone && "key 0 / ~0 are reserved");
    if ((Used + 1) * 4 >= Slots.size() * 3)
      grow();
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
    size_t Reuse = SIZE_MAX;
    while (Slots[I] != 0) {
      if (Slots[I] == Key)
        return false;
      if (Slots[I] == Tombstone && Reuse == SIZE_MAX)
        Reuse = I;
      I = (I + 1) & Mask;
    }
    if (Reuse != SIZE_MAX) {
      Slots[Reuse] = Key; // reclaim the tombstone; Used already counts it
    } else {
      Slots[I] = Key;
      ++Used;
    }
    ++Count;
    return true;
  }

  /// True iff \p Key is present.
  bool contains(uint64_t Key) const {
    assert(Key != 0 && Key != Tombstone && "key 0 / ~0 are reserved");
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
    while (Slots[I] != 0) {
      if (Slots[I] == Key)
        return true;
      I = (I + 1) & Mask;
    }
    return false;
  }

  /// Removes \p Key; returns true iff it was present.  The slot becomes a
  /// tombstone so longer probe chains stay intact.
  bool erase(uint64_t Key) {
    assert(Key != 0 && Key != Tombstone && "key 0 / ~0 are reserved");
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
    while (Slots[I] != 0) {
      if (Slots[I] == Key) {
        Slots[I] = Tombstone;
        --Count;
        return true;
      }
      I = (I + 1) & Mask;
    }
    return false;
  }

  /// Number of stored keys.
  size_t size() const { return Count; }

private:
  static constexpr size_t InitialCapacity = 64;
  static constexpr uint64_t Tombstone = ~0ULL;

  void grow() {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, 0);
    size_t Mask = Slots.size() - 1;
    for (uint64_t Key : Old) {
      if (Key == 0 || Key == Tombstone)
        continue;
      size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
      while (Slots[I] != 0)
        I = (I + 1) & Mask;
      Slots[I] = Key;
    }
    Used = Count;
  }

  std::vector<uint64_t> Slots;
  size_t Count = 0; // live keys
  size_t Used = 0;  // live keys + tombstones (load-factor accounting)
};

/// Open-addressing hash map from *non-zero* 64-bit keys to 32-bit values.
/// Same conventions as `U64Set`; used for node hash-consing where
/// `std::unordered_map` overhead would dominate graph construction.
class U64Map {
public:
  U64Map() : Keys(InitialCapacity, 0), Values(InitialCapacity, 0) {}

  /// Returns the slot for \p Key, inserting \p Fallback if absent.
  /// The reference stays valid until the next insertion.
  uint32_t &lookupOrInsert(uint64_t Key, uint32_t Fallback) {
    assert(Key != 0 && "key 0 is reserved");
    if ((Count + 1) * 4 >= Keys.size() * 3)
      grow();
    size_t Mask = Keys.size() - 1;
    size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
    while (Keys[I] != 0) {
      if (Keys[I] == Key)
        return Values[I];
      I = (I + 1) & Mask;
    }
    Keys[I] = Key;
    Values[I] = Fallback;
    ++Count;
    return Values[I];
  }

  /// Returns the value for \p Key or \p Default when absent.
  uint32_t lookup(uint64_t Key, uint32_t Default) const {
    assert(Key != 0 && "key 0 is reserved");
    size_t Mask = Keys.size() - 1;
    size_t I = static_cast<size_t>(hashU64(Key)) & Mask;
    while (Keys[I] != 0) {
      if (Keys[I] == Key)
        return Values[I];
      I = (I + 1) & Mask;
    }
    return Default;
  }

  size_t size() const { return Count; }

private:
  static constexpr size_t InitialCapacity = 64;

  void grow() {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldValues = std::move(Values);
    Keys.assign(OldKeys.size() * 2, 0);
    Values.assign(OldValues.size() * 2, 0);
    size_t Mask = Keys.size() - 1;
    for (size_t S = 0; S != OldKeys.size(); ++S) {
      if (OldKeys[S] == 0)
        continue;
      size_t I = static_cast<size_t>(hashU64(OldKeys[S])) & Mask;
      while (Keys[I] != 0)
        I = (I + 1) & Mask;
      Keys[I] = OldKeys[S];
      Values[I] = OldValues[S];
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Values;
  size_t Count = 0;
};

} // namespace stcfa

#endif // STCFA_SUPPORT_HASHING_H
