//===-- support/Ids.h - Strongly typed dense identifiers --------*- C++ -*-===//
//
// Part of the stcfa project: a reproduction of Heintze & McAllester,
// "Linear-time Subtransitive Control Flow Analysis", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed wrappers around dense `uint32_t` indices.  Every entity in
/// the system (expressions, variables, labels, graph nodes, types, ...) is
/// identified by a dense index into a per-module table; the `Id<Tag>`
/// template prevents accidentally mixing index spaces while keeping the
/// zero-cost representation.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_IDS_H
#define STCFA_SUPPORT_IDS_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>

namespace stcfa {

/// A strongly typed dense identifier.
///
/// `Tag` is an arbitrary (usually incomplete) type used only to distinguish
/// index spaces at compile time.  The value `~0u` is reserved as the invalid
/// sentinel, available via `Id::invalid()`.
template <typename Tag> class Id {
public:
  constexpr Id() : Value(Sentinel) {}
  constexpr explicit Id(uint32_t V) : Value(V) { assert(V != Sentinel); }

  /// Returns the reserved invalid identifier.
  static constexpr Id invalid() { return Id(SentinelInit{}); }

  /// True unless this is the invalid sentinel.
  constexpr bool isValid() const { return Value != Sentinel; }

  /// Returns the raw index; must not be called on the invalid sentinel.
  constexpr uint32_t index() const {
    assert(isValid() && "indexing an invalid Id");
    return Value;
  }

  friend constexpr bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend constexpr bool operator<(Id A, Id B) { return A.Value < B.Value; }

private:
  struct SentinelInit {};
  constexpr explicit Id(SentinelInit) : Value(Sentinel) {}

  static constexpr uint32_t Sentinel = std::numeric_limits<uint32_t>::max();
  uint32_t Value;
};

struct ExprTag;
struct VarTag;
struct LabelTag;
struct TypeTag;
struct NodeTag;
struct ConTag;

/// Identifies an expression occurrence within a `Module`.
using ExprId = Id<ExprTag>;
/// Identifies a variable binder within a `Module`.
using VarId = Id<VarTag>;
/// Identifies an abstraction label (one per `fn`).
using LabelId = Id<LabelTag>;
/// Identifies an interned type within a `TypeTable`.
using TypeId = Id<TypeTag>;
/// Identifies a node of the subtransitive graph.
using NodeId = Id<NodeTag>;
/// Identifies a data constructor within a `Module`.
using ConId = Id<ConTag>;

} // namespace stcfa

namespace std {
template <typename Tag> struct hash<stcfa::Id<Tag>> {
  size_t operator()(stcfa::Id<Tag> V) const {
    return V.isValid() ? static_cast<size_t>(V.index()) + 1 : 0;
  }
};
} // namespace std

#endif // STCFA_SUPPORT_IDS_H
