//===-- support/FaultInjection.cpp - Deterministic fault points -----------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <atomic>

using namespace stcfa;

namespace {

// The central registry.  Adding a governed failure point means adding a
// row here and polling `faultFires(fault::...)` on the production
// failure branch; the fault-injection suite iterates this table.
constexpr FaultSite Sites[] = {
    {fault::CloseNodeBudget, FaultKind::Budget,
     "close phase reports the node budget exhausted"},
    {fault::CloseEdgeBudget, FaultKind::Budget,
     "close phase reports the edge budget exhausted"},
    {fault::CloseDeadline, FaultKind::Timeout,
     "close phase reports its deadline expired"},
    {fault::CloseCancel, FaultKind::Cancel,
     "close phase observes a cancellation request"},
    {fault::CloseAlloc, FaultKind::Alloc,
     "close phase reports a node-arena allocation failure"},
    {fault::FreezeDeadline, FaultKind::Timeout,
     "CSR compaction reports its deadline expired"},
    {fault::FreezeAlloc, FaultKind::Alloc,
     "CSR compaction reports an array allocation failure"},
    {fault::QueryBatchDeadline, FaultKind::Timeout,
     "a batched query observes its deadline expired between items"},
    {fault::QueryBatchCancel, FaultKind::Cancel,
     "a batched query observes a cancellation request between items"},
    {fault::KernelAlloc, FaultKind::Alloc,
     "the label-set kernel reports a level-schedule allocation failure"},
    {fault::KernelLevelCancel, FaultKind::Cancel,
     "the label-set kernel observes a cancellation request between levels"},
    {fault::KernelRowCorrupt, FaultKind::Corrupt,
     "the label-set kernel silently flips one bit in a finished row — a "
     "canary proving the differential fuzz suite can catch a wrong answer"},
    {fault::HybridSubtransitiveBudget, FaultKind::Budget,
     "the hybrid's subtransitive rung reports budget exhaustion"},
    {fault::HybridFreezeAlloc, FaultKind::Alloc,
     "the hybrid's freeze step reports an allocation failure"},
    {fault::HybridStandardDeadline, FaultKind::Timeout,
     "the hybrid's standard-CFA rung reports its deadline expired"},
    {fault::SnapshotWriteAlloc, FaultKind::Alloc,
     "the snapshot writer reports a serialization-buffer allocation failure"},
    {fault::SnapshotMapFail, FaultKind::Alloc,
     "the snapshot loader reports an mmap failure"},
    {fault::SnapshotTruncate, FaultKind::Corrupt,
     "the snapshot writer silently truncates the file's trailing bytes — a "
     "canary proving the loader rejects short files with a Status error"},
    {fault::SnapshotHeaderCorrupt, FaultKind::Corrupt,
     "the snapshot writer silently corrupts one header byte — a canary "
     "proving the loader's header validation rejects the file"},
    {fault::SnapshotCsrBitFlip, FaultKind::Corrupt,
     "the snapshot writer silently flips one bit in a CSR section after "
     "checksumming — a canary proving section checksums catch bit rot"},
    {fault::ServeAcceptAlloc, FaultKind::Alloc,
     "the daemon's request reader reports a line-buffer allocation failure"},
    {fault::ServeRequestParse, FaultKind::Alloc,
     "the daemon's request parser reports a mid-parse allocation failure"},
    {fault::ServeReplyWrite, FaultKind::Alloc,
     "the daemon's reply writer reports a serialization failure (the reply "
     "degrades to a minimal static error line)"},
    {fault::DeltaDiffAlloc, FaultKind::Alloc,
     "the edit-delta diff stage reports an allocation failure; the edit "
     "falls back to a full rebuild"},
    {fault::DeltaRecloseAbort, FaultKind::Timeout,
     "the edit-delta governed re-close reports its deadline expired; the "
     "edit falls back to a full rebuild"},
    {fault::DeltaInstallRace, FaultKind::Corrupt,
     "the daemon's edit-install generation check observes a concurrent "
     "epoch install; the edit falls back to a full reload"},
};

#if STCFA_FAULT_INJECTION
// Armed state: a pointer into `Sites` plus a countdown of polls to let
// pass before firing.  Query lanes poll concurrently, so both are
// atomics; arming happens quiescently (tests arm before running).
std::atomic<const FaultSite *> Armed{nullptr};
std::atomic<uint64_t> SkipsLeft{0};
#endif

} // namespace

std::span<const FaultSite> stcfa::registeredFaultSites() { return Sites; }

#if STCFA_FAULT_INJECTION

bool stcfa::armFault(std::string_view Name, uint64_t SkipHits) {
  for (const FaultSite &S : Sites) {
    if (S.Name == Name) {
      SkipsLeft.store(SkipHits, std::memory_order_relaxed);
      Armed.store(&S, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void stcfa::disarmFaults() {
  Armed.store(nullptr, std::memory_order_release);
}

bool stcfa::faultFires(std::string_view Name) {
  const FaultSite *S = Armed.load(std::memory_order_acquire);
  if (!S || S->Name != Name)
    return false;
  // Let the first SkipHits polls pass (deterministic mid-loop firing).
  uint64_t Left = SkipsLeft.load(std::memory_order_relaxed);
  while (Left != 0) {
    if (SkipsLeft.compare_exchange_weak(Left, Left - 1,
                                        std::memory_order_relaxed))
      return false;
  }
  return true;
}

#endif // STCFA_FAULT_INJECTION
