//===-- support/TablePrinter.cpp - Aligned text tables --------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace stcfa;

TablePrinter::TablePrinter(std::vector<std::string> Columns) {
  Rows.push_back(std::move(Columns));
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Rows.front().size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Rows.front().size(), 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::string Out;
  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C)
        Out += "  ";
      // Right-align everything but the first column; the first column is
      // typically a name.
      size_t Pad = Widths[C] - Row[C].size();
      if (C == 0) {
        Out += Row[C];
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Row[C];
      }
    }
    Out += '\n';
  };

  emitRow(Rows.front());
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total - 2, '-');
  Out += '\n';
  for (size_t R = 1; R != Rows.size(); ++R)
    emitRow(Rows[R]);
  return Out;
}

std::string TablePrinter::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TablePrinter::num(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  return Buf;
}
