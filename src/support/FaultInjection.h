//===-- support/FaultInjection.h - Deterministic fault points ---*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, compile-time-gated fault injection for the resource
/// governor.  Pipeline stages name their failure points — budget
/// exhaustion, simulated allocation failure, injected timeout or
/// cancellation — and the fault-injection test suite arms one site at a
/// time, runs the full pipeline, and asserts that the armed site degrades
/// into the documented `Status` instead of crashing.
///
/// Every site is declared once in the central registry
/// (`registeredFaultSites()`), so the test suite can iterate all of them
/// without grepping the source.  A stage polls its site with
///
/// \code
///   if (faultFires(fault::CloseNodeBudget)) { ... same path as the real
///                                             failure ... }
/// \endcode
///
/// placed on the *same branch* the organic failure takes, so injection
/// exercises the production unwind code, not a parallel test-only path.
///
/// Gating: when `STCFA_FAULT_INJECTION` is 0 (production),
/// `faultFires()` is a `constexpr false` and every check folds away at
/// compile time.  When 1 (the default for this repo, so tier-1 ctest
/// exercises the suite), a disarmed check is one relaxed atomic load —
/// and no site sits on the point-query DFS hot path anyway.
///
/// Arming is process-global and single-site (the suite runs sites one at
/// a time); `armFault(Site, SkipHits)` optionally lets the first
/// `SkipHits` polls pass, so a site inside a loop can be triggered
/// mid-stream deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_FAULTINJECTION_H
#define STCFA_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <span>
#include <string_view>

#ifndef STCFA_FAULT_INJECTION
#define STCFA_FAULT_INJECTION 0
#endif

namespace stcfa {

/// What an armed site simulates when it fires.
enum class FaultKind : uint8_t {
  Budget,    ///< a node/edge budget reports exhaustion
  Alloc,     ///< an allocation reports failure
  Timeout,   ///< a deadline reports expiry
  Cancel,    ///< a cancellation token reports cancellation
  Corrupt,   ///< a stage silently produces a wrong answer (test canary)
};

/// One registered fault point.
struct FaultSite {
  std::string_view Name;  ///< e.g. "close.node-budget"
  FaultKind Kind;
  std::string_view Description;
};

/// Site names, shared between the checks and the registry so a typo is a
/// link error rather than a silently dead site.
namespace fault {
inline constexpr std::string_view CloseNodeBudget = "close.node-budget";
inline constexpr std::string_view CloseEdgeBudget = "close.edge-budget";
inline constexpr std::string_view CloseDeadline = "close.deadline";
inline constexpr std::string_view CloseCancel = "close.cancel";
inline constexpr std::string_view CloseAlloc = "close.alloc";
inline constexpr std::string_view FreezeDeadline = "freeze.deadline";
inline constexpr std::string_view FreezeAlloc = "freeze.alloc";
inline constexpr std::string_view QueryBatchDeadline = "query.batch-deadline";
inline constexpr std::string_view QueryBatchCancel = "query.batch-cancel";
inline constexpr std::string_view KernelAlloc = "kernel.alloc";
inline constexpr std::string_view KernelLevelCancel = "kernel.level-cancel";
inline constexpr std::string_view KernelRowCorrupt = "kernel.row-corrupt";
inline constexpr std::string_view HybridSubtransitiveBudget =
    "hybrid.subtransitive-budget";
inline constexpr std::string_view HybridFreezeAlloc = "hybrid.freeze-alloc";
inline constexpr std::string_view HybridStandardDeadline =
    "hybrid.standard-deadline";
inline constexpr std::string_view SnapshotWriteAlloc = "snapshot.write-alloc";
inline constexpr std::string_view SnapshotMapFail = "snapshot.map-fail";
inline constexpr std::string_view SnapshotTruncate = "snapshot.truncate";
inline constexpr std::string_view SnapshotHeaderCorrupt =
    "snapshot.header-corrupt";
inline constexpr std::string_view SnapshotCsrBitFlip = "snapshot.csr-bit-flip";
inline constexpr std::string_view ServeAcceptAlloc = "serve.accept-alloc";
inline constexpr std::string_view ServeRequestParse = "serve.request-parse";
inline constexpr std::string_view ServeReplyWrite = "serve.reply-write";
inline constexpr std::string_view DeltaDiffAlloc = "delta.diff-alloc";
inline constexpr std::string_view DeltaRecloseAbort = "delta.reclose-abort";
inline constexpr std::string_view DeltaInstallRace = "delta.install-race";
} // namespace fault

/// All registered fault points (stable order).  Available even in
/// production builds, where no site can fire.
std::span<const FaultSite> registeredFaultSites();

/// True when fault injection is compiled in.
constexpr bool faultInjectionEnabled() { return STCFA_FAULT_INJECTION != 0; }

#if STCFA_FAULT_INJECTION

/// Arms the registered site \p Name; its first `SkipHits` polls pass,
/// then every poll fires until `disarmFaults()`.  Returns false (and
/// arms nothing) for an unregistered name.
bool armFault(std::string_view Name, uint64_t SkipHits = 0);

/// Disarms whatever is armed.
void disarmFaults();

/// Polls the site \p Name: true iff it is armed and its skip count is
/// exhausted.  Threads may poll concurrently.
bool faultFires(std::string_view Name);

#else

inline bool armFault(std::string_view, uint64_t = 0) { return false; }
inline void disarmFaults() {}
inline constexpr bool faultFires(std::string_view) { return false; }

#endif // STCFA_FAULT_INJECTION

} // namespace stcfa

#endif // STCFA_SUPPORT_FAULTINJECTION_H
