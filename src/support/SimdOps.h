//===-- support/SimdOps.h - Runtime-dispatched bitset row ops ---*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-loop primitives behind every dense label-set operation —
/// row-OR (`dst |= src`) and popcount — with one runtime dispatch:
///
///   * **scalar** — portable 64-bit loop, always compiled, always
///     correct; the reference the vector paths are tested against;
///   * **avx2** — 256-bit lanes (4 words per OR), compiled with a
///     per-function target attribute so the rest of the build stays
///     baseline-portable;
///   * **avx512** — 512-bit lanes (8 words per OR; popcount uses
///     VPOPCNTDQ where the CPU has it).
///
/// The path is resolved once per process from CPUID
/// (`__builtin_cpu_supports`) and is queryable (`activePath()`) so the
/// kernel can record it in metrics and the benches in their JSON.
/// Setting `STCFA_FORCE_SCALAR=1` in the environment pins the scalar
/// path regardless of hardware — CI runs the kernel suites twice, once
/// native and once forced, so both sides of the seam stay tested.
///
/// Hot-loop contract: rows of at most `InlineRowWords` words (the
/// common case — a 256-label program is four words) are handled by an
/// *inline* scalar loop with no call at all: at those sizes the
/// indirect call + vector setup costs more than the ORs themselves, and
/// the bit-exactness contract makes the shortcut invisible.  Wider rows
/// pay one predictable indirect call per *row*, never per word.
/// Callers guarantee nothing about alignment — the vector paths use
/// unaligned loads/stores, which on every AVX2+ part cost the same as
/// aligned ones when the data is in fact 64-byte aligned (the kernel's
/// matrix is; `DenseBitset`'s heap words usually are not).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SUPPORT_SIMDOPS_H
#define STCFA_SUPPORT_SIMDOPS_H

#include <bit>
#include <cstddef>
#include <cstdint>

namespace stcfa {
namespace simd {

/// The row-op implementations, from portable to widest.
enum class Path : uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Dot-name for metrics/bench JSON: "scalar" | "avx2" | "avx512".
const char *pathName(Path P);

/// The path every dispatched call uses: the widest one the CPU
/// supports, unless `STCFA_FORCE_SCALAR=1` pinned the scalar loop.
/// Resolved once, on first use.
Path activePath();
inline const char *activePathName() { return pathName(activePath()); }

/// True iff \p P can run on this machine (Scalar always can).  The
/// force-scalar override does not change this — it changes only what
/// `activePath()` returns — so the seam tests can still drive every
/// supported path explicitly.
bool pathSupported(Path P);

/// Rows at or below this many words bypass the dispatch entirely (see
/// the hot-loop contract above).
inline constexpr size_t InlineRowWords = 4;

/// `Dst[i] |= Src[i]` for `i < Words` — the reference loop.
void orWordsScalar(uint64_t *Dst, const uint64_t *Src, size_t Words);

/// The dispatched wide-row implementations behind `orWords` /
/// `popcountWords`; call the inline wrappers instead.
void orWordsDispatch(uint64_t *Dst, const uint64_t *Src, size_t Words);
uint64_t popcountWordsDispatch(const uint64_t *Src, size_t Words);

/// `Dst[i] |= Src[i]`; bit-exact with `orWordsScalar`.  Inline scalar
/// for short rows, dispatched (AVX-512/AVX2/scalar) beyond.
inline void orWords(uint64_t *Dst, const uint64_t *Src, size_t Words) {
  if (Words <= InlineRowWords) {
    for (size_t I = 0; I != Words; ++I)
      Dst[I] |= Src[I];
    return;
  }
  orWordsDispatch(Dst, Src, Words);
}

/// `orWords` pinned to \p P (no short-row shortcut — the seam tests
/// drive the named path on every width).  Requires `pathSupported(P)`.
void orWordsPath(Path P, uint64_t *Dst, const uint64_t *Src, size_t Words);

/// Total set bits in `Words[0..Words)` — the reference loop.
uint64_t popcountWordsScalar(const uint64_t *Src, size_t Words);

/// Exact popcount; same short-row/dispatch split as `orWords`.
inline uint64_t popcountWords(const uint64_t *Src, size_t Words) {
  if (Words <= InlineRowWords) {
    uint64_t C = 0;
    for (size_t I = 0; I != Words; ++I)
      C += static_cast<uint64_t>(std::popcount(Src[I]));
    return C;
  }
  return popcountWordsDispatch(Src, Words);
}

/// `popcountWords` pinned to \p P.  Requires `pathSupported(P)`.
uint64_t popcountWordsPath(Path P, const uint64_t *Src, size_t Words);

} // namespace simd
} // namespace stcfa

#endif // STCFA_SUPPORT_SIMDOPS_H
