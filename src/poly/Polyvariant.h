//===-- poly/Polyvariant.h - Section 7 polyvariant extension ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7: polyvariance by graph-fragment summarisation.
///
/// For each *closed*, non-recursive, let-bound abstraction, the function
/// is analysed once in isolation: a fragment graph is built over its
/// subtree, every interface path (the `dom`/`ran`/tuple-field positions of
/// the function's type tree — the paper's "critical nodes") is forced
/// demanded, and the fragment is closed.  The summary is the reachability
/// relation among interface paths plus the abstraction labels visible at
/// each path.  Every occurrence of the function then *instantiates* the
/// summary anchored at the occurrence node — the paper's "copying" of the
/// simplified, parameterized graph — with labels attached through
/// closure-inert `Label` nodes, so instances never flow into each other
/// through the shared body.
///
/// Free variables of a candidate are handled as *shared anchors*: the
/// fragment's derived nodes rooted at a free binder are not copied — the
/// summary records flows between interface paths and those shared nodes,
/// and every instantiation reconnects to the very same binder nodes of
/// the main graph.  (This is the paper's remark that the reachability
/// underlying simplification must keep context-visible nodes.)
///
/// Candidates are disqualified (falling back to shared monovariant flow)
/// when they mention datatypes or refs in their type, recurse, exceed the
/// path budget, or have more occurrences than the duplication budget —
/// the paper's global bound that keeps the polyvariant analysis linear.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_POLY_POLYVARIANT_H
#define STCFA_POLY_POLYVARIANT_H

#include "core/SubtransitiveGraph.h"

#include <memory>

namespace stcfa {

/// Tuning knobs for the polyvariant layer.
struct PolyConfig {
  /// Maximum interface paths per summary; larger types fall back.
  uint32_t MaxSummaryPaths = 64;
  /// Maximum occurrences instantiated per candidate (the duplication
  /// budget); functions used more often fall back to monovariant flow.
  uint32_t MaxOccurrences = 32;
};

/// Outcome counters.
struct PolyStats {
  uint32_t Candidates = 0;
  uint32_t Summarized = 0;
  uint32_t Instantiations = 0;
  uint32_t Fallbacks = 0;
};

/// Orchestrates the polyvariant analysis: builds the main graph with
/// candidate def-use flow externalized, instantiates summaries, closes.
/// Query the result through `graph()` with `Reachability` as usual.
class PolyvariantCFA {
public:
  explicit PolyvariantCFA(const Module &M, SubtransitiveConfig GraphConfig = {},
                          PolyConfig Config = {});

  /// Runs the whole pipeline (summaries, build, instantiation, close).
  void run();

  const SubtransitiveGraph &graph() const { return *Main; }
  const PolyStats &stats() const { return Stats; }

private:
  /// Reachability among interface anchors plus the labels at each anchor.
  struct Summary {
    /// One derivation step (dom, ran, or tuple field).
    struct Step {
      NodeOp Op;
      uint32_t Tag;
    };
    /// An anchor: a step path over the per-instance occurrence node (when
    /// `Shared` is invalid) or over the *shared* binder node of a free
    /// variable (when valid).
    struct Anchor {
      VarId Shared;
      std::vector<Step> Path;
    };
    std::vector<Anchor> Anchors;
    std::vector<std::pair<uint32_t, uint32_t>> Edges;
    std::vector<std::pair<uint32_t, LabelId>> AnchorLabels;
  };

  std::vector<VarId> freeVarsOf(ExprId Lam) const;
  bool enumeratePaths(TypeId Ty, VarId Shared,
                      std::vector<Summary::Step> &Prefix, Summary &S) const;
  bool summarize(ExprId Lam, Summary &S) const;
  NodeId materializePath(SubtransitiveGraph &G, NodeId Anchor,
                         const std::vector<Summary::Step> &Path) const;
  void instantiate(const Summary &S, NodeId Anchor);

  const Module &M;
  SubtransitiveConfig GraphConfig;
  PolyConfig Config;
  PolyStats Stats;
  std::unique_ptr<SubtransitiveGraph> Main;
  bool HasRun = false;
};

} // namespace stcfa

#endif // STCFA_POLY_POLYVARIANT_H
