//===-- poly/Polyvariant.cpp - Section 7 polyvariant extension ------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "poly/Polyvariant.h"

#include <unordered_map>
#include <unordered_set>

using namespace stcfa;

PolyvariantCFA::PolyvariantCFA(const Module &M,
                               SubtransitiveConfig GraphConfig,
                               PolyConfig Config)
    : M(M), GraphConfig(GraphConfig), Config(Config) {}

std::vector<VarId> PolyvariantCFA::freeVarsOf(ExprId Lam) const {
  std::unordered_set<uint32_t> Bound;
  std::unordered_set<uint32_t> Seen;
  std::vector<VarId> Free;
  forEachExprPreorder(M, Lam, [&](ExprId, const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lam:
      Bound.insert(cast<LamExpr>(E)->param().index());
      break;
    case ExprKind::Let:
      Bound.insert(cast<LetExpr>(E)->var().index());
      break;
    case ExprKind::Case:
      for (const CaseArm &Arm : cast<CaseExpr>(E)->arms())
        for (VarId B : Arm.Binders)
          Bound.insert(B.index());
      break;
    case ExprKind::Var: {
      uint32_t V = cast<VarExpr>(E)->var().index();
      if (!Bound.count(V) && Seen.insert(V).second)
        Free.push_back(VarId(V));
      break;
    }
    default:
      break;
    }
  });
  return Free;
}

bool PolyvariantCFA::enumeratePaths(TypeId Ty, VarId Shared,
                                    std::vector<Summary::Step> &Prefix,
                                    Summary &S) const {
  if (S.Anchors.size() >= Config.MaxSummaryPaths)
    return false;
  S.Anchors.push_back({Shared, Prefix});
  if (!Ty.isValid())
    return true; // unresolved leaf: sound, context flows pass through
  const Type &T = M.types().type(Ty);
  switch (T.Kind) {
  case TypeKind::Arrow:
    Prefix.push_back({NodeOp::Dom, 0});
    if (!enumeratePaths(T.Args[0], Shared, Prefix, S))
      return false;
    Prefix.back() = {NodeOp::Ran, 0};
    if (!enumeratePaths(T.Args[1], Shared, Prefix, S))
      return false;
    Prefix.pop_back();
    return true;
  case TypeKind::Tuple:
    for (uint32_t I = 0; I != T.Args.size(); ++I) {
      Prefix.push_back({NodeOp::Field, I});
      if (!enumeratePaths(T.Args[I], Shared, Prefix, S))
        return false;
      Prefix.pop_back();
    }
    return true;
  case TypeKind::Data:
  case TypeKind::Ref:
    // Datatype contents are congruence-merged and ref cells must not be
    // split per instance; disqualify (monovariant fallback).
    return false;
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::String:
  case TypeKind::Var:
    return true;
  }
  assert(false && "unknown type kind");
  return false;
}

NodeId PolyvariantCFA::materializePath(
    SubtransitiveGraph &G, NodeId Anchor,
    const std::vector<Summary::Step> &Path) const {
  NodeId N = Anchor;
  for (const Summary::Step &Step : Path) {
    switch (Step.Op) {
    case NodeOp::Dom:
      N = G.domNode(N);
      break;
    case NodeOp::Ran:
      N = G.ranNode(N);
      break;
    case NodeOp::Field:
      N = G.tupleFieldNode(Step.Tag, N);
      break;
    default:
      assert(false && "unexpected path step");
    }
  }
  return N;
}

bool PolyvariantCFA::summarize(ExprId Lam, Summary &S) const {
  // Analyse the function in isolation first — the fragment graph also
  // supplies the binder types of the free variables (shared anchors).
  SubtransitiveGraph Fragment(M, GraphConfig);
  Fragment.buildFragment(Lam);
  NodeId Root = Fragment.exprNode(Lam);

  {
    std::vector<Summary::Step> Prefix;
    if (!enumeratePaths(M.expr(Lam)->type(), VarId::invalid(), Prefix, S))
      return false;
    // Shared anchors: the type template over every free-variable binder.
    // Forcing them demanded saturates all flows between context-visible
    // points, exactly as for the root's own paths.
    for (VarId Free : freeVarsOf(Lam)) {
      NodeId Binder = Fragment.varNode(Free);
      if (!enumeratePaths(Fragment.nodeType(Binder), Free, Prefix, S))
        return false;
    }
  }

  std::vector<NodeId> AnchorNodes;
  AnchorNodes.reserve(S.Anchors.size());
  for (const Summary::Anchor &A : S.Anchors) {
    NodeId Base =
        A.Shared.isValid() ? Fragment.varNode(A.Shared) : Root;
    NodeId N = materializePath(Fragment, Base, A.Path);
    Fragment.forceDemand(N);
    AnchorNodes.push_back(N);
  }
  Fragment.close();

  // Interface reachability: which anchors and which internal labels does
  // each anchor reach?  (Plain DFS; fragments are small.)
  std::unordered_map<uint32_t, uint32_t> AnchorIndexOfNode;
  for (uint32_t I = 0; I != AnchorNodes.size(); ++I)
    AnchorIndexOfNode.emplace(AnchorNodes[I].index(), I);

  std::vector<bool> Seen;
  std::vector<NodeId> Stack;
  for (uint32_t P = 0; P != AnchorNodes.size(); ++P) {
    Seen.assign(Fragment.numNodes(), false);
    Stack.assign(1, AnchorNodes[P]);
    Seen[AnchorNodes[P].index()] = true;
    while (!Stack.empty()) {
      NodeId N = Stack.back();
      Stack.pop_back();
      if (LabelId L = Fragment.labelOf(N); L.isValid())
        S.AnchorLabels.emplace_back(P, L);
      if (auto It = AnchorIndexOfNode.find(N.index());
          It != AnchorIndexOfNode.end() && It->second != P)
        S.Edges.emplace_back(P, It->second);
      for (NodeId Succ : Fragment.succs(N)) {
        if (Seen[Succ.index()])
          continue;
        Seen[Succ.index()] = true;
        Stack.push_back(Succ);
      }
    }
  }
  return true;
}

void PolyvariantCFA::instantiate(const Summary &S, NodeId Anchor) {
  ++Stats.Instantiations;
  auto nodeOf = [&](uint32_t Index) {
    const Summary::Anchor &A = S.Anchors[Index];
    NodeId Base = A.Shared.isValid() ? Main->varNode(A.Shared) : Anchor;
    return materializePath(*Main, Base, A.Path);
  };
  for (auto [From, To] : S.Edges)
    Main->addEdge(nodeOf(From), nodeOf(To));
  for (auto [Index, L] : S.AnchorLabels)
    Main->addEdge(nodeOf(Index), Main->labelNode(L));
}

void PolyvariantCFA::run() {
  assert(!HasRun && "run() called twice");
  HasRun = true;

  // Occurrence lists per binder.
  std::vector<std::vector<ExprId>> OccurrencesOf(M.numVars());
  forEachExprPreorder(M, M.root(), [&](ExprId Id, const Expr *E) {
    if (const auto *V = dyn_cast<VarExpr>(E))
      OccurrencesOf[V->var().index()].push_back(Id);
  });

  // Select candidates and build their summaries.
  struct Candidate {
    VarId Var;
    Summary S;
  };
  std::vector<Candidate> Candidates;
  std::vector<bool> Externalized(M.numVars(), false);
  forEachExprPreorder(M, M.root(), [&](ExprId, const Expr *E) {
    const auto *L = dyn_cast<LetExpr>(E);
    if (!L || L->isRec() || !isa<LamExpr>(M.expr(L->init())))
      return;
    ++Stats.Candidates;
    if (OccurrencesOf[L->var().index()].size() > Config.MaxOccurrences) {
      ++Stats.Fallbacks;
      return;
    }
    Candidate C;
    C.Var = L->var();
    if (!summarize(L->init(), C.S)) {
      ++Stats.Fallbacks;
      return;
    }
    ++Stats.Summarized;
    Externalized[L->var().index()] = true;
    Candidates.push_back(std::move(C));
  });

  // Main graph: candidate def-use flow is externalized, everything else is
  // the ordinary monovariant build.
  Main = std::make_unique<SubtransitiveGraph>(M, GraphConfig);
  Main->setExternalizedVars(std::move(Externalized));
  Main->build();

  // Instantiate each candidate at every occurrence, plus once at the
  // binder itself: the binder-anchored instance serves uses through
  // *other* candidates' shared anchors and keeps `L(f)` populated.
  for (const Candidate &C : Candidates) {
    for (ExprId Occ : OccurrencesOf[C.Var.index()])
      instantiate(C.S, Main->exprNode(Occ));
    instantiate(C.S, Main->varNode(C.Var));
  }

  Main->close();
}
