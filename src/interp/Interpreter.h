//===-- interp/Interpreter.h - Reference interpreter ------------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call-by-value reference interpreter for the analysed language.  Its
/// role in the reproduction is *dynamic ground truth*: it records, for a
/// concrete run, which abstractions each occurrence actually evaluated to,
/// which call sites invoked which abstractions, and which expressions
/// actually performed side effects.  Every static analysis in this
/// repository must over-approximate these observations — the end-to-end
/// soundness harness in `tests/dynamic_soundness_test.cpp`.
///
/// Evaluation is fuel-bounded (non-terminating programs yield a sound
/// partial trace) and depth-bounded.  Runtime type errors (possible for
/// untypeable inputs) abort evaluation; facts recorded up to that point
/// remain valid observations.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_INTERP_INTERPRETER_H
#define STCFA_INTERP_INTERPRETER_H

#include "ast/Module.h"
#include "support/DenseBitset.h"

#include <string>
#include <vector>

namespace stcfa {

/// Observations from one (possibly partial) run.
struct InterpreterResult {
  /// True if evaluation finished within the fuel and without getting
  /// stuck.
  bool Completed = false;
  /// Reason when `!Completed` ("out of fuel", "stuck: ...").
  std::string Abort;
  uint64_t Steps = 0;

  /// Per occurrence: labels of abstraction values it evaluated to.
  std::vector<DenseBitset> LabelsAt;
  /// Per binder: labels of abstraction values it was bound to.
  std::vector<DenseBitset> VarLabels;
  /// Per occurrence: did a side effect execute during its evaluation?
  std::vector<bool> DidEffect;
  /// Per label: distinct call sites (AppExpr ids) that invoked it.
  std::vector<std::vector<ExprId>> CallSitesOf;
  /// Everything printed, in order.
  std::vector<std::string> Output;
  /// Rendering of the final value (empty if not completed).
  std::string FinalValue;
};

/// Runs \p M and returns the observations.
InterpreterResult interpret(const Module &M, uint64_t Fuel = 1000000,
                            uint32_t MaxDepth = 2000);

} // namespace stcfa

#endif // STCFA_INTERP_INTERPRETER_H
