//===-- interp/Interpreter.cpp - Reference interpreter --------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <algorithm>

using namespace stcfa;

namespace {

enum class ValueKind : uint8_t { Int, Bool, Unit, String, Closure, Tuple,
                                 Con, Ref };

struct Value {
  ValueKind Kind;
  int64_t IntVal = 0;   // Int/Bool payload
  Symbol Str;           // String payload
  ExprId Lam;           // Closure: the abstraction
  uint32_t Env = 0;     // Closure: captured environment
  ConId Con;            // Con payload
  std::vector<uint32_t> Elems; // Tuple/Con fields (value ids)
  uint32_t Cell = 0;    // Ref payload (cell id)
};

struct EnvNode {
  VarId Var;
  uint32_t Value = 0;
  uint32_t Parent = 0; // 0 = empty environment
};

class Interp {
public:
  Interp(const Module &M, uint64_t Fuel, uint32_t MaxDepth)
      : M(M), Fuel(Fuel), MaxDepth(MaxDepth) {
    R.LabelsAt.assign(M.numExprs(), DenseBitset(M.numLabels()));
    R.VarLabels.assign(M.numVars(), DenseBitset(M.numLabels()));
    R.DidEffect.assign(M.numExprs(), false);
    R.CallSitesOf.assign(M.numLabels(), {});
    Envs.push_back({VarId::invalid(), 0, 0}); // sentinel empty env
  }

  InterpreterResult run() {
    uint32_t V = eval(M.root(), /*Env=*/0, /*Depth=*/0);
    R.Completed = (V != BadValue);
    if (R.Completed)
      R.FinalValue = render(V);
    return std::move(R);
  }

private:
  static constexpr uint32_t BadValue = ~0u;

  uint32_t makeValue(Value V) {
    Values.push_back(std::move(V));
    return static_cast<uint32_t>(Values.size() - 1);
  }

  uint32_t makeInt(int64_t I) {
    Value V;
    V.Kind = ValueKind::Int;
    V.IntVal = I;
    return makeValue(std::move(V));
  }

  uint32_t makeBool(bool B) {
    Value V;
    V.Kind = ValueKind::Bool;
    V.IntVal = B;
    return makeValue(std::move(V));
  }

  uint32_t makeUnit() {
    Value V;
    V.Kind = ValueKind::Unit;
    return makeValue(std::move(V));
  }

  uint32_t bind(uint32_t Env, VarId Var, uint32_t Val) {
    Envs.push_back({Var, Val, Env});
    return static_cast<uint32_t>(Envs.size() - 1);
  }

  uint32_t lookup(uint32_t Env, VarId Var) {
    for (uint32_t E = Env; E != 0; E = Envs[E].Parent)
      if (Envs[E].Var == Var)
        return Envs[E].Value;
    abort("unbound variable at runtime");
    return BadValue;
  }

  void abort(std::string Why) {
    if (R.Abort.empty())
      R.Abort = std::move(Why);
  }

  /// Records that occurrence \p E evaluated to \p Val.
  void observe(ExprId E, uint32_t Val) {
    if (Values[Val].Kind == ValueKind::Closure) {
      const auto *Lam = cast<LamExpr>(M.expr(Values[Val].Lam));
      R.LabelsAt[E.index()].insert(Lam->label().index());
    }
  }

  void observeVar(VarId V, uint32_t Val) {
    if (Values[Val].Kind == ValueKind::Closure) {
      const auto *Lam = cast<LamExpr>(M.expr(Values[Val].Lam));
      R.VarLabels[V.index()].insert(Lam->label().index());
    }
  }

  uint32_t eval(ExprId Id, uint32_t Env, uint32_t Depth);
  uint32_t evalPrim(const PrimExpr *P, uint32_t Env, uint32_t Depth);
  std::string render(uint32_t Val) const;

  const Module &M;
  uint64_t Fuel;
  uint32_t MaxDepth;
  InterpreterResult R;
  std::vector<Value> Values;
  std::vector<EnvNode> Envs;
  std::vector<uint32_t> Cells; // ref heap: cell -> value id
  uint64_t EffectCounter = 0;
};

uint32_t Interp::eval(ExprId Id, uint32_t Env, uint32_t Depth) {
  if (Fuel == 0) {
    abort("out of fuel");
    return BadValue;
  }
  --Fuel;
  ++R.Steps;
  if (Depth > MaxDepth) {
    abort("recursion too deep");
    return BadValue;
  }

  uint64_t EffectsBefore = EffectCounter;
  const Expr *E = M.expr(Id);
  uint32_t Result = BadValue;

  switch (E->kind()) {
  case ExprKind::Var: {
    uint32_t V = lookup(Env, cast<VarExpr>(E)->var());
    if (V == BadValue)
      abort("stuck: letrec variable used before initialization");
    Result = V;
    break;
  }
  case ExprKind::Lam: {
    Value V;
    V.Kind = ValueKind::Closure;
    V.Lam = Id;
    V.Env = Env;
    Result = makeValue(std::move(V));
    break;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    uint32_t Fn = eval(A->fn(), Env, Depth + 1);
    if (Fn == BadValue)
      break;
    uint32_t Arg = eval(A->arg(), Env, Depth + 1);
    if (Arg == BadValue)
      break;
    if (Values[Fn].Kind != ValueKind::Closure) {
      abort("stuck: applying a non-function");
      break;
    }
    const auto *Lam = cast<LamExpr>(M.expr(Values[Fn].Lam));
    // Record the dynamic call edge.
    auto &Sites = R.CallSitesOf[Lam->label().index()];
    if (std::find(Sites.begin(), Sites.end(), Id) == Sites.end())
      Sites.push_back(Id);
    observeVar(Lam->param(), Arg);
    uint32_t CallEnv = bind(Values[Fn].Env, Lam->param(), Arg);
    Result = eval(Lam->body(), CallEnv, Depth + 1);
    break;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    uint32_t NewEnv;
    if (L->isRec()) {
      // Tie the knot: bind first, then patch the closure's environment.
      NewEnv = bind(Env, L->var(), BadValue);
      uint32_t Init = eval(L->init(), NewEnv, Depth + 1);
      if (Init == BadValue)
        break;
      Envs[NewEnv].Value = Init;
      observeVar(L->var(), Init);
    } else {
      uint32_t Init = eval(L->init(), Env, Depth + 1);
      if (Init == BadValue)
        break;
      observeVar(L->var(), Init);
      NewEnv = bind(Env, L->var(), Init);
    }
    Result = eval(L->body(), NewEnv, Depth + 1);
    break;
  }
  case ExprKind::LetRecN: {
    const auto *L = cast<LetRecNExpr>(E);
    // Tie the whole knot: bind every name first, then patch each closure.
    uint32_t NewEnv = Env;
    std::vector<uint32_t> Slots;
    for (const LetRecNExpr::Binding &B : L->bindings()) {
      NewEnv = bind(NewEnv, B.Var, BadValue);
      Slots.push_back(NewEnv);
    }
    bool Ok = true;
    for (size_t I = 0; I != L->bindings().size() && Ok; ++I) {
      uint32_t Init = eval(L->bindings()[I].Init, NewEnv, Depth + 1);
      if (Init == BadValue) {
        Ok = false;
        break;
      }
      Envs[Slots[I]].Value = Init;
      observeVar(L->bindings()[I].Var, Init);
    }
    if (!Ok)
      break;
    Result = eval(L->body(), NewEnv, Depth + 1);
    break;
  }
  case ExprKind::Lit: {
    const auto *L = cast<LitExpr>(E);
    switch (L->litKind()) {
    case LitKind::Int:
      Result = makeInt(L->intValue());
      break;
    case LitKind::Bool:
      Result = makeBool(L->boolValue());
      break;
    case LitKind::Unit:
      Result = makeUnit();
      break;
    case LitKind::String: {
      Value V;
      V.Kind = ValueKind::String;
      V.Str = L->stringValue();
      Result = makeValue(std::move(V));
      break;
    }
    }
    break;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    uint32_t C = eval(I->cond(), Env, Depth + 1);
    if (C == BadValue)
      break;
    if (Values[C].Kind != ValueKind::Bool) {
      abort("stuck: non-boolean condition");
      break;
    }
    Result = eval(Values[C].IntVal ? I->thenExpr() : I->elseExpr(), Env,
                  Depth + 1);
    break;
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    Value V;
    V.Kind = ValueKind::Tuple;
    for (ExprId C : T->elems()) {
      uint32_t Elem = eval(C, Env, Depth + 1);
      if (Elem == BadValue)
        return BadValue;
      V.Elems.push_back(Elem);
    }
    Result = makeValue(std::move(V));
    break;
  }
  case ExprKind::Proj: {
    const auto *P = cast<ProjExpr>(E);
    uint32_t T = eval(P->tuple(), Env, Depth + 1);
    if (T == BadValue)
      break;
    if (Values[T].Kind != ValueKind::Tuple ||
        P->index() >= Values[T].Elems.size()) {
      abort("stuck: bad projection");
      break;
    }
    Result = Values[T].Elems[P->index()];
    break;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    Value V;
    V.Kind = ValueKind::Con;
    V.Con = C->con();
    for (ExprId A : C->args()) {
      uint32_t Arg = eval(A, Env, Depth + 1);
      if (Arg == BadValue)
        return BadValue;
      V.Elems.push_back(Arg);
    }
    Result = makeValue(std::move(V));
    break;
  }
  case ExprKind::Case: {
    const auto *C = cast<CaseExpr>(E);
    uint32_t S = eval(C->scrutinee(), Env, Depth + 1);
    if (S == BadValue)
      break;
    if (Values[S].Kind != ValueKind::Con) {
      abort("stuck: case on a non-constructor");
      break;
    }
    const CaseArm *Taken = nullptr;
    for (const CaseArm &Arm : C->arms())
      if (Arm.Con == Values[S].Con) {
        Taken = &Arm;
        break;
      }
    if (!Taken) {
      abort("stuck: no matching case arm");
      break;
    }
    uint32_t ArmEnv = Env;
    for (size_t I = 0; I != Taken->Binders.size(); ++I) {
      observeVar(Taken->Binders[I], Values[S].Elems[I]);
      ArmEnv = bind(ArmEnv, Taken->Binders[I], Values[S].Elems[I]);
    }
    Result = eval(Taken->Body, ArmEnv, Depth + 1);
    break;
  }
  case ExprKind::Prim:
    Result = evalPrim(cast<PrimExpr>(E), Env, Depth);
    break;
  }

  if (Result == BadValue)
    return BadValue;
  observe(Id, Result);
  if (EffectCounter != EffectsBefore)
    R.DidEffect[Id.index()] = true;
  return Result;
}

uint32_t Interp::evalPrim(const PrimExpr *P, uint32_t Env, uint32_t Depth) {
  std::vector<uint32_t> Args;
  for (ExprId A : P->args()) {
    uint32_t V = eval(A, Env, Depth + 1);
    if (V == BadValue)
      return BadValue;
    Args.push_back(V);
  }
  auto intsOk = [&] {
    for (uint32_t A : Args)
      if (Values[A].Kind != ValueKind::Int) {
        abort("stuck: arithmetic on a non-integer");
        return false;
      }
    return true;
  };
  auto intArg = [&](size_t I) { return Values[Args[I]].IntVal; };
  switch (P->op()) {
  case PrimOp::Add:
    return intsOk() ? makeInt(intArg(0) + intArg(1)) : BadValue;
  case PrimOp::Sub:
    return intsOk() ? makeInt(intArg(0) - intArg(1)) : BadValue;
  case PrimOp::Mul:
    return intsOk() ? makeInt(intArg(0) * intArg(1)) : BadValue;
  case PrimOp::Div: {
    if (!intsOk())
      return BadValue;
    if (intArg(1) == 0) {
      abort("stuck: division by zero");
      return BadValue;
    }
    return makeInt(intArg(0) / intArg(1));
  }
  case PrimOp::Lt:
    return intsOk() ? makeBool(intArg(0) < intArg(1)) : BadValue;
  case PrimOp::Le:
    return intsOk() ? makeBool(intArg(0) <= intArg(1)) : BadValue;
  case PrimOp::Eq:
    return intsOk() ? makeBool(intArg(0) == intArg(1)) : BadValue;
  case PrimOp::Not:
    if (Values[Args[0]].Kind != ValueKind::Bool) {
      abort("stuck: not on a non-boolean");
      return BadValue;
    }
    return makeBool(!Values[Args[0]].IntVal);
  case PrimOp::Print:
    ++EffectCounter;
    R.Output.push_back(render(Args[0]));
    return makeUnit();
  case PrimOp::RefNew: {
    Cells.push_back(Args[0]);
    Value V;
    V.Kind = ValueKind::Ref;
    V.Cell = static_cast<uint32_t>(Cells.size() - 1);
    return makeValue(std::move(V));
  }
  case PrimOp::RefGet:
    if (Values[Args[0]].Kind != ValueKind::Ref) {
      abort("stuck: dereferencing a non-ref");
      return BadValue;
    }
    return Cells[Values[Args[0]].Cell];
  case PrimOp::RefSet:
    if (Values[Args[0]].Kind != ValueKind::Ref) {
      abort("stuck: assigning a non-ref");
      return BadValue;
    }
    ++EffectCounter;
    Cells[Values[Args[0]].Cell] = Args[1];
    return makeUnit();
  }
  assert(false && "unknown primitive");
  return BadValue;
}

std::string Interp::render(uint32_t Val) const {
  const Value &V = Values[Val];
  switch (V.Kind) {
  case ValueKind::Int:
    return std::to_string(V.IntVal);
  case ValueKind::Bool:
    return V.IntVal ? "true" : "false";
  case ValueKind::Unit:
    return "unit";
  case ValueKind::String:
    return std::string(M.text(V.Str));
  case ValueKind::Closure: {
    const auto *Lam = cast<LamExpr>(M.expr(V.Lam));
    return "<fn " + std::string(M.text(M.var(Lam->param()).Name)) + ">";
  }
  case ValueKind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I != V.Elems.size(); ++I) {
      if (I)
        Out += ", ";
      Out += render(V.Elems[I]);
    }
    return Out + ")";
  }
  case ValueKind::Con: {
    std::string Out(M.text(M.con(V.Con).Name));
    if (!V.Elems.empty()) {
      Out += '(';
      for (size_t I = 0; I != V.Elems.size(); ++I) {
        if (I)
          Out += ", ";
        Out += render(V.Elems[I]);
      }
      Out += ')';
    }
    return Out;
  }
  case ValueKind::Ref:
    return "ref " + render(Cells[V.Cell]);
  }
  assert(false && "unknown value kind");
  return "?";
}

} // namespace

InterpreterResult stcfa::interpret(const Module &M, uint64_t Fuel,
                                   uint32_t MaxDepth) {
  Interp I(M, Fuel, MaxDepth);
  return I.run();
}
