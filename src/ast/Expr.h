//===-- ast/Expr.h - Expression AST for the mini-ML language ----*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression AST of the analysed language: the labeled lambda calculus
/// of the paper (Section 2) extended, as in Section 6, with `let`/`letrec`,
/// conditionals, tuples with projection, data constructors with `case`, and
/// primitive operations including mutable references and the side-effecting
/// `print` (the hook for Section 8's effects analysis).
///
/// Each `Expr` is an *occurrence* with a dense `ExprId`; every abstraction
/// carries a unique `LabelId` (the paper's labels).  The class hierarchy
/// uses a `Kind` discriminator with `isa`/`cast`/`dyn_cast` helpers instead
/// of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_AST_EXPR_H
#define STCFA_AST_EXPR_H

#include "support/Diagnostics.h"
#include "support/Ids.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace stcfa {

/// Discriminates the concrete expression classes.
enum class ExprKind : uint8_t {
  Var,
  Lam,
  App,
  Let,
  LetRecN, // mutually recursive binding group
  Lit,
  If,
  Tuple,
  Proj,
  Con,
  Case,
  Prim,
};

/// Primitive operations.  `isEffectfulPrim` distinguishes the ones the
/// effects analysis treats as side-effecting.
enum class PrimOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Lt,
  Le,
  Eq,
  Not,
  Print,  // effectful
  RefNew, // allocates a mutable cell
  RefGet, // reads a cell
  RefSet, // effectful: writes a cell
};

/// True for primitives the effects analysis seeds as side-effecting.
inline bool isEffectfulPrim(PrimOp Op) {
  return Op == PrimOp::Print || Op == PrimOp::RefSet;
}

/// Number of operands the primitive takes.
inline uint32_t primArity(PrimOp Op) {
  switch (Op) {
  case PrimOp::Not:
  case PrimOp::Print:
  case PrimOp::RefNew:
  case PrimOp::RefGet:
    return 1;
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Eq:
  case PrimOp::RefSet:
    return 2;
  }
  assert(false && "unknown primitive");
  return 0;
}

/// Returns the surface-syntax spelling of \p Op.
const char *primName(PrimOp Op);

/// Base class of all expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  ExprId id() const { return Id; }
  SourceLoc loc() const { return Loc; }

  /// One past the last source character of this occurrence.  Falls back
  /// to `loc()` (a degenerate range) for programmatically built ASTs,
  /// which carry no surface extent.
  SourceLoc endLoc() const { return EndLoc.isValid() ? EndLoc : Loc; }
  /// The parser records the exclusive end position after finishing the
  /// production (see `Module::setExprEnd`).
  void setEndLoc(SourceLoc End) { EndLoc = End; }

  /// The full `[loc(), endLoc())` span.
  SourceRange range() const { return {Loc, endLoc()}; }

  /// The inferred monotype of this occurrence; invalid until inference ran.
  TypeId type() const { return Type; }
  void setType(TypeId T) { Type = T; }

protected:
  Expr(ExprKind Kind, ExprId Id, SourceLoc Loc)
      : Kind(Kind), Id(Id), Loc(Loc) {}

private:
  ExprKind Kind;
  ExprId Id;
  SourceLoc Loc;
  SourceLoc EndLoc;
  TypeId Type;
};

/// Deletes an expression through its dynamic kind.  `Expr` deliberately
/// has no virtual functions (kind-tag dispatch throughout), so deleting
/// through the base pointer needs this explicit dispatch.
struct ExprDeleter {
  void operator()(Expr *E) const;
};

/// Owning pointer for arena-stored expressions.
using ExprPtr = std::unique_ptr<Expr, ExprDeleter>;

/// `isa<T>(E)`: true iff `E` is a `T`.  Mirrors LLVM's casting helpers.
template <typename T> bool isa(const Expr *E) {
  assert(E && "isa on null expression");
  return T::classof(E);
}

template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "cast to wrong expression kind");
  return static_cast<const T *>(E);
}

template <typename T> T *cast(Expr *E) {
  assert(isa<T>(E) && "cast to wrong expression kind");
  return static_cast<T *>(E);
}

template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

/// A variable occurrence, resolved to its binder.
///
/// Inside a `letrec … and …` group the parser may create an occurrence
/// before its binder exists (a forward reference to a later group member);
/// it is patched via `setVar` when the group closes.  After parsing every
/// occurrence is resolved.
class VarExpr : public Expr {
public:
  VarExpr(ExprId Id, SourceLoc Loc, VarId Var)
      : Expr(ExprKind::Var, Id, Loc), Var(Var) {}

  VarId var() const {
    assert(Var.isValid() && "unresolved forward reference survived parsing");
    return Var;
  }

  /// False only transiently, while a forward reference inside a letrec
  /// group awaits patching.
  bool isResolved() const { return Var.isValid(); }

  /// Resolves a deferred forward reference (parser only).
  void setVar(VarId V) {
    assert(!Var.isValid() && "occurrence already resolved");
    Var = V;
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  VarId Var;
};

/// A labeled abstraction `fn x => e`.
class LamExpr : public Expr {
public:
  LamExpr(ExprId Id, SourceLoc Loc, LabelId Label, VarId Param, ExprId Body)
      : Expr(ExprKind::Lam, Id, Loc), Label(Label), Param(Param), Body(Body) {}

  LabelId label() const { return Label; }
  VarId param() const { return Param; }
  ExprId body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lam; }

private:
  LabelId Label;
  VarId Param;
  ExprId Body;
};

/// An application `e1 e2`.
class AppExpr : public Expr {
public:
  AppExpr(ExprId Id, SourceLoc Loc, ExprId Fn, ExprId Arg)
      : Expr(ExprKind::App, Id, Loc), Fn(Fn), Arg(Arg) {}

  ExprId fn() const { return Fn; }
  ExprId arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  ExprId Fn;
  ExprId Arg;
};

/// `let x = e1 in e2` / `letrec f = fn ... in e2`.
class LetExpr : public Expr {
public:
  LetExpr(ExprId Id, SourceLoc Loc, VarId Var, ExprId Init, ExprId Body,
          bool IsRec)
      : Expr(ExprKind::Let, Id, Loc), Var(Var), Init(Init), Body(Body),
        IsRec(IsRec) {}

  VarId var() const { return Var; }
  ExprId init() const { return Init; }
  ExprId body() const { return Body; }
  /// True for `letrec`; the initializer may then reference `var()` and must
  /// be an abstraction (enforced by the parser).
  bool isRec() const { return IsRec; }

  /// Spine surgery for the delta layer: repoint this let at a replacement
  /// initializer / body subtree.  The old subtree stays in the module as
  /// unreferenced garbage (the module arena is append-only).
  void setInit(ExprId NewInit) { Init = NewInit; }
  void setBody(ExprId NewBody) { Body = NewBody; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }

private:
  VarId Var;
  ExprId Init;
  ExprId Body;
  bool IsRec;
};

/// `letrec f = fn … and g = fn … in e`: a mutually recursive group.  All
/// binders scope over every initializer (which must be abstractions) and
/// over the body.
class LetRecNExpr : public Expr {
public:
  /// One binding of the group.
  struct Binding {
    VarId Var;
    ExprId Init;
  };

  LetRecNExpr(ExprId Id, SourceLoc Loc, std::vector<Binding> Bindings,
              ExprId Body)
      : Expr(ExprKind::LetRecN, Id, Loc), Bindings(std::move(Bindings)),
        Body(Body) {
    assert(this->Bindings.size() >= 2 &&
           "single recursive bindings use LetExpr");
  }

  const std::vector<Binding> &bindings() const { return Bindings; }
  ExprId body() const { return Body; }

  /// Spine surgery for the delta layer (see `LetExpr::setBody`).
  void setBody(ExprId NewBody) { Body = NewBody; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::LetRecN; }

private:
  std::vector<Binding> Bindings;
  ExprId Body;
};

/// The base-type literals.
enum class LitKind : uint8_t { Int, Bool, Unit, String };

/// A literal constant.
class LitExpr : public Expr {
public:
  LitExpr(ExprId Id, SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::Lit, Id, Loc), Lit(LitKind::Int), IntValue(Value) {}
  LitExpr(ExprId Id, SourceLoc Loc, bool Value)
      : Expr(ExprKind::Lit, Id, Loc), Lit(LitKind::Bool),
        IntValue(Value ? 1 : 0) {}
  LitExpr(ExprId Id, SourceLoc Loc)
      : Expr(ExprKind::Lit, Id, Loc), Lit(LitKind::Unit), IntValue(0) {}
  LitExpr(ExprId Id, SourceLoc Loc, Symbol Value)
      : Expr(ExprKind::Lit, Id, Loc), Lit(LitKind::String), Str(Value) {}

  LitKind litKind() const { return Lit; }
  int64_t intValue() const {
    assert(Lit == LitKind::Int && "not an int literal");
    return IntValue;
  }
  bool boolValue() const {
    assert(Lit == LitKind::Bool && "not a bool literal");
    return IntValue != 0;
  }
  Symbol stringValue() const {
    assert(Lit == LitKind::String && "not a string literal");
    return Str;
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lit; }

private:
  LitKind Lit;
  int64_t IntValue = 0;
  Symbol Str;
};

/// `if e1 then e2 else e3`.
class IfExpr : public Expr {
public:
  IfExpr(ExprId Id, SourceLoc Loc, ExprId Cond, ExprId Then, ExprId Else)
      : Expr(ExprKind::If, Id, Loc), Cond(Cond), Then(Then), Else(Else) {}

  ExprId cond() const { return Cond; }
  ExprId thenExpr() const { return Then; }
  ExprId elseExpr() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }

private:
  ExprId Cond;
  ExprId Then;
  ExprId Else;
};

/// A tuple `(e1, ..., en)` with n >= 2 (the paper's records).
class TupleExpr : public Expr {
public:
  TupleExpr(ExprId Id, SourceLoc Loc, std::vector<ExprId> Elems)
      : Expr(ExprKind::Tuple, Id, Loc), Elems(std::move(Elems)) {
    assert(this->Elems.size() >= 2 && "tuples have at least two fields");
  }

  const std::vector<ExprId> &elems() const { return Elems; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Tuple; }

private:
  std::vector<ExprId> Elems;
};

/// A projection `#j e` (0-based `index()`, 1-based in surface syntax).
class ProjExpr : public Expr {
public:
  ProjExpr(ExprId Id, SourceLoc Loc, uint32_t Index, ExprId Tuple)
      : Expr(ExprKind::Proj, Id, Loc), Index(Index), Tuple(Tuple) {}

  uint32_t index() const { return Index; }
  ExprId tuple() const { return Tuple; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Proj; }

private:
  uint32_t Index;
  ExprId Tuple;
};

/// A saturated data-constructor application `C(e1, ..., en)`.
class ConExpr : public Expr {
public:
  ConExpr(ExprId Id, SourceLoc Loc, ConId Con, std::vector<ExprId> Args)
      : Expr(ExprKind::Con, Id, Loc), Con(Con), Args(std::move(Args)) {}

  ConId con() const { return Con; }
  const std::vector<ExprId> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Con; }

private:
  ConId Con;
  std::vector<ExprId> Args;
};

/// One arm of a `case`: `C(x1, ..., xn) => body`.
struct CaseArm {
  ConId Con;
  std::vector<VarId> Binders;
  ExprId Body;
};

/// `case e of C1(xs) => e1 | ... end`.
class CaseExpr : public Expr {
public:
  CaseExpr(ExprId Id, SourceLoc Loc, ExprId Scrutinee,
           std::vector<CaseArm> Arms)
      : Expr(ExprKind::Case, Id, Loc), Scrutinee(Scrutinee),
        Arms(std::move(Arms)) {}

  ExprId scrutinee() const { return Scrutinee; }
  const std::vector<CaseArm> &arms() const { return Arms; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Case; }

private:
  ExprId Scrutinee;
  std::vector<CaseArm> Arms;
};

/// A saturated primitive application `op(e1, ..., en)`.
class PrimExpr : public Expr {
public:
  PrimExpr(ExprId Id, SourceLoc Loc, PrimOp Op, std::vector<ExprId> Args)
      : Expr(ExprKind::Prim, Id, Loc), Op(Op), Args(std::move(Args)) {
    assert(this->Args.size() == primArity(Op) && "prim arity mismatch");
  }

  PrimOp op() const { return Op; }
  const std::vector<ExprId> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim; }

private:
  PrimOp Op;
  std::vector<ExprId> Args;
};

} // namespace stcfa

#endif // STCFA_AST_EXPR_H
