//===-- ast/Module.h - Program container and factories ----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Module` owns one analysed program: the expression arena, the variable
/// binder table, the abstraction-label table, and the data-constructor
/// environment.  Front ends (the parser and the programmatic `Builder` used
/// by generators and tests) populate it; all analyses consume it read-only.
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_AST_MODULE_H
#define STCFA_AST_MODULE_H

#include "ast/Expr.h"
#include "types/Type.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>

namespace stcfa {

/// Metadata for one variable binder.
struct VarInfo {
  Symbol Name;
  /// The binding expression: a `LamExpr`, `LetExpr`, or `CaseExpr`.
  /// Invalid while the binder's expression is still under construction.
  ExprId Binder;
};

/// Metadata for one data constructor.
struct ConInfo {
  Symbol Name;
  /// The datatype this constructor belongs to.
  Symbol DataName;
  /// Declared field types (resolved into the module's `TypeTable`).
  std::vector<TypeId> ArgTypes;
  /// Result datatype as a `TypeId` (a `Data` type node).
  TypeId ResultType;
};

/// One `data` declaration.
struct DataDecl {
  Symbol Name;
  std::vector<ConId> Cons;
};

/// Constructs a concrete expression and wraps it in the kind-dispatching
/// owning pointer (see `ExprDeleter`).
template <typename T, typename... ArgTs> ExprPtr makeExprPtr(ArgTs &&...Args) {
  return ExprPtr(new T(std::forward<ArgTs>(Args)...));
}

/// Owns a complete program.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  //===--------------------------------------------------------------------==//
  // Access
  //===--------------------------------------------------------------------==//

  /// The program body.
  ExprId root() const { return Root; }
  void setRoot(ExprId E) { Root = E; }

  const Expr *expr(ExprId Id) const {
    assert(Id.isValid() && Id.index() < Exprs.size() && "bad expression id");
    return Exprs[Id.index()].get();
  }
  Expr *expr(ExprId Id) {
    assert(Id.isValid() && Id.index() < Exprs.size() && "bad expression id");
    return Exprs[Id.index()].get();
  }

  /// Number of expression occurrences (the paper's program size `n`).
  uint32_t numExprs() const { return static_cast<uint32_t>(Exprs.size()); }
  uint32_t numVars() const { return static_cast<uint32_t>(Vars.size()); }
  /// Number of abstraction labels.
  uint32_t numLabels() const { return static_cast<uint32_t>(Lams.size()); }
  uint32_t numCons() const { return static_cast<uint32_t>(Cons.size()); }

  const VarInfo &var(VarId Id) const { return Vars[Id.index()]; }
  const ConInfo &con(ConId Id) const { return Cons[Id.index()]; }
  /// The abstraction carrying label \p L.
  ExprId lamOfLabel(LabelId L) const { return Lams[L.index()]; }
  const std::vector<DataDecl> &dataDecls() const { return Datas; }

  /// Looks up a constructor by name; returns an invalid id if unknown.
  ConId findCon(Symbol Name) const {
    auto It = ConIndex.find(Name);
    return It == ConIndex.end() ? ConId::invalid() : It->second;
  }

  /// Looks up a datatype declaration index by name; returns ~0u if unknown.
  const DataDecl *findData(Symbol Name) const {
    for (const DataDecl &D : Datas)
      if (D.Name == Name)
        return &D;
    return nullptr;
  }

  StringInterner &strings() { return Strings; }
  const StringInterner &strings() const { return Strings; }

  /// The module's type interner; populated by the parser (constructor
  /// signatures) and by `sema` (inference results on expressions).
  TypeTable &types() { return Types; }
  const TypeTable &types() const { return Types; }

  /// Shorthand: interns \p Text.
  Symbol sym(std::string_view Text) { return Strings.intern(Text); }
  /// Shorthand: text of \p S.
  std::string_view text(Symbol S) const { return Strings.text(S); }

  //===--------------------------------------------------------------------==//
  // Construction
  //===--------------------------------------------------------------------==//

  /// Registers a variable binder; `Binder` is patched once the binding
  /// expression exists (see `setVarBinder`).
  VarId makeVar(Symbol Name) {
    VarId Id(static_cast<uint32_t>(Vars.size()));
    Vars.push_back({Name, ExprId::invalid()});
    return Id;
  }

  void setVarBinder(VarId Var, ExprId Binder) {
    Vars[Var.index()].Binder = Binder;
  }

  /// Renames a binder (the delta layer's `rename` edit — alpha-conversion
  /// never changes analysis answers, so it is metadata-only).
  void setVarName(VarId Var, Symbol Name) { Vars[Var.index()].Name = Name; }

  /// Records the exclusive end position of \p E's surface extent (parser
  /// only; builder-made expressions keep their degenerate point ranges).
  void setExprEnd(ExprId E, SourceLoc End) { expr(E)->setEndLoc(End); }

  /// Declares a constructor of datatype \p DataName.
  ConId makeCon(Symbol Name, Symbol DataName, std::vector<TypeId> ArgTypes,
                TypeId ResultType) {
    assert(!findCon(Name).isValid() && "duplicate constructor");
    ConId Id(static_cast<uint32_t>(Cons.size()));
    Cons.push_back({Name, DataName, std::move(ArgTypes), ResultType});
    ConIndex.emplace(Name, Id);
    return Id;
  }

  /// Records a `data` declaration.
  void addDataDecl(Symbol Name, std::vector<ConId> DeclCons) {
    Datas.push_back({Name, std::move(DeclCons)});
  }

  ExprId makeVarRef(SourceLoc Loc, VarId Var) {
    return add(makeExprPtr<VarExpr>(nextId(), Loc, Var));
  }

  ExprId makeLam(SourceLoc Loc, VarId Param, ExprId Body) {
    LabelId Label(static_cast<uint32_t>(Lams.size()));
    ExprId Id = add(makeExprPtr<LamExpr>(nextId(), Loc, Label, Param,
                                              Body));
    Lams.push_back(Id);
    setVarBinder(Param, Id);
    return Id;
  }

  ExprId makeApp(SourceLoc Loc, ExprId Fn, ExprId Arg) {
    return add(makeExprPtr<AppExpr>(nextId(), Loc, Fn, Arg));
  }

  ExprId makeLet(SourceLoc Loc, VarId Var, ExprId Init, ExprId Body,
                 bool IsRec) {
    ExprId Id =
        add(makeExprPtr<LetExpr>(nextId(), Loc, Var, Init, Body, IsRec));
    setVarBinder(Var, Id);
    return Id;
  }

  ExprId makeLetRecN(SourceLoc Loc,
                     std::vector<LetRecNExpr::Binding> Bindings,
                     ExprId Body) {
    ExprId Id = add(
        makeExprPtr<LetRecNExpr>(nextId(), Loc, std::move(Bindings), Body));
    for (const LetRecNExpr::Binding &B :
         cast<LetRecNExpr>(expr(Id))->bindings())
      setVarBinder(B.Var, Id);
    return Id;
  }

  ExprId makeIntLit(SourceLoc Loc, int64_t Value) {
    return add(makeExprPtr<LitExpr>(nextId(), Loc, Value));
  }
  ExprId makeBoolLit(SourceLoc Loc, bool Value) {
    return add(makeExprPtr<LitExpr>(nextId(), Loc, Value));
  }
  ExprId makeUnitLit(SourceLoc Loc) {
    return add(makeExprPtr<LitExpr>(nextId(), Loc));
  }
  ExprId makeStringLit(SourceLoc Loc, Symbol Value) {
    return add(makeExprPtr<LitExpr>(nextId(), Loc, Value));
  }

  ExprId makeIf(SourceLoc Loc, ExprId Cond, ExprId Then, ExprId Else) {
    return add(makeExprPtr<IfExpr>(nextId(), Loc, Cond, Then, Else));
  }

  ExprId makeTuple(SourceLoc Loc, std::vector<ExprId> Elems) {
    return add(makeExprPtr<TupleExpr>(nextId(), Loc, std::move(Elems)));
  }

  ExprId makeProj(SourceLoc Loc, uint32_t Index, ExprId Tuple) {
    return add(makeExprPtr<ProjExpr>(nextId(), Loc, Index, Tuple));
  }

  ExprId makeCon(SourceLoc Loc, ConId Con, std::vector<ExprId> Args) {
    return add(makeExprPtr<ConExpr>(nextId(), Loc, Con, std::move(Args)));
  }

  ExprId makeCase(SourceLoc Loc, ExprId Scrutinee, std::vector<CaseArm> Arms) {
    ExprId Id = add(makeExprPtr<CaseExpr>(nextId(), Loc, Scrutinee,
                                               std::move(Arms)));
    for (const CaseArm &Arm : cast<CaseExpr>(expr(Id))->arms())
      for (VarId B : Arm.Binders)
        setVarBinder(B, Id);
    return Id;
  }

  ExprId makePrim(SourceLoc Loc, PrimOp Op, std::vector<ExprId> Args) {
    return add(makeExprPtr<PrimExpr>(nextId(), Loc, Op, std::move(Args)));
  }

private:
  ExprId nextId() const { return ExprId(static_cast<uint32_t>(Exprs.size())); }

  ExprId add(ExprPtr E) {
    ExprId Id = E->id();
    Exprs.push_back(std::move(E));
    return Id;
  }

  std::vector<ExprPtr> Exprs;
  std::vector<VarInfo> Vars;
  std::vector<ExprId> Lams;
  std::vector<ConInfo> Cons;
  std::vector<DataDecl> Datas;
  std::unordered_map<Symbol, ConId> ConIndex;
  ExprId Root;
  StringInterner Strings;
  TypeTable Types;
};

/// Invokes \p Fn on each direct child of \p E, left to right.
template <typename FnT>
void forEachChild(const Expr *E, FnT Fn) {
  switch (E->kind()) {
  case ExprKind::Var:
  case ExprKind::Lit:
    return;
  case ExprKind::Lam:
    Fn(cast<LamExpr>(E)->body());
    return;
  case ExprKind::App:
    Fn(cast<AppExpr>(E)->fn());
    Fn(cast<AppExpr>(E)->arg());
    return;
  case ExprKind::Let:
    Fn(cast<LetExpr>(E)->init());
    Fn(cast<LetExpr>(E)->body());
    return;
  case ExprKind::LetRecN:
    for (const LetRecNExpr::Binding &B : cast<LetRecNExpr>(E)->bindings())
      Fn(B.Init);
    Fn(cast<LetRecNExpr>(E)->body());
    return;
  case ExprKind::If:
    Fn(cast<IfExpr>(E)->cond());
    Fn(cast<IfExpr>(E)->thenExpr());
    Fn(cast<IfExpr>(E)->elseExpr());
    return;
  case ExprKind::Tuple:
    for (ExprId C : cast<TupleExpr>(E)->elems())
      Fn(C);
    return;
  case ExprKind::Proj:
    Fn(cast<ProjExpr>(E)->tuple());
    return;
  case ExprKind::Con:
    for (ExprId C : cast<ConExpr>(E)->args())
      Fn(C);
    return;
  case ExprKind::Case:
    Fn(cast<CaseExpr>(E)->scrutinee());
    for (const CaseArm &Arm : cast<CaseExpr>(E)->arms())
      Fn(Arm.Body);
    return;
  case ExprKind::Prim:
    for (ExprId C : cast<PrimExpr>(E)->args())
      Fn(C);
    return;
  }
  assert(false && "unknown expression kind");
}

/// Invokes \p Fn on every expression reachable from \p RootId (including it),
/// parents before children.
template <typename FnT>
void forEachExprPreorder(const Module &M, ExprId RootId, FnT Fn) {
  std::vector<ExprId> Stack{RootId};
  while (!Stack.empty()) {
    ExprId Id = Stack.back();
    Stack.pop_back();
    const Expr *E = M.expr(Id);
    Fn(Id, E);
    // Push children, then reverse the new segment so they pop
    // left-to-right (no per-node allocation; this is on the hot path of
    // every analysis's build pass).
    size_t Mark = Stack.size();
    forEachChild(E, [&](ExprId C) { Stack.push_back(C); });
    std::reverse(Stack.begin() + Mark, Stack.end());
  }
}

} // namespace stcfa

#endif // STCFA_AST_MODULE_H
