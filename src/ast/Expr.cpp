//===-- ast/Expr.cpp - Expression AST helpers -----------------------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Expr.h"

using namespace stcfa;

void ExprDeleter::operator()(Expr *E) const {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::Var:
    delete static_cast<VarExpr *>(E);
    return;
  case ExprKind::Lam:
    delete static_cast<LamExpr *>(E);
    return;
  case ExprKind::App:
    delete static_cast<AppExpr *>(E);
    return;
  case ExprKind::Let:
    delete static_cast<LetExpr *>(E);
    return;
  case ExprKind::LetRecN:
    delete static_cast<LetRecNExpr *>(E);
    return;
  case ExprKind::Lit:
    delete static_cast<LitExpr *>(E);
    return;
  case ExprKind::If:
    delete static_cast<IfExpr *>(E);
    return;
  case ExprKind::Tuple:
    delete static_cast<TupleExpr *>(E);
    return;
  case ExprKind::Proj:
    delete static_cast<ProjExpr *>(E);
    return;
  case ExprKind::Con:
    delete static_cast<ConExpr *>(E);
    return;
  case ExprKind::Case:
    delete static_cast<CaseExpr *>(E);
    return;
  case ExprKind::Prim:
    delete static_cast<PrimExpr *>(E);
    return;
  }
  assert(false && "unknown expression kind");
}

const char *stcfa::primName(PrimOp Op) {
  switch (Op) {
  case PrimOp::Add:
    return "+";
  case PrimOp::Sub:
    return "-";
  case PrimOp::Mul:
    return "*";
  case PrimOp::Div:
    return "/";
  case PrimOp::Lt:
    return "<";
  case PrimOp::Le:
    return "<=";
  case PrimOp::Eq:
    return "==";
  case PrimOp::Not:
    return "not";
  case PrimOp::Print:
    return "print";
  case PrimOp::RefNew:
    return "ref";
  case PrimOp::RefGet:
    return "!";
  case PrimOp::RefSet:
    return ":=";
  }
  assert(false && "unknown primitive");
  return "?";
}
