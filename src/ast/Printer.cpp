//===-- ast/Printer.cpp - Render AST back to surface syntax ---------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Printer.h"

using namespace stcfa;

namespace {

/// Binding strength levels, loosest to tightest.  `print` parenthesizes a
/// sub-expression whenever its level is looser than the context requires.
enum Level : int {
  LvlOpen = 0,   // fn / let / if / case bodies
  LvlAssign = 1, // :=
  LvlCompare = 2,
  LvlAdd = 3,
  LvlMul = 4,
  LvlApp = 5,
  LvlAtom = 6,
};

struct PrinterImpl {
  const Module &M;
  std::string Out;

  explicit PrinterImpl(const Module &M) : M(M) {}

  void print(ExprId Id, int MinLevel) {
    const Expr *E = M.expr(Id);
    int Lvl = level(E);
    bool Paren = Lvl < MinLevel;
    if (Paren)
      Out += '(';
    printBare(E);
    if (Paren)
      Out += ')';
  }

  static int level(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lam:
    case ExprKind::Let:
    case ExprKind::LetRecN:
    case ExprKind::If:
      return LvlOpen;
    case ExprKind::Case:
      return LvlAtom; // `case ... end` is self-delimiting
    case ExprKind::App:
      return LvlApp;
    case ExprKind::Prim:
      return primLevel(cast<PrimExpr>(E)->op());
    case ExprKind::Var:
    case ExprKind::Lit:
    case ExprKind::Tuple:
    case ExprKind::Proj:
    case ExprKind::Con:
      return LvlAtom;
    }
    assert(false && "unknown expression kind");
    return LvlAtom;
  }

  static int primLevel(PrimOp Op) {
    switch (Op) {
    case PrimOp::RefSet:
      return LvlAssign;
    case PrimOp::Lt:
    case PrimOp::Le:
    case PrimOp::Eq:
      return LvlCompare;
    case PrimOp::Add:
    case PrimOp::Sub:
      return LvlAdd;
    case PrimOp::Mul:
    case PrimOp::Div:
      return LvlMul;
    case PrimOp::Not:
    case PrimOp::Print:
    case PrimOp::RefNew:
    case PrimOp::RefGet:
      return LvlApp; // prefix operators bind like application
    }
    assert(false && "unknown primitive");
    return LvlAtom;
  }

  void printBare(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Var:
      Out += M.text(M.var(cast<VarExpr>(E)->var()).Name);
      return;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      Out += "fn ";
      Out += M.text(M.var(L->param()).Name);
      Out += " => ";
      print(L->body(), LvlOpen);
      return;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      print(A->fn(), LvlApp);
      Out += ' ';
      print(A->arg(), LvlAtom);
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      Out += L->isRec() ? "letrec " : "let ";
      Out += M.text(M.var(L->var()).Name);
      Out += " = ";
      print(L->init(), LvlAssign);
      Out += " in ";
      print(L->body(), LvlOpen);
      return;
    }
    case ExprKind::LetRecN: {
      const auto *L = cast<LetRecNExpr>(E);
      Out += "letrec ";
      for (size_t I = 0; I != L->bindings().size(); ++I) {
        if (I)
          Out += " and ";
        Out += M.text(M.var(L->bindings()[I].Var).Name);
        Out += " = ";
        print(L->bindings()[I].Init, LvlAssign);
      }
      Out += " in ";
      print(L->body(), LvlOpen);
      return;
    }
    case ExprKind::Lit: {
      const auto *L = cast<LitExpr>(E);
      switch (L->litKind()) {
      case LitKind::Int:
        Out += std::to_string(L->intValue());
        return;
      case LitKind::Bool:
        Out += L->boolValue() ? "true" : "false";
        return;
      case LitKind::Unit:
        Out += "unit";
        return;
      case LitKind::String:
        Out += '"';
        Out += M.text(L->stringValue());
        Out += '"';
        return;
      }
      assert(false && "unknown literal kind");
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Out += "if ";
      print(I->cond(), LvlAssign);
      Out += " then ";
      print(I->thenExpr(), LvlAssign);
      Out += " else ";
      print(I->elseExpr(), LvlOpen);
      return;
    }
    case ExprKind::Tuple: {
      const auto *T = cast<TupleExpr>(E);
      Out += '(';
      for (size_t I = 0; I != T->elems().size(); ++I) {
        if (I)
          Out += ", ";
        print(T->elems()[I], LvlOpen);
      }
      Out += ')';
      return;
    }
    case ExprKind::Proj: {
      const auto *P = cast<ProjExpr>(E);
      Out += '#';
      Out += std::to_string(P->index() + 1);
      Out += ' ';
      print(P->tuple(), LvlAtom);
      return;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      Out += M.text(M.con(C->con()).Name);
      if (C->args().empty())
        return;
      Out += '(';
      for (size_t I = 0; I != C->args().size(); ++I) {
        if (I)
          Out += ", ";
        print(C->args()[I], LvlOpen);
      }
      Out += ')';
      return;
    }
    case ExprKind::Case: {
      const auto *C = cast<CaseExpr>(E);
      Out += "case ";
      print(C->scrutinee(), LvlAssign);
      Out += " of ";
      for (size_t I = 0; I != C->arms().size(); ++I) {
        const CaseArm &Arm = C->arms()[I];
        if (I)
          Out += " | ";
        Out += M.text(M.con(Arm.Con).Name);
        if (!Arm.Binders.empty()) {
          Out += '(';
          for (size_t B = 0; B != Arm.Binders.size(); ++B) {
            if (B)
              Out += ", ";
            Out += M.text(M.var(Arm.Binders[B]).Name);
          }
          Out += ')';
        }
        Out += " => ";
        print(Arm.Body, LvlAssign);
      }
      Out += " end";
      return;
    }
    case ExprKind::Prim: {
      const auto *P = cast<PrimExpr>(E);
      switch (P->op()) {
      case PrimOp::Not:
      case PrimOp::Print:
      case PrimOp::RefNew:
        Out += primName(P->op());
        Out += ' ';
        print(P->args()[0], LvlAtom);
        return;
      case PrimOp::RefGet:
        Out += '!';
        print(P->args()[0], LvlAtom);
        return;
      case PrimOp::RefSet:
        // Right-associative, loosest binop.
        print(P->args()[0], LvlCompare);
        Out += " := ";
        print(P->args()[1], LvlAssign);
        return;
      default: {
        int Lvl = primLevel(P->op());
        // Left-associative: the left child may be at the same level, the
        // right child must bind tighter.
        print(P->args()[0], Lvl);
        Out += ' ';
        Out += primName(P->op());
        Out += ' ';
        print(P->args()[1], Lvl + 1);
        return;
      }
      }
    }
    }
    assert(false && "unknown expression kind");
  }
};

} // namespace

std::string stcfa::printExpr(const Module &M, ExprId E) {
  PrinterImpl P(M);
  P.print(E, LvlOpen);
  return std::move(P.Out);
}

std::string stcfa::printProgram(const Module &M) {
  std::string Out;
  for (const DataDecl &D : M.dataDecls()) {
    Out += "data ";
    Out += M.text(D.Name);
    Out += " = ";
    for (size_t I = 0; I != D.Cons.size(); ++I) {
      if (I)
        Out += " | ";
      const ConInfo &C = M.con(D.Cons[I]);
      Out += M.text(C.Name);
      if (!C.ArgTypes.empty()) {
        Out += '(';
        for (size_t A = 0; A != C.ArgTypes.size(); ++A) {
          if (A)
            Out += ", ";
          Out += M.types().render(C.ArgTypes[A], M.strings());
        }
        Out += ')';
      }
    }
    Out += ";\n";
  }
  Out += printExpr(M, M.root());
  Out += '\n';
  return Out;
}

std::string stcfa::describeExpr(const Module &M, ExprId E) {
  static const char *Names[] = {"var",   "fn",   "app", "let",  "letrec",
                                "lit",   "if",   "tuple", "proj", "con",
                                "case",  "prim"};
  const Expr *Ex = M.expr(E);
  std::string Out = Names[static_cast<int>(Ex->kind())];
  Out += "@" + std::to_string(E.index());
  if (Ex->loc().isValid())
    Out += "(" + std::to_string(Ex->loc().Line) + ":" +
           std::to_string(Ex->loc().Col) + ")";
  return Out;
}

std::string stcfa::describeLabel(const Module &M, LabelId L) {
  const auto *Lam = cast<LamExpr>(M.expr(M.lamOfLabel(L)));
  std::string Out = "fn#" + std::to_string(L.index()) + "(";
  Out += M.text(M.var(Lam->param()).Name);
  SourceLoc Loc = M.expr(M.lamOfLabel(L))->loc();
  if (Loc.isValid())
    Out += "@" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
  return Out + ")";
}
