//===-- ast/Printer.h - Render AST back to surface syntax ------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints expressions back to parsable surface syntax.  Useful for
/// debugging analyses, for golden tests of the parser, and for the
/// generators' round-trip property tests (print → parse → same shape).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_AST_PRINTER_H
#define STCFA_AST_PRINTER_H

#include "ast/Module.h"

#include <string>

namespace stcfa {

/// Renders \p E (by default the module root) as surface syntax.
std::string printExpr(const Module &M, ExprId E);

/// Renders the whole program: `data` declarations followed by the root
/// expression.  The output is parsable by `Parser`.
std::string printProgram(const Module &M);

/// Renders a compact one-line description of an expression occurrence for
/// diagnostics, e.g. `app@12(3:7)`.
std::string describeExpr(const Module &M, ExprId E);

/// Renders an abstraction label as the driver and snapshot writer print
/// it, e.g. `fn#3(x@2:9)` — shared so persisted name tables match the
/// in-memory rendering byte for byte.
std::string describeLabel(const Module &M, LabelId L);

} // namespace stcfa

#endif // STCFA_AST_PRINTER_H
