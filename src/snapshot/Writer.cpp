//===-- snapshot/Writer.cpp - Serialize a FrozenGraph to disk -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//

#include "ast/Module.h"
#include "ast/Printer.h"
#include "core/LabelSetKernel.h"
#include "snapshot/Snapshot.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include <unistd.h>

using namespace stcfa;

namespace {

/// One section staged for layout: its id and payload bytes.
struct StagedSection {
  SnapshotSectionId Id;
  const void *Data;
  uint64_t Size;
};

} // namespace

Status stcfa::writeSnapshot(const std::string &Path, const FrozenGraph &F,
                            const Module &M,
                            const SnapshotWriteOptions &Opts) {
  Span WriteSpan("snapshot.write");
  static Counter &Writes = counter("snapshot.writes");
  static Counter &WriteFailures = counter("snapshot.write-failures");
  static Counter &WriteBytes = counter("snapshot.write-bytes");
  static Histogram &Millis =
      histogram("snapshot.write-millis", latencyBucketsMillis());
  Writes.inc();
  Timer T;
  auto fail = [&](Status S) {
    WriteFailures.inc();
    WriteSpan.arg("status", statusCodeName(S.code()));
    return S;
  };

  if (!F.status().isOk())
    return fail(Status::invalidArgument(
        "refusing to persist an inert snapshot: " + F.status().toString()));
  if (Opts.Kernel && !Opts.Kernel->complete())
    return fail(Status::invalidArgument(
        "refusing to persist an incomplete label-set kernel"));
  // The serialization buffer is the writer's one big allocation; the
  // injected site sits where a real bad_alloc guard would.
  if (faultFires(fault::SnapshotWriteAlloc))
    return fail(Status::outOfMemory("snapshot buffer allocation failed"));

  const FrozenGraph::Tables Tb = F.tables();

  // Pre-rendered name tables: the loader has no Module, so the driver
  // renders query output from these — byte-identical to the in-memory
  // path because both go through describeExpr/describeLabel.
  std::string Blob;
  std::vector<uint32_t> ExprOffs(size_t(Tb.NumExprs) + 1, 0);
  for (uint32_t I = 0; I != Tb.NumExprs; ++I) {
    Blob += describeExpr(M, ExprId(I));
    ExprOffs[I + 1] = static_cast<uint32_t>(Blob.size());
  }
  std::vector<uint32_t> LabelOffs(size_t(Tb.NumLabels) + 1,
                                  static_cast<uint32_t>(Blob.size()));
  for (uint32_t I = 0; I != Tb.NumLabels; ++I) {
    Blob += describeLabel(M, LabelId(I));
    LabelOffs[I + 1] = static_cast<uint32_t>(Blob.size());
  }
  std::vector<uint32_t> Ranges(4 * size_t(Tb.NumExprs), 0);
  for (uint32_t I = 0; I != Tb.NumExprs; ++I) {
    SourceRange R = M.expr(ExprId(I))->range();
    Ranges[4 * I + 0] = R.Begin.Line;
    Ranges[4 * I + 1] = R.Begin.Col;
    Ranges[4 * I + 2] = R.End.Line;
    Ranges[4 * I + 3] = R.End.Col;
  }

  // The kernel matrix, rows re-packed tight (the in-memory rows are
  // cache-line padded; on disk every byte is checksummed, so no padding).
  std::vector<uint64_t> KernelRows;
  uint32_t KernelWords = 0;
  if (Opts.Kernel && Opts.Kernel->wordsPerSet() != 0 && Tb.NumSccs != 0) {
    KernelWords = Opts.Kernel->wordsPerSet();
    KernelRows.reserve(size_t(Tb.NumSccs) * KernelWords);
    for (uint32_t Scc = 0; Scc != Tb.NumSccs; ++Scc) {
      std::span<const uint64_t> Row = Opts.Kernel->rowSpan(Scc);
      KernelRows.insert(KernelRows.end(), Row.begin(), Row.end());
    }
  }

  SnapshotMeta Meta = {};
  Meta.NumNodes = Tb.NumNodes;
  Meta.NumExprs = Tb.NumExprs;
  Meta.NumVars = Tb.NumVars;
  Meta.NumLabels = Tb.NumLabels;
  Meta.NumSccs = Tb.NumSccs;
  Meta.RootExpr = M.root().index();
  Meta.KernelWordsPerSet = KernelWords;
  Meta.NumEdges = Tb.OutTargets.size();

  auto bytesOf = [](const auto &V) -> uint64_t {
    return V.size() * sizeof(*V.data());
  };
  std::vector<StagedSection> Secs = {
      {SnapshotSectionId::Meta, &Meta, sizeof(Meta)},
      {SnapshotSectionId::OutOffsets, Tb.OutOffsets.data(),
       bytesOf(Tb.OutOffsets)},
      {SnapshotSectionId::OutTargets, Tb.OutTargets.data(),
       bytesOf(Tb.OutTargets)},
      {SnapshotSectionId::InOffsets, Tb.InOffsets.data(),
       bytesOf(Tb.InOffsets)},
      {SnapshotSectionId::InTargets, Tb.InTargets.data(),
       bytesOf(Tb.InTargets)},
      {SnapshotSectionId::LabelAt, Tb.LabelAt.data(), bytesOf(Tb.LabelAt)},
      {SnapshotSectionId::NodeOps, Tb.Ops.data(), bytesOf(Tb.Ops)},
      {SnapshotSectionId::NodeOfExpr, Tb.NodeOfExpr.data(),
       bytesOf(Tb.NodeOfExpr)},
      {SnapshotSectionId::NodeOfVar, Tb.NodeOfVar.data(),
       bytesOf(Tb.NodeOfVar)},
      {SnapshotSectionId::LabelRoots, Tb.LabelRoots.data(),
       bytesOf(Tb.LabelRoots)},
      {SnapshotSectionId::SccOf, Tb.SccOf.data(), bytesOf(Tb.SccOf)},
      {SnapshotSectionId::RanOf, Tb.RanOf.data(), bytesOf(Tb.RanOf)},
      {SnapshotSectionId::StringBlob, Blob.data(), Blob.size()},
      {SnapshotSectionId::ExprNameOffsets, ExprOffs.data(),
       bytesOf(ExprOffs)},
      {SnapshotSectionId::LabelNameOffsets, LabelOffs.data(),
       bytesOf(LabelOffs)},
      {SnapshotSectionId::SourceRanges, Ranges.data(), bytesOf(Ranges)},
  };
  if (KernelWords != 0)
    Secs.push_back({SnapshotSectionId::KernelRows, KernelRows.data(),
                    bytesOf(KernelRows)});

  // Layout: header, section table, then 64-byte-aligned payloads in table
  // order.  Padding bytes are zero, so identical tables always produce
  // byte-identical files (the determinism the cache keys rely on).
  const uint64_t TableOff = sizeof(SnapshotHeader);
  uint64_t Off = snapshotAlignUp(TableOff + Secs.size() *
                                                sizeof(SnapshotSectionEntry));
  std::vector<SnapshotSectionEntry> Entries(Secs.size());
  for (size_t I = 0; I != Secs.size(); ++I) {
    Entries[I].Id = static_cast<uint32_t>(Secs[I].Id);
    Entries[I].Reserved = 0;
    Entries[I].Offset = Off;
    Entries[I].SizeBytes = Secs[I].Size;
    Off = snapshotAlignUp(Off + Secs[I].Size);
  }
  // File size: end of the last payload, unpadded (any truncation below
  // it is caught by the declared-size check before any span exists).
  const uint64_t FileSize = Entries.empty()
                                ? snapshotAlignUp(TableOff)
                                : Entries.back().Offset +
                                      Entries.back().SizeBytes;

  std::vector<unsigned char> Buf(FileSize, 0);
  for (size_t I = 0; I != Secs.size(); ++I) {
    if (Secs[I].Size != 0)
      std::memcpy(Buf.data() + Entries[I].Offset, Secs[I].Data, Secs[I].Size);
    Entries[I].Checksum = hashBytes(Buf.data() + Entries[I].Offset,
                                    Entries[I].SizeBytes);
  }
  std::memcpy(Buf.data() + TableOff, Entries.data(),
              Entries.size() * sizeof(SnapshotSectionEntry));

  SnapshotHeader H = {};
  std::memcpy(H.Magic, SnapshotMagic, sizeof(SnapshotMagic));
  H.Version = SnapshotFormatVersion;
  H.Endian = SnapshotEndianTag;
  H.Flags = KernelWords != 0 ? uint64_t(SnapshotHasKernelRows) : 0;
  H.FileSize = FileSize;
  H.ContentHash = Opts.ContentHash;
  H.NumSections = static_cast<uint32_t>(Secs.size());
  std::memcpy(Buf.data(), &H, sizeof(H));
  const uint64_t HeaderCk =
      hashBytes(Buf.data(), sizeof(SnapshotHeader) - sizeof(uint64_t));
  std::memcpy(Buf.data() + sizeof(SnapshotHeader) - sizeof(uint64_t),
              &HeaderCk, sizeof(HeaderCk));

  // Corruption canaries (Corrupt-kind fault sites): each silently damages
  // the buffer *after* checksumming, producing the on-disk failure the
  // loader's validation must catch — never a wrong answer.
  if (faultFires(fault::SnapshotCsrBitFlip)) {
    // Flip one bit inside the OutTargets payload (fall back to the last
    // byte of the file for an edgeless graph).
    unsigned char *Target = &Buf[Buf.size() - 1];
    for (size_t I = 0; I != Secs.size(); ++I)
      if (Secs[I].Id == SnapshotSectionId::OutTargets &&
          Entries[I].SizeBytes != 0)
        Target = Buf.data() + Entries[I].Offset;
    *Target ^= 0x10;
  }
  if (faultFires(fault::SnapshotHeaderCorrupt))
    Buf[0] ^= 0x40; // first magic byte
  if (faultFires(fault::SnapshotTruncate))
    Buf.resize(Buf.size() - std::min<size_t>(Buf.size(), 65));

  // Atomic replace: write a temporary sibling, flush, rename into place.
  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  std::FILE *OutFile = std::fopen(Tmp.c_str(), "wb");
  if (!OutFile)
    return fail(Status::internal("cannot create snapshot temp file '" + Tmp +
                                 "'"));
  const bool Wrote =
      Buf.empty() ||
      std::fwrite(Buf.data(), 1, Buf.size(), OutFile) == Buf.size();
  bool Flushed = std::fflush(OutFile) == 0;
  Flushed = Flushed && ::fsync(::fileno(OutFile)) == 0;
  const bool Closed = std::fclose(OutFile) == 0;
  if (!Wrote || !Flushed || !Closed || std::rename(Tmp.c_str(), Path.c_str())) {
    std::remove(Tmp.c_str());
    return fail(Status::internal("cannot write snapshot '" + Path + "'"));
  }

  WriteBytes.add(Buf.size());
  Millis.observe(static_cast<uint64_t>(T.millis()));
  WriteSpan.arg("bytes", Buf.size());
  WriteSpan.arg("sections", Secs.size());
  WriteSpan.arg("nodes", Tb.NumNodes);
  WriteSpan.arg("edges", Meta.NumEdges);
  WriteSpan.arg("kernel_rows", KernelWords != 0 ? Tb.NumSccs : 0);
  WriteSpan.arg("status", statusCodeName(StatusCode::Ok));
  return Status::ok();
}
