//===-- snapshot/Reader.cpp - mmap and validate a snapshot ----------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loader half of the snapshot subsystem.  `MappedFile` maps the
/// whole file read-only; `LoadedSnapshot::load` validates header,
/// section table, bounds, and every checksum *before* constructing any
/// span, so a truncated, corrupted, or foreign file is a `Status` error
/// and never an out-of-bounds read.  Validation is one linear pass over
/// the bytes (the checksums); everything after it is pointer arithmetic
/// — no deserialization, no copies.
///
//===----------------------------------------------------------------------===//

#include "core/LabelSetKernel.h"
#include "snapshot/Snapshot.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace stcfa;

MappedFile &MappedFile::operator=(MappedFile &&O) noexcept {
  if (this != &O) {
    if (Data)
      ::munmap(const_cast<unsigned char *>(Data), Size);
    Data = O.Data;
    Size = O.Size;
    O.Data = nullptr;
    O.Size = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (Data)
    ::munmap(const_cast<unsigned char *>(Data), Size);
}

MappedFile MappedFile::open(const std::string &Path, Status &Out) {
  Out = Status::ok();
  // The injected map failure sits on the same unwind a real mmap/open
  // failure takes.
  if (faultFires(fault::SnapshotMapFail)) {
    Out = Status::outOfMemory("snapshot mmap failed");
    return {};
  }
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Out = Status::internal("cannot open snapshot '" + Path +
                           "': " + std::strerror(errno));
    return {};
  }
  struct stat St = {};
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    Out = Status::internal("cannot stat snapshot '" + Path + "'");
    ::close(Fd);
    return {};
  }
  if (St.st_size == 0) {
    Out = Status::invalidArgument("snapshot '" + Path + "' is empty");
    ::close(Fd);
    return {};
  }
  // MAP_POPULATE prefills the page tables in one kernel pass: checksum
  // validation touches every byte anyway, and batched population beats
  // one minor fault per 4 KiB on the warm-load critical path.
  int Flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  Flags |= MAP_POPULATE;
#endif
  void *P = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                   Flags, Fd, 0);
  ::close(Fd);
  if (P == MAP_FAILED) {
    Out = Status::internal("cannot mmap snapshot '" + Path +
                           "': " + std::strerror(errno));
    return {};
  }
  MappedFile M;
  M.Data = static_cast<const unsigned char *>(P);
  M.Size = static_cast<size_t>(St.st_size);
  return M;
}

namespace {

/// Casts a validated payload to a typed span.  The payload offset is a
/// multiple of 64 and the mapping is page-aligned, so every element type
/// in the format is correctly aligned.
template <typename T>
std::span<const T> sectionSpan(const unsigned char *Base,
                               const SnapshotSectionEntry &E) {
  return {reinterpret_cast<const T *>(Base + E.Offset),
          static_cast<size_t>(E.SizeBytes / sizeof(T))};
}

} // namespace

std::unique_ptr<LoadedSnapshot> LoadedSnapshot::load(const std::string &Path,
                                                     Status &Out) {
  Span LoadSpan("snapshot.load");
  static Counter &Loads = counter("snapshot.loads");
  static Counter &LoadFailures = counter("snapshot.load-failures");
  static Histogram &Millis =
      histogram("snapshot.load-millis", latencyBucketsMillis());
  Loads.inc();
  Timer T;
  auto fail = [&](Status S) -> std::unique_ptr<LoadedSnapshot> {
    LoadFailures.inc();
    LoadSpan.arg("status", statusCodeName(S.code()));
    Out = std::move(S);
    return nullptr;
  };
  auto reject = [&](std::string Msg) {
    return fail(Status::invalidArgument("snapshot '" + Path +
                                        "': " + std::move(Msg)));
  };

  Status MapStatus;
  MappedFile Map = MappedFile::open(Path, MapStatus);
  if (!Map.mapped())
    return fail(std::move(MapStatus));
  const unsigned char *Base = Map.data();

  //===--- header ---------------------------------------------------------//
  if (Map.size() < sizeof(SnapshotHeader))
    return reject("only " + std::to_string(Map.size()) +
                  " bytes, smaller than the 64-byte header");
  SnapshotHeader H;
  std::memcpy(&H, Base, sizeof(H));
  if (std::memcmp(H.Magic, SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return reject("bad magic — not a stcfa snapshot");
  if (H.Endian != SnapshotEndianTag)
    return reject("endianness mismatch — written on a foreign-endian host");
  if (H.Version != SnapshotFormatVersion)
    return reject("format version " + std::to_string(H.Version) +
                  ", this build reads version " +
                  std::to_string(SnapshotFormatVersion) +
                  " — rebuild the snapshot");
  if (hashBytes(Base, sizeof(SnapshotHeader) - sizeof(uint64_t)) !=
      H.HeaderChecksum)
    return reject("header checksum mismatch");
  if (H.FileSize != Map.size())
    return reject("declared size " + std::to_string(H.FileSize) +
                  " != actual size " + std::to_string(Map.size()) +
                  " — truncated or padded file");
  if (H.NumSections == 0 || H.NumSections > SnapshotNumSectionIds)
    return reject("unreasonable section count " +
                  std::to_string(H.NumSections));

  //===--- section table --------------------------------------------------//
  const uint64_t TableEnd =
      sizeof(SnapshotHeader) + uint64_t(H.NumSections) *
                                   sizeof(SnapshotSectionEntry);
  if (TableEnd > Map.size())
    return reject("section table overruns the file");
  const SnapshotSectionEntry *Sections = nullptr;
  SnapshotSectionEntry Table[SnapshotNumSectionIds];
  std::memcpy(Table, Base + sizeof(SnapshotHeader),
              uint64_t(H.NumSections) * sizeof(SnapshotSectionEntry));
  Sections = Table;

  const SnapshotSectionEntry *ById[SnapshotNumSectionIds] = {};
  for (uint32_t I = 0; I != H.NumSections; ++I) {
    const SnapshotSectionEntry &E = Sections[I];
    if (E.Id >= SnapshotNumSectionIds)
      return reject("unknown section id " + std::to_string(E.Id));
    if (ById[E.Id])
      return reject("duplicate section id " + std::to_string(E.Id));
    if (E.Offset % SnapshotSectionAlign != 0)
      return reject("section " + std::to_string(E.Id) + " is misaligned");
    if (E.Offset < TableEnd || E.Offset > Map.size() ||
        E.SizeBytes > Map.size() - E.Offset)
      return reject("section " + std::to_string(E.Id) +
                    " overruns the file");
    if (hashBytes(Base + E.Offset, E.SizeBytes) != E.Checksum)
      return reject("section " + std::to_string(E.Id) +
                    " checksum mismatch — corrupt or bit-rotted file");
    ById[E.Id] = &E;
  }
  auto need = [&](SnapshotSectionId Id) {
    return ById[static_cast<uint32_t>(Id)];
  };

  //===--- meta + per-section size checks ---------------------------------//
  const SnapshotSectionEntry *MetaE = need(SnapshotSectionId::Meta);
  if (!MetaE || MetaE->SizeBytes != sizeof(SnapshotMeta))
    return reject("missing or mis-sized meta section");
  SnapshotMeta Meta;
  std::memcpy(&Meta, Base + MetaE->Offset, sizeof(Meta));

  auto checkArray = [&](SnapshotSectionId Id, uint64_t Elems,
                        uint64_t ElemSize) -> const SnapshotSectionEntry * {
    const SnapshotSectionEntry *E = need(Id);
    if (!E || E->SizeBytes != Elems * ElemSize)
      return nullptr;
    return E;
  };
  const uint64_t N = Meta.NumNodes;
  const SnapshotSectionEntry *OutOff =
      checkArray(SnapshotSectionId::OutOffsets, N + 1, 4);
  const SnapshotSectionEntry *OutTgt =
      checkArray(SnapshotSectionId::OutTargets, Meta.NumEdges, 4);
  const SnapshotSectionEntry *InOff =
      checkArray(SnapshotSectionId::InOffsets, N + 1, 4);
  const SnapshotSectionEntry *InTgt =
      checkArray(SnapshotSectionId::InTargets, Meta.NumEdges, 4);
  const SnapshotSectionEntry *LabAt =
      checkArray(SnapshotSectionId::LabelAt, N, 4);
  const SnapshotSectionEntry *Ops = checkArray(SnapshotSectionId::NodeOps, N,
                                               sizeof(NodeOp));
  const SnapshotSectionEntry *NOfE =
      checkArray(SnapshotSectionId::NodeOfExpr, Meta.NumExprs, 4);
  const SnapshotSectionEntry *NOfV =
      checkArray(SnapshotSectionId::NodeOfVar, Meta.NumVars, 4);
  const SnapshotSectionEntry *LRoots =
      checkArray(SnapshotSectionId::LabelRoots, 2 * uint64_t(Meta.NumLabels),
                 4);
  const SnapshotSectionEntry *Scc = checkArray(SnapshotSectionId::SccOf, N, 4);
  const SnapshotSectionEntry *RanE =
      checkArray(SnapshotSectionId::RanOf, N, 4);
  const SnapshotSectionEntry *EOffs =
      checkArray(SnapshotSectionId::ExprNameOffsets,
                 uint64_t(Meta.NumExprs) + 1, 4);
  const SnapshotSectionEntry *LOffs =
      checkArray(SnapshotSectionId::LabelNameOffsets,
                 uint64_t(Meta.NumLabels) + 1, 4);
  const SnapshotSectionEntry *SrcR = checkArray(
      SnapshotSectionId::SourceRanges, 4 * uint64_t(Meta.NumExprs), 4);
  const SnapshotSectionEntry *BlobE = need(SnapshotSectionId::StringBlob);
  if (!OutOff || !OutTgt || !InOff || !InTgt || !LabAt || !Ops || !NOfE ||
      !NOfV || !LRoots || !Scc || !RanE || !EOffs || !LOffs || !SrcR || !BlobE)
    return reject("a required section is missing or sized inconsistently "
                  "with the meta counts");
  if (Meta.NumExprs != 0 && Meta.RootExpr >= Meta.NumExprs)
    return reject("root occurrence out of range");

  const SnapshotSectionEntry *Rows = nullptr;
  if (H.Flags & SnapshotHasKernelRows) {
    if (Meta.KernelWordsPerSet == 0)
      return reject("kernel-rows flag set but words-per-set is zero");
    Rows = checkArray(SnapshotSectionId::KernelRows,
                      uint64_t(Meta.NumSccs) * Meta.KernelWordsPerSet, 8);
    if (!Rows)
      return reject("kernel-rows section missing or mis-sized");
  }

  //===--- string-table coherence -----------------------------------------//
  auto checkOffsets = [&](const SnapshotSectionEntry *E) {
    std::span<const uint32_t> O = sectionSpan<uint32_t>(Base, *E);
    for (size_t I = 1; I < O.size(); ++I)
      if (O[I] < O[I - 1])
        return false;
    return O.empty() || (O.front() <= O.back() &&
                         uint64_t(O.back()) <= BlobE->SizeBytes);
  };
  if (!checkOffsets(EOffs) || !checkOffsets(LOffs))
    return reject("name-table offsets are not monotone within the string "
                  "blob");

  //===--- assemble the zero-copy view ------------------------------------//
  auto Snap = std::unique_ptr<LoadedSnapshot>(new LoadedSnapshot());
  FrozenGraph::Tables Tb;
  Tb.NumNodes = Meta.NumNodes;
  Tb.NumExprs = Meta.NumExprs;
  Tb.NumVars = Meta.NumVars;
  Tb.NumLabels = Meta.NumLabels;
  Tb.OutOffsets = sectionSpan<uint32_t>(Base, *OutOff);
  Tb.OutTargets = sectionSpan<uint32_t>(Base, *OutTgt);
  Tb.InOffsets = sectionSpan<uint32_t>(Base, *InOff);
  Tb.InTargets = sectionSpan<uint32_t>(Base, *InTgt);
  Tb.LabelAt = sectionSpan<uint32_t>(Base, *LabAt);
  Tb.Ops = sectionSpan<NodeOp>(Base, *Ops);
  Tb.NodeOfExpr = sectionSpan<uint32_t>(Base, *NOfE);
  Tb.NodeOfVar = sectionSpan<uint32_t>(Base, *NOfV);
  Tb.LabelRoots = sectionSpan<uint32_t>(Base, *LRoots);
  Tb.SccOf = sectionSpan<uint32_t>(Base, *Scc);
  Tb.NumSccs = Meta.NumSccs;
  Tb.RanOf = sectionSpan<uint32_t>(Base, *RanE);
  Snap->F = FrozenGraph::fromTables(Tb);
  Snap->Map = std::move(Map);
  Snap->ContentHash = H.ContentHash;
  Snap->RootExpr = Meta.RootExpr;
  Snap->KernelWordsPerSet = Rows ? Meta.KernelWordsPerSet : 0;
  Snap->StringBlob = sectionSpan<char>(Base, *BlobE);
  Snap->ExprNameOffsets = sectionSpan<uint32_t>(Base, *EOffs);
  Snap->LabelNameOffsets = sectionSpan<uint32_t>(Base, *LOffs);
  Snap->SourceRanges = sectionSpan<uint32_t>(Base, *SrcR);
  if (Rows)
    Snap->KernelRows = sectionSpan<uint64_t>(Base, *Rows);

  Millis.observe(static_cast<uint64_t>(T.millis()));
  LoadSpan.arg("bytes", Snap->Map.size());
  LoadSpan.arg("nodes", Meta.NumNodes);
  LoadSpan.arg("edges", Meta.NumEdges);
  LoadSpan.arg("kernel_rows", Rows ? Meta.NumSccs : 0);
  LoadSpan.arg("status", statusCodeName(StatusCode::Ok));
  Out = Status::ok();
  return Snap;
}

std::unique_ptr<LabelSetKernel> LoadedSnapshot::adoptKernel() const {
  if (KernelRows.empty() || KernelWordsPerSet == 0)
    return nullptr;
  return std::make_unique<LabelSetKernel>(*F, KernelRows, KernelWordsPerSet);
}
