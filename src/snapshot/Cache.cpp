//===-- snapshot/Cache.cpp - Content-addressed snapshot cache -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-key recipe (docs/SNAPSHOT.md): `hashBytes(source)` combined with
/// the snapshot format version and a canonical configuration string
/// naming every option that shapes the frozen tables.  Any source edit,
/// option change, or format bump changes the key, so a stale entry can
/// never be served — there is no invalidation protocol, only misses.
///
//===----------------------------------------------------------------------===//

#include "snapshot/Snapshot.h"
#include "support/Hashing.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

using namespace stcfa;

uint64_t stcfa::snapshotCacheKey(std::string_view Source,
                                 std::string_view Config) {
  uint64_t H = hashBytes(Source.data(), Source.size());
  H = hashCombine(H, SnapshotFormatVersion);
  return hashCombine(H, hashBytes(Config.data(), Config.size()));
}

std::string stcfa::snapshotCacheDir(const std::string &Override) {
  if (!Override.empty())
    return Override;
  if (const char *Env = std::getenv("STCFA_SNAPSHOT_DIR"); Env && *Env)
    return Env;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"); Xdg && *Xdg)
    return std::string(Xdg) + "/stcfa";
  if (const char *Home = std::getenv("HOME"); Home && *Home)
    return std::string(Home) + "/.cache/stcfa";
  return ".stcfa-cache";
}

std::string stcfa::snapshotCachePath(const std::string &Dir, uint64_t Key) {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx", (unsigned long long)Key);
  return Dir + "/" + Hex + ".stcfa-snap";
}

Status stcfa::ensureSnapshotDir(const std::string &Dir) {
  if (Dir.empty())
    return Status::invalidArgument("empty snapshot cache directory");
  // mkdir -p: create each component, tolerating ones that already exist.
  for (size_t Pos = 1; Pos <= Dir.size(); ++Pos) {
    if (Pos != Dir.size() && Dir[Pos] != '/')
      continue;
    std::string Prefix = Dir.substr(0, Pos);
    if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return Status::internal("cannot create snapshot directory '" + Prefix +
                              "'");
  }
  return Status::ok();
}

namespace {
struct CacheEntry {
  std::string Path;
  uint64_t Bytes;
  time_t Mtime;
};

bool isSnapshotEntry(const char *Name) {
  constexpr const char *Suffix = ".stcfa-snap";
  size_t N = std::strlen(Name), S = std::strlen(Suffix);
  return N > S && std::strcmp(Name + (N - S), Suffix) == 0;
}
} // namespace

size_t stcfa::enforceSnapshotCacheBudget(const std::string &Dir,
                                         uint64_t MaxBytes) {
  static Counter &Evictions = counter("snapshot.cache-evictions");
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return 0; // a missing directory is an empty (and thus bounded) cache
  std::vector<CacheEntry> Entries;
  uint64_t Total = 0;
  while (const dirent *E = ::readdir(D)) {
    if (!isSnapshotEntry(E->d_name))
      continue; // never touch files the cache didn't write
    std::string Path = Dir + "/" + E->d_name;
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Total += static_cast<uint64_t>(St.st_size);
    Entries.push_back(
        {std::move(Path), static_cast<uint64_t>(St.st_size), St.st_mtime});
  }
  ::closedir(D);
  if (Total <= MaxBytes)
    return 0;
  // Oldest mtime first; fills and hits both refresh it, so this is LRU.
  std::sort(Entries.begin(), Entries.end(),
            [](const CacheEntry &A, const CacheEntry &B) {
              return A.Mtime != B.Mtime ? A.Mtime < B.Mtime
                                        : A.Path < B.Path;
            });
  size_t Evicted = 0;
  for (const CacheEntry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (::unlink(E.Path.c_str()) != 0)
      continue; // raced with another process; its unlink counts the bytes
    Total -= E.Bytes;
    ++Evicted;
    Evictions.inc();
  }
  return Evicted;
}

void stcfa::touchSnapshotEntry(const std::string &Path) {
#ifdef __APPLE__
  ::utimes(Path.c_str(), nullptr);
#else
  ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0);
#endif
}
