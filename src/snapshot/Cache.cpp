//===-- snapshot/Cache.cpp - Content-addressed snapshot cache -------------===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-key recipe (docs/SNAPSHOT.md): `hashBytes(source)` combined with
/// the snapshot format version and a canonical configuration string
/// naming every option that shapes the frozen tables.  Any source edit,
/// option change, or format bump changes the key, so a stale entry can
/// never be served — there is no invalidation protocol, only misses.
///
//===----------------------------------------------------------------------===//

#include "snapshot/Snapshot.h"
#include "support/Hashing.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>

using namespace stcfa;

uint64_t stcfa::snapshotCacheKey(std::string_view Source,
                                 std::string_view Config) {
  uint64_t H = hashBytes(Source.data(), Source.size());
  H = hashCombine(H, SnapshotFormatVersion);
  return hashCombine(H, hashBytes(Config.data(), Config.size()));
}

std::string stcfa::snapshotCacheDir(const std::string &Override) {
  if (!Override.empty())
    return Override;
  if (const char *Env = std::getenv("STCFA_SNAPSHOT_DIR"); Env && *Env)
    return Env;
  if (const char *Xdg = std::getenv("XDG_CACHE_HOME"); Xdg && *Xdg)
    return std::string(Xdg) + "/stcfa";
  if (const char *Home = std::getenv("HOME"); Home && *Home)
    return std::string(Home) + "/.cache/stcfa";
  return ".stcfa-cache";
}

std::string stcfa::snapshotCachePath(const std::string &Dir, uint64_t Key) {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx", (unsigned long long)Key);
  return Dir + "/" + Hex + ".stcfa-snap";
}

Status stcfa::ensureSnapshotDir(const std::string &Dir) {
  if (Dir.empty())
    return Status::invalidArgument("empty snapshot cache directory");
  // mkdir -p: create each component, tolerating ones that already exist.
  for (size_t Pos = 1; Pos <= Dir.size(); ++Pos) {
    if (Pos != Dir.size() && Dir[Pos] != '/')
      continue;
    std::string Prefix = Dir.substr(0, Pos);
    if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return Status::internal("cannot create snapshot directory '" + Prefix +
                              "'");
  }
  return Status::ok();
}
