//===-- snapshot/Format.h - On-disk FrozenGraph layout ----------*- C++ -*-===//
//
// Part of the stcfa project (PLDI'97 subtransitive CFA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent snapshot format: a versioned header, a section table,
/// and 64-byte-aligned raw-array sections laid out exactly as the
/// in-memory `FrozenGraph::Tables` spans expect them, so the loader can
/// `mmap` the file read-only and point the spans straight into the
/// mapping — zero deserialization on the warm path.
///
///   offset 0      SnapshotHeader            (64 bytes)
///   offset 64     SectionEntry[NumSections] (32 bytes each)
///   aligned(64)   section payloads, in table order, zero-padded
///                 between sections
///
/// Integrity: the header carries a checksum over its own first 56 bytes;
/// every section entry carries a checksum over its payload (both
/// `hashBytes`).  The loader validates magic, version, endianness tag,
/// declared file size, section bounds/alignment, and every checksum
/// before handing out a single span — truncation, header corruption, and
/// bit rot all surface as `Status` errors, never as wrong answers.
///
/// Versioning policy: `FormatVersion` bumps on ANY layout change — there
/// is no in-place migration; a mismatched snapshot is rejected and the
/// caller rebuilds from source (the cache key includes the version, so
/// stale cache entries simply stop matching).  The endianness tag makes
/// a snapshot written on a foreign-endian host a clean rejection rather
/// than garbage offsets.
///
/// All structs are fixed-size, explicitly padded, and contain only
/// fixed-width integers, so `sizeof` is the wire size on every platform
/// this repo builds on (static_asserts below pin it).
///
//===----------------------------------------------------------------------===//

#ifndef STCFA_SNAPSHOT_FORMAT_H
#define STCFA_SNAPSHOT_FORMAT_H

#include <cstddef>
#include <cstdint>

namespace stcfa {

/// "STCFASNP", the 8 magic bytes at offset 0.
inline constexpr char SnapshotMagic[8] = {'S', 'T', 'C', 'F',
                                          'A', 'S', 'N', 'P'};

/// Bumped on any layout change; mismatches are rejected, never migrated.
/// Version 2 added the `RanOf` section (flat ran-port map, so
/// lint-over-snapshot never needs the source graph).
inline constexpr uint32_t SnapshotFormatVersion = 2;

/// Written as-is by the host; a foreign-endian reader sees it permuted.
inline constexpr uint32_t SnapshotEndianTag = 0x01020304;

/// Every section payload starts on a 64-byte boundary (cache-line and
/// `uint64_t` aligned; the mmap base is page-aligned, so file offsets
/// carry through to memory alignment).
inline constexpr uint64_t SnapshotSectionAlign = 64;

/// Header flag bits.
enum SnapshotFlags : uint64_t {
  /// The `KernelRows` section holds the complete label-set kernel
  /// matrix (one tight row of `KernelWordsPerSet` words per SCC).
  SnapshotHasKernelRows = 1u << 0,
};

/// Section identifiers (the `Id` field of a `SectionEntry`).  Order in
/// the section table is not significant; ids are.
enum class SnapshotSectionId : uint32_t {
  Meta = 0,             ///< one `SnapshotMeta`
  OutOffsets = 1,       ///< uint32[NumNodes + 1]
  OutTargets = 2,       ///< uint32[NumEdges]
  InOffsets = 3,        ///< uint32[NumNodes + 1]
  InTargets = 4,        ///< uint32[NumEdges]
  LabelAt = 5,          ///< uint32[NumNodes]
  NodeOps = 6,          ///< uint8[NumNodes] (NodeOp)
  NodeOfExpr = 7,       ///< uint32[NumExprs]
  NodeOfVar = 8,        ///< uint32[NumVars]
  LabelRoots = 9,       ///< uint32[2 * NumLabels]
  SccOf = 10,           ///< uint32[NumNodes] (Tarjan condensation map)
  KernelRows = 11,      ///< uint64[NumSccs * KernelWordsPerSet] (optional)
  StringBlob = 12,      ///< concatenated pre-rendered names (no NULs)
  ExprNameOffsets = 13, ///< uint32[NumExprs + 1], offsets into StringBlob
  LabelNameOffsets = 14,///< uint32[NumLabels + 1], offsets into StringBlob
  SourceRanges = 15,    ///< uint32[4 * NumExprs]: begin/end line/col
  RanOf = 16,           ///< uint32[NumNodes]: ran-port node or None
};

/// Number of distinct section ids defined by this format version.
inline constexpr uint32_t SnapshotNumSectionIds = 17;

/// The 64-byte file header.  `HeaderChecksum` covers bytes [0, 56).
struct SnapshotHeader {
  char Magic[8];          ///< `SnapshotMagic`
  uint32_t Version;       ///< `SnapshotFormatVersion`
  uint32_t Endian;        ///< `SnapshotEndianTag`
  uint64_t Flags;         ///< `SnapshotFlags` bits
  uint64_t FileSize;      ///< total file size in bytes
  uint64_t ContentHash;   ///< cache key of the source program (0 = unknown)
  uint32_t NumSections;   ///< entries in the section table
  uint32_t Reserved0;     ///< zero
  uint64_t Reserved1;     ///< zero
  uint64_t HeaderChecksum;///< hashBytes over the first 56 bytes
};
static_assert(sizeof(SnapshotHeader) == 64, "header is 64 bytes on disk");

/// One 32-byte section-table entry.  `Checksum` covers the payload bytes
/// `[Offset, Offset + SizeBytes)`.
struct SnapshotSectionEntry {
  uint32_t Id;        ///< a `SnapshotSectionId`
  uint32_t Reserved;  ///< zero
  uint64_t Offset;    ///< payload file offset, multiple of 64
  uint64_t SizeBytes; ///< payload size (excluding inter-section padding)
  uint64_t Checksum;  ///< hashBytes over the payload
};
static_assert(sizeof(SnapshotSectionEntry) == 32, "entry is 32 bytes");

/// The `Meta` section: every scalar the loader needs to size-check the
/// array sections and rebuild `FrozenGraph::Tables`.
struct SnapshotMeta {
  uint32_t NumNodes;
  uint32_t NumExprs;
  uint32_t NumVars;
  uint32_t NumLabels;
  uint32_t NumSccs;          ///< rows of `SccOf` condensation image
  uint32_t RootExpr;         ///< the module root's ExprId
  uint32_t KernelWordsPerSet;///< words per `KernelRows` row (0 = none)
  uint32_t Reserved0;        ///< zero
  uint64_t NumEdges;         ///< length of OutTargets / InTargets
};
static_assert(sizeof(SnapshotMeta) == 40, "meta is 40 bytes on disk");

/// Rounds \p Offset up to the section alignment.
inline uint64_t snapshotAlignUp(uint64_t Offset) {
  return (Offset + SnapshotSectionAlign - 1) & ~(SnapshotSectionAlign - 1);
}

} // namespace stcfa

#endif // STCFA_SNAPSHOT_FORMAT_H
